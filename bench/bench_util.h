#ifndef KOKO_BENCH_BENCH_UTIL_H_
#define KOKO_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benchmarks. Each bench binary
// regenerates one table/figure of the paper and prints (a) the paper's
// reported shape and (b) our measured numbers.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "corpus/generators.h"
#include "embed/embedding.h"
#include "extract/metrics.h"
#include "index/koko_index.h"
#include "index/sharded_index.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"
#include "replay/workloads.h"

namespace koko {
namespace bench {

/// \brief Machine-readable bench output: one `BENCH_<name>.json` per bench
/// binary, so the perf trajectory is trackable across PRs (CI uploads the
/// files as artifacts).
///
/// Schema:
///   { "bench": "<name>",
///     "meta":    { "<key>": <number>, ... },
///     "entries": [ { "name": "<entry>", "values": { "<k>": <number> } } ] }
///
/// Names and keys are escaped (quotes, backslashes, control characters), so
/// any string — query text, generated labels — is safe to use; values print
/// with enough digits to round-trip doubles, and non-finite values emit as
/// `null` (JSON has no NaN/Inf), keeping the files parseable by the CI
/// artifact consumers no matter what a bench measures.
class JsonEmitter {
 public:
  explicit JsonEmitter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void SetMeta(const std::string& key, double value) {
    meta_.emplace_back(key, value);
  }

  void AddEntry(const std::string& name,
                std::vector<std::pair<std::string, double>> values) {
    entries_.push_back({name, {}, std::move(values)});
  }

  /// Entry with string-valued fields (e.g. `load_mode: "map"`) alongside
  /// the numeric ones; strings are emitted first, escaped like names.
  void AddEntry(const std::string& name,
                std::vector<std::pair<std::string, std::string>> string_values,
                std::vector<std::pair<std::string, double>> values) {
    entries_.push_back({name, std::move(string_values), std::move(values)});
  }

  /// Writes the JSON file; default path is BENCH_<name>.json in the
  /// working directory. Returns false on I/O failure.
  bool WriteFile(const std::string& path = "") const {
    std::string target = path.empty() ? "BENCH_" + bench_name_ + ".json" : path;
    std::ofstream out(target);
    if (!out) return false;
    out << "{\n  \"bench\": " << Quoted(bench_name_) << ",\n  \"meta\": {";
    for (size_t i = 0; i < meta_.size(); ++i) {
      out << (i == 0 ? "" : ",") << "\n    " << Quoted(meta_[i].first)
          << ": " << Number(meta_[i].second);
    }
    out << (meta_.empty() ? "" : "\n  ") << "},\n  \"entries\": [";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"name\": " << Quoted(e.name)
          << ", \"values\": {";
      size_t emitted = 0;
      for (const auto& [key, value] : e.strings) {
        out << (emitted++ == 0 ? "" : ", ") << Quoted(key) << ": "
            << Quoted(value);
      }
      for (const auto& [key, value] : e.values) {
        out << (emitted++ == 0 ? "" : ", ") << Quoted(key) << ": "
            << Number(value);
      }
      out << "}}";
    }
    out << (entries_.empty() ? "" : "\n  ") << "]\n}\n";
    return out.good();
  }

 private:
  struct Entry {
    std::string name;
    std::vector<std::pair<std::string, std::string>> strings;
    std::vector<std::pair<std::string, double>> values;
  };

  /// JSON string literal: quotes, backslashes, and control characters
  /// (RFC 8259 mandates escaping everything below 0x20) are escaped.
  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"':  out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return out;
  }

  static std::string Number(double v) {
    // JSON has no NaN/Inf; emit null rather than an invalid token. The
    // range check precedes the cast (casting out-of-range doubles is UB).
    if (!std::isfinite(v)) return "null";
    char buf[64];
    // %.17g round-trips doubles; integral values print without exponent.
    if (v > -1e15 && v < 1e15 &&
        v == static_cast<double>(static_cast<long long>(v))) {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
  }

  std::string bench_name_;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<Entry> entries_;
};

/// The Appendix-A cafe query, parameterised by threshold. One definition
/// for the whole project: the replay workload library owns the text, so
/// the fig benches, the traffic harness, and the golden parity suite all
/// execute literally the same query.
inline std::string CafeQuery(double threshold) {
  return replay::CafeQueryText(threshold);
}

/// Number of index shards the refit fig benches build — the shipped
/// serving configuration (matches bench_workloads' fleet).
inline constexpr size_t kBenchIndexShards = 3;

/// Runs one KOKO query through `engine` under `options` and returns the
/// distinct extracted names (first output column, first-seen order).
inline std::vector<std::string> RunKokoExtraction(Engine& engine,
                                                  const EngineOptions& options,
                                                  const std::string& query_text) {
  auto result = engine.ExecuteText(query_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return {};
  }
  std::set<std::string> seen;
  std::vector<std::string> values;
  for (const auto& row : result->rows) {
    if (!row.values.empty() && seen.insert(row.values[0]).second) {
      values.push_back(row.values[0]);
    }
  }
  return values;
}

inline void PrintPrfRow(const char* method, double threshold, const PRF& prf) {
  if (threshold >= 0) {
    std::printf("  %-10s t=%.1f  P=%.3f  R=%.3f  F1=%.3f  (tp=%zu fp=%zu fn=%zu)\n",
                method, threshold, prf.precision, prf.recall, prf.f1, prf.tp,
                prf.fp, prf.fn);
  } else {
    std::printf("  %-10s        P=%.3f  R=%.3f  F1=%.3f  (tp=%zu fp=%zu fn=%zu)\n",
                method, prf.precision, prf.recall, prf.f1, prf.tp, prf.fp,
                prf.fn);
  }
}

/// Splits a labeled corpus into train/test halves by document parity.
struct TrainTestSplit {
  std::vector<RawDocument> train_docs;
  std::vector<RawDocument> test_docs;
  std::vector<std::string> train_gold;
  std::vector<std::string> test_gold;
};

inline TrainTestSplit SplitHalf(const LabeledCorpus& corpus) {
  TrainTestSplit split;
  for (size_t i = 0; i < corpus.docs.size(); ++i) {
    if (i % 2 == 0) {
      split.train_docs.push_back(corpus.docs[i]);
      split.train_gold.push_back(corpus.gold[i]);
    } else {
      split.test_docs.push_back(corpus.docs[i]);
      split.test_gold.push_back(corpus.gold[i]);
    }
  }
  return split;
}

}  // namespace bench
}  // namespace koko

#endif  // KOKO_BENCH_BENCH_UTIL_H_

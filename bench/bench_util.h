#ifndef KOKO_BENCH_BENCH_UTIL_H_
#define KOKO_BENCH_BENCH_UTIL_H_

// Shared helpers for the reproduction benchmarks. Each bench binary
// regenerates one table/figure of the paper and prints (a) the paper's
// reported shape and (b) our measured numbers.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "corpus/generators.h"
#include "embed/embedding.h"
#include "extract/metrics.h"
#include "index/koko_index.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"

namespace koko {
namespace bench {

/// The Appendix-A cafe query (adapted to this repository's generators and
/// NER conventions), parameterised by threshold.
inline std::string CafeQuery(double threshold) {
  char buf[4096];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "blogs" if ()
satisfying x
  (str(x) contains "Cafe" {1}) or
  (str(x) contains "Coffee" {1}) or
  (str(x) contains "Roasters" {1}) or
  (x ", a cafe" {1}) or
  (x [["serves coffee"]] {0.5}) or
  (x [["employs baristas"]] {0.5}) or
  ([["baristas of"]] x {0.45}) or
  (x [["hired a star barista"]] {0.5}) or
  (x [["pours delicious lattes"]] {0.45})
with threshold %f
excluding
  (str(x) matches "[a-z 0-9.&]+") or
  (str(x) matches "@[A-Za-z 0-9.]+") or
  (str(x) matches "[Cc]offee|[Cc]afe") or
  (str(x) matches "[A-Za-z 0-9.]*[Bb]arista [Cc]hampionship") or
  (str(x) matches "[A-Za-z 0-9.]*[Ff]est(ival)?") or
  (str(x) matches "[Ll]a Marzocco") or
  (str(x) matches "[0-9]+ [0-9A-Z a-z]+ [Ss]t.?") or
  (str(x) in dict("GPE")) or
  (str(x) in dict("Person"))
)",
                threshold);
  return buf;
}

/// Runs the KOKO cafe query and returns the distinct extracted names.
inline std::vector<std::string> RunKokoExtraction(const AnnotatedCorpus& corpus,
                                                  const KokoIndex& index,
                                                  const Pipeline& pipeline,
                                                  const EmbeddingModel& embeddings,
                                                  const std::string& query_text,
                                                  bool use_descriptors = true) {
  Engine engine(&corpus, &index, &embeddings, &pipeline.recognizer());
  EngineOptions options;
  options.use_descriptors = use_descriptors;
  auto result = engine.ExecuteText(query_text, options);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n", result.status().ToString().c_str());
    return {};
  }
  std::set<std::string> seen;
  std::vector<std::string> values;
  for (const auto& row : result->rows) {
    if (!row.values.empty() && seen.insert(row.values[0]).second) {
      values.push_back(row.values[0]);
    }
  }
  return values;
}

inline void PrintPrfRow(const char* method, double threshold, const PRF& prf) {
  if (threshold >= 0) {
    std::printf("  %-10s t=%.1f  P=%.3f  R=%.3f  F1=%.3f  (tp=%zu fp=%zu fn=%zu)\n",
                method, threshold, prf.precision, prf.recall, prf.f1, prf.tp,
                prf.fp, prf.fn);
  } else {
    std::printf("  %-10s        P=%.3f  R=%.3f  F1=%.3f  (tp=%zu fp=%zu fn=%zu)\n",
                method, prf.precision, prf.recall, prf.f1, prf.tp, prf.fp,
                prf.fn);
  }
}

/// Splits a labeled corpus into train/test halves by document parity.
struct TrainTestSplit {
  std::vector<RawDocument> train_docs;
  std::vector<RawDocument> test_docs;
  std::vector<std::string> train_gold;
  std::vector<std::string> test_gold;
};

inline TrainTestSplit SplitHalf(const LabeledCorpus& corpus) {
  TrainTestSplit split;
  for (size_t i = 0; i < corpus.docs.size(); ++i) {
    if (i % 2 == 0) {
      split.train_docs.push_back(corpus.docs[i]);
      split.train_gold.push_back(corpus.gold[i]);
    } else {
      split.test_docs.push_back(corpus.docs[i]);
      split.test_gold.push_back(corpus.gold[i]);
    }
  }
  return split;
}

}  // namespace bench
}  // namespace koko

#endif  // KOKO_BENCH_BENCH_UTIL_H_

// Micro-benchmarks (google-benchmark): the individual operations behind the
// paper's index results — B+tree ops, hierarchy-trie path lookup vs
// brute-force tree walks, posting joins, word-index lookups, regex matching.
// These back the DESIGN.md ablation notes rather than a specific figure.
#include <benchmark/benchmark.h>

#include "corpus/generators.h"
#include "index/koko_index.h"
#include "index/path_lookup.h"
#include "nlp/pipeline.h"
#include "regex/regex.h"
#include "storage/btree.h"
#include "util/rng.h"

namespace koko {
namespace {

const AnnotatedCorpus& SharedCorpus() {
  static const AnnotatedCorpus* corpus = [] {
    Pipeline pipeline;
    auto docs = GenerateHappyMoments({.num_moments = 1500, .seed = 42});
    return new AnnotatedCorpus(pipeline.AnnotateCorpus(docs));
  }();
  return *corpus;
}

const KokoIndex& SharedIndex() {
  static const KokoIndex* index = KokoIndex::Build(SharedCorpus()).release();
  return *index;
}

PathQuery DobjAmodPath() {
  PathQuery q;
  PathStep s1;
  s1.axis = PathStep::Axis::kChild;
  s1.constraint.dep = DepLabel::kRoot;
  PathStep s2;
  s2.axis = PathStep::Axis::kChild;
  s2.constraint.dep = DepLabel::kDobj;
  PathStep s3;
  s3.axis = PathStep::Axis::kChild;
  s3.constraint.dep = DepLabel::kAmod;
  q.steps = {s1, s2, s3};
  return q;
}

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    BPlusTree<uint64_t, uint32_t> tree;
    Rng rng(1);
    for (int i = 0; i < 4096; ++i) {
      tree.Insert(rng.Next() % 1024, static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.NumValues());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  BPlusTree<uint64_t, uint32_t> tree;
  Rng rng(2);
  for (int i = 0; i < 65536; ++i) tree.Insert(rng.Next() % 16384, 1);
  Rng probe(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(probe.Next() % 16384));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_HierarchyTrieLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupParseLabelPath(path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyTrieLookup);

void BM_BruteForcePathMatch(benchmark::State& state) {
  const AnnotatedCorpus& corpus = SharedCorpus();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    size_t hits = 0;
    for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
      hits += MatchPathInSentence(corpus.sentence(sid), path).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForcePathMatch);

void BM_WordIndexLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupWord("delicious"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordIndexLookup);

void BM_DecomposedPathLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path;
  PathStep s1;
  s1.axis = PathStep::Axis::kDescendant;
  s1.constraint.pos = PosTag::kVerb;
  PathStep s2;
  s2.axis = PathStep::Axis::kChild;
  s2.constraint.dep = DepLabel::kDobj;
  PathStep s3;
  s3.axis = PathStep::Axis::kDescendant;
  s3.constraint.word = "delicious";
  path.steps = {s1, s2, s3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(KokoPathLookup(index, path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecomposedPathLookup);

void BM_RegexPartialMatch(benchmark::State& state) {
  auto re = Regex::Compile("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?");
  std::string input = "the new cafe at 123 Mission St. has espresso";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re->PartialMatch(input));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegexPartialMatch);

void BM_AnnotateSentence(benchmark::State& state) {
  Pipeline pipeline;
  std::string text =
      "Anna ate some delicious cheesecake that she bought at a grocery store.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateSentence(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnotateSentence);

}  // namespace
}  // namespace koko

BENCHMARK_MAIN();

// Micro-benchmarks (google-benchmark): the individual operations behind the
// paper's index results — B+tree ops, hierarchy-trie path lookup vs
// brute-force tree walks, posting joins, word-index lookups, regex matching.
// These back the DESIGN.md ablation notes rather than a specific figure.
#include <benchmark/benchmark.h>

#include <chrono>
#include <unordered_set>

#include "bench_util.h"
#include "corpus/generators.h"
#include "index/koko_index.h"
#include "index/path_lookup.h"
#include "index/sid_ops.h"
#include "koko/engine.h"
#include "koko/planner.h"
#include "nlp/pipeline.h"
#include "regex/regex.h"
#include "storage/btree.h"
#include "util/rng.h"
#include "util/simd.h"

namespace koko {
namespace {

const AnnotatedCorpus& SharedCorpus() {
  static const AnnotatedCorpus* corpus = [] {
    Pipeline pipeline;
    auto docs = GenerateHappyMoments({.num_moments = 1500, .seed = 42});
    return new AnnotatedCorpus(pipeline.AnnotateCorpus(docs));
  }();
  return *corpus;
}

const KokoIndex& SharedIndex() {
  static const KokoIndex* index = KokoIndex::Build(SharedCorpus()).release();
  return *index;
}

PathQuery DobjAmodPath() {
  PathQuery q;
  PathStep s1;
  s1.axis = PathStep::Axis::kChild;
  s1.constraint.dep = DepLabel::kRoot;
  PathStep s2;
  s2.axis = PathStep::Axis::kChild;
  s2.constraint.dep = DepLabel::kDobj;
  PathStep s3;
  s3.axis = PathStep::Axis::kChild;
  s3.constraint.dep = DepLabel::kAmod;
  q.steps = {s1, s2, s3};
  return q;
}

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    BPlusTree<uint64_t, uint32_t> tree;
    Rng rng(1);
    for (int i = 0; i < 4096; ++i) {
      tree.Insert(rng.Next() % 1024, static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(tree.NumValues());
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeLookup(benchmark::State& state) {
  BPlusTree<uint64_t, uint32_t> tree;
  Rng rng(2);
  for (int i = 0; i < 65536; ++i) tree.Insert(rng.Next() % 16384, 1);
  Rng probe(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Find(probe.Next() % 16384));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup);

void BM_HierarchyTrieLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupParseLabelPath(path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HierarchyTrieLookup);

void BM_BruteForcePathMatch(benchmark::State& state) {
  const AnnotatedCorpus& corpus = SharedCorpus();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    size_t hits = 0;
    for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
      hits += MatchPathInSentence(corpus.sentence(sid), path).size();
    }
    benchmark::DoNotOptimize(hits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BruteForcePathMatch);

void BM_WordIndexLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.LookupWord("delicious"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordIndexLookup);

// A cross-index path (POS + parse-label + word): the shape that cannot be
// answered from a single hierarchy trie and falls back to quintuple joins.
PathQuery CrossIndexPath() {
  PathQuery path;
  PathStep s1;
  s1.axis = PathStep::Axis::kDescendant;
  s1.constraint.pos = PosTag::kVerb;
  PathStep s2;
  s2.axis = PathStep::Axis::kChild;
  s2.constraint.dep = DepLabel::kDobj;
  PathStep s3;
  s3.axis = PathStep::Axis::kDescendant;
  s3.constraint.word = "delicious";
  path.steps = {s1, s2, s3};
  return path;
}

void BM_DecomposedPathLookup(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = CrossIndexPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KokoPathLookup(index, path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecomposedPathLookup);

// ---- Sid projection of a cross-index path -----------------------------------
//
// DPLI only needs the *sids* of a path's matches. The old fallback
// materialised the full quintuple join and projected it; the semi-join
// kernel intersects the per-index sid projections (PL path sids, POS path
// sids, per-word sid lists) first and uses the intersection to prune every
// posting list before the joins.

// Old fallback, verbatim: full quintuple join, then project the sids.
void BM_PathSidFallbackQuintuple(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = CrossIndexPath();
  for (auto _ : state) {
    PathLookupResult full = KokoPathLookup(index, path);
    benchmark::DoNotOptimize(
        SidList::FromSorted(SidsOfPostings(full.postings)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathSidFallbackQuintuple);

// New fallback: sid-level semi-join before any quintuple materialises.
void BM_PathSidSemiJoin(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = CrossIndexPath();
  for (auto _ : state) {
    benchmark::DoNotOptimize(KokoPathSidLookup(index, path));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PathSidSemiJoin);

// ---- DPLI intersection kernels ---------------------------------------------
//
// The candidate-pruning hot path: intersecting one small and one large
// sentence-id list. `ratio` is |large| / |small| (the paper's skewed case —
// a selective path or literal against a broad one). The hash-set baseline
// reproduces the seed engine's per-query strategy: hash every sid, probe,
// re-sort. The galloping kernel runs on the index's precomputed sorted
// lists (built once, not per query).

constexpr size_t kSmallListSize = 1000;

std::pair<SidList, SidList> SkewedLists(size_t ratio) {
  Rng rng(17);
  std::vector<uint32_t> small, large;
  const uint32_t universe =
      static_cast<uint32_t>(kSmallListSize * ratio * 4);
  for (size_t i = 0; i < kSmallListSize; ++i) {
    small.push_back(static_cast<uint32_t>(rng.Next() % universe));
  }
  for (size_t i = 0; i < kSmallListSize * ratio; ++i) {
    large.push_back(static_cast<uint32_t>(rng.Next() % universe));
  }
  return {SidList::FromUnsorted(std::move(small)),
          SidList::FromUnsorted(std::move(large))};
}

void BM_SidIntersectHashSet(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::unordered_set<uint32_t> probe(large.begin(), large.end());
    std::vector<uint32_t> out;
    for (uint32_t sid : small) {
      if (probe.count(sid) > 0) out.push_back(sid);
    }
    std::sort(out.begin(), out.end());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SidIntersectHashSet)->Arg(1)->Arg(10)->Arg(100);

void BM_SidIntersectGalloping(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(small, large));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SidIntersectGalloping)->Arg(1)->Arg(10)->Arg(100);

// In-place block-compressed intersection: the larger side stays in its
// resident BlockList form (skip-table gallop to the candidate block, decode
// at most one 128-sid block into a stack buffer). The acceptance bar is
// within 2x of the decoded galloping kernel at 1:1 skew — the price of the
// per-block decodes — while the resident footprint drops ~3-4x.
void BM_SidIntersectBlockVsDecoded(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList large_blocks = BlockList::FromSidList(large);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(small, large_blocks));
  }
  state.counters["resident_bytes"] =
      benchmark::Counter(static_cast<double>(large_blocks.MemoryUsage()));
  state.counters["decoded_bytes"] =
      benchmark::Counter(static_cast<double>(large.MemoryUsage()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SidIntersectBlockVsDecoded)->Arg(1)->Arg(10)->Arg(100);

// Both sides compressed — the engine's common case (stored word/entity
// projections against each other).
void BM_SidIntersectBlockBoth(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList small_blocks = BlockList::FromSidList(small);
  BlockList large_blocks = BlockList::FromSidList(large);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Intersect(small_blocks, large_blocks));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SidIntersectBlockBoth)->Arg(1)->Arg(10)->Arg(100);

// Full-decode strawman: what intersecting compressed lists costs when the
// compressed side is materialised first instead of walked in place.
void BM_SidIntersectBlockFullDecode(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList large_blocks = BlockList::FromSidList(large);
  for (auto _ : state) {
    SidList decoded = large_blocks.Decode();
    benchmark::DoNotOptimize(Intersect(small, decoded));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SidIntersectBlockFullDecode)->Arg(1)->Arg(10)->Arg(100);

// ---- Skew sweep: per-clause representation choice ---------------------------
//
// The planner's central calibration question: when the accumulator is a
// small decoded list and the next clause is a resident BlockList `ratio`
// times larger, is it cheaper to walk the blocks in place (skip-table
// gallop, decode at most one block per probe run) or to decode the whole
// BlockList once and gallop over the flat array? The sweep covers 1:1
// through 1:1000; CalibrateSkewCrossover() below distills it into the
// [min_ratio, max_ratio) decode+gallop band that PlannerOptions defaults
// to, and BM_SkewIntersectPlanned shows the cost model picking a kernel
// within noise of the better one at every point.

void BM_SkewIntersectInPlace(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList large_blocks = BlockList::FromSidList(large);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectWithRep(small, large_blocks, IntersectRep::kBlockInPlace));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SkewIntersectInPlace)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1000);

void BM_SkewIntersectDecodeGallop(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList large_blocks = BlockList::FromSidList(large);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectWithRep(small, large_blocks,
                                              IntersectRep::kDecodeThenGallop));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SkewIntersectDecodeGallop)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1000);

// The planner's pick at each skew: ChooseIntersectRep with the default
// thresholds, fed the same estimates it would read from the skip tables.
// Acceptance: within ~10% of whichever dedicated kernel wins at 1:1 and at
// 1:100+ (the JSON snapshot makes the comparison auditable).
void BM_SkewIntersectPlanned(benchmark::State& state) {
  auto [small, large] = SkewedLists(static_cast<size_t>(state.range(0)));
  BlockList large_blocks = BlockList::FromSidList(large);
  const IntersectRep rep = ChooseIntersectRep(
      small.size(), StatsOf(large_blocks).sids, PlannerOptions());
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectWithRep(small, large_blocks, rep));
  }
  state.counters["picked_decode_gallop"] = benchmark::Counter(
      rep == IntersectRep::kDecodeThenGallop ? 1.0 : 0.0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + large.size()));
}
BENCHMARK(BM_SkewIntersectPlanned)
    ->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1000);

// ---- Streaming top-k: early termination vs full-evaluate-then-truncate ------

const char* kBroadQuery = R"(
    extract b:Str from "moments" if ( /ROOT:{ a = //verb, b = a/dobj }))";

// The legacy truncation semantics: every DPLI candidate is loaded and
// evaluated, rows are cut to max_rows only at the end.
void BM_EngineMaxRowsFullTruncate(benchmark::State& state) {
  const AnnotatedCorpus& corpus = SharedCorpus();
  const KokoIndex& index = SharedIndex();
  Pipeline pipeline;
  EmbeddingModel embeddings;
  Engine engine(&corpus, &index, &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions options;
  options.max_rows = static_cast<size_t>(state.range(0));
  options.early_terminate = false;
  size_t scanned = 0, candidates = 0;
  for (auto _ : state) {
    auto result = engine.ExecuteText(kBroadQuery, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      scanned = result->scanned_candidates;
      candidates = result->candidate_sentences;
    }
  }
  state.counters["scanned"] = benchmark::Counter(static_cast<double>(scanned));
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(candidates));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineMaxRowsFullTruncate)->Arg(10);

// Streaming top-k: the candidate scan stops as soon as max_rows is provably
// satisfied (rows stay byte-identical — planner_test enforces parity).
void BM_EngineMaxRowsEarlyTerminate(benchmark::State& state) {
  const AnnotatedCorpus& corpus = SharedCorpus();
  const KokoIndex& index = SharedIndex();
  Pipeline pipeline;
  EmbeddingModel embeddings;
  Engine engine(&corpus, &index, &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions options;
  options.max_rows = static_cast<size_t>(state.range(0));
  size_t scanned = 0, candidates = 0;
  for (auto _ : state) {
    auto result = engine.ExecuteText(kBroadQuery, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      scanned = result->scanned_candidates;
      candidates = result->candidate_sentences;
    }
  }
  state.counters["scanned"] = benchmark::Counter(static_cast<double>(scanned));
  state.counters["candidates"] =
      benchmark::Counter(static_cast<double>(candidates));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineMaxRowsEarlyTerminate)->Arg(10);

// ---- DPLI phase: seed-style hash pruning vs the columnar engine path --------

const char* kDpliQuery = R"(
    extract e:Entity, d:Str from "moments" if (
      /ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) }
      (b) in (e)))";

// The seed engine's DPLI block, verbatim strategy: materialise quintuples,
// hash sids per atom, pairwise hash-intersect, final sort.
void BM_DpliPhaseHashSetBaseline(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    std::vector<std::unordered_set<uint32_t>> sets;
    std::unordered_set<uint32_t> path_sids;
    for (const Quintuple& q : KokoPathLookup(index, path).postings) {
      path_sids.insert(q.sid);
    }
    sets.push_back(std::move(path_sids));
    std::unordered_set<uint32_t> entity_sids;
    for (const EntityPosting& e : index.AllEntities()) entity_sids.insert(e.sid);
    sets.push_back(std::move(entity_sids));
    std::unordered_set<uint32_t> word_sids;
    for (const Quintuple& q : index.LookupWord("delicious")) {
      word_sids.insert(q.sid);
    }
    sets.push_back(std::move(word_sids));
    std::unordered_set<uint32_t> current = std::move(sets[0]);
    for (size_t i = 1; i < sets.size(); ++i) {
      std::unordered_set<uint32_t> merged;
      for (uint32_t sid : current) {
        if (sets[i].count(sid) > 0) merged.insert(sid);
      }
      current = std::move(merged);
    }
    std::vector<uint32_t> candidates(current.begin(), current.end());
    std::sort(candidates.begin(), candidates.end());
    benchmark::DoNotOptimize(candidates);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpliPhaseHashSetBaseline);

// The same pruning via the columnar path the engine now uses.
void BM_DpliPhaseGalloping(benchmark::State& state) {
  const KokoIndex& index = SharedIndex();
  PathQuery path = DobjAmodPath();
  for (auto _ : state) {
    SidList path_sids = KokoPathSidLookup(index, path).sids;
    const BlockList* words = index.WordSids("delicious");
    BlockList empty;
    std::vector<uint32_t> candidates =
        IntersectAllViews({&path_sids, &index.AllEntitySids(),
                           words != nullptr ? words : &empty})
            .TakeIds();
    benchmark::DoNotOptimize(candidates);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpliPhaseGalloping);

// Whole-query phase breakdown with the production engine: emits the DPLI /
// extract wall times as counters so BENCH_*.json snapshots track them.
void BM_DpliPhaseEndToEnd(benchmark::State& state) {
  const AnnotatedCorpus& corpus = SharedCorpus();
  const KokoIndex& index = SharedIndex();
  Pipeline pipeline;
  EmbeddingModel embeddings;
  Engine engine(&corpus, &index, &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions options;
  double dpli_seconds = 0;
  double extract_seconds = 0;
  size_t queries = 0;
  for (auto _ : state) {
    auto result = engine.ExecuteText(kDpliQuery, options);
    benchmark::DoNotOptimize(result);
    if (result.ok()) {
      dpli_seconds += result->phases.Get("DPLI");
      extract_seconds += result->phases.Get("extract");
      ++queries;
    }
  }
  if (queries > 0) {
    state.counters["dpli_us"] =
        benchmark::Counter(dpli_seconds * 1e6 / static_cast<double>(queries));
    state.counters["extract_us"] = benchmark::Counter(
        extract_seconds * 1e6 / static_cast<double>(queries));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DpliPhaseEndToEnd);

// ---- SIMD block-decode bandwidth -------------------------------------------
//
// Raw posting-block decode throughput (sids/sec) per available ISA, for
// both payload forms (varint gaps and v4 bit-packed gaps). The ISA set is
// a runtime property, so these are registered dynamically from main() with
// the ISA in the benchmark name; each run forces its ISA explicitly so a
// single invocation captures the whole matrix regardless of KOKO_SIMD.
void BM_BlockDecodeBandwidth(benchmark::State& state, simd::Isa isa,
                             bool packed_form) {
  Rng rng(23);
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 200000; ++i) {
    ids.push_back(static_cast<uint32_t>(rng.Next() % (1u << 22)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  BlockList list = BlockList::FromSidList(SidList::FromSorted(ids));
  if (packed_form) {
    PackedBlockParts parts = PackBlockList(list);
    list = *BlockList::FromPackedParts(
        static_cast<uint32_t>(ids.size()), std::move(parts.skip_first),
        std::move(parts.skip_offset), std::move(parts.skip_width),
        std::move(parts.payload));
  }
  const simd::Isa saved = simd::ActiveIsa();
  simd::SetActiveIsa(isa);
  uint32_t buf[BlockList::kBlockSids];
  for (auto _ : state) {
    uint64_t sum = 0;
    for (size_t b = 0; b < list.NumBlocks(); ++b) {
      const size_t n = list.DecodeBlock(b, buf);
      sum += buf[n - 1];
    }
    benchmark::DoNotOptimize(sum);
  }
  simd::SetActiveIsa(saved);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ids.size()));
}

void RegisterSimdDecodeBenches() {
  for (simd::Isa isa : simd::AvailableIsas()) {
    for (bool packed_form : {false, true}) {
      const std::string name =
          std::string(packed_form ? "BM_BlockDecodePacked/"
                                  : "BM_BlockDecodeVarint/") +
          simd::IsaName(isa);
      benchmark::RegisterBenchmark(name.c_str(), BM_BlockDecodeBandwidth, isa,
                                   packed_form);
    }
  }
}

void BM_RegexPartialMatch(benchmark::State& state) {
  auto re = Regex::Compile("[0-9]+ [0-9A-Z a-z]+ [Ss]t.?");
  std::string input = "the new cafe at 123 Mission St. has espresso";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re->PartialMatch(input));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegexPartialMatch);

void BM_AnnotateSentence(benchmark::State& state) {
  Pipeline pipeline;
  std::string text =
      "Anna ate some delicious cheesecake that she bought at a grocery store.";
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.AnnotateSentence(text));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnnotateSentence);

}  // namespace

// Direct timing sweep (min-of-reps, no google-benchmark overhead) of the two
// compressed-vs-decoded intersection kernels across 1:1 .. 1:1000 skew.
// Records the measured decode+gallop win band into BENCH_micro.json meta as
// `skew_crossover_min_ratio` / `skew_crossover_max_ratio` — the figures the
// PlannerOptions defaults are calibrated against (docs/QUERY_PLANNING.md).
void CalibrateSkewCrossover(bench::JsonEmitter* emitter) {
  using Clock = std::chrono::steady_clock;
  const size_t kRatios[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000};
  auto time_kernel = [](const SidList& small, const BlockList& blocks,
                        IntersectRep rep) {
    double best = 1e99;
    for (int rep_i = 0; rep_i < 5; ++rep_i) {
      const auto t0 = Clock::now();
      benchmark::DoNotOptimize(IntersectWithRep(small, blocks, rep));
      const auto t1 = Clock::now();
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
  };
  size_t min_win = 0, max_win = 0;  // 0 = decode+gallop never won.
  for (size_t ratio : kRatios) {
    auto [small, large] = SkewedLists(ratio);
    BlockList large_blocks = BlockList::FromSidList(large);
    const double in_place =
        time_kernel(small, large_blocks, IntersectRep::kBlockInPlace);
    const double decode =
        time_kernel(small, large_blocks, IntersectRep::kDecodeThenGallop);
    if (decode < in_place) {
      if (min_win == 0) min_win = ratio;
      max_win = ratio;
    }
  }
  emitter->SetMeta("skew_crossover_min_ratio", static_cast<double>(min_win));
  emitter->SetMeta("skew_crossover_max_ratio", static_cast<double>(max_win));
  PlannerOptions defaults;
  emitter->SetMeta("planner_decode_gallop_min_ratio",
                   static_cast<double>(defaults.decode_gallop_min_ratio));
  emitter->SetMeta("planner_decode_gallop_max_ratio",
                   static_cast<double>(defaults.decode_gallop_max_ratio));
}

}  // namespace koko

namespace {

// Forwards to the normal console output while capturing every finished run
// (time per iteration + user counters) into the shared JsonEmitter, so the
// binary leaves a BENCH_micro.json snapshot behind for trend tracking.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(koko::bench::JsonEmitter* emitter)
      : emitter_(emitter) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      std::vector<std::pair<std::string, double>> values;
      values.emplace_back("real_s_per_iter", run.real_accumulated_time / iters);
      values.emplace_back("cpu_s_per_iter", run.cpu_accumulated_time / iters);
      values.emplace_back("iterations", iters);
      for (const auto& [name, counter] : run.counters) {
        values.emplace_back(name, counter.value);
      }
      // The dispatch-selected ISA (native, or KOKO_SIMD's override) whose
      // kernels the bench ran under. The per-ISA decode benches force
      // their own ISA (its name is the suffix after '/'), and have already
      // restored the dispatch choice by report time — recover theirs from
      // the name so the field always states what actually ran.
      const std::string name = run.benchmark_name();
      std::string isa = koko::simd::ActiveIsaName();
      if (name.rfind("BM_BlockDecode", 0) == 0) {
        const size_t slash = name.rfind('/');
        if (slash != std::string::npos) isa = name.substr(slash + 1);
      }
      emitter_->AddEntry(name, {{"simd_isa", isa}}, std::move(values));
    }
  }

 private:
  koko::bench::JsonEmitter* emitter_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  koko::RegisterSimdDecodeBenches();
  koko::bench::JsonEmitter emitter("micro");
  JsonCapturingReporter reporter(&emitter);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  emitter.SetMeta("corpus_sentences",
                  static_cast<double>(koko::SharedCorpus().NumSentences()));
  koko::CalibrateSkewCrossover(&emitter);
  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed to write BENCH_micro.json\n");
  }
  benchmark::Shutdown();
  return 0;
}

// §6.3 (in-text): Odin vs KOKO runtime on the three example queries.
//
// Paper shape: Odin 40x / 23x / 1.3x slower for Chocolate / Title /
// DateOfBirth. Odin re-scans every sentence per rule per iteration (no
// index); KOKO's advantage shrinks as query selectivity rises, because the
// index prunes less.
#include "bench_util.h"

#include "extract/odin.h"
#include "storage/doc_store.h"
#include "util/timer.h"

using namespace koko;

namespace {

PathQuery MakePath(std::initializer_list<std::pair<const char*, const char*>> steps) {
  PathQuery q;
  for (const auto& [axis, label] : steps) {
    PathStep step;
    step.axis = std::string(axis) == "/" ? PathStep::Axis::kChild
                                         : PathStep::Axis::kDescendant;
    std::string name = label;
    if (name != "*") {
      DepLabel dep;
      PosTag pos;
      if (ParseDepLabel(name, &dep)) {
        step.constraint.dep = dep;
      } else if (ParsePosTag(name, &pos)) {
        step.constraint.pos = pos;
      } else {
        step.constraint.word = name;
      }
    }
    q.steps.push_back(std::move(step));
  }
  return q;
}

}  // namespace

int main() {
  std::printf("Odin vs KOKO runtime (Section 6.3 in-text comparison)\n");
  std::printf("paper shape: Odin ~40x slower (Chocolate), ~23x (Title), ~1.3x "
              "(DateOfBirth)\n\n");
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 1500, .seed = 1001});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  DocumentStore store = DocumentStore::FromCorpus(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
  engine.set_document_store(&store);

  struct Task {
    const char* name;
    const char* koko_query;
    std::vector<OdinRule> odin_rules;
  };
  std::vector<Task> tasks;
  {
    Task chocolate;
    chocolate.name = "Chocolate";
    chocolate.koko_query = R"(
extract c:Entity from wiki.article if (
  /ROOT:{ v = //verb, o = v//pobj[text="chocolate"], s = v/nsubj } (s) in (c))
satisfying v (v SimilarTo "is" {1}) with threshold 0.9)";
    OdinRule r1;
    r1.name = "chocolate-pobj";
    r1.kind = OdinRule::Kind::kDependency;
    r1.path = MakePath({{"//", "verb"}, {"//", "pobj"}});
    OdinRule r2;
    r2.name = "chocolate-subject";
    r2.kind = OdinRule::Kind::kDependency;
    r2.path = MakePath({{"//", "chocolate"}});
    chocolate.odin_rules = {r1, r2};
    tasks.push_back(std::move(chocolate));
  }
  {
    Task title;
    title.name = "Title";
    title.koko_query = R"(
extract a:Person, b:Str from wiki.article if (
  /ROOT:{ v = //"called", p = v/propn, b = p.subtree, c = a + ^ + v + ^ + b }))";
    OdinRule r1;
    r1.name = "called-propn";
    r1.kind = OdinRule::Kind::kDependency;
    r1.path = MakePath({{"//", "called"}, {"/", "propn"}});
    OdinRule r2;
    r2.name = "called-surface";
    r2.kind = OdinRule::Kind::kSurface;
    r2.trigger = {"called"};
    r2.capture_left = true;
    title.odin_rules = {r1, r2};
    tasks.push_back(std::move(title));
  }
  {
    Task dob;
    dob.name = "DateOfBirth";
    dob.koko_query = R"(
extract a:Person, b:Date from wiki.article if ( /ROOT:{ v = verb })
satisfying v (v SimilarTo "born" {1}) with threshold 0.9)";
    OdinRule r1;
    r1.name = "born";
    r1.kind = OdinRule::Kind::kDependency;
    r1.path = MakePath({{"//", "born"}});
    OdinRule r2;
    r2.name = "born-left";
    r2.kind = OdinRule::Kind::kSurface;
    r2.trigger = {"born", "in"};
    r2.capture_left = true;
    dob.odin_rules = {r1, r2};
    tasks.push_back(std::move(dob));
  }

  OdinExtractor odin;
  for (const Task& task : tasks) {
    WallTimer koko_timer;
    EngineOptions options;
    options.max_rows = 500000;
    auto koko_result = engine.ExecuteText(task.koko_query, options);
    double koko_seconds = koko_timer.ElapsedSeconds();
    if (!koko_result.ok()) {
      std::printf("%s: KOKO failed: %s\n", task.name,
                  koko_result.status().ToString().c_str());
      continue;
    }
    WallTimer odin_timer;
    OdinExtractor::RunStats stats;
    auto mentions = odin.Run(corpus, task.odin_rules, &stats);
    double odin_seconds = odin_timer.ElapsedSeconds();
    std::printf("%-12s KOKO=%7.3fs (%zu rows)   Odin=%7.3fs (%zu mentions, %d "
                "iters, %zu sentence visits)   Odin/KOKO=%.1fx\n",
                task.name, koko_seconds, koko_result->rows.size(), odin_seconds,
                mentions.size(), stats.iterations, stats.sentence_visits,
                odin_seconds / koko_seconds);
  }
  return 0;
}

// Paper-figure traffic-replay harness: revives the fig3/fig4/fig5/fig7/
// fig8/table1 workload shapes (src/replay/workloads.h) on the current
// serving stack — ShardedKokoIndex saved, reloaded zero-copy (kMap, file
// unlinked while mapped), planner + score/plan caches behind one
// QueryService per class — and replays a deterministic mixed-class
// schedule in closed- and open-loop arrival modes, each with a cold and a
// warm cache phase over the identical schedule.
//
// Emits BENCH_workloads.json: one entry per (arrival, phase, class) with
// p50/p99 latency, cache hit deltas, planner representation choices, and
// early-termination counters. Every replayed query's rows are digested
// against a serial seed-semantics reference run, so the bench doubles as a
// determinism check under traffic; any mismatch or error fails the run.
//
// Usage: bench_workloads [scale] [queries_per_phase] [clients]
#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "index/sharded_index.h"
#include "replay/traffic.h"
#include "replay/workloads.h"
#include "serve/query_service.h"
#include "util/simd.h"

using namespace koko;

namespace {

constexpr size_t kIndexShards = 3;

struct WorkloadUnderTest {
  replay::Workload workload;
  std::unique_ptr<ShardedKokoIndex> index;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<QueryService> service;
  std::vector<uint64_t> expected_digests;
};

// Sharded build -> save -> zero-copy reload -> unlink while mapped: the
// shipped serving configuration (the mapping outlives the file, PR 5's
// lifetime contract, exercised here on every class).
std::unique_ptr<ShardedKokoIndex> BuildMappedIndex(
    const AnnotatedCorpus& corpus, const std::string& name) {
  auto built = ShardedKokoIndex::Build(corpus, kIndexShards);
  const std::string path = "bench_workloads_" + name + ".idx";
  if (!built->Save(path).ok()) {
    std::fprintf(stderr, "save failed for %s\n", name.c_str());
    return nullptr;
  }
  ShardedKokoIndex::LoadOptions load;
  load.mode = LoadMode::kMap;
  auto loaded = ShardedKokoIndex::Load(path, load);
  std::remove(path.c_str());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed for %s: %s\n", name.c_str(),
                 loaded.status().ToString().c_str());
    return nullptr;
  }
  return std::move(*loaded);
}

std::unique_ptr<QueryService> MakeService(const Engine* engine,
                                          size_t clients) {
  QueryService::Options options;
  options.num_threads = clients;
  options.max_inflight = clients;
  return std::make_unique<QueryService>(engine, options, kIndexShards);
}

void EmitPhase(bench::JsonEmitter* emitter, const char* arrival,
               const replay::PhaseReport& phase) {
  for (const replay::ClassReport& cls : phase.classes) {
    const uint64_t score_total = cls.score_cache_hits + cls.score_cache_misses;
    const uint64_t plan_total = cls.plan_cache_hits + cls.plan_cache_misses;
    emitter->AddEntry(
        std::string(arrival) + "/" + phase.phase + "/" + cls.name,
        {{"arrival", arrival}, {"phase", phase.phase}, {"load_mode", "map"}},
        {{"queries", static_cast<double>(cls.queries)},
         {"rows", static_cast<double>(cls.rows)},
         {"errors", static_cast<double>(cls.errors)},
         {"digest_mismatches", static_cast<double>(cls.digest_mismatches)},
         {"p50_ms", cls.latency.p50_ms},
         {"p99_ms", cls.latency.p99_ms},
         {"mean_ms", cls.latency.mean_ms},
         {"max_ms", cls.latency.max_ms},
         {"early_terminated", static_cast<double>(cls.early_terminated)},
         {"scanned_candidates", static_cast<double>(cls.scanned_candidates)},
         {"candidate_sentences",
          static_cast<double>(cls.candidate_sentences)},
         {"planned_queries", static_cast<double>(cls.planned_queries)},
         {"atoms_block_inplace",
          static_cast<double>(cls.atoms_block_inplace)},
         {"atoms_decode_gallop",
          static_cast<double>(cls.atoms_decode_gallop)},
         {"semi_join_paths", static_cast<double>(cls.semi_join_paths)},
         {"quintuple_paths", static_cast<double>(cls.quintuple_paths)},
         {"score_cache_hits", static_cast<double>(cls.score_cache_hits)},
         {"score_cache_misses",
          static_cast<double>(cls.score_cache_misses)},
         {"score_cache_hit_rate",
          score_total == 0 ? 0.0
                           : static_cast<double>(cls.score_cache_hits) /
                                 static_cast<double>(score_total)},
         {"plan_cache_hits", static_cast<double>(cls.plan_cache_hits)},
         {"plan_cache_misses", static_cast<double>(cls.plan_cache_misses)},
         {"plan_cache_hit_rate",
          plan_total == 0 ? 0.0
                          : static_cast<double>(cls.plan_cache_hits) /
                                static_cast<double>(plan_total)}});
  }
}

void PrintPhase(const char* arrival, const replay::PhaseReport& phase) {
  std::printf("  [%s/%s] %.3fs wall\n", arrival, phase.phase.c_str(),
              phase.wall_seconds);
  for (const replay::ClassReport& cls : phase.classes) {
    std::printf(
        "    %-16s q=%3zu rows=%5zu err=%zu mism=%zu | p50=%7.2fms "
        "p99=%7.2fms | score %llu/%llu plan %llu/%llu | et=%zu\n",
        cls.name.c_str(), cls.queries, cls.rows, cls.errors,
        cls.digest_mismatches, cls.latency.p50_ms, cls.latency.p99_ms,
        static_cast<unsigned long long>(cls.score_cache_hits),
        static_cast<unsigned long long>(cls.score_cache_hits +
                                        cls.score_cache_misses),
        static_cast<unsigned long long>(cls.plan_cache_hits),
        static_cast<unsigned long long>(cls.plan_cache_hits +
                                        cls.plan_cache_misses),
        cls.early_terminated);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 2;
  const size_t queries = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 96;
  const size_t clients = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;
  std::printf(
      "Workload traffic replay: scale=%d, %zu queries/phase, %zu clients, "
      "simd=%s\n\n",
      scale, queries, clients, simd::ActiveIsaName());

  Pipeline pipeline;
  const Pipeline& const_pipeline = pipeline;
  EmbeddingModel embeddings;

  replay::WorkloadOptions workload_options;
  workload_options.scale = scale;
  auto workloads = replay::BuildAllWorkloads(pipeline, workload_options);
  if (!workloads.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 workloads.status().ToString().c_str());
    return 1;
  }

  // Units are heap-allocated: the engine and service borrow pointers into
  // the unit (corpus, index), so the unit's address must survive the
  // vector growing.
  std::vector<std::unique_ptr<WorkloadUnderTest>> fleet;
  for (replay::Workload& workload : *workloads) {
    auto unit_ptr = std::make_unique<WorkloadUnderTest>();
    WorkloadUnderTest& unit = *unit_ptr;
    unit.workload = std::move(workload);
    unit.index = BuildMappedIndex(unit.workload.corpus, unit.workload.name);
    if (unit.index == nullptr) return 1;
    unit.engine = std::make_unique<Engine>(&unit.workload.corpus,
                                           unit.index.get(), &embeddings,
                                           &const_pipeline.recognizer());
    // Reference digests from the seed-semantics path: serial, planner off,
    // no early termination — the baseline every replayed result must match
    // byte for byte.
    EngineOptions reference;
    reference.use_planner = false;
    reference.early_terminate = false;
    reference.num_threads = 1;
    for (const replay::WorkloadQuery& query : unit.workload.queries) {
      auto result = unit.engine->Execute(query.query, reference);
      if (!result.ok()) {
        std::fprintf(stderr, "reference run failed (%s/%s): %s\n",
                     unit.workload.name.c_str(), query.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      unit.expected_digests.push_back(replay::RowDigest(*result));
    }
    std::printf("built %-16s %5zu sentences, %zu queries, mapped=%d\n",
                unit.workload.name.c_str(), unit.workload.corpus.NumSentences(),
                unit.workload.queries.size(), unit.index->mapped() ? 1 : 0);
    fleet.push_back(std::move(unit_ptr));
  }
  std::printf("\n");

  bench::JsonEmitter emitter("workloads");
  emitter.SetMeta("scale", static_cast<double>(scale));
  emitter.SetMeta("replay_queries", static_cast<double>(queries));
  emitter.SetMeta("clients", static_cast<double>(clients));
  emitter.SetMeta("index_shards", static_cast<double>(kIndexShards));
  emitter.SetMeta("workload_classes", static_cast<double>(fleet.size()));

  size_t failures = 0;
  const struct {
    const char* name;
    replay::ArrivalProcess arrival;
  } arrivals[] = {{"closed", replay::ArrivalProcess::kClosed},
                  {"open", replay::ArrivalProcess::kOpen}};
  for (const auto& arrival : arrivals) {
    // Fresh services per arrival mode: the cold phase must start from
    // empty caches to mean anything.
    std::vector<replay::ReplayTarget> targets;
    for (std::unique_ptr<WorkloadUnderTest>& unit : fleet) {
      unit->service = MakeService(unit->engine.get(), clients);
      targets.push_back({&unit->workload, unit->service.get(),
                         unit->expected_digests});
    }
    replay::TrafficOptions traffic;
    traffic.arrival = arrival.arrival;
    traffic.clients = clients;
    traffic.queries = queries;
    traffic.open_rate_qps = 100.0;
    replay::ReplayReport report = replay::ReplayTraffic(targets, traffic);
    PrintPhase(arrival.name, report.cold);
    PrintPhase(arrival.name, report.warm);
    EmitPhase(&emitter, arrival.name, report.cold);
    EmitPhase(&emitter, arrival.name, report.warm);
    failures += report.TotalErrors();
  }

  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed to write BENCH_workloads.json\n");
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr,
                 "\n%zu errors/digest mismatches — determinism contract "
                 "violated under traffic\n",
                 failures);
    return 1;
  }
  std::printf("\nwrote BENCH_workloads.json (all digests matched)\n");
  return 0;
}

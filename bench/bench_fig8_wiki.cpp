// Figure 8: the Figure-7 measurement repeated on the Wikipedia-like corpus.
//
// Paper shape: same ordering as Figure 7; INVERTED degrades fastest with
// corpus size (the paper could not scale it past 5000 articles).
#include "bench_util.h"

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "corpus/query_gen.h"
#include "util/timer.h"

using namespace koko;

int main() {
  std::printf("Figure 8 reproduction: index performance on Wikipedia-like corpus\n");
  std::printf("paper shape: same ordering as Fig. 7; INVERTED scales worst\n\n");
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 1500, .seed = 701});
  AnnotatedCorpus full = pipeline.AnnotateCorpus(docs);

  for (size_t articles : {500u, 1500u}) {
    AnnotatedCorpus corpus;
    corpus.docs.assign(full.docs.begin(),
                       full.docs.begin() + static_cast<long>(articles));
    corpus.RebuildRefs();
    auto queries = GenerateSyntheticTreeBenchmark(
        corpus, {.queries_per_setting = 5, .seed = 711});
    std::printf("-- %zu articles (%zu sentences), %zu queries --\n", articles,
                corpus.NumSentences(), queries.size());

    auto koko_index = KokoTreeIndex::Build(corpus);
    auto inverted = InvertedIndex::Build(corpus);
    auto adv = AdvInvertedIndex::Build(corpus);
    auto subtree = SubtreeIndex::Build(corpus);

    for (const TreeIndex* scheme :
         std::initializer_list<const TreeIndex*>{koko_index.get(), inverted.get(),
                                                 adv.get(), subtree.get()}) {
      double total_seconds = 0;
      double eff_sum = 0;
      size_t supported = 0;
      for (const auto& query : queries) {
        WallTimer timer;
        auto candidates = scheme->CandidateSentences(query.paths);
        double seconds = timer.ElapsedSeconds();
        if (!candidates.ok()) continue;
        total_seconds += seconds;
        eff_sum += IndexEffectiveness(corpus, query.paths, *candidates);
        ++supported;
      }
      std::printf("  %-12s supported=%3zu/%zu  lookup=%8.4fs  eff=%.3f\n",
                  std::string(scheme->name()).c_str(), supported, queries.size(),
                  total_seconds,
                  supported ? eff_sum / static_cast<double>(supported) : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

// Figure 8: the Figure-7 measurement repeated on the Wikipedia-like corpus.
//
// Paper shape: same ordering as Figure 7; INVERTED degrades fastest with
// corpus size (the paper could not scale it past 5000 articles).
#include "bench_util.h"

#include <cstdlib>

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "corpus/query_gen.h"
#include "util/timer.h"

using namespace koko;

// Usage: bench_fig8_wiki [articles=1500]  (sweeps articles/3 and articles)
int main(int argc, char** argv) {
  const int num_articles = argc > 1 ? std::atoi(argv[1]) : 1500;
  std::printf("Figure 8 reproduction: index performance on Wikipedia-like corpus\n");
  std::printf("paper shape: same ordering as Fig. 7; INVERTED scales worst\n\n");
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = num_articles, .seed = 701});
  AnnotatedCorpus full = pipeline.AnnotateCorpus(docs);

  for (size_t articles : {static_cast<size_t>(num_articles) / 3,
                          static_cast<size_t>(num_articles)}) {
    AnnotatedCorpus corpus;
    corpus.docs.assign(full.docs.begin(),
                       full.docs.begin() + static_cast<long>(articles));
    corpus.RebuildRefs();
    auto queries = GenerateSyntheticTreeBenchmark(
        corpus, {.queries_per_setting = 5, .seed = 711});
    std::printf("-- %zu articles (%zu sentences), %zu queries --\n", articles,
                corpus.NumSentences(), queries.size());

    // KOKO enters the comparison in its shipped sharded configuration.
    auto koko_index = ShardedKokoTreeIndex::Build(corpus, 3);
    auto inverted = InvertedIndex::Build(corpus);
    auto adv = AdvInvertedIndex::Build(corpus);
    auto subtree = SubtreeIndex::Build(corpus);

    for (const TreeIndex* scheme :
         std::initializer_list<const TreeIndex*>{koko_index.get(), inverted.get(),
                                                 adv.get(), subtree.get()}) {
      double total_seconds = 0;
      double eff_sum = 0;
      size_t supported = 0;
      for (const auto& query : queries) {
        WallTimer timer;
        auto candidates = scheme->CandidateSentences(query.paths);
        double seconds = timer.ElapsedSeconds();
        if (!candidates.ok()) continue;
        total_seconds += seconds;
        eff_sum += IndexEffectiveness(corpus, query.paths, *candidates);
        ++supported;
      }
      std::printf("  %-12s supported=%3zu/%zu  lookup=%8.4fs  eff=%.3f\n",
                  std::string(scheme->name()).c_str(), supported, queries.size(),
                  total_seconds,
                  supported ? eff_sum / static_cast<double>(supported) : 0.0);
    }
    std::printf("\n");
  }
  return 0;
}

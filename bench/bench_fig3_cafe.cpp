// Figure 3: precision / recall / F1 of cafe-name extraction on the two blog
// corpora (BaristaMag-like short articles, Sprudge-like long articles) for
// CRFsuite, IKE and KOKO across thresholds.
//
// Paper shape: KOKO beats IKE and CRF in F1 at every threshold on both
// datasets (best around mid thresholds), because only KOKO aggregates
// partial evidence across a document.
#include "bench_util.h"

#include <cstdlib>

#include "extract/crf.h"
#include "extract/ike.h"

using namespace koko;
using namespace koko::bench;

namespace {

void RunDataset(const char* name, bool long_articles, int articles) {
  std::printf("== %s (%d articles, %s) ==\n", name, articles,
              long_articles ? "long" : "short");
  LabeledCorpus blogs = GenerateCafeBlogs(
      {.num_articles = articles, .long_articles = long_articles, .seed = 101});
  TrainTestSplit split = SplitHalf(blogs);

  Pipeline pipeline;
  AnnotatedCorpus test = pipeline.AnnotateCorpus(split.test_docs);
  // Shipped configuration: sharded index + default EngineOptions (planner
  // on), not a bespoke monolithic build.
  auto index = ShardedKokoIndex::Build(test, kBenchIndexShards);
  EmbeddingModel embeddings;
  Engine engine(&test, index.get(), &embeddings, pipeline.recognizer());

  // CRF: trained on the other half (50% of the data, as in the paper).
  AnnotatedCorpus train = pipeline.AnnotateCorpus(split.train_docs);
  std::vector<const Document*> train_docs;
  for (const auto& d : train.docs) train_docs.push_back(&d);
  CrfExtractor crf;
  crf.Train(CrfExtractor::MakeTrainingData(train_docs, split.train_gold));
  PRF crf_prf = ScoreExtractionLists(split.test_gold, crf.ExtractMentions(test));
  PrintPrfRow("CRFsuite", -1, crf_prf);

  // IKE: the Appendix-A patterns (single-sentence matching).
  IkeExtractor ike(&embeddings);
  auto ike_result = ike.RunAll(test, {
                                         "(NP) (\"serves coffee\" ~ 8)",
                                         "(NP) (\"employs\" ~ 8)",
                                         "(\"baristas of\" ~ 8) (NP)",
                                         "(NP) \", a cafe\"",
                                     });
  PRF ike_prf = ScoreExtractionLists(split.test_gold, ike_result.value_or({}));
  PrintPrfRow("IKE", -1, ike_prf);

  // KOKO across thresholds.
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto values =
        RunKokoExtraction(engine, EngineOptions(), CafeQuery(threshold));
    PRF prf = ScoreExtractionLists(split.test_gold, values);
    PrintPrfRow("KOKO", threshold, prf);
  }
  std::printf("\n");
}

}  // namespace

// Usage: bench_fig3_cafe [short_articles=84] [long_articles=120]
int main(int argc, char** argv) {
  const int short_articles = argc > 1 ? std::atoi(argv[1]) : 84;
  const int long_articles = argc > 2 ? std::atoi(argv[2]) : 120;
  std::printf("Figure 3 reproduction: extracting cafe names\n");
  std::printf("paper shape: KOKO F1 > IKE, CRF at every threshold; KOKO up to "
              "~3x better\n\n");
  RunDataset("BaristaMag-like", /*long_articles=*/false, short_articles);
  RunDataset("Sprudge-like", /*long_articles=*/true, long_articles);
  return 0;
}

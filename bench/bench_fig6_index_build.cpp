// Figure 6: index construction time (a) and index size (b) for the four
// indexing schemes as the corpus grows.
//
// Paper shape: build time INVERTED ≈ ADVINVERTED < KOKO < SUBTREE (SUBTREE
// > 2x KOKO); size KOKO smallest (hierarchy merging), INVERTED < ADV-
// INVERTED, SUBTREE largest (several times the corpus itself). The paper
// also reports the hierarchy index merges away >99.7% of tree nodes.
#include "bench_util.h"

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace koko;

int main() {
  std::printf("Figure 6 reproduction: index build time and size\n");
  std::printf("paper shape: time INV~ADV < KOKO < SUBTREE; size KOKO < INV < "
              "ADV << SUBTREE\n\n");
  Pipeline pipeline;
  auto all_docs = GenerateWikiArticles({.num_articles = 2000, .seed = 501});
  AnnotatedCorpus full = pipeline.AnnotateCorpus(all_docs);

  for (size_t articles : {250u, 500u, 1000u, 2000u}) {
    AnnotatedCorpus corpus;
    corpus.docs.assign(full.docs.begin(),
                       full.docs.begin() + static_cast<long>(articles));
    corpus.RebuildRefs();
    std::printf("-- %zu articles, %zu sentences, %zu tokens --\n", articles,
                corpus.NumSentences(), corpus.NumTokens());

    auto koko_index = KokoTreeIndex::Build(corpus);
    auto inverted = InvertedIndex::Build(corpus);
    auto adv = AdvInvertedIndex::Build(corpus);
    auto subtree = SubtreeIndex::Build(corpus);

    struct Row {
      const TreeIndex* index;
    };
    for (const TreeIndex* index :
         std::initializer_list<const TreeIndex*>{koko_index.get(), inverted.get(),
                                                 adv.get(), subtree.get()}) {
      std::printf("  %-12s build=%7.3fs  size=%s\n",
                  std::string(index->name()).c_str(), index->build_seconds(),
                  HumanBytes(index->MemoryUsage()).c_str());
    }
    const auto& stats = koko_index->index().stats();
    std::printf("  KOKO hierarchy merge: %zu tokens -> %zu PL + %zu POS nodes "
                "(%.2f%% / %.2f%% removed)\n\n",
                stats.num_tokens, stats.pl_trie_nodes, stats.pos_trie_nodes,
                100 * stats.PlCompression(), 100 * stats.PosCompression());
  }
  return 0;
}

// Example 2.2: SimilarTo distinguishes syntactically identical sentences.
//
// Paper table:
//              S1 (china/japan)          S2 (beijing/tokyo)
//   Q1 (city)      NA                    Tokyo 0.409, Beijing 0.358
//   Q2 (country)   China 0.513, Japan 0.457   NA
#include "bench_util.h"

using namespace koko;
using namespace koko::bench;

int main() {
  std::printf("Example 2.2 reproduction: SimilarTo on GPE entities\n\n");
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(
      {{"s1", "Cities in asian countries such as China and Japan."},
       {"s2", "Cities in asian countries such as Beijing and Tokyo."}});
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());

  for (const char* descriptor : {"city", "country"}) {
    char query[512];
    std::snprintf(query, sizeof(query),
                  "extract a:GPE from \"input.txt\" if () satisfying a "
                  "(a SimilarTo \"%s\" {1.0}) with threshold 0.3",
                  descriptor);
    auto result = engine.ExecuteText(query);
    std::printf("Q(%s):\n", descriptor);
    if (!result.ok()) {
      std::printf("  failed: %s\n", result.status().ToString().c_str());
      continue;
    }
    if (result->rows.empty()) std::printf("  (no results)\n");
    for (const auto& row : result->rows) {
      std::printf("  S%u: %-10s %.4f\n", row.sid + 1, row.values[0].c_str(),
                  row.scores[0]);
    }
  }
  std::printf("\nexpected shape: Q(city) fires only on S2; Q(country) only on "
              "S1; scores in (0.3, 0.6)\n");
  return 0;
}

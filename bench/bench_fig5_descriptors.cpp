// Figure 5: KOKO with vs without descriptor expansion (F1 vs threshold) on
// both blog corpora.
//
// Paper shape: descriptors improve F1 on the short-article corpus
// (BaristaMag) where evidence is weak and paraphrased; on the long-article
// corpus (Sprudge) strong exact-phrase evidence dominates and descriptors
// add little.
#include "bench_util.h"

#include <cstdlib>

using namespace koko;
using namespace koko::bench;

namespace {

void RunDataset(const char* name, bool long_articles, int articles) {
  std::printf("== %s ==\n", name);
  LabeledCorpus blogs = GenerateCafeBlogs(
      {.num_articles = articles, .long_articles = long_articles, .seed = 301});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  // Shipped configuration: sharded index; the ablation toggles only
  // use_descriptors on top of default EngineOptions.
  auto index = ShardedKokoIndex::Build(corpus, kBenchIndexShards);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    EngineOptions with_descriptors;
    with_descriptors.use_descriptors = true;
    EngineOptions without_descriptors;
    without_descriptors.use_descriptors = false;
    auto with =
        RunKokoExtraction(engine, with_descriptors, CafeQuery(threshold));
    auto without =
        RunKokoExtraction(engine, without_descriptors, CafeQuery(threshold));
    PRF with_prf = ScoreExtractionLists(blogs.gold, with);
    PRF without_prf = ScoreExtractionLists(blogs.gold, without);
    std::printf("  t=%.1f  with descriptors F1=%.3f   without F1=%.3f   delta=%+.3f\n",
                threshold, with_prf.f1, without_prf.f1,
                with_prf.f1 - without_prf.f1);
  }
  std::printf("\n");
}

}  // namespace

// Usage: bench_fig5_descriptors [articles=90]
int main(int argc, char** argv) {
  const int articles = argc > 1 ? std::atoi(argv[1]) : 90;
  std::printf("Figure 5 reproduction: KOKO with/without descriptors\n");
  std::printf("paper shape: descriptors help on short articles, ~no gain on "
              "long articles\n\n");
  RunDataset("BaristaMag-like (short)", /*long_articles=*/false, articles);
  RunDataset("Sprudge-like (long)", /*long_articles=*/true, articles);
  return 0;
}

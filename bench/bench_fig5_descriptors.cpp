// Figure 5: KOKO with vs without descriptor expansion (F1 vs threshold) on
// both blog corpora.
//
// Paper shape: descriptors improve F1 on the short-article corpus
// (BaristaMag) where evidence is weak and paraphrased; on the long-article
// corpus (Sprudge) strong exact-phrase evidence dominates and descriptors
// add little.
#include "bench_util.h"

using namespace koko;
using namespace koko::bench;

namespace {

void RunDataset(const char* name, bool long_articles) {
  std::printf("== %s ==\n", name);
  LabeledCorpus blogs = GenerateCafeBlogs(
      {.num_articles = 90, .long_articles = long_articles, .seed = 301});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  for (double threshold : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto with = RunKokoExtraction(corpus, *index, pipeline, embeddings,
                                  CafeQuery(threshold), /*use_descriptors=*/true);
    auto without = RunKokoExtraction(corpus, *index, pipeline, embeddings,
                                     CafeQuery(threshold),
                                     /*use_descriptors=*/false);
    PRF with_prf = ScoreExtractionLists(blogs.gold, with);
    PRF without_prf = ScoreExtractionLists(blogs.gold, without);
    std::printf("  t=%.1f  with descriptors F1=%.3f   without F1=%.3f   delta=%+.3f\n",
                threshold, with_prf.f1, without_prf.f1,
                with_prf.f1 - without_prf.f1);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 5 reproduction: KOKO with/without descriptors\n");
  std::printf("paper shape: descriptors help on short articles, ~no gain on "
              "long articles\n\n");
  RunDataset("BaristaMag-like (short)", /*long_articles=*/false);
  RunDataset("Sprudge-like (long)", /*long_articles=*/true);
  return 0;
}

// Table 1: average extract-clause evaluation time (ms per relevant
// sentence) for span variables with 1, 3 and 5 atoms — KOKO&GSP vs
// KOKO&NOGSP, on HappyDB-like and Wikipedia-like corpora (Synthetic Span
// benchmark).
//
// Paper shape: with 1 atom NOGSP is slightly faster (plan generation
// overhead buys nothing); with 3 atoms GSP wins clearly; with 5 atoms GSP
// is about three orders of magnitude faster.
#include "bench_util.h"

#include <cstdlib>
#include <map>

#include "corpus/query_gen.h"

using namespace koko;

namespace {

void RunCorpus(const char* name, const AnnotatedCorpus& corpus,
               int queries_per_setting) {
  std::printf("== %s (%zu sentences) ==\n", name, corpus.NumSentences());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = queries_per_setting, .seed = 801});
  // Shipped configuration: sharded index (the GSP/NOGSP toggle rides on
  // top of default EngineOptions).
  auto index = ShardedKokoIndex::Build(corpus, bench::kBenchIndexShards);
  EmbeddingModel embeddings;
  Pipeline pipeline;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());

  // atoms -> {gsp_ms_per_sentence_sum, nogsp_..., query count}
  std::map<int, std::array<double, 3>> table;
  for (const auto& bench : queries) {
    for (bool use_gsp : {true, false}) {
      EngineOptions options;
      options.use_gsp = use_gsp;
      options.max_rows = 200000;
      auto result = engine.Execute(bench.query, options);
      if (!result.ok() || result->candidate_sentences == 0) continue;
      double eval_seconds = result->phases.Get("extract") +
                            result->phases.Get("GSP");
      double ms_per_sentence =
          1e3 * eval_seconds / static_cast<double>(result->candidate_sentences);
      auto& row = table[bench.num_atoms];
      row[use_gsp ? 0 : 1] += ms_per_sentence;
      if (use_gsp) row[2] += 1;
    }
  }
  std::printf("  %-14s %12s %12s\n", "#atoms", "KOKO&GSP", "KOKO&NOGSP");
  for (const auto& [atoms, row] : table) {
    if (row[2] == 0) continue;
    std::printf("  %-14d %9.4f ms %9.4f ms   (NOGSP/GSP = %.1fx)\n", atoms,
                row[0] / row[2], row[1] / row[2],
                row[0] > 0 ? row[1] / row[0] : 0.0);
  }
  std::printf("\n");
}

}  // namespace

// Usage: bench_table1_gsp [moments=1200] [articles=250] [queries_per_setting=25]
int main(int argc, char** argv) {
  const int moments = argc > 1 ? std::atoi(argv[1]) : 1200;
  const int articles = argc > 2 ? std::atoi(argv[2]) : 250;
  const int queries_per_setting = argc > 3 ? std::atoi(argv[3]) : 25;
  std::printf("Table 1 reproduction: GSP vs NOGSP evaluation time per sentence\n");
  std::printf("paper shape: 1 atom ~parity; 3 atoms GSP faster; 5 atoms GSP "
              "orders of magnitude faster\n\n");
  Pipeline pipeline;
  {
    auto docs = GenerateHappyMoments(
        {.num_moments = moments, .seed = 802});
    AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
    RunCorpus("HappyDB-like", corpus, queries_per_setting);
  }
  {
    auto docs = GenerateWikiArticles({.num_articles = articles, .seed = 803});
    AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
    RunCorpus("Wikipedia-like", corpus, queries_per_setting);
  }
  return 0;
}

// Network serving bench: drives a fleet of KokoServers (one per paper
// workload class, each over its own QueryService with a zero-copy mapped
// index) from real TCP clients and measures wire-level request latency in
// the two canonical arrival modes — closed loop (each client sends its
// next request when the previous returns; measures capacity) and open
// loop (Poisson arrivals at a fixed rate, latency measured from the
// scheduled arrival so queueing delay is visible). A burst phase fires
// all clients at one server simultaneously, once with batching opted out
// (to prove genuine concurrent admissions: peak_inflight > 1) and once
// batchable (to exercise leader/follower coalescing over the wire).
//
// Every response's rows are digested against the serial seed-semantics
// reference; any error or digest mismatch fails the run — the bench is
// also a wire-level determinism check under load.
//
// Emits BENCH_net.json: per-arm p50/p99/p999/mean/max latency and
// achieved qps, plus fleet-wide admission peaks and batch counters in
// meta (schema: docs/BENCH_SCHEMA.md).
//
// Usage: bench_net [scale] [queries_per_arm] [clients]
#include "bench_util.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "index/sharded_index.h"
#include "net/client.h"
#include "net/server.h"
#include "replay/workloads.h"
#include "serve/query_service.h"
#include "util/simd.h"

using namespace koko;

namespace {

constexpr size_t kIndexShards = 3;

struct ServedClass {
  replay::Workload workload;
  std::unique_ptr<ShardedKokoIndex> index;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<net::KokoServer> server;
  std::vector<uint64_t> expected_digests;
};

std::unique_ptr<ShardedKokoIndex> BuildMappedIndex(
    const AnnotatedCorpus& corpus, const std::string& name) {
  auto built = ShardedKokoIndex::Build(corpus, kIndexShards);
  const std::string path = "bench_net_" + name + ".idx";
  if (!built->Save(path).ok()) return nullptr;
  ShardedKokoIndex::LoadOptions load;
  load.mode = LoadMode::kMap;
  auto loaded = ShardedKokoIndex::Load(path, load);
  std::remove(path.c_str());
  if (!loaded.ok()) return nullptr;
  return std::move(*loaded);
}

/// One scheduled request: which class/query, and (open loop) when it is
/// due relative to the arm's start.
struct Slot {
  size_t cls = 0;
  size_t query = 0;
  double due_seconds = 0;
};

struct ArmResult {
  std::vector<double> latencies_ms;  // indexed by slot
  std::atomic<size_t> errors{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> rows{0};
  double wall_seconds = 0;
};

double Percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(
      static_cast<double>(sorted.size() - 1) * q + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Runs one arm: `clients` worker threads, each holding one persistent
/// connection per class server, claim schedule slots off a shared cursor.
/// Open-loop slots carry a due time the worker sleeps until; latency is
/// then measured from the *scheduled* arrival, not the actual send.
void RunArm(const std::vector<std::unique_ptr<ServedClass>>& fleet,
            const std::vector<Slot>& schedule, size_t clients, bool open_loop,
            ArmResult* result) {
  result->latencies_ms.assign(schedule.size(), 0);
  std::atomic<size_t> cursor{0};
  const auto arm_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (size_t w = 0; w < clients; ++w) {
    workers.emplace_back([&]() {
      std::vector<net::KokoClient> conns;
      for (const auto& served : fleet) {
        auto client = net::KokoClient::Connect(served->server->port());
        if (!client.ok()) {
          result->errors.fetch_add(schedule.size());  // poison the run
          return;
        }
        conns.push_back(std::move(*client));
      }
      while (true) {
        const size_t slot_index = cursor.fetch_add(1);
        if (slot_index >= schedule.size()) break;
        const Slot& slot = schedule[slot_index];
        const ServedClass& served = *fleet[slot.cls];
        auto scheduled = arm_start;
        if (open_loop) {
          scheduled += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(slot.due_seconds));
          std::this_thread::sleep_until(scheduled);
        } else {
          scheduled = std::chrono::steady_clock::now();
        }
        net::NetRequest request;
        request.query_text = served.workload.queries[slot.query].text;
        auto wire = conns[slot.cls].Query(request);
        const auto finished = std::chrono::steady_clock::now();
        if (!wire.ok() || !wire->status.ok()) {
          result->errors.fetch_add(1);
          continue;
        }
        result->latencies_ms[slot_index] =
            std::chrono::duration<double, std::milli>(finished - scheduled)
                .count();
        result->rows.fetch_add(wire->rows.size());
        if (replay::RowDigest(wire->rows) !=
            served.expected_digests[slot.query]) {
          result->mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  result->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    arm_start)
          .count();
}

/// Fires every client at class 0 simultaneously (spin barrier), so the
/// admission queue provably sees concurrent in-flight executions.
/// `allow_batch` false forces distinct admissions (peak_inflight > 1);
/// true lets the coalescer turn the burst into leader + followers.
size_t RunBurst(const ServedClass& served, size_t clients, int rounds,
                bool allow_batch) {
  std::atomic<size_t> ready{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> workers;
  for (size_t w = 0; w < clients; ++w) {
    workers.emplace_back([&]() {
      auto client = net::KokoClient::Connect(served.server->port());
      const bool connected = client.ok();
      if (!connected) failures.fetch_add(1);
      // A failed connection still takes the barrier turns — the other
      // clients must not spin forever waiting for it.
      for (int round = 0; round < rounds; ++round) {
        ready.fetch_add(1);
        while (ready.load() < clients * static_cast<size_t>(round + 1)) {
          std::this_thread::yield();
        }
        if (!connected) continue;
        net::NetRequest request;
        request.query_text = served.workload.queries.front().text;
        request.allow_batch = allow_batch;
        auto wire = client->Query(request);
        if (!wire.ok() || !wire->status.ok() ||
            replay::RowDigest(wire->rows) != served.expected_digests.front()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return failures.load();
}

void EmitArm(bench::JsonEmitter* emitter, const char* arrival,
             const ArmResult& result, size_t clients, double open_rate_qps) {
  std::vector<double> sorted;
  for (double ms : result.latencies_ms) {
    if (ms > 0) sorted.push_back(ms);
  }
  std::sort(sorted.begin(), sorted.end());
  double sum = 0;
  for (double ms : sorted) sum += ms;
  const double p50 = Percentile(sorted, 0.50);
  const double p99 = Percentile(sorted, 0.99);
  const double p999 = Percentile(sorted, 0.999);
  const double qps = result.wall_seconds > 0
                         ? static_cast<double>(sorted.size()) /
                               result.wall_seconds
                         : 0;
  std::printf(
      "  [%s] q=%zu err=%zu mism=%zu | p50=%.2fms p99=%.2fms p999=%.2fms | "
      "%.1f qps over %.2fs\n",
      arrival, sorted.size(), result.errors.load(), result.mismatches.load(),
      p50, p99, p999, qps, result.wall_seconds);
  emitter->AddEntry(
      arrival, {{"arrival", arrival}},
      {{"queries", static_cast<double>(sorted.size())},
       {"clients", static_cast<double>(clients)},
       {"errors", static_cast<double>(result.errors.load())},
       {"digest_mismatches", static_cast<double>(result.mismatches.load())},
       {"rows", static_cast<double>(result.rows.load())},
       {"p50_ms", p50},
       {"p99_ms", p99},
       {"p999_ms", p999},
       {"mean_ms", sorted.empty() ? 0 : sum / static_cast<double>(sorted.size())},
       {"max_ms", sorted.empty() ? 0 : sorted.back()},
       {"qps", qps},
       {"open_rate_qps", open_rate_qps},
       {"wall_seconds", result.wall_seconds}});
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 1;
  const size_t queries =
      argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 96;
  const size_t clients =
      argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 4;
  const double open_rate_qps = 100.0;
  std::printf(
      "Network serving bench: scale=%d, %zu queries/arm, %zu clients, "
      "simd=%s\n\n",
      scale, queries, clients, simd::ActiveIsaName());

  Pipeline pipeline;
  const Pipeline& const_pipeline = pipeline;
  EmbeddingModel embeddings;

  replay::WorkloadOptions workload_options;
  workload_options.scale = scale;
  auto workloads = replay::BuildAllWorkloads(pipeline, workload_options);
  if (!workloads.ok()) {
    std::fprintf(stderr, "workload build failed: %s\n",
                 workloads.status().ToString().c_str());
    return 1;
  }

  std::vector<std::unique_ptr<ServedClass>> fleet;
  for (replay::Workload& workload : *workloads) {
    auto served_ptr = std::make_unique<ServedClass>();
    ServedClass& served = *served_ptr;
    served.workload = std::move(workload);
    served.index = BuildMappedIndex(served.workload.corpus,
                                    served.workload.name);
    if (served.index == nullptr) {
      std::fprintf(stderr, "index build failed for %s\n",
                   served.workload.name.c_str());
      return 1;
    }
    served.engine = std::make_unique<Engine>(&served.workload.corpus,
                                             served.index.get(), &embeddings,
                                             &const_pipeline.recognizer());
    EngineOptions reference;
    reference.use_planner = false;
    reference.early_terminate = false;
    reference.num_threads = 1;
    for (const replay::WorkloadQuery& query : served.workload.queries) {
      auto result = served.engine->Execute(query.query, reference);
      if (!result.ok()) {
        std::fprintf(stderr, "reference run failed (%s/%s): %s\n",
                     served.workload.name.c_str(), query.name.c_str(),
                     result.status().ToString().c_str());
        return 1;
      }
      served.expected_digests.push_back(replay::RowDigest(*result));
    }
    QueryService::Options service_options;
    service_options.num_threads = clients;
    service_options.max_inflight = clients;
    served.service = std::make_unique<QueryService>(
        served.engine.get(), service_options, kIndexShards);
    served.server = std::make_unique<net::KokoServer>(served.service.get(),
                                                      net::KokoServer::Options());
    const Status started = served.server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed for %s: %s\n",
                   served.workload.name.c_str(), started.ToString().c_str());
      return 1;
    }
    std::printf("serving %-16s on port %u (%zu queries, mapped=%d)\n",
                served.workload.name.c_str(), served.server->port(),
                served.workload.queries.size(),
                served.index->mapped() ? 1 : 0);
    fleet.push_back(std::move(served_ptr));
  }
  std::printf("\n");

  // One seeded mixed-class schedule per arm (deterministic: which server
  // and query each slot hits, and the open-loop Poisson arrival times).
  std::mt19937_64 rng(1);
  std::exponential_distribution<double> gap(open_rate_qps);
  std::vector<Slot> schedule(queries);
  double due = 0;
  for (Slot& slot : schedule) {
    slot.cls = rng() % fleet.size();
    slot.query = rng() % fleet[slot.cls]->workload.queries.size();
    due += gap(rng);
    slot.due_seconds = due;
  }

  bench::JsonEmitter emitter("net");
  emitter.SetMeta("scale", static_cast<double>(scale));
  emitter.SetMeta("queries_per_arm", static_cast<double>(queries));
  emitter.SetMeta("clients", static_cast<double>(clients));
  emitter.SetMeta("workload_classes", static_cast<double>(fleet.size()));
  emitter.SetMeta("index_shards", static_cast<double>(kIndexShards));

  size_t failures = 0;

  ArmResult closed;
  RunArm(fleet, schedule, clients, /*open_loop=*/false, &closed);
  EmitArm(&emitter, "closed", closed, clients, 0);
  failures += closed.errors.load() + closed.mismatches.load();

  ArmResult open;
  RunArm(fleet, schedule, clients, /*open_loop=*/true, &open);
  EmitArm(&emitter, "open", open, clients, open_rate_qps);
  failures += open.errors.load() + open.mismatches.load();

  // Burst phases against class 0: unbatchable (forces concurrent
  // admissions — the peak_inflight > 1 proof) then batchable (drives the
  // coalescer's leader/follower path over the wire).
  failures += RunBurst(*fleet.front(), clients, /*rounds=*/3,
                       /*allow_batch=*/false);
  failures += RunBurst(*fleet.front(), clients, /*rounds=*/3,
                       /*allow_batch=*/true);

  uint64_t peak_inflight = 0;
  uint64_t peak_waiting = 0;
  uint64_t admission_rejected = 0;
  uint64_t batch_leaders = 0;
  uint64_t batch_followers = 0;
  uint64_t batch_peak_group = 0;
  uint64_t wire_requests = 0;
  uint64_t wire_protocol_errors = 0;
  for (const auto& served : fleet) {
    const QueryService::Stats service_stats = served->service->stats();
    peak_inflight = std::max(peak_inflight, service_stats.peak_inflight);
    peak_waiting = std::max(peak_waiting, service_stats.peak_waiting);
    admission_rejected += service_stats.rejected;
    const net::KokoServer::Stats server_stats = served->server->stats();
    batch_leaders += server_stats.batch.leaders;
    batch_followers += server_stats.batch.followers;
    batch_peak_group = std::max(batch_peak_group,
                                server_stats.batch.peak_group);
    wire_requests += server_stats.requests;
    wire_protocol_errors += server_stats.protocol_errors;
  }
  emitter.SetMeta("peak_inflight", static_cast<double>(peak_inflight));
  emitter.SetMeta("peak_waiting", static_cast<double>(peak_waiting));
  emitter.SetMeta("admission_rejected",
                  static_cast<double>(admission_rejected));
  emitter.SetMeta("batch_leaders", static_cast<double>(batch_leaders));
  emitter.SetMeta("batch_followers", static_cast<double>(batch_followers));
  emitter.SetMeta("batch_peak_group", static_cast<double>(batch_peak_group));
  emitter.SetMeta("wire_requests", static_cast<double>(wire_requests));
  emitter.SetMeta("wire_protocol_errors",
                  static_cast<double>(wire_protocol_errors));

  std::printf(
      "\nfleet: peak_inflight=%llu peak_waiting=%llu batch=%llu+%llu "
      "(peak group %llu) requests=%llu\n",
      static_cast<unsigned long long>(peak_inflight),
      static_cast<unsigned long long>(peak_waiting),
      static_cast<unsigned long long>(batch_leaders),
      static_cast<unsigned long long>(batch_followers),
      static_cast<unsigned long long>(batch_peak_group),
      static_cast<unsigned long long>(wire_requests));

  for (auto& served : fleet) served->server->Stop();

  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed writing BENCH_net.json\n");
    return 1;
  }
  if (clients > 1 && peak_inflight <= 1) {
    std::fprintf(stderr,
                 "FAIL: peak_inflight=%llu with %zu clients — the wire "
                 "front end never achieved concurrent admissions\n",
                 static_cast<unsigned long long>(peak_inflight), clients);
    return 1;
  }
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %zu errors/mismatches under wire traffic\n",
                 failures);
    return 1;
  }
  std::printf("OK: all wire responses matched the reference digests\n");
  return 0;
}

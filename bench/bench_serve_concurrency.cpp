// Concurrent serving: throughput and warm-cache behaviour of QueryService.
//
// Measures (a) cold vs warm repeated workload on one service — the warm
// pass must beat the cold pass on the aggregate ("satisfying") phase
// because the persistent per-shard score cache survives across queries —
// and (b) a client-count sweep (1..8 concurrent clients over one shared
// pool + admission queue), checking row counts stay byte-stable versus
// serial single-query execution at every concurrency level.
//
// argv[1] optionally overrides the article count (default 1000) for quick
// CI runs. Emits BENCH_serve.json.
#include "bench_util.h"

#include <cstdlib>
#include <thread>
#include <vector>

#include "index/sharded_index.h"
#include "serve/query_service.h"
#include "util/timer.h"

using namespace koko;

namespace {

// The §6.3-style example queries of bench_shard_scaleup; the Chocolate
// query carries a satisfying clause, so repeated runs exercise the score
// cache.
const char* kChocolateQuery = R"(
extract c:Entity from wiki.article if (
  /ROOT:{
    v = //verb,
    o = v//pobj[text="chocolate"],
    s = v/nsubj
  } (s) in (c))
satisfying v
  (v SimilarTo "is" {1})
with threshold 0.9
)";

const char* kTitleQuery = R"(
extract a:Person, b:Str from wiki.article if (
  /ROOT:{
    v = //"called",
    p = v/propn,
    b = p.subtree,
    c = a + ^ + v + ^ + b
  })
)";

struct WorkloadStats {
  double wall_s = 0;
  double satisfying_s = 0;
  size_t rows = 0;
  bool ok = true;
};

// One pass of the workload through the service on the calling thread.
WorkloadStats RunWorkload(QueryService& service,
                          const std::vector<std::string>& workload) {
  WorkloadStats stats;
  WallTimer timer;
  for (const std::string& query : workload) {
    auto result = service.Run(query);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      stats.ok = false;
      continue;
    }
    stats.satisfying_s += result->phases.Get("satisfying");
    stats.rows += result->rows.size();
  }
  stats.wall_s = timer.ElapsedSeconds();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t articles =
      argc > 1 ? static_cast<size_t>(std::strtoul(argv[1], nullptr, 10)) : 1000;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Concurrent serving: admission queue + shared pool + persistent "
              "score cache (%zu articles, %u hardware threads)\n\n",
              articles, cores);

  Pipeline pipeline;
  auto docs = GenerateWikiArticles(
      {.num_articles = static_cast<int>(articles), .seed = 901});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  constexpr size_t kShards = 4;
  auto index = ShardedKokoIndex::Build(corpus, kShards);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const std::vector<std::string> workload = {kChocolateQuery, kTitleQuery};

  bench::JsonEmitter emitter("serve");
  emitter.SetMeta("articles", static_cast<double>(articles));
  emitter.SetMeta("sentences", static_cast<double>(corpus.NumSentences()));
  emitter.SetMeta("hardware_threads", static_cast<double>(cores));
  emitter.SetMeta("index_shards", static_cast<double>(kShards));

  bool ok = true;

  // Serial single-query reference row counts (the byte-identity oracle for
  // the sweep below; the full row-level check lives in query_service_test).
  std::vector<size_t> serial_rows;
  {
    size_t total = 0;
    for (const std::string& query : workload) {
      EngineOptions serial;
      serial.max_rows = 500000;
      auto result = engine.ExecuteText(query, serial);
      if (!result.ok()) {
        std::fprintf(stderr, "serial reference failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      serial_rows.push_back(result->rows.size());
      total += result->rows.size();
    }
    std::printf("-- serial reference: %zu rows over %zu queries --\n\n", total,
                workload.size());
  }

  // (a) Cold vs warm: same service, repeated workload. The second pass
  // serves aggregate scores from the persistent cache.
  {
    QueryService::Options options;
    options.num_threads = std::max(1u, cores);
    options.max_inflight = 4;
    options.engine.max_rows = 500000;
    QueryService service(&engine, options, index->num_shards());

    WorkloadStats cold = RunWorkload(service, workload);
    ScoreCache::Stats cache_cold = service.score_cache().stats();
    PlanCache::Stats plans_cold = service.plan_cache().stats();
    WorkloadStats warm = RunWorkload(service, workload);
    ScoreCache::Stats cache_warm = service.score_cache().stats();
    PlanCache::Stats plans_warm = service.plan_cache().stats();
    ok &= cold.ok && warm.ok && cold.rows == warm.rows;

    const double agg_speedup =
        warm.satisfying_s > 0 ? cold.satisfying_s / warm.satisfying_s : 0;
    std::printf(
        "-- warm-cache repeat --\n"
        "  cold: total=%.4fs satisfying=%.4fs rows=%zu (scores: %llu misses, "
        "plans: %llu built)\n"
        "  warm: total=%.4fs satisfying=%.4fs rows=%zu (scores: +%llu hits, "
        "plans: +%llu hits)\n"
        "  satisfying speedup: %.2fx %s\n\n",
        cold.wall_s, cold.satisfying_s, cold.rows,
        static_cast<unsigned long long>(cache_cold.misses),
        static_cast<unsigned long long>(plans_cold.misses), warm.wall_s,
        warm.satisfying_s, warm.rows,
        static_cast<unsigned long long>(cache_warm.hits - cache_cold.hits),
        static_cast<unsigned long long>(plans_warm.hits - plans_cold.hits),
        agg_speedup, agg_speedup > 1.0 ? "[warm beats cold]" : "");
    emitter.AddEntry("warm_cache/cold",
                     {{"total_s", cold.wall_s},
                      {"satisfying_s", cold.satisfying_s},
                      {"rows", static_cast<double>(cold.rows)},
                      {"score_cache_misses",
                       static_cast<double>(cache_cold.misses)},
                      {"plan_cache_misses",
                       static_cast<double>(plans_cold.misses)}});
    emitter.AddEntry(
        "warm_cache/warm",
        {{"total_s", warm.wall_s},
         {"satisfying_s", warm.satisfying_s},
         {"rows", static_cast<double>(warm.rows)},
         {"score_cache_hits",
          static_cast<double>(cache_warm.hits - cache_cold.hits)},
         {"plan_cache_hits",
          static_cast<double>(plans_warm.hits - plans_cold.hits)},
         {"satisfying_speedup", agg_speedup}});
  }

  // (b) Client sweep: N concurrent clients, fresh service each (cold
  // caches), two rounds per client so every level also sees warm repeats.
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    QueryService::Options options;
    options.num_threads = std::max(1u, cores);
    options.max_inflight = 4;
    options.engine.max_rows = 500000;
    QueryService service(&engine, options, index->num_shards());

    constexpr int kRounds = 2;
    std::vector<WorkloadStats> per_client(clients);
    WallTimer timer;
    std::vector<std::thread> threads;
    for (size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        for (int r = 0; r < kRounds; ++r) {
          WorkloadStats pass = RunWorkload(service, workload);
          per_client[c].ok &= pass.ok;
          per_client[c].rows += pass.rows;
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall_s = timer.ElapsedSeconds();

    size_t expected_rows = 0;
    for (size_t rows : serial_rows) expected_rows += rows;
    expected_rows *= kRounds;
    for (const WorkloadStats& client : per_client) {
      ok &= client.ok;
      if (client.rows != expected_rows) {
        std::fprintf(stderr,
                     "row mismatch under concurrency: got %zu want %zu\n",
                     client.rows, expected_rows);
        ok = false;
      }
    }
    const size_t queries = clients * kRounds * workload.size();
    const double qps = wall_s > 0 ? static_cast<double>(queries) / wall_s : 0;
    QueryService::Stats stats = service.stats();
    std::printf(
        "-- clients=%zu: %zu queries in %.3fs (%.1f qps, peak inflight "
        "%llu) --\n",
        clients, queries, wall_s, qps,
        static_cast<unsigned long long>(stats.peak_inflight));
    emitter.AddEntry(
        "sweep/clients=" + std::to_string(clients),
        {{"clients", static_cast<double>(clients)},
         {"queries", static_cast<double>(queries)},
         {"wall_s", wall_s},
         {"qps", qps},
         {"peak_inflight", static_cast<double>(stats.peak_inflight)},
         {"score_cache_hits", static_cast<double>(stats.score_cache.hits)},
         {"score_cache_misses", static_cast<double>(stats.score_cache.misses)},
         {"plan_cache_hits", static_cast<double>(stats.plan_cache.hits)},
         {"plan_cache_misses", static_cast<double>(stats.plan_cache.misses)}});
  }

  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed to write BENCH_serve.json\n");
    return 1;
  }
  return ok ? 0 : 1;
}

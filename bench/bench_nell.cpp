// §6.1 (in-text): NELL on the cafe-extraction task with 17 seed instances.
//
// Paper shape: high precision, very low recall (BaristaMag P=0.7 R=0.05,
// Sprudge P=0.27 R=0.04) — NELL only learns entities that repeat often,
// while these cafes are mentioned a handful of times.
#include "bench_util.h"

#include "extract/nell.h"

using namespace koko;
using namespace koko::bench;

int main() {
  std::printf("NELL reproduction (Section 6.1 in-text numbers)\n");
  std::printf("paper shape: precision much higher than recall; recall < 0.1\n\n");
  for (bool long_articles : {false, true}) {
    LabeledCorpus blogs = GenerateCafeBlogs({.num_articles = 100,
                                             .long_articles = long_articles,
                                             .seed = 401});
    Pipeline pipeline;
    AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
    // 17 seeds, as the NELL team configured for the paper.
    std::vector<std::string> seeds(blogs.gold.begin(),
                                   blogs.gold.begin() + 17);
    NellExtractor nell;
    std::vector<std::string> learned = nell.Bootstrap(corpus, seeds);
    // Score on the non-seed gold entities (NELL must discover them).
    std::vector<std::string> gold(blogs.gold.begin() + 17, blogs.gold.end());
    PRF prf = ScoreExtractionLists(gold, learned);
    std::printf("%s: promoted %zu patterns, learned %zu instances\n",
                long_articles ? "Sprudge-like" : "BaristaMag-like",
                nell.promoted_patterns().size(), learned.size());
    PrintPrfRow("NELL", -1, prf);
  }
  return 0;
}

// Shard scale-up: the Table 2 story past one core. Fixed corpus, growing
// shard count K — measures (a) ShardedKokoIndex build time (shards build in
// parallel on the thread pool: speedup should approach min(K, cores); the
// acceptance bar is > 1.5x at K=4 on the 4000-article corpus on multi-core
// hardware), (b) per-phase query time with shard-parallel DPLI + parallel
// extraction at num_threads = num_shards = K, and (c) index load time —
// serial vs shard-parallel deserialization from the v2 manifest's byte
// extents vs zero-copy mmap (LoadMode::kMap), with each loaded index's
// resident posting bytes.
//
// argv[1] optionally overrides the article count (default 4000) for quick
// local runs. Emits BENCH_shard_scaleup.json.
#include "bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "index/sharded_index.h"
#include "storage/doc_store.h"
#include "util/timer.h"

using namespace koko;

namespace {

// Two of the §6.3 example queries (see bench_table2_scaleup): one
// path-selective, one span-heavy.
const char* kChocolateQuery = R"(
extract c:Entity from wiki.article if (
  /ROOT:{
    v = //verb,
    o = v//pobj[text="chocolate"],
    s = v/nsubj
  } (s) in (c))
satisfying v
  (v SimilarTo "is" {1})
with threshold 0.9
)";

const char* kTitleQuery = R"(
extract a:Person, b:Str from wiki.article if (
  /ROOT:{
    v = //"called",
    p = v/propn,
    b = p.subtree,
    c = a + ^ + v + ^ + b
  })
)";

// Save the index, then time the load sweep: serial copy, shard-parallel
// copy, and shard-parallel zero-copy mmap. Each variant's entry carries a
// `load_mode` tag and the loaded index's resident posting bytes (owned
// heap attributable to the sid caches — ~0 for kMap, whose postings alias
// the page-cache-backed mapping). Returns false on any persistence
// failure so main can fail the (CI) run.
bool TimeLoad(const ShardedKokoIndex& index, size_t k,
              bench::JsonEmitter* emitter) {
  const std::string path = "bench_shard_scaleup_index.bin";
  if (!index.Save(path).ok()) {
    std::printf("  save FAILED at K=%zu\n", k);
    return false;
  }
  struct Variant {
    const char* name;       // entry suffix
    const char* load_mode;  // "copy" | "map"
    size_t num_threads;     // 0 = one worker per shard
    LoadMode mode;
  };
  const Variant variants[] = {
      {"copy-serial", "copy", 1, LoadMode::kCopy},
      {"copy-parallel", "copy", 0, LoadMode::kCopy},
      {"map-parallel", "map", 0, LoadMode::kMap},
  };
  double seconds[3] = {0, 0, 0};
  size_t resident[3] = {0, 0, 0};
  bool ok = true;
  for (size_t v = 0; v < 3; ++v) {
    ShardedKokoIndex::LoadOptions options;
    options.num_threads = variants[v].num_threads;
    options.mode = variants[v].mode;
    WallTimer timer;
    auto loaded = ShardedKokoIndex::Load(path, options);
    seconds[v] = timer.ElapsedSeconds();
    if (!loaded.ok()) {
      std::printf("  load (%s) FAILED at K=%zu: %s\n", variants[v].name, k,
                  loaded.status().ToString().c_str());
      ok = false;
      continue;
    }
    resident[v] = (*loaded)->SidCacheMemoryUsage();
    if (variants[v].mode == LoadMode::kMap && !(*loaded)->mapped()) {
      std::printf("  load (%s) did not map at K=%zu\n", variants[v].name, k);
      ok = false;
    }
    emitter->AddEntry(
        "load/K=" + std::to_string(k) + "/" + variants[v].name,
        {{"load_mode", variants[v].load_mode}},
        {{"shards", static_cast<double>(k)},
         {"load_s", seconds[v]},
         {"resident_posting_bytes", static_cast<double>(resident[v])}});
  }
  std::remove(path.c_str());
  if (!ok) return false;
  const double parallel_speedup = seconds[1] > 0 ? seconds[0] / seconds[1] : 0;
  const double map_speedup = seconds[2] > 0 ? seconds[1] / seconds[2] : 0;
  std::printf(
      "  load: serial=%.3fs parallel=%.3fs (%.2fx) mmap=%.3fs (%.2fx vs "
      "parallel copy); resident postings %.1f MiB copy vs %.1f MiB map\n",
      seconds[0], seconds[1], parallel_speedup, seconds[2], map_speedup,
      static_cast<double>(resident[1]) / (1024.0 * 1024.0),
      static_cast<double>(resident[2]) / (1024.0 * 1024.0));
  // Summary entry keeps the PR-4 keys so existing consumers of the
  // artifact continue to parse, plus the map-vs-copy comparison.
  emitter->AddEntry("load/K=" + std::to_string(k),
                    {{"shards", static_cast<double>(k)},
                     {"load_serial_s", seconds[0]},
                     {"load_parallel_s", seconds[1]},
                     {"load_speedup", parallel_speedup},
                     {"load_map_s", seconds[2]},
                     {"map_speedup_vs_parallel", map_speedup},
                     {"resident_posting_bytes_copy",
                      static_cast<double>(resident[1])},
                     {"resident_posting_bytes_map",
                      static_cast<double>(resident[2])}});
  return true;
}

// Returns false on query failure so main can fail the (CI) run.
bool RunQuery(const char* name, const char* query_text,
              const AnnotatedCorpus& corpus, const ShardedKokoIndex& index,
              const DocumentStore& store, const Pipeline& pipeline,
              const EmbeddingModel& embeddings, size_t k,
              bench::JsonEmitter* emitter) {
  Engine engine(&corpus, &index, &embeddings, &pipeline.recognizer());
  engine.set_document_store(&store);
  EngineOptions options;
  options.max_rows = 500000;
  options.num_threads = k;
  options.num_shards = k;
  auto result = engine.ExecuteText(query_text, options);
  if (!result.ok()) {
    std::printf("  %s FAILED: %s\n", name, result.status().ToString().c_str());
    return false;
  }
  const PhaseStats& p = result->phases;
  std::printf(
      "  %-12s K=%zu total=%7.3fs | DPLI=%.4f Load=%.4f extract=%.4f | "
      "rows=%zu\n",
      name, k, p.Total(), p.Get("DPLI"), p.Get("LoadArticle"),
      p.Get("extract"), result->rows.size());
  emitter->AddEntry(std::string(name) + "/K=" + std::to_string(k),
                    {{"shards", static_cast<double>(k)},
                     {"total_s", p.Total()},
                     {"dpli_s", p.Get("DPLI")},
                     {"load_article_s", p.Get("LoadArticle")},
                     {"extract_s", p.Get("extract")},
                     {"satisfying_s", p.Get("satisfying")},
                     {"rows", static_cast<double>(result->rows.size())}});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t articles =
      argc > 1 ? static_cast<size_t>(std::strtoul(argv[1], nullptr, 10)) : 4000;
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("Shard scale-up: parallel index build + shard-parallel query "
              "phases (%zu articles, %u hardware threads)\n\n",
              articles, cores);

  Pipeline pipeline;
  auto docs = GenerateWikiArticles(
      {.num_articles = static_cast<int>(articles), .seed = 901});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  DocumentStore store = DocumentStore::FromCorpus(corpus);
  EmbeddingModel embeddings;

  bench::JsonEmitter emitter("shard_scaleup");
  emitter.SetMeta("articles", static_cast<double>(articles));
  emitter.SetMeta("sentences", static_cast<double>(corpus.NumSentences()));
  emitter.SetMeta("hardware_threads", static_cast<double>(cores));

  bool ok = true;
  double base_build_s = 0;
  for (size_t k : {1u, 2u, 4u, 8u}) {
    ShardedKokoIndex::Options build_options;
    build_options.num_shards = k;
    build_options.build_threads = k;
    auto index = ShardedKokoIndex::Build(corpus, build_options);
    const double build_s = index->stats().build_seconds;
    if (k == 1) base_build_s = build_s;
    const double speedup = build_s > 0 ? base_build_s / build_s : 0;
    std::printf("-- K=%zu: build=%.3fs (speedup %.2fx vs K=1)%s --\n", k,
                build_s, speedup,
                k == 4 && speedup > 1.5 ? "  [>1.5x target met]" : "");
    emitter.AddEntry("build/K=" + std::to_string(k),
                     {{"shards", static_cast<double>(k)},
                      {"build_s", build_s},
                      {"speedup_vs_1", speedup}});
    ok &= TimeLoad(*index, k, &emitter);
    ok &= RunQuery("Chocolate", kChocolateQuery, corpus, *index, store,
                   pipeline, embeddings, k, &emitter);
    ok &= RunQuery("Title", kTitleQuery, corpus, *index, store, pipeline,
                   embeddings, k, &emitter);
    std::printf("\n");
  }
  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed to write BENCH_shard_scaleup.json\n");
    return 1;
  }
  return ok ? 0 : 1;
}

// Figure 7: index lookup time and effectiveness on the HappyDB-like corpus
// over the Synthetic Tree benchmark (350 queries) — (a)/(b) vs corpus size,
// (c)/(d) vs number of extractions.
//
// Paper shape: lookup time KOKO, SUBTREE << ADVINVERTED << INVERTED (KOKO
// at least ~7x faster than the inverted family); effectiveness KOKO ≈
// ADVINVERTED ≈ 1.0 > SUBTREE (>0.6) > INVERTED (<0.5). SUBTREE supports
// only the wildcard-free, word-free subset of the benchmark.
#include "bench_util.h"

#include <cstdlib>
#include <map>

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "corpus/query_gen.h"
#include "util/timer.h"

using namespace koko;

namespace {

struct SchemeResult {
  double total_seconds = 0;
  double effectiveness_sum = 0;
  size_t supported = 0;
  // Bucketed by log10(#extractions): bucket -> (time, eff, count)
  std::map<int, std::array<double, 3>> by_extractions;
};

int ExtractionBucket(size_t n) {
  int bucket = 0;
  while (n >= 10) {
    n /= 10;
    ++bucket;
  }
  return bucket;
}

void RunSweep(const AnnotatedCorpus& full, const std::vector<size_t>& doc_sizes,
              uint64_t query_seed) {
  for (size_t docs : doc_sizes) {
    AnnotatedCorpus corpus;
    corpus.docs.assign(full.docs.begin(), full.docs.begin() + static_cast<long>(docs));
    corpus.RebuildRefs();
    auto queries = GenerateSyntheticTreeBenchmark(
        corpus, {.queries_per_setting = 5, .seed = query_seed});
    std::printf("-- %zu docs (%zu sentences), %zu benchmark queries --\n", docs,
                corpus.NumSentences(), queries.size());

    // KOKO enters the comparison in its shipped sharded configuration
    // (candidates are element-identical to the monolithic build).
    auto koko_index = ShardedKokoTreeIndex::Build(corpus, 3);
    auto inverted = InvertedIndex::Build(corpus);
    auto adv = AdvInvertedIndex::Build(corpus);
    auto subtree = SubtreeIndex::Build(corpus);
    std::vector<const TreeIndex*> schemes = {koko_index.get(), inverted.get(),
                                             adv.get(), subtree.get()};

    // True extraction counts per query (for the (c)/(d) panels).
    std::vector<size_t> true_counts(queries.size(), 0);
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
        bool all = true;
        for (const auto& path : queries[qi].paths) {
          if (!SentenceHasPathMatch(corpus.sentence(sid), path)) {
            all = false;
            break;
          }
        }
        if (all) ++true_counts[qi];
      }
    }

    for (const TreeIndex* scheme : schemes) {
      SchemeResult result;
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        WallTimer timer;
        auto candidates = scheme->CandidateSentences(queries[qi].paths);
        double seconds = timer.ElapsedSeconds();
        if (!candidates.ok()) continue;  // unsupported (SUBTREE subset)
        double eff = IndexEffectiveness(corpus, queries[qi].paths, *candidates);
        result.total_seconds += seconds;
        result.effectiveness_sum += eff;
        result.supported += 1;
        auto& bucket = result.by_extractions[ExtractionBucket(true_counts[qi])];
        bucket[0] += seconds;
        bucket[1] += eff;
        bucket[2] += 1;
      }
      std::printf("  %-12s supported=%3zu/%zu  lookup=%8.4fs  eff=%.3f\n",
                  std::string(scheme->name()).c_str(), result.supported,
                  queries.size(), result.total_seconds,
                  result.supported ? result.effectiveness_sum /
                                         static_cast<double>(result.supported)
                                   : 0.0);
      for (const auto& [bucket, agg] : result.by_extractions) {
        std::printf("      ~10^%d extractions: avg lookup=%.5fs eff=%.3f (n=%.0f)\n",
                    bucket, agg[0] / agg[2], agg[1] / agg[2], agg[2]);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

// Usage: bench_fig7_happydb [moments=8000]  (sweeps moments/4 and moments)
int main(int argc, char** argv) {
  const int moments = argc > 1 ? std::atoi(argv[1]) : 8000;
  std::printf("Figure 7 reproduction: index performance on HappyDB-like corpus\n");
  std::printf("paper shape: time KOKO,SUBTREE << ADV << INVERTED; eff KOKO~ADV~1 "
              "> SUBTREE > INVERTED\n\n");
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = moments, .seed = 601});
  AnnotatedCorpus full = pipeline.AnnotateCorpus(docs);
  RunSweep(full, {static_cast<size_t>(moments) / 4, static_cast<size_t>(moments)},
           /*query_seed=*/611);
  return 0;
}

// Table 2: end-to-end KOKO execution time, broken down by phase (Normalize,
// DPLI, LoadArticle, GSP, extract, satisfying), for the three §6.3 example
// queries (Chocolate: low selectivity; Title: medium; DateOfBirth: high) as
// the corpus grows.
//
// Paper shape: total time linear in #articles; Normalize + GSP < 2%;
// LoadArticle dominates (>= ~50%); DPLI's share is larger for selective
// queries; selectivity ordering Chocolate < Title < DateOfBirth.
// argv[1] optionally overrides the max article count (default 4000) so CI
// can smoke-run the sweep (and upload the index-memory telemetry) quickly.
#include "bench_util.h"

#include <cstdlib>
#include <set>

#include "storage/doc_store.h"

using namespace koko;

namespace {

// The §6.3 queries, with paths phrased in this parser's label conventions
// (documented in EXPERIMENTS.md).
const char* kChocolateQuery = R"(
extract c:Entity from wiki.article if (
  /ROOT:{
    v = //verb,
    o = v//pobj[text="chocolate"],
    s = v/nsubj
  } (s) in (c))
satisfying v
  (v SimilarTo "is" {1})
with threshold 0.9
)";

const char* kTitleQuery = R"(
extract a:Person, b:Str from wiki.article if (
  /ROOT:{
    v = //"called",
    p = v/propn,
    b = p.subtree,
    c = a + ^ + v + ^ + b
  })
)";

const char* kDateOfBirthQuery = R"(
extract a:Person, b:Date from wiki.article if (
  /ROOT:{ v = verb })
satisfying v
  (v SimilarTo "born" {1})
with threshold 0.9
)";

void RunQuery(const char* name, const char* query_text,
              const AnnotatedCorpus& corpus, const KokoIndex& index,
              const DocumentStore& store, const Pipeline& pipeline,
              const EmbeddingModel& embeddings, size_t articles,
              bench::JsonEmitter* emitter) {
  Engine engine(&corpus, &index, &embeddings, &pipeline.recognizer());
  engine.set_document_store(&store);
  EngineOptions options;
  options.max_rows = 500000;
  auto result = engine.ExecuteText(query_text, options);
  if (!result.ok()) {
    std::printf("  %s FAILED: %s\n", name, result.status().ToString().c_str());
    return;
  }
  std::set<uint32_t> docs_with_rows;
  for (const auto& row : result->rows) docs_with_rows.insert(row.doc);
  const PhaseStats& p = result->phases;
  double total = p.Total();
  std::printf(
      "  %-12s total=%7.3fs | Norm=%.4f DPLI=%.4f Load=%.4f GSP=%.4f "
      "extract=%.4f satisfying=%.4f | rows=%zu, %zu/%zu docs (%.1f%% sel.)\n",
      name, total, p.Get("Normalize"), p.Get("DPLI"), p.Get("LoadArticle"),
      p.Get("GSP"), p.Get("extract"), p.Get("satisfying"), result->rows.size(),
      docs_with_rows.size(), corpus.NumDocs(),
      100.0 * static_cast<double>(docs_with_rows.size()) /
          static_cast<double>(corpus.NumDocs()));
  emitter->AddEntry(
      std::string(name) + "/" + std::to_string(articles),
      {{"articles", static_cast<double>(articles)},
       {"sentences", static_cast<double>(corpus.NumSentences())},
       {"total_s", total},
       {"normalize_s", p.Get("Normalize")},
       {"dpli_s", p.Get("DPLI")},
       {"load_article_s", p.Get("LoadArticle")},
       {"gsp_s", p.Get("GSP")},
       {"extract_s", p.Get("extract")},
       {"satisfying_s", p.Get("satisfying")},
       {"rows", static_cast<double>(result->rows.size())}});
}

}  // namespace

int main(int argc, char** argv) {
  const size_t max_articles =
      argc > 1 ? static_cast<size_t>(std::strtoul(argv[1], nullptr, 10)) : 4000;
  std::printf("Table 2 reproduction: phase breakdown of the three example "
              "queries\n");
  std::printf("paper shape: linear scaling; LoadArticle dominant; Normalize+GSP "
              "tiny; selectivity Chocolate < Title < DateOfBirth\n\n");
  Pipeline pipeline;
  auto all_docs = GenerateWikiArticles(
      {.num_articles = static_cast<int>(max_articles), .seed = 901});
  AnnotatedCorpus full = pipeline.AnnotateCorpus(all_docs);
  EmbeddingModel embeddings;
  bench::JsonEmitter emitter("table2_scaleup");
  emitter.SetMeta("max_articles", static_cast<double>(max_articles));

  std::vector<size_t> sweep;
  for (size_t articles : {500u, 1000u, 2000u, 4000u}) {
    if (articles < max_articles) sweep.push_back(articles);
  }
  sweep.push_back(max_articles);
  for (size_t articles : sweep) {
    AnnotatedCorpus corpus;
    corpus.docs.assign(full.docs.begin(),
                       full.docs.begin() + static_cast<long>(articles));
    corpus.RebuildRefs();
    auto index = KokoIndex::Build(corpus);
    DocumentStore store = DocumentStore::FromCorpus(corpus);
    // Resident posting-list footprint: the block-compressed sid caches vs
    // what the same sets cost fully decoded (4 bytes/sid, the pre-block
    // representation's floor — vector slack pushed it higher). The block
    // layout's acceptance bar is >= 2x smaller.
    const size_t posting_bytes = index->SidCacheMemoryUsage();
    const size_t decoded_bytes = index->SidCacheDecodedEquivalentBytes();
    std::printf("-- %zu articles (%zu sentences): posting lists %.1f MiB "
                "compressed vs %.1f MiB decoded (%.2fx) --\n",
                articles, corpus.NumSentences(),
                static_cast<double>(posting_bytes) / (1024.0 * 1024.0),
                static_cast<double>(decoded_bytes) / (1024.0 * 1024.0),
                posting_bytes > 0
                    ? static_cast<double>(decoded_bytes) /
                          static_cast<double>(posting_bytes)
                    : 0.0);
    emitter.AddEntry(
        "index_memory/" + std::to_string(articles),
        {{"articles", static_cast<double>(articles)},
         {"posting_bytes_compressed", static_cast<double>(posting_bytes)},
         {"posting_bytes_decoded_equiv", static_cast<double>(decoded_bytes)},
         {"index_bytes_total", static_cast<double>(index->MemoryUsage())}});
    // Load-path telemetry: copy vs zero-copy mmap of the same v3 image.
    // kMap skips the posting-payload copy entirely, so its entry reports
    // ~0 resident posting bytes (the pages belong to the file mapping).
    {
      const std::string image = "bench_table2_scaleup_index.bin";
      if (!index->Save(image).ok()) {
        std::fprintf(stderr, "index save failed at %zu articles\n", articles);
      } else {
        for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMap}) {
          const char* mode_name = mode == LoadMode::kMap ? "map" : "copy";
          WallTimer timer;
          auto loaded = KokoIndex::Load(image, mode);
          const double load_s = timer.ElapsedSeconds();
          if (!loaded.ok()) {
            std::fprintf(stderr, "%s load failed: %s\n", mode_name,
                         loaded.status().ToString().c_str());
            continue;
          }
          const size_t resident = (*loaded)->SidCacheMemoryUsage();
          std::printf("   load (%s): %.3fs, resident postings %.2f MiB\n",
                      mode_name, load_s,
                      static_cast<double>(resident) / (1024.0 * 1024.0));
          emitter.AddEntry(
              "load/" + std::to_string(articles) + "/" + mode_name,
              {{"load_mode", mode_name}},
              {{"articles", static_cast<double>(articles)},
               {"load_s", load_s},
               {"resident_posting_bytes", static_cast<double>(resident)}});
        }
        std::remove(image.c_str());
      }
    }
    RunQuery("Chocolate", kChocolateQuery, corpus, *index, store, pipeline,
             embeddings, articles, &emitter);
    RunQuery("Title", kTitleQuery, corpus, *index, store, pipeline, embeddings,
             articles, &emitter);
    RunQuery("DateOfBirth", kDateOfBirthQuery, corpus, *index, store, pipeline,
             embeddings, articles, &emitter);
    std::printf("\n");
  }
  if (!emitter.WriteFile()) {
    std::fprintf(stderr, "failed to write BENCH_table2_scaleup.json\n");
  }
  return 0;
}

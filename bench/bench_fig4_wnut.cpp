// Figure 4: extracting sports teams and facilities from WNUT-like tweets
// with CRFsuite, IKE and KOKO.
//
// Paper shape: KOKO still wins at its best threshold, but the baselines are
// much closer than on the blog corpora — tweets are single short documents,
// so KOKO's cross-sentence evidence aggregation cannot be exploited.
#include "bench_util.h"

#include "extract/crf.h"
#include "extract/ike.h"

using namespace koko;
using namespace koko::bench;

namespace {

std::string TeamQuery(double threshold) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "tweets" if ()
satisfying x
  (x [["to host"]] {0.9}) or
  (x "vs" {0.9}) or
  ("vs" x {0.9}) or
  (x [["soccer"]] {0.9}) or
  ("Go" x {0.9}) or
  ("by" x {0.5})
with threshold %f
excluding
  (str(x) matches "[a-z 0-9.]+") or
  (str(x) in dict("GPE"))
)",
                threshold);
  return buf;
}

std::string FacilityQuery(double threshold) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "tweets" if ()
satisfying x
  ("at" x {1}) or
  ([["went to"]] x {0.8}) or
  ([["go to"]] x {0.8})
with threshold %f
excluding
  (str(x) contains "pm") or
  (str(x) contains "am") or
  (str(x) mentions "@") or
  (str(x) contains "today") or
  (str(x) contains "tomorrow") or
  (str(x) contains "tonight") or
  (str(x) matches "[a-z 0-9.]+")
)",
                threshold);
  return buf;
}

void RunTask(const char* task, const std::vector<std::string>& gold,
             const AnnotatedCorpus& train, const AnnotatedCorpus& test,
             const std::vector<std::string>& train_gold,
             const KokoIndex& index, const Pipeline& pipeline,
             const EmbeddingModel& embeddings,
             const std::vector<std::string>& ike_patterns,
             const std::string& (*unused)(),
             std::string (*query_fn)(double)) {
  (void)unused;
  std::printf("-- %s --\n", task);
  std::vector<const Document*> train_docs;
  for (const auto& d : train.docs) train_docs.push_back(&d);
  CrfExtractor crf;
  crf.Train(CrfExtractor::MakeTrainingData(train_docs, train_gold));
  PrintPrfRow("CRFsuite", -1, ScoreExtractionLists(gold, crf.ExtractMentions(test)));

  IkeExtractor ike(&embeddings);
  auto ike_result = ike.RunAll(test, ike_patterns);
  PrintPrfRow("IKE", -1, ScoreExtractionLists(gold, ike_result.value_or({})));

  for (double threshold : {0.2, 0.4, 0.6, 0.8}) {
    auto values = RunKokoExtraction(test, index, pipeline, embeddings,
                                    query_fn(threshold));
    PrintPrfRow("KOKO", threshold, ScoreExtractionLists(gold, values));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 4 reproduction: sports teams & facilities from tweets\n");
  std::printf("paper shape: KOKO best around t=0.4, baselines much closer than "
              "in Fig. 3\n\n");
  TweetCorpus tweets = GenerateTweets({.num_tweets = 700, .seed = 202});
  // Split tweets: even train / odd test.
  std::vector<RawDocument> train_docs, test_docs;
  for (size_t i = 0; i < tweets.docs.size(); ++i) {
    (i % 2 == 0 ? train_docs : test_docs).push_back(tweets.docs[i]);
  }
  Pipeline pipeline;
  AnnotatedCorpus train = pipeline.AnnotateCorpus(train_docs);
  AnnotatedCorpus test = pipeline.AnnotateCorpus(test_docs);
  auto index = KokoIndex::Build(test);
  EmbeddingModel embeddings;

  RunTask("Sports Team", tweets.gold_teams, train, test, tweets.gold_teams,
          *index, pipeline, embeddings,
          {"(NP) \"vs\"", "\"vs\" (NP)", "\"Go\" (NP)",
           "(NP) (\"to host\" ~ 6)"},
          nullptr, &TeamQuery);
  RunTask("Facilities", tweets.gold_facilities, train, test,
          tweets.gold_facilities, *index, pipeline, embeddings,
          {"\"at\" (NP)", "(\"went to\" ~ 6) (NP)"}, nullptr, &FacilityQuery);
  return 0;
}

// Figure 4: extracting sports teams and facilities from WNUT-like tweets
// with CRFsuite, IKE and KOKO.
//
// Paper shape: KOKO still wins at its best threshold, but the baselines are
// much closer than on the blog corpora — tweets are single short documents,
// so KOKO's cross-sentence evidence aggregation cannot be exploited.
#include "bench_util.h"

#include <cstdlib>

#include "extract/crf.h"
#include "extract/ike.h"

using namespace koko;
using namespace koko::bench;

namespace {

// Query texts live in the replay workload library (replay::TweetTeam/
// FacilityQueryText), so this figure, the traffic harness, and the parity
// suite execute the same queries.

void RunTask(const char* task, const std::vector<std::string>& gold,
             const AnnotatedCorpus& train, const AnnotatedCorpus& test,
             const std::vector<std::string>& train_gold, Engine& engine,
             const EmbeddingModel& embeddings,
             const std::vector<std::string>& ike_patterns,
             std::string (*query_fn)(double)) {
  std::printf("-- %s --\n", task);
  std::vector<const Document*> train_docs;
  for (const auto& d : train.docs) train_docs.push_back(&d);
  CrfExtractor crf;
  crf.Train(CrfExtractor::MakeTrainingData(train_docs, train_gold));
  PrintPrfRow("CRFsuite", -1, ScoreExtractionLists(gold, crf.ExtractMentions(test)));

  IkeExtractor ike(&embeddings);
  auto ike_result = ike.RunAll(test, ike_patterns);
  PrintPrfRow("IKE", -1, ScoreExtractionLists(gold, ike_result.value_or({})));

  for (double threshold : {0.2, 0.4, 0.6, 0.8}) {
    auto values =
        RunKokoExtraction(engine, EngineOptions(), query_fn(threshold));
    PrintPrfRow("KOKO", threshold, ScoreExtractionLists(gold, values));
  }
  std::printf("\n");
}

std::string TeamQuery(double threshold) {
  return replay::TweetTeamQueryText(threshold);
}

std::string FacilityQuery(double threshold) {
  return replay::TweetFacilityQueryText(threshold);
}

}  // namespace

// Usage: bench_fig4_wnut [num_tweets=700]
int main(int argc, char** argv) {
  const int num_tweets = argc > 1 ? std::atoi(argv[1]) : 700;
  std::printf("Figure 4 reproduction: sports teams & facilities from tweets\n");
  std::printf("paper shape: KOKO best around t=0.4, baselines much closer than "
              "in Fig. 3\n\n");
  TweetCorpus tweets = GenerateTweets({.num_tweets = num_tweets, .seed = 202});
  // Split tweets: even train / odd test.
  std::vector<RawDocument> train_docs, test_docs;
  for (size_t i = 0; i < tweets.docs.size(); ++i) {
    (i % 2 == 0 ? train_docs : test_docs).push_back(tweets.docs[i]);
  }
  Pipeline pipeline;
  AnnotatedCorpus train = pipeline.AnnotateCorpus(train_docs);
  AnnotatedCorpus test = pipeline.AnnotateCorpus(test_docs);
  // Shipped configuration: sharded index + default EngineOptions.
  auto index = ShardedKokoIndex::Build(test, kBenchIndexShards);
  EmbeddingModel embeddings;
  Engine engine(&test, index.get(), &embeddings, pipeline.recognizer());

  RunTask("Sports Team", tweets.gold_teams, train, test, tweets.gold_teams,
          engine, embeddings,
          {"(NP) \"vs\"", "\"vs\" (NP)", "\"Go\" (NP)",
           "(NP) (\"to host\" ~ 6)"},
          &TeamQuery);
  RunTask("Facilities", tweets.gold_facilities, train, test,
          tweets.gold_facilities, engine, embeddings,
          {"\"at\" (NP)", "(\"went to\" ~ 6) (NP)"}, &FacilityQuery);
  return 0;
}

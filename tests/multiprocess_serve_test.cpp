// Multi-process serving off one shared mmap'd index image — the
// page-cache-sharing story end to end. The parent builds a workload,
// saves its sharded index once, then forks two child processes; each
// child zero-copy loads (kMap) the same file, serves the full query list
// through its own QueryService, and reports per-query row digests plus
// its resident posting bytes. The parent asserts both children produced
// rows byte-identical to an in-process reference, and that neither child
// privately materialised the postings: each child's resident posting
// bytes must be a small fraction of a kCopy load's, because kMap postings
// live in the (shared, counted-once) page cache, not per-process heap.
//
// Not registered under the tsan label: fork() from a TSan runtime is
// unsupported. The ASan job runs it via -L workloads (children _exit(),
// so no leak-check noise from skipped teardown).

#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "index/sharded_index.h"
#include "replay/workloads.h"
#include "serve/query_service.h"

namespace koko {
namespace {

constexpr size_t kIndexShards = 3;

struct ChildReport {
  std::vector<std::string> digests;
  std::vector<size_t> rows;
  size_t resident_posting_bytes = 0;
  bool parsed = false;
};

// Serves the whole query list from a fresh kMap load of `index_path` and
// writes digests + resident bytes to `report_path`. Runs in the forked
// child; returns the child's exit code.
int ServeAndReport(const replay::Workload& workload,
                   const EmbeddingModel& embeddings,
                   const EntityRecognizer* recognizer,
                   const std::string& index_path,
                   const std::string& report_path) {
  ShardedKokoIndex::LoadOptions load;
  load.mode = LoadMode::kMap;
  auto index = ShardedKokoIndex::Load(index_path, load);
  if (!index.ok() || !(*index)->mapped()) return 2;

  Engine engine(&workload.corpus, index->get(), &embeddings, recognizer);
  QueryService::Options options;
  options.num_threads = 2;
  options.max_inflight = 2;
  QueryService service(&engine, options, kIndexShards);

  std::ofstream out(report_path);
  for (const replay::WorkloadQuery& query : workload.queries) {
    auto result = service.Run(query.query);
    if (!result.ok()) return 3;
    out << replay::DigestHex(replay::RowDigest(*result)) << " "
        << result->rows.size() << "\n";
  }
  out << "resident " << (*index)->SidCacheMemoryUsage() << "\n";
  out.flush();
  return out.good() ? 0 : 4;
}

ChildReport ReadReport(const std::string& path) {
  ChildReport report;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string first;
    fields >> first;
    if (first == "resident") {
      fields >> report.resident_posting_bytes;
      report.parsed = true;
    } else if (!first.empty()) {
      size_t rows = 0;
      fields >> rows;
      report.digests.push_back(first);
      report.rows.push_back(rows);
    }
  }
  return report;
}

TEST(MultiProcessServeTest, TwoProcessesOneImageIdenticalRowsSharedPostings) {
  Pipeline pipeline;
  const Pipeline& const_pipeline = pipeline;
  EmbeddingModel embeddings;

  replay::WorkloadOptions options;
  options.scale = 1;
  options.queries_per_class = 3;
  auto built = replay::BuildWorkload(replay::WorkloadClass::kFig7HappyDb,
                                     pipeline, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const replay::Workload& workload = *built;
  ASSERT_FALSE(workload.queries.empty());

  auto index = ShardedKokoIndex::Build(workload.corpus, kIndexShards);
  const std::string index_path = "multiprocess_serve_test.idx";
  ASSERT_TRUE(index->Save(index_path).ok());

  // In-process reference rows (seed semantics) and the copy-load resident
  // baseline the children's mapped loads are compared against.
  Engine reference_engine(&workload.corpus, index.get(), &embeddings,
                          &const_pipeline.recognizer());
  EngineOptions reference_options;
  reference_options.use_planner = false;
  reference_options.early_terminate = false;
  reference_options.num_threads = 1;
  std::vector<std::string> expected_digests;
  std::vector<size_t> expected_rows;
  for (const replay::WorkloadQuery& query : workload.queries) {
    auto result = reference_engine.Execute(query.query, reference_options);
    ASSERT_TRUE(result.ok())
        << query.name << ": " << result.status().ToString();
    expected_digests.push_back(replay::DigestHex(replay::RowDigest(*result)));
    expected_rows.push_back(result->rows.size());
  }
  ShardedKokoIndex::LoadOptions copy_load;
  copy_load.mode = LoadMode::kCopy;
  auto copied = ShardedKokoIndex::Load(index_path, copy_load);
  ASSERT_TRUE(copied.ok());
  const size_t copy_resident = (*copied)->SidCacheMemoryUsage();
  ASSERT_GT(copy_resident, 0u);

  constexpr int kChildren = 2;
  std::vector<std::string> report_paths;
  std::vector<pid_t> children;
  for (int c = 0; c < kChildren; ++c) {
    report_paths.push_back("multiprocess_serve_report_" + std::to_string(c) +
                           ".txt");
    std::remove(report_paths.back().c_str());
    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
      // Child: serve off its own mapping of the shared image, report,
      // and _exit without running parent-owned teardown.
      int code = ServeAndReport(workload, embeddings,
                                &const_pipeline.recognizer(), index_path,
                                report_paths.back());
      _exit(code);
    }
    children.push_back(pid);
  }

  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << "child did not exit cleanly";
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child serving failed";
  }
  std::remove(index_path.c_str());

  for (int c = 0; c < kChildren; ++c) {
    const ChildReport report = ReadReport(report_paths[c]);
    std::remove(report_paths[c].c_str());
    ASSERT_TRUE(report.parsed) << "child " << c << " report incomplete";
    ASSERT_EQ(report.digests.size(), expected_digests.size()) << "child " << c;
    for (size_t q = 0; q < expected_digests.size(); ++q) {
      EXPECT_EQ(report.digests[q], expected_digests[q])
          << "child " << c << " " << workload.queries[q].name
          << " rows diverged from in-process reference";
      EXPECT_EQ(report.rows[q], expected_rows[q])
          << "child " << c << " " << workload.queries[q].name;
    }
    // No double-count: the mapped child keeps essentially no private
    // posting bytes resident — the image pages are shared page cache,
    // counted once across all serving processes.
    EXPECT_LT(report.resident_posting_bytes, copy_resident / 4)
        << "child " << c
        << " materialised private postings despite the mapped load";
  }
}

}  // namespace
}  // namespace koko

// Wire-protocol codec suite: round-trips every frame kind through its
// encoder/decoder pair and then attacks the decoders with the inputs a
// hostile or broken peer can produce — truncations at every byte, length
// prefixes that promise more than the payload holds, element counts no
// payload could back, unknown flags, and trailing garbage. Every attack
// must yield a clean ParseError (never a crash, OOB read, or unbounded
// allocation); the sanitizer jobs in CI run this suite to enforce the
// "never a crash" half mechanically.

#include "net/frame.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace koko {
namespace net {
namespace {

// ---- Round trips -----------------------------------------------------------

TEST(FrameHeaderTest, RoundTripsEveryType) {
  for (FrameType type : {FrameType::kRequest, FrameType::kHeader,
                         FrameType::kRows, FrameType::kDone,
                         FrameType::kError}) {
    std::vector<uint8_t> bytes;
    AppendFrameHeader(type, 12345, &bytes);
    ASSERT_EQ(bytes.size(), kFrameHeaderSize);
    auto header = DecodeFrameHeader(bytes.data(), bytes.size());
    ASSERT_TRUE(header.ok()) << header.status().ToString();
    EXPECT_EQ(header->type, type);
    EXPECT_EQ(header->payload_len, 12345u);
  }
}

TEST(RequestCodecTest, RoundTripsAllFieldCombinations) {
  for (bool streaming : {false, true}) {
    for (bool use_planner : {false, true}) {
      for (bool allow_batch : {false, true}) {
        for (uint64_t max_rows : {uint64_t{0}, uint64_t{7},
                                  uint64_t{1} << 40}) {
          NetRequest request;
          request.query_text = "extract e:Entity from docs return e:Str";
          request.max_rows = max_rows;
          request.streaming = streaming;
          request.use_planner = use_planner;
          request.allow_batch = allow_batch;
          const std::vector<uint8_t> bytes = EncodeRequest(request);
          auto decoded = DecodeRequest(bytes.data(), bytes.size());
          ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
          EXPECT_EQ(decoded->query_text, request.query_text);
          EXPECT_EQ(decoded->max_rows, max_rows);
          EXPECT_EQ(decoded->streaming, streaming);
          EXPECT_EQ(decoded->use_planner, use_planner);
          EXPECT_EQ(decoded->allow_batch, allow_batch);
        }
      }
    }
  }
}

TEST(HeaderCodecTest, RoundTripsNames) {
  const std::vector<std::string> names = {"e", "score", "", "long name with "
                                                            "spaces"};
  const std::vector<uint8_t> bytes = EncodeHeaderPayload(names);
  auto decoded = DecodeHeaderPayload(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, names);
}

TEST(HeaderCodecTest, RoundTripsEmpty) {
  const std::vector<uint8_t> bytes = EncodeHeaderPayload({});
  auto decoded = DecodeHeaderPayload(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

std::vector<ResultRow> SampleRows() {
  std::vector<ResultRow> rows;
  ResultRow a;
  a.doc = 3;
  a.sid = 11;
  a.values = {"the cafe", "Str"};
  a.scores = {0.25, -1.5};
  rows.push_back(a);
  ResultRow b;
  b.doc = 0xffffffff;
  b.sid = 0;
  b.values = {""};
  b.scores = {};
  rows.push_back(b);
  ResultRow c;  // no values/scores at all
  rows.push_back(c);
  return rows;
}

TEST(RowsCodecTest, RoundTripsRowsBitExactly) {
  const std::vector<ResultRow> rows = SampleRows();
  const std::vector<uint8_t> bytes = EncodeRowsPayload(rows, 0, rows.size());
  auto decoded = DecodeRowsPayload(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*decoded)[i].doc, rows[i].doc);
    EXPECT_EQ((*decoded)[i].sid, rows[i].sid);
    EXPECT_EQ((*decoded)[i].values, rows[i].values);
    ASSERT_EQ((*decoded)[i].scores.size(), rows[i].scores.size());
    for (size_t s = 0; s < rows[i].scores.size(); ++s) {
      // Bit-pattern equality, not numeric: the digest contract hashes raw
      // IEEE-754 bits, so the wire must preserve them exactly.
      uint64_t sent, got;
      std::memcpy(&sent, &rows[i].scores[s], sizeof(sent));
      std::memcpy(&got, &(*decoded)[i].scores[s], sizeof(got));
      EXPECT_EQ(got, sent) << "row " << i << " score " << s;
    }
  }
}

TEST(RowsCodecTest, EncodesSubranges) {
  const std::vector<ResultRow> rows = SampleRows();
  const std::vector<uint8_t> bytes = EncodeRowsPayload(rows, 1, 2);
  auto decoded = DecodeRowsPayload(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ((*decoded)[0].doc, rows[1].doc);
  EXPECT_EQ((*decoded)[1].doc, rows[2].doc);
}

TEST(DoneCodecTest, RoundTrips) {
  NetDone done;
  done.rows = 42;
  done.candidate_sentences = 1000;
  done.scanned_candidates = 77;
  done.early_terminated = true;
  done.batched = true;
  const std::vector<uint8_t> bytes = EncodeDonePayload(done);
  auto decoded = DecodeDonePayload(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->rows, done.rows);
  EXPECT_EQ(decoded->candidate_sentences, done.candidate_sentences);
  EXPECT_EQ(decoded->scanned_candidates, done.scanned_candidates);
  EXPECT_EQ(decoded->early_terminated, done.early_terminated);
  EXPECT_EQ(decoded->batched, done.batched);
}

TEST(ErrorCodecTest, RoundTripsEveryCode) {
  // Starts at 1: kOk (0) is not a valid error code and is rejected below.
  for (uint8_t code = 1;
       code <= static_cast<uint8_t>(StatusCode::kUnavailable); ++code) {
    const std::vector<uint8_t> bytes = EncodeErrorPayload(
        static_cast<StatusCode>(code), "something went wrong");
    auto decoded = DecodeErrorPayload(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(static_cast<uint8_t>(decoded->code), code);
    EXPECT_EQ(decoded->message, "something went wrong");
  }
}

TEST(EncodeFrameTest, ProducesHeaderPlusPayload) {
  const std::vector<uint8_t> payload = EncodeHeaderPayload({"e"});
  const std::vector<uint8_t> frame = EncodeFrame(FrameType::kHeader, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  auto header = DecodeFrameHeader(frame.data(), frame.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kHeader);
  EXPECT_EQ(header->payload_len, payload.size());
}

// ---- Adversarial headers ---------------------------------------------------

TEST(FrameHeaderTest, RejectsBadMagic) {
  std::vector<uint8_t> bytes;
  AppendFrameHeader(FrameType::kRequest, 0, &bytes);
  bytes[0] ^= 0xff;
  EXPECT_FALSE(DecodeFrameHeader(bytes.data(), bytes.size()).ok());
}

TEST(FrameHeaderTest, RejectsWrongVersion) {
  std::vector<uint8_t> bytes;
  AppendFrameHeader(FrameType::kRequest, 0, &bytes);
  bytes[2] = kWireVersion + 1;
  EXPECT_FALSE(DecodeFrameHeader(bytes.data(), bytes.size()).ok());
}

TEST(FrameHeaderTest, RejectsUnknownType) {
  for (uint8_t type : {uint8_t{0}, uint8_t{6}, uint8_t{0xff}}) {
    std::vector<uint8_t> bytes;
    AppendFrameHeader(FrameType::kRequest, 0, &bytes);
    bytes[3] = type;
    EXPECT_FALSE(DecodeFrameHeader(bytes.data(), bytes.size()).ok())
        << "type " << static_cast<int>(type);
  }
}

TEST(FrameHeaderTest, RejectsOversizedLengthPrefix) {
  // A length prefix above the protocol max is a violation, not an
  // allocation request — the server must refuse before reading a byte of
  // payload.
  std::vector<uint8_t> bytes;
  AppendFrameHeader(FrameType::kRequest, kMaxFramePayload + 1, &bytes);
  EXPECT_FALSE(DecodeFrameHeader(bytes.data(), bytes.size()).ok());
  bytes.clear();
  AppendFrameHeader(FrameType::kRequest, 0xffffffffu, &bytes);
  EXPECT_FALSE(DecodeFrameHeader(bytes.data(), bytes.size()).ok());
}

TEST(FrameHeaderTest, AcceptsMaxPayloadExactly) {
  std::vector<uint8_t> bytes;
  AppendFrameHeader(FrameType::kRows, kMaxFramePayload, &bytes);
  auto header = DecodeFrameHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->payload_len, kMaxFramePayload);
}

TEST(FrameHeaderTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> bytes;
  AppendFrameHeader(FrameType::kRequest, 0, &bytes);
  for (size_t len = 0; len < kFrameHeaderSize; ++len) {
    EXPECT_FALSE(DecodeFrameHeader(bytes.data(), len).ok()) << "len " << len;
  }
}

// ---- Adversarial payloads --------------------------------------------------

// Every strict prefix of a valid payload must decode to a clean error:
// the decoders bound every read, so no truncation point reads past the
// bytes handed in (ASan/UBSan verify the "no OOB" half).
template <typename DecodeFn>
void ExpectAllTruncationsRejected(const std::vector<uint8_t>& valid,
                                  const DecodeFn& decode) {
  for (size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(decode(valid.data(), len).ok()) << "prefix length " << len;
  }
}

TEST(RequestCodecTest, RejectsEveryTruncation) {
  NetRequest request;
  request.query_text = "extract e:Entity from docs return e:Str";
  request.max_rows = 9;
  ExpectAllTruncationsRejected(EncodeRequest(request), DecodeRequest);
}

TEST(HeaderCodecTest, RejectsEveryTruncation) {
  ExpectAllTruncationsRejected(EncodeHeaderPayload({"e", "f"}),
                               DecodeHeaderPayload);
}

TEST(RowsCodecTest, RejectsEveryTruncation) {
  const std::vector<ResultRow> rows = SampleRows();
  ExpectAllTruncationsRejected(EncodeRowsPayload(rows, 0, rows.size()),
                               DecodeRowsPayload);
}

TEST(DoneCodecTest, RejectsEveryTruncation) {
  ExpectAllTruncationsRejected(EncodeDonePayload(NetDone{}),
                               DecodeDonePayload);
}

TEST(ErrorCodecTest, RejectsEveryTruncation) {
  ExpectAllTruncationsRejected(
      EncodeErrorPayload(StatusCode::kParseError, "msg"), DecodeErrorPayload);
}

TEST(RequestCodecTest, RejectsTrailingBytes) {
  NetRequest request;
  request.query_text = "extract e:Entity from docs return e:Str";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRequest(bytes.data(), bytes.size()).ok());
}

TEST(RequestCodecTest, RejectsUnknownFlags) {
  NetRequest request;
  request.query_text = "extract e:Entity from docs return e:Str";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes.back() |= 1u << 7;
  EXPECT_FALSE(DecodeRequest(bytes.data(), bytes.size()).ok());
}

TEST(RequestCodecTest, RejectsEmptyQueryText) {
  NetRequest request;
  request.query_text = "";
  const std::vector<uint8_t> bytes = EncodeRequest(request);
  EXPECT_FALSE(DecodeRequest(bytes.data(), bytes.size()).ok());
}

TEST(RequestCodecTest, RejectsStringLengthBeyondPayload) {
  // A query-text length prefix larger than the remaining bytes must not
  // drive an allocation or an OOB read.
  NetRequest request;
  request.query_text = "abc";
  std::vector<uint8_t> bytes = EncodeRequest(request);
  bytes[0] = 0xff;
  bytes[1] = 0xff;
  bytes[2] = 0xff;
  bytes[3] = 0xff;
  EXPECT_FALSE(DecodeRequest(bytes.data(), bytes.size()).ok());
}

TEST(HeaderCodecTest, RejectsCountBeyondPayloadCapacity) {
  // Count says 2^31 names but the payload holds four bytes of nothing —
  // the decoder must reject by capacity before reserving anything.
  std::vector<uint8_t> bytes = EncodeHeaderPayload({});
  bytes[0] = 0xff;
  bytes[3] = 0x7f;
  EXPECT_FALSE(DecodeHeaderPayload(bytes.data(), bytes.size()).ok());
}

TEST(RowsCodecTest, RejectsCountBeyondPayloadCapacity) {
  std::vector<uint8_t> bytes = EncodeRowsPayload({}, 0, 0);
  bytes[0] = 0xff;
  bytes[3] = 0x7f;
  EXPECT_FALSE(DecodeRowsPayload(bytes.data(), bytes.size()).ok());
}

TEST(RowsCodecTest, RejectsValueCountBeyondPayload) {
  // One row claiming 0xffff values backed by nothing.
  std::vector<uint8_t> bytes;
  // count=1, doc=0, sid=0, values=0xffff, scores=0
  const uint8_t raw[] = {1, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                         0, 0, 0xff, 0xff, 0, 0};
  bytes.assign(raw, raw + sizeof(raw));
  EXPECT_FALSE(DecodeRowsPayload(bytes.data(), bytes.size()).ok());
}

TEST(DoneCodecTest, RejectsNonBooleanFlags) {
  std::vector<uint8_t> bytes = EncodeDonePayload(NetDone{});
  bytes[bytes.size() - 1] = 2;  // batched must be 0/1
  EXPECT_FALSE(DecodeDonePayload(bytes.data(), bytes.size()).ok());
  bytes = EncodeDonePayload(NetDone{});
  bytes[bytes.size() - 2] = 0xcc;  // early_terminated must be 0/1
  EXPECT_FALSE(DecodeDonePayload(bytes.data(), bytes.size()).ok());
}

TEST(ErrorCodecTest, RejectsInvalidStatusCode) {
  std::vector<uint8_t> bytes =
      EncodeErrorPayload(StatusCode::kParseError, "msg");
  bytes[0] = 0xee;
  EXPECT_FALSE(DecodeErrorPayload(bytes.data(), bytes.size()).ok());
}

TEST(ErrorCodecTest, RejectsOkAsErrorCode) {
  // An error frame carrying kOk is a contradiction a correct server never
  // produces; treat it as a protocol violation rather than silently
  // inventing success.
  std::vector<uint8_t> bytes = EncodeErrorPayload(StatusCode::kOk, "fine");
  EXPECT_FALSE(DecodeErrorPayload(bytes.data(), bytes.size()).ok());
}

TEST(GarbageTest, RandomBytesNeverCrashAnyDecoder) {
  // Deterministic xorshift garbage across many sizes; every decoder must
  // return (ok or not) without crashing. Sanitizer jobs turn silent OOB
  // into failures here.
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<uint8_t>(state);
  };
  for (size_t size : {0u, 1u, 3u, 7u, 8u, 13u, 64u, 1000u}) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<uint8_t> bytes(size);
      for (uint8_t& b : bytes) b = next();
      (void)DecodeFrameHeader(bytes.data(), bytes.size());
      (void)DecodeRequest(bytes.data(), bytes.size());
      (void)DecodeHeaderPayload(bytes.data(), bytes.size());
      (void)DecodeRowsPayload(bytes.data(), bytes.size());
      (void)DecodeDonePayload(bytes.data(), bytes.size());
      (void)DecodeErrorPayload(bytes.data(), bytes.size());
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace koko

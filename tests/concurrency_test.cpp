// Dynamic mirror of the static thread-safety annotations (the "tsan"
// ctest label): every invariant KOKO_GUARDED_BY claims the compiler proves
// is also exercised here under real interleavings, so CI's TSan job checks
// the same discipline at runtime that -Werror=thread-safety checks at
// compile time. Covers the ISSUE-8 satellite suites — AdmissionQueue
// shutdown/reject races and ScoreCache::Clear vs concurrent hit paths —
// plus a regression test for the torn stats-snapshot bug the annotation
// pass surfaced (QueryService::stats() used to read each admission counter
// under its own lock acquisition).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "koko/score_cache.h"
#include "serve/query_service.h"
#include "util/thread_annotations.h"

namespace koko {
namespace {

// ---- AdmissionQueue shutdown/reject -----------------------------------------

TEST(AdmissionShutdownTest, ShutdownRejectsSubsequentEnters) {
  AdmissionQueue admission(2, SIZE_MAX);
  ASSERT_TRUE(admission.Enter());
  admission.Shutdown();
  EXPECT_TRUE(admission.is_shutdown());
  EXPECT_FALSE(admission.Enter());
  EXPECT_EQ(admission.rejected(), 1u);
  // The already-admitted caller drains normally.
  admission.Exit();
  EXPECT_EQ(admission.inflight(), 0u);
  EXPECT_EQ(admission.admitted(), 1u);
}

TEST(AdmissionShutdownTest, ShutdownIsIdempotent) {
  AdmissionQueue admission(1, SIZE_MAX);
  admission.Shutdown();
  admission.Shutdown();
  EXPECT_FALSE(admission.Enter());
  EXPECT_FALSE(admission.Enter());
  EXPECT_EQ(admission.rejected(), 2u);
}

TEST(AdmissionShutdownTest, ShutdownWakesEveryBlockedWaiter) {
  // One slot held, many waiters blocked in FIFO order; Shutdown must wake
  // all of them with a rejection (no waiter may hang, none may be
  // admitted) while the slot holder's Exit still works.
  AdmissionQueue admission(1, SIZE_MAX);
  ASSERT_TRUE(admission.Enter());

  constexpr int kWaiters = 8;
  std::atomic<int> started{0};
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      started.fetch_add(1);
      if (admission.Enter()) {
        admitted.fetch_add(1);
        admission.Exit();
      } else {
        rejected.fetch_add(1);
      }
    });
  }
  // Wait until every waiter is blocked inside Enter() (waiting() counts
  // exactly the callers parked on the condition variable).
  while (admission.waiting() < static_cast<size_t>(kWaiters)) {
    std::this_thread::yield();
  }

  admission.Shutdown();
  for (std::thread& t : waiters) t.join();

  EXPECT_EQ(started.load(), kWaiters);
  EXPECT_EQ(admitted.load(), 0);
  EXPECT_EQ(rejected.load(), kWaiters);
  admission.Exit();
  const AdmissionQueue::Counters counters = admission.counters();
  EXPECT_EQ(counters.inflight, 0u);
  EXPECT_EQ(counters.waiting, 0u);
  EXPECT_EQ(counters.admitted, 1u);
  EXPECT_EQ(counters.rejected, static_cast<uint64_t>(kWaiters));
}

TEST(AdmissionShutdownTest, ShutdownRacesEnterExitWithoutLossOrDeadlock) {
  // Clients hammer Enter/Exit while an uncoordinated thread shuts the
  // queue down mid-traffic. With an unbounded queue the *only* possible
  // rejection is the shutdown itself, so each client loops until its first
  // rejection: every client must terminate (no waiter left hanging), and
  // the final counters must agree exactly with the per-thread tallies.
  constexpr int kClients = 4;
  AdmissionQueue admission(2, SIZE_MAX);
  std::atomic<int> total_admitted{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (admission.Enter()) {
        total_admitted.fetch_add(1);
        admission.Exit();
      }
    });
  }
  std::thread killer([&] {
    // Let some traffic through first so both phases are exercised.
    while (admission.admitted() < kClients) std::this_thread::yield();
    admission.Shutdown();
  });
  for (std::thread& t : clients) t.join();
  killer.join();

  const AdmissionQueue::Counters counters = admission.counters();
  EXPECT_EQ(counters.admitted, static_cast<uint64_t>(total_admitted.load()));
  EXPECT_EQ(counters.rejected, static_cast<uint64_t>(kClients));
  EXPECT_EQ(counters.inflight, 0u);
  EXPECT_EQ(counters.waiting, 0u);
  EXPECT_GE(total_admitted.load(), kClients);
}

TEST(AdmissionShutdownTest, RejectRacesStayBoundedWithZeroQueue) {
  // max_queue=0: under contention every attempt either gets the slot or is
  // rejected immediately — nobody waits, inflight never exceeds the bound.
  constexpr int kClients = 4;
  constexpr int kAttemptsPerClient = 300;
  AdmissionQueue admission(1, 0);
  std::atomic<int> admitted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kAttemptsPerClient; ++i) {
        if (admission.Enter()) {
          admitted.fetch_add(1);
          admission.Exit();
        } else {
          rejected.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(admitted.load() + rejected.load(), kClients * kAttemptsPerClient);
  EXPECT_GT(admitted.load(), 0);
  const AdmissionQueue::Counters counters = admission.counters();
  EXPECT_LE(counters.peak_inflight, 1u);
  EXPECT_EQ(counters.inflight, 0u);
}

// ---- Coherent counter snapshots ---------------------------------------------

TEST(AdmissionSnapshotTest, SnapshotInvariantsHoldUnderConcurrentTraffic) {
  // Regression for the torn-stats bug the annotation pass surfaced:
  // reading admitted/peak_inflight via separate lock acquisitions can
  // observe a peak from a *newer* state than the admitted count next to it
  // (peak_inflight > admitted), which counters() makes impossible. Sample
  // aggressively while traffic runs and assert the single-acquisition
  // invariants on every sample.
  AdmissionQueue admission(3, SIZE_MAX);
  std::atomic<bool> stop{false};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (admission.Enter()) admission.Exit();
      }
    });
  }
  for (int sample = 0; sample < 2000; ++sample) {
    const AdmissionQueue::Counters c = admission.counters();
    ASSERT_LE(c.peak_inflight, c.admitted);
    ASSERT_LE(c.inflight, 3u);
    ASSERT_LE(c.peak_waiting, c.admitted + c.rejected);
  }
  stop.store(true);
  for (std::thread& t : clients) t.join();
}

// ---- ScoreCache::Clear vs concurrent hit paths ------------------------------

TEST(ScoreCacheClearRaceTest, ClearRacesLookupInsertWithoutTornScores) {
  // Readers hammer Lookup/Insert over a fixed key population while a
  // clearer repeatedly wipes the cache. Scores are a pure function of the
  // key, so any hit must return exactly the key's score — a torn or stale
  // value would surface here (and as a TSan race in the CI job).
  ScoreCache cache(ScoreCache::Options{.num_shards = 4});
  constexpr uint32_t kDocs = 64;
  constexpr uint64_t kClause = 0x1234'5678'9abc'def0ull;
  auto score_of = [](uint32_t doc) { return 1.0 + doc * 0.25; };

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> verified_hits{0};
  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      const std::string value = "cafe";
      uint32_t doc = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        doc = (doc + 1) % kDocs;
        if (auto hit = cache.Lookup(kClause, doc, value)) {
          ASSERT_EQ(*hit, score_of(doc));
          verified_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          cache.Insert(kClause, doc, value, score_of(doc));
        }
      }
    });
  }
  for (int wipe = 0; wipe < 50; ++wipe) {
    cache.Clear();
    std::this_thread::yield();
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  // The warm phases between wipes must have produced real hits, and the
  // post-race structure must still be coherent.
  EXPECT_GT(verified_hits.load(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ScoreCacheClearRaceTest, InvalidateDocRacesHitsOnOtherDocs) {
  // Per-doc invalidation touches exactly one stripe; hits on other docs
  // must proceed concurrently and stay correct.
  ScoreCache cache(ScoreCache::Options{.num_shards = 8});
  constexpr uint64_t kClause = 42;
  const std::string value = "v";
  for (uint32_t doc = 0; doc < 32; ++doc) {
    cache.Insert(kClause, doc, value, static_cast<double>(doc));
  }
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.InvalidateDoc(7);
      cache.Insert(kClause, 7, value, 7.0);
    }
  });
  for (int i = 0; i < 5000; ++i) {
    const uint32_t doc = static_cast<uint32_t>(i) % 32;
    auto hit = cache.Lookup(kClause, doc, value);
    if (doc != 7) {
      ASSERT_TRUE(hit.has_value());
      ASSERT_EQ(*hit, static_cast<double>(doc));
    } else if (hit) {
      ASSERT_EQ(*hit, 7.0);
    }
  }
  stop.store(true);
  invalidator.join();
}

}  // namespace
}  // namespace koko

#include "serve/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generators.h"
#include "index/sharded_index.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << context;
  EXPECT_EQ(a.candidate_sentences, b.candidate_sentences) << context;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].doc, b.rows[i].doc) << context << " row " << i;
    EXPECT_EQ(a.rows[i].sid, b.rows[i].sid) << context << " row " << i;
    EXPECT_EQ(a.rows[i].values, b.rows[i].values) << context << " row " << i;
    EXPECT_EQ(a.rows[i].scores, b.rows[i].scores) << context << " row " << i;
  }
}

// A corpus plus a serial monolithic reference engine and a sharded engine
// for the service under test.
struct ServeWorld {
  Pipeline pipeline;
  AnnotatedCorpus corpus;
  std::unique_ptr<KokoIndex> mono_index;
  std::unique_ptr<ShardedKokoIndex> sharded_index;
  EmbeddingModel embeddings;
  std::unique_ptr<Engine> mono;
  std::unique_ptr<Engine> sharded;

  explicit ServeWorld(size_t shards, int moments = 120, int seed = 71) {
    auto docs = GenerateHappyMoments(
        {.num_moments = moments, .seed = static_cast<uint64_t>(seed)});
    corpus = pipeline.AnnotateCorpus(docs);
    mono_index = KokoIndex::Build(corpus);
    sharded_index = ShardedKokoIndex::Build(corpus, shards);
    const EntityRecognizer& recognizer =
        const_cast<const Pipeline&>(pipeline).recognizer();
    mono = std::make_unique<Engine>(&corpus, mono_index.get(), &embeddings,
                                    &recognizer);
    sharded = std::make_unique<Engine>(&corpus, sharded_index.get(),
                                       &embeddings, &recognizer);
  }
};

// A mixed workload: path extraction, span alignment, entity + satisfying
// clause (exercises the score cache), and a literal.
std::vector<std::string> MixedWorkload() {
  return {
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))",
      R"(extract x:Str from "t" if ( /ROOT:{ v = //verb, x = v + ^ + "." }))",
      R"(extract x:Entity from "t" if ()
         satisfying x (str(x) contains "a" {1}) with threshold 0.5)",
      R"(extract e:Entity from "t" if ()
         satisfying e (e near "happy" {1}) with threshold 0.1)",
      R"(extract b:Str from "t" if ( /ROOT:{ a = //"happy", b = (a.subtree) }))",
  };
}

// The acceptance bar: M concurrent clients hammering one QueryService get
// byte-identical rows to serial single-query execution, for every
// (index shard count, num_shards groups, num_threads) combination.
TEST(QueryServiceTest, ConcurrentClientsMatchSerialByteForByte) {
  const std::vector<std::string> workload = MixedWorkload();
  for (size_t k : {1u, 3u}) {
    ServeWorld world(k);
    // Serial single-query reference: monolithic index, one thread, no
    // shared caches.
    std::vector<QueryResult> expected;
    for (const std::string& query : workload) {
      EngineOptions serial;
      serial.max_rows = 20000;
      auto want = world.mono->ExecuteText(query, serial);
      ASSERT_TRUE(want.ok()) << want.status().ToString();
      expected.push_back(std::move(*want));
    }
    for (size_t groups : {0u, 2u}) {
      QueryService::Options options;
      options.num_threads = 3;
      options.max_inflight = 3;
      options.engine.max_rows = 20000;
      options.engine.num_shards = groups;
      QueryService service(world.sharded.get(), options,
                           world.sharded_index->num_shards());

      constexpr size_t kClients = 4;
      constexpr size_t kRounds = 2;  // round 2 runs against warm caches
      // Each client runs the whole workload; results are collected per
      // client and compared on the main thread (gtest assertions are not
      // thread-safe).
      std::vector<std::vector<Result<QueryResult>>> got(kClients);
      std::vector<std::thread> clients;
      for (size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (size_t round = 0; round < kRounds; ++round) {
            for (const std::string& query : workload) {
              got[c].push_back(service.Run(query));
            }
          }
        });
      }
      for (std::thread& t : clients) t.join();

      for (size_t c = 0; c < kClients; ++c) {
        ASSERT_EQ(got[c].size(), kRounds * workload.size());
        for (size_t i = 0; i < got[c].size(); ++i) {
          const size_t q = i % workload.size();
          ASSERT_TRUE(got[c][i].ok()) << got[c][i].status().ToString();
          ExpectIdenticalResults(
              expected[q], *got[c][i],
              "K=" + std::to_string(k) + " groups=" + std::to_string(groups) +
                  " client=" + std::to_string(c) + " call=" +
                  std::to_string(i));
        }
      }
      QueryService::Stats stats = service.stats();
      EXPECT_EQ(stats.admitted, kClients * kRounds * workload.size());
      EXPECT_EQ(stats.completed, stats.admitted);
      EXPECT_EQ(stats.rejected, 0u);
      EXPECT_LE(stats.peak_inflight, options.max_inflight);
    }
  }
}

TEST(QueryServiceTest, ConcurrentClientsOverMappedIndexMatchSerial) {
  // Lifetime + concurrency over the zero-copy load: many clients hammer a
  // QueryService whose engine reads a kMap-loaded sharded index. Every
  // query's parallel section (shard-parallel DPLI, extract fan-out) runs
  // over the shared mapping concurrently; results must stay byte-identical
  // to serial execution over the built index. Runs under TSan in CI —
  // mapped postings are immutable shared state, so there is nothing to
  // race on.
  ServeWorld world(/*shards=*/3, /*moments=*/100, /*seed=*/73);
  std::string path = ::testing::TempDir() + "/query_service_mmap_test.bin";
  ASSERT_TRUE(world.sharded_index->Save(path).ok());
  ShardedKokoIndex::LoadOptions load_options;
  load_options.mode = LoadMode::kMap;
  auto mapped = ShardedKokoIndex::Load(path, load_options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE((*mapped)->mapped());
  // The mapping must outlive the file: queries keep working after unlink.
  std::remove(path.c_str());
  const EntityRecognizer& recognizer =
      const_cast<const Pipeline&>(world.pipeline).recognizer();
  Engine engine(&world.corpus, mapped->get(), &world.embeddings, &recognizer);

  const std::vector<std::string> workload = MixedWorkload();
  std::vector<QueryResult> expected;
  for (const std::string& query : workload) {
    EngineOptions serial;
    serial.max_rows = 20000;
    auto want = world.mono->ExecuteText(query, serial);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    expected.push_back(std::move(*want));
  }

  QueryService::Options options;
  options.num_threads = 3;
  options.max_inflight = 3;
  options.engine.max_rows = 20000;
  QueryService service(&engine, options, (*mapped)->num_shards());
  constexpr size_t kClients = 4;
  constexpr size_t kRounds = 2;
  std::vector<std::vector<Result<QueryResult>>> got(kClients);
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (const std::string& query : workload) {
          got[c].push_back(service.Run(query));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), kRounds * workload.size());
    for (size_t i = 0; i < got[c].size(); ++i) {
      ASSERT_TRUE(got[c][i].ok()) << got[c][i].status().ToString();
      ExpectIdenticalResults(expected[i % workload.size()], *got[c][i],
                             "mapped client=" + std::to_string(c) +
                                 " call=" + std::to_string(i));
    }
  }
  EXPECT_EQ(service.stats().completed, kClients * kRounds * workload.size());
}

TEST(QueryServiceTest, MaxRowsTruncationMatchesSerial) {
  ServeWorld world(/*shards=*/4, /*moments=*/150, /*seed=*/72);
  const std::string query =
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))";
  for (size_t cap : {0u, 1u, 7u, 23u}) {
    EngineOptions serial;
    serial.max_rows = cap;
    auto want = world.mono->ExecuteText(query, serial);
    ASSERT_TRUE(want.ok());

    QueryService::Options options;
    options.num_threads = 4;
    options.max_inflight = 2;
    options.engine.max_rows = cap;
    QueryService service(world.sharded.get(), options, 4);
    std::vector<std::vector<Result<QueryResult>>> got(3);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < got.size(); ++c) {
      clients.emplace_back(
          [&, c] { got[c].push_back(service.Run(query)); });
    }
    for (std::thread& t : clients) t.join();
    for (size_t c = 0; c < got.size(); ++c) {
      ASSERT_TRUE(got[c][0].ok());
      ExpectIdenticalResults(*want, *got[c][0],
                             "cap=" + std::to_string(cap) + " client=" +
                                 std::to_string(c));
    }
  }
}

TEST(QueryServiceTest, AsyncSubmitMatchesSerial) {
  ServeWorld world(/*shards=*/2);
  const std::vector<std::string> workload = MixedWorkload();
  QueryService::Options options;
  options.num_threads = 3;
  options.max_inflight = 2;
  options.engine.max_rows = 20000;
  QueryService service(world.sharded.get(), options, 2);
  std::vector<std::future<Result<QueryResult>>> futures;
  for (int round = 0; round < 2; ++round) {
    for (const std::string& query : workload) {
      futures.push_back(service.Submit(query));
    }
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    const std::string& query = workload[i % workload.size()];
    Result<QueryResult> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EngineOptions serial;
    serial.max_rows = 20000;
    auto want = world.mono->ExecuteText(query, serial);
    ASSERT_TRUE(want.ok());
    ExpectIdenticalResults(*want, *got, "future " + std::to_string(i));
  }
  EXPECT_EQ(service.stats().completed, futures.size());
}

TEST(QueryServiceTest, ParseErrorsDoNotConsumeAdmission) {
  ServeWorld world(/*shards=*/1, /*moments=*/20);
  QueryService::Options options;
  options.num_threads = 1;
  QueryService service(world.sharded.get(), options, 1);
  auto bad = service.Run("this is not a koko query");
  EXPECT_FALSE(bad.ok());
  QueryService::Stats stats = service.stats();
  EXPECT_EQ(stats.admitted, 0u);
  EXPECT_EQ(stats.completed, 0u);
}

// ---- Score cache ------------------------------------------------------------

TEST(QueryServiceTest, ScoreCacheWarmsAcrossQueries) {
  ServeWorld world(/*shards=*/2);
  const std::string query = R"(
      extract e:Entity from "t" if ()
      satisfying e (e near "happy" {1}) with threshold 0.1)";
  QueryService::Options options;
  options.num_threads = 2;
  QueryService service(world.sharded.get(), options, 2);

  auto cold = service.Run(query);
  ASSERT_TRUE(cold.ok());
  ScoreCache::Stats after_cold = service.score_cache().stats();
  EXPECT_GT(after_cold.entries, 0u);  // scores persisted past the query

  auto warm = service.Run(query);
  ASSERT_TRUE(warm.ok());
  ScoreCache::Stats after_warm = service.score_cache().stats();
  // The repeat run hit the persistent cache instead of recomputing: hits
  // grew, no new misses, no new entries.
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_EQ(after_warm.entries, after_cold.entries);
  // And warm results are byte-identical to cold ones.
  ExpectIdenticalResults(*cold, *warm, "warm vs cold");
}

TEST(ScoreCacheTest, LookupInsertAndStats) {
  ScoreCache cache;
  EXPECT_EQ(cache.Lookup(1, 2, "value"), std::nullopt);
  cache.Insert(1, 2, "value", 0.75);
  auto hit = cache.Lookup(1, 2, "value");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(*hit, 0.75);
  // Distinct clause keys / docs / values are distinct entries.
  EXPECT_EQ(cache.Lookup(9, 2, "value"), std::nullopt);
  EXPECT_EQ(cache.Lookup(1, 3, "value"), std::nullopt);
  EXPECT_EQ(cache.Lookup(1, 2, "other"), std::nullopt);
  ScoreCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ScoreCacheTest, InvalidateDocDropsOnlyThatDoc) {
  ScoreCache cache(ScoreCache::Options{.num_shards = 4});
  for (uint32_t doc = 0; doc < 40; ++doc) {
    cache.Insert(7, doc, "v", static_cast<double>(doc));
  }
  ASSERT_EQ(cache.size(), 40u);
  cache.InvalidateDoc(13);
  EXPECT_EQ(cache.size(), 39u);
  EXPECT_EQ(cache.Lookup(7, 13, "v"), std::nullopt);
  ASSERT_TRUE(cache.Lookup(7, 12, "v").has_value());
  EXPECT_DOUBLE_EQ(*cache.Lookup(7, 12, "v"), 12.0);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(ScoreCacheTest, ClauseFingerprintSeparatesClauses) {
  SatisfyingClause clause;
  clause.var = "x";
  clause.threshold = 0.5;
  SatCondition cond;
  cond.kind = SatCondition::Kind::kStrContains;
  cond.var = "x";
  cond.text = "Cafe";
  cond.weight = 1.0;
  clause.conditions.push_back(cond);

  const uint64_t base = ScoreCache::ClauseFingerprint(clause);
  EXPECT_EQ(ScoreCache::ClauseFingerprint(clause), base);  // deterministic

  // The threshold gates rows after scoring; it must NOT change the key
  // (same clause content -> shared warm scores).
  SatisfyingClause other_threshold = clause;
  other_threshold.threshold = 0.9;
  EXPECT_EQ(ScoreCache::ClauseFingerprint(other_threshold), base);

  // Anything that changes the score must change the key.
  SatisfyingClause other_text = clause;
  other_text.conditions[0].text = "Coffee";
  EXPECT_NE(ScoreCache::ClauseFingerprint(other_text), base);
  SatisfyingClause other_weight = clause;
  other_weight.conditions[0].weight = 0.25;
  EXPECT_NE(ScoreCache::ClauseFingerprint(other_weight), base);
  SatisfyingClause other_kind = clause;
  other_kind.conditions[0].kind = SatCondition::Kind::kStrMentions;
  EXPECT_NE(ScoreCache::ClauseFingerprint(other_kind), base);
  SatisfyingClause more_conditions = clause;
  more_conditions.conditions.push_back(cond);
  EXPECT_NE(ScoreCache::ClauseFingerprint(more_conditions), base);
}

TEST(ScoreCacheTest, ConcurrentInsertLookupIsSafe) {
  ScoreCache cache(ScoreCache::Options{.num_shards = 4});
  constexpr int kThreads = 4;
  constexpr uint32_t kDocs = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (uint32_t doc = 0; doc < kDocs; ++doc) {
        cache.Insert(1, doc, "v", static_cast<double>(doc));
        auto hit = cache.Lookup(1, doc, "v");
        if (hit.has_value()) {
          // First writer wins and scores are deterministic, so any
          // observed value is the correct one.
          EXPECT_DOUBLE_EQ(*hit, static_cast<double>(doc));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(cache.size(), kDocs);
}

// ---- Admission queue --------------------------------------------------------

TEST(AdmissionQueueTest, RejectsWhenQueueFull) {
  // max_inflight=1, max_queue=0: a second caller is rejected while the
  // first holds admission — deterministically, no timing involved.
  AdmissionQueue admission(1, 0);
  ASSERT_TRUE(admission.Enter());
  EXPECT_FALSE(admission.Enter());
  EXPECT_EQ(admission.rejected(), 1u);
  admission.Exit();
  // Slot free again: immediate admission works with a zero-length queue.
  EXPECT_TRUE(admission.Enter());
  admission.Exit();
  EXPECT_EQ(admission.admitted(), 2u);
}

TEST(AdmissionQueueTest, BoundsInflightUnderContention) {
  AdmissionQueue admission(2, SIZE_MAX);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> enter_failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (!admission.Enter()) {  // unbounded queue: must never reject
          enter_failures.fetch_add(1);
          continue;
        }
        int now = concurrent.fetch_add(1) + 1;
        int seen = max_seen.load();
        while (now > seen && !max_seen.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
        admission.Exit();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(enter_failures.load(), 0);
  EXPECT_LE(max_seen.load(), 2);
  EXPECT_EQ(admission.admitted(), 400u);
  EXPECT_LE(admission.peak_inflight(), 2u);
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(QueryServiceTest, RejectionSurfacesAsUnavailable) {
  ServeWorld world(/*shards=*/1, /*moments=*/30);
  QueryService::Options options;
  options.num_threads = 2;
  options.max_inflight = 1;
  options.max_queue = 0;
  QueryService service(world.sharded.get(), options, 1);

  // Hold the only admission slot via the (deliberately exposed) admission
  // queue, then observe a query bounce off the full service.
  ASSERT_TRUE(service.admission().Enter());
  auto rejected = service.Run(
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  service.admission().Exit();

  // With the slot released the same query runs fine.
  auto ok = service.Run(
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(service.stats().rejected, 1u);
}

}  // namespace
}  // namespace koko

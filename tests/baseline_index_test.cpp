#include <gtest/gtest.h>

#include <set>

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "corpus/generators.h"
#include "corpus/query_gen.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

AnnotatedCorpus SmallCorpus() {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 250, .seed = 55});
  return pipeline.AnnotateCorpus(docs);
}

PathQuery DepPath(std::initializer_list<DepLabel> labels) {
  PathQuery q;
  for (DepLabel label : labels) {
    PathStep step;
    step.axis = PathStep::Axis::kChild;
    step.constraint.dep = label;
    q.steps.push_back(step);
  }
  return q;
}

// Candidates of every scheme must be complete: contain every sentence with
// a true match for all paths.
void CheckCompleteness(const TreeIndex& index, const AnnotatedCorpus& corpus,
                       const std::vector<PathQuery>& paths) {
  auto candidates = index.CandidateSentences(paths);
  if (!candidates.ok()) return;  // unsupported is fine (SUBTREE)
  std::set<uint32_t> candidate_set(candidates->begin(), candidates->end());
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    bool all = true;
    for (const auto& path : paths) {
      if (!SentenceHasPathMatch(corpus.sentence(sid), path)) {
        all = false;
        break;
      }
    }
    if (all) {
      EXPECT_TRUE(candidate_set.count(sid) > 0)
          << std::string(index.name()) << " missed sid=" << sid;
    }
  }
}

class BaselineCompletenessTest : public ::testing::TestWithParam<int> {};

TEST_P(BaselineCompletenessTest, CandidatesAreComplete) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto koko = KokoTreeIndex::Build(corpus);
  auto inverted = InvertedIndex::Build(corpus);
  auto adv = AdvInvertedIndex::Build(corpus);
  auto subtree = SubtreeIndex::Build(corpus);
  std::vector<const TreeIndex*> schemes = {koko.get(), inverted.get(), adv.get(),
                                           subtree.get()};

  auto queries = GenerateSyntheticTreeBenchmark(
      corpus, {.queries_per_setting = 2, .seed = static_cast<uint64_t>(
                                             100 + GetParam())});
  ASSERT_FALSE(queries.empty());
  for (const auto& query : queries) {
    for (const TreeIndex* scheme : schemes) {
      CheckCompleteness(*scheme, corpus, query.paths);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineCompletenessTest,
                         ::testing::Values(1, 2, 3));

TEST(BaselineIndexTest, EffectivenessBounds) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto inverted = InvertedIndex::Build(corpus);
  auto adv = AdvInvertedIndex::Build(corpus);
  std::vector<PathQuery> pattern = {
      DepPath({DepLabel::kRoot, DepLabel::kDobj, DepLabel::kAmod})};
  auto inv_candidates = inverted->CandidateSentences(pattern);
  auto adv_candidates = adv->CandidateSentences(pattern);
  ASSERT_TRUE(inv_candidates.ok());
  ASSERT_TRUE(adv_candidates.ok());
  double inv_eff = IndexEffectiveness(corpus, pattern, *inv_candidates);
  double adv_eff = IndexEffectiveness(corpus, pattern, *adv_candidates);
  EXPECT_GE(inv_eff, 0.0);
  EXPECT_LE(inv_eff, 1.0);
  // ADVINVERTED evaluates structure; it can never be less effective than
  // the structure-blind INVERTED on the same query.
  EXPECT_GE(adv_eff, inv_eff);
  // And ADVINVERTED's candidate set is never larger.
  EXPECT_LE(adv_candidates->size(), inv_candidates->size());
}

TEST(BaselineIndexTest, SubtreeRejectsUnsupportedConstructs) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto subtree = SubtreeIndex::Build(corpus);
  // Wildcard step.
  PathQuery wildcard = DepPath({DepLabel::kRoot});
  PathStep star;
  star.axis = PathStep::Axis::kChild;
  wildcard.steps.push_back(star);
  EXPECT_FALSE(subtree->CandidateSentences({wildcard}).ok());
  // Word attribute.
  PathQuery word = DepPath({DepLabel::kRoot});
  PathStep w;
  w.axis = PathStep::Axis::kChild;
  w.constraint.word = "ate";
  word.steps.push_back(w);
  EXPECT_FALSE(subtree->CandidateSentences({word}).ok());
  // Descendant axis.
  PathQuery desc;
  PathStep d;
  d.axis = PathStep::Axis::kDescendant;
  d.constraint.dep = DepLabel::kDobj;
  desc.steps.push_back(d);
  EXPECT_FALSE(subtree->CandidateSentences({desc}).ok());
  // Mixed label kinds on one path.
  PathQuery mixed = DepPath({DepLabel::kRoot});
  PathStep p;
  p.axis = PathStep::Axis::kChild;
  p.constraint.pos = PosTag::kNoun;
  mixed.steps.push_back(p);
  EXPECT_FALSE(subtree->CandidateSentences({mixed}).ok());
  // Plain chain is supported.
  EXPECT_TRUE(
      subtree->CandidateSentences({DepPath({DepLabel::kRoot, DepLabel::kDobj})})
          .ok());
}

TEST(BaselineIndexTest, SubtreeKeysAndSizes) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto subtree = SubtreeIndex::Build(corpus);
  auto koko = KokoTreeIndex::Build(corpus);
  EXPECT_GT(subtree->NumKeys(), 100u);
  // SUBTREE stores every distinct <=3-node subtree: strictly bigger.
  EXPECT_GT(subtree->MemoryUsage(), koko->MemoryUsage());
}

TEST(BaselineIndexTest, AllWildcardRejectedEverywhere) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto koko = KokoTreeIndex::Build(corpus);
  auto inverted = InvertedIndex::Build(corpus);
  PathQuery star;
  PathStep s;
  s.axis = PathStep::Axis::kDescendant;
  star.steps.push_back(s);
  EXPECT_FALSE(koko->CandidateSentences({star}).ok());
  EXPECT_FALSE(inverted->CandidateSentences({star}).ok());
}

TEST(BaselineIndexTest, KokoAdapterEffectivenessIsHigh) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto koko = KokoTreeIndex::Build(corpus);
  auto queries = GenerateSyntheticTreeBenchmark(
      corpus, {.queries_per_setting = 2, .seed = 77});
  double total = 0;
  size_t count = 0;
  for (const auto& query : queries) {
    auto candidates = koko->CandidateSentences(query.paths);
    ASSERT_TRUE(candidates.ok());
    total += IndexEffectiveness(corpus, query.paths, *candidates);
    ++count;
  }
  ASSERT_GT(count, 0u);
  EXPECT_GT(total / static_cast<double>(count), 0.95);
}

TEST(QueryGenTest, BenchmarkSizes) {
  AnnotatedCorpus corpus = SmallCorpus();
  auto tree = GenerateSyntheticTreeBenchmark(corpus, {.queries_per_setting = 5,
                                                      .seed = 7});
  // 48 path settings x5 + tree settings: in the paper's ballpark (350).
  EXPECT_GT(tree.size(), 250u);
  auto span = GenerateSyntheticSpanBenchmark(corpus, {.queries_per_setting = 100,
                                                      .seed = 8});
  EXPECT_EQ(span.size(), 300u);
  int atoms1 = 0, atoms3 = 0, atoms5 = 0;
  for (const auto& q : span) {
    if (q.num_atoms == 1) ++atoms1;
    if (q.num_atoms == 3) ++atoms3;
    if (q.num_atoms == 5) ++atoms5;
  }
  EXPECT_EQ(atoms1, 100);
  EXPECT_EQ(atoms3, 100);
  EXPECT_EQ(atoms5, 100);
}

}  // namespace
}  // namespace koko

// Seeded randomized suites for the serving front end (KOKO_FUZZ_SEED=<n>
// replays a specific seed, default 7 — the repo-wide fuzz convention):
//
//  1. Byte-level fuzz of the wire request decoder: random garbage and
//     random mutations/truncations of valid encodings must decode to a
//     clean error or to a value whose re-encoding is byte-identical to the
//     input (the codec is canonical — accepting a non-canonical byte
//     string would let two wire forms of one request diverge later).
//     Sanitizer jobs turn any OOB into a failure here.
//  2. Batch-admission property: under randomized concurrent schedules with
//     duplicated fingerprints, every response served through the
//     BatchExecutor — leader or follower, coalesced or not — must be
//     byte-identical (RowDigest) to the unbatched execution of the same
//     request, across row caps (capped and uncapped runs must never
//     coalesce with each other; their fingerprints differ).
//  3. Deterministic coalescing: a leader held mid-execution accumulates
//     followers that share its exact result object; the group dissolves on
//     completion.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generators.h"
#include "index/sharded_index.h"
#include "net/frame.h"
#include "replay/fuzz.h"
#include "replay/workloads.h"
#include "serve/batcher.h"
#include "serve/query_service.h"

namespace koko {
namespace {

uint64_t FuzzSeed() {
  const char* env = std::getenv("KOKO_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 7;
}

// ---- 1. Request decoder fuzz -----------------------------------------------

TEST(NetFuzzTest, RequestDecoderSurvivesGarbageAndStaysCanonical) {
  const uint64_t seed = FuzzSeed();
  std::mt19937_64 rng(seed);
  const std::string trace = "seed=" + std::to_string(seed);

  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes;
    if (iter % 2 == 0) {
      // Pure garbage of random length.
      bytes.resize(rng() % 96);
      for (uint8_t& b : bytes) b = static_cast<uint8_t>(rng());
    } else {
      // A valid encoding, then mutated: flip bytes, truncate, or extend.
      net::NetRequest request;
      const size_t text_len = 1 + rng() % 40;
      request.query_text.reserve(text_len);
      for (size_t i = 0; i < text_len; ++i) {
        request.query_text.push_back(
            static_cast<char>('a' + static_cast<char>(rng() % 26)));
      }
      request.max_rows = rng() % 3 == 0 ? 0 : rng();
      request.streaming = rng() % 2 == 0;
      request.use_planner = rng() % 2 == 0;
      request.allow_batch = rng() % 2 == 0;
      bytes = EncodeRequest(request);
      switch (rng() % 3) {
        case 0:  // flip 1-4 bytes
          for (uint64_t flips = 1 + rng() % 4; flips > 0; --flips) {
            bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1 + rng());
          }
          break;
        case 1:  // truncate
          bytes.resize(rng() % bytes.size());
          break;
        case 2:  // append trailing garbage
          for (uint64_t extra = 1 + rng() % 8; extra > 0; --extra) {
            bytes.push_back(static_cast<uint8_t>(rng()));
          }
          break;
      }
    }
    auto decoded = net::DecodeRequest(bytes.data(), bytes.size());
    if (decoded.ok()) {
      EXPECT_EQ(net::EncodeRequest(*decoded), bytes)
          << trace << " iter=" << iter
          << ": decoder accepted a non-canonical request encoding";
    }
  }
}

TEST(NetFuzzTest, AllDecodersSurviveMutatedFrames) {
  const uint64_t seed = FuzzSeed();
  std::mt19937_64 rng(seed ^ 0xabcdef0123456789ull);

  // Seed corpus of valid payloads, one per frame kind.
  std::vector<ResultRow> rows(3);
  rows[0].doc = 1;
  rows[0].sid = 2;
  rows[0].values = {"v", "w"};
  rows[0].scores = {0.5};
  rows[2].values = {""};
  net::NetDone done;
  done.rows = 3;
  done.early_terminated = true;
  const std::vector<std::vector<uint8_t>> corpus = {
      net::EncodeHeaderPayload({"a", "b", "c"}),
      net::EncodeRowsPayload(rows, 0, rows.size()),
      net::EncodeDonePayload(done),
      net::EncodeErrorPayload(StatusCode::kUnavailable, "busy"),
  };
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes = corpus[iter % corpus.size()];
    for (uint64_t flips = rng() % 5; flips > 0; --flips) {
      bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1 + rng());
    }
    if (rng() % 4 == 0) bytes.resize(rng() % (bytes.size() + 1));
    // Decoded-or-rejected, never a crash; canonical when accepted.
    auto header = net::DecodeHeaderPayload(bytes.data(), bytes.size());
    if (header.ok()) {
      EXPECT_EQ(net::EncodeHeaderPayload(*header), bytes);
    }
    auto decoded_rows = net::DecodeRowsPayload(bytes.data(), bytes.size());
    if (decoded_rows.ok()) {
      EXPECT_EQ(net::EncodeRowsPayload(*decoded_rows, 0, decoded_rows->size()),
                bytes);
    }
    auto decoded_done = net::DecodeDonePayload(bytes.data(), bytes.size());
    if (decoded_done.ok()) {
      EXPECT_EQ(net::EncodeDonePayload(*decoded_done), bytes);
    }
    auto error = net::DecodeErrorPayload(bytes.data(), bytes.size());
    if (error.ok()) {
      EXPECT_EQ(net::EncodeErrorPayload(error->code, error->message), bytes);
    }
  }
}

// ---- 2. Batch-admission property -------------------------------------------

struct BatchWorld {
  Pipeline pipeline;
  EmbeddingModel embeddings;
  AnnotatedCorpus corpus;
  std::unique_ptr<ShardedKokoIndex> index;
  std::unique_ptr<Engine> engine;
  std::unique_ptr<QueryService> service;
  std::vector<replay::WorkloadQuery> queries;
};

std::unique_ptr<BatchWorld> MakeBatchWorld(uint64_t seed) {
  auto w = std::make_unique<BatchWorld>();
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = seed ^ 0x9e37});
  w->corpus = w->pipeline.AnnotateCorpus(docs);
  w->index = ShardedKokoIndex::Build(w->corpus, 3);
  w->engine = std::make_unique<Engine>(&w->corpus, w->index.get(),
                                       &w->embeddings, w->pipeline.recognizer());
  QueryService::Options options;
  options.num_threads = 3;
  options.max_inflight = 2;  // small, so concurrent leaders overlap
  w->service = std::make_unique<QueryService>(w->engine.get(), options, 3);
  replay::FuzzOptions fuzz;
  fuzz.count = 6;
  fuzz.seed = seed;
  w->queries = replay::GenerateFuzzQueries(w->corpus, fuzz);
  return w;
}

QueryService::RunOverrides OverridesForCap(uint64_t cap) {
  QueryService::RunOverrides overrides;
  if (cap > 0) overrides.max_rows = static_cast<size_t>(cap);
  overrides.use_planner = true;
  return overrides;
}

TEST(NetFuzzTest, BatchedExecutionIsByteIdenticalToUnbatched) {
  const uint64_t seed = FuzzSeed();
  std::mt19937_64 rng(seed ^ 0x5bd1e995u);
  auto world = MakeBatchWorld(seed);
  ASSERT_EQ(world->queries.size(), 6u);
  const std::vector<uint64_t> caps = {0, 5};

  // Unbatched reference digests: the same service, the same overrides,
  // executed serially with no coalescing in the path.
  std::vector<std::vector<uint64_t>> reference(world->queries.size());
  for (size_t qi = 0; qi < world->queries.size(); ++qi) {
    for (uint64_t cap : caps) {
      auto result = world->service->Run(world->queries[qi].query,
                                        OverridesForCap(cap), RowSink());
      ASSERT_TRUE(result.ok())
          << "seed=" << seed << " " << world->queries[qi].name << ": "
          << result.status().ToString();
      reference[qi].push_back(replay::RowDigest(*result));
    }
  }

  // Randomized concurrent schedules: each round picks three (query, cap)
  // combos and launches two requests for each through one shared
  // BatchExecutor — duplicated fingerprints guaranteed, whether any pair
  // actually coalesces is up to the scheduler. Either way every outcome
  // must digest to the unbatched reference.
  BatchExecutor batcher;
  uint64_t total_runs = 0;
  for (int round = 0; round < 6; ++round) {
    struct Task {
      size_t qi;
      size_t ci;
    };
    std::vector<Task> tasks;
    for (int combo = 0; combo < 3; ++combo) {
      const Task task = {rng() % world->queries.size(), rng() % caps.size()};
      tasks.push_back(task);
      tasks.push_back(task);
    }
    std::vector<std::string> failures(tasks.size());
    std::vector<std::thread> threads;
    for (size_t t = 0; t < tasks.size(); ++t) {
      threads.emplace_back([&, t]() {
        const Task& task = tasks[t];
        const Query& query = world->queries[task.qi].query;
        const uint64_t cap = caps[task.ci];
        const uint64_t fp = RequestFingerprint(query, cap, true);
        BatchExecutor::Outcome outcome = batcher.Run(fp, [&]() {
          return world->service->Run(query, OverridesForCap(cap), RowSink());
        });
        const Result<QueryResult>& result = *outcome.result;
        if (!result.ok()) {
          failures[t] = result.status().ToString();
        } else if (replay::RowDigest(*result) != reference[task.qi][task.ci]) {
          failures[t] = world->queries[task.qi].name + " cap=" +
                        std::to_string(cap) +
                        (outcome.follower ? " (follower)" : " (leader)") +
                        ": batched rows diverged from unbatched";
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    total_runs += tasks.size();
    for (size_t t = 0; t < tasks.size(); ++t) {
      EXPECT_TRUE(failures[t].empty())
          << "seed=" << seed << " round=" << round << " task=" << t << ": "
          << failures[t];
    }
  }
  const BatchExecutor::Stats stats = batcher.stats();
  // Every run was either a leader or a follower; coalescing never loses
  // or invents a request.
  EXPECT_EQ(stats.leaders + stats.followers, total_runs);
}

// ---- 3. Deterministic coalescing -------------------------------------------

TEST(NetFuzzTest, FollowersShareTheLeadersExactResult) {
  BatchExecutor batcher;
  constexpr uint64_t kFingerprint = 0xfeedfacecafebeefull;
  constexpr uint64_t kFollowers = 3;
  std::atomic<bool> exec_entered{false};

  // The leader's execution blocks until all followers have joined the
  // group (join increments the follower counter before waiting), making
  // the coalescing outcome deterministic rather than scheduler-dependent.
  auto exec = [&]() -> Result<QueryResult> {
    exec_entered.store(true);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (batcher.stats().followers < kFollowers &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    QueryResult result;
    ResultRow row;
    row.doc = 42;
    row.values = {"leader"};
    result.rows.push_back(row);
    return result;
  };

  BatchExecutor::Outcome leader_outcome;
  std::thread leader([&]() { leader_outcome = batcher.Run(kFingerprint, exec); });
  while (!exec_entered.load()) std::this_thread::yield();

  std::vector<BatchExecutor::Outcome> follower_outcomes(kFollowers);
  std::vector<std::thread> followers;
  for (uint64_t f = 0; f < kFollowers; ++f) {
    followers.emplace_back([&, f]() {
      follower_outcomes[f] = batcher.Run(kFingerprint, [&]() -> Result<QueryResult> {
        ADD_FAILURE() << "a follower must never execute";
        return Status::Internal("follower executed");
      });
    });
  }
  for (std::thread& t : followers) t.join();
  leader.join();

  ASSERT_TRUE(leader_outcome.result != nullptr);
  EXPECT_FALSE(leader_outcome.follower);
  for (uint64_t f = 0; f < kFollowers; ++f) {
    EXPECT_TRUE(follower_outcomes[f].follower) << "follower " << f;
    // The same result object, not a copy: coalescing is sharing.
    EXPECT_EQ(follower_outcomes[f].result.get(), leader_outcome.result.get());
  }
  const BatchExecutor::Stats stats = batcher.stats();
  EXPECT_EQ(stats.leaders, 1u);
  EXPECT_EQ(stats.followers, kFollowers);
  EXPECT_EQ(stats.peak_group, kFollowers + 1);

  // The group dissolved at completion: a later identical fingerprint
  // executes fresh (a second leader, not a stale shared result).
  auto outcome = batcher.Run(kFingerprint, [&]() -> Result<QueryResult> {
    QueryResult result;
    return result;
  });
  EXPECT_FALSE(outcome.follower);
  EXPECT_EQ(batcher.stats().leaders, 2u);
}

}  // namespace
}  // namespace koko

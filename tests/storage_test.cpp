#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "nlp/pipeline.h"
#include "storage/btree.h"
#include "storage/doc_store.h"
#include "storage/serde.h"
#include "storage/table.h"
#include "util/rng.h"

namespace koko {
namespace {

TEST(BTreeTest, InsertAndFind) {
  BPlusTree<std::string, uint32_t> tree;
  tree.Insert("b", 2);
  tree.Insert("a", 1);
  tree.Insert("b", 3);
  ASSERT_NE(tree.Find("b"), nullptr);
  EXPECT_EQ(*tree.Find("b"), (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(tree.Find("c"), nullptr);
  EXPECT_EQ(tree.NumValues(), 3u);
  EXPECT_EQ(tree.NumKeys(), 2u);
}

TEST(BTreeTest, SplitsKeepOrder) {
  BPlusTree<uint64_t, uint32_t> tree;
  for (uint64_t i = 0; i < 2000; ++i) tree.Insert(i * 7 % 2000, static_cast<uint32_t>(i));
  uint64_t prev = 0;
  bool first = true;
  size_t count = 0;
  tree.ScanAll([&](const uint64_t& key, const std::vector<uint32_t>&) {
    if (!first) EXPECT_GT(key, prev);
    prev = key;
    first = false;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 2000u);
}

TEST(BTreeTest, RangeScan) {
  BPlusTree<uint64_t, uint32_t> tree;
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(i, static_cast<uint32_t>(i));
  std::vector<uint64_t> seen;
  tree.Scan(10, 20, [&](const uint64_t& k, const std::vector<uint32_t>&) {
    seen.push_back(k);
    return true;
  });
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 10u);
  EXPECT_EQ(seen.back(), 20u);
}

TEST(BTreeTest, ScanEarlyStop) {
  BPlusTree<uint64_t, uint32_t> tree;
  for (uint64_t i = 0; i < 100; ++i) tree.Insert(i, 0);
  int visits = 0;
  tree.ScanAll([&](const uint64_t&, const std::vector<uint32_t>&) {
    return ++visits < 5;
  });
  EXPECT_EQ(visits, 5);
}

TEST(BTreeTest, FuzzAgainstStdMap) {
  BPlusTree<std::string, uint32_t> tree;
  std::map<std::string, std::vector<uint32_t>> reference;
  Rng rng(77);
  for (int i = 0; i < 5000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(400));
    uint32_t value = static_cast<uint32_t>(rng.Uniform(1000));
    tree.Insert(key, value);
    reference[key].push_back(value);
  }
  for (const auto& [key, values] : reference) {
    const auto* found = tree.Find(key);
    ASSERT_NE(found, nullptr) << key;
    EXPECT_EQ(*found, values) << key;
  }
  EXPECT_EQ(tree.NumKeys(), reference.size());
  // Full-order agreement.
  auto it = reference.begin();
  tree.ScanAll([&](const std::string& key, const std::vector<uint32_t>& values) {
    EXPECT_EQ(key, it->first);
    EXPECT_EQ(values, it->second);
    ++it;
    return true;
  });
}

TEST(BTreeTest, MemoryUsagePositive) {
  BPlusTree<std::string, uint32_t> tree;
  size_t empty = tree.MemoryUsage();
  for (int i = 0; i < 500; ++i) tree.Insert("key" + std::to_string(i), 1);
  EXPECT_GT(tree.MemoryUsage(), empty);
}

TEST(TableTest, AppendAndGet) {
  Table t("test", {{"name", ColumnType::kString}, {"age", ColumnType::kInt64}});
  ASSERT_TRUE(t.AppendRow({std::string("anna"), int64_t{30}}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("bob"), int64_t{25}}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.GetString(0, 0), "anna");
  EXPECT_EQ(t.GetInt(1, 1), 25);
  EXPECT_EQ(t.ColumnIndex("age"), 1);
  EXPECT_EQ(t.ColumnIndex("nope"), -1);
}

TEST(TableTest, RejectsBadRows) {
  Table t("test", {{"a", ColumnType::kInt64}});
  EXPECT_FALSE(t.AppendRow({std::string("wrong type")}).ok());
  EXPECT_FALSE(t.AppendRow({int64_t{1}, int64_t{2}}).ok());
}

TEST(TableTest, IndexLookup) {
  Table t("test", {{"word", ColumnType::kString}, {"sid", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("by_word", {"word"}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("ate"), int64_t{0}}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("pie"), int64_t{0}}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("ate"), int64_t{1}}).ok());
  auto rows = t.IndexLookup("by_word", {std::string("ate")});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<uint32_t>{0, 2}));
  auto missing = t.IndexLookup("by_word", {std::string("zzz")});
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
  EXPECT_FALSE(t.IndexLookup("no_index", {std::string("x")}).ok());
}

TEST(TableTest, IndexBuiltAfterRowsExist) {
  Table t("test", {{"k", ColumnType::kInt64}});
  for (int64_t i = 0; i < 50; ++i) ASSERT_TRUE(t.AppendRow({i % 5}).ok());
  ASSERT_TRUE(t.CreateIndex("by_k", {"k"}).ok());
  auto rows = t.IndexLookup("by_k", {int64_t{3}});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
}

TEST(TableTest, CompositeIndexAndPrefixScan) {
  Table t("test", {{"a", ColumnType::kString}, {"b", ColumnType::kInt64}});
  ASSERT_TRUE(t.CreateIndex("ab", {"a", "b"}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("x"), int64_t{1}}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("x"), int64_t{2}}).ok());
  ASSERT_TRUE(t.AppendRow({std::string("y"), int64_t{1}}).ok());
  auto exact = t.IndexLookup("ab", {std::string("x"), int64_t{2}});
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(*exact, (std::vector<uint32_t>{1}));
  auto prefix = t.IndexPrefixLookup("ab", {std::string("x")});
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(prefix->size(), 2u);
}

TEST(TableTest, KeyEncodingPreservesIntOrder) {
  std::string neg = Table::EncodeKey({int64_t{-5}});
  std::string zero = Table::EncodeKey({int64_t{0}});
  std::string pos = Table::EncodeKey({int64_t{5}});
  EXPECT_LT(neg, zero);
  EXPECT_LT(zero, pos);
}

TEST(CatalogTest, SaveLoadRoundTrip) {
  Catalog catalog;
  Table* t = catalog.CreateTable(
      "words", {{"word", ColumnType::kString}, {"sid", ColumnType::kInt64}});
  ASSERT_TRUE(t->CreateIndex("by_word", {"word"}).ok());
  ASSERT_TRUE(t->AppendRow({std::string("hello"), int64_t{7}}).ok());
  ASSERT_TRUE(t->AppendRow({std::string("world"), int64_t{8}}).ok());

  std::string path = ::testing::TempDir() + "/koko_catalog_test.bin";
  ASSERT_TRUE(catalog.SaveToFile(path).ok());

  Catalog loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  Table* lt = loaded.GetTable("words");
  ASSERT_NE(lt, nullptr);
  EXPECT_EQ(lt->NumRows(), 2u);
  EXPECT_EQ(lt->GetString(0, 0), "hello");
  EXPECT_EQ(lt->GetInt(1, 1), 8);
  auto rows = lt->IndexLookup("by_word", {std::string("world")});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(*rows, (std::vector<uint32_t>{1}));
  std::remove(path.c_str());
}

TEST(CatalogTest, LoadMissingFileFails) {
  Catalog catalog;
  EXPECT_FALSE(catalog.LoadFromFile("/nonexistent/path.bin").ok());
}

TEST(SerdeTest, PrimitivesRoundTrip) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU8(7);
  w.WriteU32(1234567);
  w.WriteU64(0xdeadbeefcafeULL);
  w.WriteI64(-42);
  w.WriteDouble(3.25);
  w.WriteString("koko");
  w.WriteVector<int32_t>({1, -2, 3});

  std::istringstream in(out.str());
  BinaryReader r(&in);
  EXPECT_EQ(*r.ReadU8(), 7);
  EXPECT_EQ(*r.ReadU32(), 1234567u);
  EXPECT_EQ(*r.ReadU64(), 0xdeadbeefcafeULL);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_DOUBLE_EQ(*r.ReadDouble(), 3.25);
  EXPECT_EQ(*r.ReadString(), "koko");
  EXPECT_EQ(*r.ReadVector<int32_t>(), (std::vector<int32_t>{1, -2, 3}));
}

TEST(SerdeTest, TruncatedStreamFails) {
  std::istringstream in("ab");
  BinaryReader r(&in);
  EXPECT_FALSE(r.ReadU64().ok());
}

TEST(DocStoreTest, DocumentRoundTrip) {
  Pipeline pipeline;
  RawDocument raw{"t", "Anna ate some delicious cheesecake. She was happy."};
  Document doc = pipeline.AnnotateDocument(raw, 3);
  std::string blob = DocumentStore::SerializeDocument(doc);
  auto restored = DocumentStore::DeserializeDocument(blob);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->sentences.size(), doc.sentences.size());
  for (size_t i = 0; i < doc.sentences.size(); ++i) {
    const Sentence& a = doc.sentences[i];
    const Sentence& b = restored->sentences[i];
    ASSERT_EQ(a.size(), b.size());
    for (int t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a.tokens[t].text, b.tokens[t].text);
      EXPECT_EQ(a.tokens[t].pos, b.tokens[t].pos);
      EXPECT_EQ(a.tokens[t].label, b.tokens[t].label);
      EXPECT_EQ(a.tokens[t].head, b.tokens[t].head);
      EXPECT_EQ(a.tokens[t].etype, b.tokens[t].etype);
    }
    EXPECT_EQ(a.entities.size(), b.entities.size());
    EXPECT_EQ(a.subtree_left, b.subtree_left);   // recomputed on load
    EXPECT_EQ(a.depth, b.depth);
  }
}

TEST(DocStoreTest, CorpusStoreAndFileRoundTrip) {
  Pipeline pipeline;
  std::vector<RawDocument> raw = {{"a", "I ate pie."}, {"b", "Anna was happy."}};
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(raw);
  DocumentStore store = DocumentStore::FromCorpus(corpus);
  EXPECT_EQ(store.NumDocs(), 2u);
  EXPECT_GT(store.TotalBytes(), 0u);
  Document d1 = store.LoadDocument(1);
  EXPECT_EQ(d1.sentences.size(), corpus.docs[1].sentences.size());

  std::string path = ::testing::TempDir() + "/koko_docstore_test.bin";
  ASSERT_TRUE(store.SaveToFile(path).ok());
  DocumentStore loaded;
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.NumDocs(), 2u);
  EXPECT_EQ(loaded.LoadDocument(0).sentences[0].Text(),
            store.LoadDocument(0).sentences[0].Text());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koko

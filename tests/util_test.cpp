#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/hash.h"
#include "util/interner.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace koko {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  KOKO_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  hello   world \t x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Capitalize("cafe"), "Cafe");
  EXPECT_TRUE(EqualsIgnoreCase("CAFE", "cafe"));
  EXPECT_FALSE(EqualsIgnoreCase("cafe", "caff"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
}

TEST(StringUtilTest, ContainsVariants) {
  EXPECT_TRUE(Contains("chocolate ice cream", "ice"));
  EXPECT_FALSE(Contains("chocolate", "Choc"));
  EXPECT_TRUE(ContainsIgnoreCase("chocolate", "Choc"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, DigitHelpers) {
  EXPECT_TRUE(IsAllDigits("1900"));
  EXPECT_FALSE(IsAllDigits("19a0"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsCapitalized("Anna"));
  EXPECT_FALSE(IsCapitalized("anna"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.456789, 2), "0.46");
  EXPECT_EQ(FormatDouble(3.0, 1), "3.0");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
}

TEST(HashTest, Fnv1aDeterministicAndSpread) {
  EXPECT_EQ(Fnv1a64("koko"), Fnv1a64("koko"));
  EXPECT_NE(Fnv1a64("koko"), Fnv1a64("kok"));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("a", 2));
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, FromStringDiffers) {
  EXPECT_NE(Rng::FromString("a").Next(), Rng::FromString("b").Next());
}

TEST(InternerTest, InternIsStable) {
  StringPool pool;
  Symbol a = pool.Intern("hello");
  Symbol b = pool.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("hello"), a);
  EXPECT_EQ(pool.Lookup(a), "hello");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(InternerTest, FindMissing) {
  StringPool pool;
  EXPECT_EQ(pool.Find("nope"), kInvalidSymbol);
  pool.Intern("yes");
  EXPECT_NE(pool.Find("yes"), kInvalidSymbol);
}

TEST(TimerTest, PhaseStatsAccumulate) {
  PhaseStats stats;
  stats.Add("a", 1.5);
  stats.Add("a", 0.5);
  stats.Add("b", 1.0);
  EXPECT_DOUBLE_EQ(stats.Get("a"), 2.0);
  EXPECT_DOUBLE_EQ(stats.Total(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Get("missing"), 0.0);
}

TEST(TimerTest, ScopedPhaseCharges) {
  PhaseStats stats;
  {
    ScopedPhase phase(&stats, "x");
    volatile int sink = 0;
    for (int i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(stats.Get("x"), 0.0);
}

TEST(TimerTest, WallTimerMonotone) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
}


// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, DispatchRunsEverySlotOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(pool.num_workers());
  pool.Dispatch([&](size_t slot) { counts[slot].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllSlots) {
  ThreadPool pool(3);
  constexpr size_t kSlots = 100;
  std::vector<std::atomic<int>> counts(kSlots);
  pool.ParallelFor(kSlots, [&](size_t slot) { counts[slot].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no slots -> no calls"; });
}

// The bug this guards against: the seed pool kept one shared fn_/remaining_/
// generation_ triple, so two threads dispatching concurrently clobbered each
// other's section state (lost wakeups, fn torn between sections). The
// task-queue pool gives every fork/join call its own job, so any number of
// threads can share one pool — the QueryService serving model.
TEST(ThreadPoolTest, ConcurrentDispatchersShareOnePoolSafely) {
  ThreadPool pool(4);
  constexpr int kDispatchers = 8;
  constexpr int kRounds = 25;
  constexpr size_t kSlots = 16;
  std::atomic<long> total{0};
  std::vector<std::thread> dispatchers;
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<char> hit(kSlots, 0);
        pool.ParallelFor(kSlots, [&](size_t slot) {
          hit[slot] = 1;
          total.fetch_add(1, std::memory_order_relaxed);
        });
        // Every slot of *this* section ran exactly once before the join
        // returned, regardless of the other dispatchers' sections.
        for (char h : hit) ASSERT_EQ(h, 1);
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();
  EXPECT_EQ(total.load(), static_cast<long>(kDispatchers) * kRounds * kSlots);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor drains the queue.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForInsideSubmittedTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    // A worker opening its own fork/join section must not deadlock even
    // though it occupies one of the two workers: the caller participates.
    pool.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(inner.load(), 8);
}

}  // namespace
}  // namespace koko

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "storage/serde.h"
#include "util/hash.h"
#include "util/interner.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace koko {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad arg");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

Result<int> Doubler(Result<int> in) {
  KOKO_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("boom")).ok());
}

TEST(StringUtilTest, Split) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto parts = SplitWhitespace("  hello   world \t x ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "world");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_EQ(Capitalize("cafe"), "Cafe");
  EXPECT_TRUE(EqualsIgnoreCase("CAFE", "cafe"));
  EXPECT_FALSE(EqualsIgnoreCase("cafe", "caff"));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
}

TEST(StringUtilTest, ContainsVariants) {
  EXPECT_TRUE(Contains("chocolate ice cream", "ice"));
  EXPECT_FALSE(Contains("chocolate", "Choc"));
  EXPECT_TRUE(ContainsIgnoreCase("chocolate", "Choc"));
  EXPECT_TRUE(ContainsIgnoreCase("abc", ""));
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringUtilTest, DigitHelpers) {
  EXPECT_TRUE(IsAllDigits("1900"));
  EXPECT_FALSE(IsAllDigits("19a0"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_TRUE(IsCapitalized("Anna"));
  EXPECT_FALSE(IsCapitalized("anna"));
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.456789, 2), "0.46");
  EXPECT_EQ(FormatDouble(3.0, 1), "3.0");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KB");
}

TEST(HashTest, Fnv1aDeterministicAndSpread) {
  EXPECT_EQ(Fnv1a64("koko"), Fnv1a64("koko"));
  EXPECT_NE(Fnv1a64("koko"), Fnv1a64("kok"));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("a", 2));
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    int64_t x = rng.UniformInt(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, FromStringDiffers) {
  EXPECT_NE(Rng::FromString("a").Next(), Rng::FromString("b").Next());
}

TEST(InternerTest, InternIsStable) {
  StringPool pool;
  Symbol a = pool.Intern("hello");
  Symbol b = pool.Intern("world");
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Intern("hello"), a);
  EXPECT_EQ(pool.Lookup(a), "hello");
  EXPECT_EQ(pool.size(), 2u);
}

TEST(InternerTest, FindMissing) {
  StringPool pool;
  EXPECT_EQ(pool.Find("nope"), kInvalidSymbol);
  pool.Intern("yes");
  EXPECT_NE(pool.Find("yes"), kInvalidSymbol);
}

TEST(TimerTest, PhaseStatsAccumulate) {
  PhaseStats stats;
  stats.Add("a", 1.5);
  stats.Add("a", 0.5);
  stats.Add("b", 1.0);
  EXPECT_DOUBLE_EQ(stats.Get("a"), 2.0);
  EXPECT_DOUBLE_EQ(stats.Total(), 3.0);
  EXPECT_DOUBLE_EQ(stats.Get("missing"), 0.0);
}

TEST(TimerTest, ScopedPhaseCharges) {
  PhaseStats stats;
  {
    ScopedPhase phase(&stats, "x");
    volatile unsigned sink = 0;
    for (unsigned i = 0; i < 100000; ++i) sink = sink + i;
  }
  EXPECT_GT(stats.Get("x"), 0.0);
}

TEST(TimerTest, WallTimerMonotone) {
  WallTimer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(b, a);
}


// ---- ThreadPool -------------------------------------------------------------

TEST(ThreadPoolTest, DispatchRunsEverySlotOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(pool.num_workers());
  pool.Dispatch([&](size_t slot) { counts[slot].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ParallelForCoversAllSlots) {
  ThreadPool pool(3);
  constexpr size_t kSlots = 100;
  std::vector<std::atomic<int>> counts(kSlots);
  pool.ParallelFor(kSlots, [&](size_t slot) { counts[slot].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no slots -> no calls"; });
}

// The bug this guards against: the seed pool kept one shared fn_/remaining_/
// generation_ triple, so two threads dispatching concurrently clobbered each
// other's section state (lost wakeups, fn torn between sections). The
// task-queue pool gives every fork/join call its own job, so any number of
// threads can share one pool — the QueryService serving model.
TEST(ThreadPoolTest, ConcurrentDispatchersShareOnePoolSafely) {
  ThreadPool pool(4);
  constexpr int kDispatchers = 8;
  constexpr int kRounds = 25;
  constexpr size_t kSlots = 16;
  std::atomic<long> total{0};
  std::vector<std::thread> dispatchers;
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&] {
      for (int r = 0; r < kRounds; ++r) {
        std::vector<char> hit(kSlots, 0);
        pool.ParallelFor(kSlots, [&](size_t slot) {
          hit[slot] = 1;
          total.fetch_add(1, std::memory_order_relaxed);
        });
        // Every slot of *this* section ran exactly once before the join
        // returned, regardless of the other dispatchers' sections.
        for (char h : hit) ASSERT_EQ(h, 1);
      }
    });
  }
  for (std::thread& t : dispatchers) t.join();
  EXPECT_EQ(total.load(), static_cast<long>(kDispatchers) * kRounds * kSlots);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&] { ran.fetch_add(1); });
    }
    // Destructor drains the queue.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForInsideSubmittedTaskCompletes) {
  ThreadPool pool(2);
  std::atomic<int> inner{0};
  std::atomic<bool> done{false};
  pool.Submit([&] {
    // A worker opening its own fork/join section must not deadlock even
    // though it occupies one of the two workers: the caller participates.
    pool.ParallelFor(8, [&](size_t) { inner.fetch_add(1); });
    done.store(true);
  });
  while (!done.load()) std::this_thread::yield();
  EXPECT_EQ(inner.load(), 8);
}

// ---- MemorySpan / U32View / MappedFile / SpanReader -------------------------

TEST(MemorySpanTest, SliceBoundsChecked) {
  std::vector<uint8_t> bytes = {1, 2, 3, 4, 5};
  MemorySpan span(bytes.data(), bytes.size());
  auto mid = span.Slice(1, 3);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->size(), 3u);
  EXPECT_EQ(mid->data(), bytes.data() + 1);
  EXPECT_TRUE(span.Slice(5, 0).ok());   // empty slice at the end is valid
  EXPECT_FALSE(span.Slice(6, 0).ok());  // offset past the end
  EXPECT_FALSE(span.Slice(3, 3).ok());  // length past the end
  // Overflow-shaped arguments must not wrap around.
  EXPECT_FALSE(span.Slice(1, SIZE_MAX).ok());
  EXPECT_EQ(mid->ToVector(), (std::vector<uint8_t>{2, 3, 4}));
}

TEST(U32ViewTest, UnalignedLoads) {
  // A view based one byte into a buffer exercises the unaligned path the
  // mmap'ed skip tables hit (strings precede them in the image).
  std::vector<uint32_t> values = {7, 0, 0xffffffffu, 123456789u};
  std::vector<uint8_t> shifted(1 + values.size() * sizeof(uint32_t));
  std::memcpy(shifted.data() + 1, values.data(),
              values.size() * sizeof(uint32_t));
  U32View view(shifted.data() + 1, values.size());
  ASSERT_EQ(view.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(view[i], values[i]);
  EXPECT_EQ(view.ToVector(), values);
  U32View aligned(values);
  EXPECT_EQ(aligned.raw(), reinterpret_cast<const uint8_t*>(values.data()));
  EXPECT_EQ(aligned.raw_size(), values.size() * sizeof(uint32_t));
}

TEST(MappedFileTest, MapsReadsAndOutlivesUnlink) {
  const std::string path = ::testing::TempDir() + "/mmap_util_test.bin";
  const std::string payload = "mapped bytes survive unlink";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(payload.data(), static_cast<long>(payload.size()));
  }
  auto file = MappedFile::Open(path);
  ASSERT_TRUE(file.ok()) << file.status().ToString();
  EXPECT_EQ((*file)->size(), payload.size());
  EXPECT_EQ((*file)->path(), path);
  std::remove(path.c_str());  // POSIX: the mapping keeps the pages alive
  const MemorySpan span = (*file)->span();
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(span.data()),
                        span.size()),
            payload);
}

TEST(MappedFileTest, OpenFailuresAreCleanErrors) {
  auto missing = MappedFile::Open(::testing::TempDir() + "/no_such_file.bin");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kIoError);
  // Directories are not mappable index images.
  EXPECT_FALSE(MappedFile::Open(::testing::TempDir()).ok());
  // An empty file maps to an empty span (the image parser then rejects it).
  const std::string path = ::testing::TempDir() + "/mmap_empty_test.bin";
  { std::ofstream out(path, std::ios::binary); }
  auto empty = MappedFile::Open(path);
  ASSERT_TRUE(empty.ok()) << empty.status().ToString();
  EXPECT_EQ((*empty)->size(), 0u);
  EXPECT_TRUE((*empty)->span().empty());
  std::remove(path.c_str());
}

TEST(SpanReaderTest, ReadsScalarsStringsAndViews) {
  // Build a little stream with BinaryWriter, then parse it back with
  // SpanReader and check the array reads alias instead of copying.
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  writer.WriteU32(42);
  writer.WriteString("word");
  const std::vector<uint32_t> u32s = {1, 2, 3};
  writer.WriteVector(u32s);
  const std::vector<uint8_t> raw = {9, 8};
  writer.WriteVector(raw);
  writer.WriteU64(7);
  const std::string image = out.str();
  const MemorySpan span(reinterpret_cast<const uint8_t*>(image.data()),
                        image.size());

  SpanReader reader(span);
  auto a = reader.ReadU32();
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, 42u);
  auto s = reader.ReadString();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, "word");
  auto view = reader.ReadU32Array();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->ToVector(), u32s);
  EXPECT_GE(view->raw(), span.data());  // a view into the span, not a copy
  EXPECT_LT(view->raw(), span.data() + span.size());
  auto bytes = reader.ReadByteArray();
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(bytes->ToVector(), raw);
  auto b = reader.ReadU64();
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, 7u);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.ReadU32().ok());  // past the end: clean error
}

TEST(SpanReaderTest, CorruptLengthPrefixesRejected) {
  // A length prefix larger than the remaining bytes must fail, not read
  // (or allocate) past the span.
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(&out);
  writer.WriteU32(1000000);  // claims 1M entries, stream ends right after
  const std::string image = out.str();
  SpanReader reader(MemorySpan(
      reinterpret_cast<const uint8_t*>(image.data()), image.size()));
  EXPECT_FALSE(reader.ReadU32Array().ok());
  SpanReader again(MemorySpan(
      reinterpret_cast<const uint8_t*>(image.data()), image.size()));
  EXPECT_FALSE(again.ReadByteArray().ok());
  SpanReader str_reader(MemorySpan(
      reinterpret_cast<const uint8_t*>(image.data()), image.size()));
  EXPECT_FALSE(str_reader.ReadString().ok());
}

TEST(SpanStreamBufTest, SeekableIstreamOverSpan) {
  const std::string payload = "0123456789";
  SpanStreamBuf buf(MemorySpan(
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
  std::istream in(&buf);
  char c;
  in.read(&c, 1);
  EXPECT_EQ(c, '0');
  in.seekg(5);
  in.read(&c, 1);
  EXPECT_EQ(c, '5');
  in.seekg(0, std::ios::end);
  EXPECT_EQ(static_cast<long>(in.tellg()), 10);
  in.seekg(-2, std::ios::cur);
  in.read(&c, 1);
  EXPECT_EQ(c, '8');
  // Seeking outside the span fails the stream.
  in.seekg(42);
  EXPECT_TRUE(in.fail());
}

}  // namespace
}  // namespace koko

#include "index/sharded_index.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#include "corpus/generators.h"
#include "index/path_lookup.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"
#include "util/thread_pool.h"

namespace koko {
namespace {

AnnotatedCorpus MomentsCorpus(int n, uint64_t seed) {
  Pipeline pipeline;
  return pipeline.AnnotateCorpus(
      GenerateHappyMoments({.num_moments = n, .seed = seed}));
}

PathQuery DobjPath() {
  PathQuery q;
  PathStep s1;
  s1.axis = PathStep::Axis::kChild;
  s1.constraint.dep = DepLabel::kRoot;
  PathStep s2;
  s2.axis = PathStep::Axis::kDescendant;
  s2.constraint.dep = DepLabel::kDobj;
  q.steps = {s1, s2};
  return q;
}

// The aggregated lookup surface must equal the monolithic index's answers
// element for element (concatenation in shard order is global sid order).
void ExpectLookupsMatchMonolithic(const ShardedKokoIndex& sharded,
                                  const KokoIndex& mono,
                                  const AnnotatedCorpus& corpus,
                                  const std::string& context) {
  for (const char* word : {"a", "delicious", "ate", "store", "zzz-absent"}) {
    EXPECT_EQ(sharded.LookupWord(word), mono.LookupWord(word))
        << context << " word=" << word;
    const BlockList* mono_sids = mono.WordSids(word);
    EXPECT_EQ(sharded.WordSids(word), mono_sids ? mono_sids->Decode() : SidList())
        << context << " word=" << word;
    EXPECT_EQ(sharded.CountWordSids(word), mono.CountWordSids(word))
        << context << " word=" << word;
  }
  PathQuery path = DobjPath();
  EXPECT_EQ(sharded.LookupParseLabelPath(path), mono.LookupParseLabelPath(path))
      << context;
  EXPECT_EQ(sharded.PlPathSids(path), mono.PlPathSids(path)) << context;
  EXPECT_EQ(sharded.AllEntities(), mono.AllEntities()) << context;
  EXPECT_EQ(sharded.AllEntitySids(), mono.AllEntitySids().Decode()) << context;
  for (size_t t = 0; t < kNumEntityTypes; ++t) {
    EntityType type = static_cast<EntityType>(t);
    EXPECT_EQ(sharded.EntitiesOfType(type), mono.EntitiesOfType(type))
        << context << " type=" << t;
    EXPECT_EQ(sharded.EntityTypeSids(type), mono.EntityTypeSids(type).Decode())
        << context << " type=" << t;
  }
  const KokoIndex::Stats& ms = mono.stats();
  KokoIndex::Stats ss = sharded.stats();
  EXPECT_EQ(ss.num_sentences, ms.num_sentences) << context;
  EXPECT_EQ(ss.num_tokens, ms.num_tokens) << context;
  EXPECT_EQ(ss.num_entities, ms.num_entities) << context;
  (void)corpus;
}

TEST(ShardedKokoIndexTest, MatchesMonolithicAcrossShardCounts) {
  AnnotatedCorpus corpus = MomentsCorpus(120, 71);
  auto mono = KokoIndex::Build(corpus);
  for (size_t k : {1u, 2u, 4u, 7u}) {
    auto sharded = ShardedKokoIndex::Build(corpus, k);
    ASSERT_EQ(sharded->num_shards(), k);
    // Default ranges partition [0, N) contiguously.
    EXPECT_EQ(sharded->shard_range(0).begin, 0u);
    EXPECT_EQ(sharded->shard_range(k - 1).end, corpus.NumSentences());
    for (size_t i = 0; i + 1 < k; ++i) {
      EXPECT_EQ(sharded->shard_range(i).end, sharded->shard_range(i + 1).begin);
    }
    ExpectLookupsMatchMonolithic(*sharded, *mono, corpus,
                                 "K=" + std::to_string(k));
  }
}

TEST(ShardedKokoIndexTest, UnevenAndEmptyShardBoundaries) {
  AnnotatedCorpus corpus = MomentsCorpus(60, 72);
  const uint32_t n = static_cast<uint32_t>(corpus.NumSentences());
  ASSERT_GE(n, 10u);
  auto mono = KokoIndex::Build(corpus);
  // A tiny first shard, an empty middle shard, one giant tail shard.
  ShardedKokoIndex::Options options;
  options.boundaries = {0, 3, 3, n - 1, n};
  auto sharded = ShardedKokoIndex::Build(corpus, options);
  ASSERT_EQ(sharded->num_shards(), 4u);
  EXPECT_EQ(sharded->shard_range(1).begin, sharded->shard_range(1).end);
  ExpectLookupsMatchMonolithic(*sharded, *mono, corpus, "uneven");
}

TEST(ShardedKokoIndexTest, MoreShardsThanSentences) {
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(
      {{"d0", "Anna ate a delicious pie."}, {"d1", "I ate a pie."}});
  auto mono = KokoIndex::Build(corpus);
  auto sharded = ShardedKokoIndex::Build(corpus, 7);
  ExpectLookupsMatchMonolithic(*sharded, *mono, corpus, "K>N");
}

TEST(ShardedKokoIndexTest, ParallelBuildMatchesSequentialBuild) {
  AnnotatedCorpus corpus = MomentsCorpus(80, 73);
  ShardedKokoIndex::Options sequential;
  sequential.num_shards = 4;
  sequential.build_threads = 1;
  ShardedKokoIndex::Options parallel;
  parallel.num_shards = 4;
  parallel.build_threads = 4;
  auto a = ShardedKokoIndex::Build(corpus, sequential);
  auto b = ShardedKokoIndex::Build(corpus, parallel);
  for (const char* word : {"a", "delicious", "ate"}) {
    EXPECT_EQ(a->LookupWord(word), b->LookupWord(word)) << word;
  }
  PathQuery path = DobjPath();
  EXPECT_EQ(a->LookupParseLabelPath(path), b->LookupParseLabelPath(path));
  EXPECT_EQ(a->AllEntities(), b->AllEntities());
}

TEST(ShardedKokoIndexTest, BuildOnSharedPoolMatchesDefault) {
  // A server rebuilding shards online passes its serving pool; the result
  // must be identical to a build on a transient pool, even while other
  // fork/join sections share the workers.
  AnnotatedCorpus corpus = MomentsCorpus(80, 74);
  ShardedKokoIndex::Options defaults;
  defaults.num_shards = 4;
  auto want = ShardedKokoIndex::Build(corpus, defaults);

  ThreadPool pool(3);
  std::atomic<int> noise{0};
  std::thread competing([&] {
    for (int i = 0; i < 20; ++i) {
      pool.ParallelFor(8, [&](size_t) { noise.fetch_add(1); });
    }
  });
  ShardedKokoIndex::Options shared;
  shared.num_shards = 4;
  shared.build_threads = 3;
  shared.pool = &pool;
  auto got = ShardedKokoIndex::Build(corpus, shared);
  competing.join();

  EXPECT_EQ(noise.load(), 20 * 8);
  for (const char* word : {"a", "delicious", "ate"}) {
    EXPECT_EQ(want->LookupWord(word), got->LookupWord(word)) << word;
  }
  PathQuery path = DobjPath();
  EXPECT_EQ(want->LookupParseLabelPath(path), got->LookupParseLabelPath(path));
  EXPECT_EQ(want->AllEntities(), got->AllEntities());
}

TEST(ShardedKokoIndexTest, SaveLoadRoundTrip) {
  AnnotatedCorpus corpus = MomentsCorpus(60, 74);
  auto built = ShardedKokoIndex::Build(corpus, 3);
  std::string path = ::testing::TempDir() + "/sharded_index_test.bin";
  ASSERT_TRUE(built->Save(path).ok());
  auto loaded = ShardedKokoIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_shards(), built->num_shards());
  for (size_t i = 0; i < built->num_shards(); ++i) {
    EXPECT_EQ((*loaded)->shard_range(i).begin, built->shard_range(i).begin);
    EXPECT_EQ((*loaded)->shard_range(i).end, built->shard_range(i).end);
    // Each shard restores its sid caches from the delta-encoded section.
    EXPECT_TRUE((*loaded)->shard(i).sid_caches_from_disk());
  }
  for (const char* word : {"a", "delicious", "ate"}) {
    EXPECT_EQ((*loaded)->LookupWord(word), built->LookupWord(word)) << word;
    EXPECT_EQ((*loaded)->WordSids(word), built->WordSids(word)) << word;
  }
  PathQuery path_q = DobjPath();
  EXPECT_EQ((*loaded)->LookupParseLabelPath(path_q),
            built->LookupParseLabelPath(path_q));
  EXPECT_EQ((*loaded)->PlPathSids(path_q), built->PlPathSids(path_q));
  EXPECT_EQ((*loaded)->AllEntities(), built->AllEntities());

  // Engine equality across the round trip: same rows from the loaded index.
  Pipeline pipeline;
  EmbeddingModel embeddings;
  Engine from_built(&corpus, built.get(), &embeddings,
                    &const_cast<const Pipeline&>(pipeline).recognizer());
  Engine from_loaded(&corpus, loaded->get(), &embeddings,
                     &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  auto ra = from_built.ExecuteText(query);
  auto rb = from_loaded.ExecuteText(query);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->rows.size(), rb->rows.size());
  for (size_t i = 0; i < ra->rows.size(); ++i) {
    EXPECT_EQ(ra->rows[i].sid, rb->rows[i].sid);
    EXPECT_EQ(ra->rows[i].values, rb->rows[i].values);
  }
  std::remove(path.c_str());
}

TEST(ShardedKokoIndexTest, ParallelLoadMatchesSerialLoad) {
  // The v2 manifest's byte extents let shards deserialize independently;
  // the loaded index must be identical for every worker count and on a
  // caller-shared pool.
  AnnotatedCorpus corpus = MomentsCorpus(80, 75);
  auto built = ShardedKokoIndex::Build(corpus, 4);
  std::string path = ::testing::TempDir() + "/sharded_index_parload_test.bin";
  ASSERT_TRUE(built->Save(path).ok());

  ShardedKokoIndex::LoadOptions serial;
  serial.num_threads = 1;
  auto want = ShardedKokoIndex::Load(path, serial);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  ThreadPool pool(3);
  std::vector<ShardedKokoIndex::LoadOptions> variants(3);
  variants[0].num_threads = 0;  // one worker per shard, transient pool
  variants[1].num_threads = 2;
  variants[2].pool = &pool;  // shared serving pool
  for (size_t v = 0; v < variants.size(); ++v) {
    auto got = ShardedKokoIndex::Load(path, variants[v]);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ((*got)->num_shards(), (*want)->num_shards()) << v;
    for (size_t i = 0; i < (*want)->num_shards(); ++i) {
      EXPECT_TRUE((*got)->shard(i).sid_caches_from_disk()) << v;
    }
    for (const char* word : {"a", "delicious", "ate", "zzz-absent"}) {
      EXPECT_EQ((*got)->LookupWord(word), (*want)->LookupWord(word))
          << "v=" << v << " word=" << word;
      EXPECT_EQ((*got)->WordSids(word), (*want)->WordSids(word))
          << "v=" << v << " word=" << word;
    }
    PathQuery path_q = DobjPath();
    EXPECT_EQ((*got)->LookupParseLabelPath(path_q),
              (*want)->LookupParseLabelPath(path_q))
        << v;
    EXPECT_EQ((*got)->AllEntities(), (*want)->AllEntities()) << v;
  }
  std::remove(path.c_str());
}

TEST(ShardedKokoIndexTest, MmapLoadMatchesCopyLoad) {
  // Property suite for LoadMode::kMap over the sharded file: for every
  // (shard count, load worker count), the mapped index answers every
  // lookup byte-identically to the copy-loaded one while all shards alias
  // one shared mapping (~0 owned posting bytes).
  AnnotatedCorpus corpus = MomentsCorpus(100, 77);
  for (size_t k : {1u, 3u, 4u}) {
    auto built = ShardedKokoIndex::Build(corpus, k);
    std::string path = ::testing::TempDir() + "/sharded_index_mmap_" +
                       std::to_string(k) + ".bin";
    ASSERT_TRUE(built->Save(path).ok());

    ShardedKokoIndex::LoadOptions copy;
    copy.num_threads = 1;
    auto want = ShardedKokoIndex::Load(path, copy);
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_FALSE((*want)->mapped());
    EXPECT_GT((*want)->SidCacheMemoryUsage(), 0u);

    ThreadPool pool(3);
    std::vector<ShardedKokoIndex::LoadOptions> variants(3);
    variants[0].num_threads = 1;
    variants[1].num_threads = 0;  // one worker per shard
    variants[2].pool = &pool;     // shared serving pool
    for (size_t v = 0; v < variants.size(); ++v) {
      variants[v].mode = LoadMode::kMap;
      auto got = ShardedKokoIndex::Load(path, variants[v]);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      const std::string context = "K=" + std::to_string(k) + " v=" +
                                  std::to_string(v);
      ASSERT_EQ((*got)->num_shards(), k) << context;
      EXPECT_TRUE((*got)->mapped()) << context;
      // No posting-payload copy across all shards.
      EXPECT_LT((*got)->SidCacheMemoryUsage(),
                (*want)->SidCacheMemoryUsage() / 4)
          << context;
      for (size_t i = 0; i < k; ++i) {
        EXPECT_TRUE((*got)->shard(i).mapped()) << context;
        EXPECT_TRUE((*got)->shard(i).sid_caches_from_disk()) << context;
        EXPECT_EQ((*got)->shard_range(i).begin, built->shard_range(i).begin);
        EXPECT_EQ((*got)->shard_range(i).end, built->shard_range(i).end);
      }
      for (const char* word : {"a", "delicious", "ate", "zzz-absent"}) {
        EXPECT_EQ((*got)->LookupWord(word), (*want)->LookupWord(word))
            << context << " word=" << word;
        EXPECT_EQ((*got)->WordSids(word), (*want)->WordSids(word))
            << context << " word=" << word;
        EXPECT_EQ((*got)->CountWordSids(word), (*want)->CountWordSids(word))
            << context << " word=" << word;
      }
      PathQuery path_q = DobjPath();
      EXPECT_EQ((*got)->LookupParseLabelPath(path_q),
                (*want)->LookupParseLabelPath(path_q))
          << context;
      EXPECT_EQ((*got)->PlPathSids(path_q), (*want)->PlPathSids(path_q))
          << context;
      EXPECT_EQ((*got)->AllEntities(), (*want)->AllEntities()) << context;
      EXPECT_EQ((*got)->AllEntitySids(), (*want)->AllEntitySids()) << context;
    }
    std::remove(path.c_str());
  }
}

TEST(ShardedKokoIndexTest, MmapLoadOutlivesFileRemoval) {
  // POSIX mapping semantics the zero-copy path relies on: once mapped,
  // the pages stay valid even after the file is unlinked — the index must
  // keep answering queries for its whole lifetime.
  AnnotatedCorpus corpus = MomentsCorpus(40, 78);
  auto built = ShardedKokoIndex::Build(corpus, 2);
  std::string path = ::testing::TempDir() + "/sharded_index_unlink_test.bin";
  ASSERT_TRUE(built->Save(path).ok());
  ShardedKokoIndex::LoadOptions options;
  options.mode = LoadMode::kMap;
  auto mapped = ShardedKokoIndex::Load(path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  std::remove(path.c_str());
  for (const char* word : {"a", "delicious", "ate"}) {
    EXPECT_EQ((*mapped)->LookupWord(word), built->LookupWord(word)) << word;
  }
}

TEST(ShardedKokoIndexTest, CorruptManifestExtentFailsLoadCleanly) {
  AnnotatedCorpus corpus = MomentsCorpus(30, 76);
  auto built = ShardedKokoIndex::Build(corpus, 2);
  std::string path = ::testing::TempDir() + "/sharded_index_corrupt_test.bin";
  ASSERT_TRUE(built->Save(path).ok());
  // Blow up the first shard's extent (u64 after the two range u32s of the
  // first manifest entry, 12 bytes past magic|version|count): Load must
  // reject it instead of seeking past the file.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(12 + 8);
  const uint64_t huge = ~uint64_t{0} / 2;
  file.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  file.close();
  auto loaded = ShardedKokoIndex::Load(path);
  EXPECT_FALSE(loaded.ok());
  // kMap must reject it the same way — the bogus extent may not slice a
  // sub-span past the mapping.
  ShardedKokoIndex::LoadOptions map_options;
  map_options.mode = LoadMode::kMap;
  auto mapped = ShardedKokoIndex::Load(path, map_options);
  EXPECT_FALSE(mapped.ok());
  std::remove(path.c_str());
}

TEST(ShardedKokoIndexTest, MmapLoadErrorsAreClean) {
  // Unmappable path and too-short files return errors, never abort.
  ShardedKokoIndex::LoadOptions options;
  options.mode = LoadMode::kMap;
  auto missing = ShardedKokoIndex::Load(
      ::testing::TempDir() + "/no_such_sharded.bin", options);
  EXPECT_FALSE(missing.ok());
  std::string path = ::testing::TempDir() + "/sharded_index_short.bin";
  for (size_t bytes : {size_t{0}, size_t{6}, size_t{11}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char zeros[16] = {};
    out.write(zeros, static_cast<long>(bytes));
    out.close();
    EXPECT_FALSE(ShardedKokoIndex::Load(path, options).ok()) << bytes;
    EXPECT_FALSE(ShardedKokoIndex::Load(path).ok()) << bytes;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace koko

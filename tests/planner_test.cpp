// Planner + streaming suite: cost-based clause planning must never change
// results (only cost), streaming top-k must cut the exact same row stream,
// and the plan cache must hit on repeated query shapes. Carries the
// "planner" ctest label; CI runs it under ASan/TSan/UBSan and under
// KOKO_SIMD=scalar.

#include "koko/planner.h"

#include <gtest/gtest.h>

#include <random>

#include "corpus/generators.h"
#include "corpus/query_gen.h"
#include "index/koko_index.h"
#include "index/path_lookup.h"
#include "index/sharded_index.h"
#include "koko/compile.h"
#include "koko/engine.h"
#include "koko/explain.h"
#include "koko/parser.h"
#include "nlp/pipeline.h"
#include "serve/query_service.h"

namespace koko {
namespace {

// Asserts that every field of every row (and the row order) is identical.
void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << context;
  EXPECT_EQ(a.candidate_sentences, b.candidate_sentences) << context;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].doc, b.rows[i].doc) << context << " row " << i;
    EXPECT_EQ(a.rows[i].sid, b.rows[i].sid) << context << " row " << i;
    EXPECT_EQ(a.rows[i].values, b.rows[i].values) << context << " row " << i;
    EXPECT_EQ(a.rows[i].scores, b.rows[i].scores) << context << " row " << i;
  }
}

// ---- Representation-choice unit tests ---------------------------------------

TEST(PlannerTest, ChooseIntersectRepBoundaries) {
  PlannerOptions opts;
  opts.decode_gallop_min_ratio = 16;
  opts.decode_gallop_max_ratio = 4096;
  // Compressed side no larger than the list side: always in-place.
  EXPECT_EQ(ChooseIntersectRep(100, 100, opts), IntersectRep::kBlockInPlace);
  EXPECT_EQ(ChooseIntersectRep(100, 50, opts), IntersectRep::kBlockInPlace);
  // Below the band: in-place.
  EXPECT_EQ(ChooseIntersectRep(100, 100 * 15, opts),
            IntersectRep::kBlockInPlace);
  // Inside [min, max): decode-then-gallop.
  EXPECT_EQ(ChooseIntersectRep(100, 100 * 16, opts),
            IntersectRep::kDecodeThenGallop);
  EXPECT_EQ(ChooseIntersectRep(100, 100 * 4095, opts),
            IntersectRep::kDecodeThenGallop);
  // At or above max: back to in-place (skipped blocks win at extreme skew).
  EXPECT_EQ(ChooseIntersectRep(100, 100 * 4096, opts),
            IntersectRep::kBlockInPlace);
  // Empty accumulator estimate never divides by zero.
  EXPECT_EQ(ChooseIntersectRep(0, 17, opts), IntersectRep::kDecodeThenGallop);
}

TEST(PlannerTest, IntersectWithRepMatchesIntersect) {
  std::mt19937 rng(7);
  for (size_t small_n : {0u, 1u, 57u, 400u}) {
    for (size_t ratio : {1u, 8u, 64u, 700u}) {
      const size_t big_n = std::max<size_t>(small_n * ratio, 1);
      std::uniform_int_distribution<uint32_t> dist(
          0, static_cast<uint32_t>(big_n * 9));
      std::vector<uint32_t> a_ids, b_ids;
      for (size_t i = 0; i < small_n; ++i) a_ids.push_back(dist(rng));
      for (size_t i = 0; i < big_n; ++i) b_ids.push_back(dist(rng));
      SidList a = SidList::FromUnsorted(std::move(a_ids));
      BlockList b =
          BlockList::FromSidList(SidList::FromUnsorted(std::move(b_ids)));
      SidList want = Intersect(a, b);
      EXPECT_EQ(IntersectWithRep(a, b, IntersectRep::kBlockInPlace), want)
          << small_n << "x" << ratio;
      EXPECT_EQ(IntersectWithRep(a, b, IntersectRep::kDecodeThenGallop), want)
          << small_n << "x" << ratio;
    }
  }
}

TEST(PlannerTest, StatsOfReadsSkipTable) {
  SidList list = SidList::FromSorted({5, 10, 200, 1000, 4005});
  BlockListStats stats = StatsOf(BlockList::FromSidList(list));
  EXPECT_EQ(stats.sids, 5u);
  EXPECT_EQ(stats.blocks, 1u);
  EXPECT_EQ(stats.min_sid, 5u);
  EXPECT_EQ(stats.max_sid, 4005u);
  EXPECT_DOUBLE_EQ(stats.avg_gap, 1000.0);
  EXPECT_EQ(StatsOf(BlockList()).sids, 0u);
}

// ---- Semi-join decision parity ----------------------------------------------

TEST(PlannerTest, PathSidLookupSemiJoinOnOffParity) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = 61});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);

  // Word-constrained paths take the cross-index quintuple route, where the
  // semi-join is optional; both settings must produce the same sid set.
  std::vector<PathQuery> paths;
  {
    PathQuery word_only;
    PathStep step;
    step.axis = PathStep::Axis::kDescendant;
    step.constraint.word = "happy";
    word_only.steps.push_back(step);
    paths.push_back(word_only);
  }
  {
    PathQuery mixed;
    PathStep verb;
    verb.axis = PathStep::Axis::kDescendant;
    verb.constraint.pos = PosTag::kVerb;
    mixed.steps.push_back(verb);
    PathStep obj;
    obj.axis = PathStep::Axis::kChild;
    obj.constraint.dep = DepLabel::kDobj;
    mixed.steps.push_back(obj);
    paths.push_back(mixed);
  }
  for (size_t i = 0; i < paths.size(); ++i) {
    PathSidLookupResult with = KokoPathSidLookup(*index, paths[i], true);
    PathSidLookupResult without = KokoPathSidLookup(*index, paths[i], false);
    EXPECT_EQ(with.unconstrained, without.unconstrained) << "path " << i;
    EXPECT_EQ(with.sids, without.sids) << "path " << i;
  }
}

// ---- Plan construction ------------------------------------------------------

TEST(PlannerTest, PlanOrdersAtomsBySelectivity) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 100, .seed = 62});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);

  auto query = ParseQuery(R"(
      extract e:Entity, b:Str from "t" if (
        /ROOT:{ a = //verb, b = a/dobj, c = b//"happy" }
        (b) in (e)))");
  ASSERT_TRUE(query.ok());
  auto cq = CompileQuery(*query);
  ASSERT_TRUE(cq.ok());

  auto plan = BuildQueryPlan(*index, *cq, PlannerOptions());
  ASSERT_TRUE(plan->pruned);
  ASSERT_GE(plan->atoms.size(), 2u);
  for (size_t i = 1; i < plan->atoms.size(); ++i) {
    EXPECT_LE(plan->atoms[i - 1].estimate, plan->atoms[i].estimate);
  }
  EXPECT_EQ(plan->fingerprint, PlanFingerprint(*cq));
  EXPECT_EQ(plan->index_sentences, index->stats().num_sentences);

  // Executing the plan reproduces the sid set the engine's DPLI would
  // produce: compare against the full pipeline's candidate count.
  PlannedCandidates planned = CollectPlannedCandidates(*index, *cq, *plan);
  EXPECT_TRUE(planned.pruned);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions legacy;
  legacy.use_planner = false;
  auto result = engine.Execute(*query, legacy);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(planned.sids.size(), result->candidate_sentences);
}

TEST(PlannerTest, PlanFingerprintDistinguishesClauseContent) {
  auto compile = [](const char* text) {
    auto query = ParseQuery(text);
    EXPECT_TRUE(query.ok());
    auto cq = CompileQuery(*query);
    EXPECT_TRUE(cq.ok());
    return *cq;
  };
  CompiledQuery a = compile(
      R"(extract b:Str from "t" if ( /ROOT:{ v = //verb, b = v/dobj }))");
  CompiledQuery b = compile(
      R"(extract b:Str from "t" if ( /ROOT:{ v = //verb, b = v/nsubj }))");
  EXPECT_EQ(PlanFingerprint(a), PlanFingerprint(a));
  EXPECT_NE(PlanFingerprint(a), PlanFingerprint(b));
}

// ---- Plan cache -------------------------------------------------------------

TEST(PlannerTest, PlanCacheHitMissAndClear) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 60, .seed = 63});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  auto cq = CompileQuery(*ParseQuery(
      R"(extract b:Str from "t" if ( /ROOT:{ v = //verb, b = v/dobj }))"));
  ASSERT_TRUE(cq.ok());

  PlanCache cache;
  PlannerOptions opts;
  auto first = GetOrBuildPlan(*index, *cq, opts, &cache, 0);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 1u);
  auto second = GetOrBuildPlan(*index, *cq, opts, &cache, 0);
  EXPECT_EQ(second.get(), first.get());  // shared, not rebuilt
  EXPECT_EQ(cache.stats().hits, 1u);

  // A different shard salt or different thresholds is a different plan key.
  GetOrBuildPlan(*index, *cq, opts, &cache, 1);
  EXPECT_EQ(cache.stats().misses, 2u);
  PlannerOptions other = opts;
  other.decode_gallop_min_ratio += 1;
  GetOrBuildPlan(*index, *cq, other, &cache, 0);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.size(), 3u);

  // Clear() invalidates every plan and resets the counters.
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  GetOrBuildPlan(*index, *cq, opts, &cache, 0);
  EXPECT_EQ(cache.stats().misses, 1u);
}

// ---- Engine parity: planner x streaming x sharding x threads x caps ---------

TEST(PlannerTest, PlannerAndStreamingParityMonolithic) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 150, .seed = 64});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 3, .seed = 65});
  ASSERT_FALSE(queries.empty());

  const size_t kUnlimited = std::numeric_limits<size_t>::max();
  for (const auto& bench : queries) {
    EngineOptions naive;
    naive.use_planner = false;
    naive.early_terminate = false;
    auto want = engine.Execute(bench.query, naive);
    ASSERT_TRUE(want.ok()) << bench.name;
    for (size_t cap : {size_t{0}, size_t{1}, size_t{7}, size_t{23}, kUnlimited}) {
      for (size_t threads : {size_t{1}, size_t{4}}) {
        EngineOptions naive_capped = naive;
        naive_capped.max_rows = cap;
        auto truncate = engine.Execute(bench.query, naive_capped);
        ASSERT_TRUE(truncate.ok());
        EngineOptions planned;
        planned.max_rows = cap;
        planned.num_threads = threads;
        auto got = engine.Execute(bench.query, planned);
        ASSERT_TRUE(got.ok());
        ExpectIdenticalResults(*truncate, *got,
                               bench.name + " cap=" + std::to_string(cap) +
                                   " threads=" + std::to_string(threads));
        EXPECT_LE(got->scanned_candidates, got->candidate_sentences);
        if (cap != kUnlimited) {
          EXPECT_EQ(got->early_terminated,
                    got->scanned_candidates < got->candidate_sentences);
        } else {
          EXPECT_FALSE(got->early_terminated);
        }
        if (got->candidate_sentences > 0) {
          EXPECT_NE(got->plan, nullptr);
        }
      }
    }
  }
}

TEST(PlannerTest, PlannerAndStreamingParitySharded) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 150, .seed = 66});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto mono_index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine mono(&corpus, mono_index.get(), &embeddings,
              &const_cast<const Pipeline&>(pipeline).recognizer());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 2, .seed = 67});
  ASSERT_FALSE(queries.empty());

  for (size_t k : {size_t{2}, size_t{4}, size_t{7}}) {
    auto sharded = ShardedKokoIndex::Build(corpus, k);
    Engine shard_engine(&corpus, sharded.get(), &embeddings,
                        &const_cast<const Pipeline&>(pipeline).recognizer());
    PlanCache cache;
    for (const auto& bench : queries) {
      for (size_t cap : {size_t{5}, size_t{40},
                         std::numeric_limits<size_t>::max()}) {
        EngineOptions naive;
        naive.use_planner = false;
        naive.early_terminate = false;
        naive.max_rows = cap;
        auto want = mono.Execute(bench.query, naive);
        ASSERT_TRUE(want.ok()) << bench.name;
        EngineOptions planned;
        planned.max_rows = cap;
        planned.num_threads = 4;
        planned.num_shards = 2;
        planned.plan_cache = &cache;
        auto got = shard_engine.Execute(bench.query, planned);
        ASSERT_TRUE(got.ok()) << bench.name;
        ExpectIdenticalResults(*want, *got,
                               bench.name + " K=" + std::to_string(k) +
                                   " cap=" + std::to_string(cap));
      }
    }
    // Per-shard plans (one salt per shard) populated the cache, and the
    // repeat sweep over the same queries hit it.
    EXPECT_GT(cache.stats().entries, 0u);
    EXPECT_GT(cache.stats().hits, 0u);
  }
}

// ---- Streaming sink + early termination -------------------------------------

TEST(PlannerTest, SinkReceivesRowsInResultOrder) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 80, .seed = 68});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  for (size_t cap : {size_t{10}, std::numeric_limits<size_t>::max()}) {
    std::vector<ResultRow> streamed;
    RowSink sink = [&](const ResultRow& row) { streamed.push_back(row); };
    EngineOptions options;
    options.max_rows = cap;
    options.sink = &sink;
    auto result = engine.ExecuteText(query, options);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(streamed.size(), result->rows.size());
    for (size_t i = 0; i < streamed.size(); ++i) {
      EXPECT_EQ(streamed[i].doc, result->rows[i].doc);
      EXPECT_EQ(streamed[i].sid, result->rows[i].sid);
      EXPECT_EQ(streamed[i].values, result->rows[i].values);
      EXPECT_EQ(streamed[i].scores, result->rows[i].scores);
    }
  }
}

TEST(PlannerTest, EarlyTerminationSkipsTailCandidates) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 69});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  // A broad query (every sentence has a verb) with a small cap: the scan
  // must stop early, far before the last candidate.
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  EngineOptions options;
  options.max_rows = 5;
  auto result = engine.ExecuteText(query, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->early_terminated);
  EXPECT_LT(result->scanned_candidates, result->candidate_sentences);
  EXPECT_GT(result->scanned_candidates, 0u);

  // The full-then-truncate baseline returns the same rows while scanning
  // everything.
  EngineOptions baseline = options;
  baseline.early_terminate = false;
  auto full = engine.ExecuteText(query, baseline);
  ASSERT_TRUE(full.ok());
  EXPECT_FALSE(full->early_terminated);
  EXPECT_EQ(full->scanned_candidates, full->candidate_sentences);
  ExpectIdenticalResults(*full, *result, "early-termination parity");
}

// ---- EXPLAIN ----------------------------------------------------------------

TEST(PlannerTest, ExplainSurfacesPlanAndExecution) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 60, .seed = 70});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions options;
  options.max_rows = 3;
  auto result = engine.ExecuteText(R"(
      extract e:Entity, b:Str from "t" if (
        /ROOT:{ a = //verb, b = a/dobj }
        (b) in (e)))", options);
  ASSERT_TRUE(result.ok());
  ASSERT_NE(result->plan, nullptr);
  const std::string plan_text = ExplainPlan(*result->plan);
  EXPECT_NE(plan_text.find("clause"), std::string::npos);
  EXPECT_NE(plan_text.find("entity"), std::string::npos);
  EXPECT_NE(plan_text.find("rep="), std::string::npos);
  const std::string exec_text = ExplainExecution(*result);
  EXPECT_NE(exec_text.find("candidate"), std::string::npos);
  if (result->early_terminated) {
    EXPECT_NE(exec_text.find("early termination"), std::string::npos);
  }
}

// ---- QueryService integration -----------------------------------------------

TEST(PlannerTest, QueryServiceSurfacesCacheStatsAndStreams) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 80, .seed = 71});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  QueryService::Options options;
  options.num_threads = 4;
  QueryService service(&engine, options);
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";

  auto first = service.Run(query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(service.stats().plan_cache.misses, 1u);
  EXPECT_EQ(service.stats().plan_cache.entries, 1u);
  auto second = service.Run(query);
  ASSERT_TRUE(second.ok());
  EXPECT_GE(service.stats().plan_cache.hits, 1u);
  ExpectIdenticalResults(*first, *second, "service repeat");

  // Streaming through the service: sink rows equal the returned rows.
  std::vector<ResultRow> streamed;
  RowSink sink = [&](const ResultRow& row) { streamed.push_back(row); };
  auto third = service.Run(std::string_view(query), sink);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(streamed.size(), third->rows.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].sid, third->rows[i].sid);
    EXPECT_EQ(streamed[i].values, third->rows[i].values);
  }
}

}  // namespace
}  // namespace koko

#include "index/sid_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/simd.h"

namespace koko {
namespace {

SidList Make(std::vector<uint32_t> ids) {
  return SidList::FromUnsorted(std::move(ids));
}

std::vector<uint32_t> ReferenceIntersect(const SidList& a, const SidList& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

SidList RandomList(Rng* rng, size_t count, uint32_t universe) {
  std::vector<uint32_t> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ids.push_back(static_cast<uint32_t>(rng->Next() % universe));
  }
  return SidList::FromUnsorted(std::move(ids));
}

TEST(SidListTest, FromUnsortedSortsAndDedups) {
  SidList list = Make({5, 1, 3, 1, 5, 5, 2});
  EXPECT_EQ(list.ids(), (std::vector<uint32_t>{1, 2, 3, 5}));
  EXPECT_EQ(list.CountSids(), 4u);
}

TEST(SidListTest, AppendDropsRepeatsOfTail) {
  SidList list;
  for (uint32_t sid : {1u, 1u, 2u, 2u, 2u, 7u}) list.Append(sid);
  EXPECT_EQ(list.ids(), (std::vector<uint32_t>{1, 2, 7}));
}

TEST(SidListTest, Contains) {
  SidList list = Make({2, 4, 8});
  EXPECT_TRUE(list.Contains(4));
  EXPECT_FALSE(list.Contains(5));
  EXPECT_FALSE(SidList().Contains(0));
}

TEST(GallopToTest, Boundaries) {
  std::vector<uint32_t> xs = {2, 4, 6, 8, 10, 12, 14, 16};
  const size_t n = xs.size();
  EXPECT_EQ(GallopTo(xs.data(), n, 0, 1), 0u);    // before first
  EXPECT_EQ(GallopTo(xs.data(), n, 0, 2), 0u);    // exact first
  EXPECT_EQ(GallopTo(xs.data(), n, 0, 3), 1u);    // between
  EXPECT_EQ(GallopTo(xs.data(), n, 0, 16), 7u);   // exact last
  EXPECT_EQ(GallopTo(xs.data(), n, 0, 17), 8u);   // past last
  EXPECT_EQ(GallopTo(xs.data(), n, 3, 8), 3u);    // lo already at answer
  EXPECT_EQ(GallopTo(xs.data(), n, 3, 6), 3u);    // key behind lo -> lo
  EXPECT_EQ(GallopTo(xs.data(), n, 8, 1), 8u);    // lo == n
  EXPECT_EQ(GallopTo(xs.data(), 0, 0, 5), 0u);    // empty array
}

TEST(GallopToTest, MatchesLowerBoundExhaustively) {
  // Every (lo, key) pair over a list with runs and gaps.
  std::vector<uint32_t> xs = {0, 1, 1 + 2, 7, 9, 100, 101, 102, 4000};
  for (size_t lo = 0; lo <= xs.size(); ++lo) {
    for (uint32_t key = 0; key <= 4002; ++key) {
      size_t expected = static_cast<size_t>(
          std::lower_bound(xs.begin() + static_cast<long>(lo), xs.end(), key) -
          xs.begin());
      ASSERT_EQ(GallopTo(xs.data(), xs.size(), lo, key), expected)
          << "lo=" << lo << " key=" << key;
    }
  }
}

TEST(IntersectTest, EmptyLists) {
  EXPECT_TRUE(Intersect(SidList(), SidList()).empty());
  EXPECT_TRUE(Intersect(SidList(), Make({1, 2, 3})).empty());
  EXPECT_TRUE(Intersect(Make({1, 2, 3}), SidList()).empty());
}

TEST(IntersectTest, Disjoint) {
  EXPECT_TRUE(Intersect(Make({1, 3, 5}), Make({2, 4, 6})).empty());
}

TEST(IntersectTest, Subset) {
  SidList small = Make({10, 30});
  SidList large = Make({0, 10, 20, 30, 40});
  EXPECT_EQ(Intersect(small, large).ids(), (std::vector<uint32_t>{10, 30}));
  EXPECT_EQ(Intersect(large, small).ids(), (std::vector<uint32_t>{10, 30}));
}

TEST(IntersectTest, Identical) {
  SidList list = Make({1, 2, 3, 4});
  EXPECT_EQ(Intersect(list, list).ids(), list.ids());
}

TEST(IntersectTest, SkewedSizesTakeGallopPath) {
  // |large| / |small| far beyond kGallopSkewRatio: exercises the galloping
  // advance, including multi-step probes past long runs.
  std::vector<uint32_t> big;
  for (uint32_t i = 0; i < 10000; ++i) big.push_back(i * 3);
  SidList large = SidList::FromSorted(big);
  SidList small = Make({0, 3, 4, 29997, 29999, 50000});
  EXPECT_EQ(Intersect(small, large).ids(),
            (std::vector<uint32_t>{0, 3, 29997}));
  EXPECT_EQ(Intersect(large, small).ids(),
            (std::vector<uint32_t>{0, 3, 29997}));
}

TEST(IntersectTest, RandomizedAgainstReference) {
  Rng rng(99);
  for (int round = 0; round < 200; ++round) {
    // Vary skew from 1:1 to ~1:200 so both merge strategies are hit.
    size_t na = 1 + rng.Next() % 50;
    size_t nb = 1 + rng.Next() % 2000;
    SidList a = RandomList(&rng, na, 300);
    SidList b = RandomList(&rng, nb, 3000);
    EXPECT_EQ(Intersect(a, b).ids(), ReferenceIntersect(a, b));
    EXPECT_EQ(Intersect(b, a).ids(), ReferenceIntersect(a, b));
  }
}

TEST(IntersectAllTest, SmallestFirstOrderIndependent) {
  SidList a = Make({1, 2, 3, 4, 5, 6, 7, 8});
  SidList b = Make({2, 4, 6, 8});
  SidList c = Make({4, 8, 12});
  std::vector<uint32_t> expected = {4, 8};
  EXPECT_EQ(IntersectAll({&a, &b, &c}).ids(), expected);
  EXPECT_EQ(IntersectAll({&c, &a, &b}).ids(), expected);
  EXPECT_EQ(IntersectAll({&b, &c, &a}).ids(), expected);
}

TEST(IntersectAllTest, EdgeCases) {
  SidList a = Make({1, 2});
  EXPECT_TRUE(IntersectAll({}).empty());
  EXPECT_EQ(IntersectAll({&a}).ids(), a.ids());
  SidList empty;
  EXPECT_TRUE(IntersectAll({&a, &empty}).empty());
}

TEST(UnionTest, MergesAndDedups) {
  EXPECT_EQ(Union(Make({1, 3, 5}), Make({1, 2, 5, 9})).ids(),
            (std::vector<uint32_t>{1, 2, 3, 5, 9}));
  EXPECT_EQ(Union(SidList(), Make({7})).ids(), (std::vector<uint32_t>{7}));
}

TEST(UnionAllTest, ManyLists) {
  SidList a = Make({1});
  SidList b = Make({5, 6});
  SidList c = Make({1, 9});
  EXPECT_EQ(UnionAll({&a, &b, &c}).ids(), (std::vector<uint32_t>{1, 5, 6, 9}));
  EXPECT_TRUE(UnionAll({}).empty());
  EXPECT_EQ(UnionAll({&b}).ids(), b.ids());
}

TEST(DifferenceTest, BasicAndSkewed) {
  EXPECT_EQ(Difference(Make({1, 2, 3, 4}), Make({2, 4})).ids(),
            (std::vector<uint32_t>{1, 3}));
  EXPECT_EQ(Difference(Make({1, 2}), SidList()).ids(),
            (std::vector<uint32_t>{1, 2}));
  EXPECT_TRUE(Difference(SidList(), Make({1})).empty());
  // Skewed: subtract a large list (gallop path).
  std::vector<uint32_t> big;
  for (uint32_t i = 0; i < 1000; ++i) big.push_back(i * 2);
  EXPECT_EQ(Difference(Make({3, 4, 1998, 1999}), SidList::FromSorted(big)).ids(),
            (std::vector<uint32_t>{3, 1999}));
}

// ---- BlockList: the block-compressed resident representation ---------------

TEST(BlockListTest, RoundTripEdgeSizes) {
  // Empty list, single sid, exactly one block, one-past-a-block-boundary,
  // several blocks with a partial tail.
  const size_t kB = BlockList::kBlockSids;
  for (size_t n : {size_t{0}, size_t{1}, kB - 1, kB, kB + 1, 3 * kB, 3 * kB + 7}) {
    std::vector<uint32_t> ids;
    for (size_t i = 0; i < n; ++i) ids.push_back(static_cast<uint32_t>(i * 3));
    SidList list = SidList::FromSorted(ids);
    BlockList blocks = BlockList::FromSidList(list);
    EXPECT_EQ(blocks.CountSids(), n);
    EXPECT_EQ(blocks.NumBlocks(), (n + kB - 1) / kB);
    EXPECT_EQ(blocks.Decode(), list) << n;
  }
}

TEST(BlockListTest, AppendMatchesFromSidListAndDropsRepeats) {
  BlockList appended;
  for (uint32_t sid : {1u, 1u, 2u, 2u, 2u, 7u, 7u, 2000000u}) appended.Append(sid);
  appended.ShrinkToFit();
  EXPECT_EQ(appended, BlockList::FromSidList(SidList::FromSorted({1, 2, 7, 2000000})));
  EXPECT_EQ(appended.Decode().ids(), (std::vector<uint32_t>{1, 2, 7, 2000000}));
}

TEST(BlockListTest, ContainsIncludingBlockBoundaries) {
  const size_t kB = BlockList::kBlockSids;
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < 3 * kB + 5; ++i) ids.push_back(static_cast<uint32_t>(i * 2));
  BlockList blocks = BlockList::FromSidList(SidList::FromSorted(ids));
  EXPECT_FALSE(BlockList().Contains(0));
  for (uint32_t sid : ids) EXPECT_TRUE(blocks.Contains(sid)) << sid;
  // First sid of each block (skip-table hits) and their neighbours.
  for (size_t b = 0; b < blocks.NumBlocks(); ++b) {
    const uint32_t first = blocks.skip_first()[b];
    EXPECT_TRUE(blocks.Contains(first));
    EXPECT_FALSE(blocks.Contains(first + 1));  // ids are all even
  }
  EXPECT_FALSE(blocks.Contains(ids.back() + 2));
}

TEST(BlockListTest, CompressesDenseListsBelowRawLayout) {
  // 10k consecutive-ish sids: ~1 payload byte per sid + 8 skip bytes per
  // 128 sids, vs 4 raw bytes per sid decoded.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 10000; ++i) ids.push_back(i * 2);
  SidList list = SidList::FromSorted(ids);
  BlockList blocks = BlockList::FromSidList(list);
  EXPECT_LT(blocks.MemoryUsage() * 2, list.MemoryUsage());
}

TEST(BlockListTest, InPlaceIntersectMatchesDecoded) {
  Rng rng(123);
  for (int round = 0; round < 100; ++round) {
    const size_t na = 1 + rng.Next() % 600;
    const size_t nb = 1 + rng.Next() % 3000;
    SidList a = RandomList(&rng, na, 2000);
    SidList b = RandomList(&rng, nb, 8000);
    BlockList ab = BlockList::FromSidList(a);
    BlockList bb = BlockList::FromSidList(b);
    const SidList want = Intersect(a, b);
    EXPECT_EQ(Intersect(a, bb), want) << round;      // decoded x blocks
    EXPECT_EQ(Intersect(b, ab), want) << round;      // larger decoded side
    EXPECT_EQ(Intersect(ab, b), want) << round;      // blocks x decoded
    EXPECT_EQ(Intersect(ab, bb), want) << round;     // blocks x blocks
    EXPECT_EQ(Intersect(bb, ab), want) << round;
  }
  // Degenerate shapes.
  BlockList empty;
  EXPECT_TRUE(Intersect(SidList(), empty).empty());
  EXPECT_TRUE(Intersect(Make({1, 2}), empty).empty());
  EXPECT_TRUE(Intersect(empty, Make({1, 2})).empty());
  // The uint32 maximum must not wrap the skip-table gallop.
  BlockList max_list = BlockList::FromSidList(SidList::FromSorted({5, 0xffffffffu}));
  EXPECT_EQ(Intersect(Make({0xffffffffu}), max_list).ids(),
            (std::vector<uint32_t>{0xffffffffu}));
}

TEST(BlockListTest, IntersectAllViewsMixesDecodedAndCompressed) {
  SidList a = Make({1, 2, 3, 4, 5, 6, 7, 8});
  SidList b = Make({2, 4, 6, 8});
  BlockList c = BlockList::FromSidList(Make({4, 8, 12}));
  std::vector<uint32_t> expected = {4, 8};
  EXPECT_EQ(IntersectAllViews({&a, &b, &c}).ids(), expected);
  EXPECT_EQ(IntersectAllViews({&c, &a, &b}).ids(), expected);
  EXPECT_TRUE(IntersectAllViews({}).empty());
  BlockList empty;
  EXPECT_TRUE(IntersectAllViews({&a, &empty}).empty());
  EXPECT_EQ(IntersectAllViews({&c}).ids(), (std::vector<uint32_t>{4, 8, 12}));
}

TEST(BlockListTest, UnionAllBlocks) {
  BlockList a = BlockList::FromSidList(Make({1}));
  BlockList b = BlockList::FromSidList(Make({5, 6}));
  BlockList c = BlockList::FromSidList(Make({1, 9}));
  EXPECT_EQ(UnionAllBlocks({&a, &b, &c}).ids(),
            (std::vector<uint32_t>{1, 5, 6, 9}));
  EXPECT_TRUE(UnionAllBlocks({}).empty());
}

// FromParts guards the v3 image: every structural invariant violation a
// byte flip can produce must be rejected, never decoded into garbage sids.
TEST(BlockListTest, FromPartsValidation) {
  // The accessors hand out borrowed views; materialise owned vectors so
  // the test can corrupt individual fields.
  auto parts_of = [](const BlockList& list) {
    return std::make_tuple(static_cast<uint32_t>(list.size()),
                           list.skip_first().ToVector(),
                           list.skip_offset().ToVector(),
                           list.bytes().ToVector());
  };
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 300; ++i) ids.push_back(i * 3);
  BlockList good = BlockList::FromSidList(SidList::FromSorted(ids));
  auto [count, skip_first, skip_offset, bytes] = parts_of(good);

  // The untouched parts reassemble to an identical list.
  auto ok = BlockList::FromParts(count, skip_first, skip_offset, bytes);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, good);

  // Count inconsistent with the block structure.
  EXPECT_FALSE(BlockList::FromParts(count + 1, skip_first, skip_offset, bytes).ok());
  EXPECT_FALSE(BlockList::FromParts(0, skip_first, skip_offset, bytes).ok());
  // Skip tables of different lengths.
  {
    auto f = skip_first;
    f.pop_back();
    EXPECT_FALSE(BlockList::FromParts(count, f, skip_offset, bytes).ok());
  }
  // Corrupt skip-table entries: non-monotone first sids across blocks.
  {
    auto f = skip_first;
    f[1] = f[0];
    EXPECT_FALSE(BlockList::FromParts(count, f, skip_offset, bytes).ok());
  }
  // Corrupt skip-table entries: offset out of bounds / non-monotone /
  // first block not at zero.
  {
    auto o = skip_offset;
    o[1] = static_cast<uint32_t>(bytes.size()) + 100;
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, o, bytes).ok());
    o = skip_offset;
    o[0] = 1;
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, o, bytes).ok());
    o = skip_offset;
    std::swap(o[1], o[2]);
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, o, bytes).ok());
  }
  // Payload truncated mid-varint / trailing bytes.
  {
    auto p = bytes;
    p.pop_back();
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, skip_offset, p).ok());
    p = bytes;
    p.push_back(0x01);
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, skip_offset, p).ok());
  }
  // Zero gap (duplicate sid) inside a block.
  {
    auto p = bytes;
    p[0] = 0x00;
    EXPECT_FALSE(BlockList::FromParts(count, skip_first, skip_offset, p).ok());
  }
  // Empty list: only the all-empty parts are valid.
  EXPECT_TRUE(BlockList::FromParts(0, {}, {}, {}).ok());
  EXPECT_FALSE(BlockList::FromParts(0, {}, {}, {0x01}).ok());
}

TEST(BlockListTest, FromMappedAliasesWithoutCopying) {
  // A mapped view must behave identically to the owning list it was
  // serialized from — same equality, same queries — while owning nothing.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 1000; ++i) ids.push_back(i * 7 + (i % 3));
  BlockList owned = BlockList::FromSidList(SidList::FromUnsorted(ids));
  const std::vector<uint32_t> skip_first = owned.skip_first().ToVector();
  const std::vector<uint32_t> skip_offset = owned.skip_offset().ToVector();
  const std::vector<uint8_t> payload = owned.bytes().ToVector();

  auto mapped = BlockList::FromMapped(
      static_cast<uint32_t>(owned.size()), U32View(skip_first),
      U32View(skip_offset), MemorySpan(payload.data(), payload.size()));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mapped());
  EXPECT_FALSE(owned.mapped());
  EXPECT_EQ(*mapped, owned);
  EXPECT_EQ(mapped->MemoryUsage(), 0u);  // the backing memory is borrowed
  EXPECT_GT(owned.MemoryUsage(), 0u);
  // The view aliases, it does not copy.
  EXPECT_EQ(mapped->bytes().data(), payload.data());
  EXPECT_EQ(mapped->Decode(), owned.Decode());
  for (uint32_t probe : {0u, 7u, 8u, 3500u, 6993u, 100000u}) {
    EXPECT_EQ(mapped->Contains(probe), owned.Contains(probe)) << probe;
  }
  // Kernels run unchanged over the view: intersect it against decoded and
  // compressed inputs.
  SidList half = SidList::FromUnsorted(
      std::vector<uint32_t>(ids.begin(), ids.begin() + 500));
  EXPECT_EQ(Intersect(half, *mapped), Intersect(half, owned));
  EXPECT_EQ(Intersect(*mapped, owned), owned.Decode());

  // The mapped arrays also start at deliberately unaligned addresses in a
  // real image (strings precede them); simulate that by re-basing the
  // views one byte into a shifted buffer.
  std::vector<uint8_t> shifted(1 + skip_first.size() * sizeof(uint32_t));
  std::memcpy(shifted.data() + 1, skip_first.data(),
              skip_first.size() * sizeof(uint32_t));
  U32View unaligned(shifted.data() + 1, skip_first.size());
  auto remapped = BlockList::FromMapped(
      static_cast<uint32_t>(owned.size()), unaligned, U32View(skip_offset),
      MemorySpan(payload.data(), payload.size()));
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(*remapped, owned);
}

TEST(BlockListTest, FromMappedRejectsCorruptParts) {
  // Every corruption FromParts rejects must fail FromMapped identically —
  // nothing may be aliased out of a structurally unsound image.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 300; ++i) ids.push_back(i * 3);
  BlockList good = BlockList::FromSidList(SidList::FromSorted(ids));
  const uint32_t count = static_cast<uint32_t>(good.size());
  std::vector<uint32_t> skip_first = good.skip_first().ToVector();
  std::vector<uint32_t> skip_offset = good.skip_offset().ToVector();
  std::vector<uint8_t> payload = good.bytes().ToVector();
  auto map_with = [&](uint32_t n, const std::vector<uint32_t>& f,
                      const std::vector<uint32_t>& o,
                      const std::vector<uint8_t>& p) {
    return BlockList::FromMapped(n, U32View(f), U32View(o),
                                 MemorySpan(p.data(), p.size()));
  };
  ASSERT_TRUE(map_with(count, skip_first, skip_offset, payload).ok());

  EXPECT_FALSE(map_with(count + 1, skip_first, skip_offset, payload).ok());
  EXPECT_FALSE(map_with(0, skip_first, skip_offset, payload).ok());
  {
    auto f = skip_first;
    f.pop_back();
    EXPECT_FALSE(map_with(count, f, skip_offset, payload).ok());
    f = skip_first;
    f[1] = f[0];  // non-monotone across blocks
    EXPECT_FALSE(map_with(count, f, skip_offset, payload).ok());
  }
  {
    auto o = skip_offset;
    o[1] = static_cast<uint32_t>(payload.size()) + 100;  // out of bounds
    EXPECT_FALSE(map_with(count, skip_first, o, payload).ok());
    o = skip_offset;
    o[0] = 1;  // first block not at zero
    EXPECT_FALSE(map_with(count, skip_first, o, payload).ok());
    o = skip_offset;
    std::swap(o[1], o[2]);  // non-monotone offsets
    EXPECT_FALSE(map_with(count, skip_first, o, payload).ok());
  }
  {
    auto p = payload;
    p.pop_back();  // truncated mid-varint
    EXPECT_FALSE(map_with(count, skip_first, skip_offset, p).ok());
    p = payload;
    p.push_back(0x01);  // trailing bytes
    EXPECT_FALSE(map_with(count, skip_first, skip_offset, p).ok());
    p = payload;
    p[0] = 0x00;  // zero gap
    EXPECT_FALSE(map_with(count, skip_first, skip_offset, p).ok());
  }
  // Overflow / overlong varints, mirrored from the FromParts suite.
  std::vector<uint32_t> one_first = {0xfffffff0u};
  std::vector<uint32_t> one_offset = {0};
  std::vector<uint8_t> gap_overflow = {0xff, 0xff, 0xff, 0xff, 0x0f};
  EXPECT_FALSE(map_with(2, one_first, one_offset, gap_overflow).ok());
  std::vector<uint8_t> overlong = {0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  std::vector<uint32_t> zero_first = {0};
  EXPECT_FALSE(map_with(2, zero_first, one_offset, overlong).ok());
  // Empty list: only the all-empty parts are valid.
  EXPECT_TRUE(BlockList::FromMapped(0, {}, {}, {}).ok());
  std::vector<uint8_t> stray = {0x01};
  EXPECT_FALSE(BlockList::FromMapped(0, {}, {},
                                     MemorySpan(stray.data(), stray.size()))
                   .ok());
}

TEST(BlockListTest, FromPartsRejectsOverflowAndOverlongVarints) {
  // A single block of two sids whose gap pushes past uint32.
  std::vector<uint32_t> first = {0xfffffff0u};
  std::vector<uint32_t> offsets = {0};
  std::vector<uint8_t> gap_overflow = {0xff, 0xff, 0xff, 0xff, 0x0f};  // +2^32-1
  EXPECT_FALSE(BlockList::FromParts(2, first, offsets, gap_overflow).ok());
  // Overlong varint (six continuation bytes).
  std::vector<uint8_t> overlong = {0xff, 0xff, 0xff, 0xff, 0xff, 0x01};
  EXPECT_FALSE(BlockList::FromParts(2, {0}, offsets, overlong).ok());
  // The canonical maximum still validates: 0 then +0xffffffff.
  std::vector<uint8_t> max_gap = {0xff, 0xff, 0xff, 0xff, 0x0f};
  auto max_ok = BlockList::FromParts(2, {0}, offsets, max_gap);
  ASSERT_TRUE(max_ok.ok()) << max_ok.status().ToString();
  EXPECT_EQ(max_ok->Decode().ids(), (std::vector<uint32_t>{0, 0xffffffffu}));
}

// ---------------------------------------------------------------------------
// Packed (v4) form: round trips, canonical-encoding corruption rejection.
// ---------------------------------------------------------------------------

// Gap patterns the packed and SIMD paths must all handle: dense runs
// (1-bit gaps), sparse lists (wide gaps), adversarial mixes that defeat
// the varint fast path mid-block, and block-boundary sizes.
std::vector<std::vector<uint32_t>> PatternLists() {
  std::vector<std::vector<uint32_t>> lists;
  lists.push_back({});                            // empty
  lists.push_back({42});                          // single sid, zero gaps
  lists.push_back({0, 0xffffffffu});              // maximum gap (width 32)
  for (size_t n : {2u, 127u, 128u, 129u, 255u, 256u, 1000u}) {
    std::vector<uint32_t> dense, sparse, mixed;
    for (uint32_t i = 0; i < n; ++i) {
      dense.push_back(1000 + i);
      sparse.push_back(i * 3000017u);
      // Alternating 1-byte and multi-byte varint gaps: breaks the SIMD
      // all-single-byte probe inside a block, not just at its edges.
      mixed.push_back(mixed.empty() ? 7u
                                    : mixed.back() + (i % 3 == 0 ? 300000u
                                                     : i % 3 == 1 ? 1u
                                                                  : 200u));
    }
    lists.push_back(std::move(dense));
    lists.push_back(std::move(sparse));
    lists.push_back(std::move(mixed));
  }
  Rng rng(1234);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint32_t> ids;
    const size_t n = 1 + rng.Next() % 700;
    for (size_t i = 0; i < n; ++i) {
      ids.push_back(static_cast<uint32_t>(rng.Next() % (1u << 24)));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    lists.push_back(std::move(ids));
  }
  return lists;
}

TEST(BlockListTest, PackedRoundTripMatchesVarintForm) {
  for (const auto& ids : PatternLists()) {
    BlockList varint = BlockList::FromSidList(SidList::FromSorted(ids));
    PackedBlockParts parts = PackBlockList(varint);
    auto packed = BlockList::FromPackedParts(
        static_cast<uint32_t>(varint.size()), parts.skip_first,
        parts.skip_offset, parts.skip_width, parts.payload);
    ASSERT_TRUE(packed.ok()) << packed.status().ToString();
    EXPECT_TRUE(packed->packed());
    EXPECT_FALSE(varint.packed());
    // Cross-form equality decodes blockwise; both directions.
    EXPECT_EQ(*packed, varint);
    EXPECT_EQ(varint, *packed);
    EXPECT_EQ(packed->Decode().ids(), ids);
    // Re-packing a packed list is the identity: the encoding is canonical.
    PackedBlockParts again = PackBlockList(*packed);
    EXPECT_EQ(again.skip_width, parts.skip_width);
    EXPECT_EQ(again.payload, parts.payload);
    // Every block payload starts 4-byte aligned and the widths are minimal.
    for (size_t b = 0; b < parts.skip_offset.size(); ++b) {
      EXPECT_EQ(parts.skip_offset[b] % 4, 0u) << b;
      EXPECT_LE(parts.skip_width[b], 32u) << b;
    }
    // Queries agree across forms, including the packed gallop path.
    for (uint32_t probe : {0u, 7u, 1000u, 3000017u, 0xffffffffu}) {
      EXPECT_EQ(packed->Contains(probe), varint.Contains(probe)) << probe;
    }
    EXPECT_EQ(Intersect(*packed, varint), varint.Decode());
  }
}

TEST(BlockListTest, FromMappedPackedAliasesWithoutCopying) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 1000; ++i) ids.push_back(i * 7 + (i % 3));
  BlockList owned = BlockList::FromSidList(SidList::FromUnsorted(ids));
  PackedBlockParts parts = PackBlockList(owned);
  const uint32_t count = static_cast<uint32_t>(owned.size());

  auto mapped = BlockList::FromMappedPacked(
      count, U32View(parts.skip_first), U32View(parts.skip_offset),
      U32View(parts.skip_width),
      MemorySpan(parts.payload.data(), parts.payload.size()));
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped->mapped());
  EXPECT_TRUE(mapped->packed());
  EXPECT_EQ(mapped->MemoryUsage(), 0u);
  EXPECT_EQ(mapped->bytes().data(), parts.payload.data());  // aliases
  EXPECT_EQ(*mapped, owned);
  EXPECT_EQ(mapped->Decode(), owned.Decode());

  // A real image may hand the view unaligned base addresses (the payload
  // itself is file-aligned, but the skip arrays follow strings): re-base
  // the width table one byte into a shifted buffer.
  std::vector<uint8_t> shifted(1 + parts.skip_width.size() * sizeof(uint32_t));
  std::memcpy(shifted.data() + 1, parts.skip_width.data(),
              parts.skip_width.size() * sizeof(uint32_t));
  auto remapped = BlockList::FromMappedPacked(
      count, U32View(parts.skip_first), U32View(parts.skip_offset),
      U32View(shifted.data() + 1, parts.skip_width.size()),
      MemorySpan(parts.payload.data(), parts.payload.size()));
  ASSERT_TRUE(remapped.ok()) << remapped.status().ToString();
  EXPECT_EQ(*remapped, owned);
}

TEST(BlockListTest, FromPackedPartsValidation) {
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 300; ++i) ids.push_back(i * 3);
  BlockList good = BlockList::FromSidList(SidList::FromSorted(ids));
  PackedBlockParts parts = PackBlockList(good);
  const uint32_t count = static_cast<uint32_t>(good.size());
  auto make = [&](uint32_t n, const std::vector<uint32_t>& f,
                  const std::vector<uint32_t>& o,
                  const std::vector<uint32_t>& w,
                  const std::vector<uint8_t>& p) {
    return BlockList::FromPackedParts(n, f, o, w, p);
  };
  ASSERT_TRUE(make(count, parts.skip_first, parts.skip_offset,
                   parts.skip_width, parts.payload)
                  .ok());

  // Count / skip-table shape mismatches.
  EXPECT_FALSE(make(count + 1, parts.skip_first, parts.skip_offset,
                    parts.skip_width, parts.payload)
                   .ok());
  EXPECT_FALSE(make(0, parts.skip_first, parts.skip_offset, parts.skip_width,
                    parts.payload)
                   .ok());
  {
    auto w = parts.skip_width;
    w.pop_back();  // width table disagrees with the other skip arrays
    EXPECT_FALSE(make(count, parts.skip_first, parts.skip_offset, w,
                      parts.payload)
                     .ok());
    w = parts.skip_width;
    w[0] = 33;  // width beyond uint32
    EXPECT_FALSE(make(count, parts.skip_first, parts.skip_offset, w,
                      parts.payload)
                     .ok());
    w = parts.skip_width;
    w[0] += 1;  // non-minimal (and payload size no longer matches)
    EXPECT_FALSE(make(count, parts.skip_first, parts.skip_offset, w,
                      parts.payload)
                     .ok());
  }
  {
    auto f = parts.skip_first;
    f[1] = f[0];  // non-monotone across blocks
    EXPECT_FALSE(make(count, f, parts.skip_offset, parts.skip_width,
                      parts.payload)
                     .ok());
  }
  {
    auto o = parts.skip_offset;
    o[0] = 4;  // first block not at zero
    EXPECT_FALSE(make(count, parts.skip_first, o, parts.skip_width,
                      parts.payload)
                     .ok());
    o = parts.skip_offset;
    o[1] += 2;  // unaligned / wrong block size
    EXPECT_FALSE(make(count, parts.skip_first, o, parts.skip_width,
                      parts.payload)
                     .ok());
    o = parts.skip_offset;
    o[1] = static_cast<uint32_t>(parts.payload.size()) + 4;  // out of bounds
    EXPECT_FALSE(make(count, parts.skip_first, o, parts.skip_width,
                      parts.payload)
                     .ok());
  }
  // Every truncation of the payload is rejected (sizes are exact).
  for (size_t cut = 1; cut <= 8 && cut <= parts.payload.size(); ++cut) {
    std::vector<uint8_t> p(parts.payload.begin(), parts.payload.end() - cut);
    EXPECT_FALSE(make(count, parts.skip_first, parts.skip_offset,
                      parts.skip_width, p)
                     .ok())
        << cut;
  }
  {
    auto p = parts.payload;
    p.push_back(0);  // trailing bytes, even zero ones
    EXPECT_FALSE(make(count, parts.skip_first, parts.skip_offset,
                      parts.skip_width, p)
                     .ok());
  }

  // Hand-crafted single-block cases pinning the canonical-form rules.
  // Two sids {0, 1}: gap 1, width 1, one payload word.
  EXPECT_TRUE(make(2, {0}, {0}, {1}, {0x01, 0, 0, 0}).ok());
  // Zero gap encodes a duplicate sid.
  EXPECT_FALSE(make(2, {0}, {0}, {1}, {0x00, 0, 0, 0}).ok());
  // Nonzero slack bits past the last gap.
  EXPECT_FALSE(make(2, {0}, {0}, {1}, {0x03, 0, 0, 0}).ok());
  // Nonzero alignment pad byte.
  EXPECT_FALSE(make(2, {0}, {0}, {1}, {0x01, 0, 0, 1}).ok());
  // Width 2 for a gap of 1 is not minimal (same payload size, so this
  // isolates the minimal-width rule).
  EXPECT_FALSE(make(2, {0}, {0}, {2}, {0x01, 0, 0, 0}).ok());
  // A single-sid block must have width 0 and no payload.
  EXPECT_TRUE(make(1, {9}, {0}, {0}, {}).ok());
  EXPECT_FALSE(make(1, {9}, {0}, {1}, {0, 0, 0, 0}).ok());
  // Gap pushing past uint32: 0xfffffff0 + 0xff overflows.
  EXPECT_FALSE(make(2, {0xfffffff0u}, {0}, {8}, {0xff, 0, 0, 0}).ok());
  // The canonical maximum still validates: 0 then +0xffffffff (width 32,
  // exactly one unpadded word).
  auto max_ok = make(2, {0}, {0}, {32}, {0xff, 0xff, 0xff, 0xff});
  ASSERT_TRUE(max_ok.ok()) << max_ok.status().ToString();
  EXPECT_EQ(max_ok->Decode().ids(), (std::vector<uint32_t>{0, 0xffffffffu}));
  // Empty list: only the all-empty parts are valid.
  EXPECT_TRUE(make(0, {}, {}, {}, {}).ok());
  EXPECT_FALSE(make(0, {}, {}, {}, {0}).ok());
}

TEST(BlockListTest, RejectsBlockClaimingMoreThanBlockSids) {
  // A count implying more sids than kBlockSids in one block would overflow
  // DecodeBlock's stack buffer; both forms must reject it at validation,
  // whatever the payload claims.
  std::vector<uint8_t> gaps129(129, 0x01);  // 129 one-byte varint gaps
  EXPECT_FALSE(BlockList::FromParts(130, {0}, {0}, gaps129).ok());
  EXPECT_FALSE(
      BlockList::FromPackedParts(130, {0}, {0}, {1}, {0xff, 0xff, 0, 0}).ok());
  // kBlockSids exactly still fits.
  std::vector<uint8_t> gaps127(127, 0x01);
  auto full = BlockList::FromParts(128, {0}, {0}, gaps127);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_EQ(full->Decode().size(), 128u);
}

TEST(BlockListTest, FromMappedPackedRejectsCorruptParts) {
  // Every corruption FromPackedParts rejects must fail FromMappedPacked
  // identically — nothing is aliased out of a structurally unsound image.
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 300; ++i) ids.push_back(i * 3);
  PackedBlockParts parts =
      PackBlockList(BlockList::FromSidList(SidList::FromSorted(ids)));
  const uint32_t count = 300;
  auto map_with = [&](uint32_t n, const std::vector<uint32_t>& f,
                      const std::vector<uint32_t>& o,
                      const std::vector<uint32_t>& w,
                      const std::vector<uint8_t>& p) {
    return BlockList::FromMappedPacked(n, U32View(f), U32View(o), U32View(w),
                                       MemorySpan(p.data(), p.size()));
  };
  ASSERT_TRUE(map_with(count, parts.skip_first, parts.skip_offset,
                       parts.skip_width, parts.payload)
                  .ok());
  EXPECT_FALSE(map_with(count + 1, parts.skip_first, parts.skip_offset,
                        parts.skip_width, parts.payload)
                   .ok());
  {
    auto w = parts.skip_width;
    w[0] = 33;
    EXPECT_FALSE(map_with(count, parts.skip_first, parts.skip_offset, w,
                          parts.payload)
                     .ok());
  }
  {
    auto p = parts.payload;
    p.pop_back();
    EXPECT_FALSE(map_with(count, parts.skip_first, parts.skip_offset,
                          parts.skip_width, p)
                     .ok());
    p = parts.payload;
    p.back() ^= 0x80;  // flip a pad/slack bit
    EXPECT_FALSE(map_with(count, parts.skip_first, parts.skip_offset,
                          parts.skip_width, p)
                     .ok());
  }
  {
    auto f = parts.skip_first;
    f[1] = f[0];
    EXPECT_FALSE(map_with(count, f, parts.skip_offset, parts.skip_width,
                          parts.payload)
                     .ok());
  }
}

// ---------------------------------------------------------------------------
// SIMD dispatch: every available ISA must be byte-for-byte equivalent to
// the scalar kernels on every input shape.
// ---------------------------------------------------------------------------

// Restores the process-wide active ISA on scope exit so test order cannot
// leak a non-default kernel table into unrelated suites.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) : saved_(simd::ActiveIsa()) {
    simd::SetActiveIsa(isa);
  }
  ~ScopedIsa() { simd::SetActiveIsa(saved_); }

 private:
  simd::Isa saved_;
};

TEST(SimdTest, ScalarAlwaysAvailableAndNamed) {
  auto isas = simd::AvailableIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), simd::Isa::kScalar);
  ASSERT_NE(simd::KernelsFor(simd::Isa::kScalar), nullptr);
  EXPECT_STREQ(simd::IsaName(simd::Isa::kScalar), "scalar");
  for (simd::Isa isa : isas) {
    EXPECT_NE(simd::KernelsFor(isa), nullptr) << simd::IsaName(isa);
    EXPECT_NE(std::string(simd::IsaName(isa)), "");
  }
  EXPECT_STREQ(simd::ActiveIsaName(), simd::IsaName(simd::ActiveIsa()));
}

TEST(SimdTest, DifferentialDecodeAcrossIsas) {
  // Decode every pattern list under every available ISA, in both payload
  // forms, from owned and byte-shifted (unaligned) mapped parts; all must
  // match the scalar decode exactly.
  const auto lists = PatternLists();
  for (const auto& ids : PatternLists()) {
    BlockList varint = BlockList::FromSidList(SidList::FromSorted(ids));
    PackedBlockParts pp = PackBlockList(varint);
    const uint32_t n = static_cast<uint32_t>(varint.size());
    auto packed = BlockList::FromPackedParts(n, pp.skip_first, pp.skip_offset,
                                             pp.skip_width, pp.payload);
    ASSERT_TRUE(packed.ok()) << packed.status().ToString();
    // Unaligned mapped variants: payload re-based one byte into a shifted
    // buffer, mimicking kMap aliases whose spans are not naturally aligned.
    std::vector<uint8_t> vshift(1 + varint.bytes().size());
    if (!varint.bytes().empty()) {
      std::memcpy(vshift.data() + 1, varint.bytes().data(),
                  varint.bytes().size());
    }
    const std::vector<uint32_t> vfirst = varint.skip_first().ToVector();
    const std::vector<uint32_t> voffset = varint.skip_offset().ToVector();
    auto vmapped = BlockList::FromMapped(
        n, U32View(vfirst), U32View(voffset),
        MemorySpan(vshift.data() + 1, varint.bytes().size()));
    ASSERT_TRUE(vmapped.ok()) << vmapped.status().ToString();

    std::vector<std::vector<uint32_t>> scalar_decodes;
    for (simd::Isa isa : simd::AvailableIsas()) {
      ScopedIsa guard(isa);
      std::vector<std::vector<uint32_t>> decodes;
      decodes.push_back(varint.Decode().ids());
      decodes.push_back(packed->Decode().ids());
      decodes.push_back(vmapped->Decode().ids());
      if (isa == simd::Isa::kScalar) {
        for (const auto& d : decodes) EXPECT_EQ(d, ids);
        scalar_decodes = std::move(decodes);
      } else {
        ASSERT_EQ(decodes.size(), scalar_decodes.size());
        for (size_t i = 0; i < decodes.size(); ++i) {
          EXPECT_EQ(decodes[i], scalar_decodes[i])
              << simd::IsaName(isa) << " form " << i << " n=" << ids.size();
        }
      }
    }
  }
}

TEST(SimdTest, DifferentialIntersectAcrossIsas) {
  // Intersections under each ISA — both the raw kernel against a reference
  // std::set_intersection and the full BlockList paths — must agree with
  // scalar exactly, across skews that hit the merge and gallop strategies.
  Rng rng(4242);
  for (int round = 0; round < 60; ++round) {
    const size_t na = 1 + rng.Next() % 400;
    const size_t skew = 1 + rng.Next() % 100;
    const size_t nb = 1 + (rng.Next() % 400) * skew;
    SidList a = RandomList(&rng, na, 1u << 18);
    SidList b = RandomList(&rng, nb, 1u << 18);
    const std::vector<uint32_t> expected = ReferenceIntersect(a, b);

    BlockList ba = BlockList::FromSidList(a);
    BlockList bb = BlockList::FromSidList(b);
    for (simd::Isa isa : simd::AvailableIsas()) {
      ScopedIsa guard(isa);
      // Raw kernel, both argument orders.
      const simd::Kernels& k = simd::ActiveKernels();
      std::vector<uint32_t> out(std::min(a.size(), b.size()) +
                                simd::kIntersectOutSlack);
      size_t got = k.intersect_sorted(a.ids().data(), a.size(),
                                      b.ids().data(), b.size(), out.data());
      ASSERT_EQ(got, expected.size()) << simd::IsaName(isa);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
          << simd::IsaName(isa);
      got = k.intersect_sorted(b.ids().data(), b.size(), a.ids().data(),
                               a.size(), out.data());
      ASSERT_EQ(got, expected.size()) << simd::IsaName(isa);
      EXPECT_TRUE(std::equal(expected.begin(), expected.end(), out.begin()))
          << simd::IsaName(isa);
      // Full paths: decoded×decoded, block×block, decoded×block.
      EXPECT_EQ(Intersect(a, b).ids(), expected) << simd::IsaName(isa);
      EXPECT_EQ(Intersect(ba, bb).ids(), expected) << simd::IsaName(isa);
      EXPECT_EQ(Intersect(a, bb).ids(), expected) << simd::IsaName(isa);
    }
  }
}

TEST(SimdTest, IntersectKernelEdgeCases) {
  // Empty inputs, no matches, all matches, and runs crossing the vector
  // width — per ISA, against the scalar kernel's contract.
  for (simd::Isa isa : simd::AvailableIsas()) {
    ScopedIsa guard(isa);
    const simd::Kernels& k = simd::ActiveKernels();
    std::vector<uint32_t> out(64 + simd::kIntersectOutSlack);
    std::vector<uint32_t> empty;
    std::vector<uint32_t> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    EXPECT_EQ(k.intersect_sorted(empty.data(), 0, xs.data(), xs.size(),
                                 out.data()),
              0u);
    EXPECT_EQ(k.intersect_sorted(xs.data(), xs.size(), empty.data(), 0,
                                 out.data()),
              0u);
    // Identical arrays: all elements survive, in order.
    const size_t all = k.intersect_sorted(xs.data(), xs.size(), xs.data(),
                                          xs.size(), out.data());
    ASSERT_EQ(all, xs.size());
    EXPECT_TRUE(std::equal(xs.begin(), xs.end(), out.begin()));
    // Interleaved disjoint values: zero matches across window boundaries.
    std::vector<uint32_t> odd, even;
    for (uint32_t i = 0; i < 40; ++i) {
      odd.push_back(2 * i + 1);
      even.push_back(2 * i);
    }
    EXPECT_EQ(k.intersect_sorted(odd.data(), odd.size(), even.data(),
                                 even.size(), out.data()),
              0u)
        << simd::IsaName(isa);
  }
}

TEST(DeltaCodecTest, RoundTrip) {
  Rng rng(7);
  for (int round = 0; round < 20; ++round) {
    SidList list = RandomList(&rng, rng.Next() % 500, 1u << 20);
    SidList decoded = *DecodeDeltas(EncodeDeltas(list));
    EXPECT_EQ(decoded.ids(), list.ids());
  }
  EXPECT_TRUE(DecodeDeltas(EncodeDeltas(SidList()))->empty());
  // Dense lists encode to ~1 byte per sid.
  std::vector<uint32_t> dense;
  for (uint32_t i = 1000000; i < 1001000; ++i) dense.push_back(i);
  SidList dense_list = SidList::FromSorted(dense);
  EXPECT_LE(EncodeDeltas(dense_list).size(), 999u + 5u);
}

// A corrupt or truncated v2 index image must fail load cleanly rather than
// decode to garbage sids; these are the codec-level regression cases.
TEST(DeltaCodecTest, TruncatedStreamRejected) {
  // A stream whose final byte still has the continuation bit set ends
  // mid-varint.
  EXPECT_FALSE(DecodeDeltas({0x85}).ok());
  EXPECT_EQ(DecodeDeltas({0x85}).status().code(), StatusCode::kParseError);
  // Every truncation of a valid stream either errors or decodes to a
  // shorter, still-monotone prefix — never to garbage ids.
  SidList list = SidList::FromSorted({5, 300, 70000, 70001});
  std::vector<uint8_t> bytes = EncodeDeltas(list);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<long>(cut));
    auto decoded = DecodeDeltas(prefix);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kParseError) << cut;
      continue;
    }
    ASSERT_LE(decoded->size(), list.size()) << cut;
    for (size_t i = 0; i < decoded->size(); ++i) {
      EXPECT_EQ((*decoded)[i], list[i]) << cut;
    }
  }
}

TEST(DeltaCodecTest, OverlongVarintRejected) {
  // Six continuation bytes exceed the 5-byte LEB128 maximum for uint32.
  EXPECT_FALSE(DecodeDeltas({0xff, 0xff, 0xff, 0xff, 0xff, 0x01}).ok());
  // Five bytes, but the last carries bits beyond 2^32.
  EXPECT_FALSE(DecodeDeltas({0xff, 0xff, 0xff, 0xff, 0x7f}).ok());
  // The canonical 5-byte maximum (0xffffffff) still decodes.
  auto max_value = DecodeDeltas({0xff, 0xff, 0xff, 0xff, 0x0f});
  ASSERT_TRUE(max_value.ok()) << max_value.status().ToString();
  EXPECT_EQ(max_value->ids(), (std::vector<uint32_t>{0xffffffffu}));
}

TEST(DeltaCodecTest, NonMonotoneGapsRejected) {
  // 7 followed by a zero gap encodes a duplicate id; a valid encoder never
  // emits it, and accepting it would silently violate SidList's sorted-
  // unique invariant.
  EXPECT_FALSE(DecodeDeltas({0x07, 0x00}).ok());
  // A zero *first* id is legal (sid 0 exists).
  auto zero_first = DecodeDeltas({0x00, 0x01});
  ASSERT_TRUE(zero_first.ok());
  EXPECT_EQ(zero_first->ids(), (std::vector<uint32_t>{0, 1}));
}

TEST(DeltaCodecTest, SidOverflowRejected) {
  // 0xffffffff followed by a gap of 1 would wrap past uint32.
  std::vector<uint8_t> bytes = EncodeDeltas(SidList::FromSorted({0xffffffffu}));
  bytes.push_back(0x01);
  EXPECT_FALSE(DecodeDeltas(bytes).ok());
}

}  // namespace
}  // namespace koko

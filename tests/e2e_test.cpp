// End-to-end shape tests: miniature versions of the paper's experiments
// asserting the qualitative results the benches report quantitatively.
#include <gtest/gtest.h>

#include <set>

#include "baseline/adv_inverted_index.h"
#include "baseline/inverted_index.h"
#include "baseline/koko_adapter.h"
#include "baseline/subtree_index.h"
#include "corpus/generators.h"
#include "corpus/query_gen.h"
#include "extract/ike.h"
#include "extract/metrics.h"
#include "koko/engine.h"
#include "koko/explain.h"
#include "koko/parser.h"
#include "koko/printer.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

std::string CafeQueryText(double threshold) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), R"(
extract x:Entity from "blogs" if ()
satisfying x
  (str(x) contains "Cafe" {1}) or
  (str(x) contains "Coffee" {1}) or
  (str(x) contains "Roasters" {1}) or
  (x ", a cafe" {1}) or
  (x [["serves coffee"]] {0.5}) or
  (x [["employs baristas"]] {0.5}) or
  (x [["hired a star barista"]] {0.5}) or
  (x [["pours delicious lattes"]] {0.45})
with threshold %f
excluding
  (str(x) matches "[a-z 0-9.&]+") or
  (str(x) in dict("GPE")) or
  (str(x) in dict("Person"))
)",
                threshold);
  return buf;
}

std::vector<std::string> RunCafe(const AnnotatedCorpus& corpus,
                                 const KokoIndex& index, const Pipeline& pipeline,
                                 const EmbeddingModel& embeddings,
                                 double threshold, bool use_descriptors) {
  Engine engine(&corpus, &index, &embeddings, &pipeline.recognizer());
  EngineOptions options;
  options.use_descriptors = use_descriptors;
  auto result = engine.ExecuteText(CafeQueryText(threshold), options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::set<std::string> unique;
  if (result.ok()) {
    for (const auto& row : result->rows) unique.insert(row.values[0]);
  }
  return {unique.begin(), unique.end()};
}

TEST(EndToEndTest, KokoBeatsIkeOnCafes) {
  LabeledCorpus blogs =
      GenerateCafeBlogs({.num_articles = 50, .long_articles = false, .seed = 71});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;

  auto koko = RunCafe(corpus, *index, pipeline, embeddings, 0.4, true);
  PRF koko_prf = ScoreExtractionLists(blogs.gold, koko);

  IkeExtractor ike(&embeddings);
  auto ike_result =
      ike.RunAll(corpus, {"(NP) (\"serves coffee\" ~ 8)", "(NP) \", a cafe\""});
  ASSERT_TRUE(ike_result.ok());
  PRF ike_prf = ScoreExtractionLists(blogs.gold, *ike_result);

  // Figure 3's headline: KOKO's aggregation wins clearly.
  EXPECT_GT(koko_prf.f1, ike_prf.f1 + 0.1);
  EXPECT_GT(koko_prf.f1, 0.5);
}

TEST(EndToEndTest, DescriptorsHelpOnShortArticles) {
  LabeledCorpus blogs =
      GenerateCafeBlogs({.num_articles = 50, .long_articles = false, .seed = 72});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  auto with = RunCafe(corpus, *index, pipeline, embeddings, 0.4, true);
  auto without = RunCafe(corpus, *index, pipeline, embeddings, 0.4, false);
  PRF with_prf = ScoreExtractionLists(blogs.gold, with);
  PRF without_prf = ScoreExtractionLists(blogs.gold, without);
  // Figure 5: paraphrased weak evidence needs expansion.
  EXPECT_GT(with_prf.f1, without_prf.f1);
}

TEST(EndToEndTest, ThresholdTradesPrecisionForRecall) {
  LabeledCorpus blogs =
      GenerateCafeBlogs({.num_articles = 50, .long_articles = false, .seed = 73});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  PRF low = ScoreExtractionLists(
      blogs.gold, RunCafe(corpus, *index, pipeline, embeddings, 0.2, true));
  PRF high = ScoreExtractionLists(
      blogs.gold, RunCafe(corpus, *index, pipeline, embeddings, 0.9, true));
  EXPECT_GE(high.precision, low.precision);
  EXPECT_GE(low.recall, high.recall);
}

TEST(EndToEndTest, IndexEffectivenessOrdering) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 300, .seed = 74});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto koko = KokoTreeIndex::Build(corpus);
  auto inverted = InvertedIndex::Build(corpus);
  auto adv = AdvInvertedIndex::Build(corpus);
  auto queries = GenerateSyntheticTreeBenchmark(
      corpus, {.queries_per_setting = 2, .seed = 75});
  double koko_eff = 0, inv_eff = 0, adv_eff = 0;
  size_t n = 0;
  for (const auto& q : queries) {
    auto kc = koko->CandidateSentences(q.paths);
    auto ic = inverted->CandidateSentences(q.paths);
    auto ac = adv->CandidateSentences(q.paths);
    if (!kc.ok() || !ic.ok() || !ac.ok()) continue;
    koko_eff += IndexEffectiveness(corpus, q.paths, *kc);
    inv_eff += IndexEffectiveness(corpus, q.paths, *ic);
    adv_eff += IndexEffectiveness(corpus, q.paths, *ac);
    ++n;
  }
  ASSERT_GT(n, 50u);
  // Figures 7/8: KOKO ~ ADVINVERTED ~ 1.0 > INVERTED.
  EXPECT_GT(koko_eff / n, 0.97);
  EXPECT_GT(adv_eff / n, 0.97);
  EXPECT_LT(inv_eff / n, koko_eff / n);
}

TEST(EndToEndTest, IndexSizeOrdering) {
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 200, .seed = 76});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto koko = KokoTreeIndex::Build(corpus);
  auto inverted = InvertedIndex::Build(corpus);
  auto adv = AdvInvertedIndex::Build(corpus);
  auto subtree = SubtreeIndex::Build(corpus);
  // Figure 6(b): KOKO smallest, SUBTREE largest.
  EXPECT_LT(koko->MemoryUsage(), inverted->MemoryUsage());
  EXPECT_LT(inverted->MemoryUsage(), adv->MemoryUsage());
  EXPECT_LT(adv->MemoryUsage(), subtree->MemoryUsage());
}

TEST(EndToEndTest, ExplainerBreaksDownScores) {
  Pipeline pipeline;
  Document doc = pipeline.AnnotateDocument(
      {"t", "Brim House sells espresso. Brim House employs a small team of 4 "
            "baristas."},
      0);
  EmbeddingModel embeddings;
  Explainer explainer(&embeddings, pipeline.recognizer());
  auto q = ParseQuery(CafeQueryText(0.6));
  ASSERT_TRUE(q.ok());
  ClauseExplanation explanation =
      explainer.Explain(doc, "Brim House", q->satisfying[0]);
  EXPECT_TRUE(explanation.passed);
  EXPECT_GT(explanation.score, 0.6);
  // The two descriptor conditions carry the evidence.
  double descriptor_total = 0;
  for (const auto& c : explanation.conditions) {
    if (c.condition.kind == SatCondition::Kind::kDescriptorRight) {
      descriptor_total += c.contribution;
    }
  }
  EXPECT_GT(descriptor_total, 0.5);
  // Rendering mentions the value and verdict.
  std::string text = explanation.ToString();
  EXPECT_NE(text.find("Brim House"), std::string::npos);
  EXPECT_NE(text.find("PASS"), std::string::npos);
}

TEST(EndToEndTest, QueryPrinterRoundTrip) {
  const std::vector<std::string> queries = {
      R"(extract e:Entity, d:Str from "input.txt" if (
        /ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = b.subtree }
        (b) in (e)))",
      CafeQueryText(0.8),
      R"(extract a:Person, b:Str from "w" if (
        /ROOT:{ v = //"called", p = v/propn, b = p.subtree,
                c = a + ^ + v + ^[max=3] + b }))",
  };
  for (const std::string& text : queries) {
    auto q1 = ParseQuery(text);
    ASSERT_TRUE(q1.ok()) << q1.status().ToString();
    std::string printed = QueryToString(*q1);
    auto q2 = ParseQuery(printed);
    ASSERT_TRUE(q2.ok()) << "re-parse failed:\n" << printed << "\n"
                         << q2.status().ToString();
    // Structural equality via a second print.
    EXPECT_EQ(printed, QueryToString(*q2));
  }
}

TEST(EndToEndTest, SpanBenchQueriesPrintable) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 100, .seed = 77});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 5, .seed = 78});
  for (const auto& bench : queries) {
    std::string printed = QueryToString(bench.query);
    auto reparsed = ParseQuery(printed);
    EXPECT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
  }
}

}  // namespace
}  // namespace koko

#include "regex/regex.h"

#include <gtest/gtest.h>

#include <regex>

#include "util/rng.h"

namespace koko {
namespace {

TEST(RegexTest, LiteralFullMatch) {
  auto re = Regex::Compile("hello");
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(re->FullMatch("hello"));
  EXPECT_FALSE(re->FullMatch("hello!"));
  EXPECT_FALSE(re->FullMatch("hell"));
}

TEST(RegexTest, PartialMatchFindsSubstring) {
  auto re = Regex::Compile("ice");
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(re->PartialMatch("chocolate ice cream"));
  EXPECT_FALSE(re->PartialMatch("chocolate"));
}

TEST(RegexTest, Dot) {
  EXPECT_TRUE(RegexFullMatch("cat", "c.t"));
  EXPECT_FALSE(RegexFullMatch("ct", "c.t"));
  EXPECT_FALSE(RegexFullMatch("c\nt", "c.t"));
}

TEST(RegexTest, StarPlusQuestion) {
  EXPECT_TRUE(RegexFullMatch("", "a*"));
  EXPECT_TRUE(RegexFullMatch("aaa", "a*"));
  EXPECT_FALSE(RegexFullMatch("", "a+"));
  EXPECT_TRUE(RegexFullMatch("a", "a?"));
  EXPECT_FALSE(RegexFullMatch("aa", "a?"));
}

TEST(RegexTest, Alternation) {
  EXPECT_TRUE(RegexFullMatch("cat", "cat|dog"));
  EXPECT_TRUE(RegexFullMatch("dog", "cat|dog"));
  EXPECT_FALSE(RegexFullMatch("cow", "cat|dog"));
}

TEST(RegexTest, Grouping) {
  EXPECT_TRUE(RegexFullMatch("ababab", "(ab)+"));
  EXPECT_FALSE(RegexFullMatch("aba", "(ab)+"));
  EXPECT_TRUE(RegexFullMatch("xyxy", "(x(y))*"));
}

TEST(RegexTest, CharacterClasses) {
  EXPECT_TRUE(RegexFullMatch("b", "[abc]"));
  EXPECT_FALSE(RegexFullMatch("d", "[abc]"));
  EXPECT_TRUE(RegexFullMatch("q", "[^abc]"));
  EXPECT_FALSE(RegexFullMatch("a", "[^abc]"));
  EXPECT_TRUE(RegexFullMatch("7", "[0-9]"));
  EXPECT_TRUE(RegexFullMatch("x-1", "[a-z]-[0-9]"));
}

TEST(RegexTest, ClassWithLiteralDash) {
  EXPECT_TRUE(RegexFullMatch("-", "[a-]"));
  EXPECT_TRUE(RegexFullMatch("a", "[a-]"));
}

TEST(RegexTest, EscapeClasses) {
  EXPECT_TRUE(RegexFullMatch("123", "\\d+"));
  EXPECT_FALSE(RegexFullMatch("12a", "\\d+"));
  EXPECT_TRUE(RegexFullMatch("a_1", "\\w+"));
  EXPECT_TRUE(RegexFullMatch(" ", "\\s"));
  EXPECT_TRUE(RegexFullMatch("x", "\\D"));
}

TEST(RegexTest, EscapedMetachars) {
  EXPECT_TRUE(RegexFullMatch("a.b", "a\\.b"));
  EXPECT_FALSE(RegexFullMatch("axb", "a\\.b"));
  EXPECT_TRUE(RegexFullMatch("(x)", "\\(x\\)"));
}

TEST(RegexTest, BoundedRepeats) {
  EXPECT_TRUE(RegexFullMatch("aaa", "a{3}"));
  EXPECT_FALSE(RegexFullMatch("aa", "a{3}"));
  EXPECT_TRUE(RegexFullMatch("aa", "a{1,3}"));
  EXPECT_FALSE(RegexFullMatch("aaaa", "a{1,3}"));
  EXPECT_TRUE(RegexFullMatch("aaaaa", "a{2,}"));
  EXPECT_FALSE(RegexFullMatch("a", "a{2,}"));
}

TEST(RegexTest, AnchorsInPartialMatch) {
  auto re = Regex::Compile("^abc");
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(re->PartialMatch("abcdef"));
  EXPECT_FALSE(re->PartialMatch("xabc"));
  auto re2 = Regex::Compile("abc$");
  ASSERT_TRUE(re2.ok());
  EXPECT_TRUE(re2->PartialMatch("xyzabc"));
  EXPECT_FALSE(re2->PartialMatch("abcx"));
}

TEST(RegexTest, CaseInsensitiveOption) {
  Regex::Options opts;
  opts.case_insensitive = true;
  auto re = Regex::Compile("Cafe", opts);
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(re->FullMatch("CAFE"));
  EXPECT_TRUE(re->FullMatch("cafe"));
}

TEST(RegexTest, PaperExcludingPatterns) {
  // Patterns from the Appendix-A cafe query.
  EXPECT_TRUE(RegexFullMatch("La Marzocco", "[Ll]a Marzocco"));
  EXPECT_TRUE(RegexFullMatch("la Marzocco", "[Ll]a Marzocco"));
  EXPECT_FALSE(RegexFullMatch("Marzocco", "[Ll]a Marzocco"));
  EXPECT_TRUE(
      RegexFullMatch("123 Mission St.", "[0-9]+ [0-9A-Z a-z]+ [Ss]t.?"));
  EXPECT_TRUE(RegexFullMatch("Portland Coffee Festival",
                             "[A-Za-z 0-9.]*[Ff]est(ival)?"));
  EXPECT_TRUE(RegexFullMatch("@bluebottle", "@[A-Za-z 0-9.]+"));
}

TEST(RegexTest, MalformedPatternsRejected) {
  EXPECT_FALSE(Regex::Compile("a(b").ok());
  EXPECT_FALSE(Regex::Compile("[abc").ok());
  EXPECT_FALSE(Regex::Compile("*a").ok());
  EXPECT_FALSE(Regex::Compile("a{3,1}").ok());
  EXPECT_FALSE(Regex::Compile("a\\").ok());
  EXPECT_FALSE(Regex::Compile("[z-a]").ok());
}

TEST(RegexTest, EmptyPatternMatchesEmpty) {
  auto re = Regex::Compile("");
  ASSERT_TRUE(re.ok());
  EXPECT_TRUE(re->FullMatch(""));
  EXPECT_FALSE(re->FullMatch("a"));
  EXPECT_TRUE(re->PartialMatch("anything"));
}

TEST(RegexTest, NoBacktrackingBlowup) {
  // Classic pathological case for backtrackers: (a*)*b on aaaa...a
  std::string input(64, 'a');
  auto re = Regex::Compile("(a*)*b");
  ASSERT_TRUE(re.ok());
  EXPECT_FALSE(re->FullMatch(input));  // completes instantly on a Pike VM
}

// ---- Property sweep: agreement with std::regex (ECMAScript) ----

struct RegexCase {
  const char* pattern;
};

class RegexAgreementTest : public ::testing::TestWithParam<RegexCase> {};

TEST_P(RegexAgreementTest, MatchesStdRegexOnRandomInputs) {
  const char* pattern = GetParam().pattern;
  auto mine = Regex::Compile(pattern);
  ASSERT_TRUE(mine.ok()) << pattern;
  std::regex reference(pattern);
  Rng rng(Fnv1a64(pattern));
  const std::string alphabet = "abc01 .";
  for (int i = 0; i < 300; ++i) {
    std::string input;
    size_t len = rng.Uniform(12);
    for (size_t j = 0; j < len; ++j) {
      input += alphabet[rng.Uniform(alphabet.size())];
    }
    bool expected_full = std::regex_match(input, reference);
    bool expected_partial = std::regex_search(input, reference);
    EXPECT_EQ(mine->FullMatch(input), expected_full)
        << "pattern=" << pattern << " input='" << input << "'";
    EXPECT_EQ(mine->PartialMatch(input), expected_partial)
        << "pattern=" << pattern << " input='" << input << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RegexAgreementTest,
    ::testing::Values(RegexCase{"a+b*"}, RegexCase{"(ab|ba)+"},
                      RegexCase{"[abc]+"}, RegexCase{"[^ab]+"},
                      RegexCase{"a.c"}, RegexCase{"a{2,4}"},
                      RegexCase{"(a|b)*c"}, RegexCase{"\\d+"},
                      RegexCase{"a?b?c?"}, RegexCase{"(a(b)?)+"},
                      RegexCase{"[a-c]{1,3}0"}, RegexCase{"a b"},
                      RegexCase{"(0|1)+ (a|b)+"}, RegexCase{"c[ab]*c"}));

}  // namespace
}  // namespace koko

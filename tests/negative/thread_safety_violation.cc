// Negative-compile fixture proving the thread-safety gate is live.
//
// Registered twice in CMakeLists.txt (clang only):
//
//  * thread_safety_positive_control — compiles this file as-is; the
//    correctly locked accessors below must pass `-Werror=thread-safety`.
//  * thread_safety_negative_compile — compiles with -DKOKO_SEED_VIOLATION,
//    exposing an unlocked write to a KOKO_GUARDED_BY member; the build
//    MUST fail (ctest WILL_FAIL). If this test ever "passes", the analysis
//    flags have silently stopped reaching the compiler and the whole
//    static gate is decorative.
//
// This file is compiled standalone (-fsyntax-only), never linked into the
// library or test binaries.

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() KOKO_EXCLUDES(mu_) {
    koko::MutexLock lock(mu_);
    ++value_;
  }

  int value() const KOKO_EXCLUDES(mu_) {
    koko::MutexLock lock(mu_);
    return value_;
  }

#ifdef KOKO_SEED_VIOLATION
  // Seeded lock-discipline violation: writes a guarded member with no lock
  // held. -Wthread-safety must reject this line.
  void IncrementUnlocked() { ++value_; }
#endif

 private:
  mutable koko::Mutex mu_;
  int value_ KOKO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
#ifdef KOKO_SEED_VIOLATION
  counter.IncrementUnlocked();
#endif
  return counter.value() == 1 ? 0 : 1;
}

// Golden-row parity net over the paper-figure workloads (src/replay).
//
// For every workload class a small-corpus golden result set — digest and
// row count per query, recorded from the seed-semantics path (monolithic
// index, planner off, no early termination, one thread) — lives in
// tests/golden/workloads.golden. Every test then asserts the live engine
// reproduces those rows byte-identically across the configuration
// cross-product: index variant (monolithic, sharded-built, sharded
// save/load kCopy, sharded save/load kMap with the file unlinked while
// mapped) x execution options (planner on/off, thread count, shard
// groups, max_rows with streaming early termination) x SIMD dispatch arm
// x concurrent QueryService clients.
//
// Regenerating the golden file (only when row semantics intentionally
// change): KOKO_REGEN_GOLDEN=1 ./workloads_test

#include "replay/workloads.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "index/sharded_index.h"
#include "serve/query_service.h"
#include "util/simd.h"

#ifndef KOKO_GOLDEN_DIR
#error "KOKO_GOLDEN_DIR must be defined (see koko_add_test in CMakeLists.txt)"
#endif

namespace koko {
namespace {

constexpr size_t kIndexShards = 3;
constexpr size_t kQueriesPerClass = 3;

std::string GoldenPath() {
  return std::string(KOKO_GOLDEN_DIR) + "/workloads.golden";
}

struct GoldenEntry {
  std::string digest_hex;
  size_t rows = 0;
};

// All four index variants a deployment can serve from. Parity across them
// is the point: build/save/load/mmap must never change a row.
struct IndexVariants {
  std::unique_ptr<KokoIndex> mono;
  std::unique_ptr<ShardedKokoIndex> sharded_built;
  std::unique_ptr<ShardedKokoIndex> sharded_copy;
  std::unique_ptr<ShardedKokoIndex> sharded_map;
};

constexpr size_t kTopK = 7;

struct ReferenceResult {
  std::string key;  // "<class>/<query_name>"
  QueryResult result;
  uint64_t digest = 0;
  /// Digest of the evaluate-then-truncate baseline at max_rows=kTopK.
  /// The row cap applies to extracted rows *before* the satisfying filter
  /// (both execution modes cut the same pending stream), so a capped run
  /// is not in general a prefix of the uncapped final rows — the parity
  /// contract for early termination is against this capped baseline.
  uint64_t capped_digest = 0;
};

struct World {
  Pipeline pipeline;
  EmbeddingModel embeddings;
  std::vector<replay::Workload> workloads;
  std::vector<IndexVariants> variants;                // per workload
  std::vector<std::vector<ReferenceResult>> reference;  // per workload/query

  const EntityRecognizer* recognizer() const {
    return &pipeline.recognizer();
  }
};

// Seed-semantics reference configuration: the execution path whose rows
// the golden file records.
EngineOptions ReferenceOptions() {
  EngineOptions options;
  options.use_planner = false;
  options.early_terminate = false;
  options.num_threads = 1;
  return options;
}

const World& GetWorld() {
  static World* world = [] {
    auto* w = new World();
    replay::WorkloadOptions options;
    options.scale = 1;
    options.queries_per_class = kQueriesPerClass;
    auto workloads = replay::BuildAllWorkloads(w->pipeline, options);
    if (!workloads.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   workloads.status().ToString().c_str());
      std::abort();
    }
    w->workloads = std::move(*workloads);
    for (const replay::Workload& workload : w->workloads) {
      IndexVariants v;
      v.mono = KokoIndex::Build(workload.corpus);
      v.sharded_built = ShardedKokoIndex::Build(workload.corpus, kIndexShards);
      const std::string path = "workloads_test_" + workload.name + ".idx";
      if (!v.sharded_built->Save(path).ok()) std::abort();
      ShardedKokoIndex::LoadOptions copy_load;
      copy_load.mode = LoadMode::kCopy;
      auto copied = ShardedKokoIndex::Load(path, copy_load);
      ShardedKokoIndex::LoadOptions map_load;
      map_load.mode = LoadMode::kMap;
      auto mapped = ShardedKokoIndex::Load(path, map_load);
      // Unlink while mapped: the serving lifetime contract.
      std::remove(path.c_str());
      if (!copied.ok() || !mapped.ok()) std::abort();
      v.sharded_copy = std::move(*copied);
      v.sharded_map = std::move(*mapped);

      Engine engine(&workload.corpus, v.mono.get(), &w->embeddings,
                    w->recognizer());
      std::vector<ReferenceResult> refs;
      for (const replay::WorkloadQuery& query : workload.queries) {
        auto result = engine.Execute(query.query, ReferenceOptions());
        if (!result.ok()) {
          std::fprintf(stderr, "reference run failed (%s/%s): %s\n",
                       workload.name.c_str(), query.name.c_str(),
                       result.status().ToString().c_str());
          std::abort();
        }
        ReferenceResult ref;
        ref.key = workload.name + "/" + query.name;
        ref.result = std::move(*result);
        ref.digest = replay::RowDigest(ref.result);
        EngineOptions capped = ReferenceOptions();
        capped.max_rows = kTopK;
        auto capped_result = engine.Execute(query.query, capped);
        if (!capped_result.ok()) std::abort();
        ref.capped_digest = replay::RowDigest(*capped_result);
        refs.push_back(std::move(ref));
      }
      w->variants.push_back(std::move(v));
      w->reference.push_back(std::move(refs));
    }
    return w;
  }();
  return *world;
}

std::map<std::string, GoldenEntry> ReadGolden() {
  std::map<std::string, GoldenEntry> golden;
  std::ifstream in(GoldenPath());
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key;
    GoldenEntry entry;
    fields >> key >> entry.digest_hex >> entry.rows;
    if (!key.empty()) golden[key] = entry;
  }
  return golden;
}

// The golden file is the recorded seed semantics; everything else in this
// suite derives its expectation from the in-memory reference, so this is
// the one place where a semantic drift of the reference path itself —
// generator, annotation pipeline, engine — gets caught.
TEST(WorkloadGoldenTest, ReferenceMatchesGoldenFile) {
  const World& world = GetWorld();
  if (std::getenv("KOKO_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    out << "# Golden row digests for the paper-figure workloads.\n"
        << "# <class>/<query> <row-digest-hex> <row-count>\n"
        << "# Recorded from the seed-semantics path (monolithic index,\n"
        << "# planner off, early termination off, one thread) at scale 1,\n"
        << "# " << kQueriesPerClass << " queries per class, seed 0.\n"
        << "# Regenerate: KOKO_REGEN_GOLDEN=1 ./workloads_test\n";
    for (const auto& refs : world.reference) {
      for (const ReferenceResult& ref : refs) {
        out << ref.key << " " << replay::DigestHex(ref.digest) << " "
            << ref.result.rows.size() << "\n";
      }
    }
    ASSERT_TRUE(out.good()) << "failed writing " << GoldenPath();
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  const std::map<std::string, GoldenEntry> golden = ReadGolden();
  ASSERT_FALSE(golden.empty())
      << GoldenPath()
      << " missing or empty; regenerate with KOKO_REGEN_GOLDEN=1";
  size_t checked = 0;
  for (const auto& refs : world.reference) {
    for (const ReferenceResult& ref : refs) {
      auto it = golden.find(ref.key);
      ASSERT_NE(it, golden.end()) << "no golden entry for " << ref.key;
      EXPECT_EQ(replay::DigestHex(ref.digest), it->second.digest_hex)
          << ref.key << " rows diverged from recorded seed semantics";
      EXPECT_EQ(ref.result.rows.size(), it->second.rows) << ref.key;
      ++checked;
    }
  }
  // Stale golden entries (removed/renamed queries) must not linger.
  EXPECT_EQ(golden.size(), checked)
      << "golden file has entries no workload produces; regenerate";
}

// One execution-option arm of the cross-product.
struct OptionArm {
  const char* name;
  bool use_planner;
  size_t num_threads;
  size_t num_shards;  // execution shard groups (0 = engine default)
  size_t max_rows;    // 0 = unlimited
};

const OptionArm kOptionArms[] = {
    {"planner_off_t1", false, 1, 0, 0},
    {"planner_on_t1", true, 1, 0, 0},
    {"planner_on_t3_g2", true, 3, 2, 0},
    {"planner_on_topk", true, 3, 0, kTopK},
};

EngineOptions ArmOptions(const OptionArm& arm) {
  EngineOptions options;
  options.use_planner = arm.use_planner;
  options.num_threads = arm.num_threads;
  options.num_shards = arm.num_shards;
  if (arm.max_rows != 0) {
    options.max_rows = arm.max_rows;
    options.early_terminate = true;
  } else {
    options.early_terminate = false;
  }
  return options;
}

// Uncapped arms match the full reference; the capped arm matches the
// evaluate-then-truncate baseline at the same max_rows (early termination
// must cut the identical pending-row stream at the identical point).
uint64_t ExpectedDigest(const ReferenceResult& ref, size_t max_rows) {
  return max_rows == 0 ? ref.digest : ref.capped_digest;
}

void CheckEngineArm(const World& world, size_t wi, Engine& engine,
                    const std::string& context) {
  const replay::Workload& workload = world.workloads[wi];
  for (const OptionArm& arm : kOptionArms) {
    const EngineOptions options = ArmOptions(arm);
    for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
      const ReferenceResult& ref = world.reference[wi][qi];
      auto result = engine.Execute(workload.queries[qi].query, options);
      ASSERT_TRUE(result.ok())
          << context << "/" << arm.name << " " << ref.key << ": "
          << result.status().ToString();
      EXPECT_EQ(replay::RowDigest(*result), ExpectedDigest(ref, arm.max_rows))
          << context << "/" << arm.name << " " << ref.key
          << " rows diverged from reference";
      if (arm.max_rows != 0) {
        EXPECT_LE(result->rows.size(), arm.max_rows)
            << context << "/" << arm.name << " " << ref.key;
      }
    }
  }
}

// The tentpole cross-product: every index variant x every option arm x
// every workload query must reproduce the reference rows byte for byte.
TEST(WorkloadParityTest, CrossProductMatchesReference) {
  const World& world = GetWorld();
  for (size_t wi = 0; wi < world.workloads.size(); ++wi) {
    const replay::Workload& workload = world.workloads[wi];
    const IndexVariants& v = world.variants[wi];
    ASSERT_TRUE(v.sharded_map->mapped());
    {
      Engine engine(&workload.corpus, v.mono.get(), &world.embeddings,
                    world.recognizer());
      CheckEngineArm(world, wi, engine, workload.name + "/mono");
    }
    {
      Engine engine(&workload.corpus, v.sharded_built.get(), &world.embeddings,
                    world.recognizer());
      CheckEngineArm(world, wi, engine, workload.name + "/sharded_built");
    }
    {
      Engine engine(&workload.corpus, v.sharded_copy.get(), &world.embeddings,
                    world.recognizer());
      CheckEngineArm(world, wi, engine, workload.name + "/load_copy");
    }
    {
      Engine engine(&workload.corpus, v.sharded_map.get(), &world.embeddings,
                    world.recognizer());
      CheckEngineArm(world, wi, engine, workload.name + "/load_map");
    }
  }
}

// SIMD arm of the cross-product: every available ISA must produce the
// reference rows from the mapped image (the dispatch point all posting
// decodes go through). KOKO_SIMD=scalar in CI covers the env override.
TEST(WorkloadParityTest, EverySimdIsaMatchesReference) {
  const World& world = GetWorld();
  const simd::Isa native = simd::ActiveIsa();
  for (simd::Isa isa : simd::AvailableIsas()) {
    simd::SetActiveIsa(isa);
    for (size_t wi = 0; wi < world.workloads.size(); ++wi) {
      const replay::Workload& workload = world.workloads[wi];
      Engine engine(&workload.corpus, world.variants[wi].sharded_map.get(),
                    &world.embeddings, world.recognizer());
      EngineOptions options;
      options.num_threads = 2;
      for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
        auto result = engine.Execute(workload.queries[qi].query, options);
        ASSERT_TRUE(result.ok()) << world.reference[wi][qi].key;
        EXPECT_EQ(replay::RowDigest(*result), world.reference[wi][qi].digest)
            << "isa=" << static_cast<int>(isa) << " "
            << world.reference[wi][qi].key;
      }
    }
  }
  simd::SetActiveIsa(native);
}

// Serving arm: concurrent clients through one QueryService (shared score
// and plan caches, admission control) over the mapped image. Two rounds
// per client so the second runs against warm caches — cached and uncached
// paths must be row-identical.
TEST(WorkloadParityTest, ConcurrentServiceClientsMatchReference) {
  const World& world = GetWorld();
  for (size_t wi = 0; wi < world.workloads.size(); ++wi) {
    const replay::Workload& workload = world.workloads[wi];
    Engine engine(&workload.corpus, world.variants[wi].sharded_map.get(),
                  &world.embeddings, world.recognizer());
    QueryService::Options service_options;
    service_options.num_threads = 3;
    service_options.max_inflight = 3;
    QueryService service(&engine, service_options, kIndexShards);

    constexpr int kClients = 3;
    std::vector<size_t> mismatches(kClients, 0);
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        for (int round = 0; round < 2; ++round) {
          for (size_t qi = 0; qi < workload.queries.size(); ++qi) {
            auto result = service.Run(workload.queries[qi].query);
            if (!result.ok() ||
                replay::RowDigest(*result) != world.reference[wi][qi].digest) {
              ++mismatches[static_cast<size_t>(c)];
            }
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(mismatches[static_cast<size_t>(c)], 0u)
          << workload.name << " client " << c;
    }
    const QueryService::Stats stats = service.stats();
    EXPECT_EQ(stats.completed,
              static_cast<uint64_t>(kClients * 2) * workload.queries.size());
  }
}

}  // namespace
}  // namespace koko

#include "parser/dep_parser.h"

#include <gtest/gtest.h>

#include "corpus/generators.h"
#include "nlp/pipeline.h"
#include "util/rng.h"

namespace koko {
namespace {

Sentence Parse(const std::string& text) {
  Pipeline pipeline;
  return pipeline.AnnotateSentence(text);
}

DepLabel LabelOf(const Sentence& s, const std::string& word) {
  for (const Token& t : s.tokens) {
    if (t.text == word) return t.label;
  }
  ADD_FAILURE() << "token not found: " << word;
  return DepLabel::kDep;
}

int IndexOf(const Sentence& s, const std::string& word) {
  for (int i = 0; i < s.size(); ++i) {
    if (s.tokens[i].text == word) return i;
  }
  return -1;
}

TEST(DepParserTest, FigureOneStructure) {
  Sentence s = Parse(
      "I ate a chocolate ice cream, which was delicious, and also ate a pie.");
  ASSERT_EQ(s.size(), 17);
  EXPECT_EQ(s.root, 1);  // first "ate"
  EXPECT_EQ(s.tokens[0].label, DepLabel::kNsubj);
  EXPECT_EQ(s.tokens[2].label, DepLabel::kDet);
  EXPECT_EQ(s.tokens[3].label, DepLabel::kNn);
  EXPECT_EQ(s.tokens[4].label, DepLabel::kNn);
  EXPECT_EQ(s.tokens[5].label, DepLabel::kDobj);
  EXPECT_EQ(s.tokens[5].head, 1);
  EXPECT_EQ(s.tokens[7].label, DepLabel::kNsubj);   // which
  EXPECT_EQ(s.tokens[8].label, DepLabel::kRcmod);   // was
  EXPECT_EQ(s.tokens[8].head, 5);                   // attaches to cream
  EXPECT_EQ(s.tokens[9].label, DepLabel::kAcomp);   // delicious
  EXPECT_EQ(s.tokens[11].label, DepLabel::kCc);     // and
  EXPECT_EQ(s.tokens[12].label, DepLabel::kAdvmod); // also
  EXPECT_EQ(s.tokens[13].label, DepLabel::kConj);   // second ate
  EXPECT_EQ(s.tokens[13].head, 1);                  // conjoined with root
  EXPECT_EQ(s.tokens[15].label, DepLabel::kDobj);   // pie
  EXPECT_EQ(s.tokens[15].head, 13);
}

TEST(DepParserTest, ExampleThreeOneStructure) {
  Sentence s = Parse(
      "Anna ate some delicious cheesecake that she bought at a grocery store.");
  ASSERT_EQ(s.size(), 13);
  EXPECT_EQ(LabelOf(s, "Anna"), DepLabel::kNsubj);
  EXPECT_EQ(LabelOf(s, "ate"), DepLabel::kRoot);
  EXPECT_EQ(LabelOf(s, "some"), DepLabel::kDet);
  EXPECT_EQ(LabelOf(s, "delicious"), DepLabel::kAmod);
  EXPECT_EQ(LabelOf(s, "cheesecake"), DepLabel::kDobj);
  EXPECT_EQ(LabelOf(s, "that"), DepLabel::kDobj);  // she bought *that*
  EXPECT_EQ(LabelOf(s, "she"), DepLabel::kNsubj);
  EXPECT_EQ(LabelOf(s, "bought"), DepLabel::kRcmod);
  EXPECT_EQ(LabelOf(s, "at"), DepLabel::kPrep);
  EXPECT_EQ(LabelOf(s, "grocery"), DepLabel::kNn);
  EXPECT_EQ(LabelOf(s, "store"), DepLabel::kPobj);
  // Subtree extent of "cheesecake" covers the relative clause.
  int cheesecake = IndexOf(s, "cheesecake");
  EXPECT_EQ(s.subtree_left[cheesecake], 2);
  EXPECT_GE(s.subtree_right[cheesecake], IndexOf(s, "store"));
}

TEST(DepParserTest, PrepositionAttachesToNoun) {
  Sentence s = Parse("Cities in asian countries grew quickly.");
  int in = IndexOf(s, "in");
  EXPECT_EQ(s.tokens[in].label, DepLabel::kPrep);
  EXPECT_EQ(s.tokens[in].head, IndexOf(s, "Cities"));
  EXPECT_EQ(LabelOf(s, "countries"), DepLabel::kPobj);
}

TEST(DepParserTest, NpCoordination) {
  Sentence s = Parse("She visited China and Japan.");
  int china = IndexOf(s, "China");
  int japan = IndexOf(s, "Japan");
  EXPECT_EQ(s.tokens[japan].label, DepLabel::kConj);
  EXPECT_EQ(s.tokens[japan].head, china);
  EXPECT_EQ(LabelOf(s, "and"), DepLabel::kCc);
}

TEST(DepParserTest, CopulaWithAttr) {
  Sentence s = Parse("Baking chocolate is a type of chocolate.");
  EXPECT_EQ(LabelOf(s, "is"), DepLabel::kRoot);
  EXPECT_EQ(LabelOf(s, "type"), DepLabel::kAttr);
  int of = IndexOf(s, "of");
  EXPECT_EQ(s.tokens[of].label, DepLabel::kPrep);
}

TEST(DepParserTest, AuxiliaryChain) {
  Sentence s = Parse("Cyd Charisse had been called Sid for years.");
  int called = IndexOf(s, "called");
  EXPECT_EQ(s.tokens[called].label, DepLabel::kRoot);
  EXPECT_EQ(LabelOf(s, "had"), DepLabel::kAux);
  EXPECT_EQ(LabelOf(s, "been"), DepLabel::kAux);
  int sid = IndexOf(s, "Sid");
  EXPECT_EQ(s.tokens[sid].head, called);
  EXPECT_EQ(s.tokens[sid].pos, PosTag::kPropn);
}

TEST(DepParserTest, VerblessSentenceGetsNounRoot) {
  Sentence s = Parse("A wonderful day at the beach.");
  EXPECT_GE(s.root, 0);
  EXPECT_EQ(s.tokens[s.root].label, DepLabel::kRoot);
}

TEST(DepParserTest, SingleTokenSentence) {
  Sentence s = Parse("Yes.");
  EXPECT_GE(s.root, 0);
  s.ComputeTreeInfo();
  EXPECT_EQ(s.depth[s.root], 0);
}

// ---- Tree invariants over generated corpora (property sweep) ----

struct InvariantCase {
  const char* name;
  int which;  // 0=happy, 1=wiki, 2=cafe, 3=tweets
};

class ParserInvariantTest : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(ParserInvariantTest, TreesAreWellFormed) {
  Pipeline pipeline;
  std::vector<RawDocument> docs;
  switch (GetParam().which) {
    case 0:
      docs = GenerateHappyMoments({.num_moments = 150, .seed = 11});
      break;
    case 1:
      docs = GenerateWikiArticles({.num_articles = 60, .seed = 12});
      break;
    case 2:
      docs = GenerateCafeBlogs({.num_articles = 25, .long_articles = false,
                                .seed = 13})
                 .docs;
      break;
    default:
      docs = GenerateTweets({.num_tweets = 150, .seed = 14}).docs;
      break;
  }
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  ASSERT_GT(corpus.NumSentences(), 0u);
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    // Exactly one root.
    int roots = 0;
    for (const Token& t : s.tokens) {
      if (t.head == -1) ++roots;
    }
    EXPECT_EQ(roots, 1) << "sid=" << sid << " text: " << s.Text();
    // Heads in range; acyclic (walking up terminates).
    for (int i = 0; i < s.size(); ++i) {
      ASSERT_LT(s.tokens[i].head, s.size());
      int cur = i;
      int steps = 0;
      while (cur != -1 && steps <= s.size()) {
        cur = s.tokens[cur].head;
        ++steps;
      }
      EXPECT_LE(steps, s.size()) << "cycle at sid=" << sid;
    }
    // Subtree extents contain the token and nest children within parents.
    for (int i = 0; i < s.size(); ++i) {
      EXPECT_LE(s.subtree_left[i], i);
      EXPECT_GE(s.subtree_right[i], i);
      int h = s.tokens[i].head;
      if (h >= 0) {
        EXPECT_LE(s.subtree_left[h], s.subtree_left[i]);
        EXPECT_GE(s.subtree_right[h], s.subtree_right[i]);
        EXPECT_EQ(s.depth[i], s.depth[h] + 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpora, ParserInvariantTest,
                         ::testing::Values(InvariantCase{"happy", 0},
                                           InvariantCase{"wiki", 1},
                                           InvariantCase{"cafe", 2},
                                           InvariantCase{"tweets", 3}),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace koko

#include <gtest/gtest.h>

#include "corpus/generators.h"
#include "extract/crf.h"
#include "extract/ike.h"
#include "extract/metrics.h"
#include "extract/nell.h"
#include "extract/odin.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

TEST(MetricsTest, NormalizeMention) {
  EXPECT_EQ(NormalizeMention("  Brim   House "), "brim house");
  EXPECT_EQ(NormalizeMention("CAFE"), "cafe");
}

TEST(MetricsTest, PerfectAndEmpty) {
  PRF perfect = ScoreExtractionLists({"A", "B"}, {"a", "b"});
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);
  PRF none = ScoreExtractionLists({"A"}, {});
  EXPECT_DOUBLE_EQ(none.recall, 0.0);
  EXPECT_DOUBLE_EQ(none.f1, 0.0);
}

TEST(MetricsTest, PartialOverlap) {
  PRF prf = ScoreExtractionLists({"a", "b", "c", "d"}, {"a", "b", "x"});
  EXPECT_EQ(prf.tp, 2u);
  EXPECT_EQ(prf.fp, 1u);
  EXPECT_EQ(prf.fn, 2u);
  EXPECT_NEAR(prf.precision, 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(prf.recall, 0.5, 1e-9);
}

TEST(CrfTest, LearnsSimpleBracketTask) {
  // Entities are always the token after "visit": learnable from context.
  std::vector<CrfExtractor::LabeledSentence> data;
  const char* fillers[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int i = 0; i < 40; ++i) {
    CrfExtractor::LabeledSentence s;
    s.tokens = {"we", "visit", fillers[i % 5], "today"};
    s.bio = {0, 0, 1, 0};
    data.push_back(s);
    CrfExtractor::LabeledSentence neg;
    neg.tokens = {"we", "like", fillers[(i + 1) % 5], "today"};
    neg.bio = {0, 0, 0, 0};
    data.push_back(neg);
  }
  CrfExtractor crf;
  crf.Train(data);
  auto spans = crf.ExtractSpans({"we", "visit", "zeta", "today"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (std::pair<int, int>{2, 2}));
  EXPECT_TRUE(crf.ExtractSpans({"we", "like", "zeta", "today"}).empty());
}

TEST(CrfTest, BioDecodingNeverStartsWithI) {
  CrfExtractor crf;
  auto labels = crf.Predict({"a", "b", "c"});
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_NE(labels[0], 2);
}

TEST(CrfTest, MakeTrainingDataLabelsMentions) {
  Pipeline pipeline;
  Document doc =
      pipeline.AnnotateDocument({"t", "We went to Brim House for coffee."}, 0);
  auto data = CrfExtractor::MakeTrainingData({&doc}, {"Brim House"});
  ASSERT_EQ(data.size(), 1u);
  const auto& s = data[0];
  int b_count = 0, i_count = 0;
  for (size_t i = 0; i < s.tokens.size(); ++i) {
    if (s.bio[i] == 1) {
      ++b_count;
      EXPECT_EQ(s.tokens[i], "Brim");
    }
    if (s.bio[i] == 2) {
      ++i_count;
      EXPECT_EQ(s.tokens[i], "House");
    }
  }
  EXPECT_EQ(b_count, 1);
  EXPECT_EQ(i_count, 1);
}

TEST(IkeTest, NounPhraseChunks) {
  Pipeline pipeline;
  Sentence s = pipeline.AnnotateSentence("The old barista poured a fresh latte.");
  auto chunks = NounPhraseChunks(s);
  ASSERT_GE(chunks.size(), 2u);
  // First chunk: "old barista" (leading determiner dropped).
  EXPECT_EQ(s.SpanText(chunks[0].first, chunks[0].second), "old barista");
}

TEST(IkeTest, LiteralThenCapture) {
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(
      {{"a", "We went to Brim House yesterday."},
       {"b", "We walked to the station."}});
  EmbeddingModel embeddings;
  IkeExtractor ike(&embeddings);
  auto result = ike.Run(corpus, "\"went to\" (NP)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], "Brim House");
}

TEST(IkeTest, SimilarityElementExpandsVerbs) {
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(
      {{"a", "Brim House sells espresso."}});  // "sells" ~ "serves"
  EmbeddingModel embeddings;
  IkeExtractor ike(&embeddings);
  auto result = ike.Run(corpus, "(NP) (\"serves coffee\" ~ 8)");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0], "Brim House");
  // But an intervening adjective defeats the rigid pattern.
  AnnotatedCorpus corpus2 = pipeline.AnnotateCorpus(
      {{"a", "Brim House sells delicious espresso."}});
  auto result2 = ike.Run(corpus2, "(NP) (\"serves coffee\" ~ 8)");
  ASSERT_TRUE(result2.ok());
  EXPECT_TRUE(result2->empty());
}

TEST(IkeTest, MalformedPatternRejected) {
  EmbeddingModel embeddings;
  IkeExtractor ike(&embeddings);
  AnnotatedCorpus empty;
  EXPECT_FALSE(ike.Run(empty, "(NP").ok());
  EXPECT_FALSE(ike.Run(empty, "").ok());
}

TEST(NellTest, BootstrapsFromSeeds) {
  LabeledCorpus blogs =
      GenerateCafeBlogs({.num_articles = 60, .long_articles = false, .seed = 91});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  std::vector<std::string> seeds(blogs.gold.begin(), blogs.gold.begin() + 10);
  NellExtractor nell;
  auto learned = nell.Bootstrap(corpus, seeds);
  // Conservative: finds something, but far from everything.
  EXPECT_LT(learned.size(), blogs.gold.size());
  // Seeds are never returned as "learned".
  for (const auto& seed : seeds) {
    EXPECT_EQ(std::count(learned.begin(), learned.end(),
                         NormalizeMention(seed)),
              0);
  }
}

TEST(OdinTest, SurfaceAndDependencyRules) {
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(
      {{"a", "Cyd Charisse had been called Sid for years."}});
  OdinRule dep;
  dep.name = "called-propn";
  dep.kind = OdinRule::Kind::kDependency;
  PathStep s1;
  s1.axis = PathStep::Axis::kDescendant;
  s1.constraint.word = "called";
  PathStep s2;
  s2.axis = PathStep::Axis::kChild;
  s2.constraint.pos = PosTag::kPropn;
  dep.path.steps = {s1, s2};
  OdinRule surf;
  surf.name = "before-called";
  surf.kind = OdinRule::Kind::kSurface;
  surf.trigger = {"called"};
  surf.capture_left = false;
  OdinExtractor odin;
  OdinExtractor::RunStats stats;
  auto mentions = odin.Run(corpus, {dep, surf}, &stats);
  EXPECT_GE(stats.iterations, 2);  // ran to fixpoint
  bool found_sid = false;
  for (const auto& m : mentions) found_sid |= (m == "Sid");
  EXPECT_TRUE(found_sid);
}

TEST(CorpusGenTest, Deterministic) {
  auto a = GenerateCafeBlogs({.num_articles = 10, .long_articles = false,
                              .seed = 5});
  auto b = GenerateCafeBlogs({.num_articles = 10, .long_articles = false,
                              .seed = 5});
  ASSERT_EQ(a.docs.size(), b.docs.size());
  for (size_t i = 0; i < a.docs.size(); ++i) {
    EXPECT_EQ(a.docs[i].text, b.docs[i].text);
  }
  EXPECT_EQ(a.gold, b.gold);
  auto c = GenerateCafeBlogs({.num_articles = 10, .long_articles = false,
                              .seed = 6});
  EXPECT_NE(a.docs[0].text, c.docs[0].text);
}

TEST(CorpusGenTest, GoldNamesAppearInText) {
  auto blogs =
      GenerateCafeBlogs({.num_articles = 20, .long_articles = true, .seed = 7});
  for (size_t i = 0; i < blogs.docs.size(); ++i) {
    EXPECT_NE(blogs.docs[i].text.find(blogs.gold[i]), std::string::npos)
        << blogs.gold[i];
  }
}

TEST(CorpusGenTest, TweetGoldConsistent) {
  auto tweets = GenerateTweets({.num_tweets = 200, .seed = 8});
  EXPECT_GT(tweets.gold_teams.size(), 0u);
  EXPECT_GT(tweets.gold_facilities.size(), 0u);
  std::string all;
  for (const auto& d : tweets.docs) all += d.text + "\n";
  for (const auto& team : tweets.gold_teams) {
    EXPECT_NE(all.find(team), std::string::npos) << team;
  }
}

TEST(CorpusGenTest, WikiSelectivities) {
  auto docs = GenerateWikiArticles({.num_articles = 400, .seed = 9});
  int with_born = 0, with_called = 0, with_chocolate = 0;
  for (const auto& d : docs) {
    if (d.text.find(" born ") != std::string::npos) ++with_born;
    if (d.text.find(" called ") != std::string::npos) ++with_called;
    if (d.text.find("chocolate") != std::string::npos) ++with_chocolate;
  }
  // The §6.3 selectivity bands: high / medium / low.
  EXPECT_GT(with_born, 400 * 0.6);
  EXPECT_GT(with_called, 400 * 0.04);
  EXPECT_LT(with_called, 400 * 0.25);
  EXPECT_LT(with_chocolate, 400 * 0.12);
}

}  // namespace
}  // namespace koko

#include "embed/embedding.h"

#include <gtest/gtest.h>

#include "embed/descriptor.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

TEST(EmbeddingTest, UnitNorm) {
  EmbeddingModel model;
  for (const char* w : {"serves", "coffee", "xyzzy", "tokyo"}) {
    const auto& v = model.Embed(w);
    double norm = 0;
    for (float x : v) norm += static_cast<double>(x) * x;
    EXPECT_NEAR(norm, 1.0, 1e-4) << w;
  }
}

TEST(EmbeddingTest, ClusterMembersAreClose) {
  EmbeddingModel model;
  EXPECT_GT(model.Similarity("serves", "sells"), 0.8);
  EXPECT_GT(model.Similarity("coffee", "espresso"), 0.8);
  EXPECT_GT(model.Similarity("delicious", "tasty"), 0.8);
}

TEST(EmbeddingTest, UnrelatedWordsAreFar) {
  EmbeddingModel model;
  EXPECT_LT(model.Similarity("serves", "coffee"), 0.3);
  EXPECT_LT(model.Similarity("barista", "city"), 0.3);
  EXPECT_LT(model.Similarity("xyzzy", "plugh"), 0.3);
}

TEST(EmbeddingTest, InstancesModeratelyCloseToTheirConcept) {
  EmbeddingModel model;
  for (const char* city : {"tokyo", "beijing", "paris"}) {
    double sim = model.Similarity(city, "city");
    EXPECT_GT(sim, 0.3) << city;
    EXPECT_LT(sim, 0.7) << city;
    EXPECT_LT(model.Similarity(city, "country"), 0.3) << city;
  }
  for (const char* country : {"china", "japan", "france"}) {
    EXPECT_GT(model.Similarity(country, "country"), 0.3) << country;
    EXPECT_LT(model.Similarity(country, "city"), 0.3) << country;
  }
}

TEST(EmbeddingTest, PluralStemming) {
  EmbeddingModel model;
  EXPECT_GT(model.Similarity("cappuccinos", "espresso"), 0.7);
  EXPECT_GT(model.Similarity("lattes", "coffee"), 0.7);
}

TEST(EmbeddingTest, Deterministic) {
  EmbeddingModel a;
  EmbeddingModel b;
  EXPECT_EQ(a.Embed("espresso"), b.Embed("espresso"));
}

TEST(EmbeddingTest, NeighborsSortedAndBounded) {
  EmbeddingModel model;
  auto neighbors = model.Neighbors("serves", 3, 0.3);
  ASSERT_LE(neighbors.size(), 3u);
  ASSERT_GE(neighbors.size(), 2u);
  for (size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i - 1].score, neighbors[i].score);
  }
  for (const auto& n : neighbors) EXPECT_NE(n.text, "serves");
}

TEST(EmbeddingTest, CustomClusterRegistration) {
  EmbeddingModel model;
  model.AddParaphraseCluster({"frobnicate", "twiddle"});
  EXPECT_GT(model.Similarity("frobnicate", "twiddle"), 0.8);
}

TEST(DescriptorExpanderTest, ExpandsWithScores) {
  EmbeddingModel model;
  DescriptorExpander expander(&model);
  auto expansions = expander.Expand("serves coffee");
  ASSERT_FALSE(expansions.empty());
  // The original is first with score 1.0.
  EXPECT_EQ(expansions[0].text, "serves coffee");
  EXPECT_DOUBLE_EQ(expansions[0].score, 1.0);
  // Paraphrases are present with high scores.
  bool found_sells_espresso = false;
  for (const auto& e : expansions) {
    EXPECT_LE(e.score, 1.0);
    EXPECT_GT(e.score, 0.0);
    if (e.text == "sells espresso") found_sells_espresso = true;
  }
  EXPECT_TRUE(found_sells_espresso);
}

TEST(DescriptorExpanderTest, CapsExpansionCount) {
  EmbeddingModel model;
  DescriptorExpander::Options options;
  options.max_expansions = 5;
  DescriptorExpander expander(&model, options);
  EXPECT_LE(expander.Expand("serves coffee").size(), 5u);
}

TEST(DescriptorExpanderTest, FunctionWordsNotExpanded) {
  EmbeddingModel model;
  DescriptorExpander expander(&model);
  auto expansions = expander.Expand("in the city");
  for (const auto& e : expansions) {
    // "in" and "the" must appear verbatim in every expansion.
    EXPECT_EQ(e.text.substr(0, 7), "in the ");
  }
}

TEST(DescriptorExpanderTest, OntologySetAddsSafeSubstitutes) {
  EmbeddingModel model;
  DescriptorExpander expander(&model);
  expander.AddOntologySet({"coffee", "cortado"});
  auto expansions = expander.Expand("serves coffee");
  bool found = false;
  for (const auto& e : expansions) found |= (e.text == "serves cortado");
  EXPECT_TRUE(found);
}

TEST(SentenceDecomposerTest, SplitsClauses) {
  Pipeline pipeline;
  Sentence s = pipeline.AnnotateSentence(
      "I ate a chocolate ice cream, which was delicious, and also ate a pie.");
  auto clauses = SentenceDecomposer::Decompose(s);
  ASSERT_GE(clauses.size(), 3u);  // main + relative + coordinated
  // Main clause has score 1.0 and contains the first "ate".
  EXPECT_DOUBLE_EQ(clauses[0].score, 1.0);
  bool main_has_ate = false;
  for (int t : clauses[0].token_ids) main_has_ate |= (s.tokens[t].text == "ate");
  EXPECT_TRUE(main_has_ate);
  // Subordinate clauses score lower.
  for (size_t i = 1; i < clauses.size(); ++i) {
    EXPECT_LT(clauses[i].score, 1.0);
  }
  // Every non-punct token lands in exactly one clause.
  std::vector<int> count(static_cast<size_t>(s.size()), 0);
  for (const auto& c : clauses) {
    for (int t : c.token_ids) count[static_cast<size_t>(t)]++;
  }
  for (int t = 0; t < s.size(); ++t) {
    if (s.tokens[t].pos != PosTag::kPunct) {
      EXPECT_EQ(count[static_cast<size_t>(t)], 1) << "token " << t;
    }
  }
}

TEST(SentenceDecomposerTest, SimpleSentenceIsOneClause) {
  Pipeline pipeline;
  Sentence s = pipeline.AnnotateSentence("Anna ate a pie.");
  auto clauses = SentenceDecomposer::Decompose(s);
  ASSERT_EQ(clauses.size(), 1u);
  EXPECT_DOUBLE_EQ(clauses[0].score, 1.0);
}

}  // namespace
}  // namespace koko

// Regression tests for bench::JsonEmitter: the BENCH_*.json artifacts must
// stay parseable by the CI consumers no matter what names or values a bench
// emits — quotes/backslashes/control characters in names are escaped, and
// NaN/inf values (a zero-duration phase ratio, a failed measurement) emit
// as null instead of invalid tokens.
#include "bench_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace koko {
namespace {

std::string WriteAndRead(const bench::JsonEmitter& emitter,
                         const std::string& tag) {
  std::string path = ::testing::TempDir() + "/bench_json_test_" + tag + ".json";
  EXPECT_TRUE(emitter.WriteFile(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(JsonEmitterTest, EscapesQuotesBackslashesAndControlChars) {
  bench::JsonEmitter emitter("serve");
  emitter.AddEntry("query=\"extract \\ from\"\nline2\ttab",
                   {{"rows", 3}, {"with \"quote\"", 1}});
  std::string json = WriteAndRead(emitter, "escape");
  // Escaped forms present...
  EXPECT_NE(json.find("\\\"extract \\\\ from\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\"with \\\"quote\\\"\""), std::string::npos);
  // ...and no raw control characters survive inside the file.
  EXPECT_EQ(json.find('\t'), std::string::npos);
  for (size_t at = json.find('\n'); at != std::string::npos;
       at = json.find('\n', at + 1)) {
    // Newlines only as inter-token formatting, never inside a string: the
    // preceding non-space character must be structural.
    size_t prev = json.find_last_not_of(" \n", at);
    ASSERT_NE(prev, std::string::npos);
    EXPECT_NE(std::string("{}[],:").find(json[prev]), std::string::npos)
        << "raw newline inside a string near offset " << at;
  }
}

TEST(JsonEmitterTest, NonFiniteValuesEmitNull) {
  bench::JsonEmitter emitter("serve");
  emitter.SetMeta("nan_meta", std::nan(""));
  emitter.AddEntry("entry",
                   {{"inf", std::numeric_limits<double>::infinity()},
                    {"ninf", -std::numeric_limits<double>::infinity()},
                    {"finite", 2.5}});
  std::string json = WriteAndRead(emitter, "nonfinite");
  EXPECT_NE(json.find("\"nan_meta\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"inf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"ninf\": null"), std::string::npos);
  EXPECT_NE(json.find("\"finite\": 2.5"), std::string::npos);
  EXPECT_EQ(json.find("nan("), std::string::npos);
  EXPECT_EQ(json.find("inf,"), std::string::npos);
}

TEST(JsonEmitterTest, StringValuedFieldsEmitQuotedAndEscaped) {
  // The load benches tag entries with load_mode: "copy" | "map"; string
  // fields must emit as quoted JSON strings (escaped like names) next to
  // the numeric fields.
  bench::JsonEmitter emitter("shard_scaleup");
  emitter.AddEntry("load/K=2",
                   {{"load_mode", "map"}, {"odd \"label\"", "a\\b"}},
                   {{"shards", 2}, {"load_s", 0.5}});
  std::string json = WriteAndRead(emitter, "strings");
  EXPECT_NE(json.find("\"load_mode\": \"map\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"odd \\\"label\\\"\": \"a\\\\b\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"shards\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"load_s\": 0.5"), std::string::npos);
  // String fields precede numeric ones with a comma between.
  EXPECT_LT(json.find("\"load_mode\""), json.find("\"shards\""));
}

TEST(JsonEmitterTest, ControlCharsBelowSpaceUseUnicodeEscapes) {
  bench::JsonEmitter emitter("serve");
  std::string name = "ctl";
  name.push_back('\x01');
  emitter.AddEntry(name, {{"v", 1}});
  std::string json = WriteAndRead(emitter, "ctl");
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

}  // namespace
}  // namespace koko

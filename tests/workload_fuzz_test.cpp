// Randomized query-generator property test: for ANY generated query shape
// (tree paths, span terms, weighted satisfying clauses — src/replay/fuzz.h),
// the planner must be a pure optimisation. Planner-on rows == planner-off
// rows at every shard count, thread count, and row cap. Each case logs its
// seed and query text, so a failure is a one-line reproducible
// counterexample (KOKO_FUZZ_SEED=<n> to replay a specific seed).

#include "replay/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "corpus/generators.h"
#include "index/sharded_index.h"
#include "replay/workloads.h"

namespace koko {
namespace {

uint64_t FuzzSeed() {
  const char* env = std::getenv("KOKO_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 7;
}

EngineOptions ReferenceOptions() {
  EngineOptions options;
  options.use_planner = false;
  options.early_terminate = false;
  options.num_threads = 1;
  return options;
}

TEST(WorkloadFuzzTest, PlannerParityAcrossShardsThreadsAndCaps) {
  Pipeline pipeline;
  EmbeddingModel embeddings;
  const uint64_t seed = FuzzSeed();
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = seed ^ 0x9e37});
  const AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);

  replay::FuzzOptions fuzz;
  fuzz.count = 20;
  fuzz.seed = seed;
  const std::vector<replay::WorkloadQuery> queries =
      replay::GenerateFuzzQueries(corpus, fuzz);
  ASSERT_EQ(queries.size(), fuzz.count);

  for (size_t num_index_shards : {1u, 3u}) {
    auto index = ShardedKokoIndex::Build(corpus, num_index_shards);
    Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
    for (const replay::WorkloadQuery& query : queries) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " K=" +
                   std::to_string(num_index_shards) + " " + query.name + ": " +
                   query.text);
      auto reference = engine.Execute(query.query, ReferenceOptions());
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      const uint64_t want = replay::RowDigest(*reference);

      // Planner on, serial and parallel: full row parity.
      for (size_t num_threads : {1u, 3u}) {
        EngineOptions planned;
        planned.use_planner = true;
        planned.early_terminate = false;
        planned.num_threads = num_threads;
        auto result = engine.Execute(query.query, planned);
        ASSERT_TRUE(result.ok())
            << "t=" << num_threads << ": " << result.status().ToString();
        EXPECT_EQ(replay::RowDigest(*result), want)
            << "planner-on rows diverged at num_threads=" << num_threads;
      }

      // Planner on with a streaming row cap vs the planner-off
      // evaluate-then-truncate baseline at the same cap: early
      // termination and the planner together must still cut the same
      // pending-row stream at the same point.
      constexpr size_t kCap = 5;
      EngineOptions capped_reference = ReferenceOptions();
      capped_reference.max_rows = kCap;
      auto baseline = engine.Execute(query.query, capped_reference);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
      EngineOptions capped;
      capped.use_planner = true;
      capped.early_terminate = true;
      capped.max_rows = kCap;
      auto result = engine.Execute(query.query, capped);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_LE(result->rows.size(), kCap);
      EXPECT_EQ(replay::RowDigest(*result), replay::RowDigest(*baseline))
          << "capped planner-on rows diverged from the capped baseline";
    }
  }
}

}  // namespace
}  // namespace koko

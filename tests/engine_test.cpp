#include "koko/engine.h"

#include <gtest/gtest.h>

#include <set>

#include "corpus/generators.h"
#include "corpus/query_gen.h"
#include "index/koko_index.h"
#include "index/sharded_index.h"
#include "nlp/pipeline.h"

namespace koko {
namespace {

struct World {
  Pipeline pipeline;
  AnnotatedCorpus corpus;
  std::unique_ptr<KokoIndex> index;
  EmbeddingModel embeddings;
  std::unique_ptr<Engine> engine;

  explicit World(std::initializer_list<RawDocument> docs)
      : World(std::vector<RawDocument>(docs)) {}
  explicit World(const std::vector<RawDocument>& docs) {
    corpus = pipeline.AnnotateCorpus(docs);
    index = KokoIndex::Build(corpus);
    engine = std::make_unique<Engine>(&corpus, index.get(), &embeddings,
                                      &const_cast<const Pipeline&>(pipeline)
                                           .recognizer());
  }
};

TEST(EngineTest, ExampleTwoOneBindings) {
  World w({{"d",
            "I ate a chocolate ice cream, which was delicious, and also ate a "
            "pie. Anna ate some delicious cheesecake that she bought at a "
            "grocery store."}});
  auto result = w.engine->ExecuteText(R"(
      extract e:Entity, d:Str from "input.txt" if (
        /ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) }
        (b) in (e)))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].values[0], "chocolate ice cream");
  EXPECT_EQ(result->rows[0].values[1],
            "a chocolate ice cream , which was delicious");
  EXPECT_EQ(result->rows[1].values[0], "cheesecake");
}

TEST(EngineTest, EmptyWhenWordAbsent) {
  World w({{"d", "I ate a pie."}});
  auto result = w.engine->ExecuteText(R"(
      extract d:Str from "t" if (
        /ROOT:{ a = //verb, b = a/dobj, c = b//"delicious", d = (b.subtree) }))");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->candidate_sentences, 0u);  // DPLI short-circuits
}

TEST(EngineTest, HorizontalConditionWithElastics) {
  World w({{"d", "Anna quietly ate a delicious pie."}});
  auto result = w.engine->ExecuteText(R"(
      extract x:Str from "t" if (
        /ROOT:{ v = //verb, x = "Anna" + ^ + v + ^ + "pie" }))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], "Anna quietly ate a delicious pie");
}

TEST(EngineTest, AdjacencyRequiredWithoutElastic) {
  World w({{"d", "Anna quietly ate a pie."}});
  // "Anna" + verb requires adjacency: "quietly" intervenes -> no match.
  auto no = w.engine->ExecuteText(R"(
      extract x:Str from "t" if ( /ROOT:{ v = //verb, x = "Anna" + v }))");
  ASSERT_TRUE(no.ok());
  EXPECT_TRUE(no->rows.empty());
  // With an elastic the same pattern matches.
  auto yes = w.engine->ExecuteText(R"(
      extract x:Str from "t" if ( /ROOT:{ v = //verb, x = "Anna" + ^ + v }))");
  ASSERT_TRUE(yes.ok());
  EXPECT_EQ(yes->rows.size(), 1u);
}

TEST(EngineTest, ElasticBoundsRespected) {
  World w({{"d", "Anna quickly and quietly ate a pie."}});
  auto bounded = w.engine->ExecuteText(R"(
      extract x:Str from "t" if (
        /ROOT:{ v = //verb, x = "Anna" + ^[max=2] + v }))");
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded->rows.empty());  // gap is 3 tokens
  auto wide = w.engine->ExecuteText(R"(
      extract x:Str from "t" if (
        /ROOT:{ v = //verb, x = "Anna" + ^[max=4] + v }))");
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->rows.size(), 1u);
}

TEST(EngineTest, EqConstraint) {
  World w({{"d", "Anna ate a pie."}});
  auto result = w.engine->ExecuteText(R"(
      extract x:Str from "t" if (
        /ROOT:{ v = //verb, b = v/dobj, x = (b.subtree), y = "a" + "pie" }
        (y) eq (x)))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST(EngineTest, ParentOfConstraintFromRelativePath) {
  World w({{"d", "Anna ate a delicious pie."}});
  // b = a/dobj derives (a parentOf b): head of the dobj must be that verb.
  auto result = w.engine->ExecuteText(R"(
      extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], "pie");
}

TEST(EngineTest, GspEqualsNogspOnSyntheticSpans) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = 33});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 6, .seed = 34});
  ASSERT_FALSE(queries.empty());
  for (const auto& bench : queries) {
    EngineOptions gsp;
    gsp.use_gsp = true;
    gsp.max_rows = 50000;
    EngineOptions nogsp;
    nogsp.use_gsp = false;
    nogsp.max_rows = 50000;
    auto a = engine.Execute(bench.query, gsp);
    auto b = engine.Execute(bench.query, nogsp);
    ASSERT_TRUE(a.ok()) << bench.name;
    ASSERT_TRUE(b.ok()) << bench.name;
    std::set<std::pair<uint32_t, std::string>> rows_a, rows_b;
    for (const auto& row : a->rows) rows_a.insert({row.sid, row.values[0]});
    for (const auto& row : b->rows) rows_b.insert({row.sid, row.values[0]});
    EXPECT_EQ(rows_a, rows_b) << bench.name;
  }
}

TEST(EngineTest, IndexPruningMatchesFullScan) {
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 40, .seed = 35});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query = R"(
      extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))";
  EngineOptions with_index;
  EngineOptions no_index;
  no_index.use_index = false;
  auto a = engine.ExecuteText(query, with_index);
  auto b = engine.ExecuteText(query, no_index);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rows.size(), b->rows.size());
  EXPECT_LE(a->candidate_sentences, b->candidate_sentences);
}

TEST(EngineTest, SatisfyingThresholdFiltersRows) {
  World w({{"d", "Cities in asian countries such as China and Japan."}});
  auto low = w.engine->ExecuteText(R"(
      extract a:GPE from "t" if ()
      satisfying a (a SimilarTo "country" {1.0}) with threshold 0.3)");
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->rows.size(), 2u);  // China, Japan
  auto high = w.engine->ExecuteText(R"(
      extract a:GPE from "t" if ()
      satisfying a (a SimilarTo "country" {1.0}) with threshold 0.99)");
  ASSERT_TRUE(high.ok());
  EXPECT_TRUE(high->rows.empty());
}

TEST(EngineTest, ExcludingRemovesMatches) {
  World w({{"d", "Anna visited the Brim Cafe in Portland."}});
  auto all = w.engine->ExecuteText(R"(
      extract x:Entity from "t" if ()
      satisfying x (str(x) contains "Cafe" {1}) with threshold 0.5)");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->rows.size(), 1u);
  auto excluded = w.engine->ExecuteText(R"(
      extract x:Entity from "t" if ()
      satisfying x (str(x) contains "Cafe" {1}) with threshold 0.5
      excluding (str(x) matches "Brim Cafe"))");
  ASSERT_TRUE(excluded.ok());
  EXPECT_TRUE(excluded->rows.empty());
}

TEST(EngineTest, PhaseStatsPopulated) {
  World w({{"d", "Anna ate a delicious pie."}});
  auto result = w.engine->ExecuteText(R"(
      extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))");
  ASSERT_TRUE(result.ok());
  const auto& phases = result->phases.all();
  EXPECT_TRUE(phases.count("Normalize"));
  EXPECT_TRUE(phases.count("DPLI"));
  EXPECT_TRUE(phases.count("LoadArticle"));
  EXPECT_TRUE(phases.count("extract"));
}

TEST(EngineTest, MaxRowsLimit) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 36});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  EngineOptions options;
  options.max_rows = 5;
  auto result = engine.ExecuteText(
      "extract v:Str from \"t\" if ( /ROOT:{ v = //verb })", options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->rows.size(), 5u);
}

TEST(EngineTest, DocumentStoreProducesSameRows) {
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 25, .seed = 37});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  DocumentStore store = DocumentStore::FromCorpus(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  auto direct = engine.ExecuteText(query);
  engine.set_document_store(&store);
  auto via_store = engine.ExecuteText(query);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(via_store.ok());
  ASSERT_EQ(direct->rows.size(), via_store->rows.size());
  for (size_t i = 0; i < direct->rows.size(); ++i) {
    EXPECT_EQ(direct->rows[i].values, via_store->rows[i].values);
  }
}

// Asserts that every field of every row (and the row order) is identical.
void ExpectIdenticalResults(const QueryResult& a, const QueryResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << context;
  EXPECT_EQ(a.candidate_sentences, b.candidate_sentences) << context;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    EXPECT_EQ(a.rows[i].doc, b.rows[i].doc) << context << " row " << i;
    EXPECT_EQ(a.rows[i].sid, b.rows[i].sid) << context << " row " << i;
    EXPECT_EQ(a.rows[i].values, b.rows[i].values) << context << " row " << i;
    EXPECT_EQ(a.rows[i].scores, b.rows[i].scores) << context << " row " << i;
  }
}

TEST(EngineTest, ParallelExtractionIsDeterministic) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 150, .seed = 41});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 4, .seed = 42});
  ASSERT_FALSE(queries.empty());
  for (const auto& bench : queries) {
    EngineOptions serial;
    serial.max_rows = 50000;
    serial.num_threads = 1;
    EngineOptions parallel = serial;
    parallel.num_threads = 4;
    auto a = engine.Execute(bench.query, serial);
    auto b = engine.Execute(bench.query, parallel);
    ASSERT_TRUE(a.ok()) << bench.name;
    ASSERT_TRUE(b.ok()) << bench.name;
    ExpectIdenticalResults(*a, *b, bench.name);
  }
}

TEST(EngineTest, ParallelMaxRowsTruncationIsDeterministic) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 43});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  // A cap small enough to land mid-corpus (and mid-sentence for some value):
  // serial stops scanning early, parallel must truncate to the same prefix.
  for (size_t cap : {0u, 1u, 7u, 23u, 50u}) {
    EngineOptions serial;
    serial.max_rows = cap;
    EngineOptions parallel = serial;
    parallel.num_threads = 4;
    auto a = engine.ExecuteText(query, serial);
    auto b = engine.ExecuteText(query, parallel);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    // The emit protocol is push-then-check, so a cap of 0 still admits the
    // first row; every cap >= 1 is exact.
    EXPECT_LE(a->rows.size(), std::max<size_t>(cap, 1));
    ExpectIdenticalResults(*a, *b, "cap=" + std::to_string(cap));
  }
}

// ---- Sharding suite ---------------------------------------------------------
//
// For every query, the engine over a ShardedKokoIndex must return results
// byte-identical to the monolithic engine — same rows, same order, same
// candidate count — for every (num_shards, num_threads) combination,
// because per-shard DPLI candidate lists concatenate in ascending global
// sid order.

TEST(EngineTest, ShardedEngineMatchesMonolithic) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 150, .seed = 51});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto mono_index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine mono(&corpus, mono_index.get(), &embeddings,
              &const_cast<const Pipeline&>(pipeline).recognizer());
  auto queries = GenerateSyntheticSpanBenchmark(
      corpus, {.queries_per_setting = 3, .seed = 52});
  ASSERT_FALSE(queries.empty());
  EngineOptions base;
  base.max_rows = 50000;
  for (size_t k : {1u, 2u, 4u, 7u}) {
    auto sharded_index = ShardedKokoIndex::Build(corpus, k);
    Engine sharded(&corpus, sharded_index.get(), &embeddings,
                   &const_cast<const Pipeline&>(pipeline).recognizer());
    for (const auto& bench : queries) {
      auto want = mono.Execute(bench.query, base);
      ASSERT_TRUE(want.ok()) << bench.name;
      // Sweep (num_shards groups) x (num_threads): serial, shard-parallel,
      // and a group count that forces several shards into one DPLI task.
      struct Config {
        size_t num_shards;
        size_t num_threads;
      };
      for (const Config& config :
           {Config{0, 1}, Config{0, 4}, Config{2, 4}}) {
        EngineOptions options = base;
        options.num_shards = config.num_shards;
        options.num_threads = config.num_threads;
        auto got = sharded.Execute(bench.query, options);
        ASSERT_TRUE(got.ok()) << bench.name;
        ExpectIdenticalResults(*want, *got,
                               bench.name + " K=" + std::to_string(k) +
                                   " groups=" +
                                   std::to_string(config.num_shards) +
                                   " threads=" +
                                   std::to_string(config.num_threads));
      }
    }
  }
}

TEST(EngineTest, ShardedEngineUnevenBoundaries) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 80, .seed = 53});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  const uint32_t n = static_cast<uint32_t>(corpus.NumSentences());
  ASSERT_GE(n, 10u);
  auto mono_index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine mono(&corpus, mono_index.get(), &embeddings,
              &const_cast<const Pipeline&>(pipeline).recognizer());
  // Lopsided shards, including an empty one.
  ShardedKokoIndex::Options options;
  options.boundaries = {0, 2, 2, n / 2, n};
  auto sharded_index = ShardedKokoIndex::Build(corpus, options);
  Engine sharded(&corpus, sharded_index.get(), &embeddings,
                 &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  auto want = mono.ExecuteText(query);
  ASSERT_TRUE(want.ok());
  for (size_t threads : {1u, 4u}) {
    EngineOptions engine_options;
    engine_options.num_threads = threads;
    auto got = sharded.ExecuteText(query, engine_options);
    ASSERT_TRUE(got.ok());
    ExpectIdenticalResults(*want, *got,
                           "uneven threads=" + std::to_string(threads));
  }
}

TEST(EngineTest, ShardedMaxRowsTruncationIsDeterministic) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 54});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto mono_index = KokoIndex::Build(corpus);
  auto sharded_index = ShardedKokoIndex::Build(corpus, 4);
  EmbeddingModel embeddings;
  Engine mono(&corpus, mono_index.get(), &embeddings,
              &const_cast<const Pipeline&>(pipeline).recognizer());
  Engine sharded(&corpus, sharded_index.get(), &embeddings,
                 &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";
  for (size_t cap : {0u, 1u, 7u, 23u, 50u}) {
    EngineOptions serial;
    serial.max_rows = cap;
    auto want = mono.ExecuteText(query, serial);
    ASSERT_TRUE(want.ok());
    for (size_t threads : {1u, 4u}) {
      EngineOptions options = serial;
      options.num_threads = threads;
      auto got = sharded.ExecuteText(query, options);
      ASSERT_TRUE(got.ok());
      ExpectIdenticalResults(*want, *got,
                             "cap=" + std::to_string(cap) +
                                 " threads=" + std::to_string(threads));
    }
  }
}

TEST(EngineTest, MappedIndexQueriesMatchCopyAcrossShardsAndThreads) {
  // End-to-end parity for LoadMode::kMap: an engine over a mapped index
  // (monolithic and sharded) returns byte-identical rows to the serial
  // engine over the built index, for every (K, num_shards, num_threads)
  // combination, including max_rows truncation.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = 56});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto built = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  const EntityRecognizer& recognizer =
      const_cast<const Pipeline&>(pipeline).recognizer();
  Engine reference(&corpus, built.get(), &embeddings, &recognizer);
  const char* query =
      "extract b:Str from \"t\" if ( /ROOT:{ a = //verb, b = a/dobj })";

  // Monolithic mapped index.
  std::string mono_path = ::testing::TempDir() + "/engine_mmap_mono.bin";
  ASSERT_TRUE(built->Save(mono_path).ok());
  auto mono_mapped = KokoIndex::Load(mono_path, LoadMode::kMap);
  ASSERT_TRUE(mono_mapped.ok()) << mono_mapped.status().ToString();
  ASSERT_TRUE((*mono_mapped)->mapped());
  Engine mono_engine(&corpus, mono_mapped->get(), &embeddings, &recognizer);

  for (size_t cap : {0u, 1u, 9u, 50000u}) {
    EngineOptions serial;
    serial.max_rows = cap;
    auto want = reference.ExecuteText(query, serial);
    ASSERT_TRUE(want.ok());
    for (size_t threads : {1u, 4u}) {
      EngineOptions options = serial;
      options.num_threads = threads;
      auto got = mono_engine.ExecuteText(query, options);
      ASSERT_TRUE(got.ok());
      ExpectIdenticalResults(*want, *got,
                             "mono cap=" + std::to_string(cap) +
                                 " threads=" + std::to_string(threads));
    }
  }
  std::remove(mono_path.c_str());

  // Sharded mapped index: sweep shard count x group fan-out x threads.
  for (size_t k : {1u, 2u, 4u}) {
    auto sharded_built = ShardedKokoIndex::Build(corpus, k);
    std::string path = ::testing::TempDir() + "/engine_mmap_sharded_" +
                       std::to_string(k) + ".bin";
    ASSERT_TRUE(sharded_built->Save(path).ok());
    ShardedKokoIndex::LoadOptions load_options;
    load_options.mode = LoadMode::kMap;
    auto mapped = ShardedKokoIndex::Load(path, load_options);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    ASSERT_TRUE((*mapped)->mapped());
    Engine sharded(&corpus, mapped->get(), &embeddings, &recognizer);
    for (size_t cap : {0u, 7u, 50000u}) {
      EngineOptions serial;
      serial.max_rows = cap;
      auto want = reference.ExecuteText(query, serial);
      ASSERT_TRUE(want.ok());
      struct Config {
        size_t num_shards;
        size_t num_threads;
      };
      for (const Config& config :
           {Config{0, 1}, Config{0, 4}, Config{2, 4}}) {
        EngineOptions options = serial;
        options.num_shards = config.num_shards;
        options.num_threads = config.num_threads;
        auto got = sharded.ExecuteText(query, options);
        ASSERT_TRUE(got.ok());
        ExpectIdenticalResults(
            *want, *got,
            "mapped K=" + std::to_string(k) + " cap=" + std::to_string(cap) +
                " groups=" + std::to_string(config.num_shards) +
                " threads=" + std::to_string(config.num_threads));
      }
    }
    std::remove(path.c_str());
  }
}

TEST(EngineTest, ShardedSatisfyingQueryMatchesMonolithic) {
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 30, .seed = 55});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto mono_index = KokoIndex::Build(corpus);
  auto sharded_index = ShardedKokoIndex::Build(corpus, 4);
  EmbeddingModel embeddings;
  Engine mono(&corpus, mono_index.get(), &embeddings,
              &const_cast<const Pipeline&>(pipeline).recognizer());
  Engine sharded(&corpus, sharded_index.get(), &embeddings,
                 &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query = R"(
      extract x:Entity from "t" if ()
      satisfying x (str(x) contains "a" {1}) with threshold 0.5)";
  auto want = mono.ExecuteText(query);
  ASSERT_TRUE(want.ok());
  EngineOptions options;
  options.num_threads = 4;
  auto got = sharded.ExecuteText(query, options);
  ASSERT_TRUE(got.ok());
  ExpectIdenticalResults(*want, *got, "sharded satisfying");
}

TEST(EngineTest, ParallelSatisfyingQueryIsDeterministic) {
  // Satisfying/excluding clauses ride on the extract rows; the whole
  // pipeline must stay byte-identical under parallel extraction.
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 30, .seed = 44});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());
  const char* query = R"(
      extract x:Entity from "t" if ()
      satisfying x (str(x) contains "a" {1}) with threshold 0.5)";
  EngineOptions serial;
  EngineOptions parallel;
  parallel.num_threads = 4;
  auto a = engine.ExecuteText(query, serial);
  auto b = engine.ExecuteText(query, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectIdenticalResults(*a, *b, "satisfying");
}

}  // namespace
}  // namespace koko

#include "index/koko_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>

#include "corpus/generators.h"
#include "index/path_lookup.h"
#include "nlp/pipeline.h"
#include "storage/serde.h"

namespace koko {
namespace {

// The two sentences of Example 3.1 (sid 0 and sid 1).
AnnotatedCorpus PaperCorpus() {
  Pipeline pipeline;
  return pipeline.AnnotateCorpus(
      {{"d0",
        "I ate a chocolate ice cream, which was delicious, and also ate a "
        "pie."},
       {"d1",
        "Anna ate some delicious cheesecake that she bought at a grocery "
        "store."}});
}

PathQuery MakePath(std::initializer_list<std::pair<const char*, const char*>> steps) {
  // Each step: {axis ("/" or "//"), label}; label resolution: dep > pos > word;
  // "*" = wildcard.
  PathQuery q;
  for (const auto& [axis, label] : steps) {
    PathStep step;
    step.axis = std::string(axis) == "/" ? PathStep::Axis::kChild
                                         : PathStep::Axis::kDescendant;
    std::string name = label;
    if (name != "*") {
      DepLabel dep;
      PosTag pos;
      if (ParseDepLabel(name, &dep)) {
        step.constraint.dep = dep;
      } else if (ParsePosTag(name, &pos)) {
        step.constraint.pos = pos;
      } else {
        step.constraint.word = name;
      }
    }
    q.steps.push_back(std::move(step));
  }
  return q;
}

TEST(KokoIndexTest, WordIndexExampleThreeTwo) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  // "ate" occurs at (0,1), (0,13), (1,1); the paper's table lists the two
  // root occurrences, our parser agrees on (1,1) root covering 0-12 depth 0.
  PostingList ate = index->LookupWord("ate");
  ASSERT_EQ(ate.size(), 3u);
  EXPECT_EQ(ate[0].sid, 0u);
  EXPECT_EQ(ate[0].tid, 1u);
  EXPECT_EQ(ate[0].left, 0u);
  EXPECT_EQ(ate[0].right, 16u);
  EXPECT_EQ(ate[0].depth, 0u);
  // (1,1): root of the second sentence spans 0-12 at depth 0 (Example 3.2).
  EXPECT_EQ(ate[2].sid, 1u);
  EXPECT_EQ(ate[2].tid, 1u);
  EXPECT_EQ(ate[2].left, 0u);
  EXPECT_EQ(ate[2].right, 12u);
  EXPECT_EQ(ate[2].depth, 0u);

  PostingList delicious = index->LookupWord("delicious");
  ASSERT_EQ(delicious.size(), 2u);
  // (1,3,3-3,2) per Example 3.2.
  EXPECT_EQ(delicious[1].sid, 1u);
  EXPECT_EQ(delicious[1].tid, 3u);
  EXPECT_EQ(delicious[1].left, 3u);
  EXPECT_EQ(delicious[1].right, 3u);
  EXPECT_EQ(delicious[1].depth, 2u);

  EXPECT_TRUE(index->LookupWord("zzz").empty());
}

TEST(KokoIndexTest, EntityIndexExampleThreeTwo) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  auto cheesecake = index->LookupEntityText("cheesecake");
  ASSERT_EQ(cheesecake.size(), 1u);
  EXPECT_EQ(cheesecake[0].sid, 1u);
  EXPECT_EQ(cheesecake[0].left, 4u);
  EXPECT_EQ(cheesecake[0].right, 4u);
  auto grocery = index->LookupEntityText("grocery store");
  ASSERT_EQ(grocery.size(), 1u);
  EXPECT_EQ(grocery[0].left, 10u);
  EXPECT_EQ(grocery[0].right, 11u);
  auto icecream = index->LookupEntityText("chocolate ice cream");
  ASSERT_EQ(icecream.size(), 1u);
  EXPECT_EQ(icecream[0].sid, 0u);
  EXPECT_EQ(icecream[0].left, 3u);
  EXPECT_EQ(icecream[0].right, 5u);
}

TEST(KokoIndexTest, HierarchyMergesEqualSiblings) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  // Example 3.3: both nn nodes under dobj merge into /root/dobj/nn whose
  // posting list holds "chocolate" and "ice".
  PathQuery path = MakePath({{"/", "root"}, {"/", "dobj"}, {"/", "nn"}});
  PostingList postings = index->LookupParseLabelPath(path);
  ASSERT_EQ(postings.size(), 2u);
  EXPECT_EQ(postings[0].tid, 3u);  // chocolate
  EXPECT_EQ(postings[1].tid, 4u);  // ice
}

TEST(KokoIndexTest, HierarchyRootPath) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  PostingList roots = index->LookupParseLabelPath(MakePath({{"/", "root"}}));
  ASSERT_EQ(roots.size(), 2u);  // both sentence roots share one trie node
  EXPECT_EQ(roots[0].depth, 0u);
  EXPECT_EQ(roots[1].depth, 0u);
}

TEST(KokoIndexTest, DescendantAxisAndWildcards) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  // //det finds determiners at any depth.
  PostingList det = index->LookupParseLabelPath(MakePath({{"//", "det"}}));
  EXPECT_GE(det.size(), 3u);
  // /root/*/nn: wildcard middle step.
  PostingList nn =
      index->LookupParseLabelPath(MakePath({{"/", "root"}, {"/", "*"}, {"/", "nn"}}));
  EXPECT_GE(nn.size(), 2u);
  // Absent path -> empty.
  EXPECT_TRUE(index
                  ->LookupParseLabelPath(
                      MakePath({{"/", "root"}, {"/", "root"}}))
                  .empty());
}

TEST(KokoIndexTest, PosHierarchy) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  PostingList verbs = index->LookupPosPath(MakePath({{"//", "verb"}}));
  EXPECT_GE(verbs.size(), 4u);  // ate, was, ate, ate, bought
  for (const Quintuple& q : verbs) {
    const Sentence& s = corpus.sentence(q.sid);
    EXPECT_EQ(s.tokens[q.tid].pos, PosTag::kVerb);
  }
}

TEST(KokoIndexTest, CompressionStats) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 400, .seed = 5});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  const auto& stats = index->stats();
  EXPECT_EQ(stats.num_tokens, corpus.NumTokens());
  // Merging must remove the overwhelming majority of tree nodes (the paper
  // reports >99.7%; the corpus here is smaller and more templated).
  EXPECT_GT(stats.PlCompression(), 0.95);
  EXPECT_GT(stats.PosCompression(), 0.95);
  EXPECT_LT(stats.pl_trie_nodes, stats.num_tokens / 20);
}

TEST(KokoIndexTest, HierarchyLookupMatchesBruteForce) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 6});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  std::vector<PathQuery> paths = {
      MakePath({{"/", "root"}, {"/", "dobj"}}),
      MakePath({{"/", "root"}, {"/", "dobj"}, {"/", "amod"}}),
      MakePath({{"//", "pobj"}}),
      MakePath({{"/", "root"}, {"//", "det"}}),
      MakePath({{"/", "root"}, {"/", "*"}, {"/", "nn"}}),
  };
  for (const PathQuery& path : paths) {
    PostingList postings = index->LookupParseLabelPath(path);
    std::set<std::pair<uint32_t, uint32_t>> got;
    for (const Quintuple& q : postings) got.insert({q.sid, q.tid});
    std::set<std::pair<uint32_t, uint32_t>> want;
    for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
      for (int t : MatchPathInSentence(corpus.sentence(sid), path)) {
        want.insert({sid, static_cast<uint32_t>(t)});
      }
    }
    EXPECT_EQ(got, want) << path.ToString();
  }
}

TEST(KokoIndexTest, ParentChildConditionFromQuintuples) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  // §3.1: tp is parent of tc iff same sid, containment, depth+1.
  PostingList ate = index->LookupWord("ate");
  PostingList cream = index->LookupWord("cream");
  ASSERT_FALSE(ate.empty());
  ASSERT_FALSE(cream.empty());
  EXPECT_TRUE(IsParentOf(ate[0], cream[0]));
  EXPECT_FALSE(IsParentOf(cream[0], ate[0]));
  PostingList delicious = index->LookupWord("delicious");
  EXPECT_TRUE(IsAncestorOf(cream[0], delicious[0]));
  EXPECT_FALSE(IsParentOf(cream[0], delicious[0]));
}

TEST(KokoIndexTest, SaveLoadRoundTrip) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_test.bin";
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = KokoIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->stats().num_tokens, index->stats().num_tokens);
  EXPECT_EQ((*loaded)->stats().pl_trie_nodes, index->stats().pl_trie_nodes);
  // Lookups agree after reload.
  PathQuery p = MakePath({{"/", "root"}, {"/", "dobj"}, {"/", "nn"}});
  EXPECT_EQ((*loaded)->LookupParseLabelPath(p), index->LookupParseLabelPath(p));
  EXPECT_EQ((*loaded)->LookupWord("delicious"), index->LookupWord("delicious"));
  EXPECT_EQ((*loaded)->AllEntities().size(), index->AllEntities().size());
  // The sid caches came from the delta-encoded section, not a rebuild.
  EXPECT_TRUE((*loaded)->sid_caches_from_disk());
  std::remove(path.c_str());
}

TEST(KokoIndexTest, MmapLoadMatchesCopyLoad) {
  // The parity property behind LoadMode::kMap: a mapped index must answer
  // every lookup byte-identically to a copy-loaded (and a freshly built)
  // one, while holding ~0 owned posting bytes.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 9});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_mmap_test.bin";
  ASSERT_TRUE(index->Save(path).ok());

  auto copied = KokoIndex::Load(path, LoadMode::kCopy);
  ASSERT_TRUE(copied.ok()) << copied.status().ToString();
  auto mapped = KokoIndex::Load(path, LoadMode::kMap);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE((*copied)->mapped());
  EXPECT_TRUE((*mapped)->mapped());
  EXPECT_TRUE((*mapped)->sid_caches_from_disk());

  // No posting-payload copy: the mapped index's sid caches attribute ~0
  // heap bytes (only trie-node rows etc. remain owned), the copied one a
  // strictly positive amount.
  EXPECT_GT((*copied)->SidCacheMemoryUsage(), 0u);
  EXPECT_LT((*mapped)->SidCacheMemoryUsage(),
            (*copied)->SidCacheMemoryUsage() / 4);

  // Every word's block list is equal across build / copy / map.
  std::set<std::string> words;
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    for (const Token& token : corpus.sentence(sid).tokens) {
      words.insert(token.text);
    }
  }
  for (const std::string& word : words) {
    const BlockList* built = index->WordSids(word);
    const BlockList* copy = (*copied)->WordSids(word);
    const BlockList* map = (*mapped)->WordSids(word);
    ASSERT_NE(copy, nullptr) << word;
    ASSERT_NE(map, nullptr) << word;
    EXPECT_EQ(*map, *built) << word;
    EXPECT_EQ(*map, *copy) << word;
    EXPECT_TRUE(map->mapped()) << word;
    EXPECT_EQ(map->Decode(), copy->Decode()) << word;
    EXPECT_EQ((*mapped)->LookupWord(word), (*copied)->LookupWord(word)) << word;
  }
  PathQuery p = MakePath({{"/", "root"}, {"//", "dobj"}});
  EXPECT_EQ((*mapped)->LookupParseLabelPath(p), index->LookupParseLabelPath(p));
  EXPECT_EQ((*mapped)->PlPathSids(p), index->PlPathSids(p));
  EXPECT_EQ((*mapped)->PosPathSids(MakePath({{"//", "verb"}})),
            index->PosPathSids(MakePath({{"//", "verb"}})));
  EXPECT_EQ((*mapped)->AllEntities(), index->AllEntities());
  EXPECT_EQ((*mapped)->AllEntitySids(), index->AllEntitySids());

  // A mapped index re-saves to a byte-identical image (the writer goes
  // through the same borrowed views).
  std::string resaved = ::testing::TempDir() + "/koko_index_mmap_resave.bin";
  ASSERT_TRUE((*mapped)->Save(resaved).ok());
  auto read_all = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(read_all(resaved), read_all(path));
  std::remove(resaved.c_str());
  std::remove(path.c_str());
}

TEST(KokoIndexTest, MmapLoadFallsBackOnLegacyImages) {
  // kMap on a v2 (flat-delta) or v1 (catalog-only) image must still load —
  // transparently copying, since those layouts cannot be aliased.
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_mmap_legacy.bin";
  {
    std::ofstream out(path, std::ios::binary);
    BinaryWriter writer(&out);
    ASSERT_TRUE(index->Save(&writer, /*version=*/2).ok());
  }
  auto v2 = KokoIndex::Load(path, LoadMode::kMap);
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_FALSE((*v2)->mapped());  // copied, not aliased
  EXPECT_TRUE((*v2)->sid_caches_from_disk());
  EXPECT_EQ((*v2)->LookupWord("delicious"), index->LookupWord("delicious"));
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    BinaryWriter writer(&out);
    ASSERT_TRUE(index->catalog().Save(&writer).ok());
  }
  auto v1 = KokoIndex::Load(path, LoadMode::kMap);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_FALSE((*v1)->mapped());
  EXPECT_EQ((*v1)->LookupWord("delicious"), index->LookupWord("delicious"));
  std::remove(path.c_str());
}

TEST(KokoIndexTest, SaveVersionKnobWritesLoadableV3AndV4) {
  // The explicit version knob: 4 (current, bit-packed blocks) and 3
  // (varint blocks) both round-trip through kCopy and kMap, answer
  // identically, and the no-version overload writes exactly v4.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = 31});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  auto read_all = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  std::string default_path = ::testing::TempDir() + "/koko_ver_default.bin";
  ASSERT_TRUE(index->Save(default_path).ok());
  for (uint32_t version : {3u, 4u}) {
    std::string path = ::testing::TempDir() + "/koko_ver_" +
                       std::to_string(version) + ".bin";
    {
      std::ofstream out(path, std::ios::binary);
      BinaryWriter writer(&out);
      ASSERT_TRUE(index->Save(&writer, version).ok());
    }
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMap}) {
      auto loaded = KokoIndex::Load(path, mode);
      ASSERT_TRUE(loaded.ok())
          << "v" << version << ": " << loaded.status().ToString();
      EXPECT_EQ((*loaded)->mapped(), mode == LoadMode::kMap) << version;
      EXPECT_TRUE((*loaded)->sid_caches_from_disk()) << version;
      const BlockList* sids = (*loaded)->WordSids("happy");
      ASSERT_NE(sids, nullptr) << version;
      // v4 images hold packed payloads, v3 varint payloads.
      EXPECT_EQ(sids->packed(), version == 4) << version;
      EXPECT_EQ((*loaded)->LookupWord("happy"), index->LookupWord("happy"))
          << version;
      PathQuery p = MakePath({{"/", "root"}, {"//", "dobj"}});
      EXPECT_EQ((*loaded)->LookupParseLabelPath(p),
                index->LookupParseLabelPath(p))
          << version;
      EXPECT_EQ((*loaded)->AllEntitySids(), index->AllEntitySids()) << version;
    }
    if (version == 4) {
      EXPECT_EQ(read_all(path), read_all(default_path));  // default is v4
    } else {
      EXPECT_NE(read_all(path), read_all(default_path));
    }
    std::remove(path.c_str());
  }
  std::remove(default_path.c_str());
}

TEST(KokoIndexTest, MmapLoadErrorsAreClean) {
  // Unmappable path: a clean error, not an abort.
  auto missing = KokoIndex::Load(::testing::TempDir() + "/no_such_index.bin",
                                 LoadMode::kMap);
  EXPECT_FALSE(missing.ok());
  // Empty and too-short files fail with an error in both modes.
  std::string path = ::testing::TempDir() + "/koko_index_short.bin";
  for (size_t bytes : {size_t{0}, size_t{3}, size_t{7}}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    const char zeros[8] = {};
    out.write(zeros, static_cast<long>(bytes));
    out.close();
    EXPECT_FALSE(KokoIndex::Load(path, LoadMode::kMap).ok()) << bytes;
    EXPECT_FALSE(KokoIndex::Load(path, LoadMode::kCopy).ok()) << bytes;
  }
  std::remove(path.c_str());
}

TEST(KokoIndexTest, CorruptImageFailsLoadCleanly) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_corrupt_test.bin";
  ASSERT_TRUE(index->Save(path).ok());

  // Read the image, then write back damaged variants: every one must fail
  // Load with an error instead of yielding an index over garbage sids.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> image((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(image.size(), 64u);

  auto write_image = [&](const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<long>(bytes.size()));
  };

  // Truncations at several depths (mid-catalog, mid-sid-section), in both
  // load modes: the mapped parser must bound every read by the mapping.
  for (size_t keep : {image.size() - 1, image.size() / 2, size_t{12}}) {
    std::vector<char> truncated(image.begin(),
                                image.begin() + static_cast<long>(keep));
    write_image(truncated);
    auto loaded = KokoIndex::Load(path);
    EXPECT_FALSE(loaded.ok()) << "truncated to " << keep << " bytes";
    auto mapped = KokoIndex::Load(path, LoadMode::kMap);
    EXPECT_FALSE(mapped.ok()) << "mapped, truncated to " << keep << " bytes";
  }

  // Flip bytes in the trailing half (catalog tail + the v3 block-
  // compressed sid caches: skip-first / skip-offset arrays and delta-block
  // payloads). Structural damage — continuation bits, oversized counts
  // (which used to hang Load on a gigabyte allocation), skip offsets out
  // of bounds or non-monotone, gap monotonicity, payloads not ending on a
  // block boundary — must fail cleanly; a flip that happens to decode to
  // another valid stream of the recorded length is indistinguishable
  // without a checksum, so the guarantee under test is "clean error or a
  // usable index", never a crash, hang, or out-of-bounds read (the suite
  // runs under ASan in CI). The kMap path runs the same validation before
  // aliasing anything, so it must agree flip for flip — and a mapped
  // survivor must never read past its mapping when queried.
  for (size_t at = image.size() - image.size() / 2; at < image.size();
       at += 7) {
    std::vector<char> corrupt = image;
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0xff);
    write_image(corrupt);
    for (LoadMode mode : {LoadMode::kCopy, LoadMode::kMap}) {
      auto loaded = KokoIndex::Load(path, mode);
      if (!loaded.ok()) continue;  // clean failure: the desired outcome
      (void)(*loaded)->LookupWord("delicious");
      const BlockList* sids = (*loaded)->WordSids("delicious");
      // A survivor must still be a structurally sound index: decoding any
      // restored list must stay in bounds and sorted.
      if (sids != nullptr) {
        SidList decoded = sids->Decode();
        EXPECT_TRUE(std::is_sorted(decoded.begin(), decoded.end()));
      }
    }
  }
  std::remove(path.c_str());
}

TEST(KokoIndexTest, BlockCompressedSidCachePersistence) {
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 200, .seed = 7});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);

  // Size assertion: across every distinct word, the resident block layout
  // (delta payload + skip table) must beat the decoded u32 layout (sorted
  // unique sids -> small gaps; one 8-byte skip entry per 128 sids).
  std::set<std::string> words;
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    for (const Token& token : corpus.sentence(sid).tokens) {
      words.insert(token.text);
    }
  }
  size_t block_bytes = 0;
  size_t raw_bytes = 0;
  for (const std::string& word : words) {
    const BlockList* sids = index->WordSids(word);
    ASSERT_NE(sids, nullptr) << word;
    // The flat v2 codec and the block layout must agree on the sid set.
    SidList decoded = sids->Decode();
    EXPECT_EQ(*DecodeDeltas(EncodeDeltas(decoded)), decoded) << word;
    EXPECT_EQ(BlockList::FromSidList(decoded), *sids) << word;
    block_bytes += sids->MemoryUsage();
    raw_bytes += sids->size() * sizeof(uint32_t);
  }
  EXPECT_LT(block_bytes, raw_bytes);

  // Round trip: the loaded index restores byte-identical block lists.
  std::string path = ::testing::TempDir() + "/koko_index_delta_test.bin";
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = KokoIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE((*loaded)->sid_caches_from_disk());
  for (const std::string& word : words) {
    const BlockList* want = index->WordSids(word);
    const BlockList* got = (*loaded)->WordSids(word);
    ASSERT_NE(got, nullptr) << word;
    EXPECT_EQ(*got, *want) << word;
  }
  PathQuery p = MakePath({{"/", "root"}, {"//", "dobj"}});
  EXPECT_EQ((*loaded)->PlPathSids(p), index->PlPathSids(p));
  EXPECT_EQ((*loaded)->PosPathSids(MakePath({{"//", "verb"}})),
            index->PosPathSids(MakePath({{"//", "verb"}})));
  std::remove(path.c_str());
}

TEST(KokoIndexTest, LegacyV2ImageStillLoads) {
  // A flat varint-delta (v2) image — what PR-2/PR-3 binaries wrote — must
  // load into the same index, re-encoded into blocks on the way in.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 120, .seed = 8});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_v2_test.bin";
  {
    std::ofstream out(path, std::ios::binary);
    BinaryWriter writer(&out);
    ASSERT_TRUE(index->Save(&writer, /*version=*/2).ok());
  }
  auto loaded = KokoIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE((*loaded)->sid_caches_from_disk());
  for (const char* word : {"a", "delicious", "ate"}) {
    const BlockList* want = index->WordSids(word);
    const BlockList* got = (*loaded)->WordSids(word);
    ASSERT_EQ(got == nullptr, want == nullptr) << word;
    if (want != nullptr) EXPECT_EQ(*got, *want) << word;
  }
  PathQuery p = MakePath({{"/", "root"}, {"//", "dobj"}});
  EXPECT_EQ((*loaded)->LookupParseLabelPath(p), index->LookupParseLabelPath(p));
  EXPECT_EQ((*loaded)->PlPathSids(p), index->PlPathSids(p));
  std::remove(path.c_str());
}

TEST(KokoIndexTest, LegacyCatalogOnlyImageStillLoads) {
  // A v1 image is a bare catalog (no "KIDX" magic, no sid-cache section);
  // Load must detect it and rebuild every projection from the tables.
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  std::string path = ::testing::TempDir() + "/koko_index_v1_test.bin";
  {
    std::ofstream out(path, std::ios::binary);
    BinaryWriter writer(&out);
    ASSERT_TRUE(index->catalog().Save(&writer).ok());
  }
  auto loaded = KokoIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE((*loaded)->sid_caches_from_disk());
  EXPECT_EQ((*loaded)->LookupWord("delicious"), index->LookupWord("delicious"));
  const BlockList* want = index->WordSids("ate");
  const BlockList* got = (*loaded)->WordSids("ate");
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(*got, *want);
  std::remove(path.c_str());
}

TEST(PathLookupTest, DecompositionExampleFourTwo) {
  // d = //verb[text="ate"]/dobj//"delicious" decomposes into
  // PL //*/dobj//*, POS //verb/*//*, word //"ate"/*//"delicious".
  PathQuery d;
  {
    PathStep s1;
    s1.axis = PathStep::Axis::kDescendant;
    s1.constraint.pos = PosTag::kVerb;
    s1.constraint.word = "ate";
    PathStep s2;
    s2.axis = PathStep::Axis::kChild;
    s2.constraint.dep = DepLabel::kDobj;
    PathStep s3;
    s3.axis = PathStep::Axis::kDescendant;
    s3.constraint.word = "delicious";
    d.steps = {s1, s2, s3};
  }
  PathQuery pl = ProjectParseLabelPath(d);
  EXPECT_EQ(pl.ToString(), "//*/dobj//*");
  PathQuery pos = ProjectPosPath(d);
  EXPECT_EQ(pos.ToString(), "//*[@pos=\"verb\"]/*//*");
  EXPECT_FALSE(IsAllWildcard(d));
  EXPECT_TRUE(IsAllWildcard(ProjectPosPath(pl)));
}

TEST(PathLookupTest, JoinExampleFourFour) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  // //verb[text="ate"]/dobj//"delicious" — Example 4.4's join returns
  // {(1,3,3-3,2), (0,9,9-9,3)} (the two "delicious" tokens).
  PathQuery d;
  {
    PathStep s1;
    s1.axis = PathStep::Axis::kDescendant;
    s1.constraint.pos = PosTag::kVerb;
    s1.constraint.word = "ate";
    PathStep s2;
    s2.axis = PathStep::Axis::kChild;
    s2.constraint.dep = DepLabel::kDobj;
    PathStep s3;
    s3.axis = PathStep::Axis::kDescendant;
    s3.constraint.word = "delicious";
    d.steps = {s1, s2, s3};
  }
  PathLookupResult result = KokoPathLookup(*index, d);
  EXPECT_FALSE(result.unconstrained);
  EXPECT_TRUE(result.exact_last);
  std::set<std::pair<uint32_t, uint32_t>> got;
  for (const Quintuple& q : result.postings) got.insert({q.sid, q.tid});
  EXPECT_EQ(got, (std::set<std::pair<uint32_t, uint32_t>>{{0, 9}, {1, 3}}));
}

TEST(PathLookupTest, CompletenessProperty) {
  // DPLI candidates must be a superset of the true matches (§4.2.2).
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 80, .seed = 21});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  std::vector<PathQuery> paths = {
      MakePath({{"//", "verb"}, {"/", "dobj"}}),
      MakePath({{"//", "verb"}, {"/", "prep"}, {"/", "pobj"}}),
      MakePath({{"/", "root"}, {"//", "born"}}),
      MakePath({{"//", "nsubj"}}),
  };
  for (const PathQuery& path : paths) {
    PathLookupResult result = KokoPathLookup(*index, path);
    ASSERT_FALSE(result.unconstrained);
    std::set<std::pair<uint32_t, uint32_t>> candidates;
    for (const Quintuple& q : result.postings) candidates.insert({q.sid, q.tid});
    for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
      for (int t : MatchPathInSentence(corpus.sentence(sid), path)) {
        EXPECT_TRUE(candidates.count({sid, static_cast<uint32_t>(t)}) > 0)
            << "missing true binding for " << path.ToString() << " at sid="
            << sid << " tid=" << t;
      }
    }
  }
}

TEST(PathLookupTest, SidSemiJoinMatchesQuintupleProjection) {
  // The cross-index fallback now semi-joins the per-index sid projections
  // before materialising quintuples; its sid set must stay exactly the
  // projection of the unfiltered quintuple-level lookup.
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 60, .seed = 22});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  std::vector<PathQuery> paths = {
      MakePath({{"//", "verb"}, {"/", "dobj"}}),          // POS + PL
      MakePath({{"//", "verb"}, {"//", "born"}}),         // POS + word
      MakePath({{"/", "root"}, {"//", "the"}}),           // PL + word
      MakePath({{"//", "verb"}, {"/", "prep"}, {"//", "the"}}),  // all three
      MakePath({{"//", "ate"}}),                          // word only
      MakePath({{"//", "verb"}, {"//", "zzz-absent"}}),   // absent word
  };
  for (const PathQuery& path : paths) {
    PathSidLookupResult fast = KokoPathSidLookup(*index, path);
    PathLookupResult full = KokoPathLookup(*index, path);
    ASSERT_EQ(fast.unconstrained, full.unconstrained) << path.ToString();
    EXPECT_EQ(fast.sids, SidList::FromSorted(SidsOfPostings(full.postings)))
        << path.ToString();
  }
}

TEST(PathLookupTest, SidFilteredLookupsMatchUnfiltered) {
  // The semi-join push-down (LookupWord/LookupParseLabelPath/LookupPosPath
  // with a sid filter) must keep exactly the postings whose sid is in the
  // filter, including a filter that drops everything.
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  SidList only_second = SidList::FromSorted({1});
  PostingList all = index->LookupWord("ate");
  PostingList filtered = index->LookupWord("ate", &only_second);
  PostingList want;
  for (const Quintuple& q : all) {
    if (q.sid == 1) want.push_back(q);
  }
  EXPECT_EQ(filtered, want);
  ASSERT_FALSE(filtered.empty());
  SidList none;
  EXPECT_TRUE(index->LookupWord("ate", &none).empty());
  PathQuery verbs = MakePath({{"//", "verb"}});
  PostingList pos_all = index->LookupPosPath(verbs);
  PostingList pos_filtered = index->LookupPosPath(verbs, &only_second);
  PostingList pos_want;
  for (const Quintuple& q : pos_all) {
    if (q.sid == 1) pos_want.push_back(q);
  }
  EXPECT_EQ(pos_filtered, pos_want);
  EXPECT_TRUE(index->LookupPosPath(verbs, &none).empty());
}

TEST(PathLookupTest, AbsentPathShortCircuits) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  PathQuery q = MakePath({{"/", "root"}, {"/", "xcomp"}, {"/", "xcomp"}});
  PathLookupResult result = KokoPathLookup(*index, q);
  EXPECT_FALSE(result.unconstrained);
  EXPECT_TRUE(result.postings.empty());
}

TEST(PathLookupTest, AllWildcardIsUnconstrained) {
  AnnotatedCorpus corpus = PaperCorpus();
  auto index = KokoIndex::Build(corpus);
  PathQuery q = MakePath({{"//", "*"}});
  EXPECT_TRUE(KokoPathLookup(*index, q).unconstrained);
}

}  // namespace
}  // namespace koko

// Wire-level golden-row parity net: concurrent client sockets replay the
// paper-figure workload queries (src/replay) against a live KokoServer and
// must reproduce the pinned golden digests of tests/golden/workloads.golden
// byte for byte — the serving front end may add framing, batching, and
// admission control, but never a row's worth of semantics. Covered arms:
// batching on/off, max_rows-capped, streaming, parse errors and malformed
// frames over the wire, admission rejection over the wire, and shutdown
// while clients are mid-stream.
//
// The in-process counterpart of this contract is
// tests/workloads_test.cpp; the golden file is shared (regenerate it
// there, never here).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "index/sharded_index.h"
#include "net/client.h"
#include "net/server.h"
#include "replay/workloads.h"
#include "serve/query_service.h"

#ifndef KOKO_GOLDEN_DIR
#error "KOKO_GOLDEN_DIR must be defined (see koko_add_test in CMakeLists.txt)"
#endif

namespace koko {
namespace net {
namespace {

constexpr size_t kIndexShards = 3;
constexpr size_t kQueriesPerClass = 3;  // must match workloads_test
constexpr size_t kTopK = 7;

struct ServedWorkload {
  replay::Workload workload;
  std::unique_ptr<ShardedKokoIndex> index;
  std::unique_ptr<Engine> engine;
  /// Golden (uncapped, seed-semantics) digest per query.
  std::vector<uint64_t> golden_digests;
  std::vector<size_t> golden_rows;
  /// Evaluate-then-truncate reference digest at max_rows=kTopK per query
  /// (the capped-run parity baseline; see workloads_test).
  std::vector<uint64_t> capped_digests;
};

struct World {
  Pipeline pipeline;
  EmbeddingModel embeddings;
  /// Heap-allocated: each engine borrows pointers into its own entry
  /// (corpus, index), so entry addresses must survive vector growth.
  std::vector<std::unique_ptr<ServedWorkload>> served;
};

std::map<std::string, uint64_t> ReadGoldenDigests() {
  std::map<std::string, uint64_t> golden;
  std::ifstream in(std::string(KOKO_GOLDEN_DIR) + "/workloads.golden");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string key, digest_hex;
    size_t rows = 0;
    fields >> key >> digest_hex >> rows;
    if (key.empty()) continue;
    golden[key] = std::stoull(digest_hex, nullptr, 16);
    golden[key + "#rows"] = rows;
  }
  return golden;
}

// The serving configuration under test: sharded build -> save -> zero-copy
// mmap reload -> unlink while mapped.
std::unique_ptr<ShardedKokoIndex> BuildMappedIndex(
    const AnnotatedCorpus& corpus, const std::string& name) {
  auto built = ShardedKokoIndex::Build(corpus, kIndexShards);
  const std::string path = "net_serve_test_" + name + ".idx";
  if (!built->Save(path).ok()) std::abort();
  ShardedKokoIndex::LoadOptions load;
  load.mode = LoadMode::kMap;
  auto loaded = ShardedKokoIndex::Load(path, load);
  std::remove(path.c_str());
  if (!loaded.ok()) std::abort();
  return std::move(*loaded);
}

const World& GetWorld() {
  static World* world = [] {
    auto* w = new World();
    replay::WorkloadOptions options;
    options.scale = 1;
    options.queries_per_class = kQueriesPerClass;
    auto workloads = replay::BuildAllWorkloads(w->pipeline, options);
    if (!workloads.ok()) {
      std::fprintf(stderr, "workload build failed: %s\n",
                   workloads.status().ToString().c_str());
      std::abort();
    }
    const std::map<std::string, uint64_t> golden = ReadGoldenDigests();
    if (golden.empty()) {
      std::fprintf(stderr,
                   "golden file missing/empty; regenerate via "
                   "KOKO_REGEN_GOLDEN=1 ./workloads_test\n");
      std::abort();
    }
    for (replay::Workload& workload : *workloads) {
      auto served_ptr = std::make_unique<ServedWorkload>();
      ServedWorkload& served = *served_ptr;
      served.index = BuildMappedIndex(workload.corpus, workload.name);
      served.workload = std::move(workload);
      served.engine = std::make_unique<Engine>(
          &served.workload.corpus, served.index.get(), &w->embeddings,
          w->pipeline.recognizer());
      for (const replay::WorkloadQuery& query : served.workload.queries) {
        const std::string key = served.workload.name + "/" + query.name;
        auto it = golden.find(key);
        if (it == golden.end()) {
          std::fprintf(stderr, "no golden entry for %s\n", key.c_str());
          std::abort();
        }
        served.golden_digests.push_back(it->second);
        served.golden_rows.push_back(golden.at(key + "#rows"));
        // Capped baseline: seed semantics with the row cap, computed from
        // the same mapped index (variant parity is workloads_test's job).
        EngineOptions capped;
        capped.use_planner = false;
        capped.early_terminate = false;
        capped.num_threads = 1;
        capped.max_rows = kTopK;
        auto result = served.engine->Execute(query.query, capped);
        if (!result.ok()) std::abort();
        served.capped_digests.push_back(replay::RowDigest(*result));
      }
      w->served.push_back(std::move(served_ptr));
    }
    return w;
  }();
  return *world;
}

// One server over one workload's service, torn down in order.
struct Harness {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<KokoServer> server;

  Harness(const ServedWorkload& served, bool enable_batching,
          size_t max_inflight = 3, size_t max_queue = 16) {
    QueryService::Options service_options;
    service_options.num_threads = 3;
    service_options.max_inflight = max_inflight;
    service_options.max_queue = max_queue;
    service = std::make_unique<QueryService>(served.engine.get(),
                                             service_options, kIndexShards);
    KokoServer::Options server_options;
    server_options.enable_batching = enable_batching;
    server = std::make_unique<KokoServer>(service.get(), server_options);
    const Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   started.ToString().c_str());
      std::abort();
    }
  }

  ~Harness() { server->Stop(); }
};

NetRequest RequestFor(const replay::WorkloadQuery& query) {
  NetRequest request;
  request.query_text = query.text;
  return request;
}

// The tentpole parity sweep: every workload class, batching on and off,
// three concurrent client connections replaying every query twice (second
// round hits warm caches). Every served response must digest to the
// pinned golden value.
TEST(NetServeTest, ConcurrentClientsMatchGoldenWithBatchingOnAndOff) {
  const World& world = GetWorld();
  for (const std::unique_ptr<ServedWorkload>& served_ptr : world.served) {
    const ServedWorkload& served = *served_ptr;
    for (bool batching : {true, false}) {
      Harness harness(served, batching);
      constexpr int kClients = 3;
      std::vector<std::string> failures(kClients);
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c]() {
          auto client = KokoClient::Connect(harness.server->port());
          if (!client.ok()) {
            failures[static_cast<size_t>(c)] = client.status().ToString();
            return;
          }
          for (int round = 0; round < 2; ++round) {
            for (size_t qi = 0; qi < served.workload.queries.size(); ++qi) {
              auto wire = client->Query(RequestFor(served.workload.queries[qi]));
              if (!wire.ok() || !wire->status.ok()) {
                failures[static_cast<size_t>(c)] =
                    served.workload.queries[qi].name + ": " +
                    (wire.ok() ? wire->status : wire.status()).ToString();
                return;
              }
              if (replay::RowDigest(wire->rows) != served.golden_digests[qi] ||
                  wire->rows.size() != served.golden_rows[qi] ||
                  wire->done.rows != wire->rows.size()) {
                failures[static_cast<size_t>(c)] =
                    served.workload.queries[qi].name +
                    ": wire rows diverged from golden";
                return;
              }
            }
          }
        });
      }
      for (std::thread& t : clients) t.join();
      for (int c = 0; c < kClients; ++c) {
        EXPECT_TRUE(failures[static_cast<size_t>(c)].empty())
            << served.workload.name << " batching=" << batching << " client "
            << c << ": " << failures[static_cast<size_t>(c)];
      }
      // The client observes its kDone a moment before the server thread
      // bumps responses_ok_; give the counters a bounded moment to
      // quiesce before asserting exact totals.
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      KokoServer::Stats stats = harness.server->stats();
      while (stats.responses_ok != stats.requests &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::yield();
        stats = harness.server->stats();
      }
      EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients))
          << served.workload.name;
      EXPECT_EQ(stats.requests,
                static_cast<uint64_t>(kClients * 2) *
                    served.workload.queries.size());
      EXPECT_EQ(stats.responses_ok, stats.requests);
      EXPECT_EQ(stats.protocol_errors, 0u);
      if (!batching) {
        EXPECT_EQ(stats.batch.leaders + stats.batch.followers, 0u)
            << served.workload.name << ": batching off must not coalesce";
      }
    }
  }
}

// Capped and streaming arms over the wire: max_rows must reproduce the
// evaluate-then-truncate baseline (not a prefix of the uncapped rows —
// the PR 9 contract), and streaming must deliver the identical rows as
// chunked frames.
TEST(NetServeTest, CappedAndStreamingArmsMatchReference) {
  const World& world = GetWorld();
  for (const std::unique_ptr<ServedWorkload>& served_ptr : world.served) {
    const ServedWorkload& served = *served_ptr;
    Harness harness(served, /*enable_batching=*/true);
    auto client = KokoClient::Connect(harness.server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    for (size_t qi = 0; qi < served.workload.queries.size(); ++qi) {
      const replay::WorkloadQuery& query = served.workload.queries[qi];
      for (bool streaming : {false, true}) {
        NetRequest capped = RequestFor(query);
        capped.max_rows = kTopK;
        capped.streaming = streaming;
        auto wire = client->Query(capped);
        ASSERT_TRUE(wire.ok()) << query.name << ": " << wire.status().ToString();
        ASSERT_TRUE(wire->status.ok()) << query.name;
        EXPECT_LE(wire->rows.size(), kTopK) << query.name;
        EXPECT_EQ(replay::RowDigest(wire->rows), served.capped_digests[qi])
            << query.name << " streaming=" << streaming
            << ": capped wire rows diverged from truncate baseline";
      }
      NetRequest streaming_uncapped = RequestFor(query);
      streaming_uncapped.streaming = true;
      auto wire = client->Query(streaming_uncapped);
      ASSERT_TRUE(wire.ok()) << query.name;
      ASSERT_TRUE(wire->status.ok()) << query.name;
      EXPECT_EQ(replay::RowDigest(wire->rows), served.golden_digests[qi])
          << query.name << ": streaming wire rows diverged from golden";
      if (!wire->rows.empty()) {
        EXPECT_GE(wire->row_frames, 1u) << query.name;
      }
    }
  }
}

// A syntactically bad query is the request's failure, not the
// connection's: the server answers kError and keeps serving the stream.
TEST(NetServeTest, ParseErrorKeepsConnectionOpen) {
  const World& world = GetWorld();
  const ServedWorkload& served = *world.served.front();
  Harness harness(served, /*enable_batching=*/true);
  auto client = KokoClient::Connect(harness.server->port());
  ASSERT_TRUE(client.ok());
  NetRequest bad;
  bad.query_text = "this is not a koko query at all";
  auto wire = client->Query(bad);
  ASSERT_TRUE(wire.ok()) << "transport must survive a parse error";
  EXPECT_FALSE(wire->status.ok());
  // Same connection, next request: served normally.
  auto good = client->Query(RequestFor(served.workload.queries.front()));
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_TRUE(good->status.ok());
  EXPECT_EQ(replay::RowDigest(good->rows), served.golden_digests.front());
}

// A malformed frame (bad magic) is unrecoverable: the server answers with
// one error frame and closes the connection.
TEST(NetServeTest, MalformedFrameClosesConnection) {
  const World& world = GetWorld();
  const ServedWorkload& served = *world.served.front();
  Harness harness(served, /*enable_batching=*/true);
  auto client = KokoClient::Connect(harness.server->port());
  ASSERT_TRUE(client.ok());
  std::vector<uint8_t> garbage(kFrameHeaderSize, 0xAB);
  ASSERT_TRUE(client->SendRaw(garbage).ok());
  auto frame = client->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->first.type, FrameType::kError);
  // The connection is gone: the next read observes EOF, not a hang.
  EXPECT_FALSE(client->ReadFrame().ok());
  const KokoServer::Stats stats = harness.server->stats();
  EXPECT_GE(stats.protocol_errors, 1u);
}

// Admission rejection crosses the wire as an Unavailable error frame, and
// the connection remains usable once capacity frees up.
TEST(NetServeTest, AdmissionRejectOverTheWire) {
  const World& world = GetWorld();
  const ServedWorkload& served = *world.served.front();
  Harness harness(served, /*enable_batching=*/false, /*max_inflight=*/1,
                  /*max_queue=*/0);
  auto client = KokoClient::Connect(harness.server->port());
  ASSERT_TRUE(client.ok());
  // Occupy the single admission slot in-process; with max_queue=0 the
  // wire request is rejected immediately (deterministic, no timing).
  ASSERT_TRUE(harness.service->admission().Enter());
  auto rejected = client->Query(RequestFor(served.workload.queries.front()));
  harness.service->admission().Exit();
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnavailable);
  // Slot released: the same connection now gets real rows.
  auto ok = client->Query(RequestFor(served.workload.queries.front()));
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->status.ok());
  EXPECT_EQ(replay::RowDigest(ok->rows), served.golden_digests.front());
}

// Stopping the server while clients stream must yield, per in-flight
// request, either a complete correct response, a served Unavailable, or a
// clean connection close — never a torn frame, a wrong row, or a hang.
TEST(NetServeTest, ShutdownWhileStreamingIsClean) {
  const World& world = GetWorld();
  const ServedWorkload& served = *world.served.front();
  auto harness =
      std::make_unique<Harness>(served, /*enable_batching=*/true);
  constexpr int kClients = 3;
  std::vector<std::string> failures(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> completed{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      auto client = KokoClient::Connect(harness->server->port());
      if (!client.ok()) return;  // raced the shutdown: clean
      for (int round = 0; round < 200; ++round) {
        NetRequest request =
            RequestFor(served.workload.queries[static_cast<size_t>(round) %
                                               served.workload.queries.size()]);
        request.streaming = true;
        auto wire = client->Query(request);
        if (!wire.ok()) return;  // transport closed by Stop(): clean
        if (!wire->status.ok()) {
          // The only in-band failure shutdown may produce is admission
          // rejection.
          if (wire->status.code() != StatusCode::kUnavailable) {
            failures[static_cast<size_t>(c)] = wire->status.ToString();
          }
          return;
        }
        const size_t qi =
            static_cast<size_t>(round) % served.workload.queries.size();
        if (replay::RowDigest(wire->rows) != served.golden_digests[qi]) {
          failures[static_cast<size_t>(c)] = "rows diverged during shutdown";
          return;
        }
        completed.fetch_add(1);
      }
    });
  }
  // Let the clients get in flight, then pull the plug mid-traffic. The
  // deadline only bounds a pathological stall; normally every client has
  // completed a round within milliseconds.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (completed.load() < kClients &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  harness->server->Stop();
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[static_cast<size_t>(c)].empty())
        << "client " << c << ": " << failures[static_cast<size_t>(c)];
  }
  // After Stop() the port no longer accepts work.
  auto late = KokoClient::Connect(harness->server->port(), 2);
  if (late.ok()) {
    auto wire = late->Query(RequestFor(served.workload.queries.front()));
    EXPECT_TRUE(!wire.ok() || !wire->status.ok());
  }
}

}  // namespace
}  // namespace net
}  // namespace koko

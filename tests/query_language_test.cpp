#include <gtest/gtest.h>

#include "koko/compile.h"
#include "koko/lexer.h"
#include "koko/parser.h"

namespace koko {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = LexQuery("extract x:Entity from \"a.txt\" if ()");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, QTokenKind::kIdent);
  EXPECT_EQ((*tokens)[0].text, "extract");
  EXPECT_EQ((*tokens)[2].kind, QTokenKind::kColon);
  EXPECT_EQ((*tokens)[5].kind, QTokenKind::kString);
  EXPECT_EQ((*tokens)[5].text, "a.txt");
  EXPECT_EQ(tokens->back().kind, QTokenKind::kEnd);
}

TEST(LexerTest, AxesAndBrackets) {
  auto tokens = LexQuery("//verb/dobj [[x]] ^ ~ {0.5}");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, QTokenKind::kSlashSlash);
  EXPECT_EQ((*tokens)[2].kind, QTokenKind::kSlash);
  EXPECT_EQ((*tokens)[4].kind, QTokenKind::kLLBracket);
  EXPECT_EQ((*tokens)[6].kind, QTokenKind::kRRBracket);
  EXPECT_EQ((*tokens)[7].kind, QTokenKind::kCaret);
  EXPECT_EQ((*tokens)[8].kind, QTokenKind::kTilde);
  EXPECT_EQ((*tokens)[10].kind, QTokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[10].number, 0.5);
}

TEST(LexerTest, UnicodeWedgeIsElastic) {
  auto tokens = LexQuery("a + ∧ + b");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].kind, QTokenKind::kCaret);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = LexQuery("\"a \\\"quoted\\\" b\"");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a \"quoted\" b");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(LexQuery("\"oops").ok());
}

TEST(QueryParserTest, ExampleTwoOne) {
  auto q = ParseQuery(R"(
      extract e:Entity, d:Str from input.txt if (
        /ROOT:{
          a = //verb,
          b = a/dobj,
          c = b//"delicious",
          d = (b.subtree)
        } (b) in (e)))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->outputs.size(), 2u);
  EXPECT_EQ(q->outputs[0].var, "e");
  EXPECT_EQ(q->outputs[0].type_name, "Entity");
  ASSERT_EQ(q->defs.size(), 4u);
  EXPECT_EQ(q->defs[0].kind, VarDef::Kind::kNode);
  EXPECT_EQ(q->defs[0].path.steps[0].axis, PathStep::Axis::kDescendant);
  EXPECT_EQ(*q->defs[0].path.steps[0].constraint.pos, PosTag::kVerb);
  EXPECT_EQ(q->defs[1].base_var, "a");
  EXPECT_EQ(*q->defs[1].path.steps[0].constraint.dep, DepLabel::kDobj);
  EXPECT_EQ(*q->defs[2].path.steps[0].constraint.word, "delicious");
  EXPECT_EQ(q->defs[3].kind, VarDef::Kind::kSpan);
  EXPECT_EQ(q->defs[3].atoms[0].kind, SpanAtom::Kind::kSubtree);
  ASSERT_EQ(q->constraints.size(), 1u);
  EXPECT_EQ(q->constraints[0].kind, Constraint::Kind::kIn);
}

TEST(QueryParserTest, SatisfyingClauseKinds) {
  auto q = ParseQuery(R"(
      extract x:Entity from "b" if ()
      satisfying x
        (str(x) contains "Cafe" {1}) or
        (str(x) mentions "choc" {0.5}) or
        (str(x) matches "[Ll]a" {1}) or
        (x ", a cafe" {1}) or
        ("cafes such as" x {1}) or
        (x near "coffee" {0.7}) or
        (x [["serves coffee"]] {0.5}) or
        ([["baristas of"]] x {0.4}) or
        (x SimilarTo "city" {1.0}) or
        (str(x) in dict("Location") {1})
      with threshold 0.8)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->satisfying.size(), 1u);
  const auto& conds = q->satisfying[0].conditions;
  ASSERT_EQ(conds.size(), 10u);
  EXPECT_EQ(conds[0].kind, SatCondition::Kind::kStrContains);
  EXPECT_EQ(conds[1].kind, SatCondition::Kind::kStrMentions);
  EXPECT_EQ(conds[2].kind, SatCondition::Kind::kStrMatches);
  EXPECT_EQ(conds[3].kind, SatCondition::Kind::kFollowedBy);
  EXPECT_EQ(conds[4].kind, SatCondition::Kind::kPrecededBy);
  EXPECT_EQ(conds[5].kind, SatCondition::Kind::kNear);
  EXPECT_EQ(conds[6].kind, SatCondition::Kind::kDescriptorRight);
  EXPECT_EQ(conds[7].kind, SatCondition::Kind::kDescriptorLeft);
  EXPECT_EQ(conds[8].kind, SatCondition::Kind::kSimilarTo);
  EXPECT_EQ(conds[9].kind, SatCondition::Kind::kInDict);
  EXPECT_DOUBLE_EQ(conds[1].weight, 0.5);
  EXPECT_DOUBLE_EQ(q->satisfying[0].threshold, 0.8);
}

TEST(QueryParserTest, TildeIsSimilarTo) {
  auto q = ParseQuery(R"(
      extract a:Person from w.a if ( /ROOT:{ v = verb })
      satisfying v (v ~ "born" {1}) with threshold 0.9)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->satisfying[0].conditions[0].kind, SatCondition::Kind::kSimilarTo);
  EXPECT_EQ(q->satisfying[0].conditions[0].text, "born");
}

TEST(QueryParserTest, ExcludingClause) {
  auto q = ParseQuery(R"(
      extract x:Entity from "b" if ()
      excluding (str(x) matches "[Ll]a Marzocco") or (str(x) contains "CEO"))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->excluding.size(), 2u);
  EXPECT_EQ(q->excluding[0].var, "x");
}

TEST(QueryParserTest, StepConditions) {
  auto q = ParseQuery(R"(
      extract a:Str from t if (
        /ROOT:{ a = //*[@pos="noun", etype="Person"],
                b = //verb[text="ate"] }))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& c0 = q->defs[0].path.steps[0].constraint;
  EXPECT_EQ(*c0.pos, PosTag::kNoun);
  EXPECT_EQ(*c0.etype, EntityType::kPerson);
  const auto& c1 = q->defs[1].path.steps[0].constraint;
  EXPECT_EQ(*c1.pos, PosTag::kVerb);
  EXPECT_EQ(*c1.word, "ate");
}

TEST(QueryParserTest, SpanTermWithElastics) {
  auto q = ParseQuery(R"(
      extract e:Str from t if (
        /ROOT:{ a = //verb, x = a + ^ + "pie" + ^[etype="Entity"] }))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const auto& atoms = q->defs[1].atoms;
  ASSERT_EQ(atoms.size(), 4u);
  EXPECT_EQ(atoms[0].kind, SpanAtom::Kind::kVarRef);
  EXPECT_EQ(atoms[1].kind, SpanAtom::Kind::kElastic);
  EXPECT_EQ(atoms[2].kind, SpanAtom::Kind::kLiteral);
  EXPECT_EQ(atoms[3].kind, SpanAtom::Kind::kElastic);
  EXPECT_TRUE(atoms[3].elastic.any_entity);
}

TEST(QueryParserTest, MalformedQueriesRejected) {
  EXPECT_FALSE(ParseQuery("select * from t").ok());
  EXPECT_FALSE(ParseQuery("extract x from t if ()").ok());  // missing type
  EXPECT_FALSE(ParseQuery("extract x:Entity from t if (").ok());
  EXPECT_FALSE(
      ParseQuery("extract x:Entity from t if () satisfying x (x near) with "
                 "threshold 1")
          .ok());
}

TEST(CompileTest, ExampleFourOneNormalization) {
  auto q = ParseQuery(R"(
      extract a:Str, b:Str, c:Str from input.txt if (
        /ROOT:{
          a = Entity,
          b = //verb[text="ate"],
          c = b/dobj,
          d = c//"delicious",
          e = a + ^ + b + ^ + c
        }))");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto cq = CompileQuery(*q);
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  // c expands to //verb[text="ate"]/dobj.
  int c = cq->VarIndex("c");
  ASSERT_GE(c, 0);
  const auto& c_path = cq->vars[static_cast<size_t>(c)].abs_path;
  ASSERT_EQ(c_path.steps.size(), 2u);
  EXPECT_EQ(*c_path.steps[0].constraint.word, "ate");
  EXPECT_EQ(*c_path.steps[1].constraint.dep, DepLabel::kDobj);
  // d expands to //verb[text="ate"]/dobj//"delicious".
  int d = cq->VarIndex("d");
  EXPECT_EQ(cq->vars[static_cast<size_t>(d)].abs_path.steps.size(), 3u);

  // Derived constraints: b parentOf c, c ancestorOf d, and the leftOf
  // chain over e's atoms (a, v1, b, v2, c).
  int parent_of = 0, ancestor_of = 0, left_of = 0;
  for (const auto& con : cq->constraints) {
    if (con.kind == Constraint::Kind::kParentOf) ++parent_of;
    if (con.kind == Constraint::Kind::kAncestorOf) ++ancestor_of;
    if (con.kind == Constraint::Kind::kLeftOf) ++left_of;
  }
  EXPECT_EQ(parent_of, 1);
  EXPECT_EQ(ancestor_of, 1);
  EXPECT_EQ(left_of, 4);

  // Dominance: d is the only dominant path among b, c, d (§4.2.1).
  auto dominant = cq->DominantPathVars();
  ASSERT_EQ(dominant.size(), 1u);
  EXPECT_EQ(dominant[0], d);

  // Elastic atoms were lifted to variables.
  int e = cq->VarIndex("e");
  EXPECT_EQ(cq->vars[static_cast<size_t>(e)].atoms.size(), 5u);
  EXPECT_EQ(cq->horizontal.size(), 1u);
}

TEST(CompileTest, ImplicitOutputEntityVars) {
  auto q = ParseQuery("extract a:GPE, b:Date from t if ()");
  ASSERT_TRUE(q.ok());
  auto cq = CompileQuery(*q);
  ASSERT_TRUE(cq.ok());
  EXPECT_EQ(cq->vars[0].kind, CompiledVar::Kind::kEntity);
  EXPECT_EQ(*cq->vars[0].etype, EntityType::kGpe);
  EXPECT_EQ(*cq->vars[1].etype, EntityType::kDate);
}

TEST(CompileTest, UndefinedStrOutputRejected) {
  auto q = ParseQuery("extract d:Str from t if ()");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CompileQuery(*q).ok());
}

TEST(CompileTest, UnknownConstraintVarRejected) {
  auto q = ParseQuery(
      "extract a:Entity from t if ( /ROOT:{ b = //verb } (b) in (zzz))");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(CompileQuery(*q).ok());
}

}  // namespace
}  // namespace koko

#include <gtest/gtest.h>

#include "text/annotations.h"
#include "text/document.h"
#include "text/lexicon.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace koko {
namespace {

TEST(AnnotationsTest, PosRoundTrip) {
  for (int i = 0; i < kNumPosTags; ++i) {
    PosTag tag = static_cast<PosTag>(i);
    PosTag parsed;
    ASSERT_TRUE(ParsePosTag(PosTagName(tag), &parsed));
    EXPECT_EQ(parsed, tag);
  }
}

TEST(AnnotationsTest, DepRoundTrip) {
  for (int i = 0; i < kNumDepLabels; ++i) {
    DepLabel label = static_cast<DepLabel>(i);
    DepLabel parsed;
    ASSERT_TRUE(ParseDepLabel(DepLabelName(label), &parsed));
    EXPECT_EQ(parsed, label);
  }
}

TEST(AnnotationsTest, EntityRoundTrip) {
  for (int i = 0; i < kNumEntityTypes; ++i) {
    EntityType type = static_cast<EntityType>(i);
    EntityType parsed;
    ASSERT_TRUE(ParseEntityType(EntityTypeName(type), &parsed));
    EXPECT_EQ(parsed, type);
  }
}

TEST(AnnotationsTest, CaseInsensitiveAndAliases) {
  PosTag pos;
  EXPECT_TRUE(ParsePosTag("NOUN", &pos));
  EXPECT_EQ(pos, PosTag::kNoun);
  DepLabel dep;
  EXPECT_TRUE(ParseDepLabel("p", &dep));  // the paper's punct abbreviation
  EXPECT_EQ(dep, DepLabel::kPunct);
  EXPECT_FALSE(ParseDepLabel("not_a_label", &dep));
}

TEST(TokenizerTest, BasicWhitespace) {
  auto toks = Tokenizer::Tokenize("I ate a pie");
  EXPECT_EQ(toks, (std::vector<std::string>{"I", "ate", "a", "pie"}));
}

TEST(TokenizerTest, SplitsEdgePunctuation) {
  auto toks = Tokenizer::Tokenize("delicious, and salty.");
  EXPECT_EQ(toks,
            (std::vector<std::string>{"delicious", ",", "and", "salty", "."}));
}

TEST(TokenizerTest, FigureOneSentence) {
  auto toks = Tokenizer::Tokenize(
      "I ate a chocolate ice cream, which was delicious, and also ate a pie.");
  ASSERT_EQ(toks.size(), 17u);  // matches the paper's token ids 0..16
  EXPECT_EQ(toks[5], "cream");
  EXPECT_EQ(toks[6], ",");
  EXPECT_EQ(toks[9], "delicious");
  EXPECT_EQ(toks[16], ".");
}

TEST(TokenizerTest, Contractions) {
  auto toks = Tokenizer::Tokenize("don't stop");
  EXPECT_EQ(toks, (std::vector<std::string>{"do", "n't", "stop"}));
  auto poss = Tokenizer::Tokenize("Anna's cafe");
  EXPECT_EQ(poss, (std::vector<std::string>{"Anna", "'s", "cafe"}));
}

TEST(TokenizerTest, PreservesHyphens) {
  auto toks = Tokenizer::Tokenize("pour-over coffee");
  EXPECT_EQ(toks, (std::vector<std::string>{"pour-over", "coffee"}));
}

TEST(TokenizerTest, QuotedText) {
  auto toks = Tokenizer::Tokenize("\"hello\" she said");
  EXPECT_EQ(toks,
            (std::vector<std::string>{"\"", "hello", "\"", "she", "said"}));
}

TEST(SentenceSplitterTest, BasicSplit) {
  auto sents = SentenceSplitter::Split("I ate pie. It was good.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[0], "I ate pie.");
  EXPECT_EQ(sents[1], "It was good.");
}

TEST(SentenceSplitterTest, AbbreviationsDoNotSplit) {
  auto sents = SentenceSplitter::Split("Dr. Smith visited Mr. Jones. They met.");
  ASSERT_EQ(sents.size(), 2u);
  EXPECT_EQ(sents[1], "They met.");
}

TEST(SentenceSplitterTest, QuestionsAndExclamations) {
  auto sents = SentenceSplitter::Split("Really? Yes! Fine.");
  ASSERT_EQ(sents.size(), 3u);
}

TEST(SentenceSplitterTest, NoTerminator) {
  auto sents = SentenceSplitter::Split("no terminator here");
  ASSERT_EQ(sents.size(), 1u);
}

TEST(SentenceSplitterTest, LowercaseContinuationDoesNotSplit) {
  auto sents = SentenceSplitter::Split("It cost 3.50 dollars. and then some");
  // "3.50" must not split; lowercase "and" does not open a new sentence.
  ASSERT_EQ(sents.size(), 1u);
}

TEST(PosTaggerTest, ClosedClassWords) {
  auto tags = PosTagger::Tag({"the", "cat", "sat", "on", "a", "mat"});
  EXPECT_EQ(tags[0], PosTag::kDet);
  EXPECT_EQ(tags[3], PosTag::kAdp);
  EXPECT_EQ(tags[4], PosTag::kDet);
}

TEST(PosTaggerTest, FigureOneTags) {
  auto tags = PosTagger::Tag({"I", "ate", "a", "chocolate", "ice", "cream", ",",
                              "which", "was", "delicious", ",", "and", "also",
                              "ate", "a", "pie", "."});
  EXPECT_EQ(tags[0], PosTag::kPron);
  EXPECT_EQ(tags[1], PosTag::kVerb);
  EXPECT_EQ(tags[2], PosTag::kDet);
  EXPECT_EQ(tags[3], PosTag::kNoun);
  EXPECT_EQ(tags[4], PosTag::kNoun);
  EXPECT_EQ(tags[5], PosTag::kNoun);
  EXPECT_EQ(tags[6], PosTag::kPunct);
  EXPECT_EQ(tags[9], PosTag::kAdj);
  EXPECT_EQ(tags[11], PosTag::kConj);
  EXPECT_EQ(tags[12], PosTag::kAdv);
  EXPECT_EQ(tags[16], PosTag::kPunct);
}

TEST(PosTaggerTest, NumbersAndShapes) {
  auto tags = PosTagger::Tag({"born", "in", "1911", "."});
  EXPECT_EQ(tags[2], PosTag::kNum);
}

TEST(PosTaggerTest, CapitalizedMidSentenceIsProperNoun) {
  auto tags = PosTagger::Tag({"she", "visited", "Portland", "yesterday"});
  EXPECT_EQ(tags[2], PosTag::kPropn);
}

TEST(PosTaggerTest, SuffixHeuristics) {
  auto tags = PosTagger::Tag({"the", "quickly", "flanging", "exuberation"});
  EXPECT_EQ(tags[1], PosTag::kAdv);
  EXPECT_EQ(tags[2], PosTag::kVerb);
  EXPECT_EQ(tags[3], PosTag::kNoun);
}

TEST(PosTaggerTest, DetVerbFixup) {
  // "a drink" — lexically ambiguous tokens after determiners become nouns.
  auto tags = PosTagger::Tag({"she", "ordered", "a", "brew"});
  EXPECT_EQ(tags[3], PosTag::kNoun);
}

TEST(LexiconTest, Membership) {
  const Lexicon& lex = Lexicon::Get();
  EXPECT_TRUE(lex.IsCopula("was"));
  EXPECT_TRUE(lex.IsAuxiliary("had"));
  EXPECT_TRUE(lex.IsRelativePronoun("which"));
  EXPECT_TRUE(lex.IsNegation("never"));
  EXPECT_TRUE(lex.IsMonth("december"));
  EXPECT_FALSE(lex.IsMonth("cafe"));
  EXPECT_TRUE(lex.IsFunctionWord("the"));
  EXPECT_FALSE(lex.IsFunctionWord("cafe"));
}

TEST(DocumentTest, SpanText) {
  Sentence s;
  for (const char* w : {"a", "b", "c"}) {
    Token t;
    t.text = w;
    s.tokens.push_back(t);
  }
  EXPECT_EQ(s.SpanText(0, 2), "a b c");
  EXPECT_EQ(s.SpanText(1, 1), "b");
}

TEST(DocumentTest, TreeInfoComputation) {
  // 0 <- 1 -> 2, 2 -> 3 : root=1.
  Sentence s;
  for (int head : {1, -1, 1, 2}) {
    Token t;
    t.text = "w";
    t.head = head;
    s.tokens.push_back(t);
  }
  s.ComputeTreeInfo();
  EXPECT_EQ(s.root, 1);
  EXPECT_EQ(s.depth[1], 0);
  EXPECT_EQ(s.depth[3], 2);
  EXPECT_EQ(s.subtree_left[1], 0);
  EXPECT_EQ(s.subtree_right[1], 3);
  EXPECT_EQ(s.subtree_left[2], 2);
  EXPECT_EQ(s.subtree_right[2], 3);
  EXPECT_TRUE(s.IsAncestor(1, 3));
  EXPECT_FALSE(s.IsAncestor(3, 1));
}

TEST(DocumentTest, CorpusRefs) {
  AnnotatedCorpus corpus;
  corpus.docs.resize(2);
  corpus.docs[0].sentences.resize(3);
  corpus.docs[1].sentences.resize(2);
  corpus.RebuildRefs();
  EXPECT_EQ(corpus.NumSentences(), 5u);
  EXPECT_EQ(corpus.refs[3].doc, 1u);
  EXPECT_EQ(corpus.refs[3].sent, 0u);
  EXPECT_EQ(corpus.FirstSidOfDoc(1), 3u);
}

}  // namespace
}  // namespace koko

#include "ner/entity_recognizer.h"

#include <gtest/gtest.h>

#include "nlp/pipeline.h"

namespace koko {
namespace {

class NerTest : public ::testing::Test {
 protected:
  Sentence Annotate(const std::string& text) {
    return pipeline_.AnnotateSentence(text);
  }
  const Entity* FindEntity(const Sentence& s, const std::string& text) {
    for (const Entity& e : s.entities) {
      if (s.SpanText(e.begin, e.end) == text) return &e;
    }
    return nullptr;
  }
  Pipeline pipeline_;
};

TEST_F(NerTest, GpeFromGazetteer) {
  Sentence s = Annotate("She moved from Portland to Tokyo.");
  const Entity* portland = FindEntity(s, "Portland");
  ASSERT_NE(portland, nullptr);
  EXPECT_EQ(portland->type, EntityType::kGpe);
  const Entity* tokyo = FindEntity(s, "Tokyo");
  ASSERT_NE(tokyo, nullptr);
  EXPECT_EQ(tokyo->type, EntityType::kGpe);
}

TEST_F(NerTest, PersonFromFirstName) {
  Sentence s = Annotate("Yesterday Anna Mercer arrived.");
  const Entity* anna = FindEntity(s, "Anna Mercer");
  ASSERT_NE(anna, nullptr);
  EXPECT_EQ(anna->type, EntityType::kPerson);
}

TEST_F(NerTest, FacilityAndOrganizationKeywords) {
  Sentence s = Annotate("They met at the Harbor Museum near Quill Labs.");
  const Entity* museum = FindEntity(s, "Harbor Museum");
  ASSERT_NE(museum, nullptr);
  EXPECT_EQ(museum->type, EntityType::kFacility);
  const Entity* labs = FindEntity(s, "Quill Labs");
  ASSERT_NE(labs, nullptr);
  EXPECT_EQ(labs->type, EntityType::kOrganization);
}

TEST_F(NerTest, TeamSuffix) {
  Sentence s = Annotate("We cheered for Oakland United all night.");
  const Entity* team = FindEntity(s, "Oakland United");
  ASSERT_NE(team, nullptr);
  EXPECT_EQ(team->type, EntityType::kTeam);
}

TEST_F(NerTest, DateExpressions) {
  Sentence s = Annotate("She was married on 1 December 1900 in London.");
  const Entity* date = FindEntity(s, "1 December 1900");
  ASSERT_NE(date, nullptr);
  EXPECT_EQ(date->type, EntityType::kDate);
  Sentence s2 = Annotate("The house was built in 1911.");
  const Entity* year = FindEntity(s2, "1911");
  ASSERT_NE(year, nullptr);
  EXPECT_EQ(year->type, EntityType::kDate);
}

TEST_F(NerTest, NonYearNumbersAreNotDates) {
  Sentence s = Annotate("The bill came to 4250 dollars.");
  EXPECT_EQ(FindEntity(s, "4250"), nullptr);
}

TEST_F(NerTest, CommonNounMentionsBecomeOtherEntities) {
  // Example 3.2's entity index: "cheesecake", "grocery store",
  // "chocolate ice cream".
  Sentence s = Annotate(
      "Anna ate some delicious cheesecake that she bought at a grocery store.");
  const Entity* cheesecake = FindEntity(s, "cheesecake");
  ASSERT_NE(cheesecake, nullptr);
  EXPECT_EQ(cheesecake->type, EntityType::kOther);
  const Entity* store = FindEntity(s, "grocery store");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->type, EntityType::kOther);
}

TEST_F(NerTest, CapitalizedUnknownIsOther) {
  Sentence s = Annotate("We visited Brelvan Lane this week.");
  const Entity* cafe = FindEntity(s, "Brelvan Lane");
  ASSERT_NE(cafe, nullptr);
  EXPECT_EQ(cafe->type, EntityType::kOther);
}

TEST_F(NerTest, TokensCarryEntityBackrefs) {
  Sentence s = Annotate("Anna Mercer visited Tokyo.");
  for (const Entity& e : s.entities) {
    for (int t = e.begin; t <= e.end; ++t) {
      EXPECT_EQ(s.tokens[t].etype, e.type);
      ASSERT_GE(s.tokens[t].entity_id, 0);
      EXPECT_EQ(&s.entities[static_cast<size_t>(s.tokens[t].entity_id)], &e);
    }
  }
  // Non-entity tokens point nowhere.
  for (int t = 0; t < s.size(); ++t) {
    if (s.tokens[t].entity_id == -1) {
      EXPECT_EQ(s.tokens[t].etype, EntityType::kNone);
    }
  }
}

TEST_F(NerTest, EntitiesDoNotOverlap) {
  Sentence s = Annotate(
      "Anna Mercer ate delicious cheesecake at the Harbor Museum in Tokyo on "
      "1 December 1900.");
  std::vector<int> covered(static_cast<size_t>(s.size()), 0);
  for (const Entity& e : s.entities) {
    for (int t = e.begin; t <= e.end; ++t) covered[static_cast<size_t>(t)]++;
  }
  for (int c : covered) EXPECT_LE(c, 1);
}

TEST_F(NerTest, CustomGazetteer) {
  EntityRecognizer recognizer;
  recognizer.AddGazetteer(EntityType::kEvent, {"Coffee Festival"});
  EXPECT_TRUE(recognizer.InGazetteer(EntityType::kEvent, "coffee festival"));
  EXPECT_FALSE(recognizer.InGazetteer(EntityType::kEvent, "tea festival"));
}

TEST_F(NerTest, PersonGazetteerByFirstToken) {
  EntityRecognizer recognizer;
  EXPECT_TRUE(recognizer.InGazetteer(EntityType::kPerson, "anna"));
  EXPECT_TRUE(recognizer.InGazetteer(EntityType::kPerson, "anna mercer"));
  EXPECT_FALSE(recognizer.InGazetteer(EntityType::kPerson, "brelvan lane"));
}

}  // namespace
}  // namespace koko

#include "koko/aggregate.h"

#include <gtest/gtest.h>

#include "nlp/pipeline.h"

namespace koko {
namespace {

class AggregateTest : public ::testing::Test {
 protected:
  AggregateTest() : aggregator_(&embeddings_, pipeline_.recognizer(), {}) {}

  Document Doc(std::initializer_list<const char*> sentences) {
    std::string text;
    for (const char* s : sentences) {
      text += s;
      text += " ";
    }
    return pipeline_.AnnotateDocument({"t", text}, 0);
  }

  double Cond(const Document& doc, const std::string& value,
              SatCondition::Kind kind, const std::string& text) {
    SatCondition cond;
    cond.kind = kind;
    cond.var = "x";
    cond.text = text;
    return aggregator_.ConditionScore(doc, value, cond);
  }

  Pipeline pipeline_;
  EmbeddingModel embeddings_;
  Aggregator aggregator_;
};

TEST_F(AggregateTest, ContainsIsTokenLevel) {
  Document doc = Doc({"Anything."});
  // §4.4.1: "chocolate ice cream" contains "ice", mentions "choc" but does
  // not contain "choc".
  EXPECT_EQ(Cond(doc, "chocolate ice cream", SatCondition::Kind::kStrContains,
                 "ice"),
            1.0);
  EXPECT_EQ(Cond(doc, "chocolate ice cream", SatCondition::Kind::kStrContains,
                 "choc"),
            0.0);
  EXPECT_EQ(Cond(doc, "chocolate ice cream", SatCondition::Kind::kStrMentions,
                 "choc"),
            1.0);
}

TEST_F(AggregateTest, MatchesIsFullRegex) {
  Document doc = Doc({"Anything."});
  EXPECT_EQ(Cond(doc, "La Marzocco", SatCondition::Kind::kStrMatches,
                 "[Ll]a Marzocco"),
            1.0);
  EXPECT_EQ(Cond(doc, "A La Marzocco machine", SatCondition::Kind::kStrMatches,
                 "[Ll]a Marzocco"),
            0.0);
}

TEST_F(AggregateTest, FollowedByAndPrecededBy) {
  Document doc = Doc({"Brim House, a cafe in Portland, opened last month."});
  EXPECT_EQ(
      Cond(doc, "Brim House", SatCondition::Kind::kFollowedBy, ", a cafe"), 1.0);
  EXPECT_EQ(Cond(doc, "Portland", SatCondition::Kind::kFollowedBy, ", a cafe"),
            0.0);
  EXPECT_EQ(Cond(doc, "cafe", SatCondition::Kind::kPrecededBy, ", a"), 1.0);
}

TEST_F(AggregateTest, NearScoresInverseDistance) {
  Document doc = Doc({"Brim House serves great coffee."});
  // distance("Brim House", "coffee") = 2 tokens (serves, great).
  EXPECT_DOUBLE_EQ(
      Cond(doc, "Brim House", SatCondition::Kind::kNear, "coffee"),
      1.0 / 3.0);
  // Adjacent mention scores 1.
  Document doc2 = Doc({"Brim House coffee is nice."});
  EXPECT_DOUBLE_EQ(Cond(doc2, "Brim House", SatCondition::Kind::kNear, "coffee"),
                   1.0);
  // Absent string scores 0.
  EXPECT_EQ(Cond(doc, "Brim House", SatCondition::Kind::kNear, "tea"), 0.0);
}

TEST_F(AggregateTest, DescriptorMatchesParaphrase) {
  // "sells espresso" is a paraphrase of "serves coffee" in the embedding
  // clusters; the descriptor must catch it.
  Document doc = Doc({"Brim House sells espresso every day."});
  double score = Cond(doc, "Brim House", SatCondition::Kind::kDescriptorRight,
                      "serves coffee");
  EXPECT_GT(score, 0.5);
  // The unrelated phrase scores zero.
  EXPECT_EQ(Cond(doc, "Brim House", SatCondition::Kind::kDescriptorRight,
                 "plays music"),
            0.0);
}

TEST_F(AggregateTest, DescriptorRespectsSide) {
  Document doc = Doc({"Brim House sells espresso."});
  EXPECT_GT(Cond(doc, "Brim House", SatCondition::Kind::kDescriptorRight,
                 "serves coffee"),
            0.0);
  // Left-side descriptor: the evidence is to the right -> no match.
  EXPECT_EQ(Cond(doc, "Brim House", SatCondition::Kind::kDescriptorLeft,
                 "serves coffee"),
            0.0);
}

TEST_F(AggregateTest, DescriptorAggregatesOverSentences) {
  Document one = Doc({"Brim House sells espresso."});
  Document two = Doc({"Brim House sells espresso.",
                      "Brim House pours espresso for regulars."});
  SatCondition cond;
  cond.kind = SatCondition::Kind::kDescriptorRight;
  cond.text = "serves coffee";
  double s1 = aggregator_.ConditionScore(one, "Brim House", cond);
  double s2 = aggregator_.ConditionScore(two, "Brim House", cond);
  EXPECT_GT(s2, s1);  // evidence accumulates across sentences
}

TEST_F(AggregateTest, WeightedSumAndThreshold) {
  Document doc = Doc({"Brim House sells espresso."});
  SatisfyingClause clause;
  clause.var = "x";
  SatCondition strong;
  strong.kind = SatCondition::Kind::kStrContains;
  strong.var = "x";
  strong.text = "House";
  strong.weight = 1.0;
  SatCondition weak;
  weak.kind = SatCondition::Kind::kDescriptorRight;
  weak.var = "x";
  weak.text = "serves coffee";
  weak.weight = 0.5;
  clause.conditions = {strong, weak};
  double score = aggregator_.Score(doc, "Brim House", clause);
  EXPECT_GT(score, 1.0);  // 1.0 + 0.5 * conf
  EXPECT_LT(score, 1.6);
}

TEST_F(AggregateTest, DescriptorsDisabledAblation) {
  Aggregator::Options options;
  options.use_descriptors = false;
  Aggregator no_desc(&embeddings_, pipeline_.recognizer(), options);
  Document doc = Doc({"Brim House sells espresso."});
  SatCondition cond;
  cond.kind = SatCondition::Kind::kDescriptorRight;
  cond.var = "x";
  cond.text = "serves coffee";
  EXPECT_EQ(no_desc.ConditionScore(doc, "Brim House", cond), 0.0);
}

TEST_F(AggregateTest, InDictUsesGazetteer) {
  Document doc = Doc({"Anything."});
  EXPECT_EQ(Cond(doc, "Portland", SatCondition::Kind::kInDict, "GPE"), 1.0);
  EXPECT_EQ(Cond(doc, "Brim House", SatCondition::Kind::kInDict, "GPE"), 0.0);
  EXPECT_EQ(Cond(doc, "Anna Mercer", SatCondition::Kind::kInDict, "Person"),
            1.0);
}

TEST_F(AggregateTest, SimilarToUsesEmbeddings) {
  Document doc = Doc({"Anything."});
  double tokyo = Cond(doc, "Tokyo", SatCondition::Kind::kSimilarTo, "city");
  double japan = Cond(doc, "Japan", SatCondition::Kind::kSimilarTo, "city");
  EXPECT_GT(tokyo, 0.3);
  EXPECT_LT(japan, 0.3);
  EXPECT_EQ(Cond(doc, "city", SatCondition::Kind::kSimilarTo, "city"), 1.0);
}

TEST_F(AggregateTest, TokenOccurrencesHelper) {
  Pipeline p;
  Sentence s = p.AnnotateSentence("the cat and the dog and the cat");
  auto occ = TokenOccurrences(s, {"the", "cat"});
  EXPECT_EQ(occ, (std::vector<int>{0, 6}));
  EXPECT_TRUE(TokenOccurrences(s, {"the", "bird"}).empty());
  EXPECT_TRUE(TokenOccurrences(s, {}).empty());
}

}  // namespace
}  // namespace koko

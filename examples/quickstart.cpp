// Quickstart: annotate a tiny corpus, build the KOKO multi-index, run the
// paper's Example 2.1 query — extracting (entity, description) pairs for
// things described as delicious — then persist the index and reopen it
// zero-copy (LoadMode::kMap).
#include <cstdio>

#include "embed/embedding.h"
#include "index/koko_index.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"

int main() {
  using namespace koko;

  // 1. Annotate text (tokenise, tag, parse, NER) — Figure 2's preprocessing.
  Pipeline pipeline;
  std::vector<RawDocument> raw = {
      {"food-blog",
       "I ate a chocolate ice cream, which was delicious, and also ate a pie. "
       "Anna ate some delicious cheesecake that she bought at a grocery store."},
  };
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(raw);
  std::printf("corpus: %zu docs, %zu sentences, %zu tokens\n", corpus.NumDocs(),
              corpus.NumSentences(), corpus.NumTokens());

  // 2. Build the multi-index: word + entity inverted indices, PL/POS
  //    hierarchy indices (merged dependency-tree tries).
  auto index = KokoIndex::Build(corpus);
  std::printf("index: %zu tokens -> %zu PL trie nodes, %zu POS trie nodes\n",
              index->stats().num_tokens, index->stats().pl_trie_nodes,
              index->stats().pos_trie_nodes);

  // 3. Run Example 2.1: entities whose dobj subtree mentions "delicious".
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
  const char* query = R"(
      extract e:Entity, d:Str from "input.txt" if (
        /ROOT:{
          a = //verb,
          b = a/dobj,
          c = b//"delicious",
          d = (b.subtree)
        } (b) in (e))
  )";
  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("rows: %zu\n", result->rows.size());
  for (const auto& row : result->rows) {
    std::printf("  sid=%u  e=\"%s\"  d=\"%s\"\n", row.sid, row.values[0].c_str(),
                row.values[1].c_str());
  }

  // 4. Persist the index and reopen it zero-copy: LoadMode::kMap mmaps the
  //    image and aliases every posting list into the mapping (load = map +
  //    validate, no payload copy — LoadMode::kCopy deserializes instead).
  //    Queries over the mapped index are byte-identical.
  const char* image = "quickstart_index.bin";
  if (!index->Save(image).ok()) return 1;
  auto mapped = KokoIndex::Load(image, LoadMode::kMap);
  if (!mapped.ok()) {
    std::printf("mmap load failed: %s\n", mapped.status().ToString().c_str());
    return 1;
  }
  Engine mapped_engine(&corpus, mapped->get(), &embeddings,
                       pipeline.recognizer());
  auto again = mapped_engine.ExecuteText(query);
  std::printf("mmap-loaded index (mapped=%d, resident posting bytes=%zu): "
              "%zu rows\n",
              (*mapped)->mapped() ? 1 : 0, (*mapped)->SidCacheMemoryUsage(),
              again.ok() ? again->rows.size() : 0);
  std::remove(image);
  return 0;
}

// Relation extraction over encyclopedia-style text: the §6.3 DateOfBirth
// and Title queries, combining tree patterns, span terms, and SimilarTo
// filtering.
#include <cstdio>

#include "corpus/generators.h"
#include "embed/embedding.h"
#include "index/koko_index.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"

int main() {
  using namespace koko;
  auto docs = GenerateWikiArticles({.num_articles = 120, .seed = 9});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());

  std::printf("== DateOfBirth: (person, date) pairs ==\n");
  auto dob = engine.ExecuteText(R"(
extract a:Person, b:Date from wiki.article if ( /ROOT:{ v = verb })
satisfying v (v SimilarTo "born" {1}) with threshold 0.9)");
  if (!dob.ok()) {
    std::printf("failed: %s\n", dob.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < dob->rows.size() && i < 8; ++i) {
    std::printf("  %-24s born %s\n", dob->rows[i].values[0].c_str(),
                dob->rows[i].values[1].c_str());
  }
  std::printf("  ... %zu rows total\n\n", dob->rows.size());

  std::printf("== Title: (person, nickname) pairs ==\n");
  auto title = engine.ExecuteText(R"(
extract a:Person, b:Str from wiki.article if (
  /ROOT:{ v = //"called", p = v/propn, b = p.subtree, c = a + ^ + v + ^ + b }))");
  if (!title.ok()) {
    std::printf("failed: %s\n", title.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < title->rows.size() && i < 8; ++i) {
    std::printf("  %-24s called \"%s\"\n", title->rows[i].values[0].c_str(),
                title->rows[i].values[1].c_str());
  }
  std::printf("  ... %zu rows total\n", title->rows.size());
  return 0;
}

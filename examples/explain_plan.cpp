// EXPLAIN: inspect the cost-based query plan and the streaming top-k
// execution. Builds a synthetic HappyDB-style corpus, runs one query with a
// row budget, and prints (1) the compiled plan — clause order by estimated
// selectivity, per-clause intersection representation, semi-join vs
// quintuple fallback — and (2) the execution figures: candidates after
// DPLI, candidates scanned, and where early termination cut the scan. Also
// demonstrates the streaming sink: rows arrive while later candidates are
// still unevaluated.
#include <cstdio>

#include "corpus/generators.h"
#include "embed/embedding.h"
#include "index/koko_index.h"
#include "koko/engine.h"
#include "koko/explain.h"
#include "nlp/pipeline.h"

int main() {
  using namespace koko;

  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 500, .seed = 7});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
  std::printf("corpus: %zu docs, %zu sentences\n\n", corpus.NumDocs(),
              corpus.NumSentences());

  const char* query = R"(
      extract e:Entity, d:Str from "moments" if (
        /ROOT:{
          a = //verb,
          b = a/dobj,
          c = b//"delicious",
          d = (b.subtree)
        } (b) in (e))
  )";

  // Top-k with streaming: the sink sees each row the moment extraction
  // finalizes it — before later candidates are even loaded — and the scan
  // stops as soon as the budget is provably satisfied.
  EngineOptions options;
  options.max_rows = 5;
  size_t streamed = 0;
  RowSink sink = [&](const ResultRow& row) {
    ++streamed;
    std::printf("streamed row %zu: sid=%u  e=\"%s\"\n", streamed, row.sid,
                row.values[0].c_str());
  };
  options.sink = &sink;

  auto result = engine.ExecuteText(query, options);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // EXPLAIN output: the plan the engine compiled for this query (cached by
  // clause fingerprint on repeat runs) plus this execution's figures.
  std::printf("\n%s", ExplainExecution(*result).c_str());

  // The same query without a budget evaluates every candidate; the rows it
  // keeps after truncation are byte-identical to the streamed prefix.
  EngineOptions full = options;
  full.sink = nullptr;
  full.early_terminate = false;
  auto baseline = engine.ExecuteText(query, full);
  if (!baseline.ok()) return 1;
  std::printf(
      "\nfull-evaluate-then-truncate baseline: scanned %zu of %zu "
      "candidates for the same %zu rows\n",
      baseline->scanned_candidates, baseline->candidate_sentences,
      baseline->rows.size());
  return 0;
}

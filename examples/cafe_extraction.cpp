// Cafe-name extraction (the paper's running example, §2.2 / §6.1): extract
// rarely-mentioned cafe names from blog posts by aggregating weak evidence
// ("serves coffee" paraphrases, barista mentions) across each document.
#include <cstdio>

#include "corpus/generators.h"
#include "embed/embedding.h"
#include "extract/metrics.h"
#include "index/koko_index.h"
#include "koko/engine.h"
#include "nlp/pipeline.h"

int main() {
  using namespace koko;
  LabeledCorpus blogs =
      GenerateCafeBlogs({.num_articles = 30, .long_articles = false, .seed = 7});
  Pipeline pipeline;
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(blogs.docs);
  auto index = KokoIndex::Build(corpus);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings, pipeline.recognizer());
  // Domain ontology (the paper's footnote: a coffee dictionary guides
  // expansion).
  engine.AddOntologySet({"coffee", "espresso", "cappuccino", "macchiato",
                         "latte", "pour-over"});

  const char* query = R"(
extract x:Entity from "blogs" if ()
satisfying x
  (str(x) contains "Cafe" {1}) or
  (str(x) contains "Coffee" {1}) or
  (str(x) contains "Roasters" {1}) or
  (x ", a cafe" {1}) or
  (x [["serves coffee"]] {0.5}) or
  (x [["employs baristas"]] {0.5}) or
  (x [["hired a star barista"]] {0.5})
with threshold 0.6
excluding
  (str(x) matches "[Ll]a Marzocco") or
  (str(x) in dict("GPE")) or
  (str(x) in dict("Person"))
)";
  auto result = engine.ExecuteText(query);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::set<std::string> names;
  for (const auto& row : result->rows) names.insert(row.values[0]);
  std::printf("extracted %zu candidate cafes:\n", names.size());
  std::vector<std::string> predicted(names.begin(), names.end());
  for (const auto& n : predicted) std::printf("  %s\n", n.c_str());
  PRF prf = ScoreExtractionLists(blogs.gold, predicted);
  std::printf("vs ground truth: P=%.2f R=%.2f F1=%.2f\n", prf.precision,
              prf.recall, prf.f1);
  return 0;
}

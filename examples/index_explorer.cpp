// Index explorer: builds the KOKO multi-index over a corpus and reports the
// paper's §3 statistics — hierarchy-index node merging (>99% of dependency
// tree nodes disappear), index sizes, and sample posting lists.
#include <cstdio>

#include "corpus/generators.h"
#include "index/koko_index.h"
#include "nlp/pipeline.h"
#include "util/string_util.h"

int main() {
  using namespace koko;
  Pipeline pipeline;
  auto docs = GenerateWikiArticles({.num_articles = 400, .seed = 13});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = KokoIndex::Build(corpus);
  const auto& stats = index->stats();

  std::printf("corpus: %zu docs, %zu sentences, %zu tokens\n", corpus.NumDocs(),
              corpus.NumSentences(), corpus.NumTokens());
  std::printf("build time: %.3fs\n", stats.build_seconds);
  std::printf("hierarchy merging:\n");
  std::printf("  parse-label trie: %zu nodes (%.2f%% of tree nodes removed)\n",
              stats.pl_trie_nodes, 100 * stats.PlCompression());
  std::printf("  POS-tag trie:     %zu nodes (%.2f%% removed)\n",
              stats.pos_trie_nodes, 100 * stats.PosCompression());
  std::printf("total index footprint: %s\n",
              HumanBytes(index->MemoryUsage()).c_str());
  std::printf("entities indexed: %zu\n\n", stats.num_entities);

  // A posting-list peek, like the paper's Example 3.3 table.
  PathQuery path;
  for (DepLabel label : {DepLabel::kRoot, DepLabel::kDobj}) {
    PathStep step;
    step.axis = PathStep::Axis::kChild;
    step.constraint.dep = label;
    path.steps.push_back(step);
  }
  PostingList postings = index->LookupParseLabelPath(path);
  std::printf("posting list of /root/dobj (%zu entries, first 5):\n",
              postings.size());
  for (size_t i = 0; i < postings.size() && i < 5; ++i) {
    const Quintuple& q = postings[i];
    const Sentence& s = corpus.sentence(q.sid);
    std::printf("  %s(%u,%u,%u-%u,%u)\n", s.tokens[q.tid].text.c_str(), q.sid,
                q.tid, q.left, q.right, q.depth);
  }
  return 0;
}

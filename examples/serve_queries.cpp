// Concurrent query serving: many client threads share one QueryService over
// one sharded index. Demonstrates the server-core pieces added for
// heavy-traffic serving:
//
//   * admission queue (max_inflight / max_queue back-pressure),
//   * one shared thread pool for every query's parallel sections,
//   * the persistent score cache warming across repeated queries,
//   * serving off a zero-copy (mmap) index load — the production startup
//     path: workers map the shipped image instead of deserializing it.
//
// Build: cmake --build build --target serve_queries && ./build/serve_queries
// Pass "copy" as argv[1] to serve off a copy-loaded index instead.

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generators.h"
#include "index/sharded_index.h"
#include "nlp/pipeline.h"
#include "serve/query_service.h"

using namespace koko;

int main(int argc, char** argv) {
  const LoadMode mode = argc > 1 && std::strcmp(argv[1], "copy") == 0
                            ? LoadMode::kCopy
                            : LoadMode::kMap;
  // Corpus + sharded index: built once, persisted, then served from the
  // on-disk image the way a production worker would receive it.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 400, .seed = 11});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  const std::string image = "serve_queries_index.bin";
  {
    auto built = ShardedKokoIndex::Build(corpus, /*num_shards=*/4);
    if (!built->Save(image).ok()) {
      std::printf("index save failed\n");
      return 1;
    }
  }
  ShardedKokoIndex::LoadOptions load_options;
  load_options.mode = mode;
  auto loaded = ShardedKokoIndex::Load(image, load_options);
  if (!loaded.ok()) {
    std::printf("index load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  ShardedKokoIndex* index = loaded->get();
  std::printf("serving a %s-loaded index (mapped=%d, resident posting "
              "bytes=%zu)\n",
              mode == LoadMode::kMap ? "mmap" : "copy",
              index->mapped() ? 1 : 0, index->SidCacheMemoryUsage());
  EmbeddingModel embeddings;
  Engine engine(&corpus, index, &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());

  // The service owns the shared pool and the persistent score cache. At
  // most 4 queries execute at once; the 9th waiting client would be
  // rejected with Unavailable instead of piling up.
  QueryService::Options options;
  options.num_threads = 4;
  options.max_inflight = 4;
  options.max_queue = 8;
  QueryService service(&engine, options, index->num_shards());

  const std::vector<std::string> workload = {
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))",
      R"(extract e:Entity from "t" if ()
         satisfying e (e near "happy" {1}) with threshold 0.1)",
  };

  // Eight clients, two rounds each: round two runs against warm caches.
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&service, &workload, c] {
      for (int round = 0; round < 2; ++round) {
        for (const std::string& query : workload) {
          auto result = service.Run(query);
          if (!result.ok()) {
            std::printf("client %d: %s\n", c,
                        result.status().ToString().c_str());
            continue;
          }
          std::printf("client %d round %d: %zu rows in %.1f ms\n", c, round,
                      result->rows.size(), result->phases.Total() * 1e3);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  QueryService::Stats stats = service.stats();
  ScoreCache::Stats cache = service.score_cache().stats();
  std::printf(
      "\nserved %llu queries (peak inflight %llu, peak waiting %llu, "
      "rejected %llu)\nscore cache: %llu hits / %llu misses, %llu entries\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.peak_inflight),
      static_cast<unsigned long long>(stats.peak_waiting),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.entries));
  std::remove(image.c_str());
  return 0;
}

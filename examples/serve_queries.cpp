// Concurrent query serving: many client threads share one QueryService over
// one sharded index. Demonstrates the server-core pieces added for
// heavy-traffic serving:
//
//   * admission queue (max_inflight / max_queue back-pressure),
//   * one shared thread pool for every query's parallel sections,
//   * the persistent score cache warming across repeated queries.
//
// Build: cmake --build build --target serve_queries && ./build/serve_queries

#include <cstdio>
#include <thread>
#include <vector>

#include "corpus/generators.h"
#include "index/sharded_index.h"
#include "nlp/pipeline.h"
#include "serve/query_service.h"

using namespace koko;

int main() {
  // Corpus + sharded index + engine: built once, shared by every query.
  Pipeline pipeline;
  auto docs = GenerateHappyMoments({.num_moments = 400, .seed = 11});
  AnnotatedCorpus corpus = pipeline.AnnotateCorpus(docs);
  auto index = ShardedKokoIndex::Build(corpus, /*num_shards=*/4);
  EmbeddingModel embeddings;
  Engine engine(&corpus, index.get(), &embeddings,
                &const_cast<const Pipeline&>(pipeline).recognizer());

  // The service owns the shared pool and the persistent score cache. At
  // most 4 queries execute at once; the 9th waiting client would be
  // rejected with Unavailable instead of piling up.
  QueryService::Options options;
  options.num_threads = 4;
  options.max_inflight = 4;
  options.max_queue = 8;
  QueryService service(&engine, options, index->num_shards());

  const std::vector<std::string> workload = {
      R"(extract b:Str from "t" if ( /ROOT:{ a = //verb, b = a/dobj }))",
      R"(extract e:Entity from "t" if ()
         satisfying e (e near "happy" {1}) with threshold 0.1)",
  };

  // Eight clients, two rounds each: round two runs against warm caches.
  std::vector<std::thread> clients;
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&service, &workload, c] {
      for (int round = 0; round < 2; ++round) {
        for (const std::string& query : workload) {
          auto result = service.Run(query);
          if (!result.ok()) {
            std::printf("client %d: %s\n", c,
                        result.status().ToString().c_str());
            continue;
          }
          std::printf("client %d round %d: %zu rows in %.1f ms\n", c, round,
                      result->rows.size(), result->phases.Total() * 1e3);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  QueryService::Stats stats = service.stats();
  ScoreCache::Stats cache = service.score_cache().stats();
  std::printf(
      "\nserved %llu queries (peak inflight %llu, peak waiting %llu, "
      "rejected %llu)\nscore cache: %llu hits / %llu misses, %llu entries\n",
      static_cast<unsigned long long>(stats.completed),
      static_cast<unsigned long long>(stats.peak_inflight),
      static_cast<unsigned long long>(stats.peak_waiting),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.entries));
  return 0;
}

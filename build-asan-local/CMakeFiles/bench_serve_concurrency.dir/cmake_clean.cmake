file(REMOVE_RECURSE
  "CMakeFiles/bench_serve_concurrency.dir/bench/bench_serve_concurrency.cpp.o"
  "CMakeFiles/bench_serve_concurrency.dir/bench/bench_serve_concurrency.cpp.o.d"
  "bench_serve_concurrency"
  "bench_serve_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_serve_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_serve_concurrency.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_nell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_nell.dir/bench/bench_nell.cpp.o"
  "CMakeFiles/bench_nell.dir/bench/bench_nell.cpp.o.d"
  "bench_nell"
  "bench_nell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

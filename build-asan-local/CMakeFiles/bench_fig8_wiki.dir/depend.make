# Empty dependencies file for bench_fig8_wiki.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_wiki.dir/bench/bench_fig8_wiki.cpp.o"
  "CMakeFiles/bench_fig8_wiki.dir/bench/bench_fig8_wiki.cpp.o.d"
  "bench_fig8_wiki"
  "bench_fig8_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_similarto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_similarto.dir/bench/bench_similarto.cpp.o"
  "CMakeFiles/bench_similarto.dir/bench/bench_similarto.cpp.o.d"
  "bench_similarto"
  "bench_similarto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_similarto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig7_happydb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_happydb.dir/bench/bench_fig7_happydb.cpp.o"
  "CMakeFiles/bench_fig7_happydb.dir/bench/bench_fig7_happydb.cpp.o.d"
  "bench_fig7_happydb"
  "bench_fig7_happydb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_happydb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

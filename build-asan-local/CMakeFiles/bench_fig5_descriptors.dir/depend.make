# Empty dependencies file for bench_fig5_descriptors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_descriptors.dir/bench/bench_fig5_descriptors.cpp.o"
  "CMakeFiles/bench_fig5_descriptors.dir/bench/bench_fig5_descriptors.cpp.o.d"
  "bench_fig5_descriptors"
  "bench_fig5_descriptors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_descriptors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dep_parser_test.dir/tests/dep_parser_test.cpp.o"
  "CMakeFiles/dep_parser_test.dir/tests/dep_parser_test.cpp.o.d"
  "dep_parser_test"
  "dep_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dep_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

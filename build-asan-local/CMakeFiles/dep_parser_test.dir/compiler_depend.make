# Empty compiler generated dependencies file for dep_parser_test.
# This may be replaced when dependencies are built.

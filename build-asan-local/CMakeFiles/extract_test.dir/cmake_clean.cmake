file(REMOVE_RECURSE
  "CMakeFiles/extract_test.dir/tests/extract_test.cpp.o"
  "CMakeFiles/extract_test.dir/tests/extract_test.cpp.o.d"
  "extract_test"
  "extract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

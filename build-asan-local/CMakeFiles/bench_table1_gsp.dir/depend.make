# Empty dependencies file for bench_table1_gsp.
# This may be replaced when dependencies are built.

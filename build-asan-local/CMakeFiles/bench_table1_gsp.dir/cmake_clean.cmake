file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gsp.dir/bench/bench_table1_gsp.cpp.o"
  "CMakeFiles/bench_table1_gsp.dir/bench/bench_table1_gsp.cpp.o.d"
  "bench_table1_gsp"
  "bench_table1_gsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

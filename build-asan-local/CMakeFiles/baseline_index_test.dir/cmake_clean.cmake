file(REMOVE_RECURSE
  "CMakeFiles/baseline_index_test.dir/tests/baseline_index_test.cpp.o"
  "CMakeFiles/baseline_index_test.dir/tests/baseline_index_test.cpp.o.d"
  "baseline_index_test"
  "baseline_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

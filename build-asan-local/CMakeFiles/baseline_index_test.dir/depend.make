# Empty dependencies file for baseline_index_test.
# This may be replaced when dependencies are built.

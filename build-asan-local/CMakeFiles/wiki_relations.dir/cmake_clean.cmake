file(REMOVE_RECURSE
  "CMakeFiles/wiki_relations.dir/examples/wiki_relations.cpp.o"
  "CMakeFiles/wiki_relations.dir/examples/wiki_relations.cpp.o.d"
  "wiki_relations"
  "wiki_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wiki_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wiki_relations.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for sharded_index_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sharded_index_test.dir/tests/sharded_index_test.cpp.o"
  "CMakeFiles/sharded_index_test.dir/tests/sharded_index_test.cpp.o.d"
  "sharded_index_test"
  "sharded_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharded_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

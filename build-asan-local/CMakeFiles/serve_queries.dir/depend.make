# Empty dependencies file for serve_queries.
# This may be replaced when dependencies are built.

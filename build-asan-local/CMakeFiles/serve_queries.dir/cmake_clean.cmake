file(REMOVE_RECURSE
  "CMakeFiles/serve_queries.dir/examples/serve_queries.cpp.o"
  "CMakeFiles/serve_queries.dir/examples/serve_queries.cpp.o.d"
  "serve_queries"
  "serve_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cafe.dir/bench/bench_fig3_cafe.cpp.o"
  "CMakeFiles/bench_fig3_cafe.dir/bench/bench_fig3_cafe.cpp.o.d"
  "bench_fig3_cafe"
  "bench_fig3_cafe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cafe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig3_cafe.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_shard_scaleup.dir/bench/bench_shard_scaleup.cpp.o"
  "CMakeFiles/bench_shard_scaleup.dir/bench/bench_shard_scaleup.cpp.o.d"
  "bench_shard_scaleup"
  "bench_shard_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shard_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

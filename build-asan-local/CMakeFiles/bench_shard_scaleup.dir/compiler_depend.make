# Empty compiler generated dependencies file for bench_shard_scaleup.
# This may be replaced when dependencies are built.

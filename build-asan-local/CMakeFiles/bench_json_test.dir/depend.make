# Empty dependencies file for bench_json_test.
# This may be replaced when dependencies are built.

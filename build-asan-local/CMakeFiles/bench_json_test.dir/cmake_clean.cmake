file(REMOVE_RECURSE
  "CMakeFiles/bench_json_test.dir/tests/bench_json_test.cpp.o"
  "CMakeFiles/bench_json_test.dir/tests/bench_json_test.cpp.o.d"
  "bench_json_test"
  "bench_json_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

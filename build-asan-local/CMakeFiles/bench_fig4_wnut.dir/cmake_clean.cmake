file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_wnut.dir/bench/bench_fig4_wnut.cpp.o"
  "CMakeFiles/bench_fig4_wnut.dir/bench/bench_fig4_wnut.cpp.o.d"
  "bench_fig4_wnut"
  "bench_fig4_wnut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_wnut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_odin.dir/bench/bench_odin.cpp.o"
  "CMakeFiles/bench_odin.dir/bench/bench_odin.cpp.o.d"
  "bench_odin"
  "bench_odin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_odin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

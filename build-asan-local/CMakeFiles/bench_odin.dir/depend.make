# Empty dependencies file for bench_odin.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_scaleup.
# This may be replaced when dependencies are built.

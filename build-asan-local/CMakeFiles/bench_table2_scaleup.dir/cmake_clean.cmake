file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_scaleup.dir/bench/bench_table2_scaleup.cpp.o"
  "CMakeFiles/bench_table2_scaleup.dir/bench/bench_table2_scaleup.cpp.o.d"
  "bench_table2_scaleup"
  "bench_table2_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_index_build.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_index_build.dir/bench/bench_fig6_index_build.cpp.o"
  "CMakeFiles/bench_fig6_index_build.dir/bench/bench_fig6_index_build.cpp.o.d"
  "bench_fig6_index_build"
  "bench_fig6_index_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/regex_test.dir/tests/regex_test.cpp.o"
  "CMakeFiles/regex_test.dir/tests/regex_test.cpp.o.d"
  "regex_test"
  "regex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

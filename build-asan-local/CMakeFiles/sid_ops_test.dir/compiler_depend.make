# Empty compiler generated dependencies file for sid_ops_test.
# This may be replaced when dependencies are built.

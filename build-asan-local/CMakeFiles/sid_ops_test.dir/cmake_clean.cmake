file(REMOVE_RECURSE
  "CMakeFiles/sid_ops_test.dir/tests/sid_ops_test.cpp.o"
  "CMakeFiles/sid_ops_test.dir/tests/sid_ops_test.cpp.o.d"
  "sid_ops_test"
  "sid_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sid_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

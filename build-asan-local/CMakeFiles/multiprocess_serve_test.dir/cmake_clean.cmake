file(REMOVE_RECURSE
  "CMakeFiles/multiprocess_serve_test.dir/tests/multiprocess_serve_test.cpp.o"
  "CMakeFiles/multiprocess_serve_test.dir/tests/multiprocess_serve_test.cpp.o.d"
  "multiprocess_serve_test"
  "multiprocess_serve_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_serve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for multiprocess_serve_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for koko.
# This may be replaced when dependencies are built.

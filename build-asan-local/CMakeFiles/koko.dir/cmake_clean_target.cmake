file(REMOVE_RECURSE
  "libkoko.a"
)

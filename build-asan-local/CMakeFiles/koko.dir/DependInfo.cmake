
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/adv_inverted_index.cpp" "CMakeFiles/koko.dir/src/baseline/adv_inverted_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/baseline/adv_inverted_index.cpp.o.d"
  "/root/repo/src/baseline/inverted_index.cpp" "CMakeFiles/koko.dir/src/baseline/inverted_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/baseline/inverted_index.cpp.o.d"
  "/root/repo/src/baseline/koko_adapter.cpp" "CMakeFiles/koko.dir/src/baseline/koko_adapter.cpp.o" "gcc" "CMakeFiles/koko.dir/src/baseline/koko_adapter.cpp.o.d"
  "/root/repo/src/baseline/subtree_index.cpp" "CMakeFiles/koko.dir/src/baseline/subtree_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/baseline/subtree_index.cpp.o.d"
  "/root/repo/src/baseline/tree_index.cpp" "CMakeFiles/koko.dir/src/baseline/tree_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/baseline/tree_index.cpp.o.d"
  "/root/repo/src/corpus/generators.cpp" "CMakeFiles/koko.dir/src/corpus/generators.cpp.o" "gcc" "CMakeFiles/koko.dir/src/corpus/generators.cpp.o.d"
  "/root/repo/src/corpus/query_gen.cpp" "CMakeFiles/koko.dir/src/corpus/query_gen.cpp.o" "gcc" "CMakeFiles/koko.dir/src/corpus/query_gen.cpp.o.d"
  "/root/repo/src/embed/descriptor.cpp" "CMakeFiles/koko.dir/src/embed/descriptor.cpp.o" "gcc" "CMakeFiles/koko.dir/src/embed/descriptor.cpp.o.d"
  "/root/repo/src/embed/embedding.cpp" "CMakeFiles/koko.dir/src/embed/embedding.cpp.o" "gcc" "CMakeFiles/koko.dir/src/embed/embedding.cpp.o.d"
  "/root/repo/src/extract/crf.cpp" "CMakeFiles/koko.dir/src/extract/crf.cpp.o" "gcc" "CMakeFiles/koko.dir/src/extract/crf.cpp.o.d"
  "/root/repo/src/extract/ike.cpp" "CMakeFiles/koko.dir/src/extract/ike.cpp.o" "gcc" "CMakeFiles/koko.dir/src/extract/ike.cpp.o.d"
  "/root/repo/src/extract/metrics.cpp" "CMakeFiles/koko.dir/src/extract/metrics.cpp.o" "gcc" "CMakeFiles/koko.dir/src/extract/metrics.cpp.o.d"
  "/root/repo/src/extract/nell.cpp" "CMakeFiles/koko.dir/src/extract/nell.cpp.o" "gcc" "CMakeFiles/koko.dir/src/extract/nell.cpp.o.d"
  "/root/repo/src/extract/odin.cpp" "CMakeFiles/koko.dir/src/extract/odin.cpp.o" "gcc" "CMakeFiles/koko.dir/src/extract/odin.cpp.o.d"
  "/root/repo/src/index/koko_index.cpp" "CMakeFiles/koko.dir/src/index/koko_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/index/koko_index.cpp.o.d"
  "/root/repo/src/index/path.cpp" "CMakeFiles/koko.dir/src/index/path.cpp.o" "gcc" "CMakeFiles/koko.dir/src/index/path.cpp.o.d"
  "/root/repo/src/index/path_lookup.cpp" "CMakeFiles/koko.dir/src/index/path_lookup.cpp.o" "gcc" "CMakeFiles/koko.dir/src/index/path_lookup.cpp.o.d"
  "/root/repo/src/index/sharded_index.cpp" "CMakeFiles/koko.dir/src/index/sharded_index.cpp.o" "gcc" "CMakeFiles/koko.dir/src/index/sharded_index.cpp.o.d"
  "/root/repo/src/index/sid_ops.cpp" "CMakeFiles/koko.dir/src/index/sid_ops.cpp.o" "gcc" "CMakeFiles/koko.dir/src/index/sid_ops.cpp.o.d"
  "/root/repo/src/koko/aggregate.cpp" "CMakeFiles/koko.dir/src/koko/aggregate.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/aggregate.cpp.o.d"
  "/root/repo/src/koko/compile.cpp" "CMakeFiles/koko.dir/src/koko/compile.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/compile.cpp.o.d"
  "/root/repo/src/koko/engine.cpp" "CMakeFiles/koko.dir/src/koko/engine.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/engine.cpp.o.d"
  "/root/repo/src/koko/explain.cpp" "CMakeFiles/koko.dir/src/koko/explain.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/explain.cpp.o.d"
  "/root/repo/src/koko/lexer.cpp" "CMakeFiles/koko.dir/src/koko/lexer.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/lexer.cpp.o.d"
  "/root/repo/src/koko/parser.cpp" "CMakeFiles/koko.dir/src/koko/parser.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/parser.cpp.o.d"
  "/root/repo/src/koko/planner.cpp" "CMakeFiles/koko.dir/src/koko/planner.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/planner.cpp.o.d"
  "/root/repo/src/koko/printer.cpp" "CMakeFiles/koko.dir/src/koko/printer.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/printer.cpp.o.d"
  "/root/repo/src/koko/score_cache.cpp" "CMakeFiles/koko.dir/src/koko/score_cache.cpp.o" "gcc" "CMakeFiles/koko.dir/src/koko/score_cache.cpp.o.d"
  "/root/repo/src/ner/entity_recognizer.cpp" "CMakeFiles/koko.dir/src/ner/entity_recognizer.cpp.o" "gcc" "CMakeFiles/koko.dir/src/ner/entity_recognizer.cpp.o.d"
  "/root/repo/src/nlp/pipeline.cpp" "CMakeFiles/koko.dir/src/nlp/pipeline.cpp.o" "gcc" "CMakeFiles/koko.dir/src/nlp/pipeline.cpp.o.d"
  "/root/repo/src/parser/dep_parser.cpp" "CMakeFiles/koko.dir/src/parser/dep_parser.cpp.o" "gcc" "CMakeFiles/koko.dir/src/parser/dep_parser.cpp.o.d"
  "/root/repo/src/regex/regex.cpp" "CMakeFiles/koko.dir/src/regex/regex.cpp.o" "gcc" "CMakeFiles/koko.dir/src/regex/regex.cpp.o.d"
  "/root/repo/src/replay/fuzz.cpp" "CMakeFiles/koko.dir/src/replay/fuzz.cpp.o" "gcc" "CMakeFiles/koko.dir/src/replay/fuzz.cpp.o.d"
  "/root/repo/src/replay/traffic.cpp" "CMakeFiles/koko.dir/src/replay/traffic.cpp.o" "gcc" "CMakeFiles/koko.dir/src/replay/traffic.cpp.o.d"
  "/root/repo/src/replay/workloads.cpp" "CMakeFiles/koko.dir/src/replay/workloads.cpp.o" "gcc" "CMakeFiles/koko.dir/src/replay/workloads.cpp.o.d"
  "/root/repo/src/serve/query_service.cpp" "CMakeFiles/koko.dir/src/serve/query_service.cpp.o" "gcc" "CMakeFiles/koko.dir/src/serve/query_service.cpp.o.d"
  "/root/repo/src/storage/doc_store.cpp" "CMakeFiles/koko.dir/src/storage/doc_store.cpp.o" "gcc" "CMakeFiles/koko.dir/src/storage/doc_store.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "CMakeFiles/koko.dir/src/storage/table.cpp.o" "gcc" "CMakeFiles/koko.dir/src/storage/table.cpp.o.d"
  "/root/repo/src/text/annotations.cpp" "CMakeFiles/koko.dir/src/text/annotations.cpp.o" "gcc" "CMakeFiles/koko.dir/src/text/annotations.cpp.o.d"
  "/root/repo/src/text/document.cpp" "CMakeFiles/koko.dir/src/text/document.cpp.o" "gcc" "CMakeFiles/koko.dir/src/text/document.cpp.o.d"
  "/root/repo/src/text/lexicon.cpp" "CMakeFiles/koko.dir/src/text/lexicon.cpp.o" "gcc" "CMakeFiles/koko.dir/src/text/lexicon.cpp.o.d"
  "/root/repo/src/text/pos_tagger.cpp" "CMakeFiles/koko.dir/src/text/pos_tagger.cpp.o" "gcc" "CMakeFiles/koko.dir/src/text/pos_tagger.cpp.o.d"
  "/root/repo/src/text/tokenizer.cpp" "CMakeFiles/koko.dir/src/text/tokenizer.cpp.o" "gcc" "CMakeFiles/koko.dir/src/text/tokenizer.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "CMakeFiles/koko.dir/src/util/logging.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/logging.cpp.o.d"
  "/root/repo/src/util/mmap_file.cpp" "CMakeFiles/koko.dir/src/util/mmap_file.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/mmap_file.cpp.o.d"
  "/root/repo/src/util/simd.cpp" "CMakeFiles/koko.dir/src/util/simd.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/simd.cpp.o.d"
  "/root/repo/src/util/simd_avx2.cpp" "CMakeFiles/koko.dir/src/util/simd_avx2.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/simd_avx2.cpp.o.d"
  "/root/repo/src/util/simd_neon.cpp" "CMakeFiles/koko.dir/src/util/simd_neon.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/simd_neon.cpp.o.d"
  "/root/repo/src/util/simd_sse.cpp" "CMakeFiles/koko.dir/src/util/simd_sse.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/simd_sse.cpp.o.d"
  "/root/repo/src/util/status.cpp" "CMakeFiles/koko.dir/src/util/status.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/status.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "CMakeFiles/koko.dir/src/util/string_util.cpp.o" "gcc" "CMakeFiles/koko.dir/src/util/string_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/workload_fuzz_test.dir/tests/workload_fuzz_test.cpp.o"
  "CMakeFiles/workload_fuzz_test.dir/tests/workload_fuzz_test.cpp.o.d"
  "workload_fuzz_test"
  "workload_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

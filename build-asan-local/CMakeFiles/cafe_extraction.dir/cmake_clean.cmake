file(REMOVE_RECURSE
  "CMakeFiles/cafe_extraction.dir/examples/cafe_extraction.cpp.o"
  "CMakeFiles/cafe_extraction.dir/examples/cafe_extraction.cpp.o.d"
  "cafe_extraction"
  "cafe_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cafe_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cafe_extraction.
# This may be replaced when dependencies are built.

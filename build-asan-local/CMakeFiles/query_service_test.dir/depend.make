# Empty dependencies file for query_service_test.
# This may be replaced when dependencies are built.

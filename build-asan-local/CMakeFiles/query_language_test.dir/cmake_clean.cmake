file(REMOVE_RECURSE
  "CMakeFiles/query_language_test.dir/tests/query_language_test.cpp.o"
  "CMakeFiles/query_language_test.dir/tests/query_language_test.cpp.o.d"
  "query_language_test"
  "query_language_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

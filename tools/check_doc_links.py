#!/usr/bin/env python3
"""Checks documentation for references to nonexistent files.

Two kinds of references are validated in README.md and docs/*.md (plus any
extra files passed as arguments):

  * Markdown links  [text](target) — external schemes (http, https,
    mailto) and pure anchors (#...) are skipped; everything else must
    resolve, relative to the containing file, to an existing file or
    directory (anchor fragments are stripped).
  * Path-like tokens anywhere in the text, e.g. src/index/sid_ops.h or
    tests/engine_test.cpp — anything with a directory separator and a
    known source/doc extension must exist relative to the repository
    root. Tokens containing wildcards (BENCH_*.json) are skipped.

Exits nonzero listing every broken reference. No dependencies beyond the
standard library; CI runs it as the docs job.
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
PATH_TOKEN = re.compile(
    r"(?<![\w/])((?:\.?[A-Za-z0-9_.-]+/)+[A-Za-z0-9_.-]+"
    r"\.(?:h|hpp|cc|cpp|md|py|yml|yaml|json|txt))(?![\w/])"
)
EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(argv):
    files = [REPO_ROOT / "README.md"]
    files += sorted((REPO_ROOT / "docs").glob("*.md"))
    files += [Path(arg).resolve() for arg in argv]
    return [f for f in files if f.exists()]


def check_file(doc: Path):
    errors = []
    try:
        name = str(doc.relative_to(REPO_ROOT))
    except ValueError:
        name = str(doc)
    text = doc.read_text(encoding="utf-8")
    for match in MD_LINK.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        resolved = (doc.parent / path).resolve()
        if not resolved.exists():
            errors.append(f"{name}: broken link -> {target}")
    for match in PATH_TOKEN.finditer(text):
        token = match.group(1)
        if "*" in token:
            continue
        if not (REPO_ROOT / token).exists() and not (doc.parent / token).exists():
            errors.append(f"{name}: reference to nonexistent file -> {token}")
    return errors


def main(argv):
    errors = []
    checked = doc_files(argv)
    for doc in checked:
        errors.extend(check_file(doc))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(checked)} file(s): "
          f"{'FAIL' if errors else 'OK'} ({len(errors)} broken reference(s))")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

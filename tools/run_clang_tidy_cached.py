#!/usr/bin/env python3
"""clang-tidy over compile_commands.json with a content-hash result cache.

CI's static-analysis job runs the whole tree through clang-tidy with a
warning budget of zero; an uncached run re-analyzes every TU on every push
and takes tens of minutes. This wrapper keeps the job fast enough to gate
on: each translation unit's verdict is cached under a key covering

  * the TU's own content,
  * every in-repo header it includes (transitively, via a quick regex scan
    over `#include "..."` lines),
  * the .clang-tidy configuration, and
  * the clang-tidy version string,

so a typical PR re-analyzes only the files it touched. Only *clean*
verdicts are cached — a TU with findings is re-run (and re-reported) until
it is fixed. Cache entries are plain marker files under --cache-dir
(default .clang-tidy-cache/), safe to persist with actions/cache.

Usage:
  python3 tools/run_clang_tidy_cached.py -p build [--clang-tidy clang-tidy]
      [--cache-dir .clang-tidy-cache] [--jobs N] [paths...]

Positional paths filter the TUs (default: src/ bench/ tests/ examples/).
Exits nonzero if any analyzed TU produced a warning or error.
"""

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def local_header_closure(tu: Path, include_dirs):
    """In-repo headers reachable from `tu` via quoted includes."""
    seen = set()
    stack = [tu]
    while stack:
        path = stack.pop()
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for name in INCLUDE.findall(text):
            for base in [path.parent, *include_dirs]:
                candidate = (base / name).resolve()
                if candidate.is_file() and REPO_ROOT in candidate.parents:
                    if candidate not in seen:
                        seen.add(candidate)
                        stack.append(candidate)
                    break
    return sorted(seen)


def tu_key(tu: Path, include_dirs, config_digest: str, version: str) -> str:
    h = hashlib.sha256()
    h.update(version.encode())
    h.update(config_digest.encode())
    for path in [tu, *local_header_closure(tu, include_dirs)]:
        h.update(str(path.relative_to(REPO_ROOT)).encode())
        h.update(path.read_bytes())
    return h.hexdigest()


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("-p", "--build-dir", default="build",
                        help="dir containing compile_commands.json")
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--cache-dir", default=".clang-tidy-cache")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("paths", nargs="*",
                        default=["src", "bench", "tests", "examples"])
    args = parser.parse_args()

    if shutil.which(args.clang_tidy) is None:
        print(f"error: {args.clang_tidy} not found on PATH", file=sys.stderr)
        return 2

    compile_db = Path(args.build_dir) / "compile_commands.json"
    if not compile_db.is_file():
        print(f"error: {compile_db} missing — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON", file=sys.stderr)
        return 2

    wanted = [REPO_ROOT / p for p in args.paths]
    tus = []
    for entry in json.loads(compile_db.read_text()):
        tu = Path(entry["file"]).resolve()
        if any(w == tu or w in tu.parents for w in wanted):
            tus.append(tu)
    tus = sorted(set(tus))

    version = subprocess.run([args.clang_tidy, "--version"], check=True,
                             capture_output=True, text=True).stdout.strip()
    config_digest = hashlib.sha256(
        (REPO_ROOT / ".clang-tidy").read_bytes()).hexdigest()
    include_dirs = [REPO_ROOT / "src", REPO_ROOT / "bench"]

    cache_dir = Path(args.cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    def run_one(tu: Path):
        key = tu_key(tu, include_dirs, config_digest, version)
        marker = cache_dir / key
        if marker.exists():
            return tu, 0, "(cached clean)"
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", str(tu)],
            capture_output=True, text=True)
        noisy = proc.returncode != 0 or "warning:" in proc.stdout
        if not noisy:
            marker.touch()
        return tu, (1 if noisy else 0), proc.stdout.strip()

    failures = 0
    with ThreadPoolExecutor(max_workers=max(1, args.jobs)) as pool:
        for tu, status, output in pool.map(run_one, tus):
            rel = tu.relative_to(REPO_ROOT)
            if status:
                failures += 1
                print(f"FAIL {rel}\n{output}\n")
            else:
                print(f"ok   {rel} {output if 'cached' in output else ''}")
    print(f"clang-tidy: {len(tus)} TU(s), {failures} with findings "
          f"(budget: 0)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Project-specific invariant lints the generic tools cannot express.

Companion to the compiler-level gates (clang -Werror=thread-safety,
clang-tidy, -Wconversion): these rules encode *repo* conventions, so they
run everywhere — python3 tools/lint_invariants.py — with no compiler
involved. CI runs this in the static-analysis job; rationale and the
how-to-extend guide live in docs/STATIC_ANALYSIS.md.

Rules:

  R1 raw-mmap      `mmap(`/`munmap(` calls only inside src/util/ — every
                   other layer goes through MappedFile, whose RAII +
                   bounds-checked spans are what the "validate before
                   alias" contract audits.
  R2 raw-mutex     no `std::mutex` / `std::condition_variable` /
                   `std::lock_guard` / `std::unique_lock` /
                   `std::scoped_lock` in src/ outside
                   src/util/thread_annotations.h. The clang thread-safety
                   analysis can only follow the annotated koko::Mutex /
                   MutexLock / CondVar wrappers; a raw std::mutex would be
                   invisible to the lock-discipline gate.
  R3 guarded-by    every `Mutex` member declared in src/ must have at
                   least one KOKO_GUARDED_BY(that_mutex) /
                   KOKO_REQUIRES(that_mutex) / KOKO_ACQUIRE(that_mutex)
                   in the same file — a mutex protecting nothing is either
                   dead or (worse) protecting something unannotated.
  R4 test-labels   every tests/*_test.cpp is registered in CMakeLists.txt
                   via koko_add_test(<name> LABELS <at least one>), so new
                   suites cannot silently miss the CI label matrix.
  R5 bench-schema  every BENCH json field name emitted by bench/*.cpp
                   (SetMeta keys and AddEntry value keys) is documented in
                   docs/BENCH_SCHEMA.md — the JSON artifacts are consumed
                   across PRs, so field names are a versioned contract.
  R6 memcpy-fixed  no `memcpy` whose destination is a fixed-size stack
                   array outside src/util/ — sized-buffer copies belong
                   behind the bounds-checked span/serde helpers.
  R7 bench-smoke   every paper-workload bench (the fig3/fig4/fig5/fig7/
                   fig8/table1 reproductions and the traffic-replay
                   harness) is registered in CMakeLists.txt via
                   koko_add_bench_smoke(<name> LABELS ... ARGS ...) with
                   the `workloads` label, so `ctest -L workloads` executes
                   them — a bench that only compiles can silently rot.
  R8 tracked-artifacts  no build artifacts in the git index: tracked paths
                   must not live under a build*/ directory or be CMake
                   cache/generated files (CMakeCache.txt, CMakeFiles/,
                   CTestTestfile.cmake, cmake_install.cmake, *.o, *.a,
                   compile_commands.json). A committed build tree (the PR 9
                   regression) bloats every clone and pins one machine's
                   absolute paths into history. Skipped when git is absent.

A line may opt out of R1/R2/R6 with a trailing justification comment:
    // lint:allow(<rule>): <reason>
Every suppression must carry a reason; bare `lint:allow` fails the lint.
Exits nonzero listing every violation. Standard library only.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

ALLOW = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\):\s*\S")
BARE_ALLOW = re.compile(r"//\s*lint:allow\b(?!\([a-z0-9-]+\):\s*\S)")


def src_files(subdir="src", exts=(".h", ".cpp", ".cc")):
    root = REPO_ROOT / subdir
    return sorted(p for p in root.rglob("*") if p.suffix in exts)


def strip_line_comment(line):
    return line.split("//", 1)[0]


def allowed(line, rule):
    m = ALLOW.search(line)
    return m is not None and m.group(1) == rule


def rel(path):
    return str(path.relative_to(REPO_ROOT))


def check_raw_mmap():
    """R1: raw mmap/munmap only under src/util/."""
    errors = []
    pattern = re.compile(r"\b(?:::)?m(?:un)?map\s*\(")
    for path in src_files():
        if rel(path).startswith("src/util/"):
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(strip_line_comment(line)) and not allowed(
                line, "raw-mmap"
            ):
                errors.append(
                    f"{rel(path)}:{n}: [raw-mmap] raw mmap/munmap outside "
                    "src/util/ — use MappedFile"
                )
    return errors


def check_raw_mutex():
    """R2: std synchronization primitives only via thread_annotations.h."""
    errors = []
    pattern = re.compile(
        r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
        r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock)\b"
    )
    for path in src_files():
        if rel(path) == "src/util/thread_annotations.h":
            continue
        for n, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.search(strip_line_comment(line)) and not allowed(
                line, "raw-mutex"
            ):
                errors.append(
                    f"{rel(path)}:{n}: [raw-mutex] raw std sync primitive — "
                    "use koko::Mutex/MutexLock/CondVar so the thread-safety "
                    "analysis can see the lock"
                )
    return errors


def check_guarded_by():
    """R3: every Mutex member has a KOKO_GUARDED_BY neighbor in-file."""
    errors = []
    # `Mutex name_;` or `mutable Mutex name;` members (skip locals: heuristic
    # is the declaration position — members end with `_;` or live in files
    # where the same identifier appears inside KOKO_* annotations anyway, so
    # we simply require *some* annotation referencing each declared name).
    decl = re.compile(r"\b(?:mutable\s+)?(?:koko::)?Mutex\s+(\w+)\s*;")
    for path in src_files():
        if rel(path) == "src/util/thread_annotations.h":
            continue
        text = path.read_text()
        for m in decl.finditer(text):
            name = m.group(1)
            uses = re.findall(
                r"KOKO_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|"
                rf"EXCLUDES)\(\s*{re.escape(name)}\s*\)",
                text,
            )
            if not uses:
                n = text[: m.start()].count("\n") + 1
                errors.append(
                    f"{rel(path)}:{n}: [guarded-by] Mutex `{name}` has no "
                    "KOKO_GUARDED_BY/KOKO_REQUIRES neighbor in this file — "
                    "annotate what it protects"
                )
    return errors


def check_test_labels():
    """R4: every tests/*_test.cpp registered with >=1 ctest label."""
    errors = []
    cmake = (REPO_ROOT / "CMakeLists.txt").read_text()
    registered = {
        m.group(1): m.group(2).split()
        for m in re.finditer(
            r"koko_add_test\(\s*(\w+)\s+LABELS\s+([^)]+)\)", cmake
        )
    }
    for path in sorted((REPO_ROOT / "tests").glob("*_test.cpp")):
        name = path.stem
        labels = registered.get(name)
        if labels is None:
            errors.append(
                f"tests/{path.name}: [test-labels] not registered via "
                "koko_add_test(...) in CMakeLists.txt"
            )
        elif not labels:
            errors.append(
                f"tests/{path.name}: [test-labels] registered without any "
                "ctest label"
            )
    for name in registered:
        if not (REPO_ROOT / "tests" / f"{name}.cpp").exists():
            errors.append(
                f"CMakeLists.txt: [test-labels] koko_add_test({name}) has no "
                f"tests/{name}.cpp"
            )
    return errors


def check_bench_schema():
    """R5: bench JSON field names match docs/BENCH_SCHEMA.md."""
    errors = []
    schema_path = REPO_ROOT / "docs" / "BENCH_SCHEMA.md"
    if not schema_path.exists():
        return ["docs/BENCH_SCHEMA.md: [bench-schema] schema doc missing"]
    documented = set(re.findall(r"`([a-z][a-z0-9_]*)`", schema_path.read_text()))
    # Field-name string literals: SetMeta("key", ...) and the first string of
    # every {"key", value} pair passed to AddEntry. Entry *names* (first
    # positional AddEntry argument) are free-form and not checked.
    meta_key = re.compile(r'SetMeta\(\s*"([a-z][a-z0-9_]*)"')
    pair_key = re.compile(r'\{\s*"([a-z][a-z0-9_]*)"\s*,')
    for path in sorted((REPO_ROOT / "bench").glob("*.cpp")):
        text = path.read_text()
        if "JsonEmitter" not in text:
            continue  # no JSON output from this bench, no schema to honor
        for n, line in enumerate(text.splitlines(), 1):
            for m in list(meta_key.finditer(line)) + list(pair_key.finditer(line)):
                key = m.group(1)
                if key not in documented:
                    errors.append(
                        f"bench/{path.name}:{n}: [bench-schema] JSON field "
                        f"`{key}` not documented in docs/BENCH_SCHEMA.md"
                    )
    return errors


def check_memcpy_fixed():
    """R6: no memcpy into a fixed-size stack array outside src/util/."""
    errors = []
    call = re.compile(r"\b(?:std::|__builtin_)?memcpy\s*\(\s*&?(\w+)")
    for path in src_files():
        if rel(path).startswith("src/util/"):
            continue
        text = path.read_text()
        lines = text.splitlines()
        for n, line in enumerate(lines, 1):
            m = call.search(strip_line_comment(line))
            if not m or allowed(line, "memcpy-fixed"):
                continue
            dest = m.group(1)
            # Fixed-size array declaration of the destination in this file:
            # `type name[123]` (ignore subscripted *uses* like name[i]).
            if re.search(rf"\b\w+\s+{re.escape(dest)}\s*\[\s*\d", text):
                errors.append(
                    f"{rel(path)}:{n}: [memcpy-fixed] memcpy into fixed-size "
                    f"buffer `{dest}` outside src/util/ — use the "
                    "bounds-checked serde/span helpers"
                )
    return errors


def check_bench_smokes():
    """R7: workload-class benches registered as labeled ctest smokes."""
    errors = []
    required = {
        "bench_fig3_cafe",
        "bench_fig4_wnut",
        "bench_fig5_descriptors",
        "bench_fig7_happydb",
        "bench_fig8_wiki",
        "bench_table1_gsp",
        "bench_workloads",
    }
    cmake = (REPO_ROOT / "CMakeLists.txt").read_text()
    registered = {}
    for m in re.finditer(
        r"koko_add_bench_smoke\(\s*(\w+)\s+LABELS\s+([^)]*)\)", cmake
    ):
        tokens = m.group(2).split()
        labels = tokens[: tokens.index("ARGS")] if "ARGS" in tokens else tokens
        registered[m.group(1)] = labels
    for name in sorted(required):
        labels = registered.get(name)
        if labels is None:
            errors.append(
                f"CMakeLists.txt: [bench-smoke] {name} has no "
                "koko_add_bench_smoke(...) registration"
            )
        elif "workloads" not in labels:
            errors.append(
                f"CMakeLists.txt: [bench-smoke] {name} smoke lacks the "
                "`workloads` label (ctest -L workloads must run it)"
            )
    for name in registered:
        if not (REPO_ROOT / "bench" / f"{name}.cpp").exists():
            errors.append(
                f"CMakeLists.txt: [bench-smoke] koko_add_bench_smoke({name}) "
                f"has no bench/{name}.cpp"
            )
    return errors


def check_tracked_artifacts():
    """R8: the git index contains no build trees or CMake artifacts."""
    try:
        proc = subprocess.run(
            ["git", "ls-files", "-z"],
            cwd=REPO_ROOT,
            capture_output=True,
            timeout=30,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        # Not a git checkout (e.g. a tarball export): nothing to check.
        return []
    tracked = [p for p in proc.stdout.decode().split("\0") if p]
    artifact = re.compile(
        r"(^|/)(build[^/]*/"  # any build tree, e.g. build-asan-local/
        r"|CMakeCache\.txt$"
        r"|CMakeFiles/"
        r"|CTestTestfile\.cmake$"
        r"|cmake_install\.cmake$"
        r"|compile_commands\.json$)"
    )
    binary_suffix = re.compile(r"\.(o|a|so|bin)$")
    errors = []
    for path in tracked:
        if artifact.search(path) or binary_suffix.search(path):
            errors.append(
                f"{path}: [tracked-artifacts] build artifact tracked by git "
                "— remove it (git rm -r --cached) and rely on .gitignore's "
                "build*/ pattern"
            )
    return errors


def check_bare_allows():
    """A lint:allow without rule+reason is itself a violation."""
    errors = []
    for path in src_files() + src_files("bench") + src_files("tests"):
        for n, line in enumerate(path.read_text().splitlines(), 1):
            if BARE_ALLOW.search(line):
                errors.append(
                    f"{rel(path)}:{n}: [allow-syntax] lint:allow must be "
                    "lint:allow(<rule>): <reason>"
                )
    return errors


CHECKS = [
    check_raw_mmap,
    check_raw_mutex,
    check_guarded_by,
    check_test_labels,
    check_bench_schema,
    check_memcpy_fixed,
    check_bench_smokes,
    check_tracked_artifacts,
    check_bare_allows,
]


def main():
    errors = []
    for check in CHECKS:
        errors.extend(check())
    for error in errors:
        print(error, file=sys.stderr)
    print(
        f"lint_invariants: ran {len(CHECKS)} rule(s): "
        f"{'FAIL' if errors else 'OK'} ({len(errors)} violation(s))"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())

#ifndef KOKO_EMBED_EMBEDDING_H_
#define KOKO_EMBED_EMBEDDING_H_

#include <array>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace koko {

/// A phrase with an associated confidence/similarity score in [0, 1].
struct WeightedPhrase {
  std::string text;
  double score = 0.0;
};

/// \brief Deterministic paraphrase-aware word-embedding model.
///
/// Substitute for the counter-fitted paraphrase embeddings the paper uses
/// (github.com/nmrksic/counter-fitting). The geometry is constructed rather
/// than trained:
///
///  * every word gets a hash-seeded unit base vector (near-orthogonal to
///    all others);
///  * words in the same paraphrase cluster (serve/sell/offer..., coffee/
///    espresso/macchiato...) are pulled 75% toward a shared centroid, giving
///    within-cluster cosine ~0.9 — the "counter-fitting" effect;
///  * is-a relatedness lists (city -> tokyo, beijing...) pull instances
///    weakly toward the concept_word vector, giving cosine ~0.35-0.55 with a
///    per-word deterministic jitter (matching the score spread of the
///    paper's Example 2.2);
///  * unrelated words stay near-orthogonal (cosine ~0).
///
/// This realises exactly the property descriptor expansion needs: synonyms
/// score high, related terms medium, noise ~zero — deterministically, so
/// tests can assert on expansions.
class EmbeddingModel {
 public:
  static constexpr int kDim = 512;
  using Vector = std::array<float, kDim>;

  /// Model with the built-in paraphrase clusters and relatedness lists.
  EmbeddingModel();

  /// Embedding of a (lower-cased) word. Unknown words get their hash-seeded
  /// base vector. A trailing plural 's' is stripped when the exact form is
  /// unknown but the singular is in a cluster.
  const Vector& Embed(std::string_view word) const;

  /// Cosine similarity of two words, in [-1, 1] (practically [0, 1] here).
  double Similarity(std::string_view a, std::string_view b) const;

  /// Cosine similarity of mean vectors of the two phrases' words.
  double PhraseSimilarity(std::string_view a, std::string_view b) const;

  /// Top-k vocabulary words most similar to `word` with similarity >=
  /// `min_sim`, excluding the word itself. Only words in clusters or
  /// relatedness lists (plus registered words) are candidates.
  std::vector<WeightedPhrase> Neighbors(std::string_view word, int k,
                                        double min_sim) const;

  /// Adds a word to the neighbour-candidate vocabulary.
  void RegisterWord(std::string_view word);

  /// Declares `words` mutually paraphrastic (joins/extends a cluster).
  void AddParaphraseCluster(const std::vector<std::string>& words);

  /// Declares every word of `instances` an instance of `concept_word`
  /// (similarity ~0.35-0.55 to the concept_word).
  void AddRelatedness(const std::string& concept_word,
                      const std::vector<std::string>& instances);

  const std::vector<std::string>& vocabulary() const { return vocab_; }

 private:
  Vector ComputeEmbedding(const std::string& word) const;
  static Vector BaseVector(uint64_t seed);
  static void Normalize(Vector* v);

  std::unordered_map<std::string, int> cluster_of_;       // word -> cluster id
  std::vector<uint64_t> cluster_seeds_;                   // cluster id -> seed
  std::unordered_map<std::string, std::string> concept_of_;  // instance -> concept_word
  std::vector<std::string> vocab_;
  std::unordered_map<std::string, bool> in_vocab_;
  mutable std::unordered_map<std::string, Vector> cache_;
};

}  // namespace koko

#endif  // KOKO_EMBED_EMBEDDING_H_

#include "embed/embedding.h"

#include <algorithm>
#include <cmath>

#include "util/hash.h"
#include "util/string_util.h"

namespace koko {

namespace {

struct ClusterDef {
  std::initializer_list<const char*> words;
};

// Built-in paraphrase clusters (the counter-fitted synonym structure the
// cafe queries rely on).
const std::initializer_list<ClusterDef> kClusters = {
    {{"serves", "sells", "offers", "pours", "serve", "sell", "offer"}},
    {{"served", "sold", "offered", "poured"}},
    {{"coffee", "espresso", "cappuccino", "macchiato", "latte", "brew"}},
    {{"employs", "hires", "recruits", "employ", "hire"}},
    {{"employed", "hired", "recruited"}},
    {{"barista", "baristas"}},
    {{"delicious", "tasty", "scrumptious", "yummy", "flavorful"}},
    {{"great", "excellent", "amazing", "wonderful", "fantastic"}},
    {{"is", "was", "are", "were", "be"}},
    {{"born"}},
    {{"menu", "list"}},
    {{"shop", "store"}},
    {{"city", "cities", "town"}},
    {{"country", "countries", "nation"}},
    {{"soccer", "football"}},
    {{"host", "hosts", "hosted"}},
    {{"went", "go", "goes", "gone"}},
};

struct RelatedDef {
  const char* concept_word;
  std::initializer_list<const char*> instances;
};

const std::initializer_list<RelatedDef> kRelated = {
    {"city",
     {"tokyo", "beijing", "paris", "london", "portland", "seattle", "austin",
      "denver", "chicago", "boston", "kyoto", "osaka", "seoul", "sydney",
      "toronto", "vienna", "oslo", "lisbon", "dublin", "prague"}},
    {"country",
     {"china", "japan", "france", "england", "germany", "italy", "spain",
      "korea", "india", "australia", "canada", "austria", "norway", "ireland",
      "finland", "greece", "egypt", "peru", "kenya", "vietnam", "thailand"}},
    {"coffee", {"pour-over", "drip", "cortado", "americano", "mocha"}},
    {"food", {"cake", "pie", "cheesecake", "pastry", "sandwich"}},
};

}  // namespace

EmbeddingModel::EmbeddingModel() {
  for (const auto& cluster : kClusters) {
    std::vector<std::string> words;
    for (const char* w : cluster.words) words.emplace_back(w);
    AddParaphraseCluster(words);
  }
  for (const auto& rel : kRelated) {
    std::vector<std::string> instances;
    for (const char* w : rel.instances) instances.emplace_back(w);
    AddRelatedness(rel.concept_word, instances);
  }
}

void EmbeddingModel::RegisterWord(std::string_view word) {
  std::string lower = ToLower(word);
  if (in_vocab_.emplace(lower, true).second) vocab_.push_back(lower);
}

void EmbeddingModel::AddParaphraseCluster(const std::vector<std::string>& words) {
  // Reuse an existing cluster if any member already belongs to one.
  int cluster = -1;
  for (const auto& w : words) {
    auto it = cluster_of_.find(ToLower(w));
    if (it != cluster_of_.end()) {
      cluster = it->second;
      break;
    }
  }
  if (cluster == -1) {
    cluster = static_cast<int>(cluster_seeds_.size());
    // Seed the centroid from the first word so geometry is deterministic.
    cluster_seeds_.push_back(Fnv1a64(ToLower(words.front()), 0x5eedc1u));
  }
  for (const auto& w : words) {
    std::string lower = ToLower(w);
    cluster_of_[lower] = cluster;
    RegisterWord(lower);
  }
  cache_.clear();
}

void EmbeddingModel::AddRelatedness(const std::string& concept_word,
                                    const std::vector<std::string>& instances) {
  std::string lc = ToLower(concept_word);
  RegisterWord(lc);
  for (const auto& inst : instances) {
    std::string lower = ToLower(inst);
    concept_of_[lower] = lc;
    RegisterWord(lower);
  }
  cache_.clear();
}

EmbeddingModel::Vector EmbeddingModel::BaseVector(uint64_t seed) {
  Vector v;
  for (int i = 0; i < kDim; ++i) {
    uint64_t bits = Mix64(seed + static_cast<uint64_t>(i) * 0x9e3779b9u);
    v[i] = static_cast<float>(
        (static_cast<double>(bits >> 11) / 9007199254740992.0) * 2.0 - 1.0);
  }
  Normalize(&v);
  return v;
}

void EmbeddingModel::Normalize(Vector* v) {
  double norm = 0;
  for (float x : *v) norm += static_cast<double>(x) * x;
  norm = std::sqrt(norm);
  if (norm < 1e-12) return;
  for (float& x : *v) x = static_cast<float>(x / norm);
}

EmbeddingModel::Vector EmbeddingModel::ComputeEmbedding(const std::string& word) const {
  // Cluster membership (with naive plural stemming).
  std::string key = word;
  auto cit = cluster_of_.find(key);
  auto rit = concept_of_.find(key);
  if (cit == cluster_of_.end() && rit == concept_of_.end() && key.size() > 3 &&
      key.back() == 's') {
    std::string stem = key.substr(0, key.size() - 1);
    if (cluster_of_.count(stem) || concept_of_.count(stem)) {
      key = stem;
      cit = cluster_of_.find(key);
      rit = concept_of_.find(key);
    }
  }

  Vector base = BaseVector(Fnv1a64(key));
  if (cit != cluster_of_.end()) {
    Vector centroid = BaseVector(cluster_seeds_[cit->second]);
    Vector v;
    for (int i = 0; i < kDim; ++i) v[i] = 0.25f * base[i] + 0.75f * centroid[i];
    Normalize(&v);
    return v;
  }
  if (rit != concept_of_.end()) {
    const Vector& concept_word = Embed(rit->second);
    // Per-word jitter puts instance-concept_word cosine in ~[0.40, 0.55].
    double b = 0.40 + 0.15 * (static_cast<double>(Mix64(Fnv1a64(key, 77)) >> 11) /
                              9007199254740992.0);
    double a = std::sqrt(1.0 - b * b);
    Vector v;
    for (int i = 0; i < kDim; ++i) {
      v[i] = static_cast<float>(a * base[i] + b * concept_word[i]);
    }
    Normalize(&v);
    return v;
  }
  return base;
}

const EmbeddingModel::Vector& EmbeddingModel::Embed(std::string_view word) const {
  std::string lower = ToLower(word);
  auto it = cache_.find(lower);
  if (it != cache_.end()) return it->second;
  Vector v = ComputeEmbedding(lower);
  return cache_.emplace(std::move(lower), v).first->second;
}

double EmbeddingModel::Similarity(std::string_view a, std::string_view b) const {
  const Vector& va = Embed(a);
  const Vector& vb = Embed(b);
  double dot = 0;
  for (int i = 0; i < kDim; ++i) dot += static_cast<double>(va[i]) * vb[i];
  return dot;
}

double EmbeddingModel::PhraseSimilarity(std::string_view a, std::string_view b) const {
  auto mean = [this](std::string_view phrase) {
    Vector acc{};
    int count = 0;
    for (const auto& w : SplitWhitespace(phrase)) {
      const Vector& v = Embed(w);
      for (int i = 0; i < kDim; ++i) acc[i] += v[i];
      ++count;
    }
    if (count > 0) {
      for (int i = 0; i < kDim; ++i) acc[i] /= static_cast<float>(count);
    }
    Normalize(&acc);
    return acc;
  };
  Vector va = mean(a);
  Vector vb = mean(b);
  double dot = 0;
  for (int i = 0; i < kDim; ++i) dot += static_cast<double>(va[i]) * vb[i];
  return dot;
}

std::vector<WeightedPhrase> EmbeddingModel::Neighbors(std::string_view word, int k,
                                                      double min_sim) const {
  std::string lower = ToLower(word);
  std::vector<WeightedPhrase> out;
  for (const auto& candidate : vocab_) {
    if (candidate == lower) continue;
    double sim = Similarity(lower, candidate);
    if (sim >= min_sim) out.push_back({candidate, sim});
  }
  std::sort(out.begin(), out.end(), [](const WeightedPhrase& a, const WeightedPhrase& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.text < b.text;
  });
  if (static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

}  // namespace koko

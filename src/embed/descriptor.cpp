#include "embed/descriptor.h"

#include <algorithm>

#include "text/lexicon.h"
#include "util/string_util.h"

namespace koko {

DescriptorExpander::DescriptorExpander(const EmbeddingModel* model)
    : DescriptorExpander(model, Options()) {}

DescriptorExpander::DescriptorExpander(const EmbeddingModel* model, Options options)
    : model_(model), options_(options) {}

void DescriptorExpander::AddOntologySet(const std::vector<std::string>& related) {
  std::vector<std::string> lower;
  lower.reserve(related.size());
  for (const auto& w : related) lower.push_back(ToLower(w));
  ontology_sets_.push_back(std::move(lower));
}

std::vector<WeightedPhrase> DescriptorExpander::Expand(
    const std::string& descriptor) const {
  const std::vector<std::string> words = SplitWhitespace(ToLower(descriptor));
  if (words.empty()) return {};

  // Per-word substitution lists: the word itself (1.0), embedding
  // neighbours, and ontology siblings (0.95 — "safe" substitutions).
  std::vector<std::vector<WeightedPhrase>> subs(words.size());
  const Lexicon& lex = Lexicon::Get();
  for (size_t i = 0; i < words.size(); ++i) {
    subs[i].push_back({words[i], 1.0});
    if (lex.IsFunctionWord(words[i])) continue;  // only content words expand
    for (auto& n :
         model_->Neighbors(words[i], options_.neighbors_per_word,
                           options_.min_word_similarity)) {
      subs[i].push_back(std::move(n));
    }
    for (const auto& set : ontology_sets_) {
      if (std::find(set.begin(), set.end(), words[i]) == set.end()) continue;
      for (const auto& sibling : set) {
        if (sibling == words[i]) continue;
        bool present = false;
        for (const auto& existing : subs[i]) {
          if (existing.text == sibling) {
            present = true;
            break;
          }
        }
        if (!present) subs[i].push_back({sibling, 0.95});
      }
    }
  }

  // Cartesian product, highest-scoring combinations first. The product is
  // enumerated eagerly but bounded: per-word lists are short (<~12).
  std::vector<WeightedPhrase> expansions;
  std::vector<size_t> choice(words.size(), 0);
  // Simple approach: enumerate all combinations, then sort and cap.
  size_t total = 1;
  for (const auto& s : subs) total *= std::max<size_t>(1, s.size());
  total = std::min<size_t>(total, 4096);
  std::vector<size_t> radices(words.size());
  for (size_t i = 0; i < words.size(); ++i) radices[i] = subs[i].size();
  for (size_t combo = 0; combo < total; ++combo) {
    size_t rem = combo;
    double score = 1.0;
    std::string text;
    for (size_t i = 0; i < words.size(); ++i) {
      size_t pick = rem % radices[i];
      rem /= radices[i];
      const WeightedPhrase& wp = subs[i][pick];
      score *= wp.score;
      if (!text.empty()) text += ' ';
      text += wp.text;
    }
    expansions.push_back({std::move(text), score});
  }
  std::sort(expansions.begin(), expansions.end(),
            [](const WeightedPhrase& a, const WeightedPhrase& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.text < b.text;
            });
  if (static_cast<int>(expansions.size()) > options_.max_expansions) {
    expansions.resize(options_.max_expansions);
  }
  return expansions;
}

std::string SentenceDecomposer::Clause::Text(const Sentence& s) const {
  std::string out;
  for (size_t i = 0; i < token_ids.size(); ++i) {
    if (i > 0) out += ' ';
    out += s.tokens[token_ids[i]].text;
  }
  return out;
}

std::vector<SentenceDecomposer::Clause> SentenceDecomposer::Decompose(
    const Sentence& s) {
  const int n = s.size();
  std::vector<Clause> clauses;
  if (n == 0) return clauses;

  auto is_clause_head = [&](int i) {
    if (i == s.root) return true;
    if (s.tokens[i].pos != PosTag::kVerb) return false;
    switch (s.tokens[i].label) {
      case DepLabel::kConj:
      case DepLabel::kRcmod:
      case DepLabel::kCcomp:
      case DepLabel::kXcomp:
        return true;
      default:
        return false;
    }
  };

  std::vector<int> heads;
  for (int i = 0; i < n; ++i) {
    if (is_clause_head(i)) heads.push_back(i);
  }
  if (heads.empty()) heads.push_back(s.root);

  // clause_of[t] = nearest clause-head ancestor (or self).
  std::vector<int> clause_of(n, -1);
  for (int t = 0; t < n; ++t) {
    int cur = t;
    while (cur != -1) {
      if (is_clause_head(cur)) {
        clause_of[t] = cur;
        break;
      }
      cur = s.tokens[cur].head;
    }
    if (clause_of[t] == -1) clause_of[t] = s.root;
  }

  for (int h : heads) {
    Clause c;
    for (int t = 0; t < n; ++t) {
      if (clause_of[t] == h && s.tokens[t].pos != PosTag::kPunct) {
        c.token_ids.push_back(t);
      }
    }
    if (c.token_ids.empty()) continue;
    if (h == s.root) {
      c.score = 1.0;
    } else if (s.tokens[h].label == DepLabel::kConj) {
      c.score = 0.9;
    } else {
      c.score = 0.8;
    }
    clauses.push_back(std::move(c));
  }
  if (clauses.empty()) {
    Clause whole;
    for (int t = 0; t < n; ++t) {
      if (s.tokens[t].pos != PosTag::kPunct) whole.token_ids.push_back(t);
    }
    whole.score = 1.0;
    clauses.push_back(std::move(whole));
  }
  return clauses;
}

}  // namespace koko

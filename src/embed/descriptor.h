#ifndef KOKO_EMBED_DESCRIPTOR_H_
#define KOKO_EMBED_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "embed/embedding.h"
#include "text/document.h"

namespace koko {

/// \brief Descriptor expansion (paper §4.4.1(a)).
///
/// A descriptor like "serves coffee" is expanded to semantically close
/// phrases ("sells espresso", ...) by substituting each content word with
/// its embedding neighbours; the expansion score k_i is the product of the
/// per-word similarities. A domain ontology (sets of interchangeable
/// domain terms, e.g. coffee drinks) contributes additional safe
/// substitutions at full confidence, mirroring the paper's footnote about
/// supplying a coffee dictionary.
class DescriptorExpander {
 public:
  struct Options {
    int neighbors_per_word = 6;
    double min_word_similarity = 0.35;
    /// KOKO "descriptors now default to a fixed number of expanded terms".
    int max_expansions = 24;
  };

  explicit DescriptorExpander(const EmbeddingModel* model);
  DescriptorExpander(const EmbeddingModel* model, Options options);

  /// Adds a set of mutually substitutable domain terms.
  void AddOntologySet(const std::vector<std::string>& related);

  /// Expands `descriptor` into scored alternate phrasings; the original
  /// descriptor itself is always included with score 1.0.
  std::vector<WeightedPhrase> Expand(const std::string& descriptor) const;

 private:
  const EmbeddingModel* model_;
  Options options_;
  std::vector<std::vector<std::string>> ontology_sets_;
};

/// \brief Clause-level sentence decomposition (paper §4.4.1(b)).
///
/// Implements stage (1) of Angeli et al.'s decomposition: segmenting a
/// sentence into canonical clauses, using the dependency tree. Each clause
/// is the subtree of a clausal head (root, conj, rcmod, ccomp, xcomp)
/// minus any nested clause subtrees. Scores l_j: 1.0 for the main clause,
/// 0.9 for coordinated, 0.8 for subordinate clauses.
class SentenceDecomposer {
 public:
  struct Clause {
    std::vector<int> token_ids;  // ascending token indices in the sentence
    double score = 1.0;

    /// Surface text of the clause (tokens joined by spaces).
    std::string Text(const Sentence& s) const;
  };

  /// Decomposes `s` (tree info must be computed). Always returns at least
  /// one clause for non-empty sentences.
  static std::vector<Clause> Decompose(const Sentence& s);
};

}  // namespace koko

#endif  // KOKO_EMBED_DESCRIPTOR_H_

#include "text/lexicon.h"

namespace koko {

namespace {

struct PosEntry {
  std::string_view word;
  PosTag tag;
};

// Closed classes: deterministic tags.
constexpr PosEntry kClosedClass[] = {
    // Determiners.
    {"a", PosTag::kDet}, {"an", PosTag::kDet}, {"the", PosTag::kDet},
    {"this", PosTag::kDet}, {"that", PosTag::kDet}, {"these", PosTag::kDet},
    {"those", PosTag::kDet}, {"some", PosTag::kDet}, {"any", PosTag::kDet},
    {"every", PosTag::kDet}, {"each", PosTag::kDet}, {"no", PosTag::kDet},
    {"another", PosTag::kDet}, {"both", PosTag::kDet}, {"either", PosTag::kDet},
    {"all", PosTag::kDet}, {"many", PosTag::kDet}, {"several", PosTag::kDet},
    {"few", PosTag::kDet}, {"most", PosTag::kDet}, {"such", PosTag::kDet},
    // Pronouns.
    {"i", PosTag::kPron}, {"you", PosTag::kPron}, {"he", PosTag::kPron},
    {"she", PosTag::kPron}, {"it", PosTag::kPron}, {"we", PosTag::kPron},
    {"they", PosTag::kPron}, {"me", PosTag::kPron}, {"him", PosTag::kPron},
    {"her", PosTag::kPron}, {"us", PosTag::kPron}, {"them", PosTag::kPron},
    {"my", PosTag::kPron}, {"your", PosTag::kPron}, {"his", PosTag::kPron},
    {"its", PosTag::kPron}, {"our", PosTag::kPron}, {"their", PosTag::kPron},
    {"who", PosTag::kPron}, {"whom", PosTag::kPron}, {"which", PosTag::kDet},
    {"what", PosTag::kPron}, {"someone", PosTag::kPron}, {"something", PosTag::kPron},
    {"myself", PosTag::kPron}, {"himself", PosTag::kPron}, {"herself", PosTag::kPron},
    {"itself", PosTag::kPron}, {"themselves", PosTag::kPron},
    // Adpositions.
    {"in", PosTag::kAdp}, {"on", PosTag::kAdp}, {"at", PosTag::kAdp},
    {"by", PosTag::kAdp}, {"with", PosTag::kAdp}, {"from", PosTag::kAdp},
    {"of", PosTag::kAdp}, {"for", PosTag::kAdp}, {"about", PosTag::kAdp},
    {"into", PosTag::kAdp}, {"over", PosTag::kAdp}, {"under", PosTag::kAdp},
    {"after", PosTag::kAdp}, {"before", PosTag::kAdp}, {"between", PosTag::kAdp},
    {"through", PosTag::kAdp}, {"during", PosTag::kAdp}, {"without", PosTag::kAdp},
    {"against", PosTag::kAdp}, {"near", PosTag::kAdp}, {"since", PosTag::kAdp},
    {"until", PosTag::kAdp}, {"along", PosTag::kAdp}, {"behind", PosTag::kAdp},
    {"beside", PosTag::kAdp}, {"above", PosTag::kAdp}, {"below", PosTag::kAdp},
    {"across", PosTag::kAdp}, {"toward", PosTag::kAdp}, {"towards", PosTag::kAdp},
    {"as", PosTag::kAdp}, {"like", PosTag::kAdp},
    // Conjunctions.
    {"and", PosTag::kConj}, {"or", PosTag::kConj}, {"but", PosTag::kConj},
    {"nor", PosTag::kConj}, {"yet", PosTag::kConj}, {"so", PosTag::kConj},
    {"because", PosTag::kConj}, {"although", PosTag::kConj},
    {"while", PosTag::kConj}, {"if", PosTag::kConj}, {"when", PosTag::kConj},
    {"where", PosTag::kConj}, {"whereas", PosTag::kConj},
    // Particles.
    {"to", PosTag::kPrt}, {"up", PosTag::kPrt}, {"out", PosTag::kPrt},
    {"off", PosTag::kPrt}, {"down", PosTag::kPrt},
    // Numbers (written-out).
    {"one", PosTag::kNum}, {"two", PosTag::kNum}, {"three", PosTag::kNum},
    {"four", PosTag::kNum}, {"five", PosTag::kNum}, {"six", PosTag::kNum},
    {"seven", PosTag::kNum}, {"eight", PosTag::kNum}, {"nine", PosTag::kNum},
    {"ten", PosTag::kNum}, {"hundred", PosTag::kNum}, {"thousand", PosTag::kNum},
    {"million", PosTag::kNum}, {"first", PosTag::kNum}, {"second", PosTag::kNum},
    {"third", PosTag::kNum},
};

// Common open-class words with their most frequent tag. This list leans
// toward the vocabulary the corpus generators and the paper's examples use.
constexpr PosEntry kOpenClass[] = {
    // Verbs (base/past forms the generators emit).
    {"ate", PosTag::kVerb}, {"eat", PosTag::kVerb}, {"eats", PosTag::kVerb},
    {"was", PosTag::kVerb}, {"is", PosTag::kVerb}, {"are", PosTag::kVerb},
    {"were", PosTag::kVerb}, {"be", PosTag::kVerb}, {"been", PosTag::kVerb},
    {"has", PosTag::kVerb}, {"have", PosTag::kVerb}, {"had", PosTag::kVerb},
    {"do", PosTag::kVerb}, {"does", PosTag::kVerb}, {"did", PosTag::kVerb},
    {"will", PosTag::kVerb}, {"would", PosTag::kVerb}, {"can", PosTag::kVerb},
    {"could", PosTag::kVerb}, {"may", PosTag::kVerb}, {"might", PosTag::kVerb},
    {"should", PosTag::kVerb}, {"must", PosTag::kVerb},
    {"bought", PosTag::kVerb}, {"buy", PosTag::kVerb}, {"buys", PosTag::kVerb},
    {"serves", PosTag::kVerb}, {"serve", PosTag::kVerb}, {"served", PosTag::kVerb},
    {"sells", PosTag::kVerb}, {"sell", PosTag::kVerb}, {"sold", PosTag::kVerb},
    {"sips", PosTag::kVerb}, {"makes", PosTag::kVerb}, {"make", PosTag::kVerb},
    {"made", PosTag::kVerb}, {"opened", PosTag::kVerb}, {"opens", PosTag::kVerb},
    {"open", PosTag::kVerb}, {"hired", PosTag::kVerb}, {"hires", PosTag::kVerb},
    {"employs", PosTag::kVerb}, {"employed", PosTag::kVerb},
    {"offers", PosTag::kVerb}, {"offered", PosTag::kVerb},
    {"visited", PosTag::kVerb}, {"visits", PosTag::kVerb}, {"visit", PosTag::kVerb},
    {"went", PosTag::kVerb}, {"go", PosTag::kVerb}, {"goes", PosTag::kVerb},
    {"came", PosTag::kVerb}, {"come", PosTag::kVerb}, {"comes", PosTag::kVerb},
    {"said", PosTag::kVerb}, {"says", PosTag::kVerb}, {"say", PosTag::kVerb},
    {"called", PosTag::kVerb}, {"call", PosTag::kVerb}, {"calls", PosTag::kVerb},
    {"born", PosTag::kVerb}, {"married", PosTag::kVerb}, {"lived", PosTag::kVerb},
    {"lives", PosTag::kVerb}, {"live", PosTag::kVerb}, {"died", PosTag::kVerb},
    {"wrote", PosTag::kVerb}, {"writes", PosTag::kVerb}, {"write", PosTag::kVerb},
    {"won", PosTag::kVerb}, {"wins", PosTag::kVerb}, {"win", PosTag::kVerb},
    {"played", PosTag::kVerb}, {"plays", PosTag::kVerb}, {"play", PosTag::kVerb},
    {"hosts", PosTag::kVerb}, {"hosted", PosTag::kVerb}, {"host", PosTag::kVerb},
    {"beat", PosTag::kVerb}, {"defeated", PosTag::kVerb},
    {"founded", PosTag::kVerb}, {"became", PosTag::kVerb},
    {"enjoyed", PosTag::kVerb}, {"enjoys", PosTag::kVerb}, {"enjoy", PosTag::kVerb},
    {"loved", PosTag::kVerb}, {"loves", PosTag::kVerb}, {"love", PosTag::kVerb},
    {"felt", PosTag::kVerb}, {"feel", PosTag::kVerb}, {"feels", PosTag::kVerb},
    {"got", PosTag::kVerb}, {"get", PosTag::kVerb}, {"gets", PosTag::kVerb},
    {"saw", PosTag::kVerb}, {"see", PosTag::kVerb}, {"sees", PosTag::kVerb},
    {"finished", PosTag::kVerb}, {"started", PosTag::kVerb},
    {"received", PosTag::kVerb}, {"gave", PosTag::kVerb},
    {"took", PosTag::kVerb}, {"prepared", PosTag::kVerb},
    {"manufactured", PosTag::kVerb}, {"brews", PosTag::kVerb},
    {"brewed", PosTag::kVerb}, {"roasts", PosTag::kVerb}, {"roasted", PosTag::kVerb},
    {"pours", PosTag::kVerb}, {"poured", PosTag::kVerb},
    {"tried", PosTag::kVerb}, {"tries", PosTag::kVerb}, {"try", PosTag::kVerb},
    {"features", PosTag::kVerb}, {"featured", PosTag::kVerb},
    {"describes", PosTag::kVerb}, {"described", PosTag::kVerb},
    // Irregular / common past and present forms.
    {"grew", PosTag::kVerb}, {"knew", PosTag::kVerb}, {"threw", PosTag::kVerb},
    {"ran", PosTag::kVerb}, {"sat", PosTag::kVerb}, {"stood", PosTag::kVerb},
    {"found", PosTag::kVerb}, {"left", PosTag::kVerb}, {"kept", PosTag::kVerb},
    {"held", PosTag::kVerb}, {"brought", PosTag::kVerb},
    {"thought", PosTag::kVerb}, {"began", PosTag::kVerb},
    {"drank", PosTag::kVerb}, {"drove", PosTag::kVerb}, {"flew", PosTag::kVerb},
    {"rose", PosTag::kVerb}, {"spoke", PosTag::kVerb}, {"wore", PosTag::kVerb},
    {"met", PosTag::kVerb}, {"paid", PosTag::kVerb}, {"put", PosTag::kVerb},
    {"read", PosTag::kVerb}, {"sent", PosTag::kVerb}, {"built", PosTag::kVerb},
    {"caught", PosTag::kVerb}, {"chose", PosTag::kVerb}, {"drew", PosTag::kVerb},
    {"melts", PosTag::kVerb}, {"hangs", PosTag::kVerb}, {"sits", PosTag::kVerb},
    {"face", PosTag::kVerb}, {"returns", PosTag::kVerb},
    {"produces", PosTag::kVerb}, {"talked", PosTag::kVerb},
    {"leaned", PosTag::kVerb}, {"stuck", PosTag::kVerb}, {"meet", PosTag::kVerb},
    {"needs", PosTag::kVerb}, {"need", PosTag::kVerb}, {"cost", PosTag::kVerb},
    // Nouns.
    {"cake", PosTag::kNoun}, {"cheese", PosTag::kNoun}, {"cheesecake", PosTag::kNoun},
    {"cream", PosTag::kNoun}, {"ice", PosTag::kNoun}, {"chocolate", PosTag::kNoun},
    {"pie", PosTag::kNoun}, {"peanuts", PosTag::kNoun}, {"store", PosTag::kNoun},
    {"grocery", PosTag::kNoun}, {"cafe", PosTag::kNoun}, {"coffee", PosTag::kNoun},
    {"espresso", PosTag::kNoun}, {"cappuccino", PosTag::kNoun},
    {"cappuccinos", PosTag::kNoun}, {"macchiato", PosTag::kNoun},
    {"macchiatos", PosTag::kNoun}, {"latte", PosTag::kNoun},
    {"lattes", PosTag::kNoun}, {"barista", PosTag::kNoun},
    {"baristas", PosTag::kNoun}, {"menu", PosTag::kNoun}, {"beans", PosTag::kNoun},
    {"roaster", PosTag::kNoun}, {"roasters", PosTag::kNoun},
    {"shop", PosTag::kNoun}, {"city", PosTag::kNoun}, {"cities", PosTag::kNoun},
    {"country", PosTag::kNoun}, {"countries", PosTag::kNoun},
    {"team", PosTag::kNoun}, {"teams", PosTag::kNoun}, {"game", PosTag::kNoun},
    {"match", PosTag::kNoun}, {"stadium", PosTag::kNoun}, {"park", PosTag::kNoun},
    {"arena", PosTag::kNoun}, {"center", PosTag::kNoun}, {"mall", PosTag::kNoun},
    {"museum", PosTag::kNoun}, {"library", PosTag::kNoun}, {"airport", PosTag::kNoun},
    {"street", PosTag::kNoun}, {"avenue", PosTag::kNoun}, {"type", PosTag::kNoun},
    {"kind", PosTag::kNoun}, {"baking", PosTag::kNoun}, {"daughter", PosTag::kNoun},
    {"son", PosTag::kNoun}, {"couple", PosTag::kNoun}, {"wife", PosTag::kNoun},
    {"husband", PosTag::kNoun}, {"actor", PosTag::kNoun}, {"actress", PosTag::kNoun},
    {"writer", PosTag::kNoun}, {"singer", PosTag::kNoun}, {"player", PosTag::kNoun},
    {"moment", PosTag::kNoun}, {"day", PosTag::kNoun}, {"week", PosTag::kNoun},
    {"month", PosTag::kNoun}, {"year", PosTag::kNoun}, {"years", PosTag::kNoun},
    {"morning", PosTag::kNoun}, {"dinner", PosTag::kNoun}, {"lunch", PosTag::kNoun},
    {"breakfast", PosTag::kNoun}, {"friend", PosTag::kNoun},
    {"friends", PosTag::kNoun}, {"family", PosTag::kNoun}, {"dog", PosTag::kNoun},
    {"cat", PosTag::kNoun}, {"job", PosTag::kNoun}, {"work", PosTag::kNoun},
    {"home", PosTag::kNoun}, {"house", PosTag::kNoun}, {"school", PosTag::kNoun},
    {"title", PosTag::kNoun}, {"name", PosTag::kNoun}, {"champion", PosTag::kNoun},
    {"championship", PosTag::kNoun}, {"festival", PosTag::kNoun},
    {"machine", PosTag::kNoun}, {"neighborhood", PosTag::kNoun},
    {"district", PosTag::kNoun}, {"owner", PosTag::kNoun}, {"guest", PosTag::kNoun},
    {"guests", PosTag::kNoun}, {"pastries", PosTag::kNoun}, {"pastry", PosTag::kNoun},
    {"tea", PosTag::kNoun}, {"food", PosTag::kNoun}, {"foods", PosTag::kNoun},
    // Adjectives.
    {"delicious", PosTag::kAdj}, {"salty", PosTag::kAdj}, {"sweet", PosTag::kAdj},
    {"great", PosTag::kAdj}, {"good", PosTag::kAdj}, {"best", PosTag::kAdj},
    {"new", PosTag::kAdj}, {"old", PosTag::kAdj}, {"happy", PosTag::kAdj},
    {"big", PosTag::kAdj}, {"small", PosTag::kAdj}, {"local", PosTag::kAdj},
    {"famous", PosTag::kAdj}, {"asian", PosTag::kAdj}, {"european", PosTag::kAdj},
    {"star", PosTag::kAdj}, {"fresh", PosTag::kAdj}, {"cozy", PosTag::kAdj},
    {"tasty", PosTag::kAdj}, {"amazing", PosTag::kAdj}, {"excellent", PosTag::kAdj},
    {"upcoming", PosTag::kAdj}, {"proud", PosTag::kAdj}, {"glad", PosTag::kAdj},
    {"excited", PosTag::kAdj}, {"wonderful", PosTag::kAdj},
    // Adverbs.
    {"also", PosTag::kAdv}, {"very", PosTag::kAdv}, {"really", PosTag::kAdv},
    {"recently", PosTag::kAdv}, {"today", PosTag::kAdv}, {"yesterday", PosTag::kAdv},
    {"tomorrow", PosTag::kAdv}, {"never", PosTag::kAdv}, {"always", PosTag::kAdv},
    {"often", PosTag::kAdv}, {"finally", PosTag::kAdv}, {"here", PosTag::kAdv},
    {"there", PosTag::kAdv}, {"now", PosTag::kAdv}, {"then", PosTag::kAdv},
    {"just", PosTag::kAdv}, {"only", PosTag::kAdv}, {"too", PosTag::kAdv},
    {"again", PosTag::kAdv}, {"already", PosTag::kAdv},
};

constexpr std::string_view kAux[] = {
    "was", "is", "are", "were", "be", "been", "being", "am",
    "has", "have", "had", "do", "does", "did",
    "will", "would", "can", "could", "may", "might", "should", "must",
};

constexpr std::string_view kCopula[] = {"is", "was", "are", "were", "be",
                                        "been", "being", "am"};

constexpr std::string_view kRelPron[] = {"which", "that", "who", "whom", "whose"};

constexpr std::string_view kNegation[] = {"not", "n't", "never", "no"};

constexpr std::string_view kMonths[] = {
    "january", "february", "march", "april", "may", "june", "july", "august",
    "september", "october", "november", "december",
    "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "oct", "nov", "dec",
};

}  // namespace

Lexicon::Lexicon() {
  for (const auto& e : kClosedClass) pos_.emplace(e.word, e.tag);
  for (const auto& e : kOpenClass) pos_.emplace(e.word, e.tag);
  for (auto w : kAux) aux_.insert(w);
  for (auto w : kCopula) copula_.insert(w);
  for (auto w : kRelPron) relpron_.insert(w);
  for (auto w : kNegation) negation_.insert(w);
  for (auto w : kMonths) months_.insert(w);
}

const Lexicon& Lexicon::Get() {
  static const Lexicon* lexicon = new Lexicon();
  return *lexicon;
}

bool Lexicon::LookupPos(std::string_view lower_word, PosTag* tag) const {
  auto it = pos_.find(lower_word);
  if (it == pos_.end()) return false;
  *tag = it->second;
  return true;
}

bool Lexicon::IsAuxiliary(std::string_view w) const { return aux_.count(w) > 0; }
bool Lexicon::IsCopula(std::string_view w) const { return copula_.count(w) > 0; }
bool Lexicon::IsRelativePronoun(std::string_view w) const {
  return relpron_.count(w) > 0;
}
bool Lexicon::IsNegation(std::string_view w) const { return negation_.count(w) > 0; }
bool Lexicon::IsMonth(std::string_view w) const { return months_.count(w) > 0; }

bool Lexicon::IsFunctionWord(std::string_view w) const {
  auto it = pos_.find(w);
  if (it == pos_.end()) return false;
  switch (it->second) {
    case PosTag::kDet:
    case PosTag::kPron:
    case PosTag::kAdp:
    case PosTag::kConj:
    case PosTag::kPrt:
      return true;
    default:
      return false;
  }
}

}  // namespace koko

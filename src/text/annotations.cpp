#include "text/annotations.h"

#include "util/string_util.h"

namespace koko {

namespace {

constexpr std::string_view kPosNames[kNumPosTags] = {
    "noun", "propn", "verb", "adj", "adv", "pron", "det",
    "adp",  "num",   "conj", "prt", "punct", "x",
};

constexpr std::string_view kDepNames[kNumDepLabels] = {
    "root", "nsubj", "dobj",  "iobj",  "det",   "amod",  "nn",
    "prep", "pobj",  "punct", "cc",    "conj",  "advmod", "acomp",
    "rcmod", "xcomp", "ccomp", "aux",  "cop",   "neg",   "poss",
    "num",  "appos", "attr",  "mark",  "prt",   "dep",
};

constexpr std::string_view kEntityNames[kNumEntityTypes] = {
    "None", "Other", "Person", "Location", "GPE",
    "Organization", "Date", "Facility", "Team", "Event",
};

}  // namespace

std::string_view PosTagName(PosTag tag) { return kPosNames[static_cast<int>(tag)]; }
std::string_view DepLabelName(DepLabel label) {
  return kDepNames[static_cast<int>(label)];
}
std::string_view EntityTypeName(EntityType type) {
  return kEntityNames[static_cast<int>(type)];
}

bool ParsePosTag(std::string_view name, PosTag* out) {
  for (int i = 0; i < kNumPosTags; ++i) {
    if (EqualsIgnoreCase(name, kPosNames[i])) {
      *out = static_cast<PosTag>(i);
      return true;
    }
  }
  // Common aliases.
  if (EqualsIgnoreCase(name, ".")) {
    *out = PosTag::kPunct;
    return true;
  }
  return false;
}

bool ParseDepLabel(std::string_view name, DepLabel* out) {
  for (int i = 0; i < kNumDepLabels; ++i) {
    if (EqualsIgnoreCase(name, kDepNames[i])) {
      *out = static_cast<DepLabel>(i);
      return true;
    }
  }
  if (EqualsIgnoreCase(name, "p")) {  // the paper abbreviates punct as "p"
    *out = DepLabel::kPunct;
    return true;
  }
  return false;
}

bool ParseEntityType(std::string_view name, EntityType* out) {
  for (int i = 0; i < kNumEntityTypes; ++i) {
    if (EqualsIgnoreCase(name, kEntityNames[i])) {
      *out = static_cast<EntityType>(i);
      return true;
    }
  }
  // "Entity" means "any entity type" in queries; callers handle that case
  // separately, so it is deliberately not parsed here.
  return false;
}

}  // namespace koko

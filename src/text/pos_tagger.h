#ifndef KOKO_TEXT_POS_TAGGER_H_
#define KOKO_TEXT_POS_TAGGER_H_

#include <string>
#include <vector>

#include "text/annotations.h"

namespace koko {

/// \brief Deterministic POS tagger (lexicon + shape/suffix + context rules).
///
/// Stage 1 assigns each token a tag from the built-in lexicon, number/
/// punctuation shapes, capitalisation (PROPN for capitalised non-initial
/// tokens), or suffix heuristics (-ly -> ADV, -ing/-ed -> VERB, ...).
/// Stage 2 applies a small set of Brill-style contextual fix-ups (e.g. a
/// VERB directly after a determiner is retagged NOUN).
class PosTagger {
 public:
  /// Tags a tokenised sentence; returns one tag per token.
  static std::vector<PosTag> Tag(const std::vector<std::string>& tokens);
};

}  // namespace koko

#endif  // KOKO_TEXT_POS_TAGGER_H_

#ifndef KOKO_TEXT_TOKENIZER_H_
#define KOKO_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace koko {

/// \brief Rule-based word tokenizer.
///
/// Splits on whitespace, then peels punctuation off token edges (commas,
/// periods, quotes, brackets, ...) and splits the contractions "n't" and
/// "'s". Internal hyphens and apostrophes are preserved ("pour-over").
/// Deterministic and lossless enough for the paper's workloads.
class Tokenizer {
 public:
  /// Tokenizes one sentence (or any text fragment) into surface tokens.
  static std::vector<std::string> Tokenize(std::string_view text);
};

/// \brief Rule-based sentence splitter.
///
/// Splits on '.', '!', '?' when followed by whitespace and an upper-case
/// letter (or end of text), with an abbreviation guard (Mr., Dr., St., ...).
class SentenceSplitter {
 public:
  static std::vector<std::string> Split(std::string_view text);
};

}  // namespace koko

#endif  // KOKO_TEXT_TOKENIZER_H_

#include "text/tokenizer.h"

#include <unordered_set>

#include "util/string_util.h"

namespace koko {

namespace {

bool IsEdgePunct(char c) {
  switch (c) {
    case '.':
    case ',':
    case ';':
    case ':':
    case '!':
    case '?':
    case '"':
    case '\'':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case '<':
    case '>':
    case '`':
      return true;
    default:
      return false;
  }
}

const std::unordered_set<std::string>& Abbreviations() {
  static const auto* abbr = new std::unordered_set<std::string>{
      "mr", "mrs", "ms", "dr", "prof", "st", "ave", "jr", "sr",
      "inc", "corp", "co", "ltd", "vs", "etc", "e.g", "i.e",
      "a.m", "p.m", "u.s", "no",
  };
  return *abbr;
}

}  // namespace

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  for (const std::string& raw : SplitWhitespace(text)) {
    std::string_view word = raw;
    // Peel leading punctuation.
    std::vector<std::string> lead;
    while (!word.empty() && IsEdgePunct(word.front()) &&
           !(word.size() > 1 && word.front() == '\'' && IsAsciiAlpha(word[1]) &&
             false)) {
      lead.emplace_back(1, word.front());
      word.remove_prefix(1);
    }
    // Peel trailing punctuation (kept in order).
    std::vector<std::string> trail;
    while (!word.empty() && IsEdgePunct(word.back())) {
      // Keep "U.S." style internal periods: only peel a final '.' if the
      // token has no other '.' inside (simple heuristic) or is long.
      if (word.back() == '.' && word.find('.') != word.size() - 1) break;
      trail.emplace_back(1, word.back());
      word.remove_suffix(1);
    }
    for (auto& t : lead) tokens.push_back(std::move(t));
    if (!word.empty()) {
      // Contractions: n't and 's.
      if (word.size() > 3 && EndsWith(ToLower(word), "n't")) {
        tokens.emplace_back(word.substr(0, word.size() - 3));
        tokens.emplace_back(word.substr(word.size() - 3));
      } else if (word.size() > 2 && (EndsWith(word, "'s") || EndsWith(word, "'S"))) {
        tokens.emplace_back(word.substr(0, word.size() - 2));
        tokens.emplace_back(word.substr(word.size() - 2));
      } else {
        tokens.emplace_back(word);
      }
    }
    for (auto it = trail.rbegin(); it != trail.rend(); ++it) {
      tokens.push_back(std::move(*it));
    }
  }
  return tokens;
}

std::vector<std::string> SentenceSplitter::Split(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    current += c;
    if (c != '.' && c != '!' && c != '?') continue;

    // Look back: abbreviation guard for '.'.
    if (c == '.') {
      size_t end = current.size() - 1;
      size_t start = end;
      while (start > 0 && IsAsciiAlpha(current[start - 1])) --start;
      std::string prev = ToLower(std::string_view(current).substr(start, end - start));
      if (Abbreviations().count(prev) > 0) continue;
      // Initials like "J." (single capital).
      if (end - start == 1 && IsAsciiUpper(current[start])) continue;
    }
    // Look ahead: need whitespace then an upper-case letter/digit/quote, or EOT.
    size_t j = i + 1;
    // Allow closing quotes after the terminator.
    while (j < text.size() && (text[j] == '"' || text[j] == '\'')) {
      current += text[j];
      ++j;
    }
    if (j >= text.size()) {
      i = j - 1;
      auto trimmed = Trim(current);
      if (!trimmed.empty()) sentences.emplace_back(trimmed);
      current.clear();
      continue;
    }
    if (!IsAsciiSpace(text[j])) {
      i = j - 1;
      continue;
    }
    size_t k = j;
    while (k < text.size() && IsAsciiSpace(text[k])) ++k;
    if (k < text.size() && (IsAsciiUpper(text[k]) || IsAsciiDigit(text[k]) ||
                            text[k] == '"' || text[k] == '\'')) {
      auto trimmed = Trim(current);
      if (!trimmed.empty()) sentences.emplace_back(trimmed);
      current.clear();
      i = k - 1;
    } else {
      i = j - 1;
    }
  }
  auto trimmed = Trim(current);
  if (!trimmed.empty()) sentences.emplace_back(trimmed);
  return sentences;
}

}  // namespace koko

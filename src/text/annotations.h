#ifndef KOKO_TEXT_ANNOTATIONS_H_
#define KOKO_TEXT_ANNOTATIONS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace koko {

/// Universal POS tagset (Petrov, Das, McDonald 2012), as used in the paper,
/// plus PROPN (proper noun) which the paper's queries reference (`/propn`).
enum class PosTag : uint8_t {
  kNoun = 0,
  kPropn,
  kVerb,
  kAdj,
  kAdv,
  kPron,
  kDet,
  kAdp,   // adpositions (prepositions)
  kNum,
  kConj,
  kPrt,   // particles ("to", "up" in phrasal verbs)
  kPunct,
  kX,     // everything else
};
inline constexpr int kNumPosTags = 13;

/// Stanford-style dependency parse labels; the subset that appears in the
/// paper's figures and queries plus common companions.
enum class DepLabel : uint8_t {
  kRoot = 0,
  kNsubj,
  kDobj,
  kIobj,
  kDet,
  kAmod,
  kNn,      // noun compound modifier
  kPrep,
  kPobj,
  kPunct,
  kCc,
  kConj,
  kAdvmod,
  kAcomp,
  kRcmod,
  kXcomp,
  kCcomp,
  kAux,
  kCop,
  kNeg,
  kPoss,
  kNum,
  kAppos,
  kAttr,
  kMark,
  kPrt,
  kDep,     // unclassified dependency
};
inline constexpr int kNumDepLabels = 27;

/// Named-entity types. kNone marks tokens outside any entity; kOther is the
/// paper's generic "Entity type: OTHER".
enum class EntityType : uint8_t {
  kNone = 0,
  kOther,
  kPerson,
  kLocation,
  kGpe,      // geo-political entities (cities, countries)
  kOrganization,
  kDate,
  kFacility,
  kTeam,
  kEvent,
};
inline constexpr int kNumEntityTypes = 10;

/// Lower-case canonical names ("noun", "dobj", "Person", ...) matching the
/// paper's query syntax; parsing is case-insensitive.
std::string_view PosTagName(PosTag tag);
std::string_view DepLabelName(DepLabel label);
std::string_view EntityTypeName(EntityType type);

/// Reverse lookups; return false when `name` is not a member of the set.
bool ParsePosTag(std::string_view name, PosTag* out);
bool ParseDepLabel(std::string_view name, DepLabel* out);
bool ParseEntityType(std::string_view name, EntityType* out);

}  // namespace koko

#endif  // KOKO_TEXT_ANNOTATIONS_H_

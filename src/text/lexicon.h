#ifndef KOKO_TEXT_LEXICON_H_
#define KOKO_TEXT_LEXICON_H_

#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "text/annotations.h"

namespace koko {

/// \brief Built-in English lexicon used by the POS tagger and parser.
///
/// Replaces the statistical models of spaCy/Google-NL with deterministic
/// word lists: closed-class words (determiners, pronouns, prepositions,
/// conjunctions, auxiliaries) have fixed tags; a list of common open-class
/// words provides high-frequency coverage; everything else falls to the
/// tagger's suffix/shape heuristics.
class Lexicon {
 public:
  /// Singleton accessor (the tables are immutable).
  static const Lexicon& Get();

  /// Returns true and sets *tag when `lower_word` has a fixed tag.
  bool LookupPos(std::string_view lower_word, PosTag* tag) const;

  bool IsAuxiliary(std::string_view lower_word) const;   // was, is, has, will…
  bool IsCopula(std::string_view lower_word) const;      // be-forms
  bool IsRelativePronoun(std::string_view lower_word) const;  // which, that, who…
  bool IsNegation(std::string_view lower_word) const;    // not, n't, never
  bool IsFunctionWord(std::string_view lower_word) const;

  /// Month names for DATE recognition ("december", "jan", ...).
  bool IsMonth(std::string_view lower_word) const;

 private:
  Lexicon();

  std::unordered_map<std::string_view, PosTag> pos_;
  std::unordered_set<std::string_view> aux_;
  std::unordered_set<std::string_view> copula_;
  std::unordered_set<std::string_view> relpron_;
  std::unordered_set<std::string_view> negation_;
  std::unordered_set<std::string_view> months_;
};

}  // namespace koko

#endif  // KOKO_TEXT_LEXICON_H_

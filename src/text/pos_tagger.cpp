#include "text/pos_tagger.h"

#include "text/lexicon.h"
#include "util/string_util.h"

namespace koko {

namespace {

bool IsPunctToken(const std::string& tok) {
  for (char c : tok) {
    if (IsAsciiAlnum(c)) return false;
  }
  return !tok.empty();
}

bool LooksNumeric(const std::string& tok) {
  bool digit = false;
  for (char c : tok) {
    if (IsAsciiDigit(c)) {
      digit = true;
    } else if (c != '.' && c != ',' && c != '-' && c != '%' && c != '$') {
      return false;
    }
  }
  return digit;
}

PosTag SuffixTag(const std::string& lower) {
  if (EndsWith(lower, "ly")) return PosTag::kAdv;
  if (EndsWith(lower, "ing") || EndsWith(lower, "ize") || EndsWith(lower, "ise"))
    return PosTag::kVerb;
  if (EndsWith(lower, "ed")) return PosTag::kVerb;
  if (EndsWith(lower, "tion") || EndsWith(lower, "sion") || EndsWith(lower, "ness") ||
      EndsWith(lower, "ment") || EndsWith(lower, "ity") || EndsWith(lower, "ship") ||
      EndsWith(lower, "hood") || EndsWith(lower, "ism") || EndsWith(lower, "ery"))
    return PosTag::kNoun;
  if (EndsWith(lower, "ous") || EndsWith(lower, "ful") || EndsWith(lower, "ive") ||
      EndsWith(lower, "able") || EndsWith(lower, "ible") || EndsWith(lower, "al") ||
      EndsWith(lower, "ic") || EndsWith(lower, "ish"))
    return PosTag::kAdj;
  return PosTag::kNoun;  // nouns dominate unknown words
}

}  // namespace

std::vector<PosTag> PosTagger::Tag(const std::vector<std::string>& tokens) {
  const Lexicon& lex = Lexicon::Get();
  const int n = static_cast<int>(tokens.size());
  std::vector<PosTag> tags(n, PosTag::kX);
  std::vector<std::string> lower(n);
  for (int i = 0; i < n; ++i) lower[i] = ToLower(tokens[i]);

  // Stage 1: lexicon, shape, suffix.
  for (int i = 0; i < n; ++i) {
    const std::string& tok = tokens[i];
    if (IsPunctToken(tok)) {
      tags[i] = PosTag::kPunct;
      continue;
    }
    if (LooksNumeric(tok)) {
      tags[i] = PosTag::kNum;
      continue;
    }
    PosTag lex_tag;
    if (lex.LookupPos(lower[i], &lex_tag)) {
      tags[i] = lex_tag;
      continue;
    }
    // Inflected forms of known verbs: "serves" -> "serve", "opened" ->
    // "open", "pouring" -> "pour".
    {
      const std::string& w = lower[i];
      PosTag stem_tag;
      bool stem_verb = false;
      if (w.size() > 2 && w.back() == 's' &&
          lex.LookupPos(w.substr(0, w.size() - 1), &stem_tag)) {
        stem_verb = stem_tag == PosTag::kVerb;
      } else if (w.size() > 3 && EndsWith(w, "ed") &&
                 (lex.LookupPos(w.substr(0, w.size() - 2), &stem_tag) ||
                  lex.LookupPos(w.substr(0, w.size() - 1), &stem_tag))) {
        stem_verb = stem_tag == PosTag::kVerb;
      } else if (w.size() > 4 && EndsWith(w, "ing") &&
                 lex.LookupPos(w.substr(0, w.size() - 3), &stem_tag)) {
        stem_verb = stem_tag == PosTag::kVerb;
      }
      if (stem_verb) {
        tags[i] = PosTag::kVerb;
        continue;
      }
    }
    // Capitalised tokens that are not sentence-initial are proper nouns.
    if (IsCapitalized(tok) && i > 0) {
      tags[i] = PosTag::kPropn;
      continue;
    }
    // Sentence-initial capitalised unknown word: proper noun when the next
    // token is capitalised too ("Cyd Charisse had ..."), else suffix rules.
    if (IsCapitalized(tok) && i == 0) {
      if (n > 1 && IsCapitalized(tokens[1]) && !IsPunctToken(tokens[1])) {
        tags[i] = PosTag::kPropn;
        continue;
      }
    }
    tags[i] = SuffixTag(lower[i]);
  }

  // Stage 2: contextual fix-ups (Brill-style).
  for (int i = 0; i < n; ++i) {
    // DET + VERB -> DET + NOUN ("a drink", "the serves" never happens; noun
    // readings dominate right after determiners).
    if (i > 0 && tags[i] == PosTag::kVerb && tags[i - 1] == PosTag::kDet) {
      // Unless an auxiliary intervening pattern like "the was" (rare) —
      // keep the rewrite unconditional; generators never emit that.
      tags[i] = PosTag::kNoun;
    }
    // "to" + VERB stays PRT + VERB; "to" + NOUN becomes ADP.
    if (lower[i] == "to") {
      if (i + 1 < n && tags[i + 1] == PosTag::kVerb) {
        tags[i] = PosTag::kPrt;
      } else {
        tags[i] = PosTag::kAdp;
      }
    }
    // Auxiliary + participle: "was born" — make sure the participle is VERB.
    if (i > 0 && lex.IsAuxiliary(lower[i - 1]) && tags[i] == PosTag::kNoun &&
        (EndsWith(lower[i], "ed") || EndsWith(lower[i], "en"))) {
      tags[i] = PosTag::kVerb;
    }
    // ADJ directly before a verb that looked nominal: "star barista" is
    // handled by DET rule; nothing to do here.
    // "that" as relative pronoun after a noun: retag DET -> PRON.
    if ((lower[i] == "that" || lower[i] == "which") && i > 0 &&
        (tags[i - 1] == PosTag::kNoun || tags[i - 1] == PosTag::kPropn ||
         tags[i - 1] == PosTag::kPunct)) {
      if (i + 1 < n &&
          (tags[i + 1] == PosTag::kVerb || tags[i + 1] == PosTag::kPron ||
           lex.IsAuxiliary(lower[i + 1]))) {
        tags[i] = PosTag::kPron;
      }
    }
  }
  return tags;
}

}  // namespace koko

#include "text/document.h"

#include <algorithm>

#include "util/logging.h"

namespace koko {

void Sentence::ComputeTreeInfo() {
  const int n = size();
  children.assign(n, {});
  subtree_left.assign(n, 0);
  subtree_right.assign(n, 0);
  depth.assign(n, 0);
  root = -1;
  for (int i = 0; i < n; ++i) {
    int h = tokens[i].head;
    if (h < 0) {
      root = i;
    } else {
      KOKO_CHECK(h < n);
      children[h].push_back(i);
    }
  }
  if (n == 0) return;
  KOKO_CHECK(root >= 0);

  // Depth-first traversal computing depth and subtree extents.
  // Iterative to avoid recursion limits on degenerate chains.
  std::vector<std::pair<int, int>> stack;  // (node, child cursor)
  for (int i = 0; i < n; ++i) {
    subtree_left[i] = i;
    subtree_right[i] = i;
  }
  depth[root] = 0;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [node, cursor] = stack.back();
    if (cursor < static_cast<int>(children[node].size())) {
      int child = children[node][cursor++];
      depth[child] = depth[node] + 1;
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
      if (!stack.empty()) {
        int parent = stack.back().first;
        subtree_left[parent] = std::min(subtree_left[parent], subtree_left[node]);
        subtree_right[parent] = std::max(subtree_right[parent], subtree_right[node]);
      }
    }
  }
}

std::string Sentence::SpanText(int begin, int end) const {
  std::string out;
  for (int i = begin; i <= end && i < size(); ++i) {
    if (i > begin) out += ' ';
    out += tokens[i].text;
  }
  return out;
}

bool Sentence::IsAncestor(int ancestor, int node) const {
  int cur = tokens[node].head;
  while (cur >= 0) {
    if (cur == ancestor) return true;
    cur = tokens[cur].head;
  }
  return false;
}

void AnnotatedCorpus::RebuildRefs() {
  refs.clear();
  doc_first_sid.clear();
  for (uint32_t d = 0; d < docs.size(); ++d) {
    doc_first_sid.push_back(static_cast<uint32_t>(refs.size()));
    for (uint32_t s = 0; s < docs[d].sentences.size(); ++s) {
      refs.push_back(SentenceRef{d, s});
    }
  }
}

size_t AnnotatedCorpus::NumTokens() const {
  size_t total = 0;
  for (const auto& doc : docs) {
    for (const auto& sent : doc.sentences) total += sent.tokens.size();
  }
  return total;
}

}  // namespace koko

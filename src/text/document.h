#ifndef KOKO_TEXT_DOCUMENT_H_
#define KOKO_TEXT_DOCUMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/annotations.h"

namespace koko {

/// One token of a sentence with all of its annotations. `head` is the index
/// of the parent token in the sentence's dependency tree (-1 for the root).
struct Token {
  std::string text;
  PosTag pos = PosTag::kX;
  DepLabel label = DepLabel::kDep;
  int head = -1;
  EntityType etype = EntityType::kNone;
  int entity_id = -1;  // index into Sentence::entities, -1 when outside
};

/// A typed entity mention covering tokens [begin, end] inclusive.
struct Entity {
  int begin = 0;
  int end = 0;
  EntityType type = EntityType::kOther;
};

/// \brief A parsed sentence: tokens plus derived dependency-tree geometry.
///
/// After annotation, ComputeTreeInfo() derives for every token the quantities
/// the paper's indices store: the leftmost (u) and rightmost (v) token id of
/// its subtree and its depth (d) in the dependency tree (root depth = 0).
struct Sentence {
  std::vector<Token> tokens;
  std::vector<Entity> entities;

  // Derived; valid after ComputeTreeInfo().
  std::vector<int> subtree_left;
  std::vector<int> subtree_right;
  std::vector<int> depth;
  std::vector<std::vector<int>> children;
  int root = -1;

  int size() const { return static_cast<int>(tokens.size()); }

  /// Recomputes children lists, subtree extents, and depths from heads.
  /// Must be called after heads/labels change.
  void ComputeTreeInfo();

  /// Joins tokens [begin, end] (inclusive) with single spaces.
  std::string SpanText(int begin, int end) const;

  /// Full surface text of the sentence.
  std::string Text() const { return SpanText(0, size() - 1); }

  /// True when `ancestor` is a proper ancestor of `node` in the tree.
  bool IsAncestor(int ancestor, int node) const;
};

/// A document (e.g. one article or one blog post).
struct Document {
  uint32_t id = 0;
  std::string title;
  std::vector<Sentence> sentences;
};

/// Global sentence coordinates: which document and which sentence within it.
struct SentenceRef {
  uint32_t doc = 0;
  uint32_t sent = 0;
};

/// \brief A fully annotated corpus with a global sentence numbering.
///
/// Indices address sentences by global sentence id (sid) as in the paper's
/// Example 3.1; `refs[sid]` maps back to (document, sentence).
struct AnnotatedCorpus {
  std::vector<Document> docs;
  std::vector<SentenceRef> refs;

  size_t NumSentences() const { return refs.size(); }
  size_t NumDocs() const { return docs.size(); }

  const Sentence& sentence(uint32_t sid) const {
    const SentenceRef& ref = refs[sid];
    return docs[ref.doc].sentences[ref.sent];
  }
  const Document& doc_of(uint32_t sid) const { return docs[refs[sid].doc]; }

  /// Global sid of the first sentence of document `doc`; sentences of a
  /// document are contiguous in the global numbering.
  uint32_t FirstSidOfDoc(uint32_t doc) const { return doc_first_sid[doc]; }

  std::vector<uint32_t> doc_first_sid;

  /// Rebuilds refs/doc_first_sid after docs changed.
  void RebuildRefs();

  /// Total number of tokens (for stats and size accounting).
  size_t NumTokens() const;
};

}  // namespace koko

#endif  // KOKO_TEXT_DOCUMENT_H_

#ifndef KOKO_PARSER_DEP_PARSER_H_
#define KOKO_PARSER_DEP_PARSER_H_

#include <string>
#include <vector>

#include "text/document.h"

namespace koko {

/// \brief Deterministic rule-based dependency parser.
///
/// Stands in for spaCy / Google Cloud NL (the paper's parsers). Produces
/// Stanford-style trees over the universal POS tags:
///
///  1. NP chunking: maximal [DET] [ADJ|NOUN|PROPN|NUM]* [NOUN|PROPN] runs;
///     the chunk head is the last noun; internal tokens attach as det /
///     amod / nn / num / poss.
///  2. Verb groups: AUX* VERB; auxiliaries attach as aux to the main verb.
///  3. Clause segmentation: the main clause, relative clauses (introduced
///     by which/that/who after a noun -> rcmod), coordinated clauses
///     (CONJ followed by a verb group -> conj + cc), and open-clause
///     complements ("to" + verb -> xcomp).
///  4. Within-clause attachment: nsubj (chunk before the verb), dobj/iobj
///     (bare chunks after it), acomp/attr after copulas, prep+pobj with
///     noun-vs-verb attachment, advmod, neg, cc/conj for NP coordination,
///     punct.
///  5. Fallbacks guarantee a single-root tree: unattached tokens become
///     `dep` children of the root.
///
/// The output satisfies the invariants KOKO's indices rely on: exactly one
/// root, acyclic heads, every token attached (verified by property tests).
class DepParser {
 public:
  /// Assigns Token::head and Token::label for every token of `sentence`
  /// (tokens and POS tags must already be populated) and recomputes the
  /// derived tree info.
  static void Parse(Sentence* sentence);
};

}  // namespace koko

#endif  // KOKO_PARSER_DEP_PARSER_H_

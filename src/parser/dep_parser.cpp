#include "parser/dep_parser.h"

#include <algorithm>

#include "text/lexicon.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace koko {

namespace {

bool IsNounTag(PosTag t) { return t == PosTag::kNoun || t == PosTag::kPropn; }

bool IsChunkTag(PosTag t) {
  return t == PosTag::kDet || t == PosTag::kAdj || t == PosTag::kNum || IsNounTag(t);
}

// A noun-phrase chunk [begin, end] with a designated head token.
struct Chunk {
  int begin = 0;
  int end = 0;
  int head = 0;
};

// A verb group [begin, end]; `main` is the content verb, earlier tokens are
// auxiliaries.
struct VerbGroup {
  int begin = 0;
  int end = 0;
  int main = 0;
};

// One clause: a contiguous region with (usually) one verb group.
struct Clause {
  enum class Kind { kMain, kRelative, kCoordinated, kOpenComplement };
  Kind kind = Kind::kMain;
  int begin = 0;
  int end = 0;
  int verb = -1;        // clause head token (main verb), -1 if verbless
  int attach_to = -1;   // token the clause head attaches to (per kind)
  int introducer = -1;  // rel pronoun / conjunction / "to" token, -1 if none
};

class ParserImpl {
 public:
  explicit ParserImpl(Sentence* s) : s_(*s), n_(s->size()), lex_(Lexicon::Get()) {
    lower_.reserve(n_);
    for (const Token& t : s_.tokens) lower_.push_back(ToLower(t.text));
    head_.assign(n_, -1);
    label_.assign(n_, DepLabel::kDep);
    in_chunk_.assign(n_, -1);
    attached_.assign(n_, false);
  }

  void Run() {
    if (n_ == 0) return;
    FindChunks();
    FindVerbGroups();
    SegmentClauses();
    AttachClauses();
    for (const Clause& c : clauses_) AttachWithinClause(c);
    AttachLeftovers();
    Finalize();
  }

 private:
  PosTag Pos(int i) const { return s_.tokens[i].pos; }

  void SetArc(int child, int parent, DepLabel label) {
    if (child == parent) return;
    head_[child] = parent;
    label_[child] = label;
    attached_[child] = true;
  }

  // ---- Stage 1: NP chunks -------------------------------------------------

  void FindChunks() {
    int i = 0;
    while (i < n_) {
      if (Pos(i) == PosTag::kPron && !lex_.IsRelativePronoun(lower_[i])) {
        // Pronouns are single-token chunks (subjects/objects).
        Chunk c{i, i, i};
        in_chunk_[i] = static_cast<int>(chunks_.size());
        chunks_.push_back(c);
        ++i;
        continue;
      }
      if (!IsChunkTag(Pos(i)) || (lower_[i] == "such")) {
        ++i;
        continue;
      }
      // "that"/"which" tagged DET acting as relative pronoun: skip.
      if (lex_.IsRelativePronoun(lower_[i])) {
        ++i;
        continue;
      }
      int begin = i;
      int last_noun = -1;
      while (i < n_ && IsChunkTag(Pos(i)) && !lex_.IsRelativePronoun(lower_[i])) {
        if (IsNounTag(Pos(i))) last_noun = i;
        ++i;
      }
      int end = i - 1;
      if (last_noun == -1) {
        // Determiner-or-adjective-only run: no NP here; tokens attach later.
        continue;
      }
      // Trim trailing non-noun tokens (e.g. "the delicious and" stops at
      // the conjunction anyway; adjectives after the last noun stay out).
      end = last_noun;
      Chunk c{begin, end, last_noun};
      int idx = static_cast<int>(chunks_.size());
      for (int k = begin; k <= end; ++k) in_chunk_[k] = idx;
      chunks_.push_back(c);
      i = end + 1;
    }

    // Intra-chunk arcs.
    for (const Chunk& c : chunks_) {
      for (int k = c.begin; k <= c.end; ++k) {
        if (k == c.head) continue;
        DepLabel lbl;
        switch (Pos(k)) {
          case PosTag::kDet:
            lbl = DepLabel::kDet;
            break;
          case PosTag::kAdj:
            lbl = DepLabel::kAmod;
            break;
          case PosTag::kNum:
            lbl = DepLabel::kNum;
            break;
          case PosTag::kPropn:
          case PosTag::kNoun:
            lbl = DepLabel::kNn;
            break;
          default:
            lbl = DepLabel::kDep;
            break;
        }
        SetArc(k, c.head, lbl);
      }
    }
  }

  // ---- Stage 2: verb groups ----------------------------------------------

  void FindVerbGroups() {
    int i = 0;
    while (i < n_) {
      if (Pos(i) != PosTag::kVerb) {
        ++i;
        continue;
      }
      int begin = i;
      while (i + 1 < n_ && Pos(i + 1) == PosTag::kVerb) ++i;
      // Skip over an intervening negation/adverb inside the group:
      // "was not born", "had been called".
      int probe = i + 1;
      while (probe < n_ &&
             (Pos(probe) == PosTag::kAdv || lex_.IsNegation(lower_[probe])) &&
             probe + 1 < n_ && Pos(probe + 1) == PosTag::kVerb) {
        probe += 1;
        i = probe;
        while (i + 1 < n_ && Pos(i + 1) == PosTag::kVerb) ++i;
        probe = i + 1;
      }
      VerbGroup g{begin, i, i};
      // Auxiliaries attach to the main verb.
      for (int k = begin; k < g.main; ++k) {
        if (Pos(k) == PosTag::kVerb) {
          SetArc(k, g.main, DepLabel::kAux);
        } else if (lex_.IsNegation(lower_[k])) {
          SetArc(k, g.main, DepLabel::kNeg);
        } else {
          SetArc(k, g.main, DepLabel::kAdvmod);
        }
      }
      verb_of_token_.resize(n_, -1);
      int idx = static_cast<int>(groups_.size());
      for (int k = begin; k <= i; ++k) verb_of_token_[k] = idx;
      groups_.push_back(g);
      ++i;
    }
    if (verb_of_token_.empty()) verb_of_token_.assign(n_, -1);
  }

  // ---- Stage 3: clause segmentation --------------------------------------

  // Finds the verb group whose main verb lies within [begin, end].
  int FirstGroupIn(int begin, int end) const {
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g].main >= begin && groups_[g].main <= end) {
        return static_cast<int>(g);
      }
    }
    return -1;
  }

  void SegmentClauses() {
    // Boundary positions where new clauses start.
    std::vector<Clause> raw;
    Clause current;
    current.kind = Clause::Kind::kMain;
    current.begin = 0;

    auto close_at = [&](int end_pos) {
      current.end = end_pos;
      if (current.end >= current.begin) raw.push_back(current);
    };

    for (int i = 0; i < n_; ++i) {
      bool is_rel = lex_.IsRelativePronoun(lower_[i]) &&
                    (Pos(i) == PosTag::kPron || Pos(i) == PosTag::kDet) && i > 0 &&
                    HasVerbAfter(i);
      // Relative pronoun must follow a noun (possibly across a comma).
      if (is_rel) {
        int back = i - 1;
        while (back >= 0 && Pos(back) == PosTag::kPunct) --back;
        is_rel = back >= 0 && (IsNounTag(Pos(back)) || Pos(back) == PosTag::kPron);
      }
      bool is_coord = Pos(i) == PosTag::kConj && NextStartsVerbClause(i);
      bool is_open = lower_[i] == "to" && Pos(i) == PosTag::kPrt && i + 1 < n_ &&
                     Pos(i + 1) == PosTag::kVerb;
      if ((is_rel || is_coord || is_open) && i > current.begin) {
        close_at(i - 1);
        current = Clause();
        current.kind = is_rel    ? Clause::Kind::kRelative
                       : is_open ? Clause::Kind::kOpenComplement
                                 : Clause::Kind::kCoordinated;
        current.begin = i;
        current.introducer = i;
      }
    }
    close_at(n_ - 1);

    // Assign verbs; merge verbless clauses into their predecessor.
    for (Clause& c : raw) {
      int g = FirstGroupIn(c.begin, c.end);
      c.verb = g >= 0 ? groups_[g].main : -1;
    }
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].verb == -1 && !clauses_.empty()) {
        clauses_.back().end = raw[i].end;
      } else if (raw[i].verb == -1 && i + 1 < raw.size()) {
        raw[i + 1].begin = raw[i].begin;
        // Keep the later clause's kind/introducer.
      } else {
        clauses_.push_back(raw[i]);
      }
    }
    if (clauses_.empty()) {
      Clause c;
      c.kind = Clause::Kind::kMain;
      c.begin = 0;
      c.end = n_ - 1;
      c.verb = -1;
      clauses_.push_back(c);
    }
    clauses_[0].kind = Clause::Kind::kMain;
  }

  bool HasVerbAfter(int i) const {
    for (int k = i + 1; k < n_ && k <= i + 6; ++k) {
      if (Pos(k) == PosTag::kVerb) return true;
      if (Pos(k) == PosTag::kPunct || Pos(k) == PosTag::kConj) return false;
    }
    return false;
  }

  // After a conjunction, does a verb group start before the next NP ends?
  // "and also ate a pie" -> yes; "china and japan" -> no.
  bool NextStartsVerbClause(int i) const {
    for (int k = i + 1; k < n_ && k <= i + 4; ++k) {
      if (Pos(k) == PosTag::kVerb) return true;
      if (Pos(k) == PosTag::kAdv || lex_.IsNegation(lower_[k])) continue;
      if (Pos(k) == PosTag::kPron) continue;  // "and she bought"
      return false;
    }
    return false;
  }

  // ---- Stage 4: attach clause heads --------------------------------------

  void AttachClauses() {
    int root_verb = clauses_[0].verb;
    for (size_t ci = 1; ci < clauses_.size(); ++ci) {
      Clause& c = clauses_[ci];
      if (c.verb == -1) continue;
      switch (c.kind) {
        case Clause::Kind::kRelative: {
          // Attach to the nearest noun left of the introducer.
          int noun = c.introducer - 1;
          while (noun >= 0 && !IsNounTag(Pos(noun))) --noun;
          if (noun >= 0) {
            SetArc(c.verb, noun, DepLabel::kRcmod);
          } else if (root_verb >= 0 && root_verb != c.verb) {
            SetArc(c.verb, root_verb, DepLabel::kCcomp);
          }
          c.attach_to = noun;
          break;
        }
        case Clause::Kind::kCoordinated: {
          // Attach to the nearest preceding main/coordinated clause's verb
          // ("and also ate" conjoins with the main "ate", not with the
          // relative clause in between — Figure 1).
          int prev = -1;
          for (int back = static_cast<int>(ci) - 1; back >= 0; --back) {
            const Clause& p = clauses_[static_cast<size_t>(back)];
            if (p.kind == Clause::Kind::kMain ||
                p.kind == Clause::Kind::kCoordinated) {
              prev = p.verb;
              break;
            }
          }
          if (prev < 0) prev = clauses_[ci - 1].verb;
          if (prev >= 0 && prev != c.verb) {
            SetArc(c.verb, prev, DepLabel::kConj);
            if (c.introducer >= 0) SetArc(c.introducer, prev, DepLabel::kCc);
          }
          c.attach_to = prev;
          break;
        }
        case Clause::Kind::kOpenComplement: {
          int prev = clauses_[ci - 1].verb;
          if (prev >= 0 && prev != c.verb) {
            SetArc(c.verb, prev, DepLabel::kXcomp);
          }
          if (c.introducer >= 0) SetArc(c.introducer, c.verb, DepLabel::kAux);
          c.attach_to = prev;
          break;
        }
        case Clause::Kind::kMain:
          break;
      }
    }
  }

  // ---- Stage 5: within-clause attachment ----------------------------------

  void AttachWithinClause(const Clause& c) {
    int verb = c.verb;
    const bool copular = verb >= 0 && lex_.IsCopula(lower_[verb]);

    // Relative-clause introducer: nsubj when the clause has no other
    // pre-verbal subject, dobj otherwise ("that she bought").
    if (c.kind == Clause::Kind::kRelative && c.introducer >= 0 && verb >= 0) {
      bool has_subject = false;
      for (int k = c.introducer + 1; k < verb; ++k) {
        if ((in_chunk_[k] >= 0 && chunks_[in_chunk_[k]].head == k) ||
            Pos(k) == PosTag::kPron) {
          has_subject = true;
          break;
        }
      }
      SetArc(c.introducer, verb, has_subject ? DepLabel::kDobj : DepLabel::kNsubj);
    }

    bool subject_seen = false;
    bool object_seen = false;
    int i = c.begin;
    while (i <= c.end) {
      if (attached_[i] && in_chunk_[i] >= 0 && chunks_[in_chunk_[i]].head != i) {
        ++i;
        continue;
      }
      PosTag pos = Pos(i);
      // NP chunk head.
      if (in_chunk_[i] >= 0 && chunks_[in_chunk_[i]].head == i) {
        const Chunk& ch = chunks_[in_chunk_[i]];
        if (!attached_[i]) AttachChunkHead(ch, c, verb, copular, &subject_seen,
                                           &object_seen);
        i = ch.end + 1;
        continue;
      }
      if (attached_[i]) {
        ++i;
        continue;
      }
      switch (pos) {
        case PosTag::kVerb:
          // The clause verb itself (or stray verb): root handled later.
          break;
        case PosTag::kAdp: {
          AttachPreposition(i, c, verb);
          break;
        }
        case PosTag::kAdv:
          if (lex_.IsNegation(lower_[i]) && verb >= 0) {
            SetArc(i, verb, DepLabel::kNeg);
          } else if (i + 1 <= c.end && Pos(i + 1) == PosTag::kAdj) {
            SetArc(i, i + 1, DepLabel::kAdvmod);
          } else if (verb >= 0) {
            SetArc(i, verb, DepLabel::kAdvmod);
          }
          break;
        case PosTag::kAdj:
          if (verb >= 0 && copular && i > verb) {
            SetArc(i, verb, DepLabel::kAcomp);
          } else if (verb >= 0 && i > verb) {
            // Post-verbal predicative adjective ("felt happy").
            SetArc(i, verb, DepLabel::kAcomp);
          } else if (verb >= 0) {
            SetArc(i, verb, DepLabel::kDep);
          }
          break;
        case PosTag::kConj:
          AttachNpConjunction(i, c, verb);
          break;
        case PosTag::kPron:
          if (verb >= 0) {
            SetArc(i, verb, i < verb ? DepLabel::kNsubj : DepLabel::kDobj);
            if (i < verb) subject_seen = true;
          }
          break;
        case PosTag::kPunct:
          // Attached in Finalize (to the sentence root).
          break;
        case PosTag::kDet:
          if (lower_[i] == "such" && i + 1 <= c.end && lower_[i + 1] == "as") {
            SetArc(i, i + 1, DepLabel::kMark);
          } else if (verb >= 0) {
            SetArc(i, verb, DepLabel::kDep);
          }
          break;
        default:
          if (verb >= 0) SetArc(i, verb, DepLabel::kDep);
          break;
      }
      ++i;
    }
  }

  void AttachChunkHead(const Chunk& ch, const Clause& /*clause*/, int verb,
                       bool copular, bool* subject_seen, bool* object_seen) {
    if (verb < 0) return;
    // Preceded by an adposition? Then this is a pobj; the preposition
    // attachment handles it. Find the governing ADP just before the chunk.
    int before = ch.begin - 1;
    if (before >= 0 && Pos(before) == PosTag::kAdp) {
      SetArc(ch.head, before, DepLabel::kPobj);
      return;
    }
    if (ch.head < verb) {
      if (!*subject_seen) {
        SetArc(ch.head, verb, DepLabel::kNsubj);
        *subject_seen = true;
      } else {
        SetArc(ch.head, verb, DepLabel::kDep);
      }
      return;
    }
    // Post-verbal.
    if (copular) {
      SetArc(ch.head, verb, DepLabel::kAttr);
      return;
    }
    if (!*object_seen) {
      SetArc(ch.head, verb, DepLabel::kDobj);
      *object_seen = true;
    } else {
      // Second bare NP: treat earlier one as iobj pattern is rare; use dep.
      SetArc(ch.head, verb, DepLabel::kDep);
    }
  }

  void AttachPreposition(int i, const Clause& c, int verb) {
    // Attach prep to the immediately preceding NP head if adjacent
    // ("cities in ..."), otherwise to the clause verb.
    int governor = -1;
    int back = i - 1;
    while (back >= c.begin && Pos(back) == PosTag::kPunct) --back;
    if (back >= 0 && in_chunk_[back] >= 0) {
      governor = chunks_[in_chunk_[back]].head;
    } else if (back >= 0 && lower_[back] == "as" && Pos(back) == PosTag::kAdp) {
      governor = head_[back] >= 0 ? head_[back] : verb;
    } else {
      governor = verb;
    }
    if (governor < 0) governor = verb;
    if (governor < 0 || governor == i) return;
    SetArc(i, governor, DepLabel::kPrep);
    // Its object: next NP chunk head after i.
    for (int k = i + 1; k <= c.end; ++k) {
      if (in_chunk_[k] >= 0 && chunks_[in_chunk_[k]].head == k) {
        if (!attached_[k]) SetArc(k, i, DepLabel::kPobj);
        break;
      }
      if (Pos(k) == PosTag::kVerb || Pos(k) == PosTag::kAdp) break;
    }
  }

  void AttachNpConjunction(int i, const Clause& c, int verb) {
    // "china and japan": cc on the left conjunct head, right head -> conj.
    int left = -1;
    for (int k = i - 1; k >= c.begin; --k) {
      if (in_chunk_[k] >= 0 && chunks_[in_chunk_[k]].head == k) {
        left = k;
        break;
      }
      if (Pos(k) == PosTag::kVerb) break;
    }
    int right = -1;
    for (int k = i + 1; k <= c.end; ++k) {
      if (in_chunk_[k] >= 0 && chunks_[in_chunk_[k]].head == k) {
        right = k;
        break;
      }
      if (Pos(k) == PosTag::kVerb) break;
    }
    if (left >= 0) {
      SetArc(i, left, DepLabel::kCc);
      if (right >= 0 && !attached_[right]) SetArc(right, left, DepLabel::kConj);
    } else if (verb >= 0) {
      SetArc(i, verb, DepLabel::kCc);
    }
  }

  // ---- Stage 6: fallbacks and finalisation --------------------------------

  void AttachLeftovers() {
    // Root selection: main clause verb, else first chunk head, else token 0.
    root_ = clauses_[0].verb;
    if (root_ == -1) {
      for (const Chunk& ch : chunks_) {
        if (head_[ch.head] == -1) {
          root_ = ch.head;
          break;
        }
      }
    }
    if (root_ == -1 && !chunks_.empty()) root_ = chunks_[0].head;
    if (root_ == -1) root_ = 0;

    for (int i = 0; i < n_; ++i) {
      if (i == root_) continue;
      if (head_[i] == -1) {
        SetArc(i, root_, Pos(i) == PosTag::kPunct ? DepLabel::kPunct : DepLabel::kDep);
      }
    }
    head_[root_] = -1;
    label_[root_] = DepLabel::kRoot;
  }

  void Finalize() {
    // Break any accidental cycles: walk up from each node; if we revisit a
    // node before reaching the root, re-attach the offender to the root.
    for (int i = 0; i < n_; ++i) {
      int slow = i;
      int steps = 0;
      int cur = i;
      while (cur != -1 && steps <= n_ + 1) {
        cur = head_[cur];
        ++steps;
      }
      (void)slow;
      if (steps > n_ + 1) {
        head_[i] = root_;
        label_[i] = DepLabel::kDep;
      }
    }
    for (int i = 0; i < n_; ++i) {
      s_.tokens[i].head = head_[i];
      s_.tokens[i].label = label_[i];
    }
    s_.ComputeTreeInfo();
  }

  Sentence& s_;
  const int n_;
  const Lexicon& lex_;
  std::vector<std::string> lower_;
  std::vector<int> head_;
  std::vector<DepLabel> label_;
  std::vector<Chunk> chunks_;
  std::vector<int> in_chunk_;     // token -> chunk index or -1
  std::vector<VerbGroup> groups_;
  std::vector<int> verb_of_token_;
  std::vector<Clause> clauses_;
  std::vector<bool> attached_;
  int root_ = -1;
};

}  // namespace

void DepParser::Parse(Sentence* sentence) {
  ParserImpl impl(sentence);
  impl.Run();
}

}  // namespace koko

#include "storage/table.h"

#include <fstream>

#include "util/logging.h"

namespace koko {

Table::Table(std::string name, std::vector<ColumnSpec> schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  int_cols_.resize(schema_.size());
  str_cols_.resize(schema_.size());
}

Status Table::AppendRow(const std::vector<Cell>& cells) {
  if (cells.size() != schema_.size()) {
    return Status::InvalidArgument("row arity " + std::to_string(cells.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.size()) + " for table " +
                                   name_);
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    bool is_int = std::holds_alternative<int64_t>(cells[i]);
    if (is_int != (schema_[i].type == ColumnType::kInt64)) {
      return Status::InvalidArgument("type mismatch in column " + schema_[i].name);
    }
  }
  for (size_t i = 0; i < cells.size(); ++i) {
    if (schema_[i].type == ColumnType::kInt64) {
      int_cols_[i].push_back(std::get<int64_t>(cells[i]));
    } else {
      str_cols_[i].push_back(std::get<std::string>(cells[i]));
    }
  }
  uint32_t row = static_cast<uint32_t>(num_rows_);
  ++num_rows_;
  for (auto& [_, index] : indexes_) IndexRow(index.get(), row);
  return Status::OK();
}

int64_t Table::GetInt(uint32_t row, uint32_t col) const {
  KOKO_CHECK(schema_[col].type == ColumnType::kInt64);
  return int_cols_[col][row];
}

const std::string& Table::GetString(uint32_t row, uint32_t col) const {
  KOKO_CHECK(schema_[col].type == ColumnType::kString);
  return str_cols_[col][row];
}

int Table::ColumnIndex(std::string_view column_name) const {
  for (size_t i = 0; i < schema_.size(); ++i) {
    if (schema_[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

std::string Table::EncodeKey(const std::vector<Cell>& cells) {
  std::string key;
  for (const Cell& cell : cells) {
    if (std::holds_alternative<int64_t>(cell)) {
      // Big-endian with flipped sign bit: preserves numeric order under
      // lexicographic byte comparison.
      uint64_t bits = static_cast<uint64_t>(std::get<int64_t>(cell)) ^
                      (1ULL << 63);
      for (int shift = 56; shift >= 0; shift -= 8) {
        key.push_back(static_cast<char>((bits >> shift) & 0xff));
      }
    } else {
      key += std::get<std::string>(cell);
      key.push_back('\0');
    }
  }
  return key;
}

std::string Table::KeyForRow(const Index& index, uint32_t row) const {
  std::vector<Cell> cells;
  cells.reserve(index.columns.size());
  for (uint32_t col : index.columns) {
    if (schema_[col].type == ColumnType::kInt64) {
      cells.emplace_back(int_cols_[col][row]);
    } else {
      cells.emplace_back(str_cols_[col][row]);
    }
  }
  return EncodeKey(cells);
}

void Table::IndexRow(Index* index, uint32_t row) {
  index->tree.Insert(KeyForRow(*index, row), row);
}

Status Table::CreateIndex(const std::string& index_name,
                          const std::vector<std::string>& columns) {
  if (indexes_.count(index_name) > 0) {
    return Status::AlreadyExists("index " + index_name);
  }
  auto index = std::make_unique<Index>();
  for (const auto& c : columns) {
    int col = ColumnIndex(c);
    if (col < 0) return Status::NotFound("column " + c + " in table " + name_);
    index->columns.push_back(static_cast<uint32_t>(col));
  }
  for (uint32_t row = 0; row < num_rows_; ++row) IndexRow(index.get(), row);
  indexes_.emplace(index_name, std::move(index));
  return Status::OK();
}

Result<std::vector<uint32_t>> Table::IndexLookup(
    const std::string& index_name, const std::vector<Cell>& key_cells) const {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return Status::NotFound("index " + index_name);
  const std::vector<uint32_t>* rows = it->second->tree.Find(EncodeKey(key_cells));
  return rows == nullptr ? std::vector<uint32_t>{} : *rows;
}

Result<std::vector<uint32_t>> Table::IndexPrefixLookup(
    const std::string& index_name, const std::vector<Cell>& prefix_cells) const {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) return Status::NotFound("index " + index_name);
  std::string lo = EncodeKey(prefix_cells);
  std::string hi = lo;
  hi.push_back('\xff');  // all keys extending lo sort within (lo, lo+0xff...)
  std::vector<uint32_t> out;
  it->second->tree.Scan(lo, hi,
                        [&](const std::string& key, const std::vector<uint32_t>& rows) {
                          if (key.compare(0, lo.size(), lo) != 0) return true;
                          out.insert(out.end(), rows.begin(), rows.end());
                          return true;
                        });
  return out;
}

size_t Table::MemoryUsage() const {
  size_t bytes = sizeof(Table);
  for (const auto& col : int_cols_) bytes += col.capacity() * sizeof(int64_t);
  for (const auto& col : str_cols_) {
    bytes += col.capacity() * sizeof(std::string);
    for (const auto& s : col) bytes += s.capacity();
  }
  for (const auto& [name, index] : indexes_) {
    bytes += name.size() + sizeof(Index);
    bytes += index->tree.MemoryUsage();
  }
  return bytes;
}

void Table::Serialize(BinaryWriter* writer) const {
  writer->WriteString(name_);
  writer->WriteU32(static_cast<uint32_t>(schema_.size()));
  for (const auto& col : schema_) {
    writer->WriteString(col.name);
    writer->WriteU8(static_cast<uint8_t>(col.type));
  }
  writer->WriteU64(num_rows_);
  for (size_t c = 0; c < schema_.size(); ++c) {
    if (schema_[c].type == ColumnType::kInt64) {
      writer->WriteVector(int_cols_[c]);
    } else {
      writer->WriteU32(static_cast<uint32_t>(str_cols_[c].size()));
      for (const auto& s : str_cols_[c]) writer->WriteString(s);
    }
  }
  // Index definitions (trees are rebuilt on load).
  writer->WriteU32(static_cast<uint32_t>(indexes_.size()));
  for (const auto& [name, index] : indexes_) {
    writer->WriteString(name);
    writer->WriteU32(static_cast<uint32_t>(index->columns.size()));
    for (uint32_t col : index->columns) writer->WriteU32(col);
  }
}

Result<Table> Table::Deserialize(BinaryReader* reader) {
  KOKO_ASSIGN_OR_RETURN(std::string name, reader->ReadString());
  KOKO_ASSIGN_OR_RETURN(uint32_t num_cols, reader->ReadU32());
  std::vector<ColumnSpec> schema;
  for (uint32_t i = 0; i < num_cols; ++i) {
    KOKO_ASSIGN_OR_RETURN(std::string col_name, reader->ReadString());
    KOKO_ASSIGN_OR_RETURN(uint8_t type, reader->ReadU8());
    schema.push_back({std::move(col_name), static_cast<ColumnType>(type)});
  }
  Table table(std::move(name), std::move(schema));
  KOKO_ASSIGN_OR_RETURN(uint64_t num_rows, reader->ReadU64());
  table.num_rows_ = num_rows;
  for (size_t c = 0; c < table.schema_.size(); ++c) {
    if (table.schema_[c].type == ColumnType::kInt64) {
      KOKO_ASSIGN_OR_RETURN(table.int_cols_[c], reader->ReadVector<int64_t>());
      if (table.int_cols_[c].size() != num_rows) {
        return Status::ParseError("table column length mismatches row count");
      }
    } else {
      KOKO_ASSIGN_OR_RETURN(uint32_t n, reader->ReadU32());
      if (n != num_rows) {
        return Status::ParseError("table column length mismatches row count");
      }
      table.str_cols_[c].reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        KOKO_ASSIGN_OR_RETURN(std::string s, reader->ReadString());
        table.str_cols_[c].push_back(std::move(s));
      }
    }
  }
  KOKO_ASSIGN_OR_RETURN(uint32_t num_indexes, reader->ReadU32());
  for (uint32_t i = 0; i < num_indexes; ++i) {
    KOKO_ASSIGN_OR_RETURN(std::string index_name, reader->ReadString());
    KOKO_ASSIGN_OR_RETURN(uint32_t arity, reader->ReadU32());
    std::vector<std::string> cols;
    for (uint32_t j = 0; j < arity; ++j) {
      KOKO_ASSIGN_OR_RETURN(uint32_t col, reader->ReadU32());
      if (col >= table.schema_.size()) {
        return Status::ParseError("table index references column out of range");
      }
      cols.push_back(table.schema_[col].name);
    }
    KOKO_RETURN_IF_ERROR(table.CreateIndex(index_name, cols));
  }
  return table;
}

Table* Catalog::CreateTable(std::string name, std::vector<ColumnSpec> schema) {
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* ptr = table.get();
  tables_[name] = std::move(table);
  return ptr;
}

Table* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

size_t Catalog::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [_, table] : tables_) bytes += table->MemoryUsage();
  return bytes;
}

Status Catalog::Save(BinaryWriter* writer) const {
  writer->WriteU32(0x4b4f4b4f);  // "KOKO"
  writer->WriteU32(static_cast<uint32_t>(tables_.size()));
  for (const auto& [_, table] : tables_) table->Serialize(writer);
  if (!writer->ok()) return Status::IoError("catalog write failure");
  return Status::OK();
}

Status Catalog::Load(BinaryReader* reader) {
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != 0x4b4f4b4f) return Status::ParseError("bad catalog magic");
  KOKO_ASSIGN_OR_RETURN(uint32_t num_tables, reader->ReadU32());
  tables_.clear();
  for (uint32_t i = 0; i < num_tables; ++i) {
    auto table = Table::Deserialize(reader);
    if (!table.ok()) return table.status();
    std::string name = table->name();
    tables_[name] = std::make_unique<Table>(std::move(*table));
  }
  return Status::OK();
}

Status Catalog::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  BinaryWriter writer(&out);
  KOKO_RETURN_IF_ERROR(Save(&writer));
  if (!writer.ok()) return Status::IoError("write failure on " + path);
  return Status::OK();
}

Status Catalog::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  BinaryReader reader(&in);
  return Load(&reader);
}

}  // namespace koko

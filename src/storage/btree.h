#ifndef KOKO_STORAGE_BTREE_H_
#define KOKO_STORAGE_BTREE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "util/logging.h"

namespace koko {

/// \brief In-memory B+tree multimap.
///
/// The physical index structure behind every index scheme in this
/// repository (the paper creates B-tree indexes in PostgreSQL for each
/// scheme). Keys are kept sorted in fixed-fanout nodes; duplicate keys
/// share one leaf entry whose value list grows. Leaves are chained for
/// range scans.
///
/// Not thread-safe for concurrent mutation; concurrent reads are fine.
template <typename Key, typename Value>
class BPlusTree {
 public:
  static constexpr size_t kMaxKeys = 64;

  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Inserts (key, value); duplicate keys accumulate values in insertion
  /// order.
  void Insert(const Key& key, Value value) {
    InsertResult split = InsertInto(root_.get(), key, std::move(value));
    if (split.happened) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split.pivot);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split.right));
      root_ = std::move(new_root);
      ++depth_;
    }
    ++num_values_;
  }

  /// Values stored under `key` (nullptr when absent).
  const std::vector<Value>* Find(const Key& key) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      size_t i = UpperBound(node->keys, key);
      node = node->children[i].get();
    }
    size_t i = LowerBound(node->keys, key);
    if (i < node->keys.size() && !(key < node->keys[i])) return &node->values[i];
    return nullptr;
  }

  bool Contains(const Key& key) const { return Find(key) != nullptr; }

  /// Visits every (key, values) with lo <= key <= hi in key order. The
  /// callback returns false to stop early.
  void Scan(const Key& lo, const Key& hi,
            const std::function<bool(const Key&, const std::vector<Value>&)>& fn) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      size_t i = UpperBound(node->keys, lo);
      node = node->children[i].get();
    }
    size_t i = LowerBound(node->keys, lo);
    while (node != nullptr) {
      for (; i < node->keys.size(); ++i) {
        if (hi < node->keys[i]) return;
        if (!fn(node->keys[i], node->values[i])) return;
      }
      node = node->next;
      i = 0;
    }
  }

  /// Visits all entries in key order.
  void ScanAll(
      const std::function<bool(const Key&, const std::vector<Value>&)>& fn) const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children[0].get();
    while (node != nullptr) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        if (!fn(node->keys[i], node->values[i])) return;
      }
      node = node->next;
    }
  }

  size_t NumValues() const { return num_values_; }
  size_t NumKeys() const { return CountKeys(root_.get()); }
  int depth() const { return depth_; }

  /// Approximate heap footprint in bytes (index-size accounting).
  size_t MemoryUsage() const { return MemoryOf(root_.get()); }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;  // internal only
    std::vector<std::vector<Value>> values;       // leaf only
    Node* next = nullptr;                         // leaf chain
  };

  struct InsertResult {
    bool happened = false;
    Key pivot{};
    std::unique_ptr<Node> right;
  };

  static size_t LowerBound(const std::vector<Key>& keys, const Key& key) {
    return static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }
  static size_t UpperBound(const std::vector<Key>& keys, const Key& key) {
    return static_cast<size_t>(
        std::upper_bound(keys.begin(), keys.end(), key) - keys.begin());
  }

  InsertResult InsertInto(Node* node, const Key& key, Value value) {
    if (node->leaf) {
      size_t i = LowerBound(node->keys, key);
      if (i < node->keys.size() && !(key < node->keys[i])) {
        node->values[i].push_back(std::move(value));
        return {};
      }
      node->keys.insert(node->keys.begin() + static_cast<long>(i), key);
      node->values.insert(node->values.begin() + static_cast<long>(i),
                          std::vector<Value>{});
      node->values[i].push_back(std::move(value));
      if (node->keys.size() > kMaxKeys) return SplitLeaf(node);
      return {};
    }
    size_t i = UpperBound(node->keys, key);
    InsertResult child_split = InsertInto(node->children[i].get(), key,
                                          std::move(value));
    if (!child_split.happened) return {};
    node->keys.insert(node->keys.begin() + static_cast<long>(i), child_split.pivot);
    node->children.insert(node->children.begin() + static_cast<long>(i) + 1,
                          std::move(child_split.right));
    if (node->keys.size() > kMaxKeys) return SplitInternal(node);
    return {};
  }

  InsertResult SplitLeaf(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/true);
    size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + static_cast<long>(mid), node->keys.end());
    right->values.assign(std::make_move_iterator(node->values.begin() +
                                                 static_cast<long>(mid)),
                         std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    node->next = right.get();
    InsertResult result;
    result.happened = true;
    result.pivot = right->keys.front();
    result.right = std::move(right);
    return result;
  }

  InsertResult SplitInternal(Node* node) {
    auto right = std::make_unique<Node>(/*leaf=*/false);
    size_t mid = node->keys.size() / 2;
    Key pivot = node->keys[mid];
    right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                       node->keys.end());
    right->children.assign(
        std::make_move_iterator(node->children.begin() + static_cast<long>(mid) + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    InsertResult result;
    result.happened = true;
    result.pivot = pivot;
    result.right = std::move(right);
    return result;
  }

  size_t CountKeys(const Node* node) const {
    if (node->leaf) return node->keys.size();
    size_t total = 0;
    for (const auto& c : node->children) total += CountKeys(c.get());
    return total;
  }

  size_t MemoryOf(const Node* node) const {
    size_t bytes = sizeof(Node);
    bytes += node->keys.capacity() * sizeof(Key);
    if constexpr (std::is_same_v<Key, std::string>) {
      for (const auto& k : node->keys) bytes += k.capacity();
    }
    bytes += node->children.capacity() * sizeof(void*);
    bytes += node->values.capacity() * sizeof(std::vector<Value>);
    for (const auto& v : node->values) bytes += v.capacity() * sizeof(Value);
    for (const auto& c : node->children) bytes += MemoryOf(c.get());
    return bytes;
  }

  std::unique_ptr<Node> root_;
  size_t num_values_ = 0;
  int depth_ = 1;
};

}  // namespace koko

#endif  // KOKO_STORAGE_BTREE_H_

#ifndef KOKO_STORAGE_TABLE_H_
#define KOKO_STORAGE_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "storage/btree.h"
#include "storage/serde.h"
#include "util/status.h"

namespace koko {

enum class ColumnType : uint8_t { kInt64 = 0, kString = 1 };

struct ColumnSpec {
  std::string name;
  ColumnType type;
};

/// A single cell value.
using Cell = std::variant<int64_t, std::string>;

/// \brief Columnar relational table with secondary B-tree indexes.
///
/// Plays the role of a PostgreSQL table in the paper's architecture: every
/// index scheme persists its postings here (schemas W, E, PL, POS, and the
/// baselines' P tables), and lookups go through B+tree indexes over
/// order-preserving composite key encodings.
class Table {
 public:
  Table(std::string name, std::vector<ColumnSpec> schema);

  const std::string& name() const { return name_; }
  const std::vector<ColumnSpec>& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }

  /// Appends a row; cells must match the schema arity and types.
  Status AppendRow(const std::vector<Cell>& cells);

  int64_t GetInt(uint32_t row, uint32_t col) const;
  const std::string& GetString(uint32_t row, uint32_t col) const;

  /// Column index by name, -1 if absent.
  int ColumnIndex(std::string_view column_name) const;

  /// Builds a B-tree index named `index_name` over `columns` (existing rows
  /// are indexed; subsequent appends maintain it).
  Status CreateIndex(const std::string& index_name,
                     const std::vector<std::string>& columns);

  /// Row ids whose indexed columns equal `key_cells`, via index
  /// `index_name`. Empty when no rows match.
  Result<std::vector<uint32_t>> IndexLookup(const std::string& index_name,
                                            const std::vector<Cell>& key_cells) const;

  /// Row ids whose composite key starts with `prefix_cells` (prefix scan).
  Result<std::vector<uint32_t>> IndexPrefixLookup(
      const std::string& index_name, const std::vector<Cell>& prefix_cells) const;

  bool HasIndex(const std::string& index_name) const {
    return indexes_.count(index_name) > 0;
  }

  /// Heap footprint of data plus all indexes, in bytes.
  size_t MemoryUsage() const;

  void Serialize(BinaryWriter* writer) const;
  static Result<Table> Deserialize(BinaryReader* reader);

  /// Order-preserving composite key encoding: int64 as big-endian with the
  /// sign bit flipped; strings terminated by 0x00 (values must not contain
  /// NUL, which holds for all text in this system).
  static std::string EncodeKey(const std::vector<Cell>& cells);

 private:
  struct Index {
    std::vector<uint32_t> columns;
    BPlusTree<std::string, uint32_t> tree;
  };

  void IndexRow(Index* index, uint32_t row);
  std::string KeyForRow(const Index& index, uint32_t row) const;

  std::string name_;
  std::vector<ColumnSpec> schema_;
  size_t num_rows_ = 0;
  // Column storage: parallel vectors, one entry per column position; the
  // unused representation stays empty.
  std::vector<std::vector<int64_t>> int_cols_;
  std::vector<std::vector<std::string>> str_cols_;
  std::map<std::string, std::unique_ptr<Index>> indexes_;
};

/// \brief Named-table catalog with whole-database persistence.
class Catalog {
 public:
  /// Creates (replacing any existing) a table.
  Table* CreateTable(std::string name, std::vector<ColumnSpec> schema);

  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  size_t MemoryUsage() const;

  /// Persists all tables (with index definitions) to one binary file.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  /// Stream-based variants, so a catalog can be embedded as one section of
  /// a larger file (e.g. the KokoIndex image with its compressed sid
  /// caches, or one shard of a ShardedKokoIndex).
  Status Save(BinaryWriter* writer) const;
  Status Load(BinaryReader* reader);

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace koko

#endif  // KOKO_STORAGE_TABLE_H_

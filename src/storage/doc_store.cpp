#include "storage/doc_store.h"

#include <fstream>
#include <sstream>

#include "storage/serde.h"
#include "util/logging.h"

namespace koko {

std::string DocumentStore::SerializeDocument(const Document& doc) {
  std::ostringstream out;
  BinaryWriter w(&out);
  w.WriteU32(doc.id);
  w.WriteString(doc.title);
  w.WriteU32(static_cast<uint32_t>(doc.sentences.size()));
  for (const Sentence& s : doc.sentences) {
    w.WriteU32(static_cast<uint32_t>(s.tokens.size()));
    for (const Token& t : s.tokens) {
      w.WriteString(t.text);
      w.WriteU8(static_cast<uint8_t>(t.pos));
      w.WriteU8(static_cast<uint8_t>(t.label));
      w.WriteI64(t.head);
      w.WriteU8(static_cast<uint8_t>(t.etype));
      w.WriteI64(t.entity_id);
    }
    w.WriteU32(static_cast<uint32_t>(s.entities.size()));
    for (const Entity& e : s.entities) {
      w.WriteI64(e.begin);
      w.WriteI64(e.end);
      w.WriteU8(static_cast<uint8_t>(e.type));
    }
  }
  return out.str();
}

Result<Document> DocumentStore::DeserializeDocument(const std::string& blob) {
  std::istringstream in(blob);
  BinaryReader r(&in);
  Document doc;
  KOKO_ASSIGN_OR_RETURN(doc.id, r.ReadU32());
  KOKO_ASSIGN_OR_RETURN(doc.title, r.ReadString());
  KOKO_ASSIGN_OR_RETURN(uint32_t num_sentences, r.ReadU32());
  doc.sentences.resize(num_sentences);
  for (Sentence& s : doc.sentences) {
    KOKO_ASSIGN_OR_RETURN(uint32_t num_tokens, r.ReadU32());
    s.tokens.resize(num_tokens);
    for (Token& t : s.tokens) {
      KOKO_ASSIGN_OR_RETURN(t.text, r.ReadString());
      KOKO_ASSIGN_OR_RETURN(uint8_t pos, r.ReadU8());
      t.pos = static_cast<PosTag>(pos);
      KOKO_ASSIGN_OR_RETURN(uint8_t label, r.ReadU8());
      t.label = static_cast<DepLabel>(label);
      KOKO_ASSIGN_OR_RETURN(int64_t head, r.ReadI64());
      t.head = static_cast<int>(head);
      KOKO_ASSIGN_OR_RETURN(uint8_t etype, r.ReadU8());
      t.etype = static_cast<EntityType>(etype);
      KOKO_ASSIGN_OR_RETURN(int64_t eid, r.ReadI64());
      t.entity_id = static_cast<int>(eid);
    }
    KOKO_ASSIGN_OR_RETURN(uint32_t num_entities, r.ReadU32());
    s.entities.resize(num_entities);
    for (Entity& e : s.entities) {
      KOKO_ASSIGN_OR_RETURN(int64_t begin, r.ReadI64());
      e.begin = static_cast<int>(begin);
      KOKO_ASSIGN_OR_RETURN(int64_t end, r.ReadI64());
      e.end = static_cast<int>(end);
      KOKO_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
      e.type = static_cast<EntityType>(type);
    }
    s.ComputeTreeInfo();
  }
  return doc;
}

DocumentStore DocumentStore::FromCorpus(const AnnotatedCorpus& corpus) {
  DocumentStore store;
  store.blobs_.reserve(corpus.docs.size());
  for (const Document& doc : corpus.docs) {
    store.blobs_.push_back(SerializeDocument(doc));
  }
  return store;
}

Document DocumentStore::LoadDocument(uint32_t doc_id) const {
  KOKO_CHECK(doc_id < blobs_.size());
  auto doc = DeserializeDocument(blobs_[doc_id]);
  KOKO_CHECK(doc.ok());
  return std::move(*doc);
}

size_t DocumentStore::TotalBytes() const {
  size_t total = 0;
  for (const auto& blob : blobs_) total += blob.size();
  return total;
}

Status DocumentStore::SaveToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  BinaryWriter w(&out);
  w.WriteU32(0x4b444f43);  // "CODK"
  w.WriteU32(static_cast<uint32_t>(blobs_.size()));
  for (const auto& blob : blobs_) w.WriteString(blob);
  if (!w.ok()) return Status::IoError("write failure on " + path);
  return Status::OK();
}

Status DocumentStore::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  BinaryReader r(&in);
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
  if (magic != 0x4b444f43) return Status::ParseError("bad doc-store magic");
  KOKO_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  blobs_.clear();
  blobs_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    KOKO_ASSIGN_OR_RETURN(std::string blob, r.ReadString());
    blobs_.push_back(std::move(blob));
  }
  return Status::OK();
}

}  // namespace koko

#ifndef KOKO_STORAGE_DOC_STORE_H_
#define KOKO_STORAGE_DOC_STORE_H_

#include <string>
#include <vector>

#include "text/document.h"
#include "util/status.h"

namespace koko {

/// \brief Serialized store of parsed documents.
///
/// Plays the role of the paper's "parsed text stored in PostgreSQL": the
/// engine's LoadArticle phase fetches candidate articles from here, paying
/// a real deserialisation cost per article (Table 2 attributes >50% of
/// end-to-end time to this phase). Each document is one binary blob.
class DocumentStore {
 public:
  /// Serialises every document of a corpus.
  static DocumentStore FromCorpus(const AnnotatedCorpus& corpus);

  /// Deserialises document `doc_id`. Aborts on corrupt blobs (they are
  /// produced only by FromCorpus/LoadFromFile).
  Document LoadDocument(uint32_t doc_id) const;

  size_t NumDocs() const { return blobs_.size(); }

  /// Total serialized size (what "the parsed text corpus on disk" costs).
  size_t TotalBytes() const;

  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  /// Standalone (de)serialisation helpers, also used in tests.
  static std::string SerializeDocument(const Document& doc);
  static Result<Document> DeserializeDocument(const std::string& blob);

 private:
  std::vector<std::string> blobs_;
};

}  // namespace koko

#endif  // KOKO_STORAGE_DOC_STORE_H_

#ifndef KOKO_STORAGE_SERDE_H_
#define KOKO_STORAGE_SERDE_H_

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace koko {

/// \brief Little-endian binary writer over an std::ostream.
///
/// The persistence format for tables and indices: fixed-width integers,
/// length-prefixed strings. Deliberately simple — the paper persists its
/// indices in PostgreSQL; here a flat binary image plays that role.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v) { out_->write(reinterpret_cast<const char*>(&v), 1); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU32(static_cast<uint32_t>(v.size()));
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  /// Raw bytes, no length prefix — for serializing borrowed views (e.g. a
  /// mapped BlockList) whose element storage is not a std::vector.
  void WriteBytes(const void* data, size_t size) {
    if (size > 0) WriteRaw(data, size);
  }

  /// Absolute write position, or -1 when the stream is not seekable. The
  /// v4 image uses it to pad packed block payloads to a 4-byte file
  /// offset (an mmap'ed image is page-aligned, so file alignment is
  /// memory alignment); on a non-seekable sink the pad degrades to 0 and
  /// the image stays valid, just unaligned.
  int64_t Position() const {
    const std::streampos pos = out_->tellp();
    return pos == std::streampos(-1) ? -1 : static_cast<int64_t>(pos);
  }

  bool ok() const { return out_->good(); }

 private:
  void WriteRaw(const void* data, size_t size) {
    out_->write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(size));
  }
  std::ostream* out_;
};

/// Binary reader matching BinaryWriter's format.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    return ReadRaw(&v, 1) ? Result<uint8_t>(v) : Fail<uint8_t>();
  }
  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<uint32_t>(v) : Fail<uint32_t>();
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<uint64_t>(v) : Fail<uint64_t>();
  }
  Result<int64_t> ReadI64() {
    int64_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<int64_t>(v) : Fail<int64_t>();
  }
  Result<double> ReadDouble() {
    double v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<double>(v) : Fail<double>();
  }

  Result<std::string> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    // A corrupt length prefix must fail cleanly, not allocate gigabytes:
    // never trust a count larger than the bytes left in the stream.
    if (*len > RemainingBytes()) return Fail<std::string>();
    std::string s(*len, '\0');
    if (*len > 0 && !ReadRaw(s.data(), *len)) return Fail<std::string>();
    return s;
  }

  template <typename T>
  Result<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    if (static_cast<uint64_t>(*len) * sizeof(T) > RemainingBytes()) {
      return Fail<std::vector<T>>();
    }
    std::vector<T> v(*len);
    if (*len > 0 && !ReadRaw(v.data(), v.size() * sizeof(T))) {
      return Fail<std::vector<T>>();
    }
    return v;
  }

  /// `size` raw bytes with no length prefix — the counterpart of
  /// WriteBytes, for payloads whose length was serialized separately.
  /// Bounded like ReadVector: a corrupt external length must fail cleanly.
  Result<std::vector<uint8_t>> ReadRawBytes(size_t size) {
    if (size > RemainingBytes()) return Fail<std::vector<uint8_t>>();
    std::vector<uint8_t> v(size);
    if (size > 0 && !ReadRaw(v.data(), size)) {
      return Fail<std::vector<uint8_t>>();
    }
    return v;
  }

 private:
  template <typename T>
  Result<T> Fail() {
    return Status::IoError("unexpected end of stream");
  }

  /// Bytes left between the cursor and end-of-stream; UINT64_MAX when the
  /// stream is not seekable (no bound available). The end offset is cached
  /// — the underlying image does not grow mid-load.
  uint64_t RemainingBytes() {
    const std::streampos cur = in_->tellg();
    if (cur == std::streampos(-1)) return UINT64_MAX;
    if (end_pos_ == std::streampos(-1)) {
      in_->seekg(0, std::ios::end);
      end_pos_ = in_->tellg();
      in_->seekg(cur);
      if (end_pos_ == std::streampos(-1)) return UINT64_MAX;
    }
    if (end_pos_ < cur) return 0;
    return static_cast<uint64_t>(end_pos_ - cur);
  }
  bool ReadRaw(void* data, size_t size) {
    in_->read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(size));
    return in_->good() || (in_->eof() && static_cast<size_t>(in_->gcount()) == size);
  }
  std::istream* in_;
  std::streampos end_pos_ = std::streampos(-1);
};

/// \brief Seekable read-only std::streambuf over a MemorySpan.
///
/// Lets the stream-based deserializers (Catalog::Load and friends) parse a
/// memory-mapped image without an intermediate copy of the stream itself:
/// an `std::istream` constructed over this buffer reads straight from the
/// mapping. Supports seeking so BinaryReader's remaining-bytes bound works.
class SpanStreamBuf : public std::streambuf {
 public:
  explicit SpanStreamBuf(MemorySpan span) {
    char* base = const_cast<char*>(reinterpret_cast<const char*>(span.data()));
    setg(base, base, base + span.size());
  }

 protected:
  pos_type seekoff(off_type off, std::ios_base::seekdir dir,
                   std::ios_base::openmode which) override {
    if (!(which & std::ios_base::in)) return pos_type(off_type(-1));
    off_type base;
    switch (dir) {
      case std::ios_base::beg: base = 0; break;
      case std::ios_base::cur: base = gptr() - eback(); break;
      case std::ios_base::end: base = egptr() - eback(); break;
      default: return pos_type(off_type(-1));
    }
    const off_type target = base + off;
    if (target < 0 || target > egptr() - eback()) return pos_type(off_type(-1));
    setg(eback(), eback() + target, egptr());
    return pos_type(target);
  }

  pos_type seekpos(pos_type pos, std::ios_base::openmode which) override {
    return seekoff(off_type(pos), std::ios_base::beg, which);
  }
};

/// \brief Bounds-checked reader over a MemorySpan that can hand out *views*
/// instead of copies.
///
/// The zero-copy load path's counterpart to BinaryReader: scalar reads and
/// strings copy as usual, but length-prefixed arrays come back as
/// `U32View`/`MemorySpan` aliases into the underlying span (the caller owns
/// the backing memory — typically a MappedFile — and must keep it alive).
/// Every read is bounded by the span, so a corrupt length prefix fails with
/// an error instead of reading past the mapping.
class SpanReader {
 public:
  explicit SpanReader(MemorySpan span, size_t offset = 0)
      : span_(span), pos_(offset > span.size() ? span.size() : offset) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return span_.size() - pos_; }

  Result<uint8_t> ReadU8() {
    if (remaining() < 1) return Eof();
    return span_.data()[pos_++];
  }

  /// Skips `n` bytes (alignment padding in the v4 image).
  Status Skip(size_t n) {
    if (n > remaining()) return Eof();
    pos_ += n;
    return Status::OK();
  }

  Result<uint32_t> ReadU32() {
    if (remaining() < sizeof(uint32_t)) return Eof();
    uint32_t v;
    std::memcpy(&v, span_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (remaining() < sizeof(uint64_t)) return Eof();
    uint64_t v;
    std::memcpy(&v, span_.data() + pos_, sizeof(v));
    pos_ += sizeof(v);
    return v;
  }

  Result<std::string> ReadString() {
    KOKO_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (len > remaining()) return Eof();
    std::string s(reinterpret_cast<const char*>(span_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  /// u32 count, then `count` host-endian uint32s, returned as a view (the
  /// bytes may be unaligned — U32View loads elements unaligned-safely).
  Result<U32View> ReadU32Array() {
    KOKO_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
    const uint64_t bytes = static_cast<uint64_t>(count) * sizeof(uint32_t);
    if (bytes > remaining()) return Eof();
    U32View view(span_.data() + pos_, count);
    pos_ += static_cast<size_t>(bytes);
    return view;
  }

  /// u32 count, then `count` raw bytes, returned as a view.
  Result<MemorySpan> ReadByteArray() {
    KOKO_ASSIGN_OR_RETURN(uint32_t count, ReadU32());
    return ReadRawSpan(count);
  }

  /// `count` raw bytes with no length prefix, returned as a view — for
  /// payloads whose length was serialized before an alignment pad.
  Result<MemorySpan> ReadRawSpan(size_t count) {
    if (count > remaining()) return Eof();
    MemorySpan view(span_.data() + pos_, count);
    pos_ += count;
    return view;
  }

 private:
  Status Eof() const {
    return Status::IoError("unexpected end of mapped image");
  }

  MemorySpan span_;
  size_t pos_ = 0;
};

}  // namespace koko

#endif  // KOKO_STORAGE_SERDE_H_

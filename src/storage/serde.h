#ifndef KOKO_STORAGE_SERDE_H_
#define KOKO_STORAGE_SERDE_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace koko {

/// \brief Little-endian binary writer over an std::ostream.
///
/// The persistence format for tables and indices: fixed-width integers,
/// length-prefixed strings. Deliberately simple — the paper persists its
/// indices in PostgreSQL; here a flat binary image plays that role.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream* out) : out_(out) {}

  void WriteU8(uint8_t v) { out_->write(reinterpret_cast<const char*>(&v), 1); }
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    out_->write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void WriteVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU32(static_cast<uint32_t>(v.size()));
    if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(T));
  }

  bool ok() const { return out_->good(); }

 private:
  void WriteRaw(const void* data, size_t size) {
    out_->write(reinterpret_cast<const char*>(data),
                static_cast<std::streamsize>(size));
  }
  std::ostream* out_;
};

/// Binary reader matching BinaryWriter's format.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream* in) : in_(in) {}

  Result<uint8_t> ReadU8() {
    uint8_t v = 0;
    return ReadRaw(&v, 1) ? Result<uint8_t>(v) : Fail<uint8_t>();
  }
  Result<uint32_t> ReadU32() {
    uint32_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<uint32_t>(v) : Fail<uint32_t>();
  }
  Result<uint64_t> ReadU64() {
    uint64_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<uint64_t>(v) : Fail<uint64_t>();
  }
  Result<int64_t> ReadI64() {
    int64_t v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<int64_t>(v) : Fail<int64_t>();
  }
  Result<double> ReadDouble() {
    double v = 0;
    return ReadRaw(&v, sizeof(v)) ? Result<double>(v) : Fail<double>();
  }

  Result<std::string> ReadString() {
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    // A corrupt length prefix must fail cleanly, not allocate gigabytes:
    // never trust a count larger than the bytes left in the stream.
    if (*len > RemainingBytes()) return Fail<std::string>();
    std::string s(*len, '\0');
    if (*len > 0 && !ReadRaw(s.data(), *len)) return Fail<std::string>();
    return s;
  }

  template <typename T>
  Result<std::vector<T>> ReadVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    auto len = ReadU32();
    if (!len.ok()) return len.status();
    if (static_cast<uint64_t>(*len) * sizeof(T) > RemainingBytes()) {
      return Fail<std::vector<T>>();
    }
    std::vector<T> v(*len);
    if (*len > 0 && !ReadRaw(v.data(), v.size() * sizeof(T))) {
      return Fail<std::vector<T>>();
    }
    return v;
  }

 private:
  template <typename T>
  Result<T> Fail() {
    return Status::IoError("unexpected end of stream");
  }

  /// Bytes left between the cursor and end-of-stream; UINT64_MAX when the
  /// stream is not seekable (no bound available). The end offset is cached
  /// — the underlying image does not grow mid-load.
  uint64_t RemainingBytes() {
    const std::streampos cur = in_->tellg();
    if (cur == std::streampos(-1)) return UINT64_MAX;
    if (end_pos_ == std::streampos(-1)) {
      in_->seekg(0, std::ios::end);
      end_pos_ = in_->tellg();
      in_->seekg(cur);
      if (end_pos_ == std::streampos(-1)) return UINT64_MAX;
    }
    if (end_pos_ < cur) return 0;
    return static_cast<uint64_t>(end_pos_ - cur);
  }
  bool ReadRaw(void* data, size_t size) {
    in_->read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(size));
    return in_->good() || (in_->eof() && static_cast<size_t>(in_->gcount()) == size);
  }
  std::istream* in_;
  std::streampos end_pos_ = std::streampos(-1);
};

}  // namespace koko

#endif  // KOKO_STORAGE_SERDE_H_

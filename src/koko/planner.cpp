#include "koko/planner.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "index/path_lookup.h"
#include "text/annotations.h"
#include "util/hash.h"

namespace koko {

namespace {

// Decomposition flags of one absolute path — the same predicate
// KokoPathSidLookup evaluates, reproduced at plan time so the plan's
// single-index/cross-index classification always matches execution.
struct PathShape {
  bool unconstrained = true;
  bool has_pl = false;
  bool has_pos = false;
  std::vector<const std::string*> words;  // in step order
};

PathShape ShapeOf(const PathQuery& path) {
  PathShape shape;
  if (path.empty()) return shape;
  for (const PathStep& step : path.steps) {
    if (step.constraint.dep) shape.has_pl = true;
    if (step.constraint.pos) shape.has_pos = true;
    if (step.constraint.word) shape.words.push_back(&*step.constraint.word);
  }
  shape.unconstrained = !shape.has_pl && !shape.has_pos && shape.words.empty();
  return shape;
}

uint64_t OptionsFingerprint(const PlannerOptions& options) {
  uint64_t h = Mix64(options.decode_gallop_min_ratio);
  h = HashCombine(h, Mix64(options.decode_gallop_max_ratio));
  uint64_t frac_bits = 0;
  static_assert(sizeof(frac_bits) == sizeof(options.semi_join_max_fraction));
  std::memcpy(&frac_bits, &options.semi_join_max_fraction, sizeof(frac_bits));
  return HashCombine(h, Mix64(frac_bits));
}

std::string QuoteWords(const std::vector<std::string>& words) {
  std::string out;
  for (const std::string& word : words) {
    if (!out.empty()) out += ' ';
    out += word;
  }
  return "\"" + out + "\"";
}

}  // namespace

uint64_t PlanFingerprint(const CompiledQuery& cq) {
  // Salted per atom kind so e.g. a literal "X" and an entity named X can
  // never collide; atoms hashed in the same order BuildQueryPlan visits.
  uint64_t h = Fnv1a64("koko-plan-v1");
  for (int dom : cq.DominantPathVars()) {
    h = HashCombine(h, Mix64(1));
    h = HashCombine(
        h, Fnv1a64(cq.vars[static_cast<size_t>(dom)].abs_path.ToString()));
  }
  for (const CompiledVar& v : cq.vars) {
    if (v.kind == CompiledVar::Kind::kEntity) {
      h = HashCombine(h, Mix64(2));
      h = HashCombine(
          h, Mix64(v.etype ? 1 + static_cast<uint64_t>(*v.etype) : 0));
    } else if (v.kind == CompiledVar::Kind::kLiteral) {
      h = HashCombine(h, Mix64(3));
      h = HashCombine(h, Mix64(v.literal.size()));
      for (const std::string& word : v.literal) {
        h = HashCombine(h, Fnv1a64(word));
      }
    }
  }
  return h;
}

IntersectRep ChooseIntersectRep(uint64_t list_estimate,
                                uint64_t block_estimate,
                                const PlannerOptions& options) {
  // A compressed side no larger than the accumulator: the in-place kernel
  // is already the bulk-decode merge (or walks the block side as the
  // smaller), so there is nothing for a wholesale decode to win.
  if (block_estimate <= list_estimate) return IntersectRep::kBlockInPlace;
  const uint64_t ratio =
      block_estimate / std::max<uint64_t>(list_estimate, 1);
  if (ratio >= options.decode_gallop_min_ratio &&
      ratio < options.decode_gallop_max_ratio) {
    return IntersectRep::kDecodeThenGallop;
  }
  return IntersectRep::kBlockInPlace;
}

std::shared_ptr<const QueryPlan> BuildQueryPlan(const KokoIndex& index,
                                                const CompiledQuery& cq,
                                                const PlannerOptions& options) {
  auto plan = std::make_shared<QueryPlan>();
  plan->fingerprint = PlanFingerprint(cq);
  plan->index_sentences = index.stats().num_sentences;
  plan->options = options;

  // ---- Classify + estimate, mirroring CollectCandidates' atom set ----
  for (int dom : cq.DominantPathVars()) {
    const PathQuery& path = cq.vars[static_cast<size_t>(dom)].abs_path;
    PathShape shape = ShapeOf(path);
    if (shape.unconstrained) continue;  // contributes no pruning, as at exec
    PlannedAtom atom;
    atom.kind = PlannedAtom::Kind::kPath;
    atom.var = dom;
    atom.label = "path " + path.ToString();
    const int indices_used = (shape.has_pl ? 1 : 0) + (shape.has_pos ? 1 : 0) +
                             (shape.words.empty() ? 0 : 1);
    atom.cross_index = indices_used > 1 || !shape.words.empty();
    if (!atom.cross_index) {
      // Single hierarchy index: the lookup is a trie-node sid union; its
      // size is bounded by the sum of the matched nodes' list lengths.
      atom.estimate = shape.has_pl ? index.EstimatePlPathSids(
                                         ProjectParseLabelPath(path))
                                   : index.EstimatePosPathSids(
                                         ProjectPosPath(path));
    } else {
      // Cross-index: the answer's sids lie inside every consulted index's
      // projection, so the smallest projection bounds the result. An
      // absent word proves it empty (estimate 0, exact).
      uint64_t min_proj = std::numeric_limits<uint64_t>::max();
      if (shape.has_pl) {
        min_proj = std::min<uint64_t>(
            min_proj, index.EstimatePlPathSids(ProjectParseLabelPath(path)));
      }
      if (shape.has_pos) {
        min_proj = std::min<uint64_t>(
            min_proj, index.EstimatePosPathSids(ProjectPosPath(path)));
      }
      bool word_absent = false;
      for (const std::string* word : shape.words) {
        const size_t count = index.CountWordSids(*word);
        if (count == 0) word_absent = true;
        min_proj = std::min<uint64_t>(min_proj, count);
      }
      atom.estimate = word_absent ? 0 : min_proj;
      atom.exact = word_absent;
      // Semi-join only while the best projection can actually prune the
      // quintuple joins; near the corpus size it is pure overhead.
      atom.use_semi_join =
          static_cast<double>(atom.estimate) <=
          options.semi_join_max_fraction *
              static_cast<double>(std::max<size_t>(plan->index_sentences, 1));
    }
    plan->atoms.push_back(std::move(atom));
  }
  for (size_t i = 0; i < cq.vars.size(); ++i) {
    const CompiledVar& v = cq.vars[i];
    if (v.kind == CompiledVar::Kind::kEntity) {
      PlannedAtom atom;
      atom.kind = PlannedAtom::Kind::kEntity;
      atom.var = static_cast<int>(i);
      const BlockList& sids =
          v.etype ? index.EntityTypeSids(*v.etype) : index.AllEntitySids();
      atom.estimate = sids.size();
      atom.exact = true;
      atom.block_backed = true;
      atom.stats = StatsOf(sids);
      atom.label = v.etype ? "entity " + std::string(EntityTypeName(*v.etype))
                           : "entity *";
      plan->atoms.push_back(std::move(atom));
    } else if (v.kind == CompiledVar::Kind::kLiteral) {
      PlannedAtom atom;
      atom.kind = PlannedAtom::Kind::kLiteral;
      atom.var = static_cast<int>(i);
      atom.label = "literal " + QuoteWords(v.literal);
      uint64_t min_words = std::numeric_limits<uint64_t>::max();
      bool word_absent = false;
      for (const std::string& word : v.literal) {
        const size_t count = index.CountWordSids(word);
        if (count == 0) word_absent = true;
        min_words = std::min<uint64_t>(min_words, count);
      }
      atom.estimate = word_absent ? 0 : min_words;
      // A single stored word list is served verbatim (exact, compressed);
      // a multi-word conjunction decodes to at most the smallest list.
      if (v.literal.size() == 1 && !word_absent) {
        atom.exact = true;
        atom.block_backed = true;
        atom.stats = StatsOf(*index.WordSids(v.literal[0]));
      } else {
        atom.exact = word_absent;
      }
      plan->atoms.push_back(std::move(atom));
    }
  }
  plan->pruned = !plan->atoms.empty();
  if (!plan->pruned) return plan;

  // ---- Order: ascending estimated selectivity (stable, so equal
  // estimates keep compile order and plans stay deterministic) ----
  std::stable_sort(plan->atoms.begin(), plan->atoms.end(),
                   [](const PlannedAtom& a, const PlannedAtom& b) {
                     return a.estimate < b.estimate;
                   });

  // ---- Per-pair representation: the accumulator after step 0 is bounded
  // by the smallest estimate, so every later compressed atom is costed
  // against it. Atom 0's rep only matters when it stays a deferred block
  // meeting a decoded atom 1 — there the block is the smaller side.
  const uint64_t acc_estimate = plan->atoms[0].estimate;
  for (size_t i = 0; i < plan->atoms.size(); ++i) {
    PlannedAtom& atom = plan->atoms[i];
    if (!atom.block_backed) continue;
    atom.rep = i == 0 ? ChooseIntersectRep(
                            plan->atoms.size() > 1 ? plan->atoms[1].estimate
                                                   : atom.estimate,
                            atom.estimate, options)
                      : ChooseIntersectRep(acc_estimate, atom.estimate, options);
  }
  return plan;
}

PlannedCandidates CollectPlannedCandidates(const KokoIndex& index,
                                           const CompiledQuery& cq,
                                           const QueryPlan& plan) {
  PlannedCandidates result;
  result.pruned = plan.pruned;
  if (!plan.pruned) return result;

  SidList acc;
  bool have_list = false;  // acc holds the decoded accumulator
  // Step-0 compressed atom: held un-decoded until the second source fixes
  // the cheapest join (block x block stays fully in place).
  const BlockList* pending_block = nullptr;
  IntersectRep pending_rep = IntersectRep::kBlockInPlace;

  for (const PlannedAtom& atom : plan.atoms) {
    SidList src;
    bool src_is_list = false;
    const BlockList* src_block = nullptr;
    switch (atom.kind) {
      case PlannedAtom::Kind::kPath: {
        PathSidLookupResult lookup = KokoPathSidLookup(
            index, cq.vars[static_cast<size_t>(atom.var)].abs_path,
            atom.use_semi_join);
        if (lookup.unconstrained) continue;  // planner never emits these
        src = std::move(lookup.sids);
        src_is_list = true;
        break;
      }
      case PlannedAtom::Kind::kEntity: {
        const CompiledVar& v = cq.vars[static_cast<size_t>(atom.var)];
        src_block =
            v.etype ? &index.EntityTypeSids(*v.etype) : &index.AllEntitySids();
        break;
      }
      case PlannedAtom::Kind::kLiteral: {
        const CompiledVar& v = cq.vars[static_cast<size_t>(atom.var)];
        if (v.literal.size() == 1) {
          src_block = index.WordSids(v.literal[0]);
          if (src_block == nullptr) return result;  // absent -> empty answer
        } else {
          std::vector<SidSetView> word_lists;
          for (const std::string& word : v.literal) {
            const BlockList* sids = index.WordSids(word);
            if (sids == nullptr) return result;
            word_lists.push_back(sids);
          }
          src = IntersectAllViews(std::move(word_lists));
          src_is_list = true;
        }
        break;
      }
    }

    if (src_is_list) {
      if (pending_block != nullptr) {
        acc = IntersectWithRep(src, *pending_block, pending_rep);
        pending_block = nullptr;
        have_list = true;
      } else if (have_list) {
        acc = Intersect(acc, src);
      } else {
        acc = std::move(src);
        have_list = true;
      }
    } else {
      if (pending_block != nullptr) {
        acc = Intersect(*pending_block, *src_block);
        pending_block = nullptr;
        have_list = true;
      } else if (have_list) {
        acc = IntersectWithRep(acc, *src_block, atom.rep);
      } else {
        pending_block = src_block;
        pending_rep = atom.rep;
      }
    }
    // Short-circuit: an empty accumulator proves the (shard's) answer
    // empty — the remaining (larger) atoms are never materialised.
    if (have_list && acc.empty()) return result;
    if (pending_block != nullptr && pending_block->empty()) return result;
  }
  if (pending_block != nullptr) {
    // Single-source plan over a stored compressed list: the candidate set
    // is the list itself.
    acc = pending_block->Decode();
  }
  result.sids = std::move(acc);
  return result;
}

std::shared_ptr<const QueryPlan> PlanCache::Lookup(uint64_t key) const {
  {
    MutexLock lock(mu_);
    auto it = plans_.find(key);
    if (it != plans_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PlanCache::Insert(uint64_t key, std::shared_ptr<const QueryPlan> plan) {
  MutexLock lock(mu_);
  plans_.emplace(key, std::move(plan));
}

void PlanCache::Clear() {
  MutexLock lock(mu_);
  plans_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t PlanCache::size() const {
  MutexLock lock(mu_);
  return plans_.size();
}

PlanCache::Stats PlanCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  {
    MutexLock lock(mu_);
    stats.entries = plans_.size();
  }
  return stats;
}

std::shared_ptr<const QueryPlan> GetOrBuildPlan(const KokoIndex& index,
                                                const CompiledQuery& cq,
                                                const PlannerOptions& options,
                                                PlanCache* cache,
                                                uint64_t salt) {
  if (cache == nullptr) return BuildQueryPlan(index, cq, options);
  const uint64_t key =
      HashCombine(HashCombine(PlanFingerprint(cq),
                              Mix64(salt ^ 0xcbf29ce484222325ULL)),
                  OptionsFingerprint(options));
  if (auto hit = cache->Lookup(key)) return hit;
  auto plan = BuildQueryPlan(index, cq, options);
  cache->Insert(key, plan);
  return plan;
}

}  // namespace koko

#ifndef KOKO_KOKO_PLANNER_H_
#define KOKO_KOKO_PLANNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "index/koko_index.h"
#include "index/sid_ops.h"
#include "koko/compile.h"
#include "util/thread_annotations.h"

namespace koko {

/// Cost-model thresholds. The defaults are *measured* constants, calibrated
/// by bench_micro's skew sweep (BM_SkewIntersect*; the crossover lands in
/// BENCH_micro.json meta) — see docs/QUERY_PLANNING.md for the methodology.
/// Every value only changes *how* an intersection or path lookup executes,
/// never its result, so any setting preserves the parity contract.
struct PlannerOptions {
  /// Skew band [min, max) — ratio of the compressed side's estimated size
  /// to the decoded accumulator's — in which the planner picks
  /// IntersectRep::kDecodeThenGallop over the in-place block kernel.
  /// Calibration (bench_micro's BM_SkewIntersect* sweep, 1:1 through
  /// 1:1000) measured the SIMD in-place cursor winning at every skew on
  /// both the native and the pinned-scalar dispatch arm — full decode
  /// touches every block of the large side, while the skip-gallop cursor
  /// decodes only the blocks probe keys land in — so the default band is
  /// *empty* (min == max: always in-place). BENCH_micro.json meta records
  /// the measured `skew_crossover_{min,max}_ratio` per run; set min < max
  /// to re-enable decode+gallop in that band on hardware where the decoded
  /// gallop wins (e.g. no vector units and cold skip tables).
  size_t decode_gallop_min_ratio = 0;
  size_t decode_gallop_max_ratio = 0;
  /// Cross-index path lookups run the sid semi-join only while the
  /// smallest index projection is estimated below this fraction of the
  /// (shard) corpus; a projection that covers nearly every sentence cannot
  /// prune, so the plan falls straight back to the quintuple joins and
  /// saves materialising the projections and their intersection.
  double semi_join_max_fraction = 0.5;
};

/// One prunable atom of a compiled query, annotated with the statistics
/// and per-clause choices the planner derived for it.
struct PlannedAtom {
  enum class Kind : uint8_t { kPath, kEntity, kLiteral };
  Kind kind = Kind::kEntity;
  /// Index into CompiledQuery::vars.
  int var = -1;
  /// Estimated candidate sentences this atom prunes to. An upper bound
  /// for paths (sum of matched trie-node list lengths) and multi-word
  /// literals (smallest word list); exact for entity atoms and
  /// single-word literals.
  uint64_t estimate = 0;
  bool exact = false;
  /// The atom's native view is a stored BlockList (entity projections,
  /// single-word literals) rather than a per-query decoded list.
  bool block_backed = false;
  /// Skip-table statistics of the backing list (block-backed atoms only).
  BlockListStats stats;
  /// How this atom's list joins the accumulator when exactly one side is
  /// compressed (chosen from the measured skew crossover).
  IntersectRep rep = IntersectRep::kBlockInPlace;
  /// kPath only: the path needs cross-index quintuple joins (vs a pure
  /// trie-projection union).
  bool cross_index = false;
  /// kPath && cross_index only: run the sid semi-join before the joins.
  bool use_semi_join = true;
  /// Human-readable atom description for EXPLAIN.
  std::string label;
};

/// A compiled execution plan for DPLI candidate collection against one
/// (shard) index: atoms in execution order (ascending estimated
/// selectivity), each annotated with its representation and semi-join
/// choices. Executing a plan (CollectPlannedCandidates) yields exactly the
/// candidate set of the unplanned pipeline — plans change cost, not
/// results.
struct QueryPlan {
  /// False when the query has no prunable atom (the engine degrades to the
  /// full sid range, as without a planner).
  bool pruned = false;
  std::vector<PlannedAtom> atoms;
  /// Structure fingerprint of the prunable clauses (PlanFingerprint).
  uint64_t fingerprint = 0;
  /// Sentences in the planned-against (shard) index — the denominator of
  /// the selectivity and semi-join decisions.
  size_t index_sentences = 0;
  /// Thresholds the plan was built with (for EXPLAIN).
  PlannerOptions options;
};

/// Content fingerprint of a query's prunable clause structure: every
/// dominant path, entity restriction, and literal, in compile order. Two
/// queries with equal fingerprints produce identical plans against the
/// same index, which is what makes plans cacheable across queries.
uint64_t PlanFingerprint(const CompiledQuery& cq);

/// Representation choice for intersecting a decoded accumulator
/// (estimated `list_estimate` sids) with a compressed list (estimated
/// `block_estimate` sids): kDecodeThenGallop inside the measured skew
/// band when the compressed side is the larger, kBlockInPlace otherwise.
IntersectRep ChooseIntersectRep(uint64_t list_estimate,
                                uint64_t block_estimate,
                                const PlannerOptions& options);

/// Builds a plan from per-list statistics (list lengths, block counts,
/// skip-table bounds — all O(1) reads, no posting decoded): classifies the
/// prunable atoms, estimates each one's selectivity, orders them
/// ascending, and fixes the per-clause representation and semi-join
/// choices.
std::shared_ptr<const QueryPlan> BuildQueryPlan(const KokoIndex& index,
                                                const CompiledQuery& cq,
                                                const PlannerOptions& options);

/// Candidate sids produced by executing `plan` against `index`. `pruned`
/// mirrors QueryPlan::pruned (false -> caller degrades to the full range).
struct PlannedCandidates {
  bool pruned = false;
  SidList sids;
};

/// Executes a plan: materialises atom views lazily in plan order and
/// intersects them with the planned representations, short-circuiting on
/// an empty accumulator — an empty early atom skips the remaining
/// (typically most expensive) lookups entirely. The resulting sid set is
/// byte-identical to the unplanned CollectCandidates pipeline.
PlannedCandidates CollectPlannedCandidates(const KokoIndex& index,
                                           const CompiledQuery& cq,
                                           const QueryPlan& plan);

/// \brief Cross-query compiled-plan cache keyed by clause fingerprint —
/// the planner-side sibling of ScoreCache.
///
/// Plans are cheap to build (statistics reads only) but repeated workloads
/// rebuild the same plan per query per shard; a PlanCache shared through
/// `EngineOptions::plan_cache` (QueryService owns one) makes the repeat
/// cost one hash lookup. Keys must incorporate the target (shard) index's
/// identity — GetOrBuildPlan mixes the shard ordinal and the planner
/// thresholds into the clause fingerprint — and, like the score cache, a
/// plan cache must never be shared across different corpora; Clear() it
/// when the index is rebuilt or reloaded.
///
/// Thread-safe; plans are immutable once published (shared_ptr<const>),
/// so concurrent queries share them without copying.
class PlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  /// Cached plan for `key`, or nullptr on a miss.
  std::shared_ptr<const QueryPlan> Lookup(uint64_t key) const;

  /// Inserts (first writer wins; plans for one key are deterministic, so
  /// concurrent inserts are benign).
  void Insert(uint64_t key, std::shared_ptr<const QueryPlan> plan);

  /// Drops every plan and resets the hit/miss counters (call when the
  /// index changes — a stale plan would mis-cost, though never mis-answer).
  void Clear();

  size_t size() const;
  Stats stats() const;

 private:
  mutable Mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const QueryPlan>> plans_
      KOKO_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

/// Cache-aware plan fetch: looks up (fingerprint, salt, thresholds) in
/// `cache` when non-null, building and inserting on a miss. `salt`
/// distinguishes plan targets sharing one cache — the engine passes the
/// shard ordinal, so per-shard statistics get per-shard plans.
std::shared_ptr<const QueryPlan> GetOrBuildPlan(const KokoIndex& index,
                                                const CompiledQuery& cq,
                                                const PlannerOptions& options,
                                                PlanCache* cache,
                                                uint64_t salt);

}  // namespace koko

#endif  // KOKO_KOKO_PLANNER_H_

#include "koko/score_cache.h"

#include "util/hash.h"

namespace koko {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

ScoreCache::ScoreCache(const Options& options) {
  const size_t n = RoundUpPow2(options.num_shards == 0 ? 1 : options.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  shard_mask_ = n - 1;
}

uint64_t ScoreCache::ClauseFingerprint(const SatisfyingClause& clause) {
  uint64_t h = Fnv1a64(clause.var);
  h = HashCombine(h, clause.conditions.size());
  for (const SatCondition& cond : clause.conditions) {
    h = HashCombine(h, static_cast<uint64_t>(cond.kind));
    h = HashCombine(h, Fnv1a64(cond.var));
    h = HashCombine(h, Fnv1a64(cond.text));
    uint64_t weight_bits;
    static_assert(sizeof(weight_bits) == sizeof(cond.weight));
    __builtin_memcpy(&weight_bits, &cond.weight, sizeof(weight_bits));
    h = HashCombine(h, weight_bits);
  }
  return Mix64(h);
}

size_t ScoreCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = HashCombine(k.clause_key, Mix64(k.doc));
  return static_cast<size_t>(HashCombine(h, Fnv1a64(k.value)));
}

ScoreCache::Shard& ScoreCache::ShardOf(uint32_t doc) const {
  return *shards_[static_cast<size_t>(Mix64(doc)) & shard_mask_];
}

std::optional<double> ScoreCache::Lookup(uint64_t clause_key, uint32_t doc,
                                         const std::string& value) const {
  Shard& shard = ShardOf(doc);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(Key{clause_key, doc, value});
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ScoreCache::Insert(uint64_t clause_key, uint32_t doc,
                        const std::string& value, double score) {
  Shard& shard = ShardOf(doc);
  MutexLock lock(shard.mu);
  shard.map.emplace(Key{clause_key, doc, value}, score);
}

void ScoreCache::InvalidateDoc(uint32_t doc) {
  Shard& shard = ShardOf(doc);
  MutexLock lock(shard.mu);
  for (auto it = shard.map.begin(); it != shard.map.end();) {
    it = it->first.doc == doc ? shard.map.erase(it) : std::next(it);
  }
}

void ScoreCache::Clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->map.clear();
  }
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t ScoreCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

ScoreCache::Stats ScoreCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.entries = size();
  return stats;
}

}  // namespace koko

#include "koko/aggregate.h"

#include <algorithm>

#include "regex/regex.h"
#include "text/lexicon.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace koko {

namespace {

// Gapped (in-order, possibly non-contiguous) occurrence of `words` within
// the token texts `pool` — §4.4.1(c)'s "word sequence occurs" test.
bool GappedOccurrence(const std::vector<std::string>& pool,
                      const std::vector<std::string>& words) {
  size_t w = 0;
  for (const std::string& tok : pool) {
    if (w < words.size() && EqualsIgnoreCase(tok, words[w])) ++w;
  }
  return w == words.size();
}

}  // namespace

std::vector<int> TokenOccurrences(const Sentence& s,
                                  const std::vector<std::string>& needle) {
  std::vector<int> positions;
  if (needle.empty()) return positions;
  const int n = s.size();
  const int m = static_cast<int>(needle.size());
  for (int i = 0; i + m <= n; ++i) {
    bool match = true;
    for (int j = 0; j < m; ++j) {
      if (!EqualsIgnoreCase(s.tokens[i + j].text, needle[static_cast<size_t>(j)])) {
        match = false;
        break;
      }
    }
    if (match) positions.push_back(i);
  }
  return positions;
}

Aggregator::Aggregator(const EmbeddingModel* model,
                       const EntityRecognizer* recognizer, Options options)
    : model_(model),
      recognizer_(recognizer),
      options_(options),
      expander_(model) {}

void Aggregator::AddOntologySet(const std::vector<std::string>& related) {
  MutexLock lock(expansion_mu_);
  expander_.AddOntologySet(related);
  expansion_cache_.clear();
}

const std::vector<WeightedPhrase>& Aggregator::Expansions(
    const std::string& descriptor) const {
  // Serialized so Score() stays safe to call from concurrent serving
  // threads sharing one Aggregator. References into the node-based map are
  // stable across later insertions; only AddOntologySet (setup time, before
  // any concurrent scoring) invalidates them.
  MutexLock lock(expansion_mu_);
  auto it = expansion_cache_.find(descriptor);
  if (it != expansion_cache_.end()) return it->second;
  return expansion_cache_.emplace(descriptor, expander_.Expand(descriptor))
      .first->second;
}

double Aggregator::ConditionScore(const Document& doc, const std::string& value,
                                  const SatCondition& cond) const {
  std::vector<std::string> value_tokens = Tokenizer::Tokenize(value);
  switch (cond.kind) {
    case SatCondition::Kind::kStrContains: {
      // Token-level containment: "chocolate ice cream" contains "ice".
      std::vector<std::string> needle = Tokenizer::Tokenize(cond.text);
      if (needle.empty()) return 0.0;
      for (size_t i = 0; i + needle.size() <= value_tokens.size(); ++i) {
        bool ok = true;
        for (size_t j = 0; j < needle.size(); ++j) {
          if (value_tokens[i + j] != needle[j]) {
            ok = false;
            break;
          }
        }
        if (ok) return 1.0;
      }
      return 0.0;
    }
    case SatCondition::Kind::kStrMentions:
      return Contains(value, cond.text) ? 1.0 : 0.0;
    case SatCondition::Kind::kStrMatches: {
      auto re = Regex::Compile(cond.text);
      if (!re.ok()) return 0.0;
      return re->FullMatch(value) ? 1.0 : 0.0;
    }
    case SatCondition::Kind::kInDict: {
      EntityType etype;
      if (!ParseEntityType(cond.text, &etype)) return 0.0;
      return recognizer_->InGazetteer(etype, ToLower(value)) ? 1.0 : 0.0;
    }
    case SatCondition::Kind::kFollowedBy:
      return OccursFollowedBy(doc, value_tokens, Tokenizer::Tokenize(cond.text))
                 ? 1.0
                 : 0.0;
    case SatCondition::Kind::kPrecededBy:
      return OccursPrecededBy(doc, value_tokens, Tokenizer::Tokenize(cond.text))
                 ? 1.0
                 : 0.0;
    case SatCondition::Kind::kNear:
      return ScoreNear(doc, value_tokens, cond.text);
    case SatCondition::Kind::kDescriptorRight:
      if (!options_.use_descriptors) return 0.0;
      return ScoreDescriptor(doc, value_tokens, cond.text, /*right_side=*/true);
    case SatCondition::Kind::kDescriptorLeft:
      if (!options_.use_descriptors) return 0.0;
      return ScoreDescriptor(doc, value_tokens, cond.text, /*right_side=*/false);
    case SatCondition::Kind::kSimilarTo:
      return SimilarToScore(value_tokens, cond.text);
  }
  return 0.0;
}

double Aggregator::Score(const Document& doc, const std::string& value,
                         const SatisfyingClause& clause) const {
  double total = 0;
  for (const SatCondition& cond : clause.conditions) {
    total += cond.weight * ConditionScore(doc, value, cond);
  }
  return total;
}

bool Aggregator::Excluded(const Document& doc, const std::string& value,
                          const SatCondition& cond) const {
  return ConditionScore(doc, value, cond) > 0.0;
}

bool Aggregator::OccursFollowedBy(const Document& doc,
                                  const std::vector<std::string>& value_tokens,
                                  const std::vector<std::string>& suffix) const {
  for (const Sentence& s : doc.sentences) {
    for (int pos : TokenOccurrences(s, value_tokens)) {
      int after = pos + static_cast<int>(value_tokens.size());
      if (after + static_cast<int>(suffix.size()) > s.size()) continue;
      bool ok = true;
      for (size_t j = 0; j < suffix.size(); ++j) {
        if (!EqualsIgnoreCase(s.tokens[after + static_cast<int>(j)].text,
                              suffix[j])) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
  }
  return false;
}

bool Aggregator::OccursPrecededBy(const Document& doc,
                                  const std::vector<std::string>& value_tokens,
                                  const std::vector<std::string>& prefix) const {
  for (const Sentence& s : doc.sentences) {
    for (int pos : TokenOccurrences(s, value_tokens)) {
      int start = pos - static_cast<int>(prefix.size());
      if (start < 0) continue;
      bool ok = true;
      for (size_t j = 0; j < prefix.size(); ++j) {
        if (!EqualsIgnoreCase(s.tokens[start + static_cast<int>(j)].text,
                              prefix[j])) {
          ok = false;
          break;
        }
      }
      if (ok) return true;
    }
  }
  return false;
}

double Aggregator::ScoreNear(const Document& doc,
                             const std::vector<std::string>& value_tokens,
                             const std::string& text) const {
  std::vector<std::string> needle = Tokenizer::Tokenize(text);
  double best = 0;
  for (const Sentence& s : doc.sentences) {
    std::vector<int> value_pos = TokenOccurrences(s, value_tokens);
    if (value_pos.empty()) continue;
    std::vector<int> text_pos = TokenOccurrences(s, needle);
    for (int vp : value_pos) {
      int vend = vp + static_cast<int>(value_tokens.size()) - 1;
      for (int tp : text_pos) {
        int tend = tp + static_cast<int>(needle.size()) - 1;
        // Token distance between the two mentions (0 when adjacent).
        int distance;
        if (tp > vend) {
          distance = tp - vend - 1;
        } else if (vp > tend) {
          distance = vp - tend - 1;
        } else {
          distance = 0;  // overlapping
        }
        best = std::max(best, 1.0 / (1.0 + distance));
      }
    }
  }
  return best;
}

double Aggregator::ScoreDescriptor(const Document& doc,
                                   const std::vector<std::string>& value_tokens,
                                   const std::string& descriptor,
                                   bool right_side) const {
  const std::vector<WeightedPhrase>& expansions = Expansions(descriptor);
  double doc_total = 0;
  for (const Sentence& s : doc.sentences) {
    std::vector<int> occurrences = TokenOccurrences(s, value_tokens);
    if (occurrences.empty()) continue;
    auto clauses = SentenceDecomposer::Decompose(s);
    double best_over_expansions = 0;
    for (const WeightedPhrase& expansion : expansions) {
      std::vector<std::string> words = SplitWhitespace(expansion.text);
      double sum_over_clauses = 0;
      for (const auto& clause : clauses) {
        // Only the tokens of the clause on the required side of the value.
        double clause_best = 0;
        for (int occ : occurrences) {
          int vbegin = occ;
          int vend = occ + static_cast<int>(value_tokens.size()) - 1;
          std::vector<std::string> pool;
          for (int t : clause.token_ids) {
            if (right_side ? t > vend : t < vbegin) {
              pool.push_back(s.tokens[t].text);
            }
          }
          if (GappedOccurrence(pool, words)) {
            clause_best = std::max(clause_best, expansion.score * clause.score);
          }
        }
        sum_over_clauses += clause_best;
      }
      best_over_expansions = std::max(best_over_expansions, sum_over_clauses);
    }
    doc_total += best_over_expansions;
  }
  return doc_total;
}

double Aggregator::SimilarToScore(const std::vector<std::string>& value_tokens,
                                  const std::string& descriptor) const {
  const Lexicon& lex = Lexicon::Get();
  double best = 0;
  for (const std::string& tok : value_tokens) {
    std::string lower = ToLower(tok);
    if (lex.IsFunctionWord(lower) || lower.size() <= 1) continue;
    if (EqualsIgnoreCase(lower, descriptor)) return 1.0;
    best = std::max(best, model_->PhraseSimilarity(lower, ToLower(descriptor)));
  }
  return std::clamp(best, 0.0, 1.0);
}

}  // namespace koko

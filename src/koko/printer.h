#ifndef KOKO_KOKO_PRINTER_H_
#define KOKO_KOKO_PRINTER_H_

#include <string>

#include "koko/ast.h"

namespace koko {

/// Renders a Query AST back to KOKO query text. The output re-parses to a
/// structurally identical query (verified by round-trip property tests),
/// which makes programmatically constructed queries (benchmark generators)
/// loggable and debuggable.
std::string QueryToString(const Query& query);

/// Renders a single variable definition ("b = a/dobj").
std::string VarDefToString(const VarDef& def);

}  // namespace koko

#endif  // KOKO_KOKO_PRINTER_H_

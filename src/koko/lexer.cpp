#include "koko/lexer.h"

#include "util/string_util.h"

namespace koko {

Result<std::vector<QToken>> LexQuery(std::string_view text) {
  std::vector<QToken> tokens;
  size_t i = 0;
  const size_t n = text.size();
  auto push = [&](QTokenKind kind, std::string t, size_t off) {
    QToken tok;
    tok.kind = kind;
    tok.text = std::move(t);
    tok.offset = off;
    tokens.push_back(std::move(tok));
  };
  while (i < n) {
    char c = text[i];
    if (IsAsciiSpace(c)) {
      ++i;
      continue;
    }
    size_t start = i;
    if (c == '"') {
      ++i;
      std::string value;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          value.push_back(text[i + 1]);
          i += 2;
        } else {
          value.push_back(text[i]);
          ++i;
        }
      }
      if (i >= n) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(start));
      }
      ++i;  // closing quote
      push(QTokenKind::kString, std::move(value), start);
      continue;
    }
    if (IsAsciiDigit(c) ||
        (c == '.' && i + 1 < n && IsAsciiDigit(text[i + 1]))) {
      size_t j = i;
      while (j < n && (IsAsciiDigit(text[j]) || text[j] == '.')) ++j;
      std::string num(text.substr(i, j - i));
      QToken tok;
      tok.kind = QTokenKind::kNumber;
      tok.text = num;
      tok.number = std::stod(num);
      tok.offset = start;
      tokens.push_back(std::move(tok));
      i = j;
      continue;
    }
    if (IsAsciiAlpha(c) || c == '_') {
      size_t j = i;
      while (j < n && (IsAsciiAlnum(text[j]) || text[j] == '_')) ++j;
      push(QTokenKind::kIdent, std::string(text.substr(i, j - i)), start);
      i = j;
      continue;
    }
    switch (c) {
      case '(': push(QTokenKind::kLParen, "(", start); ++i; break;
      case ')': push(QTokenKind::kRParen, ")", start); ++i; break;
      case '{': push(QTokenKind::kLBrace, "{", start); ++i; break;
      case '}': push(QTokenKind::kRBrace, "}", start); ++i; break;
      case '[':
        if (i + 1 < n && text[i + 1] == '[') {
          push(QTokenKind::kLLBracket, "[[", start);
          i += 2;
        } else {
          push(QTokenKind::kLBracket, "[", start);
          ++i;
        }
        break;
      case ']':
        if (i + 1 < n && text[i + 1] == ']') {
          push(QTokenKind::kRRBracket, "]]", start);
          i += 2;
        } else {
          push(QTokenKind::kRBracket, "]", start);
          ++i;
        }
        break;
      case ',': push(QTokenKind::kComma, ",", start); ++i; break;
      case ':': push(QTokenKind::kColon, ":", start); ++i; break;
      case '=': push(QTokenKind::kEquals, "=", start); ++i; break;
      case '+': push(QTokenKind::kPlus, "+", start); ++i; break;
      case '.': push(QTokenKind::kDot, ".", start); ++i; break;
      case '^': push(QTokenKind::kCaret, "^", start); ++i; break;
      case '*': push(QTokenKind::kStar, "*", start); ++i; break;
      case '@': push(QTokenKind::kAt, "@", start); ++i; break;
      case '~': push(QTokenKind::kTilde, "~", start); ++i; break;
      case '/':
        if (i + 1 < n && text[i + 1] == '/') {
          push(QTokenKind::kSlashSlash, "//", start);
          i += 2;
        } else {
          push(QTokenKind::kSlash, "/", start);
          ++i;
        }
        break;
      default: {
        // Accept the UTF-8 wedge '∧' (E2 88 A7) as an elastic span marker.
        if (static_cast<unsigned char>(c) == 0xE2 && i + 2 < n &&
            static_cast<unsigned char>(text[i + 1]) == 0x88 &&
            static_cast<unsigned char>(text[i + 2]) == 0xA7) {
          push(QTokenKind::kCaret, "^", start);
          i += 3;
          break;
        }
        return Status::ParseError("unexpected character '" + std::string(1, c) +
                                  "' at offset " + std::to_string(start));
      }
    }
  }
  QToken end;
  end.kind = QTokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace koko

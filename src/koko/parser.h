#ifndef KOKO_KOKO_PARSER_H_
#define KOKO_KOKO_PARSER_H_

#include <string_view>

#include "koko/ast.h"
#include "util/status.h"

namespace koko {

/// \brief Parses KOKO query text (§2's surface syntax) into a Query AST.
///
/// Accepted grammar (recursive descent; ASCII `^` or the paper's `∧` for
/// elastic spans, `~` as shorthand for SimilarTo):
///
///   query      := 'extract' outputs 'from' source 'if' '(' body ')'
///                 satisfying* excluding?
///   outputs    := var ':' type (',' var ':' type)*
///   body       := [ '/' 'ROOT' ':' '{' vardef (',' vardef)* '}' ] constraint*
///   vardef     := var '=' rhs      ; rhs is a path, span term, or 'Entity'
///   constraint := '(' var ')' ('in'|'eq') '(' var ')'
///   satisfying := 'satisfying' var conds 'with' 'threshold' number
///   conds      := '(' cond ')' ('or' '(' cond ')')*
///   excluding  := 'excluding' conds
Result<Query> ParseQuery(std::string_view text);

}  // namespace koko

#endif  // KOKO_KOKO_PARSER_H_

#include "koko/engine.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "index/path_lookup.h"
#include "index/sid_ops.h"
#include "koko/parser.h"
#include "regex/regex.h"
#include "util/hash.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace koko {

namespace {

// Exact hash for a row's value vector (the per-sentence dedup key).
struct ValuesHash {
  size_t operator()(const std::vector<std::string>& values) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::string& v : values) {
      h = HashCombine(h, Fnv1a64(v));
      h = HashCombine(h, v.size());
    }
    return static_cast<size_t>(h);
  }
};

// Hash for the aggregate score-cache key (doc, clause index, value).
struct ScoreKeyHash {
  size_t operator()(const std::tuple<uint32_t, size_t, std::string>& key) const {
    uint64_t h = Mix64((static_cast<uint64_t>(std::get<0>(key)) << 32) ^
                       static_cast<uint64_t>(std::get<1>(key)));
    return static_cast<size_t>(HashCombine(h, Fnv1a64(std::get<2>(key))));
  }
};

// A variable binding within one sentence: the token span [begin, end]
// (end < begin encodes an empty span) plus the tree node for node variables.
struct Binding {
  int begin = 0;
  int end = -1;
  int node = -1;

  bool empty_span() const { return end < begin; }
  int length() const { return end - begin + 1; }
};

std::string BindingText(const Sentence& s, const Binding& b) {
  if (b.empty_span()) return "";
  return s.SpanText(b.begin, b.end);
}

// ---- Per-sentence evaluation ------------------------------------------------

class SentenceEvaluator {
 public:
  SentenceEvaluator(const CompiledQuery& cq, const Sentence& s,
                    const EngineOptions& opts, PhaseStats* phases)
      : cq_(cq), s_(s), opts_(opts), phases_(phases) {}

  // Enumerates all assignments; invokes `emit` with the bindings vector.
  // Returns false when the row limit was hit.
  bool Run(const std::function<bool(const std::vector<Binding>&)>& emit) {
    emit_ = &emit;
    const size_t n = cq_.vars.size();
    assign_.assign(n, Binding{});
    assigned_.assign(n, 0);
    if (!ComputeDomains()) return true;  // some variable has no bindings
    ComputeSkipPlan();
    return Step(0);
  }

 private:
  using Kind = CompiledVar::Kind;

  // Fills domains for enumerable variables; false when any is empty.
  bool ComputeDomains() {
    domains_.assign(cq_.vars.size(), {});
    for (size_t i = 0; i < cq_.vars.size(); ++i) {
      const CompiledVar& v = cq_.vars[i];
      switch (v.kind) {
        case Kind::kNode: {
          for (int t : MatchPathInSentence(s_, v.abs_path)) {
            domains_[i].push_back(Binding{t, t, t});
          }
          if (domains_[i].empty()) return false;
          break;
        }
        case Kind::kEntity: {
          for (const Entity& e : s_.entities) {
            if (v.etype && e.type != *v.etype) continue;
            domains_[i].push_back(Binding{e.begin, e.end, -1});
          }
          if (domains_[i].empty()) return false;
          break;
        }
        case Kind::kLiteral: {
          for (int pos : Occurrences(v.literal)) {
            domains_[i].push_back(
                Binding{pos, pos + static_cast<int>(v.literal.size()) - 1, -1});
          }
          if (domains_[i].empty()) return false;
          break;
        }
        case Kind::kElastic:
        case Kind::kSubtree:
        case Kind::kSpan:
          break;  // derived
      }
    }
    return true;
  }

  std::vector<int> Occurrences(const std::vector<std::string>& needle) const {
    std::vector<int> out;
    const int n = s_.size();
    const int m = static_cast<int>(needle.size());
    for (int i = 0; i + m <= n; ++i) {
      bool ok = true;
      for (int j = 0; j < m; ++j) {
        if (s_.tokens[i + j].text != needle[static_cast<size_t>(j)]) {
          ok = false;
          break;
        }
      }
      if (ok) out.push_back(i);
    }
    return out;
  }

  // Algorithm 2: per horizontal condition, greedily mark the costliest
  // variables as skipped (derived from their neighbours' bindings) provided
  // neither horizontal neighbour is already skipped.
  void ComputeSkipPlan() {
    ScopedPhase phase(phases_, "GSP");
    skipped_.assign(cq_.vars.size(), 0);
    if (!opts_.use_gsp) return;
    const double t = static_cast<double>(s_.size());
    for (int span_idx : cq_.horizontal) {
      const std::vector<int>& atoms = cq_.vars[static_cast<size_t>(span_idx)].atoms;
      std::vector<std::pair<double, int>> cost;  // (cost, position in atoms)
      for (size_t pos = 0; pos < atoms.size(); ++pos) {
        const CompiledVar& v = cq_.vars[static_cast<size_t>(atoms[pos])];
        double c;
        switch (v.kind) {
          case Kind::kElastic:
            c = t * (t + 1) / 2;
            break;
          case Kind::kSubtree:
            c = static_cast<double>(
                domains_[static_cast<size_t>(v.base)].size());
            break;
          case Kind::kSpan:
            c = 1;
            break;
          default:
            c = static_cast<double>(domains_[static_cast<size_t>(atoms[pos])].size());
            break;
        }
        cost.push_back({c, static_cast<int>(pos)});
      }
      std::sort(cost.begin(), cost.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      std::vector<char> in_list(atoms.size(), 0);
      for (const auto& [c, pos] : cost) {
        bool left_ok = pos == 0 || !in_list[static_cast<size_t>(pos - 1)];
        bool right_ok = pos + 1 >= static_cast<int>(atoms.size()) ||
                        !in_list[static_cast<size_t>(pos + 1)];
        if (left_ok && right_ok) in_list[static_cast<size_t>(pos)] = 1;
      }
      // Never skip everything: keep the cheapest atom enumerated.
      bool all = true;
      for (char c : in_list) all = all && c;
      if (all && !atoms.empty()) in_list[static_cast<size_t>(cost.back().second)] = 0;
      for (size_t pos = 0; pos < atoms.size(); ++pos) {
        if (in_list[pos]) skipped_[static_cast<size_t>(atoms[pos])] = 1;
      }
    }
  }

  // Checks all constraints whose variables are both assigned.
  bool ConstraintsOk() const {
    for (const CompiledConstraint& c : cq_.constraints) {
      if (!assigned_[static_cast<size_t>(c.a)] ||
          !assigned_[static_cast<size_t>(c.b)]) {
        continue;
      }
      const Binding& a = assign_[static_cast<size_t>(c.a)];
      const Binding& b = assign_[static_cast<size_t>(c.b)];
      switch (c.kind) {
        case Constraint::Kind::kIn:
          if (a.empty_span() || b.empty_span()) return false;
          if (!(a.begin >= b.begin && a.end <= b.end)) return false;
          break;
        case Constraint::Kind::kEq:
          if (!(a.begin == b.begin && a.end == b.end)) return false;
          break;
        case Constraint::Kind::kParentOf: {
          if (a.node < 0 || b.node < 0) return false;
          if (s_.tokens[b.node].head != a.node) return false;
          break;
        }
        case Constraint::Kind::kAncestorOf: {
          if (a.node < 0 || b.node < 0) return false;
          if (!s_.IsAncestor(a.node, b.node)) return false;
          break;
        }
        case Constraint::Kind::kLeftOf:
          // Empty elastic spans sit "between" their neighbours; they never
          // violate ordering.
          if (a.empty_span() || b.empty_span()) break;
          if (!(a.end < b.begin)) return false;
          break;
      }
    }
    return true;
  }

  bool Assign(size_t var, const Binding& b) {
    assign_[var] = b;
    assigned_[var] = 1;
    return ConstraintsOk();
  }
  void Unassign(size_t var) { assigned_[var] = 0; }

  // Recursive enumeration over variables in index order.
  bool Step(size_t var) {
    if (var == cq_.vars.size()) return (*emit_)(assign_);
    const CompiledVar& v = cq_.vars[var];
    switch (v.kind) {
      case Kind::kNode:
      case Kind::kEntity:
      case Kind::kLiteral: {
        if (skipped_[var]) {
          // Derived later during span alignment.
          return Step(var + 1);
        }
        for (const Binding& b : domains_[var]) {
          if (!Assign(var, b)) {
            Unassign(var);
            continue;
          }
          if (!Step(var + 1)) return false;
          Unassign(var);
        }
        return true;
      }
      case Kind::kElastic: {
        if (skipped_[var] || opts_.use_gsp) {
          // With GSP, elastic atoms are (almost) always derived; an
          // unskipped elastic under GSP is still aligned lazily.
          return Step(var + 1);
        }
        // NOGSP: naive enumeration of every possible span.
        const int n = s_.size();
        int min_len = v.elastic.min_tokens;
        int max_len = std::min(v.elastic.max_tokens, n);
        for (int begin = 0; begin < n; ++begin) {
          for (int len = min_len; len <= max_len && begin + len <= n; ++len) {
            Binding b{begin, begin + len - 1, -1};
            if (!ElasticOk(v.elastic, b)) continue;
            if (!Assign(var, b)) {
              Unassign(var);
              continue;
            }
            if (!Step(var + 1)) return false;
            Unassign(var);
          }
        }
        return true;
      }
      case Kind::kSubtree: {
        const Binding& base = assign_[static_cast<size_t>(v.base)];
        if (!assigned_[static_cast<size_t>(v.base)] || base.node < 0) {
          return true;  // base missing: no bindings
        }
        Binding b{s_.subtree_left[base.node], s_.subtree_right[base.node],
                  base.node};
        if (!Assign(var, b)) {
          Unassign(var);
          return true;
        }
        bool cont = Step(var + 1);
        Unassign(var);
        return cont;
      }
      case Kind::kSpan:
        return AlignSpan(var);
    }
    return true;
  }

  bool ElasticOk(const ElasticSpec& spec, const Binding& b) const {
    int len = b.empty_span() ? 0 : b.length();
    if (len < spec.min_tokens || len > spec.max_tokens) return false;
    if (spec.etype || spec.any_entity) {
      bool found = false;
      for (const Entity& e : s_.entities) {
        if (e.begin == b.begin && e.end == b.end &&
            (spec.any_entity || e.type == *spec.etype)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    if (spec.regex) {
      auto re = Regex::Compile(*spec.regex);
      if (!re.ok()) return false;
      if (!re->FullMatch(BindingText(s_, b))) return false;
    }
    return true;
  }

  // Aligns the atoms of span variable `var`: anchors (already assigned
  // atoms) fix positions; deferred runs (skipped or GSP-lazy atoms) are
  // fitted into the gaps between anchors.
  bool AlignSpan(size_t var) {
    const CompiledVar& v = cq_.vars[var];
    const std::vector<int>& atoms = v.atoms;
    return AlignFrom(var, atoms, 0, /*cursor=*/-1, /*span_begin=*/-1);
  }

  // cursor = first token position the next atom must start at (-1 while no
  // anchor has been placed yet). span_begin = begin of the whole span (-1
  // until known).
  bool AlignFrom(size_t var, const std::vector<int>& atoms, size_t pos, int cursor,
                 int span_begin) {
    if (pos == atoms.size()) {
      const CompiledVar& v = cq_.vars[var];
      (void)v;
      int span_end = cursor - 1;
      if (span_begin < 0) return true;  // nothing anchored: vacuous
      Binding b{span_begin, span_end, -1};
      if (!Assign(var, b)) {
        Unassign(var);
        return true;
      }
      bool cont = Step(var + 1);
      Unassign(var);
      return cont;
    }
    size_t atom_var = static_cast<size_t>(atoms[pos]);
    const bool deferred = !assigned_[atom_var];

    if (!deferred) {
      const Binding& b = assign_[atom_var];
      if (cursor >= 0 && b.begin != cursor) return true;  // misaligned
      int begin = b.empty_span() ? cursor : b.begin;
      if (begin < 0) begin = 0;
      int next_cursor = b.empty_span() ? (cursor < 0 ? b.begin : cursor)
                                       : b.end + 1;
      // An assigned empty-span atom (possible for derived elastics reused
      // across conditions) just passes the cursor through.
      if (cursor < 0 && !b.empty_span()) {
        return AlignFrom(var, atoms, pos + 1, b.end + 1, b.begin);
      }
      return AlignFrom(var, atoms, pos + 1, next_cursor,
                       span_begin < 0 ? begin : span_begin);
    }

    // Deferred atom: find the run of consecutive deferred atoms, then the
    // next anchor (or end of atom list).
    size_t run_end = pos;
    while (run_end < atoms.size() && !assigned_[static_cast<size_t>(atoms[run_end])]) {
      ++run_end;
    }
    // Minimal token length the deferred run [pos, run_end) must occupy:
    // literals are fixed-size, elastics contribute their min_tokens.
    int required = 0;
    for (size_t i = pos; i < run_end; ++i) {
      const CompiledVar& rv = cq_.vars[static_cast<size_t>(atoms[i])];
      if (rv.kind == Kind::kLiteral) {
        required += static_cast<int>(rv.literal.size());
      } else if (rv.kind == Kind::kElastic) {
        required += rv.elastic.min_tokens;
      } else {
        required += 1;
      }
    }
    if (run_end == atoms.size()) {
      // Trailing deferred run: occupies exactly its minimal extent after
      // the cursor (minimal-span semantics for unanchored elastics).
      if (cursor < 0) {
        // Whole condition deferred — cannot anchor; enumerate first atom.
        return EnumerateDeferred(var, atoms, pos, cursor, span_begin);
      }
      if (cursor + required > s_.size()) return true;
      return FitRun(var, atoms, pos, run_end, cursor, cursor + required - 1,
                    cursor + required, span_begin);
    }
    size_t anchor_var = static_cast<size_t>(atoms[run_end]);
    const Binding& anchor = assign_[anchor_var];
    if (cursor < 0) {
      // Leading deferred run: ends right before the anchor and occupies
      // exactly its minimal extent.
      int lo = anchor.begin - required;
      if (lo < 0) return true;
      return FitRun(var, atoms, pos, run_end, lo, anchor.begin - 1,
                    anchor.begin, lo);
    }
    if (anchor.begin < cursor) return true;  // anchor behind cursor
    return FitRun(var, atoms, pos, run_end, cursor, anchor.begin - 1, anchor.begin,
                  span_begin);
  }

  // Fits deferred atoms [pos, run_end) into the token gap [lo, hi]
  // (hi < lo for an empty gap), then continues from the anchor at run_end
  // with the cursor at `resume_cursor`.
  bool FitRun(size_t var, const std::vector<int>& atoms, size_t pos, size_t run_end,
              int lo, int hi, int resume_cursor, int span_begin) {
    if (pos == run_end) {
      if (lo <= hi) return true;  // gap not fully consumed
      return AlignFrom(var, atoms, run_end, resume_cursor,
                       span_begin < 0 ? lo : span_begin);
    }
    size_t atom_var = static_cast<size_t>(atoms[pos]);
    const CompiledVar& av = cq_.vars[atom_var];
    const int gap_len = hi - lo + 1;
    switch (av.kind) {
      case Kind::kLiteral: {
        int len = static_cast<int>(av.literal.size());
        if (len > gap_len) return true;
        for (int j = 0; j < len; ++j) {
          if (s_.tokens[lo + j].text != av.literal[static_cast<size_t>(j)]) {
            return true;
          }
        }
        Binding b{lo, lo + len - 1, -1};
        if (!Assign(atom_var, b)) {
          Unassign(atom_var);
          return true;
        }
        bool cont = FitRun(var, atoms, pos + 1, run_end, lo + len, hi,
                           resume_cursor, span_begin);
        Unassign(atom_var);
        return cont;
      }
      case Kind::kElastic: {
        // Try every feasible length (usually the remaining atoms pin it).
        int max_len = std::min(av.elastic.max_tokens, gap_len);
        for (int len = av.elastic.min_tokens; len <= max_len; ++len) {
          Binding b{lo, lo + len - 1, -1};
          if (!ElasticOk(av.elastic, b)) continue;
          if (!Assign(atom_var, b)) {
            Unassign(atom_var);
            continue;
          }
          bool cont = FitRun(var, atoms, pos + 1, run_end, lo + len, hi,
                             resume_cursor, span_begin);
          Unassign(atom_var);
          if (!cont) return false;
        }
        return true;
      }
      case Kind::kNode: {
        if (gap_len < 1) return true;
        // The gap's first token must be a binding of this node variable.
        for (const Binding& b : domains_[atom_var]) {
          if (b.begin != lo || b.end != lo) continue;
          if (!Assign(atom_var, b)) {
            Unassign(atom_var);
            continue;
          }
          bool cont = FitRun(var, atoms, pos + 1, run_end, lo + 1, hi,
                             resume_cursor, span_begin);
          Unassign(atom_var);
          if (!cont) return false;
        }
        return true;
      }
      case Kind::kEntity: {
        for (const Binding& b : domains_[atom_var]) {
          if (b.begin != lo || b.end > hi) continue;
          if (!Assign(atom_var, b)) {
            Unassign(atom_var);
            continue;
          }
          bool cont = FitRun(var, atoms, pos + 1, run_end, b.end + 1, hi,
                             resume_cursor, span_begin);
          Unassign(atom_var);
          if (!cont) return false;
        }
        return true;
      }
      default:
        // Subtree/span atoms are always assigned before alignment.
        return true;
    }
  }

  // Fallback when an entire condition is deferred (single-atom elastic
  // spans): enumerate the first atom explicitly.
  bool EnumerateDeferred(size_t var, const std::vector<int>& atoms, size_t pos,
                         int cursor, int span_begin) {
    (void)cursor;
    (void)span_begin;
    size_t atom_var = static_cast<size_t>(atoms[pos]);
    const CompiledVar& av = cq_.vars[atom_var];
    if (av.kind != Kind::kElastic) return true;
    const int n = s_.size();
    int max_len = std::min(av.elastic.max_tokens, n);
    for (int begin = 0; begin < n; ++begin) {
      for (int len = av.elastic.min_tokens; len <= max_len && begin + len <= n;
           ++len) {
        Binding b{begin, begin + len - 1, -1};
        if (!ElasticOk(av.elastic, b)) continue;
        if (!Assign(atom_var, b)) {
          Unassign(atom_var);
          continue;
        }
        bool cont = AlignFrom(var, atoms, pos, b.begin, b.begin);
        Unassign(atom_var);
        if (!cont) return false;
      }
    }
    return true;
  }

  const CompiledQuery& cq_;
  const Sentence& s_;
  const EngineOptions& opts_;
  PhaseStats* phases_;
  const std::function<bool(const std::vector<Binding>&)>* emit_ = nullptr;
  std::vector<std::vector<Binding>> domains_;
  std::vector<Binding> assign_;
  std::vector<char> assigned_;
  std::vector<char> skipped_;
};

// ---- DPLI candidate collection ---------------------------------------------

// Candidate sids of one (shard) index: every prunable atom of the compiled
// query contributes one sorted sid list, intersected smallest-first.
// `pruned` is a property of the query alone (which atoms can consult an
// index), so it is identical across shards of one corpus; when false the
// caller degrades to the full sid range. An atom whose list is empty proves
// the (shard's) answer empty, short-circuiting with an empty list.
struct CandidateResult {
  bool pruned = false;
  SidList sids;
};

CandidateResult CollectCandidates(const KokoIndex& index,
                                  const CompiledQuery& cq) {
  CandidateResult result;
  std::deque<SidList> owned;  // stable storage for per-query lists
  std::vector<SidSetView> sets;
  for (int dom : cq.DominantPathVars()) {
    PathSidLookupResult lookup =
        KokoPathSidLookup(index, cq.vars[static_cast<size_t>(dom)].abs_path);
    if (lookup.unconstrained) continue;
    result.pruned = true;
    if (lookup.sids.empty()) return result;
    owned.push_back(std::move(lookup.sids));
    sets.push_back(&owned.back());
  }
  for (const CompiledVar& v : cq.vars) {
    if (v.kind == CompiledVar::Kind::kEntity) {
      // The stored per-type projections stay block compressed; the
      // intersection below runs over them in place.
      sets.push_back(v.etype ? &index.EntityTypeSids(*v.etype)
                             : &index.AllEntitySids());
      result.pruned = true;
    } else if (v.kind == CompiledVar::Kind::kLiteral) {
      // A literal prunes to sentences containing all of its words:
      // intersect the precomputed per-word lists, smallest first.
      result.pruned = true;
      std::vector<SidSetView> word_lists;
      for (const std::string& word : v.literal) {
        const BlockList* sids = index.WordSids(word);
        if (sids == nullptr) return result;  // word absent from this index
        word_lists.push_back(sids);
      }
      owned.push_back(IntersectAllViews(std::move(word_lists)));
      if (owned.back().empty()) return result;
      sets.push_back(&owned.back());
    }
  }
  if (result.pruned) result.sids = IntersectAllViews(std::move(sets));
  return result;
}

}  // namespace

// ---- Engine ------------------------------------------------------------------

Engine::Engine(const AnnotatedCorpus* corpus, const KokoIndex* index,
               const EmbeddingModel* embeddings, const EntityRecognizer* recognizer)
    : corpus_(corpus),
      index_(index),
      embeddings_(embeddings),
      recognizer_(recognizer) {}

Engine::Engine(const AnnotatedCorpus* corpus, const ShardedKokoIndex* sharded,
               const EmbeddingModel* embeddings, const EntityRecognizer* recognizer)
    : corpus_(corpus),
      index_(nullptr),
      sharded_(sharded),
      embeddings_(embeddings),
      recognizer_(recognizer) {}

Result<QueryResult> Engine::ExecuteText(std::string_view query_text,
                                        const EngineOptions& options) const {
  auto query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Execute(*query, options);
}

Result<QueryResult> Engine::Execute(const Query& query,
                                    const EngineOptions& options) const {
  QueryResult result;
  CompiledQuery cq;
  {
    ScopedPhase phase(&result.phases, "Normalize");
    auto compiled = CompileQuery(query);
    if (!compiled.ok()) return compiled.status();
    cq = std::move(*compiled);
  }
  auto final_result = ExecuteCompiled(cq, options);
  if (!final_result.ok()) return final_result.status();
  final_result->phases.Add("Normalize", result.phases.Get("Normalize"));
  return final_result;
}

Result<QueryResult> Engine::ExecuteCompiled(const CompiledQuery& cq,
                                            const EngineOptions& options) const {
  QueryResult result;
  for (const OutputSpec& spec : cq.outputs) result.output_names.push_back(spec.var);

  // Variables whose values rows must carry: outputs + satisfying/excluding.
  std::vector<int> tracked = cq.output_vars;
  auto track = [&](const std::string& name) {
    int idx = cq.VarIndex(name);
    KOKO_CHECK(idx >= 0);
    for (int t : tracked) {
      if (t == idx) return;
    }
    tracked.push_back(idx);
  };
  for (const auto& clause : cq.satisfying) track(clause.var);
  for (const auto& cond : cq.excluding) track(cond.var);

  // One pool serves every parallel section of this query (shard-parallel
  // DPLI and the extract fan-out). A caller-provided pool (options.pool) is
  // shared as-is — concurrent queries multiplex their fork/join sections
  // onto it; otherwise a private pool is created lazily on first use so
  // serial queries never spawn threads. Sections that need fewer workers
  // than the pool holds just let the extras drain their cursor immediately.
  std::unique_ptr<ThreadPool> owned_pool;
  auto shared_pool = [&]() -> ThreadPool& {
    if (options.pool != nullptr) return *options.pool;
    if (owned_pool == nullptr) {
      owned_pool = std::make_unique<ThreadPool>(options.num_threads);
    }
    return *owned_pool;
  };
  // Parallel-section width: a caller-shared pool defines it (passing a pool
  // while leaving num_threads at its default must not silently serialize);
  // otherwise num_threads does. Sections are further clamped to the work
  // they actually have, so a wide serving pool doesn't cost idle slot
  // closures on small queries.
  const size_t parallelism = options.pool != nullptr
                                 ? std::max(options.pool->num_workers(),
                                            options.num_threads)
                                 : options.num_threads;

  // ---- DPLI: prune to candidate sentences (Algorithm 1) ----
  //
  // Columnar: every prunable atom contributes one sorted sid list — served
  // from the index's precomputed projections wherever possible — and the
  // lists are intersected smallest-first with a galloping ordered merge.
  // See the DPLI phase contract in engine.h.
  std::vector<uint32_t> candidates;
  {
    ScopedPhase phase(&result.phases, "DPLI");
    // Planner dispatch: cost-based atom ordering + per-clause representation
    // (koko/planner.h) against one (shard) index. The candidate set is
    // byte-identical to the legacy fixed-order CollectCandidates — plans
    // change cost, not results. `salt` keys the plan cache per target index
    // (the shard ordinal); shard 0's plan is surfaced in the result.
    auto collect = [&](const KokoIndex& index,
                       uint64_t salt) -> CandidateResult {
      if (!options.use_planner) return CollectCandidates(index, cq);
      std::shared_ptr<const QueryPlan> plan = GetOrBuildPlan(
          index, cq, options.planner, options.plan_cache, salt);
      PlannedCandidates planned = CollectPlannedCandidates(index, cq, *plan);
      if (salt == 0) result.plan = std::move(plan);
      CandidateResult collected;
      collected.pruned = planned.pruned;
      collected.sids = std::move(planned.sids);
      return collected;
    };
    if (!options.use_index) {
      candidates.resize(corpus_->NumSentences());
      for (uint32_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
    } else if (sharded_ == nullptr) {
      CandidateResult collected = collect(*index_, 0);
      if (collected.pruned) {
        candidates = collected.sids.TakeIds();
      } else {
        candidates.resize(corpus_->NumSentences());
        for (uint32_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
      }
    } else {
      // Shard-parallel DPLI: the K shards are split into `groups`
      // contiguous groups; each group task intersects its shards' local
      // sid lists independently on the thread pool. Because shards
      // partition the corpus by contiguous sid range, intersection
      // distributes over the partition, and concatenating per-shard
      // candidate lists in shard order reproduces the monolithic
      // candidate stream exactly — for every (num_shards, num_threads).
      const size_t k = sharded_->num_shards();
      const size_t groups = std::max<size_t>(
          1, std::min(options.num_shards == 0 ? k : options.num_shards, k));
      std::vector<std::vector<uint32_t>> group_candidates(groups);
      auto run_group = [&](size_t g) {
        std::vector<uint32_t>& out = group_candidates[g];
        for (size_t s = g * k / groups; s < (g + 1) * k / groups; ++s) {
          // Per-shard plans (salt = shard ordinal): shard statistics differ,
          // so the atom order and representations may too. Only shard 0
          // (always in group 0) writes result.plan — a single writer whose
          // store the ParallelFor join orders before the read below.
          CandidateResult collected = collect(sharded_->shard(s), s);
          if (collected.pruned) {
            std::vector<uint32_t> ids = collected.sids.TakeIds();
            out.insert(out.end(), ids.begin(), ids.end());
          } else {
            const ShardedKokoIndex::ShardRange& range = sharded_->shard_range(s);
            for (uint32_t sid = range.begin; sid < range.end; ++sid) {
              out.push_back(sid);
            }
          }
        }
      };
      const size_t dpli_workers = std::min(parallelism, groups);
      if (dpli_workers <= 1) {
        for (size_t g = 0; g < groups; ++g) run_group(g);
      } else {
        std::atomic<size_t> cursor{0};
        shared_pool().ParallelFor(dpli_workers, [&](size_t) {
          for (;;) {
            size_t g = cursor.fetch_add(1, std::memory_order_relaxed);
            if (g >= groups) return;
            run_group(g);
          }
        });
      }
      for (const std::vector<uint32_t>& part : group_candidates) {
        candidates.insert(candidates.end(), part.begin(), part.end());
      }
    }
  }
  result.candidate_sentences = candidates.size();
  result.scanned_candidates = candidates.size();

  // ---- LoadArticle: materialise candidate documents ----
  //
  // Incremental: the streaming path loads each candidate chunk's documents
  // as the scan reaches it (documents behind an early-terminated tail are
  // never deserialised); the full path loads everything up front.
  std::map<uint32_t, Document> loaded;
  auto load_docs = [&](size_t begin, size_t end) {
    ScopedPhase phase(&result.phases, "LoadArticle");
    std::set<uint32_t> doc_ids;
    for (size_t i = begin; i < end; ++i) {
      doc_ids.insert(corpus_->refs[candidates[i]].doc);
    }
    for (uint32_t doc : doc_ids) {
      if (loaded.count(doc) > 0) continue;
      loaded.emplace(doc, store_ != nullptr ? store_->LoadDocument(doc)
                                            : corpus_->docs[doc]);
    }
  };

  struct PendingRow {
    uint32_t doc;
    uint32_t sid;
    std::vector<std::string> tracked_values;
  };

  // ---- Aggregate machinery: satisfying / excluding over whole documents.
  // Hoisted above extraction so the streaming path can finalise rows
  // incrementally per chunk; the full path applies it in one final pass.
  Aggregator::Options agg_options;
  agg_options.use_descriptors = options.use_descriptors;
  Aggregator aggregator(embeddings_, recognizer_, agg_options);
  for (const auto& set : ontology_sets_) aggregator.AddOntologySet(set);

  // Score cache: (doc, clause, value) -> score. A shared cross-query
  // cache (options.score_cache) is consulted first when present; entries
  // are keyed by clause *content* salted with this engine's scoring
  // configuration (use_descriptors, ontology sets), so a hit is
  // guaranteed to equal recomputation and queries with different options
  // can share one cache. The query-local cache still fronts the shared
  // one to avoid re-locking stripes for values repeated within one query.
  std::vector<uint64_t> clause_keys;
  if (options.score_cache != nullptr) {
    uint64_t salt = Mix64(options.use_descriptors ? 1 : 2);
    for (const auto& set : ontology_sets_) {
      // Set boundaries matter: {"good","happy"} relates the two phrases,
      // {"good"} + {"happy"} does not — the flat phrase sequence alone
      // must not collide across different partitions.
      salt = HashCombine(salt, Mix64(set.size()));
      for (const std::string& phrase : set) {
        salt = HashCombine(salt, Fnv1a64(phrase));
      }
    }
    clause_keys.reserve(cq.satisfying.size());
    for (const SatisfyingClause& clause : cq.satisfying) {
      clause_keys.push_back(
          HashCombine(salt, ScoreCache::ClauseFingerprint(clause)));
    }
  }
  std::unordered_map<std::tuple<uint32_t, size_t, std::string>, double,
                     ScoreKeyHash>
      cache;
  auto score_of = [&](uint32_t doc, size_t clause_idx,
                      const std::string& value) {
    auto key = std::make_tuple(doc, clause_idx, value);
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    if (options.score_cache != nullptr) {
      if (auto hit =
              options.score_cache->Lookup(clause_keys[clause_idx], doc, value)) {
        cache.emplace(std::move(key), *hit);
        return *hit;
      }
    }
    double s = aggregator.Score(loaded.at(doc), value,
                                cq.satisfying[clause_idx]);
    if (options.score_cache != nullptr) {
      options.score_cache->Insert(clause_keys[clause_idx], doc, value, s);
    }
    cache.emplace(std::move(key), s);
    return s;
  };

  auto tracked_pos = [&](const std::string& name) {
    int idx = cq.VarIndex(name);
    for (size_t i = 0; i < tracked.size(); ++i) {
      if (tracked[i] == idx) return i;
    }
    KOKO_CHECK(false);
    return size_t{0};
  };

  // Applies the aggregate filters to one pending row; survivors append to
  // result.rows and stream to the sink immediately. Rows arrive here in
  // ascending-sid order (both paths preserve it), so sink delivery order
  // always equals result.rows order.
  auto finalize_row = [&](PendingRow& row) {
    bool keep = true;
    std::vector<double> scores;
    for (size_t ci = 0; ci < cq.satisfying.size(); ++ci) {
      const std::string& value =
          row.tracked_values[tracked_pos(cq.satisfying[ci].var)];
      double s = score_of(row.doc, ci, value);
      scores.push_back(s);
      if (s < cq.satisfying[ci].threshold) {
        keep = false;
        break;
      }
    }
    if (keep) {
      for (const SatCondition& cond : cq.excluding) {
        const std::string& value = row.tracked_values[tracked_pos(cond.var)];
        if (aggregator.Excluded(loaded.at(row.doc), value, cond)) {
          keep = false;
          break;
        }
      }
    }
    if (!keep) return;
    ResultRow out;
    out.doc = row.doc;
    out.sid = row.sid;
    out.values.assign(row.tracked_values.begin(),
                      row.tracked_values.begin() +
                          static_cast<long>(cq.output_vars.size()));
    out.scores = std::move(scores);
    result.rows.push_back(std::move(out));
    if (options.sink != nullptr) (*options.sink)(result.rows.back());
  };

  // ---- GSP + extract: per-sentence evaluation ----

  // Evaluates one candidate sentence, appending its (deduplicated) rows
  // to *out until out holds `budget` rows. Returns false when the budget
  // was hit. Safe to call concurrently with distinct `phases`/`out`.
  auto evaluate = [&](uint32_t sid, size_t budget, PhaseStats* phases,
                      std::vector<PendingRow>* out) {
    const SentenceRef& ref = corpus_->refs[sid];
    const Sentence& s = loaded.at(ref.doc).sentences[ref.sent];
    std::unordered_set<std::vector<std::string>, ValuesHash> seen;
    SentenceEvaluator evaluator(cq, s, options, phases);
    return evaluator.Run([&](const std::vector<Binding>& assignment) {
      std::vector<std::string> values;
      values.reserve(tracked.size());
      for (int var : tracked) {
        values.push_back(BindingText(s, assignment[static_cast<size_t>(var)]));
      }
      if (!seen.insert(values).second) return true;
      out->push_back({ref.doc, sid, std::move(values)});
      return out->size() < budget;
    });
  };

  // Per-worker extraction buffer: rows of the candidates one worker drew
  // (ascending draw order), merged back deterministically by candidate
  // index.
  struct WorkerOutput {
    std::vector<std::pair<size_t, std::vector<PendingRow>>> per_candidate;
    PhaseStats phases;
  };

  // Streaming execution kicks in when a sink wants rows as they appear, or
  // when a finite row budget allows the candidate scan to stop early.
  const bool streaming =
      options.sink != nullptr ||
      (options.early_terminate &&
       options.max_rows != std::numeric_limits<size_t>::max());

  if (!streaming) {
    // ---- Full pipeline: load everything, extract everything, aggregate
    // at the end. With a finite max_rows this is evaluate-then-truncate —
    // the baseline streaming is benchmarked against.
    load_docs(0, candidates.size());
    std::vector<PendingRow> pending;
    {
      ScopedPhase phase(&result.phases, "extract");
      const size_t num_workers = std::min(parallelism, candidates.size());
      if (num_workers <= 1) {
        // Sequential: rows accumulate directly into `pending`, so the budget
        // check spans sentences and stops the scan exactly at max_rows.
        for (uint32_t sid : candidates) {
          if (!evaluate(sid, options.max_rows, &result.phases, &pending)) break;
        }
      } else {
        // Parallel: workers draw candidates from an atomic cursor (ascending,
        // no stealing) and append each sentence's rows — capped at max_rows,
        // the most any sentence can contribute — to their own buffer.
        // Exactly num_workers slots — a wide serving pool doesn't enqueue
        // no-op closures for a section with little work.
        std::vector<WorkerOutput> outputs(num_workers);
        std::atomic<size_t> cursor{0};
        shared_pool().ParallelFor(num_workers, [&](size_t w) {
          WorkerOutput& out = outputs[w];
          for (;;) {
            size_t idx = cursor.fetch_add(1, std::memory_order_relaxed);
            if (idx >= candidates.size()) return;
            std::vector<PendingRow> rows;
            evaluate(candidates[idx], options.max_rows, &out.phases, &rows);
            if (!rows.empty()) out.per_candidate.push_back({idx, std::move(rows)});
          }
        });
        // Deterministic sid-ordered merge: each worker drew ascending
        // candidate indices, so its buffer is sorted; k-way merge by index
        // and re-apply the global cap where the sequential scan would stop.
        std::vector<size_t> heads(num_workers, 0);
        bool full = false;
        while (!full) {
          size_t best_w = num_workers;
          size_t best_idx = std::numeric_limits<size_t>::max();
          for (size_t w = 0; w < num_workers; ++w) {
            if (heads[w] < outputs[w].per_candidate.size() &&
                outputs[w].per_candidate[heads[w]].first < best_idx) {
              best_idx = outputs[w].per_candidate[heads[w]].first;
              best_w = w;
            }
          }
          if (best_w == num_workers) break;
          for (PendingRow& row :
               outputs[best_w].per_candidate[heads[best_w]].second) {
            pending.push_back(std::move(row));
            // Push-then-check mirrors the sequential emit exactly (a
            // max_rows of 0 still admits the first row).
            if (pending.size() >= options.max_rows) {
              full = true;
              break;
            }
          }
          ++heads[best_w];
        }
        for (const WorkerOutput& out : outputs) {
          for (const auto& [name, seconds] : out.phases.all()) {
            result.phases.Add(name, seconds);
          }
        }
      }
    }
    {
      ScopedPhase phase(&result.phases, "satisfying");
      for (PendingRow& row : pending) finalize_row(row);
    }
  } else {
    // ---- Streaming: load / extract / aggregate in candidate-ordered
    // chunks, emitting rows to the sink as each chunk finalises and
    // stopping the scan once the row budget is provably satisfied (the
    // budget counts pending rows — the stream max_rows truncates — so a
    // full budget admits no further row anywhere). Byte-identical to the
    // full pipeline for every (num_shards, num_threads, max_rows): chunks
    // partition the same ascending-sid candidate stream, per-chunk budgets
    // subtract rows already committed, and the per-chunk merge re-applies
    // the cap exactly where the sequential scan would stop. Works across
    // shard groups unchanged — DPLI already merged the groups' candidates
    // into one ascending stream, and the cut point is a property of that
    // stream alone.
    const size_t chunk_size =
        std::max<size_t>(8 * std::max<size_t>(parallelism, 1), 32);
    size_t committed = 0;  // pending rows produced by finished chunks
    size_t scanned = 0;    // candidates drawn before the budget closed
    bool full = false;
    for (size_t next = 0; next < candidates.size() && !full;) {
      const size_t chunk_end = std::min(candidates.size(), next + chunk_size);
      // Rows this chunk may still produce. A single candidate can
      // contribute at most budget_left rows to the truncated stream, so it
      // also serves as the per-candidate evaluation budget below.
      const size_t budget_left =
          options.max_rows > committed ? options.max_rows - committed : 0;
      load_docs(next, chunk_end);
      std::vector<PendingRow> chunk_pending;
      {
        ScopedPhase phase(&result.phases, "extract");
        const size_t num_workers = std::min(parallelism, chunk_end - next);
        if (num_workers <= 1) {
          for (size_t i = next; i < chunk_end; ++i) {
            scanned = i + 1;
            if (!evaluate(candidates[i], budget_left, &result.phases,
                          &chunk_pending)) {
              full = true;
              break;
            }
          }
        } else {
          std::vector<WorkerOutput> outputs(num_workers);
          std::atomic<size_t> cursor{next};
          shared_pool().ParallelFor(num_workers, [&](size_t w) {
            WorkerOutput& out = outputs[w];
            for (;;) {
              size_t idx = cursor.fetch_add(1, std::memory_order_relaxed);
              if (idx >= chunk_end) return;
              std::vector<PendingRow> rows;
              evaluate(candidates[idx], budget_left, &out.phases, &rows);
              if (!rows.empty()) {
                out.per_candidate.push_back({idx, std::move(rows)});
              }
            }
          });
          scanned = chunk_end;
          std::vector<size_t> heads(num_workers, 0);
          while (!full) {
            size_t best_w = num_workers;
            size_t best_idx = std::numeric_limits<size_t>::max();
            for (size_t w = 0; w < num_workers; ++w) {
              if (heads[w] < outputs[w].per_candidate.size() &&
                  outputs[w].per_candidate[heads[w]].first < best_idx) {
                best_idx = outputs[w].per_candidate[heads[w]].first;
                best_w = w;
              }
            }
            if (best_w == num_workers) break;
            for (PendingRow& row :
                 outputs[best_w].per_candidate[heads[best_w]].second) {
              chunk_pending.push_back(std::move(row));
              if (chunk_pending.size() >= budget_left) {
                full = true;
                // Report the sequential scan's stop point, not the chunk's
                // speculative tail, so the count is thread-count-invariant.
                scanned = std::min(scanned, best_idx + 1);
                break;
              }
            }
            ++heads[best_w];
          }
          for (const WorkerOutput& out : outputs) {
            for (const auto& [name, seconds] : out.phases.all()) {
              result.phases.Add(name, seconds);
            }
          }
        }
      }
      {
        ScopedPhase phase(&result.phases, "satisfying");
        for (PendingRow& row : chunk_pending) finalize_row(row);
      }
      committed += chunk_pending.size();
      if (committed >= options.max_rows) full = true;
      next = chunk_end;
    }
    result.scanned_candidates = scanned;
    result.early_terminated = scanned < candidates.size();
  }
  return result;
}

}  // namespace koko

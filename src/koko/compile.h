#ifndef KOKO_KOKO_COMPILE_H_
#define KOKO_KOKO_COMPILE_H_

#include <string>
#include <vector>

#include "koko/ast.h"
#include "util/status.h"

namespace koko {

/// A variable after normalisation (§4.1). Node variables carry an absolute
/// path; span-term atoms (paths, literals, elastic spans) have been lifted
/// into variables of their own so every atom of a horizontal condition is a
/// variable, as in Example 4.1's v1/v2.
struct CompiledVar {
  enum class Kind { kNode, kEntity, kSpan, kElastic, kLiteral, kSubtree };
  std::string name;
  Kind kind = Kind::kNode;

  // kNode:
  PathQuery abs_path;
  /// Index of the node variable whose path dominates this one (§4.2.1);
  /// self-index when this variable's path is itself dominant.
  int dominant = -1;

  // kEntity:
  std::optional<EntityType> etype;

  // kSpan: indices of the atom variables, in order.
  std::vector<int> atoms;

  // kElastic:
  ElasticSpec elastic;

  // kLiteral:
  std::vector<std::string> literal;

  // kSubtree: index of the base node variable.
  int base = -1;
};

/// A constraint with variable names resolved to indices.
struct CompiledConstraint {
  Constraint::Kind kind = Constraint::Kind::kIn;
  int a = -1;
  int b = -1;
};

/// \brief A normalised, executable query (output of §4.1's Normalize step).
struct CompiledQuery {
  std::vector<OutputSpec> outputs;
  std::vector<int> output_vars;  // var index per output column
  std::vector<CompiledVar> vars;
  std::vector<CompiledConstraint> constraints;
  /// Indices of span variables — each is one horizontal condition (§4.3).
  std::vector<int> horizontal;
  std::vector<SatisfyingClause> satisfying;
  std::vector<SatCondition> excluding;

  int VarIndex(const std::string& name) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

  /// Node variables whose paths are dominant (deduplicated), §4.2.1.
  std::vector<int> DominantPathVars() const;
};

/// Normalises a parsed query: resolves variable references, expands
/// relative paths to absolute form, derives parentOf/ancestorOf/leftOf
/// constraints (Example 4.1), lifts span atoms into variables, materialises
/// implicitly-defined output variables (typed entities), and computes path
/// dominance.
Result<CompiledQuery> CompileQuery(const Query& query);

}  // namespace koko

#endif  // KOKO_KOKO_COMPILE_H_

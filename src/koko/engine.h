#ifndef KOKO_KOKO_ENGINE_H_
#define KOKO_KOKO_ENGINE_H_

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "embed/embedding.h"
#include "index/koko_index.h"
#include "index/sharded_index.h"
#include "koko/aggregate.h"
#include "koko/ast.h"
#include "koko/compile.h"
#include "koko/planner.h"
#include "koko/score_cache.h"
#include "ner/entity_recognizer.h"
#include "storage/doc_store.h"
#include "text/document.h"
#include "util/timer.h"

namespace koko {

class ThreadPool;

/// One result tuple. `values` holds one string per output column;
/// `scores` holds the aggregated evidence score per satisfying clause
/// (empty when the query has none).
struct ResultRow {
  uint32_t doc = 0;
  uint32_t sid = 0;
  std::vector<std::string> values;
  std::vector<double> scores;
};

/// Streaming row consumer (EngineOptions::sink): invoked once per final
/// result row, in row order, as soon as the row survives the aggregate
/// filters — before later candidates are evaluated. The rows delivered are
/// exactly `QueryResult::rows` (same rows, same order); the sink runs on
/// the calling thread, so it needs no synchronisation of its own.
using RowSink = std::function<void(const ResultRow&)>;

struct QueryResult {
  std::vector<std::string> output_names;
  std::vector<ResultRow> rows;
  /// Wall time per phase: Normalize, DPLI, LoadArticle, GSP, extract,
  /// satisfying — the Table 2 breakdown.
  PhaseStats phases;
  size_t candidate_sentences = 0;
  /// Candidates the extract scan drew before the row budget provably
  /// closed (the sequential stop point — thread-count-invariant; parallel
  /// chunks may speculatively evaluate a few more). Equals
  /// `candidate_sentences` unless streaming top-k stopped early, in which
  /// case `early_terminated` is set and the tail candidates were never
  /// loaded or evaluated (DPLI still counted them — the candidate set is a
  /// pruning property, identical with or without early termination).
  size_t scanned_candidates = 0;
  bool early_terminated = false;
  /// The query plan executed (planner-enabled runs against an index;
  /// shard 0's plan when sharded). Null when the planner was off or the
  /// query bypassed the index. See koko/explain.h's ExplainPlan.
  std::shared_ptr<const QueryPlan> plan;
};

struct EngineOptions {
  /// Generate skip plans (§4.3). When false the evaluator runs the naive
  /// nested-loop strategy over every variable including elastic spans —
  /// the KOKO&NOGSP baseline of Table 1.
  bool use_gsp = true;
  /// Use the multi-index for sentence pruning. When false every sentence
  /// is considered (reference evaluator for correctness tests).
  bool use_index = true;
  /// Expand descriptors (§4.4.1(a)). When false descriptor conditions
  /// score zero — the Figure 5 ablation.
  bool use_descriptors = true;
  /// Safety valve for adversarial queries.
  size_t max_rows = std::numeric_limits<size_t>::max();
  /// Workers for the per-sentence extract phase. 1 (the default) runs the
  /// sequential evaluator unchanged; N > 1 fans candidate sentences out to
  /// a fixed thread pool. Results are **byte-identical** for every N: each
  /// worker appends rows for the sentences it drew (in draw order) into its
  /// own buffer, buffers are merged back in ascending-sid order, and
  /// `max_rows` truncation is applied to the merged stream exactly where
  /// the sequential evaluator would have stopped.
  size_t num_threads = 1;
  /// Shard-group fan-out of the DPLI phase when the engine is constructed
  /// over a ShardedKokoIndex: the index's K shards are split into this many
  /// contiguous groups, and each group intersects its shards' local
  /// SidLists as one task on the thread pool (DPLI workers =
  /// min(num_threads, groups)). 0 (the default) runs one group per shard.
  /// Ignored with a monolithic index. Results are **byte-identical** for
  /// every (num_shards, num_threads) combination: per-shard candidate
  /// lists concatenate in shard order, which *is* ascending global sid
  /// order, so the downstream phases see exactly the monolithic stream.
  size_t num_shards = 0;
  /// Shared thread pool for this query's parallel sections (borrowed; must
  /// outlive the call). When null — the default — the engine lazily creates
  /// a private `num_threads`-worker pool per query, which reproduces the
  /// one-pool-per-query fork/join behaviour. A non-null pool may be shared
  /// by **many concurrent queries**: each parallel section is a
  /// `ThreadPool::ParallelFor` fork/join whose slots interleave with other
  /// queries' slots on the shared workers (the calling thread participates,
  /// so a section always completes even on a saturated pool). Slot ids are
  /// task indices, not thread identities, so results stay byte-identical to
  /// serial execution regardless of pool size or contention. Passing a
  /// pool is sufficient to parallelize: the section width becomes
  /// max(pool->num_workers(), num_threads), so the num_threads default of
  /// 1 does not silently serialize a pooled query. This is how
  /// QueryService (serve/query_service.h) multiplexes admitted queries onto
  /// one pool instead of spawning per-query thread sets.
  ThreadPool* pool = nullptr;
  /// Cross-query (doc, clause, value) score cache for the aggregate phase
  /// (borrowed, thread-safe; must outlive the call). When null — the
  /// default — the engine uses a query-local cache, rebuilding warm state
  /// per query. A shared cache persists aggregate scores across queries;
  /// scores are deterministic, so hits are byte-identical to recomputation.
  /// The engine keys entries by clause content *and* its scoring
  /// configuration (use_descriptors, ontology sets), so one cache may serve
  /// heterogeneous option sets against one corpus. Never share a cache
  /// across different corpora.
  ScoreCache* score_cache = nullptr;
  /// Cost-based clause planning for the DPLI phase (koko/planner.h): order
  /// clause intersections by estimated selectivity, pick the per-clause-pair
  /// representation (in-place block intersect vs decode-then-gallop) from
  /// the measured skew crossover, and decide sid-semi-join vs quintuple
  /// fallback per cross-index path. Candidate sets are **byte-identical**
  /// with the planner on or off — plans change cost, never results — so
  /// this defaults on; `false` forces the legacy fixed-order pipeline (the
  /// parity baseline).
  bool use_planner = true;
  /// Cost-model thresholds (calibrated by bench_micro's skew sweep).
  PlannerOptions planner;
  /// Cross-query compiled-plan cache keyed by clause fingerprint (borrowed,
  /// thread-safe; must outlive the call). Null — the default — rebuilds the
  /// (cheap, statistics-only) plan per query. QueryService owns one and
  /// threads it through here. Never share across corpora; Clear() on index
  /// rebuild.
  PlanCache* plan_cache = nullptr;
  /// Streaming sink: when non-null, every final row is delivered to it as
  /// extraction produces it (ascending-sid order preserved), before later
  /// candidates are evaluated — a consumer needing only the first rows can
  /// act before the query finishes. `QueryResult::rows` is still returned
  /// in full. Borrowed; invoked on the calling thread.
  const RowSink* sink = nullptr;
  /// Streaming top-k early termination: with a finite `max_rows`, stop
  /// drawing candidates once the row budget is provably satisfied — the
  /// tail candidates are never loaded or evaluated. Rows are byte-identical
  /// to the full run for every (num_shards, num_threads, max_rows): the
  /// budget cuts the same ascending-sid row stream at the same point; only
  /// `scanned_candidates`/`early_terminated` reveal the saving. `false`
  /// restores full evaluation followed by truncation (the bench baseline).
  bool early_terminate = true;
};

/// \brief The KOKO query evaluation engine (Figure 2).
///
/// Executes a query in four phases: Normalize (CompileQuery), Decompose
/// Paths & Lookup Indices (Algorithm 1), Generate Skip Plan + extract
/// (Algorithm 2 per relevant sentence), and Aggregate (satisfying /
/// excluding clauses over whole documents).
///
/// **DPLI phase contract.** Candidate pruning is columnar: every prunable
/// atom of the compiled query — each dominant node-variable path, each
/// entity variable, each literal — contributes one sorted, deduplicated
/// sentence-id set, served from the index's precomputed per-word /
/// per-entity-type / per-trie-node projections where possible
/// (`KokoPathSidLookup`, `KokoIndex::WordSids`, `KokoIndex::EntityTypeSids`).
/// Stored projections stay block compressed (`BlockList`) and per-query
/// lists are decoded (`SidList`); the mix is intersected smallest-first
/// with a galloping ordered merge that runs directly over the compressed
/// blocks (`IntersectAllViews`) — the result is the candidate set in ascending
/// sid order. The candidate set is *complete* (a superset of all answer
/// sentences — pruning never loses answers) but may be unsound (§4.2.2);
/// the extract phase re-validates every candidate. An unconstrained query
/// (no prunable atom, or `use_index = false`) degrades to all sentences.
/// An atom whose list is empty proves the answer empty and short-circuits
/// the query.
class Engine {
 public:
  /// All pointers are borrowed and must outlive the engine.
  Engine(const AnnotatedCorpus* corpus, const KokoIndex* index,
         const EmbeddingModel* embeddings, const EntityRecognizer* recognizer);

  /// Sharded variant: DPLI runs per shard (fanned out per
  /// EngineOptions::num_shards / num_threads) and candidates merge in
  /// ascending-sid order, so every query returns byte-identical results to
  /// the monolithic engine over the same corpus.
  Engine(const AnnotatedCorpus* corpus, const ShardedKokoIndex* sharded,
         const EmbeddingModel* embeddings, const EntityRecognizer* recognizer);

  /// Optional: serve LoadArticle from a serialized document store (paying
  /// per-article deserialisation, as the paper's DBMS-backed engine does).
  void set_document_store(const DocumentStore* store) { store_ = store; }

  /// Registers a domain ontology set used by descriptor expansion.
  void AddOntologySet(const std::vector<std::string>& related) {
    ontology_sets_.push_back(related);
  }

  /// Parses, compiles and executes KOKO query text.
  Result<QueryResult> ExecuteText(std::string_view query_text,
                                  const EngineOptions& options) const;
  Result<QueryResult> ExecuteText(std::string_view query_text) const {
    return ExecuteText(query_text, EngineOptions());
  }

  Result<QueryResult> Execute(const Query& query, const EngineOptions& options) const;
  Result<QueryResult> ExecuteCompiled(const CompiledQuery& query,
                                      const EngineOptions& options) const;

 private:
  const AnnotatedCorpus* corpus_;
  const KokoIndex* index_;
  const ShardedKokoIndex* sharded_ = nullptr;
  const EmbeddingModel* embeddings_;
  const EntityRecognizer* recognizer_;
  const DocumentStore* store_ = nullptr;
  std::vector<std::vector<std::string>> ontology_sets_;
};

}  // namespace koko

#endif  // KOKO_KOKO_ENGINE_H_

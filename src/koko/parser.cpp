#include "koko/parser.h"

#include <set>

#include "koko/lexer.h"
#include "text/tokenizer.h"
#include "util/string_util.h"

namespace koko {

namespace {

class QueryParser {
 public:
  explicit QueryParser(std::vector<QToken> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    KOKO_RETURN_IF_ERROR(ExpectKeyword("extract"));
    KOKO_RETURN_IF_ERROR(ParseOutputs(&q));
    KOKO_RETURN_IF_ERROR(ExpectKeyword("from"));
    KOKO_RETURN_IF_ERROR(ParseSource(&q));
    KOKO_RETURN_IF_ERROR(ExpectKeyword("if"));
    KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLParen));
    KOKO_RETURN_IF_ERROR(ParseBody(&q));
    KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
    while (IsKeyword("satisfying")) {
      KOKO_RETURN_IF_ERROR(ParseSatisfying(&q));
    }
    if (IsKeyword("excluding")) {
      Advance();
      KOKO_RETURN_IF_ERROR(ParseConditionDisjunction(&q.excluding, ""));
    }
    if (Peek().kind != QTokenKind::kEnd) {
      return Err("trailing input after query");
    }
    return q;
  }

 private:
  const QToken& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const QToken& Advance() { return tokens_[pos_++]; }
  bool IsKeyword(std::string_view kw) const {
    return Peek().kind == QTokenKind::kIdent && EqualsIgnoreCase(Peek().text, kw);
  }
  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " + std::to_string(Peek().offset) +
                              ")");
  }
  Status Expect(QTokenKind kind) {
    if (Peek().kind != kind) return Err("unexpected token '" + Peek().text + "'");
    Advance();
    return Status::OK();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!IsKeyword(kw)) {
      return Err("expected '" + std::string(kw) + "', got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Status ParseOutputs(Query* q) {
    while (true) {
      if (Peek().kind != QTokenKind::kIdent) return Err("expected output variable");
      OutputSpec spec;
      spec.var = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kColon));
      if (Peek().kind != QTokenKind::kIdent) return Err("expected output type");
      spec.type_name = Advance().text;
      // Output variables are implicitly defined (typed entity variables or
      // block-defined spans); register the name so span terms can refer to
      // them (e.g. the Title query's `c = a + ^ + v + ^ + b`).
      defined_.insert(spec.var);
      q->outputs.push_back(std::move(spec));
      if (Peek().kind != QTokenKind::kComma) break;
      Advance();
    }
    // The paper allows an empty extract clause: `extract x:Entity ... if ()`
    // has outputs; a fully empty list is also tolerated upstream.
    return Status::OK();
  }

  Status ParseSource(Query* q) {
    if (Peek().kind == QTokenKind::kString) {
      q->source = Advance().text;
      return Status::OK();
    }
    // Unquoted form: input.txt / wiki.article
    if (Peek().kind != QTokenKind::kIdent) return Err("expected source");
    q->source = Advance().text;
    while (Peek().kind == QTokenKind::kDot) {
      Advance();
      if (Peek().kind != QTokenKind::kIdent) return Err("bad source suffix");
      q->source += "." + Advance().text;
    }
    return Status::OK();
  }

  Status ParseBody(Query* q) {
    // Optional block: /ROOT:{ ... }
    if (Peek().kind == QTokenKind::kSlash && Peek(1).kind == QTokenKind::kIdent &&
        EqualsIgnoreCase(Peek(1).text, "root") &&
        Peek(2).kind == QTokenKind::kColon) {
      Advance();
      Advance();
      Advance();
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLBrace));
      while (Peek().kind != QTokenKind::kRBrace) {
        KOKO_RETURN_IF_ERROR(ParseVarDef(q));
        if (Peek().kind == QTokenKind::kComma) {
          Advance();
        } else {
          break;
        }
      }
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRBrace));
    }
    // Constraints: (a) in (b)  /  (a) eq (b)
    while (Peek().kind == QTokenKind::kLParen) {
      Advance();
      if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
      Constraint c;
      c.a = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
      if (IsKeyword("in")) {
        c.kind = Constraint::Kind::kIn;
      } else if (IsKeyword("eq")) {
        c.kind = Constraint::Kind::kEq;
      } else {
        return Err("expected 'in' or 'eq'");
      }
      Advance();
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLParen));
      if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
      c.b = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
      q->constraints.push_back(std::move(c));
    }
    return Status::OK();
  }

  Status ParseVarDef(Query* q) {
    if (Peek().kind != QTokenKind::kIdent) return Err("expected variable name");
    VarDef def;
    def.name = Advance().text;
    KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kEquals));

    // Optional parenthesised right-hand side: d = (b.subtree)
    bool parenthesised = false;
    if (Peek().kind == QTokenKind::kLParen) {
      parenthesised = true;
      Advance();
    }

    std::vector<SpanAtom> atoms;
    while (true) {
      SpanAtom atom;
      KOKO_RETURN_IF_ERROR(ParseAtom(&atom));
      atoms.push_back(std::move(atom));
      if (Peek().kind != QTokenKind::kPlus) break;
      Advance();
    }
    if (parenthesised) KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));

    if (atoms.size() == 1 && atoms[0].kind == SpanAtom::Kind::kPath) {
      // Single path: a node definition (possibly var-relative).
      def.kind = VarDef::Kind::kNode;
      def.path = std::move(atoms[0].path);
      def.base_var = std::move(atoms[0].var);  // set by ParseAtom for rel paths
    } else {
      def.kind = VarDef::Kind::kSpan;
      def.atoms = std::move(atoms);
    }
    defined_.insert(def.name);
    // Entity definitions masquerade as paths; fix up here.
    if (def.kind == VarDef::Kind::kNode && def.path.steps.size() == 1 &&
        def.base_var.empty()) {
      const NodeConstraint& c = def.path.steps[0].constraint;
      if (c.any_entity && !c.dep && !c.pos && !c.word) {
        def.kind = VarDef::Kind::kEntity;
        def.etype.reset();
        def.path.steps.clear();
      } else if (c.etype && !c.dep && !c.pos && !c.word && bare_entity_step_) {
        def.kind = VarDef::Kind::kEntity;
        def.etype = c.etype;
        def.path.steps.clear();
      }
    }
    bare_entity_step_ = false;
    q->defs.push_back(std::move(def));
    return Status::OK();
  }

  // Parses one span atom: path / var ref / var.subtree / literal / elastic.
  Status ParseAtom(SpanAtom* atom) {
    const QToken& t = Peek();
    if (t.kind == QTokenKind::kCaret) {
      Advance();
      atom->kind = SpanAtom::Kind::kElastic;
      if (Peek().kind == QTokenKind::kLBracket) {
        KOKO_RETURN_IF_ERROR(ParseElasticConditions(&atom->elastic));
      }
      return Status::OK();
    }
    if (t.kind == QTokenKind::kString) {
      // Literal token sequence ("delicious", ", a cafe"). Inside a path it
      // would be consumed by ParsePath; here it stands alone.
      atom->kind = SpanAtom::Kind::kLiteral;
      atom->tokens = Tokenizer::Tokenize(Advance().text);
      return Status::OK();
    }
    if (t.kind == QTokenKind::kSlash || t.kind == QTokenKind::kSlashSlash) {
      atom->kind = SpanAtom::Kind::kPath;
      return ParsePath(&atom->path);
    }
    if (t.kind == QTokenKind::kIdent) {
      // Var reference, var-relative path, var.subtree, Entity, or bare label.
      std::string name = Advance().text;
      if (Peek().kind == QTokenKind::kDot && Peek(1).kind == QTokenKind::kIdent &&
          EqualsIgnoreCase(Peek(1).text, "subtree")) {
        Advance();
        Advance();
        atom->kind = SpanAtom::Kind::kSubtree;
        atom->var = std::move(name);
        return Status::OK();
      }
      if ((Peek().kind == QTokenKind::kSlash ||
           Peek().kind == QTokenKind::kSlashSlash) &&
          defined_.count(name) > 0) {
        // Relative path: b = a/dobj.
        atom->kind = SpanAtom::Kind::kPath;
        atom->var = std::move(name);
        return ParsePath(&atom->path);
      }
      if (defined_.count(name) > 0) {
        atom->kind = SpanAtom::Kind::kVarRef;
        atom->var = std::move(name);
        return Status::OK();
      }
      // Bare label: Entity / entity type / parse label / POS tag / word.
      atom->kind = SpanAtom::Kind::kPath;
      PathStep step;
      step.axis = PathStep::Axis::kChild;
      KOKO_RETURN_IF_ERROR(ResolveLabel(name, &step.constraint));
      if (Peek().kind == QTokenKind::kLBracket) {
        KOKO_RETURN_IF_ERROR(ParseStepConditions(&step.constraint));
      }
      bare_entity_step_ = step.constraint.any_entity ||
                          step.constraint.etype.has_value();
      atom->path.steps.push_back(std::move(step));
      return Status::OK();
    }
    return Err("expected span atom, got '" + t.text + "'");
  }

  // Parses /label[...]/..//... (leading axis already peeked).
  Status ParsePath(PathQuery* path) {
    while (Peek().kind == QTokenKind::kSlash ||
           Peek().kind == QTokenKind::kSlashSlash) {
      PathStep step;
      step.axis = Advance().kind == QTokenKind::kSlash
                      ? PathStep::Axis::kChild
                      : PathStep::Axis::kDescendant;
      const QToken& label = Peek();
      if (label.kind == QTokenKind::kStar) {
        Advance();  // wildcard: no constraint
      } else if (label.kind == QTokenKind::kString) {
        step.constraint.word = Advance().text;
      } else if (label.kind == QTokenKind::kIdent) {
        KOKO_RETURN_IF_ERROR(ResolveLabel(Advance().text, &step.constraint));
      } else {
        return Err("expected label after axis");
      }
      if (Peek().kind == QTokenKind::kLBracket) {
        KOKO_RETURN_IF_ERROR(ParseStepConditions(&step.constraint));
      }
      path->steps.push_back(std::move(step));
    }
    if (path->steps.empty()) return Err("empty path expression");
    return Status::OK();
  }

  // label resolution order: parse label, POS tag, entity type, else word.
  Status ResolveLabel(const std::string& name, NodeConstraint* c) {
    if (EqualsIgnoreCase(name, "entity")) {
      c->any_entity = true;
      return Status::OK();
    }
    DepLabel dep;
    if (ParseDepLabel(name, &dep)) {
      c->dep = dep;
      return Status::OK();
    }
    PosTag pos;
    if (ParsePosTag(name, &pos)) {
      c->pos = pos;
      return Status::OK();
    }
    EntityType etype;
    if (ParseEntityType(name, &etype)) {
      c->etype = etype;
      return Status::OK();
    }
    c->word = name;
    return Status::OK();
  }

  // [@pos="noun", etype="Person", text="ate", @regex="..."]
  Status ParseStepConditions(NodeConstraint* c) {
    KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLBracket));
    while (Peek().kind != QTokenKind::kRBracket) {
      bool at = false;
      if (Peek().kind == QTokenKind::kAt) {
        at = true;
        Advance();
      }
      if (Peek().kind != QTokenKind::kIdent) return Err("expected condition name");
      std::string key = ToLower(Advance().text);
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kEquals));
      if (Peek().kind != QTokenKind::kString) return Err("expected string value");
      std::string value = Advance().text;
      if (key == "pos") {
        PosTag pos;
        if (!ParsePosTag(value, &pos)) return Err("unknown POS tag " + value);
        c->pos = pos;
      } else if (key == "regex") {
        c->regex = value;
      } else if (key == "text") {
        c->word = value;
      } else if (key == "etype") {
        if (EqualsIgnoreCase(value, "entity")) {
          c->any_entity = true;
        } else {
          EntityType etype;
          if (!ParseEntityType(value, &etype)) {
            return Err("unknown entity type " + value);
          }
          c->etype = etype;
        }
      } else {
        return Err("unknown condition '" + key + "'" + (at ? " (after @)" : ""));
      }
      if (Peek().kind == QTokenKind::kComma) Advance();
    }
    return Expect(QTokenKind::kRBracket);
  }

  // ^[etype="Entity", regex="...", min="2", max="5"]
  Status ParseElasticConditions(ElasticSpec* spec) {
    KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLBracket));
    while (Peek().kind != QTokenKind::kRBracket) {
      if (Peek().kind == QTokenKind::kAt) Advance();
      if (Peek().kind != QTokenKind::kIdent) return Err("expected condition name");
      std::string key = ToLower(Advance().text);
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kEquals));
      if (key == "min" || key == "max") {
        double value;
        if (Peek().kind == QTokenKind::kNumber) {
          value = Advance().number;
        } else if (Peek().kind == QTokenKind::kString) {
          value = std::stod(Advance().text);
        } else {
          return Err("expected number");
        }
        if (key == "min") {
          spec->min_tokens = static_cast<int>(value);
        } else {
          spec->max_tokens = static_cast<int>(value);
        }
        if (Peek().kind == QTokenKind::kComma) Advance();
        continue;
      }
      if (Peek().kind != QTokenKind::kString) return Err("expected string value");
      std::string value = Advance().text;
      if (key == "regex") {
        spec->regex = value;
      } else if (key == "etype") {
        if (EqualsIgnoreCase(value, "entity")) {
          spec->any_entity = true;
        } else {
          EntityType etype;
          if (!ParseEntityType(value, &etype)) {
            return Err("unknown entity type " + value);
          }
          spec->etype = etype;
        }
      } else {
        return Err("unknown elastic condition '" + key + "'");
      }
      if (Peek().kind == QTokenKind::kComma) Advance();
    }
    return Expect(QTokenKind::kRBracket);
  }

  Status ParseSatisfying(Query* q) {
    KOKO_RETURN_IF_ERROR(ExpectKeyword("satisfying"));
    SatisfyingClause clause;
    if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
    clause.var = Advance().text;
    KOKO_RETURN_IF_ERROR(ParseConditionDisjunction(&clause.conditions, clause.var));
    KOKO_RETURN_IF_ERROR(ExpectKeyword("with"));
    KOKO_RETURN_IF_ERROR(ExpectKeyword("threshold"));
    if (Peek().kind != QTokenKind::kNumber) return Err("expected threshold value");
    clause.threshold = Advance().number;
    q->satisfying.push_back(std::move(clause));
    return Status::OK();
  }

  Status ParseConditionDisjunction(std::vector<SatCondition>* out,
                                   const std::string& default_var) {
    while (true) {
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLParen));
      SatCondition cond;
      KOKO_RETURN_IF_ERROR(ParseCondition(&cond, default_var));
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
      out->push_back(std::move(cond));
      if (!IsKeyword("or")) break;
      Advance();
    }
    return Status::OK();
  }

  Status ParseCondition(SatCondition* cond, const std::string& default_var) {
    cond->var = default_var;
    // str(x) <op> "..."
    if (IsKeyword("str") && Peek(1).kind == QTokenKind::kLParen) {
      Advance();
      Advance();
      if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
      cond->var = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
      if (IsKeyword("contains")) {
        cond->kind = SatCondition::Kind::kStrContains;
      } else if (IsKeyword("mentions")) {
        cond->kind = SatCondition::Kind::kStrMentions;
      } else if (IsKeyword("matches")) {
        cond->kind = SatCondition::Kind::kStrMatches;
      } else if (IsKeyword("in")) {
        Advance();
        KOKO_RETURN_IF_ERROR(ExpectKeyword("dict"));
        KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kLParen));
        if (Peek().kind != QTokenKind::kString) return Err("expected dict name");
        cond->kind = SatCondition::Kind::kInDict;
        cond->text = Advance().text;
        KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRParen));
        return ParseWeight(cond);
      } else {
        return Err("expected contains/mentions/matches/in");
      }
      Advance();
      if (Peek().kind != QTokenKind::kString) return Err("expected string");
      cond->text = Advance().text;
      return ParseWeight(cond);
    }
    // [[descriptor]] x
    if (Peek().kind == QTokenKind::kLLBracket) {
      Advance();
      if (Peek().kind != QTokenKind::kString) return Err("expected descriptor");
      cond->kind = SatCondition::Kind::kDescriptorLeft;
      cond->text = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRRBracket));
      if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
      cond->var = Advance().text;
      return ParseWeight(cond);
    }
    // "..." x   (preceded-by)
    if (Peek().kind == QTokenKind::kString) {
      cond->kind = SatCondition::Kind::kPrecededBy;
      cond->text = Advance().text;
      if (Peek().kind != QTokenKind::kIdent) return Err("expected variable");
      cond->var = Advance().text;
      return ParseWeight(cond);
    }
    // x <something>
    if (Peek().kind != QTokenKind::kIdent) return Err("expected condition");
    cond->var = Advance().text;
    if (Peek().kind == QTokenKind::kString) {
      cond->kind = SatCondition::Kind::kFollowedBy;
      cond->text = Advance().text;
      return ParseWeight(cond);
    }
    if (Peek().kind == QTokenKind::kLLBracket) {
      Advance();
      if (Peek().kind != QTokenKind::kString) return Err("expected descriptor");
      cond->kind = SatCondition::Kind::kDescriptorRight;
      cond->text = Advance().text;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRRBracket));
      return ParseWeight(cond);
    }
    if (IsKeyword("near")) {
      Advance();
      if (Peek().kind != QTokenKind::kString) return Err("expected string");
      cond->kind = SatCondition::Kind::kNear;
      cond->text = Advance().text;
      return ParseWeight(cond);
    }
    if (IsKeyword("similarto") || Peek().kind == QTokenKind::kTilde) {
      Advance();
      if (Peek().kind != QTokenKind::kString) return Err("expected string");
      cond->kind = SatCondition::Kind::kSimilarTo;
      cond->text = Advance().text;
      return ParseWeight(cond);
    }
    return Err("unrecognised condition");
  }

  Status ParseWeight(SatCondition* cond) {
    if (Peek().kind == QTokenKind::kLBrace) {
      Advance();
      if (Peek().kind != QTokenKind::kNumber) return Err("expected weight");
      cond->weight = Advance().number;
      KOKO_RETURN_IF_ERROR(Expect(QTokenKind::kRBrace));
    }
    return Status::OK();
  }

  std::vector<QToken> tokens_;
  size_t pos_ = 0;
  std::set<std::string> defined_;
  bool bare_entity_step_ = false;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  auto tokens = LexQuery(text);
  if (!tokens.ok()) return tokens.status();
  QueryParser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace koko

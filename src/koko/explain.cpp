#include "koko/explain.h"

#include "util/string_util.h"

namespace koko {

std::string SatConditionToString(const SatCondition& cond) {
  switch (cond.kind) {
    case SatCondition::Kind::kStrContains:
      return "str(" + cond.var + ") contains \"" + cond.text + "\"";
    case SatCondition::Kind::kStrMentions:
      return "str(" + cond.var + ") mentions \"" + cond.text + "\"";
    case SatCondition::Kind::kStrMatches:
      return "str(" + cond.var + ") matches \"" + cond.text + "\"";
    case SatCondition::Kind::kFollowedBy:
      return cond.var + " \"" + cond.text + "\"";
    case SatCondition::Kind::kPrecededBy:
      return "\"" + cond.text + "\" " + cond.var;
    case SatCondition::Kind::kNear:
      return cond.var + " near \"" + cond.text + "\"";
    case SatCondition::Kind::kDescriptorRight:
      return cond.var + " [[\"" + cond.text + "\"]]";
    case SatCondition::Kind::kDescriptorLeft:
      return "[[\"" + cond.text + "\"]] " + cond.var;
    case SatCondition::Kind::kSimilarTo:
      return cond.var + " SimilarTo \"" + cond.text + "\"";
    case SatCondition::Kind::kInDict:
      return "str(" + cond.var + ") in dict(\"" + cond.text + "\")";
  }
  return "?";
}

std::string ClauseExplanation::ToString() const {
  std::string out = "satisfying " + var + " for value \"" + value + "\": score " +
                    FormatDouble(score, 3) + (passed ? " >= " : " < ") +
                    FormatDouble(threshold, 3) + " -> " +
                    (passed ? "PASS" : "FAIL") + "\n";
  for (const ConditionExplanation& c : conditions) {
    out += "  " + FormatDouble(c.contribution, 3) + " = " +
           FormatDouble(c.condition.weight, 2) + " * " +
           FormatDouble(c.confidence, 3) + "  (" +
           SatConditionToString(c.condition) + ")\n";
  }
  return out;
}

std::string ExplainPlan(const QueryPlan& plan) {
  if (!plan.pruned) {
    return "plan: unpruned (no prunable clause; full sentence scan)\n";
  }
  std::string out = "plan: " + std::to_string(plan.atoms.size()) +
                    " clause(s), ascending estimated selectivity over " +
                    std::to_string(plan.index_sentences) + " sentences\n";
  for (size_t i = 0; i < plan.atoms.size(); ++i) {
    const PlannedAtom& atom = plan.atoms[i];
    out += "  " + std::to_string(i + 1) + ". " + atom.label + "  est=" +
           std::to_string(atom.estimate) + (atom.exact ? "" : " (upper bound)");
    if (atom.block_backed) {
      out += std::string("  rep=") + (atom.rep == IntersectRep::kBlockInPlace
                                          ? "in-place"
                                          : "decode+gallop");
      out += "  blocks=" + std::to_string(atom.stats.blocks) +
             " avg-gap=" + FormatDouble(atom.stats.avg_gap, 1);
    }
    if (atom.kind == PlannedAtom::Kind::kPath && atom.cross_index) {
      out += atom.use_semi_join ? "  cross-index: semi-join"
                                : "  cross-index: quintuple fallback";
    }
    out += "\n";
  }
  out += "  fingerprint=" + std::to_string(plan.fingerprint) +
         "  thresholds: decode+gallop ratio in [" +
         std::to_string(plan.options.decode_gallop_min_ratio) + ", " +
         std::to_string(plan.options.decode_gallop_max_ratio) +
         "), semi-join <= " +
         FormatDouble(plan.options.semi_join_max_fraction, 2) + " of corpus\n";
  return out;
}

std::string ExplainExecution(const QueryResult& result) {
  std::string out =
      result.plan != nullptr ? ExplainPlan(*result.plan) : "plan: none\n";
  out += "execution: " + std::to_string(result.candidate_sentences) +
         " candidate(s) after DPLI, " +
         std::to_string(result.scanned_candidates) + " scanned";
  if (result.early_terminated) {
    out += " -> early termination after candidate " +
           std::to_string(result.scanned_candidates) + " (" +
           std::to_string(result.candidate_sentences -
                          result.scanned_candidates) +
           " never evaluated)";
  }
  out += ", " + std::to_string(result.rows.size()) + " row(s)\n";
  return out;
}

Explainer::Explainer(const EmbeddingModel* model,
                     const EntityRecognizer* recognizer, bool use_descriptors)
    : aggregator_(model, recognizer,
                  Aggregator::Options{.use_descriptors = use_descriptors}) {}

ClauseExplanation Explainer::Explain(const Document& doc,
                                     const std::string& value,
                                     const SatisfyingClause& clause) const {
  ClauseExplanation out;
  out.var = clause.var;
  out.value = value;
  out.threshold = clause.threshold;
  for (const SatCondition& cond : clause.conditions) {
    ConditionExplanation ce;
    ce.condition = cond;
    ce.confidence = aggregator_.ConditionScore(doc, value, cond);
    ce.contribution = cond.weight * ce.confidence;
    out.score += ce.contribution;
    out.conditions.push_back(std::move(ce));
  }
  out.passed = out.score >= clause.threshold;
  return out;
}

}  // namespace koko

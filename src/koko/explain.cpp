#include "koko/explain.h"

#include "util/string_util.h"

namespace koko {

std::string SatConditionToString(const SatCondition& cond) {
  switch (cond.kind) {
    case SatCondition::Kind::kStrContains:
      return "str(" + cond.var + ") contains \"" + cond.text + "\"";
    case SatCondition::Kind::kStrMentions:
      return "str(" + cond.var + ") mentions \"" + cond.text + "\"";
    case SatCondition::Kind::kStrMatches:
      return "str(" + cond.var + ") matches \"" + cond.text + "\"";
    case SatCondition::Kind::kFollowedBy:
      return cond.var + " \"" + cond.text + "\"";
    case SatCondition::Kind::kPrecededBy:
      return "\"" + cond.text + "\" " + cond.var;
    case SatCondition::Kind::kNear:
      return cond.var + " near \"" + cond.text + "\"";
    case SatCondition::Kind::kDescriptorRight:
      return cond.var + " [[\"" + cond.text + "\"]]";
    case SatCondition::Kind::kDescriptorLeft:
      return "[[\"" + cond.text + "\"]] " + cond.var;
    case SatCondition::Kind::kSimilarTo:
      return cond.var + " SimilarTo \"" + cond.text + "\"";
    case SatCondition::Kind::kInDict:
      return "str(" + cond.var + ") in dict(\"" + cond.text + "\")";
  }
  return "?";
}

std::string ClauseExplanation::ToString() const {
  std::string out = "satisfying " + var + " for value \"" + value + "\": score " +
                    FormatDouble(score, 3) + (passed ? " >= " : " < ") +
                    FormatDouble(threshold, 3) + " -> " +
                    (passed ? "PASS" : "FAIL") + "\n";
  for (const ConditionExplanation& c : conditions) {
    out += "  " + FormatDouble(c.contribution, 3) + " = " +
           FormatDouble(c.condition.weight, 2) + " * " +
           FormatDouble(c.confidence, 3) + "  (" +
           SatConditionToString(c.condition) + ")\n";
  }
  return out;
}

Explainer::Explainer(const EmbeddingModel* model,
                     const EntityRecognizer* recognizer, bool use_descriptors)
    : aggregator_(model, recognizer,
                  Aggregator::Options{.use_descriptors = use_descriptors}) {}

ClauseExplanation Explainer::Explain(const Document& doc,
                                     const std::string& value,
                                     const SatisfyingClause& clause) const {
  ClauseExplanation out;
  out.var = clause.var;
  out.value = value;
  out.threshold = clause.threshold;
  for (const SatCondition& cond : clause.conditions) {
    ConditionExplanation ce;
    ce.condition = cond;
    ce.confidence = aggregator_.ConditionScore(doc, value, cond);
    ce.contribution = cond.weight * ce.confidence;
    out.score += ce.contribution;
    out.conditions.push_back(std::move(ce));
  }
  out.passed = out.score >= clause.threshold;
  return out;
}

}  // namespace koko

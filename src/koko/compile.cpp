#include "koko/compile.h"

#include <map>

#include "util/string_util.h"

namespace koko {

namespace {

// Step-wise equality of constraints (order-insensitive by construction,
// since NodeConstraint stores each condition kind in a fixed field).
bool SameConstraint(const NodeConstraint& a, const NodeConstraint& b) {
  return a.dep == b.dep && a.pos == b.pos && a.word == b.word &&
         a.regex == b.regex && a.etype == b.etype && a.any_entity == b.any_entity;
}

// True when `p` is a (proper or equal) prefix of `q` with identical axes
// and conditions — the §4.2.1 dominance test.
bool IsPrefixPath(const PathQuery& p, const PathQuery& q) {
  if (p.steps.size() > q.steps.size()) return false;
  for (size_t i = 0; i < p.steps.size(); ++i) {
    if (p.steps[i].axis != q.steps[i].axis) return false;
    if (!SameConstraint(p.steps[i].constraint, q.steps[i].constraint)) return false;
  }
  return true;
}

class Compiler {
 public:
  explicit Compiler(const Query& query) : q_(query) {}

  Result<CompiledQuery> Run() {
    // 1. Materialise implicit output variables (typed entities) unless the
    //    block defines them.
    for (const OutputSpec& spec : q_.outputs) {
      bool defined_in_block = false;
      for (const VarDef& def : q_.defs) {
        if (def.name == spec.var) defined_in_block = true;
      }
      if (defined_in_block) continue;
      if (EqualsIgnoreCase(spec.type_name, "str")) {
        return Status::InvalidArgument("output variable '" + spec.var +
                                       "' of type Str must be defined in the block");
      }
      CompiledVar var;
      var.name = spec.var;
      var.kind = CompiledVar::Kind::kEntity;
      if (!EqualsIgnoreCase(spec.type_name, "entity")) {
        EntityType etype;
        if (!ParseEntityType(spec.type_name, &etype)) {
          return Status::InvalidArgument("unknown output type " + spec.type_name);
        }
        var.etype = etype;
      }
      AddVar(std::move(var));
    }

    // 2. Block definitions, in order.
    for (const VarDef& def : q_.defs) {
      KOKO_RETURN_IF_ERROR(CompileDef(def));
    }

    // 3. Explicit constraints.
    for (const Constraint& c : q_.constraints) {
      int a = Index(c.a);
      int b = Index(c.b);
      if (a < 0 || b < 0) {
        return Status::InvalidArgument("constraint references unknown variable " +
                                       (a < 0 ? c.a : c.b));
      }
      out_.constraints.push_back({c.kind, a, b});
    }

    // 4. Output column bindings.
    for (const OutputSpec& spec : q_.outputs) {
      int idx = Index(spec.var);
      if (idx < 0) {
        return Status::InvalidArgument("output variable '" + spec.var +
                                       "' is undefined");
      }
      out_.output_vars.push_back(idx);
    }
    out_.outputs = q_.outputs;
    out_.satisfying = q_.satisfying;
    out_.excluding = q_.excluding;

    // Validate satisfying/excluding variable references.
    for (const auto& clause : out_.satisfying) {
      if (Index(clause.var) < 0) {
        return Status::InvalidArgument("satisfying clause references unknown '" +
                                       clause.var + "'");
      }
    }
    for (const auto& cond : out_.excluding) {
      if (Index(cond.var) < 0) {
        return Status::InvalidArgument("excluding clause references unknown '" +
                                       cond.var + "'");
      }
    }

    ComputeDominance();
    return std::move(out_);
  }

 private:
  int Index(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }

  int AddVar(CompiledVar var) {
    int idx = static_cast<int>(out_.vars.size());
    index_[var.name] = idx;
    out_.vars.push_back(std::move(var));
    return idx;
  }

  Status CompileDef(const VarDef& def) {
    switch (def.kind) {
      case VarDef::Kind::kEntity: {
        CompiledVar var;
        var.name = def.name;
        var.kind = CompiledVar::Kind::kEntity;
        var.etype = def.etype;
        AddVar(std::move(var));
        return Status::OK();
      }
      case VarDef::Kind::kNode:
        return CompileNode(def.name, def.base_var, def.path);
      case VarDef::Kind::kSpan:
        return CompileSpan(def);
    }
    return Status::Internal("unreachable");
  }

  // Expands a (possibly relative) node definition into absolute form and
  // derives the parentOf/ancestorOf constraint to its base (§4.1).
  Status CompileNode(const std::string& name, const std::string& base_var,
                     const PathQuery& path) {
    CompiledVar var;
    var.name = name;
    var.kind = CompiledVar::Kind::kNode;
    if (!base_var.empty()) {
      int base = Index(base_var);
      if (base < 0) {
        return Status::InvalidArgument("path base '" + base_var + "' is undefined");
      }
      if (out_.vars[base].kind != CompiledVar::Kind::kNode) {
        return Status::InvalidArgument("path base '" + base_var +
                                       "' is not a node variable");
      }
      var.abs_path = out_.vars[base].abs_path;
      for (const PathStep& step : path.steps) var.abs_path.steps.push_back(step);
      int idx = AddVar(std::move(var));
      // Derived constraint: base parentOf/ancestorOf this (depending on the
      // first relative axis and path length).
      bool direct = path.steps.size() == 1 &&
                    path.steps[0].axis == PathStep::Axis::kChild;
      out_.constraints.push_back({direct ? Constraint::Kind::kParentOf
                                         : Constraint::Kind::kAncestorOf,
                                  base, idx});
      return Status::OK();
    }
    var.abs_path = path;
    AddVar(std::move(var));
    return Status::OK();
  }

  // Lifts every atom of a span term into a variable and derives the leftOf
  // adjacency chain (Example 4.1's v1/v2).
  Status CompileSpan(const VarDef& def) {
    CompiledVar span;
    span.name = def.name;
    span.kind = CompiledVar::Kind::kSpan;
    std::vector<int> atom_indices;
    for (size_t i = 0; i < def.atoms.size(); ++i) {
      const SpanAtom& atom = def.atoms[i];
      switch (atom.kind) {
        case SpanAtom::Kind::kVarRef: {
          int idx = Index(atom.var);
          if (idx < 0) {
            return Status::InvalidArgument("span atom references unknown '" +
                                           atom.var + "'");
          }
          atom_indices.push_back(idx);
          break;
        }
        case SpanAtom::Kind::kSubtree: {
          int base = Index(atom.var);
          if (base < 0) {
            return Status::InvalidArgument("subtree of unknown variable '" +
                                           atom.var + "'");
          }
          CompiledVar sub;
          sub.name = "$" + def.name + "_sub" + std::to_string(i);
          sub.kind = CompiledVar::Kind::kSubtree;
          sub.base = base;
          atom_indices.push_back(AddVar(std::move(sub)));
          break;
        }
        case SpanAtom::Kind::kPath: {
          std::string anon = "$" + def.name + "_p" + std::to_string(i);
          KOKO_RETURN_IF_ERROR(CompileNode(anon, atom.var, atom.path));
          atom_indices.push_back(Index(anon));
          break;
        }
        case SpanAtom::Kind::kLiteral: {
          CompiledVar lit;
          lit.name = "$" + def.name + "_w" + std::to_string(i);
          lit.kind = CompiledVar::Kind::kLiteral;
          lit.literal = atom.tokens;
          atom_indices.push_back(AddVar(std::move(lit)));
          break;
        }
        case SpanAtom::Kind::kElastic: {
          CompiledVar el;
          el.name = "$" + def.name + "_v" + std::to_string(i);
          el.kind = CompiledVar::Kind::kElastic;
          el.elastic = atom.elastic;
          atom_indices.push_back(AddVar(std::move(el)));
          break;
        }
      }
    }
    // leftOf chain between consecutive atoms.
    for (size_t i = 0; i + 1 < atom_indices.size(); ++i) {
      out_.constraints.push_back(
          {Constraint::Kind::kLeftOf, atom_indices[i], atom_indices[i + 1]});
    }
    span.atoms = atom_indices;
    int span_idx = AddVar(std::move(span));
    out_.horizontal.push_back(span_idx);
    return Status::OK();
  }

  // §4.2.1: mark each node variable with the variable whose absolute path
  // dominates it (the longest extension of its own path).
  void ComputeDominance() {
    for (size_t i = 0; i < out_.vars.size(); ++i) {
      CompiledVar& v = out_.vars[i];
      if (v.kind != CompiledVar::Kind::kNode) continue;
      int best = static_cast<int>(i);
      size_t best_len = v.abs_path.steps.size();
      for (size_t j = 0; j < out_.vars.size(); ++j) {
        const CompiledVar& w = out_.vars[j];
        if (j == i || w.kind != CompiledVar::Kind::kNode) continue;
        if (IsPrefixPath(v.abs_path, w.abs_path) &&
            w.abs_path.steps.size() > best_len) {
          best = static_cast<int>(j);
          best_len = w.abs_path.steps.size();
        }
      }
      v.dominant = best;
    }
  }

  const Query& q_;
  CompiledQuery out_;
  std::map<std::string, int> index_;
};

}  // namespace

std::vector<int> CompiledQuery::DominantPathVars() const {
  std::vector<int> result;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].kind != CompiledVar::Kind::kNode) continue;
    // Follow dominance pointers to the fixpoint.
    int cur = static_cast<int>(i);
    while (vars[static_cast<size_t>(cur)].dominant != cur) {
      cur = vars[static_cast<size_t>(cur)].dominant;
    }
    bool present = false;
    for (int r : result) present |= (r == cur);
    if (!present) result.push_back(cur);
  }
  return result;
}

Result<CompiledQuery> CompileQuery(const Query& query) {
  Compiler compiler(query);
  return compiler.Run();
}

}  // namespace koko

#ifndef KOKO_KOKO_LEXER_H_
#define KOKO_KOKO_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace koko {

/// Token kinds of the KOKO query language.
enum class QTokenKind {
  kIdent,     // extract, satisfying, variable names, labels, ...
  kString,    // "..."
  kNumber,    // 0.8, 1, 17
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kLBracket,  // [
  kRBracket,  // ]
  kLLBracket, // [[
  kRRBracket, // ]]
  kComma,     // ,
  kColon,     // :
  kEquals,    // =
  kPlus,      // +
  kSlash,     // /
  kSlashSlash,// //
  kDot,       // .
  kCaret,     // ^ (elastic span; accepts the unicode wedge too)
  kStar,      // *
  kAt,        // @
  kTilde,     // ~ (SimilarTo shorthand)
  kEnd,
};

struct QToken {
  QTokenKind kind = QTokenKind::kEnd;
  std::string text;   // identifier/string/number text
  double number = 0;  // valid for kNumber
  size_t offset = 0;  // byte offset for error messages
};

/// Tokenises KOKO query text. Strings support \" escapes; `//` inside path
/// context is one token (the descendant axis) — comments are not supported
/// in the language (the paper's queries have none).
Result<std::vector<QToken>> LexQuery(std::string_view text);

}  // namespace koko

#endif  // KOKO_KOKO_LEXER_H_

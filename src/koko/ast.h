#ifndef KOKO_KOKO_AST_H_
#define KOKO_KOKO_AST_H_

#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "index/path.h"
#include "text/annotations.h"

namespace koko {

/// One output column of the extract clause: `e:Entity`, `d:Str`, `a:GPE`...
struct OutputSpec {
  std::string var;
  std::string type_name;
};

/// Options attached to an elastic span `^` / `^[...]` (§2.1): zero or more
/// tokens, optionally bounded, optionally constrained by a regex over the
/// span text or an entity-type requirement.
struct ElasticSpec {
  int min_tokens = 0;
  int max_tokens = std::numeric_limits<int>::max();
  std::optional<std::string> regex;
  std::optional<EntityType> etype;
  bool any_entity = false;
};

/// One atom of a span term x = atom1 + atom2 + ... (§2.1).
struct SpanAtom {
  enum class Kind {
    kVarRef,    // a previously defined variable
    kSubtree,   // var.subtree
    kPath,      // an inline path expression (anonymous node variable)
    kLiteral,   // a quoted token sequence
    kElastic,   // ^ or ^[...]
  };
  Kind kind = Kind::kVarRef;
  std::string var;                     // kVarRef / kSubtree
  PathQuery path;                      // kPath
  std::vector<std::string> tokens;     // kLiteral (tokenised)
  ElasticSpec elastic;                 // kElastic
};

/// A variable definition inside the /ROOT:{ ... } block.
struct VarDef {
  enum class Kind {
    kNode,    // path expression (possibly relative to another variable)
    kSpan,    // span term (sequence of atoms)
    kEntity,  // `a = Entity` — binds to any entity mention
  };
  std::string name;
  Kind kind = Kind::kNode;
  /// kNode: the path steps; when `base_var` is non-empty the path is
  /// relative to that variable's node.
  PathQuery path;
  std::string base_var;
  /// kSpan:
  std::vector<SpanAtom> atoms;
  /// kEntity: optional type restriction.
  std::optional<EntityType> etype;
};

/// A constraint between variables stated outside the block (§2.1) or
/// derived during normalisation (§4.1).
struct Constraint {
  enum class Kind { kIn, kEq, kParentOf, kAncestorOf, kLeftOf };
  Kind kind = Kind::kIn;
  std::string a;
  std::string b;
};

/// One condition of a satisfying / excluding clause (§2.2, §4.4.1).
struct SatCondition {
  enum class Kind {
    kStrContains,      // str(x) contains "..."
    kStrMentions,      // str(x) mentions "..."
    kStrMatches,       // str(x) matches <regex>
    kFollowedBy,       // x "..."        (x strictly followed by string)
    kPrecededBy,       // "..." x
    kNear,             // x near "..."   (score 1/(1+distance))
    kDescriptorRight,  // x [[descriptor]]
    kDescriptorLeft,   // [[descriptor]] x
    kSimilarTo,        // x SimilarTo "..."  (also spelled `~`)
    kInDict,           // str(x) in dict("Location")
  };
  Kind kind = Kind::kStrContains;
  std::string var;
  std::string text;     // string / pattern / descriptor / dictionary name
  double weight = 1.0;
};

/// The satisfying clause of one output variable with its threshold (§2.2).
struct SatisfyingClause {
  std::string var;
  std::vector<SatCondition> conditions;
  double threshold = 0.0;
};

/// \brief A parsed KOKO query (§2):
///
///   extract <outputs> from <source> if ( [/ROOT:{defs}] constraints* )
///   [satisfying <var> (cond) or (cond) ... with threshold t]...
///   [excluding (cond) or (cond) ...]
struct Query {
  std::vector<OutputSpec> outputs;
  std::string source;
  std::vector<VarDef> defs;
  std::vector<Constraint> constraints;
  std::vector<SatisfyingClause> satisfying;
  std::vector<SatCondition> excluding;
};

}  // namespace koko

#endif  // KOKO_KOKO_AST_H_

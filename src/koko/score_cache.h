#ifndef KOKO_KOKO_SCORE_CACHE_H_
#define KOKO_KOKO_SCORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "koko/ast.h"
#include "util/thread_annotations.h"

namespace koko {

/// \brief Persistent, sharded (doc, clause, value) -> score cache for the
/// aggregate phase (§4.4).
///
/// The engine's satisfying/excluding evaluation repeatedly scores the same
/// (document, clause, candidate value) triple — within one query when many
/// rows share a value, and *across* queries when a workload repeats (the
/// heavy-traffic serving case). A ScoreCache outlives individual queries:
/// hand one to `EngineOptions::score_cache` (QueryService does this for
/// every admitted query) and repeated workloads hit warm aggregate scores
/// instead of re-running descriptor matching over whole documents.
///
/// The cache is sharded into `num_shards` independently locked stripes
/// keyed by document id, so concurrent queries scoring different documents
/// never contend and per-document invalidation touches exactly one shard.
/// Correctness: `Aggregator::Score` is a pure function of (document
/// content, value, clause, engine scoring configuration), so serving a hit
/// is byte-identical to recomputing — provided the clause fingerprint keys
/// capture the scoring configuration. `ClauseFingerprint` covers the clause
/// itself (conditions, weights — not the threshold, which is applied after
/// scoring); the engine additionally mixes its descriptor/ontology
/// configuration into the key (see Engine::ExecuteCompiled), so one cache
/// must only be shared across engines with identical corpora. Do not reuse
/// a cache after mutating or reloading the corpus; call Clear() instead.
class ScoreCache {
 public:
  struct Options {
    /// Lock stripes (cache shards); rounded up to a power of two, min 1.
    /// Align with the index shard count for shard-affine serving.
    size_t num_shards = 16;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t entries = 0;
  };

  ScoreCache() : ScoreCache(Options{}) {}
  explicit ScoreCache(const Options& options);

  /// Content fingerprint of a satisfying/excluding clause: every condition's
  /// kind, variable, text, and weight. Clauses that score identically on any
  /// document collide only if structurally identical (modulo 64-bit hash
  /// collisions). The clause threshold is deliberately excluded — it gates
  /// rows after scoring and does not change the score itself.
  static uint64_t ClauseFingerprint(const SatisfyingClause& clause);

  /// Cached score for (clause_key, doc, value), or nullopt on a miss.
  std::optional<double> Lookup(uint64_t clause_key, uint32_t doc,
                               const std::string& value) const;

  /// Inserts (first writer wins; concurrent inserts of the same key are
  /// benign because scores are deterministic).
  void Insert(uint64_t clause_key, uint32_t doc, const std::string& value,
              double score);

  /// Drops every cached score for `doc` (call when a document changes).
  void InvalidateDoc(uint32_t doc);

  /// Drops everything and resets hit/miss counters.
  void Clear();

  size_t num_shards() const { return shards_.size(); }
  size_t size() const;
  Stats stats() const;

 private:
  struct Key {
    uint64_t clause_key;
    uint32_t doc;
    std::string value;
    bool operator==(const Key& o) const {
      return clause_key == o.clause_key && doc == o.doc && value == o.value;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<Key, double, KeyHash> map KOKO_GUARDED_BY(mu);
  };

  Shard& ShardOf(uint32_t doc) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t shard_mask_ = 0;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace koko

#endif  // KOKO_KOKO_SCORE_CACHE_H_

#ifndef KOKO_KOKO_AGGREGATE_H_
#define KOKO_KOKO_AGGREGATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/descriptor.h"
#include "embed/embedding.h"
#include "koko/ast.h"
#include "ner/entity_recognizer.h"
#include "text/document.h"
#include "util/thread_annotations.h"

namespace koko {

/// \brief Evidence aggregation for satisfying/excluding clauses (§4.4).
///
/// Scores a candidate value against a whole document:
///
///   score(e) = Σᵢ wᵢ · mᵢ(e)
///
/// with boolean conditions contributing 0/1 (multiplicity ignored),
/// `near` contributing the best 1/(1+distance), SimilarTo contributing the
/// embedding similarity, and descriptor conditions contributing the summed
/// per-sentence confidences of §4.4.1(c): each sentence is decomposed into
/// canonical clauses, each expansion dᵢ of the descriptor is matched as a
/// gapped word sequence against each clause cⱼ on the required side of the
/// value, and conf = maxᵢ Σⱼ kᵢ·lⱼ.
class Aggregator {
 public:
  struct Options {
    /// When false, descriptor conditions contribute zero (the Figure 5
    /// "without descriptors" ablation).
    bool use_descriptors = true;
  };

  Aggregator(const EmbeddingModel* model, const EntityRecognizer* recognizer,
             Options options);

  /// Total weighted score of `value` for `clause` over `doc`.
  double Score(const Document& doc, const std::string& value,
               const SatisfyingClause& clause) const;

  /// True when `value` triggers the excluding condition (boolean semantics;
  /// descriptor/near conditions exclude when their confidence is positive).
  bool Excluded(const Document& doc, const std::string& value,
                const SatCondition& cond) const;

  /// Confidence of one condition in isolation (exposed for tests).
  double ConditionScore(const Document& doc, const std::string& value,
                        const SatCondition& cond) const;

  /// Registers a domain ontology set for descriptor expansion (the paper's
  /// coffee-drinks dictionary hook).
  void AddOntologySet(const std::vector<std::string>& related);

 private:
  const std::vector<WeightedPhrase>& Expansions(const std::string& descriptor) const;

  double ScoreDescriptor(const Document& doc,
                         const std::vector<std::string>& value_tokens,
                         const std::string& descriptor, bool right_side) const;
  double ScoreNear(const Document& doc, const std::vector<std::string>& value_tokens,
                   const std::string& text) const;
  bool OccursFollowedBy(const Document& doc,
                        const std::vector<std::string>& value_tokens,
                        const std::vector<std::string>& suffix) const;
  bool OccursPrecededBy(const Document& doc,
                        const std::vector<std::string>& value_tokens,
                        const std::vector<std::string>& prefix) const;
  double SimilarToScore(const std::vector<std::string>& value_tokens,
                        const std::string& descriptor) const;

  const EmbeddingModel* model_;
  const EntityRecognizer* recognizer_;
  Options options_;
  /// Guards the expansion memo (and the expander feeding it):
  /// Score/Excluded/ConditionScore are safe to call from concurrent serving
  /// threads sharing one Aggregator. Register ontology sets before any
  /// concurrent scoring starts — AddOntologySet invalidates references
  /// handed out by Expansions().
  mutable Mutex expansion_mu_;
  DescriptorExpander expander_ KOKO_GUARDED_BY(expansion_mu_);
  mutable std::unordered_map<std::string, std::vector<WeightedPhrase>>
      expansion_cache_ KOKO_GUARDED_BY(expansion_mu_);
};

/// Positions where `needle` occurs as a contiguous token subsequence of the
/// sentence (case-insensitive token comparison). Helper shared with tests.
std::vector<int> TokenOccurrences(const Sentence& s,
                                  const std::vector<std::string>& needle);

}  // namespace koko

#endif  // KOKO_KOKO_AGGREGATE_H_

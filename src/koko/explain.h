#ifndef KOKO_KOKO_EXPLAIN_H_
#define KOKO_KOKO_EXPLAIN_H_

#include <string>
#include <vector>

#include "embed/embedding.h"
#include "koko/aggregate.h"
#include "koko/ast.h"
#include "koko/engine.h"
#include "koko/planner.h"
#include "ner/entity_recognizer.h"
#include "text/document.h"

namespace koko {

/// Per-condition contribution to one satisfying-clause score.
struct ConditionExplanation {
  SatCondition condition;
  double confidence = 0;  // m_i(e)
  double contribution = 0;  // w_i * m_i(e)
};

/// Why a value passed (or failed) a satisfying clause.
struct ClauseExplanation {
  std::string var;
  std::string value;
  double threshold = 0;
  double score = 0;
  bool passed = false;
  std::vector<ConditionExplanation> conditions;

  /// Human-readable rendering (one line per condition).
  std::string ToString() const;
};

/// \brief Extraction debuggability (§5: rule-based systems are
/// explainable; "users can discover the reasons that led to an
/// extraction").
///
/// Recomputes the per-condition confidence breakdown of a value against a
/// document so a user can see exactly which evidence sentences/conditions
/// produced (or blocked) an extraction.
class Explainer {
 public:
  Explainer(const EmbeddingModel* model, const EntityRecognizer* recognizer,
            bool use_descriptors = true);

  ClauseExplanation Explain(const Document& doc, const std::string& value,
                            const SatisfyingClause& clause) const;

 private:
  Aggregator aggregator_;
};

/// Renders a SatCondition back to (approximately) its query syntax; shared
/// by the explainer and the query printer.
std::string SatConditionToString(const SatCondition& cond);

/// \brief EXPLAIN of a compiled query plan (koko/planner.h).
///
/// One line per atom in execution order: kind + label, estimated
/// selectivity (with exact/upper-bound marker), and the per-clause choices
/// — intersection representation for compressed atoms (`in-place` vs
/// `decode+gallop`) and `semi-join`/`quintuple` for cross-index paths.
/// Ends with the plan fingerprint and the thresholds it was built with.
std::string ExplainPlan(const QueryPlan& plan);

/// \brief EXPLAIN of an executed query: the plan (when one ran) plus the
/// execution's pruning and early-termination figures — candidates after
/// DPLI, candidates actually scanned, and whether/where streaming top-k
/// cut the scan short.
std::string ExplainExecution(const QueryResult& result);

}  // namespace koko

#endif  // KOKO_KOKO_EXPLAIN_H_

#include "koko/printer.h"

#include <limits>

#include "koko/explain.h"
#include "util/string_util.h"

namespace koko {

namespace {

std::string ElasticToString(const ElasticSpec& spec) {
  std::vector<std::string> conds;
  if (spec.min_tokens > 0) conds.push_back("min=" + std::to_string(spec.min_tokens));
  if (spec.max_tokens != std::numeric_limits<int>::max()) {
    conds.push_back("max=" + std::to_string(spec.max_tokens));
  }
  if (spec.regex) conds.push_back("regex=\"" + *spec.regex + "\"");
  if (spec.any_entity) {
    conds.push_back("etype=\"Entity\"");
  } else if (spec.etype) {
    conds.push_back("etype=\"" + std::string(EntityTypeName(*spec.etype)) + "\"");
  }
  if (conds.empty()) return "^";
  return "^[" + Join(conds, ", ") + "]";
}

std::string AtomToString(const SpanAtom& atom) {
  switch (atom.kind) {
    case SpanAtom::Kind::kVarRef:
      return atom.var;
    case SpanAtom::Kind::kSubtree:
      return atom.var + ".subtree";
    case SpanAtom::Kind::kPath:
      return atom.var + atom.path.ToString();
    case SpanAtom::Kind::kLiteral: {
      std::string out = "\"";
      out += Join(atom.tokens, " ");
      out += '"';
      return out;
    }
    case SpanAtom::Kind::kElastic:
      return ElasticToString(atom.elastic);
  }
  return "?";
}

}  // namespace

std::string VarDefToString(const VarDef& def) {
  switch (def.kind) {
    case VarDef::Kind::kEntity:
      if (def.etype) {
        return def.name + " = " + std::string(EntityTypeName(*def.etype));
      }
      return def.name + " = Entity";
    case VarDef::Kind::kNode:
      return def.name + " = " + def.base_var + def.path.ToString();
    case VarDef::Kind::kSpan: {
      std::vector<std::string> atoms;
      atoms.reserve(def.atoms.size());
      for (const SpanAtom& atom : def.atoms) atoms.push_back(AtomToString(atom));
      return def.name + " = " + Join(atoms, " + ");
    }
  }
  return "?";
}

std::string QueryToString(const Query& query) {
  std::string out = "extract ";
  std::vector<std::string> outputs;
  for (const OutputSpec& spec : query.outputs) {
    outputs.push_back(spec.var + ":" + spec.type_name);
  }
  out += Join(outputs, ", ");
  out += " from \"" + query.source + "\" if (";
  if (!query.defs.empty()) {
    out += "\n  /ROOT:{\n";
    std::vector<std::string> defs;
    for (const VarDef& def : query.defs) {
      defs.push_back("    " + VarDefToString(def));
    }
    out += Join(defs, ",\n");
    out += "\n  }";
  }
  for (const Constraint& c : query.constraints) {
    out += " (" + c.a + ") ";
    out += c.kind == Constraint::Kind::kIn ? "in" : "eq";
    out += " (" + c.b + ")";
  }
  out += ")";
  for (const SatisfyingClause& clause : query.satisfying) {
    out += "\nsatisfying " + clause.var + "\n";
    std::vector<std::string> conds;
    for (const SatCondition& cond : clause.conditions) {
      conds.push_back("  (" + SatConditionToString(cond) + " {" +
                      FormatDouble(cond.weight, 3) + "})");
    }
    out += Join(conds, " or\n");
    out += "\nwith threshold " + FormatDouble(clause.threshold, 3);
  }
  if (!query.excluding.empty()) {
    out += "\nexcluding\n";
    std::vector<std::string> conds;
    for (const SatCondition& cond : query.excluding) {
      conds.push_back("  (" + SatConditionToString(cond) + ")");
    }
    out += Join(conds, " or\n");
  }
  return out;
}

}  // namespace koko

#include "extract/ike.h"

#include <functional>
#include <set>

#include "text/tokenizer.h"
#include "util/string_util.h"

namespace koko {

std::vector<std::pair<int, int>> NounPhraseChunks(const Sentence& s) {
  std::vector<std::pair<int, int>> chunks;
  int i = 0;
  const int n = s.size();
  auto chunkable = [&](int t) {
    switch (s.tokens[t].pos) {
      case PosTag::kDet:
      case PosTag::kAdj:
      case PosTag::kNoun:
      case PosTag::kPropn:
      case PosTag::kNum:
        return true;
      default:
        return false;
    }
  };
  auto nounish = [&](int t) {
    return s.tokens[t].pos == PosTag::kNoun || s.tokens[t].pos == PosTag::kPropn;
  };
  while (i < n) {
    if (!chunkable(i)) {
      ++i;
      continue;
    }
    int begin = i;
    int last_noun = -1;
    while (i < n && chunkable(i)) {
      if (nounish(i)) last_noun = i;
      ++i;
    }
    if (last_noun >= 0) {
      // The NP proper excludes the leading determiner (IKE captures "Blue
      // Bottle", not "the Blue Bottle").
      int np_begin = begin;
      while (np_begin < last_noun && s.tokens[np_begin].pos == PosTag::kDet) {
        ++np_begin;
      }
      chunks.emplace_back(np_begin, last_noun);
    }
  }
  return chunks;
}

Result<std::vector<IkeExtractor::Element>> IkeExtractor::ParsePattern(
    const std::string& pattern) const {
  std::vector<Element> elements;
  size_t i = 0;
  const size_t n = pattern.size();
  while (i < n) {
    if (IsAsciiSpace(pattern[i])) {
      ++i;
      continue;
    }
    if (pattern[i] == '(') {
      // (NP) or ("phrase" ~ N)
      size_t close = pattern.find(')', i);
      if (close == std::string::npos) {
        return Status::ParseError("unbalanced '(' in IKE pattern");
      }
      std::string inner(Trim(std::string_view(pattern).substr(i + 1, close - i - 1)));
      i = close + 1;
      if (EqualsIgnoreCase(inner, "NP")) {
        Element e;
        e.kind = Element::Kind::kCapture;
        elements.push_back(std::move(e));
        continue;
      }
      // "phrase" ~ N
      size_t q1 = inner.find('"');
      size_t q2 = inner.rfind('"');
      if (q1 == std::string::npos || q2 <= q1) {
        return Status::ParseError("expected quoted phrase in IKE group: " + inner);
      }
      std::string phrase = inner.substr(q1 + 1, q2 - q1 - 1);
      int k = 10;
      size_t tilde = inner.find('~', q2);
      if (tilde != std::string::npos) {
        k = std::stoi(inner.substr(tilde + 1));
      }
      Element e;
      e.kind = Element::Kind::kSimilar;
      // Expand each word of the phrase to its top-k neighbours; variants
      // are the cartesian alternatives per word position.
      std::vector<std::string> words = SplitWhitespace(ToLower(phrase));
      std::vector<std::vector<std::string>> per_word;
      for (const auto& w : words) {
        std::vector<std::string> alts = {w};
        for (const auto& nb : model_->Neighbors(w, k, 0.35)) {
          alts.push_back(nb.text);
        }
        per_word.push_back(std::move(alts));
      }
      // Enumerate variants (bounded).
      size_t total = 1;
      for (const auto& alts : per_word) total *= alts.size();
      total = std::min<size_t>(total, 512);
      for (size_t combo = 0; combo < total; ++combo) {
        size_t rem = combo;
        std::vector<std::string> variant;
        for (const auto& alts : per_word) {
          variant.push_back(alts[rem % alts.size()]);
          rem /= alts.size();
        }
        e.variants.push_back(std::move(variant));
      }
      elements.push_back(std::move(e));
      continue;
    }
    if (pattern[i] == '"') {
      size_t close = pattern.find('"', i + 1);
      if (close == std::string::npos) {
        return Status::ParseError("unterminated string in IKE pattern");
      }
      Element e;
      e.kind = Element::Kind::kLiteral;
      e.tokens = Tokenizer::Tokenize(pattern.substr(i + 1, close - i - 1));
      elements.push_back(std::move(e));
      i = close + 1;
      continue;
    }
    return Status::ParseError("unexpected character in IKE pattern: " +
                              std::string(1, pattern[i]));
  }
  if (elements.empty()) return Status::ParseError("empty IKE pattern");
  return elements;
}

namespace {

bool TokensMatchAt(const Sentence& s, int pos, const std::vector<std::string>& words) {
  if (pos + static_cast<int>(words.size()) > s.size()) return false;
  for (size_t j = 0; j < words.size(); ++j) {
    if (!EqualsIgnoreCase(s.tokens[pos + static_cast<int>(j)].text, words[j])) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<std::string>> IkeExtractor::Run(const AnnotatedCorpus& corpus,
                                                   const std::string& pattern) const {
  auto elements = ParsePattern(pattern);
  if (!elements.ok()) return elements.status();

  std::vector<std::string> results;
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    std::vector<std::pair<int, int>> chunks = NounPhraseChunks(s);

    // Recursive matcher over element positions.
    std::function<void(size_t, int, std::vector<std::pair<int, int>>&)> match =
        [&](size_t idx, int pos, std::vector<std::pair<int, int>>& captures) {
          if (idx == elements->size()) {
            for (auto [b, e] : captures) results.push_back(s.SpanText(b, e));
            return;
          }
          const Element& el = (*elements)[idx];
          switch (el.kind) {
            case Element::Kind::kCapture: {
              for (auto [b, e] : chunks) {
                if (b != pos && pos >= 0) continue;
                if (pos < 0) {
                  // Unanchored leading capture: any chunk.
                }
                captures.emplace_back(b, e);
                match(idx + 1, e + 1, captures);
                captures.pop_back();
              }
              break;
            }
            case Element::Kind::kLiteral: {
              if (pos < 0) {
                for (int start = 0; start < s.size(); ++start) {
                  if (TokensMatchAt(s, start, el.tokens)) {
                    match(idx + 1, start + static_cast<int>(el.tokens.size()),
                          captures);
                  }
                }
              } else if (TokensMatchAt(s, pos, el.tokens)) {
                match(idx + 1, pos + static_cast<int>(el.tokens.size()), captures);
              }
              break;
            }
            case Element::Kind::kSimilar: {
              for (const auto& variant : el.variants) {
                if (pos < 0) {
                  for (int start = 0; start < s.size(); ++start) {
                    if (TokensMatchAt(s, start, variant)) {
                      match(idx + 1, start + static_cast<int>(variant.size()),
                            captures);
                    }
                  }
                } else if (TokensMatchAt(s, pos, variant)) {
                  match(idx + 1, pos + static_cast<int>(variant.size()), captures);
                }
              }
              break;
            }
          }
        };
    std::vector<std::pair<int, int>> captures;
    match(0, -1, captures);
  }
  // Dedup, preserving first-seen order.
  std::set<std::string> seen;
  std::vector<std::string> unique;
  for (auto& r : results) {
    if (seen.insert(r).second) unique.push_back(std::move(r));
  }
  return unique;
}

Result<std::vector<std::string>> IkeExtractor::RunAll(
    const AnnotatedCorpus& corpus, const std::vector<std::string>& patterns) const {
  std::set<std::string> seen;
  std::vector<std::string> all;
  for (const auto& pattern : patterns) {
    auto results = Run(corpus, pattern);
    if (!results.ok()) return results.status();
    for (auto& r : *results) {
      if (seen.insert(r).second) all.push_back(std::move(r));
    }
  }
  return all;
}

}  // namespace koko

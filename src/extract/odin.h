#ifndef KOKO_EXTRACT_ODIN_H_
#define KOKO_EXTRACT_ODIN_H_

#include <string>
#include <vector>

#include "index/path.h"
#include "text/document.h"

namespace koko {

/// One Odin rule: either a dependency-tree pattern or a surface token
/// pattern, with a priority (lower runs earlier).
struct OdinRule {
  std::string name;
  int priority = 1;
  enum class Kind { kDependency, kSurface };
  Kind kind = Kind::kDependency;
  /// kDependency: a root-anchored tree path; the matched node's NP chunk
  /// (or token) is the mention.
  PathQuery path;
  /// kSurface: literal token sequence that must appear; the mention is the
  /// NP chunk immediately before/after it.
  std::vector<std::string> trigger;
  bool capture_left = false;  // capture the NP left of the trigger
};

/// \brief Odin baseline (Valenzuela-Escárcega et al.) — a priority-ordered
/// rule-cascade interpreter (§5, §6.3).
///
/// Rules are applied in priority order, re-scanning every sentence each
/// iteration until no new mentions are found. There is no indexing: every
/// rule visits every sentence — which is exactly why the paper measures it
/// 40×/23× slower than KOKO on selective queries and near-parity (1.3×) on
/// unselective ones.
class OdinExtractor {
 public:
  struct RunStats {
    int iterations = 0;
    size_t sentence_visits = 0;
  };

  /// Runs the cascade; returns extracted mention strings.
  std::vector<std::string> Run(const AnnotatedCorpus& corpus,
                               const std::vector<OdinRule>& rules,
                               RunStats* stats = nullptr) const;
};

}  // namespace koko

#endif  // KOKO_EXTRACT_ODIN_H_

#ifndef KOKO_EXTRACT_CRF_H_
#define KOKO_EXTRACT_CRF_H_

#include <string>
#include <vector>

#include "text/document.h"

namespace koko {

/// \brief First-order linear-chain CRF trained with the averaged
/// perceptron — the paper's CRFsuite baseline (§6.1).
///
/// BIO tagging (O / B-ENT / I-ENT) with the paper's exact feature template:
/// the token, its previous and next tokens, prefixes and suffixes up to 3
/// characters, and binary shape features (has-digit, all-digits,
/// capitalised, all-caps, has-punct). Features are hashed into a fixed
/// weight vector; decoding is Viterbi over emission + transition scores.
class CrfExtractor {
 public:
  struct Options {
    int epochs = 8;
    uint64_t seed = 42;           // training-order shuffle seed
    size_t feature_space = 1 << 20;
  };

  /// One training sentence: tokens plus BIO labels (0=O, 1=B, 2=I).
  struct LabeledSentence {
    std::vector<std::string> tokens;
    std::vector<int> bio;
  };

  CrfExtractor() : CrfExtractor(Options()) {}
  explicit CrfExtractor(Options options);

  /// Averaged-perceptron training.
  void Train(const std::vector<LabeledSentence>& data);

  /// Predicted BIO labels for a sentence.
  std::vector<int> Predict(const std::vector<std::string>& tokens) const;

  /// Predicted mention spans [begin, end] (inclusive).
  std::vector<std::pair<int, int>> ExtractSpans(
      const std::vector<std::string>& tokens) const;

  /// Extracts all mention strings from a corpus.
  std::vector<std::string> ExtractMentions(const AnnotatedCorpus& corpus) const;

  /// Builds BIO training data from annotated documents using gold mention
  /// strings (every token-sequence occurrence of a gold mention is
  /// labelled).
  static std::vector<LabeledSentence> MakeTrainingData(
      const std::vector<const Document*>& docs,
      const std::vector<std::string>& gold_mentions);

 private:
  static constexpr int kNumLabels = 3;  // O, B, I

  void Features(const std::vector<std::string>& tokens, int pos,
                std::vector<uint64_t>* out) const;
  double EmissionScore(const std::vector<uint64_t>& feats, int label,
                       bool averaged) const;
  std::vector<int> Decode(const std::vector<std::string>& tokens,
                          bool averaged) const;
  void Update(const std::vector<uint64_t>& feats, int label, double delta);

  Options options_;
  std::vector<double> weights_;
  std::vector<double> acc_;      // accumulated weights for averaging
  std::vector<int64_t> last_;    // last update step per weight (lazy average)
  double transition_[kNumLabels][kNumLabels] = {};
  double transition_acc_[kNumLabels][kNumLabels] = {};
  int64_t step_ = 0;
  bool trained_ = false;
};

}  // namespace koko

#endif  // KOKO_EXTRACT_CRF_H_

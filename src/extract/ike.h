#ifndef KOKO_EXTRACT_IKE_H_
#define KOKO_EXTRACT_IKE_H_

#include <string>
#include <vector>

#include "embed/embedding.h"
#include "text/document.h"
#include "util/status.h"

namespace koko {

/// \brief IKE baseline (Dalvi et al. 2016) — per-sentence pattern search
/// with distributional-similarity expansion (§5, §6.1, Appendix A).
///
/// Pattern syntax (the subset the paper's Appendix uses):
///   (NP)              — captures a noun phrase
///   "literal phrase"  — exact token sequence
///   ("phrase" ~ N)    — the phrase or any of its N distributional
///                       neighbours (per-word embedding expansion)
///
/// Crucially, IKE matches one sentence at a time and cannot aggregate
/// evidence across mentions — the property that separates it from KOKO in
/// Figure 3.
class IkeExtractor {
 public:
  explicit IkeExtractor(const EmbeddingModel* model) : model_(model) {}

  /// Runs one pattern over the corpus; returns the captured NP strings.
  Result<std::vector<std::string>> Run(const AnnotatedCorpus& corpus,
                                       const std::string& pattern) const;

  /// Runs several patterns and unions the captures (the paper executes each
  /// pattern separately, incrementally adding results to a relation).
  Result<std::vector<std::string>> RunAll(
      const AnnotatedCorpus& corpus, const std::vector<std::string>& patterns) const;

 private:
  struct Element {
    enum class Kind { kCapture, kLiteral, kSimilar };
    Kind kind = Kind::kLiteral;
    std::vector<std::string> tokens;                  // kLiteral
    std::vector<std::vector<std::string>> variants;   // kSimilar (expanded)
  };

  Result<std::vector<Element>> ParsePattern(const std::string& pattern) const;

  const EmbeddingModel* model_;
};

/// Noun-phrase chunks of a sentence: [begin, end] spans whose head is the
/// final noun (shared with the NELL baseline).
std::vector<std::pair<int, int>> NounPhraseChunks(const Sentence& s);

}  // namespace koko

#endif  // KOKO_EXTRACT_IKE_H_

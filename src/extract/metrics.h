#ifndef KOKO_EXTRACT_METRICS_H_
#define KOKO_EXTRACT_METRICS_H_

#include <set>
#include <string>
#include <vector>

namespace koko {

/// Precision / recall / F1 of a set-valued extraction task.
struct PRF {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  size_t tp = 0;
  size_t fp = 0;
  size_t fn = 0;
};

/// Canonicalises an extracted mention for comparison (lower-case, trimmed,
/// single-spaced).
std::string NormalizeMention(const std::string& text);

/// Scores predicted mentions against gold mentions (both normalised).
PRF ScoreExtractions(const std::set<std::string>& gold,
                     const std::set<std::string>& predicted);

/// Convenience: normalises both sides then scores.
PRF ScoreExtractionLists(const std::vector<std::string>& gold,
                         const std::vector<std::string>& predicted);

}  // namespace koko

#endif  // KOKO_EXTRACT_METRICS_H_

#include "extract/crf.h"

#include <algorithm>
#include <array>

#include "util/hash.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace koko {

CrfExtractor::CrfExtractor(Options options) : options_(options) {
  weights_.assign(options_.feature_space * kNumLabels, 0.0);
  acc_.assign(options_.feature_space * kNumLabels, 0.0);
  last_.assign(options_.feature_space * kNumLabels, 0);
}

void CrfExtractor::Features(const std::vector<std::string>& tokens, int pos,
                            std::vector<uint64_t>* out) const {
  out->clear();
  const std::string& tok = tokens[static_cast<size_t>(pos)];
  auto add = [&](const std::string& f) {
    out->push_back(Fnv1a64(f) % options_.feature_space);
  };
  add("w=" + ToLower(tok));
  add(pos > 0 ? "w-1=" + ToLower(tokens[static_cast<size_t>(pos - 1)]) : "w-1=<s>");
  add(pos + 1 < static_cast<int>(tokens.size())
          ? "w+1=" + ToLower(tokens[static_cast<size_t>(pos + 1)])
          : "w+1=</s>");
  // Prefixes/suffixes up to 3 characters.
  for (size_t len = 1; len <= 3 && len <= tok.size(); ++len) {
    add("pre=" + ToLower(tok.substr(0, len)));
    add("suf=" + ToLower(tok.substr(tok.size() - len)));
  }
  // Shape features (the paper's regex-flag features).
  bool has_digit = false;
  bool all_digit = !tok.empty();
  bool has_punct = false;
  bool all_caps = !tok.empty();
  for (char c : tok) {
    if (IsAsciiDigit(c)) {
      has_digit = true;
    } else {
      all_digit = false;
    }
    if (!IsAsciiAlnum(c)) has_punct = true;
    if (!IsAsciiUpper(c)) all_caps = false;
  }
  if (has_digit) add("f=has_digit");
  if (all_digit) add("f=all_digit");
  if (has_punct) add("f=has_punct");
  if (all_caps) add("f=all_caps");
  if (IsCapitalized(tok)) add("f=cap");
  if (pos == 0) add("f=bos");
}

double CrfExtractor::EmissionScore(const std::vector<uint64_t>& feats, int label,
                                   bool averaged) const {
  double score = 0;
  for (uint64_t f : feats) {
    size_t idx = f * kNumLabels + static_cast<size_t>(label);
    score += averaged ? acc_[idx] : weights_[idx];
  }
  return score;
}

void CrfExtractor::Update(const std::vector<uint64_t>& feats, int label,
                          double delta) {
  for (uint64_t f : feats) {
    size_t idx = f * kNumLabels + static_cast<size_t>(label);
    // Lazy averaging: fold in the weight's contribution since last touch.
    acc_[idx] += weights_[idx] * static_cast<double>(step_ - last_[idx]);
    last_[idx] = step_;
    weights_[idx] += delta;
  }
}

std::vector<int> CrfExtractor::Decode(const std::vector<std::string>& tokens,
                                      bool averaged) const {
  const int n = static_cast<int>(tokens.size());
  if (n == 0) return {};
  std::vector<std::array<double, kNumLabels>> score(static_cast<size_t>(n));
  std::vector<std::array<int, kNumLabels>> back(static_cast<size_t>(n));
  std::vector<uint64_t> feats;
  // Invalid transitions: O -> I is disallowed (I must follow B or I).
  auto trans = [&](int from, int to) {
    if (to == 2 && from == 0) return -1e9;
    return averaged ? transition_acc_[from][to] : transition_[from][to];
  };
  Features(tokens, 0, &feats);
  for (int y = 0; y < kNumLabels; ++y) {
    score[0][static_cast<size_t>(y)] = EmissionScore(feats, y, averaged);
    if (y == 2) score[0][2] = -1e9;  // sentence cannot start with I
  }
  for (int i = 1; i < n; ++i) {
    Features(tokens, i, &feats);
    for (int y = 0; y < kNumLabels; ++y) {
      double emit = EmissionScore(feats, y, averaged);
      double best = -1e18;
      int best_prev = 0;
      for (int p = 0; p < kNumLabels; ++p) {
        double s = score[static_cast<size_t>(i - 1)][static_cast<size_t>(p)] +
                   trans(p, y);
        if (s > best) {
          best = s;
          best_prev = p;
        }
      }
      score[static_cast<size_t>(i)][static_cast<size_t>(y)] = best + emit;
      back[static_cast<size_t>(i)][static_cast<size_t>(y)] = best_prev;
    }
  }
  std::vector<int> labels(static_cast<size_t>(n));
  int best_last = 0;
  for (int y = 1; y < kNumLabels; ++y) {
    if (score[static_cast<size_t>(n - 1)][static_cast<size_t>(y)] >
        score[static_cast<size_t>(n - 1)][static_cast<size_t>(best_last)]) {
      best_last = y;
    }
  }
  labels[static_cast<size_t>(n - 1)] = best_last;
  for (int i = n - 1; i > 0; --i) {
    labels[static_cast<size_t>(i - 1)] =
        back[static_cast<size_t>(i)][static_cast<size_t>(labels[static_cast<size_t>(i)])];
  }
  return labels;
}

void CrfExtractor::Train(const std::vector<LabeledSentence>& data) {
  Rng rng(options_.seed);
  std::vector<size_t> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<uint64_t> feats;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(order);
    for (size_t idx : order) {
      const LabeledSentence& s = data[idx];
      ++step_;
      std::vector<int> predicted = Decode(s.tokens, /*averaged=*/false);
      if (predicted == s.bio) continue;
      for (size_t i = 0; i < s.tokens.size(); ++i) {
        if (predicted[i] == s.bio[i]) continue;
        Features(s.tokens, static_cast<int>(i), &feats);
        Update(feats, s.bio[i], +1.0);
        Update(feats, predicted[i], -1.0);
      }
      for (size_t i = 1; i < s.tokens.size(); ++i) {
        if (predicted[i] == s.bio[i] && predicted[i - 1] == s.bio[i - 1]) continue;
        transition_[s.bio[i - 1]][s.bio[i]] += 1.0;
        transition_[predicted[i - 1]][predicted[i]] -= 1.0;
      }
    }
  }
  // Finalise the averages.
  ++step_;
  for (size_t idx = 0; idx < weights_.size(); ++idx) {
    acc_[idx] += weights_[idx] * static_cast<double>(step_ - last_[idx]);
    last_[idx] = step_;
    acc_[idx] /= static_cast<double>(step_);
  }
  for (int p = 0; p < kNumLabels; ++p) {
    for (int y = 0; y < kNumLabels; ++y) {
      // Transitions were not lazily averaged; use the final values scaled.
      transition_acc_[p][y] = transition_[p][y];
    }
  }
  trained_ = true;
}

std::vector<int> CrfExtractor::Predict(const std::vector<std::string>& tokens) const {
  return Decode(tokens, /*averaged=*/trained_);
}

std::vector<std::pair<int, int>> CrfExtractor::ExtractSpans(
    const std::vector<std::string>& tokens) const {
  std::vector<int> labels = Predict(tokens);
  std::vector<std::pair<int, int>> spans;
  int begin = -1;
  for (int i = 0; i <= static_cast<int>(labels.size()); ++i) {
    int y = i < static_cast<int>(labels.size()) ? labels[static_cast<size_t>(i)] : 0;
    if (y == 1) {  // B
      if (begin >= 0) spans.emplace_back(begin, i - 1);
      begin = i;
    } else if (y == 2) {  // I
      if (begin < 0) begin = i;  // tolerate stray I
    } else {
      if (begin >= 0) spans.emplace_back(begin, i - 1);
      begin = -1;
    }
  }
  return spans;
}

std::vector<std::string> CrfExtractor::ExtractMentions(
    const AnnotatedCorpus& corpus) const {
  std::vector<std::string> mentions;
  for (const Document& doc : corpus.docs) {
    for (const Sentence& s : doc.sentences) {
      std::vector<std::string> tokens;
      tokens.reserve(s.tokens.size());
      for (const Token& t : s.tokens) tokens.push_back(t.text);
      for (auto [begin, end] : ExtractSpans(tokens)) {
        mentions.push_back(s.SpanText(begin, end));
      }
    }
  }
  return mentions;
}

std::vector<CrfExtractor::LabeledSentence> CrfExtractor::MakeTrainingData(
    const std::vector<const Document*>& docs,
    const std::vector<std::string>& gold_mentions) {
  // Tokenised gold mentions, longest first (greedy labelling).
  std::vector<std::vector<std::string>> gold;
  for (const auto& m : gold_mentions) gold.push_back(SplitWhitespace(m));
  std::sort(gold.begin(), gold.end(), [](const auto& a, const auto& b) {
    return a.size() > b.size();
  });
  std::vector<LabeledSentence> data;
  for (const Document* doc : docs) {
    for (const Sentence& s : doc->sentences) {
      LabeledSentence ls;
      for (const Token& t : s.tokens) ls.tokens.push_back(t.text);
      ls.bio.assign(ls.tokens.size(), 0);
      for (const auto& mention : gold) {
        if (mention.empty()) continue;
        for (size_t i = 0; i + mention.size() <= ls.tokens.size(); ++i) {
          bool match = true;
          for (size_t j = 0; j < mention.size(); ++j) {
            if (!EqualsIgnoreCase(ls.tokens[i + j], mention[j]) ||
                ls.bio[i + j] != 0) {
              match = false;
              break;
            }
          }
          if (!match) continue;
          ls.bio[i] = 1;
          for (size_t j = 1; j < mention.size(); ++j) ls.bio[i + j] = 2;
        }
      }
      data.push_back(std::move(ls));
    }
  }
  return data;
}

}  // namespace koko

#include "extract/metrics.h"

#include "util/string_util.h"

namespace koko {

std::string NormalizeMention(const std::string& text) {
  std::string lower = ToLower(Trim(text));
  // Collapse whitespace runs.
  std::string out;
  bool prev_space = false;
  for (char c : lower) {
    if (IsAsciiSpace(c)) {
      if (!prev_space && !out.empty()) out += ' ';
      prev_space = true;
    } else {
      out += c;
      prev_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

PRF ScoreExtractions(const std::set<std::string>& gold,
                     const std::set<std::string>& predicted) {
  PRF result;
  for (const auto& p : predicted) {
    if (gold.count(p) > 0) {
      ++result.tp;
    } else {
      ++result.fp;
    }
  }
  for (const auto& g : gold) {
    if (predicted.count(g) == 0) ++result.fn;
  }
  if (result.tp + result.fp > 0) {
    result.precision = static_cast<double>(result.tp) /
                       static_cast<double>(result.tp + result.fp);
  }
  if (result.tp + result.fn > 0) {
    result.recall =
        static_cast<double>(result.tp) / static_cast<double>(result.tp + result.fn);
  }
  if (result.precision + result.recall > 0) {
    result.f1 = 2 * result.precision * result.recall /
                (result.precision + result.recall);
  }
  return result;
}

PRF ScoreExtractionLists(const std::vector<std::string>& gold,
                         const std::vector<std::string>& predicted) {
  std::set<std::string> g;
  std::set<std::string> p;
  for (const auto& s : gold) g.insert(NormalizeMention(s));
  for (const auto& s : predicted) p.insert(NormalizeMention(s));
  return ScoreExtractions(g, p);
}

}  // namespace koko

#include "extract/odin.h"

#include <algorithm>
#include <set>

#include "extract/ike.h"  // NounPhraseChunks
#include "util/string_util.h"

namespace koko {

std::vector<std::string> OdinExtractor::Run(const AnnotatedCorpus& corpus,
                                            const std::vector<OdinRule>& rules,
                                            RunStats* stats) const {
  std::vector<OdinRule> ordered = rules;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const OdinRule& a, const OdinRule& b) {
                     return a.priority < b.priority;
                   });
  std::set<std::string> mentions;
  RunStats local;
  bool changed = true;
  // Iterative application until fixpoint, as Odin's runtime does. Each
  // iteration re-scans the full corpus for every rule (no indexing).
  while (changed) {
    changed = false;
    ++local.iterations;
    for (const OdinRule& rule : ordered) {
      for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
        const Sentence& s = corpus.sentence(sid);
        ++local.sentence_visits;
        if (rule.kind == OdinRule::Kind::kDependency) {
          std::vector<int> nodes = MatchPathInSentence(s, rule.path);
          if (nodes.empty()) continue;
          // Mention = the NP chunk containing the matched node (or the
          // token itself when it sits outside any chunk).
          std::vector<std::pair<int, int>> chunks = NounPhraseChunks(s);
          for (int t : nodes) {
            std::string text = s.tokens[t].text;
            for (auto [b, e] : chunks) {
              if (t >= b && t <= e) {
                text = s.SpanText(b, e);
                break;
              }
            }
            if (mentions.insert(text).second) changed = true;
          }
        } else {
          // Surface trigger.
          const int m = static_cast<int>(rule.trigger.size());
          std::vector<std::pair<int, int>> chunks = NounPhraseChunks(s);
          for (int i = 0; i + m <= s.size(); ++i) {
            bool ok = true;
            for (int j = 0; j < m; ++j) {
              if (!EqualsIgnoreCase(s.tokens[i + j].text,
                                    rule.trigger[static_cast<size_t>(j)])) {
                ok = false;
                break;
              }
            }
            if (!ok) continue;
            // Adjacent NP chunk.
            for (auto [b, e] : chunks) {
              bool adjacent = rule.capture_left ? (e == i - 1) : (b == i + m);
              if (adjacent) {
                if (mentions.insert(s.SpanText(b, e)).second) changed = true;
                break;
              }
            }
          }
        }
      }
    }
  }
  if (stats != nullptr) *stats = local;
  return std::vector<std::string>(mentions.begin(), mentions.end());
}

}  // namespace koko

#ifndef KOKO_EXTRACT_NELL_H_
#define KOKO_EXTRACT_NELL_H_

#include <string>
#include <vector>

#include "text/document.h"

namespace koko {

/// \brief NELL-style conservative pattern bootstrapper (§5, §6.1).
///
/// Coupled pattern learning for one category: starting from seed
/// instances, learn left/right context patterns that co-occur with seeds,
/// promote only high-precision patterns, extract instances supported by at
/// least two promoted patterns, and iterate a few rounds. The conservatism
/// (high promotion threshold, multi-pattern support) reproduces NELL's
/// reported behaviour on rare entities: high precision, very low recall.
class NellExtractor {
 public:
  struct Options {
    int iterations = 3;
    int patterns_per_round = 12;
    double min_pattern_precision = 0.5;
    int min_pattern_support = 1;  // seed mentions a pattern must cover
    int min_instance_support = 1; // promoted patterns an instance needs
  };

  NellExtractor() : NellExtractor(Options()) {}
  explicit NellExtractor(Options options) : options_(options) {}

  /// Bootstraps the category from `seeds`; returns all learned instances
  /// (excluding the seeds themselves).
  std::vector<std::string> Bootstrap(const AnnotatedCorpus& corpus,
                                     const std::vector<std::string>& seeds) const;

  /// Patterns promoted in the last Bootstrap call (for inspection).
  const std::vector<std::string>& promoted_patterns() const { return promoted_; }

 private:
  Options options_;
  mutable std::vector<std::string> promoted_;
};

}  // namespace koko

#endif  // KOKO_EXTRACT_NELL_H_

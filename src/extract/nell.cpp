#include "extract/nell.h"

#include <algorithm>
#include <map>
#include <set>

#include "extract/ike.h"  // NounPhraseChunks
#include "extract/metrics.h"
#include "util/string_util.h"

namespace koko {

namespace {

// A mention candidate with its left/right context keys.
struct Candidate {
  std::string text;       // normalised NP text
  std::string left_ctx;   // "L:w-2 w-1"
  std::string right_ctx;  // "R:w+1 w+2"
};

std::vector<Candidate> CollectCandidates(const AnnotatedCorpus& corpus) {
  std::vector<Candidate> out;
  for (uint32_t sid = 0; sid < corpus.NumSentences(); ++sid) {
    const Sentence& s = corpus.sentence(sid);
    for (auto [b, e] : NounPhraseChunks(s)) {
      Candidate c;
      c.text = NormalizeMention(s.SpanText(b, e));
      std::string l1 = b >= 1 ? ToLower(s.tokens[b - 1].text) : "<s>";
      std::string l2 = b >= 2 ? ToLower(s.tokens[b - 2].text) : "<s>";
      c.left_ctx = "L:" + l2 + " " + l1;
      std::string r1 = e + 1 < s.size() ? ToLower(s.tokens[e + 1].text) : "</s>";
      std::string r2 = e + 2 < s.size() ? ToLower(s.tokens[e + 2].text) : "</s>";
      c.right_ctx = "R:" + r1 + " " + r2;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> NellExtractor::Bootstrap(
    const AnnotatedCorpus& corpus, const std::vector<std::string>& seeds) const {
  promoted_.clear();
  std::set<std::string> known;
  std::set<std::string> seed_set;
  for (const auto& s : seeds) {
    known.insert(NormalizeMention(s));
    seed_set.insert(NormalizeMention(s));
  }
  std::vector<Candidate> candidates = CollectCandidates(corpus);
  std::set<std::string> promoted_patterns;

  for (int round = 0; round < options_.iterations; ++round) {
    // 1. Score context patterns against the current instance set.
    std::map<std::string, std::pair<int, int>> stats;  // pattern -> (hits, total)
    for (const Candidate& c : candidates) {
      bool is_instance = known.count(c.text) > 0;
      for (const std::string* ctx : {&c.left_ctx, &c.right_ctx}) {
        auto& [hits, total] = stats[*ctx];
        ++total;
        if (is_instance) ++hits;
      }
    }
    // 2. Promote high-precision, sufficiently supported patterns.
    std::vector<std::pair<double, std::string>> ranked;
    for (const auto& [pattern, ht] : stats) {
      auto [hits, total] = ht;
      if (hits < options_.min_pattern_support) continue;
      double precision = static_cast<double>(hits) / static_cast<double>(total);
      if (precision < options_.min_pattern_precision) continue;
      if (promoted_patterns.count(pattern) > 0) continue;
      ranked.push_back({precision, pattern});
    }
    std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    int promoted_now = 0;
    for (const auto& [precision, pattern] : ranked) {
      if (promoted_now >= options_.patterns_per_round) break;
      promoted_patterns.insert(pattern);
      ++promoted_now;
    }
    if (promoted_now == 0) break;

    // 3. Extract instances supported by enough promoted patterns.
    std::map<std::string, std::set<std::string>> support;
    for (const Candidate& c : candidates) {
      if (known.count(c.text) > 0) continue;
      if (promoted_patterns.count(c.left_ctx) > 0) {
        support[c.text].insert(c.left_ctx);
      }
      if (promoted_patterns.count(c.right_ctx) > 0) {
        support[c.text].insert(c.right_ctx);
      }
    }
    for (const auto& [text, patterns] : support) {
      if (static_cast<int>(patterns.size()) >= options_.min_instance_support) {
        known.insert(text);
      }
    }
  }

  promoted_.assign(promoted_patterns.begin(), promoted_patterns.end());
  std::vector<std::string> learned;
  for (const auto& inst : known) {
    if (seed_set.count(inst) == 0) learned.push_back(inst);
  }
  return learned;
}

}  // namespace koko

#include "index/path.h"

#include <algorithm>

#include "regex/regex.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace koko {

bool NodeConstraint::Matches(const Sentence& s, int tid) const {
  const Token& tok = s.tokens[tid];
  if (dep && tok.label != *dep) return false;
  if (pos && tok.pos != *pos) return false;
  if (word && tok.text != *word) return false;
  if (etype && tok.etype != *etype) return false;
  if (any_entity && tok.etype == EntityType::kNone) return false;
  if (regex) {
    auto re = Regex::Compile(*regex);
    if (!re.ok() || !re->FullMatch(tok.text)) return false;
  }
  return true;
}

std::string NodeConstraint::ToString() const {
  // Emits valid query syntax: the parse label (or a quoted word, or `*`)
  // as the step label, everything else as bracketed conditions.
  std::string label;
  std::vector<std::string> conds;
  if (dep) {
    label = std::string(DepLabelName(*dep));
    if (word) conds.push_back("text=\"" + *word + "\"");
  } else if (word && !pos && !regex && !etype && !any_entity) {
    return "\"" + *word + "\"";
  } else {
    label = "*";
    if (word) conds.push_back("text=\"" + *word + "\"");
  }
  if (pos) conds.push_back("@pos=\"" + std::string(PosTagName(*pos)) + "\"");
  if (regex) conds.push_back("@regex=\"" + *regex + "\"");
  if (etype) conds.push_back("etype=\"" + std::string(EntityTypeName(*etype)) + "\"");
  if (any_entity) conds.push_back("etype=\"Entity\"");
  if (conds.empty()) return label;
  return label + "[" + Join(conds, ", ") + "]";
}

std::string PathQuery::ToString() const {
  std::string out;
  for (const PathStep& step : steps) {
    out += step.axis == PathStep::Axis::kChild ? "/" : "//";
    out += step.constraint.ToString();
  }
  return out;
}

std::vector<int> MatchPathInSentence(const Sentence& s, const PathQuery& path) {
  std::vector<int> result;
  if (s.size() == 0 || path.empty()) return result;

  // Node sets per step; -1 denotes the virtual node above the root.
  std::vector<int> current = {-1};
  std::vector<char> in_set(static_cast<size_t>(s.size()) + 1, 0);

  auto children_of = [&](int node) -> std::vector<int> {
    if (node == -1) return {s.root};
    return s.children[node];
  };

  for (const PathStep& step : path.steps) {
    std::vector<int> next;
    std::fill(in_set.begin(), in_set.end(), 0);
    auto add = [&](int t) {
      if (!in_set[static_cast<size_t>(t) + 1]) {
        in_set[static_cast<size_t>(t) + 1] = 1;
        next.push_back(t);
      }
    };
    for (int node : current) {
      if (step.axis == PathStep::Axis::kChild) {
        for (int child : children_of(node)) {
          if (step.constraint.Matches(s, child)) add(child);
        }
      } else {
        // Descendant axis: DFS below `node`.
        std::vector<int> stack = children_of(node);
        while (!stack.empty()) {
          int t = stack.back();
          stack.pop_back();
          if (step.constraint.Matches(s, t)) add(t);
          for (int child : s.children[t]) stack.push_back(child);
        }
      }
    }
    current = std::move(next);
    if (current.empty()) return {};
  }
  std::sort(current.begin(), current.end());
  return current;
}

bool SentenceHasPathMatch(const Sentence& s, const PathQuery& path) {
  return !MatchPathInSentence(s, path).empty();
}

}  // namespace koko

#include "index/path_lookup.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"

namespace koko {

namespace {

// Depth relationship between two positions on a path: the number of steps
// between them, and whether it is exact (all child axes) or a lower bound
// (some descendant axis in between).
struct DepthDelta {
  uint32_t steps = 0;
  bool exact = true;
};

DepthDelta DeltaBetween(const PathQuery& path, int from_step, int to_step) {
  // Steps (from_step, to_step] contribute; a child axis adds exactly 1,
  // a descendant axis at least 1.
  DepthDelta d;
  for (int i = from_step + 1; i <= to_step; ++i) {
    d.steps += 1;
    if (path.steps[static_cast<size_t>(i)].axis == PathStep::Axis::kDescendant) {
      d.exact = false;
    }
  }
  return d;
}

// Joins ancestor postings A with descendant postings B: keeps elements of B
// that have some ancestor in A at the required depth relationship.
PostingList JoinAncestorDescendant(const PostingList& ancestors,
                                   const PostingList& descendants,
                                   const DepthDelta& delta) {
  // Group ancestors by sentence for locality.
  std::unordered_map<uint32_t, std::vector<const Quintuple*>> by_sid;
  for (const Quintuple& a : ancestors) by_sid[a.sid].push_back(&a);
  PostingList out;
  for (const Quintuple& b : descendants) {
    auto it = by_sid.find(b.sid);
    if (it == by_sid.end()) continue;
    for (const Quintuple* a : it->second) {
      if (a->left <= b.left && a->right >= b.right) {
        bool depth_ok = delta.exact ? (b.depth == a->depth + delta.steps)
                                    : (b.depth >= a->depth + delta.steps);
        if (depth_ok) {
          out.push_back(b);
          break;
        }
      }
    }
  }
  return out;
}

// Joins two posting lists on token identity (x1 = x2 and y1 = y2).
PostingList JoinSameToken(const PostingList& a, const PostingList& b) {
  std::unordered_set<uint64_t> tokens;
  tokens.reserve(b.size());
  for (const Quintuple& q : b) {
    tokens.insert((static_cast<uint64_t>(q.sid) << 32) | q.tid);
  }
  PostingList out;
  for (const Quintuple& q : a) {
    if (tokens.count((static_cast<uint64_t>(q.sid) << 32) | q.tid) > 0) {
      out.push_back(q);
    }
  }
  return out;
}

}  // namespace

PathQuery ProjectParseLabelPath(const PathQuery& path) {
  PathQuery out;
  for (const PathStep& step : path.steps) {
    PathStep s;
    s.axis = step.axis;
    s.constraint.dep = step.constraint.dep;
    out.steps.push_back(std::move(s));
  }
  return out;
}

PathQuery ProjectPosPath(const PathQuery& path) {
  PathQuery out;
  for (const PathStep& step : path.steps) {
    PathStep s;
    s.axis = step.axis;
    s.constraint.pos = step.constraint.pos;
    out.steps.push_back(std::move(s));
  }
  return out;
}

bool IsAllWildcard(const PathQuery& path) {
  for (const PathStep& step : path.steps) {
    if (step.constraint.dep || step.constraint.pos || step.constraint.word) {
      return false;
    }
  }
  return true;
}

PathLookupResult KokoPathLookup(const KokoIndex& index, const PathQuery& path,
                                const SidList* sid_filter) {
  PathLookupResult result;
  if (path.empty()) {
    result.unconstrained = true;
    return result;
  }
  const int last = static_cast<int>(path.steps.size()) - 1;

  // ---- Decompose (Example 4.2) ----
  bool has_pl = false;
  bool has_pos = false;
  std::vector<int> word_steps;
  for (int i = 0; i <= last; ++i) {
    const NodeConstraint& c = path.steps[static_cast<size_t>(i)].constraint;
    if (c.dep) has_pl = true;
    if (c.pos) has_pos = true;
    if (c.word) word_steps.push_back(i);
  }
  if (!has_pl && !has_pos && word_steps.empty()) {
    result.unconstrained = true;
    return result;
  }

  // ---- P1, P2: hierarchy lookups ----
  bool have_p = false;
  PostingList p;
  if (has_pl) {
    p = index.LookupParseLabelPath(ProjectParseLabelPath(path), sid_filter);
    have_p = true;
    if (p.empty()) return result;  // path absent -> empty answer (§4.2.2)
  }
  if (has_pos) {
    PostingList p2 = index.LookupPosPath(ProjectPosPath(path), sid_filter);
    if (p2.empty()) return result;
    p = have_p ? JoinSameToken(p, p2) : std::move(p2);
    have_p = true;
    if (p.empty()) return result;
  }

  // ---- Q: word-index lookups joined along the word path (Example 4.4) ----
  bool have_q = false;
  PostingList q;
  int prev_word_step = -1;
  for (int step : word_steps) {
    PostingList postings = index.LookupWord(
        *path.steps[static_cast<size_t>(step)].constraint.word, sid_filter);
    if (postings.empty()) return result;
    // First word: depth constraint relative to the (virtual) root.
    if (!have_q) {
      DepthDelta from_root = DeltaBetween(path, -1, step);
      PostingList filtered;
      for (const Quintuple& quint : postings) {
        // Token depth is 0-based from the sentence root, which sits one
        // step below the virtual root: a path of k steps reaches depth k-1.
        uint32_t min_depth = from_root.steps - 1;
        bool ok = from_root.exact ? quint.depth == min_depth
                                  : quint.depth >= min_depth;
        if (ok) filtered.push_back(quint);
      }
      q = std::move(filtered);
      have_q = true;
    } else {
      q = JoinAncestorDescendant(q, postings,
                                 DeltaBetween(path, prev_word_step, step));
    }
    if (q.empty()) return result;
    prev_word_step = step;
  }

  // ---- Final join of P and Q (§4.2.2, two cases) ----
  if (have_p && have_q) {
    if (prev_word_step == last) {
      // Last element is a word: join on the same token.
      result.postings = JoinSameToken(p, q);
    } else {
      // The last word is an ancestor of the last step's tokens: keep the
      // quintuples of P that have a Q-ancestor at the right depth (§4.2.2).
      result.postings =
          JoinAncestorDescendant(q, p, DeltaBetween(path, prev_word_step, last));
    }
    result.exact_last = true;
    return result;
  }
  if (have_p) {
    result.postings = std::move(p);
    result.exact_last = true;
    return result;
  }
  // Only the word path constrained the lookup.
  result.postings = std::move(q);
  result.exact_last = (prev_word_step == last);
  return result;
}

PathSidLookupResult KokoPathSidLookup(const KokoIndex& index,
                                      const PathQuery& path,
                                      bool use_semi_join) {
  PathSidLookupResult result;
  if (path.empty()) {
    result.unconstrained = true;
    return result;
  }
  // Mirror KokoPathLookup's decomposition to pick the cheapest plan that
  // yields the identical sid set.
  bool has_pl = false;
  bool has_pos = false;
  bool has_word = false;
  for (const PathStep& step : path.steps) {
    if (step.constraint.dep) has_pl = true;
    if (step.constraint.pos) has_pos = true;
    if (step.constraint.word) has_word = true;
  }
  if (!has_pl && !has_pos && !has_word) {
    result.unconstrained = true;
    return result;
  }
  if (has_pl && !has_pos && !has_word) {
    result.sids = index.PlPathSids(ProjectParseLabelPath(path));
    return result;
  }
  if (has_pos && !has_pl && !has_word) {
    result.sids = index.PosPathSids(ProjectPosPath(path));
    return result;
  }
  // Cross-index joins (or word-path depth filters) operate on quintuples.
  if (!use_semi_join) {
    // Quintuple fallback without the sid-level pre-filter: correct (the
    // §4.2.2 joins are self-contained) and cheaper when the projections
    // barely prune — the plan choice the planner makes per query.
    PathLookupResult full = KokoPathLookup(index, path);
    result.unconstrained = full.unconstrained;
    result.sids = SidList::FromSorted(SidsOfPostings(full.postings));
    return result;
  }
  // Sid-level semi-join first: the answer's sids lie in the intersection
  // of every consulted index's sid projection (PL path, POS path, each
  // word's list), which is cheap to compute from the precomputed lists.
  // An empty intersection proves the answer empty with no quintuple ever
  // materialised; otherwise it becomes the sid filter that prunes every
  // posting list before the §4.2.2 joins.
  std::vector<SidList> owned;
  owned.reserve(2);
  std::vector<SidSetView> projections;
  if (has_pl) {
    owned.push_back(index.PlPathSids(ProjectParseLabelPath(path)));
  }
  if (has_pos) {
    owned.push_back(index.PosPathSids(ProjectPosPath(path)));
  }
  for (const PathStep& step : path.steps) {
    if (!step.constraint.word) continue;
    // Per-word projections stay block compressed; the semi-join
    // intersects them in place alongside the decoded path projections.
    const BlockList* word_sids = index.WordSids(*step.constraint.word);
    if (word_sids == nullptr) return result;  // word absent -> empty answer
    projections.push_back(word_sids);
  }
  for (const SidList& list : owned) projections.push_back(&list);
  SidList semi = IntersectAllViews(std::move(projections));
  if (semi.empty()) return result;
  PathLookupResult full = KokoPathLookup(index, path, &semi);
  result.unconstrained = full.unconstrained;
  result.sids = SidList::FromSorted(SidsOfPostings(full.postings));
  return result;
}

}  // namespace koko

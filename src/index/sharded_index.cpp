#include "index/sharded_index.h"

#include <algorithm>
#include <atomic>
#include <fstream>

#include "storage/serde.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace koko {

namespace {

// Manifest v2 records each shard image's byte length next to its sid
// range, so Load can hand every shard a private reader positioned at its
// extent and deserialize the shards in parallel. v1 manifests (no extents)
// still load, sequentially.
constexpr uint32_t kShardedMagic = 0x4b534844;  // "KSHD"
constexpr uint32_t kShardedVersion = 2;
constexpr uint32_t kShardedVersionNoExtents = 1;

std::vector<ShardedKokoIndex::ShardRange> MakeRanges(
    const ShardedKokoIndex::Options& options, uint32_t num_sentences) {
  std::vector<ShardedKokoIndex::ShardRange> ranges;
  if (!options.boundaries.empty()) {
    KOKO_CHECK(options.boundaries.size() >= 2);
    KOKO_CHECK(options.boundaries.front() == 0);
    KOKO_CHECK(options.boundaries.back() == num_sentences);
    for (size_t i = 0; i + 1 < options.boundaries.size(); ++i) {
      KOKO_CHECK(options.boundaries[i] <= options.boundaries[i + 1]);
      ranges.push_back({options.boundaries[i], options.boundaries[i + 1]});
    }
    return ranges;
  }
  const size_t k = std::max<size_t>(options.num_shards, 1);
  for (size_t i = 0; i < k; ++i) {
    ranges.push_back(
        {static_cast<uint32_t>(i * num_sentences / k),
         static_cast<uint32_t>((i + 1) * num_sentences / k)});
  }
  return ranges;
}

}  // namespace

std::unique_ptr<ShardedKokoIndex> ShardedKokoIndex::Build(
    const AnnotatedCorpus& corpus, const Options& options) {
  WallTimer timer;
  auto index = std::unique_ptr<ShardedKokoIndex>(new ShardedKokoIndex());
  index->ranges_ =
      MakeRanges(options, static_cast<uint32_t>(corpus.NumSentences()));
  const size_t k = index->ranges_.size();
  index->shards_.resize(k);

  const size_t workers = std::min(
      options.build_threads == 0 ? k : options.build_threads, k);
  if (workers <= 1) {
    for (size_t i = 0; i < k; ++i) {
      index->shards_[i] = KokoIndex::Build(corpus, index->ranges_[i].begin,
                                           index->ranges_[i].end);
    }
  } else {
    // Shards are independent: workers draw shard ids from an atomic cursor
    // and build into their own slot, so the result is identical to the
    // sequential build regardless of scheduling — on a caller-shared pool
    // (options.pool, interleaving with other fork/join sections) or a
    // transient build-only pool.
    std::atomic<size_t> cursor{0};
    auto build_shards = [&](size_t) {
      for (;;) {
        size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= k) return;
        index->shards_[i] = KokoIndex::Build(corpus, index->ranges_[i].begin,
                                             index->ranges_[i].end);
      }
    };
    if (options.pool != nullptr) {
      options.pool->ParallelFor(workers, build_shards);
    } else {
      ThreadPool pool(workers);
      pool.Dispatch(build_shards);
    }
  }
  index->build_seconds_ = timer.ElapsedSeconds();
  return index;
}

// ---- Aggregated lookups ------------------------------------------------------

PostingList ShardedKokoIndex::LookupWord(std::string_view token) const {
  PostingList out;
  for (const auto& shard : shards_) {
    PostingList part = shard->LookupWord(token);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<EntityPosting> ShardedKokoIndex::LookupEntityText(
    std::string_view text) const {
  std::vector<EntityPosting> out;
  for (const auto& shard : shards_) {
    std::vector<EntityPosting> part = shard->LookupEntityText(text);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<EntityPosting> ShardedKokoIndex::AllEntities() const {
  std::vector<EntityPosting> out;
  for (const auto& shard : shards_) {
    const auto& part = shard->AllEntities();
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<EntityPosting> ShardedKokoIndex::EntitiesOfType(
    EntityType type) const {
  std::vector<EntityPosting> out;
  for (const auto& shard : shards_) {
    const auto& part = shard->EntitiesOfType(type);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

namespace {

// Concatenates per-shard sid lists (disjoint ascending ranges) in order.
// The materialising variant takes decoded per-shard lists by value (for
// lookups that compute them); the block variant decodes each shard's
// block-compressed projection straight into the output (nullptr = shard
// has none).
template <typename PerShard>
SidList ConcatSids(size_t num_shards, const PerShard& per_shard) {
  std::vector<uint32_t> ids;
  for (size_t i = 0; i < num_shards; ++i) {
    const SidList part = per_shard(i);
    ids.insert(ids.end(), part.begin(), part.end());
  }
  return SidList::FromSorted(std::move(ids));
}

template <typename PerShard>
SidList ConcatBlockSids(size_t num_shards, const PerShard& per_shard) {
  size_t total = 0;
  for (size_t i = 0; i < num_shards; ++i) {
    const BlockList* part = per_shard(i);
    if (part != nullptr) total += part->size();
  }
  std::vector<uint32_t> ids;
  ids.reserve(total);
  uint32_t buf[BlockList::kBlockSids];
  for (size_t i = 0; i < num_shards; ++i) {
    const BlockList* part = per_shard(i);
    if (part == nullptr) continue;
    for (size_t b = 0; b < part->NumBlocks(); ++b) {
      const size_t n = part->DecodeBlock(b, buf);
      ids.insert(ids.end(), buf, buf + n);
    }
  }
  return SidList::FromSorted(std::move(ids));
}

}  // namespace

SidList ShardedKokoIndex::WordSids(std::string_view token) const {
  return ConcatBlockSids(shards_.size(),
                         [&](size_t i) { return shards_[i]->WordSids(token); });
}

size_t ShardedKokoIndex::CountWordSids(std::string_view token) const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->CountWordSids(token);
  return n;
}

SidList ShardedKokoIndex::AllEntitySids() const {
  return ConcatBlockSids(shards_.size(),
                         [&](size_t i) { return &shards_[i]->AllEntitySids(); });
}

SidList ShardedKokoIndex::EntityTypeSids(EntityType type) const {
  return ConcatBlockSids(
      shards_.size(), [&](size_t i) { return &shards_[i]->EntityTypeSids(type); });
}

SidList ShardedKokoIndex::PlPathSids(const PathQuery& path) const {
  return ConcatSids(shards_.size(),
                    [&](size_t i) { return shards_[i]->PlPathSids(path); });
}

SidList ShardedKokoIndex::PosPathSids(const PathQuery& path) const {
  return ConcatSids(shards_.size(),
                    [&](size_t i) { return shards_[i]->PosPathSids(path); });
}

PostingList ShardedKokoIndex::LookupParseLabelPath(const PathQuery& path) const {
  PostingList out;
  for (const auto& shard : shards_) {
    PostingList part = shard->LookupParseLabelPath(path);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

PostingList ShardedKokoIndex::LookupPosPath(const PathQuery& path) const {
  PostingList out;
  for (const auto& shard : shards_) {
    PostingList part = shard->LookupPosPath(path);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

size_t ShardedKokoIndex::CountPlPathNodes(const PathQuery& path) const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->CountPlPathNodes(path);
  return n;
}

size_t ShardedKokoIndex::CountPosPathNodes(const PathQuery& path) const {
  size_t n = 0;
  for (const auto& shard : shards_) n += shard->CountPosPathNodes(path);
  return n;
}

// ---- Introspection / persistence ---------------------------------------------

KokoIndex::Stats ShardedKokoIndex::stats() const {
  KokoIndex::Stats total;
  for (const auto& shard : shards_) {
    const KokoIndex::Stats& s = shard->stats();
    total.num_sentences += s.num_sentences;
    total.num_tokens += s.num_tokens;
    total.num_entities += s.num_entities;
    total.pl_trie_nodes += s.pl_trie_nodes;
    total.pos_trie_nodes += s.pos_trie_nodes;
  }
  total.build_seconds = build_seconds_;
  return total;
}

size_t ShardedKokoIndex::MemoryUsage() const {
  size_t bytes = ranges_.capacity() * sizeof(ShardRange);
  for (const auto& shard : shards_) bytes += shard->MemoryUsage();
  return bytes;
}

size_t ShardedKokoIndex::SidCacheMemoryUsage() const {
  size_t bytes = 0;
  for (const auto& shard : shards_) bytes += shard->SidCacheMemoryUsage();
  return bytes;
}

bool ShardedKokoIndex::mapped() const {
  if (shards_.empty()) return false;
  for (const auto& shard : shards_) {
    if (!shard->mapped()) return false;
  }
  return true;
}

Status ShardedKokoIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  BinaryWriter writer(&out);
  writer.WriteU32(kShardedMagic);
  writer.WriteU32(kShardedVersion);
  writer.WriteU32(static_cast<uint32_t>(shards_.size()));
  // The manifest (ranges + byte extents) precedes all images so Load can
  // fan out without a second pass over the file. Extents are written as
  // placeholders, the images streamed straight to disk (never buffered in
  // memory), then backpatched from the recorded stream positions.
  std::vector<std::streampos> extent_at(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    writer.WriteU32(ranges_[i].begin);
    writer.WriteU32(ranges_[i].end);
    extent_at[i] = out.tellp();
    writer.WriteU64(0);
  }
  std::vector<uint64_t> extents(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const std::streampos begin = out.tellp();
    KOKO_RETURN_IF_ERROR(shards_[i]->Save(&writer));
    const std::streampos end = out.tellp();
    if (begin == std::streampos(-1) || end == std::streampos(-1)) {
      return Status::IoError("cannot track shard extents on " + path);
    }
    extents[i] = static_cast<uint64_t>(end - begin);
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    out.seekp(extent_at[i]);
    writer.WriteU64(extents[i]);
  }
  out.seekp(0, std::ios::end);
  if (!writer.ok()) return Status::IoError("write failure on " + path);
  return Status::OK();
}

Result<std::unique_ptr<ShardedKokoIndex>> ShardedKokoIndex::Load(
    const std::string& path, const LoadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  BinaryReader reader(&in);
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kShardedMagic) return Status::ParseError("bad shard manifest magic");
  KOKO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (version != kShardedVersion && version != kShardedVersionNoExtents) {
    return Status::ParseError("unsupported shard manifest version " +
                              std::to_string(version));
  }
  KOKO_ASSIGN_OR_RETURN(uint32_t k, reader.ReadU32());
  auto index = std::unique_ptr<ShardedKokoIndex>(new ShardedKokoIndex());
  std::vector<uint64_t> extents;
  for (uint32_t i = 0; i < k; ++i) {
    KOKO_ASSIGN_OR_RETURN(uint32_t begin, reader.ReadU32());
    KOKO_ASSIGN_OR_RETURN(uint32_t end, reader.ReadU32());
    if (begin > end || (i > 0 && begin != index->ranges_.back().end)) {
      return Status::ParseError("shard manifest ranges not contiguous");
    }
    index->ranges_.push_back({begin, end});
    if (version == kShardedVersion) {
      KOKO_ASSIGN_OR_RETURN(uint64_t extent, reader.ReadU64());
      extents.push_back(extent);
    }
  }
  index->shards_.resize(k);

  if (version == kShardedVersionNoExtents) {
    // Legacy manifest: no extents, images must be consumed in order.
    for (uint32_t i = 0; i < k; ++i) {
      KOKO_ASSIGN_OR_RETURN(std::unique_ptr<KokoIndex> shard,
                            KokoIndex::Load(&reader));
      index->shards_[i] = std::move(shard);
    }
    return index;
  }

  // Absolute offset of each shard image, bounds-checked against the file.
  const std::streampos images_begin = in.tellg();
  if (images_begin == std::streampos(-1)) {
    return Status::IoError("cannot locate shard image section");
  }
  in.seekg(0, std::ios::end);
  const std::streampos file_end = in.tellg();
  std::vector<uint64_t> offsets(k);
  uint64_t cursor = static_cast<uint64_t>(images_begin);
  for (uint32_t i = 0; i < k; ++i) {
    offsets[i] = cursor;
    if (extents[i] > static_cast<uint64_t>(file_end) - cursor) {
      return Status::ParseError("shard extent past end of file");
    }
    cursor += extents[i];
  }

  // kMap: one shared read-only mapping of the whole file; each shard
  // parses (and aliases into) its own extent sub-span. An Open failure
  // (unsupported platform/filesystem) leaves `mapping` null and the load
  // degrades to the copying stream path — the file itself is readable,
  // the manifest above already parsed from it.
  std::shared_ptr<MappedFile> mapping;
  if (options.mode == LoadMode::kMap) {
    auto opened = MappedFile::Open(path);
    if (opened.ok()) mapping = std::move(*opened);
  }

  // Shards deserialize independently: each worker opens its own stream
  // (or slices the shared mapping), seeks to its extent, and fills its
  // slot. Results are position-independent, so the loaded index is
  // identical for any worker count.
  const size_t workers = std::min<size_t>(
      options.num_threads == 0 ? k : options.num_threads, k);
  std::atomic<size_t> next{0};
  std::vector<Status> statuses(k, Status::OK());
  auto load_shards = [&](size_t) {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= k) return;
      if (mapping != nullptr) {
        auto span = mapping->span().Slice(offsets[i],
                                          static_cast<size_t>(extents[i]));
        if (!span.ok()) {
          statuses[i] = span.status();
          continue;
        }
        auto shard = KokoIndex::LoadMapped(mapping, *span);
        if (!shard.ok()) {
          statuses[i] = shard.status();
          continue;
        }
        index->shards_[i] = std::move(*shard);
        continue;
      }
      std::ifstream shard_in(path, std::ios::binary);
      if (!shard_in) {
        statuses[i] = Status::IoError("cannot reopen " + path);
        continue;
      }
      shard_in.seekg(static_cast<std::streamoff>(offsets[i]));
      BinaryReader shard_reader(&shard_in);
      auto shard = KokoIndex::Load(&shard_reader);
      if (!shard.ok()) {
        statuses[i] = shard.status();
        continue;
      }
      index->shards_[i] = std::move(*shard);
    }
  };
  if (workers <= 1) {
    load_shards(0);
  } else if (options.pool != nullptr) {
    options.pool->ParallelFor(workers, load_shards);
  } else {
    ThreadPool pool(workers);
    pool.Dispatch(load_shards);
  }
  for (uint32_t i = 0; i < k; ++i) {
    if (!statuses[i].ok()) return statuses[i];
  }
  return index;
}

}  // namespace koko

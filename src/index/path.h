#ifndef KOKO_INDEX_PATH_H_
#define KOKO_INDEX_PATH_H_

#include <optional>
#include <string>
#include <vector>

#include "text/document.h"

namespace koko {

/// Constraint on one node of a path expression. A step like
/// `verb[text="ate", @pos="verb"]` sets several fields at once; a bare
/// label sets exactly one of dep/pos/word depending on how the label name
/// resolves (parse label first, then POS tag, then literal word).
struct NodeConstraint {
  std::optional<DepLabel> dep;
  std::optional<PosTag> pos;
  std::optional<std::string> word;    // exact token text
  std::optional<std::string> regex;   // regex over the token text
  std::optional<EntityType> etype;
  bool any_entity = false;            // etype = any (label "Entity")

  bool IsWildcard() const {
    return !dep && !pos && !word && !regex && !etype && !any_entity;
  }

  /// True when token `tid` of `s` satisfies every set field.
  bool Matches(const Sentence& s, int tid) const;

  std::string ToString() const;
};

/// One step of an XPath-like path: an axis ("/" child or "//" descendant)
/// followed by a constrained label.
struct PathStep {
  enum class Axis { kChild, kDescendant };
  Axis axis = Axis::kChild;
  NodeConstraint constraint;
};

/// A root-anchored path query: /ROOT#l1#...#lm in the paper's notation.
struct PathQuery {
  std::vector<PathStep> steps;

  bool empty() const { return steps.empty(); }
  std::string ToString() const;
};

/// \brief Reference (index-free) path matcher.
///
/// Returns the token ids of `s` that terminate a root-to-node path
/// matching `path`. This is the ground truth the indices approximate:
/// effectiveness experiments and DPLI validation both compare against it.
std::vector<int> MatchPathInSentence(const Sentence& s, const PathQuery& path);

/// True when some token of `s` matches `path`.
bool SentenceHasPathMatch(const Sentence& s, const PathQuery& path);

}  // namespace koko

#endif  // KOKO_INDEX_PATH_H_

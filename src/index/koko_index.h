#ifndef KOKO_INDEX_KOKO_INDEX_H_
#define KOKO_INDEX_KOKO_INDEX_H_

#include <array>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "index/path.h"
#include "index/posting.h"
#include "index/sid_ops.h"
#include "storage/table.h"
#include "text/document.h"
#include "util/interner.h"
#include "util/mmap_file.h"
#include "util/status.h"

namespace koko {

/// How Load materialises an index image.
///
///  * `kCopy` — deserialize into owned memory (the default; works for
///    every image version).
///  * `kMap` — mmap the file and, for v4/v3 images, alias every posting
///    payload (skip tables + block payloads) into the mapping after the
///    same structural validation the copy path runs. No posting byte is
///    copied, load time drops to catalog parse + validation, and resident
///    posting memory is page-cache-backed (shared across processes mapping
///    the same image). Older images (v2 flat deltas, v1 catalog-only) have
///    no aliasable layout and transparently fall back to a copying load.
enum class LoadMode { kCopy, kMap };

/// \brief KOKO's multi-indexing scheme (paper §3).
///
/// Four indices over one physical layout:
///  * **Word index** — table W(word, x, y, u, v, d, plid, posid), one row
///    per token, B-tree on `word`. The quintuple columns are §3.1's
///    (x, y, u-v, d); plid/posid are the token's node ids in the two
///    hierarchy indices (§6.2.1's schema, verbatim).
///  * **Entity index** — table E(entity, x, u, v [, etype]), B-tree on
///    `entity`.
///  * **PL / POS hierarchy indices** — dependency trees of all sentences
///    merged into one trie per label type (§3.2): children with equal
///    labels merge, so every trie node is a unique root path with a posting
///    list (represented as row ids into W — the paper's PL.id ⋈ W.plid
///    join). Persisted as closure tables PL/POS(id, label, depth, aid,
///    alabel, adepth).
///
/// Node-merge statistics back the paper's claim that the hierarchy index
/// removes >99.7% of tree nodes.
class KokoIndex {
 public:
  struct Stats {
    double build_seconds = 0;
    size_t num_sentences = 0;
    size_t num_tokens = 0;       // == pre-merge dependency-tree nodes
    size_t num_entities = 0;
    size_t pl_trie_nodes = 0;    // post-merge (excluding the dummy root)
    size_t pos_trie_nodes = 0;

    /// Fraction of tree nodes eliminated by merging, e.g. 0.997.
    double PlCompression() const {
      return num_tokens == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(pl_trie_nodes) /
                           static_cast<double>(num_tokens);
    }
    double PosCompression() const {
      return num_tokens == 0
                 ? 0.0
                 : 1.0 - static_cast<double>(pos_trie_nodes) /
                           static_cast<double>(num_tokens);
    }
  };

  /// Builds all four indices over an annotated corpus.
  static std::unique_ptr<KokoIndex> Build(const AnnotatedCorpus& corpus);

  /// Builds the indices over the contiguous global sid range
  /// [sid_begin, sid_end) only — the unit of work of one ShardedKokoIndex
  /// shard. All stored sids stay *global*, so shard lookups return ids
  /// directly comparable (and mergeable by concatenation) with other
  /// shards'. Build(corpus) is Build(corpus, 0, NumSentences()).
  static std::unique_ptr<KokoIndex> Build(const AnnotatedCorpus& corpus,
                                          uint32_t sid_begin, uint32_t sid_end);

  // ---- Inverted-index lookups --------------------------------------------

  /// Posting list of a surface token (exact match), §3.1 word index.
  /// `sid_filter`, when non-null, drops rows whose sid is not in it
  /// *before* materialising quintuples (the semi-join push-down used by
  /// KokoPathLookup's cross-index fallback).
  PostingList LookupWord(std::string_view token) const {
    return LookupWord(token, nullptr);
  }
  PostingList LookupWord(std::string_view token, const SidList* sid_filter) const;

  /// Entity postings whose surface text equals `text` exactly.
  std::vector<EntityPosting> LookupEntityText(std::string_view text) const;

  /// All entity postings (corpus order). Used when a variable is declared
  /// as an entity with no further restriction.
  const std::vector<EntityPosting>& AllEntities() const { return all_entities_; }

  /// Entity postings of one type, served from per-type buckets precomputed
  /// at Build/Load time (no scan, no copy).
  const std::vector<EntityPosting>& EntitiesOfType(EntityType type) const {
    return entities_by_type_[static_cast<size_t>(type)];
  }

  // ---- Columnar sid projections (DPLI's working set) ----------------------
  //
  // Sorted, deduplicated sentence-id lists precomputed at Build/Load time:
  // one per word, per entity type, and per hierarchy-trie node. DPLI's
  // candidate pruning intersects these directly instead of materialising
  // Quintuple postings and projecting out sids per query. The lists stay
  // resident in their block-compressed form (`BlockList`: fixed-size
  // varint-delta blocks + skip table) and are intersected in place —
  // they are never decoded wholesale.

  /// Block-compressed sid list of a surface token; nullptr when absent.
  const BlockList* WordSids(std::string_view token) const;

  /// Number of sentences containing `token` without materialising anything.
  size_t CountWordSids(std::string_view token) const;

  /// Sids of all sentences with at least one entity (any type).
  const BlockList& AllEntitySids() const { return all_entity_sids_; }

  /// Sids of all sentences with at least one entity of `type`.
  const BlockList& EntityTypeSids(EntityType type) const {
    return entity_sids_by_type_[static_cast<size_t>(type)];
  }

  /// Union of the per-node sid lists of all PL-trie nodes matched by
  /// `path` — the sid projection of LookupParseLabelPath without building
  /// its posting list.
  SidList PlPathSids(const PathQuery& path) const;

  /// Same over the POS trie.
  SidList PosPathSids(const PathQuery& path) const;

  /// Upper-bound estimate of |PlPathSids(path)|: the sum of the matched
  /// trie nodes' stored sid-list lengths (the union can only be smaller,
  /// so pruning plans built on it stay complete). O(matched nodes) skip
  /// table reads, no block decoded, no union materialised — the planner's
  /// path-selectivity input (koko/planner.h).
  size_t EstimatePlPathSids(const PathQuery& path) const;

  /// Same over the POS trie.
  size_t EstimatePosPathSids(const PathQuery& path) const;

  // ---- Hierarchy-index lookups --------------------------------------------

  /// Union of posting lists of all PL-trie nodes matched by `path`, whose
  /// constraints must only use parse labels or wildcards (the output of
  /// DPLI's path decomposition). The `sid_filter` overloads skip rows
  /// outside the filter before quintuple materialisation and the final
  /// sort.
  PostingList LookupParseLabelPath(const PathQuery& path) const {
    return LookupParseLabelPath(path, nullptr);
  }
  PostingList LookupParseLabelPath(const PathQuery& path,
                                   const SidList* sid_filter) const;

  /// Same over the POS trie (POS-tag constraints or wildcards).
  PostingList LookupPosPath(const PathQuery& path) const {
    return LookupPosPath(path, nullptr);
  }
  PostingList LookupPosPath(const PathQuery& path,
                            const SidList* sid_filter) const;

  /// Number of trie nodes matched (no posting materialisation); lets DPLI
  /// detect "path absent from index" cheaply.
  size_t CountPlPathNodes(const PathQuery& path) const;
  size_t CountPosPathNodes(const PathQuery& path) const;

  // ---- Introspection / persistence ----------------------------------------

  const Stats& stats() const { return stats_; }

  /// Heap footprint of everything: tables, B-trees, tries, entity cache.
  size_t MemoryUsage() const;

  /// Heap footprint of just the columnar sid projections (per-word,
  /// per-trie-node, per-entity-type) — the block-compressed posting
  /// working set whose size BENCH_table2_scaleup.json tracks.
  size_t SidCacheMemoryUsage() const;

  /// What the same projections would occupy fully decoded (4 bytes/sid,
  /// the pre-block representation's floor) — the compression baseline
  /// reported next to SidCacheMemoryUsage.
  size_t SidCacheDecodedEquivalentBytes() const;

  /// Storage-level view (tables W, E, PL, POS) for tests and tooling.
  const Catalog& catalog() const { return catalog_; }

  /// Persists the index: the relational catalog followed by the columnar
  /// sid caches in their block-compressed form (v4: per-list skip tables +
  /// 4-byte-aligned bit-packed block payloads the SIMD kernels decode with
  /// word-granular loads), so Load restores them with bounds-checked
  /// vector reads instead of re-projecting the W table.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<KokoIndex>> Load(const std::string& path) {
    return Load(path, LoadMode::kCopy);
  }
  static Result<std::unique_ptr<KokoIndex>> Load(const std::string& path,
                                                 LoadMode mode);

  /// Zero-copy load of one v4/v3 image occupying `span` inside `file`'s
  /// mapping (the whole file, or one shard's extent of a sharded file).
  /// The returned index holds `file` alive for its lifetime; v2 images
  /// fall back to a copying parse of the mapped bytes.
  static Result<std::unique_ptr<KokoIndex>> LoadMapped(
      std::shared_ptr<MappedFile> file, MemorySpan span);

  /// True when this index's posting payloads alias a file mapping (kMap
  /// load of a v4/v3 image) rather than owned memory.
  bool mapped() const { return mapping_ != nullptr; }

  /// Stream-based variants (one shard's section of a ShardedKokoIndex file).
  /// `version` selects the image format: 4 (current, bit-packed blocks),
  /// 3 (varint-delta blocks), or 2 (flat varint-delta lists) — writing the
  /// older versions exists for legacy-load tests; the no-version overload
  /// writes the current format.
  Status Save(BinaryWriter* writer) const;
  Status Save(BinaryWriter* writer, uint32_t version) const;
  static Result<std::unique_ptr<KokoIndex>> Load(BinaryReader* reader);

  /// True when the last Load restored the word/trie sid caches from their
  /// delta-encoded on-disk form (rather than rebuilding from the tables).
  bool sid_caches_from_disk() const { return sid_caches_from_disk_; }

 private:
  // Merged dependency-tree trie (one per label type).
  struct TrieNode {
    Symbol label = kInvalidSymbol;
    int32_t parent = -1;
    uint32_t depth = 0;
    std::vector<std::pair<Symbol, uint32_t>> children;  // sorted by label
    std::vector<uint32_t> rows;                         // row ids into W
    BlockList sids;  // block-compressed sorted unique sids of `rows`
  };
  struct Trie {
    std::vector<TrieNode> nodes;  // nodes[0] = dummy root above all trees
    StringPool labels;

    Trie() { nodes.emplace_back(); }
    uint32_t GetOrAddChild(uint32_t parent, Symbol label);
    uint32_t FindChild(uint32_t parent, Symbol label) const;  // -1u if absent
    /// Trie nodes matched by a decomposed path (steps constrain only this
    /// trie's label kind, or are wildcards).
    std::vector<uint32_t> Match(const PathQuery& path, bool use_pos) const;
    size_t MemoryUsage() const;
  };

  KokoIndex() = default;

  Quintuple RowToQuintuple(uint32_t row) const;
  /// Materialises the matched trie nodes' rows into `out` (unsorted),
  /// skipping rows whose sid is outside `sid_filter` (when non-null)
  /// before any quintuple is built.
  void AppendTrieRows(const Trie& trie, const std::vector<uint32_t>& nodes,
                      const SidList* sid_filter, PostingList* out) const;
  void ExportClosureTable(const Trie& trie, const std::string& table_name);
  Status RebuildTrieFromClosure(const std::string& table_name, Trie* trie,
                                int w_node_col);
  /// Post-catalog-load setup shared by both image formats: resolve W/E,
  /// rebuild tries from the closure tables, entity cache, stats.
  Status InitFromCatalog();
  /// Parses the word/trie sid-cache sections — one protocol shared by the
  /// stream (copy) and mapped (zero-copy) loaders, abstracted over the
  /// reader via three callables so the two paths cannot drift apart.
  /// Defined in koko_index.cpp; instantiated only there.
  template <typename ReadU32, typename ReadString, typename ReadList>
  Status LoadSidCacheSections(ReadU32&& read_u32, ReadString&& read_string,
                              ReadList&& read_list);
  Status RebuildEntityCache();
  /// Fills the columnar sid caches (word/entity-type/trie-node lists) from
  /// the W and E tables; called at the end of Build and legacy Load.
  void RebuildSidCaches();
  /// The entity-side subset of RebuildSidCaches (per-type buckets + sid
  /// lists from all_entities_); cheap, so always recomputed on Load.
  void RebuildEntitySidCaches();

  Catalog catalog_;
  Table* w_ = nullptr;  // W(word, x, y, u, v, d, plid, posid)
  Table* e_ = nullptr;  // E(entity, x, u, v, etype)
  Trie pl_trie_;
  Trie pos_trie_;
  std::vector<EntityPosting> all_entities_;
  std::array<std::vector<EntityPosting>, kNumEntityTypes> entities_by_type_;
  std::unordered_map<std::string, BlockList> word_sids_;
  std::array<BlockList, kNumEntityTypes> entity_sids_by_type_;
  BlockList all_entity_sids_;
  Stats stats_;
  bool sid_caches_from_disk_ = false;
  /// Keeps the file mapping alive while any BlockList views point into it
  /// (kMap loads only; shards of one sharded file share a single mapping).
  std::shared_ptr<MappedFile> mapping_;
};

}  // namespace koko

#endif  // KOKO_INDEX_KOKO_INDEX_H_

#ifndef KOKO_INDEX_POSTING_H_
#define KOKO_INDEX_POSTING_H_

#include <cstdint>
#include <vector>

#include "text/annotations.h"

namespace koko {

/// \brief The paper's quintuple (x, y, u-v, d) — §3.1.
///
/// x = sentence id, y = token id, [u, v] = first/last token id of the
/// subtree rooted at the token, d = depth of the token in the dependency
/// tree (root depth 0).
struct Quintuple {
  uint32_t sid = 0;
  uint32_t tid = 0;
  uint32_t left = 0;
  uint32_t right = 0;
  uint32_t depth = 0;

  friend bool operator==(const Quintuple& a, const Quintuple& b) {
    return a.sid == b.sid && a.tid == b.tid && a.left == b.left &&
           a.right == b.right && a.depth == b.depth;
  }
  friend bool operator<(const Quintuple& a, const Quintuple& b) {
    if (a.sid != b.sid) return a.sid < b.sid;
    return a.tid < b.tid;
  }
};

/// True when `parent` is the tree parent of `child` — the §3.1 test
/// tp.x = tc.x ∧ tp.u ≤ tc.u ∧ tp.v ≥ tc.v ∧ tp.d = tc.d − ... (child is
/// one deeper).
inline bool IsParentOf(const Quintuple& parent, const Quintuple& child) {
  return parent.sid == child.sid && parent.left <= child.left &&
         parent.right >= child.right && parent.depth + 1 == child.depth;
}

/// True when `anc` is a proper ancestor of `desc` (any depth gap >= 1).
inline bool IsAncestorOf(const Quintuple& anc, const Quintuple& desc) {
  return anc.sid == desc.sid && anc.left <= desc.left &&
         anc.right >= desc.right && anc.depth < desc.depth &&
         !(anc.tid == desc.tid);
}

/// The paper's entity triple (x, u-v) plus the entity type.
struct EntityPosting {
  uint32_t sid = 0;
  uint32_t left = 0;
  uint32_t right = 0;
  EntityType type = EntityType::kOther;

  friend bool operator==(const EntityPosting& a, const EntityPosting& b) {
    return a.sid == b.sid && a.left == b.left && a.right == b.right &&
           a.type == b.type;
  }
};

using PostingList = std::vector<Quintuple>;

/// Projects a (sid, tid)-sorted posting list onto its sid column. The input
/// order makes this a single linear dedup scan — no hashing, no re-sort.
inline std::vector<uint32_t> SidsOfPostings(const PostingList& postings) {
  std::vector<uint32_t> sids;
  sids.reserve(postings.size());
  for (const Quintuple& q : postings) {
    if (sids.empty() || sids.back() != q.sid) sids.push_back(q.sid);
  }
  return sids;
}

}  // namespace koko

#endif  // KOKO_INDEX_POSTING_H_

#include "index/koko_index.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace koko {

namespace {

constexpr uint32_t kNoNode = static_cast<uint32_t>(-1);

// Column positions in W.
enum WCol : uint32_t {
  kWWord = 0,
  kWSid,
  kWTid,
  kWLeft,
  kWRight,
  kWDepth,
  kWPlid,
  kWPosid,
};

// Column positions in E.
enum ECol : uint32_t { kEEntity = 0, kESid, kELeft, kERight, kEType };

}  // namespace

// ---- Trie -------------------------------------------------------------------

uint32_t KokoIndex::Trie::FindChild(uint32_t parent, Symbol label) const {
  const auto& kids = nodes[parent].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), label,
      [](const std::pair<Symbol, uint32_t>& a, Symbol l) { return a.first < l; });
  if (it != kids.end() && it->first == label) return it->second;
  return kNoNode;
}

uint32_t KokoIndex::Trie::GetOrAddChild(uint32_t parent, Symbol label) {
  uint32_t existing = FindChild(parent, label);
  if (existing != kNoNode) return existing;
  uint32_t id = static_cast<uint32_t>(nodes.size());
  TrieNode node;
  node.label = label;
  node.parent = static_cast<int32_t>(parent);
  node.depth = nodes[parent].depth + 1;
  nodes.push_back(std::move(node));
  auto& kids = nodes[parent].children;
  auto it = std::lower_bound(
      kids.begin(), kids.end(), label,
      [](const std::pair<Symbol, uint32_t>& a, Symbol l) { return a.first < l; });
  kids.insert(it, {label, id});
  return id;
}

std::vector<uint32_t> KokoIndex::Trie::Match(const PathQuery& path,
                                             bool use_pos) const {
  std::vector<uint32_t> current = {0};  // dummy root
  std::vector<char> seen;
  for (const PathStep& step : path.steps) {
    // Resolve the step's label for this trie; unconstrained -> wildcard.
    bool wildcard;
    Symbol label = kInvalidSymbol;
    if (use_pos) {
      wildcard = !step.constraint.pos.has_value();
      if (!wildcard) {
        label = labels.Find(PosTagName(*step.constraint.pos));
        if (label == kInvalidSymbol) return {};
      }
    } else {
      wildcard = !step.constraint.dep.has_value();
      if (!wildcard) {
        label = labels.Find(DepLabelName(*step.constraint.dep));
        if (label == kInvalidSymbol) return {};
      }
    }
    std::vector<uint32_t> next;
    seen.assign(nodes.size(), 0);
    auto add = [&](uint32_t id) {
      if (!seen[id]) {
        seen[id] = 1;
        next.push_back(id);
      }
    };
    for (uint32_t node : current) {
      if (step.axis == PathStep::Axis::kChild) {
        if (wildcard) {
          for (const auto& [_, child] : nodes[node].children) add(child);
        } else {
          uint32_t child = FindChild(node, label);
          if (child != kNoNode) add(child);
        }
      } else {
        // Descendant axis: DFS below `node`.
        std::vector<uint32_t> stack;
        for (const auto& [_, child] : nodes[node].children) stack.push_back(child);
        while (!stack.empty()) {
          uint32_t t = stack.back();
          stack.pop_back();
          if (wildcard || nodes[t].label == label) add(t);
          for (const auto& [_, child] : nodes[t].children) stack.push_back(child);
        }
      }
    }
    current = std::move(next);
    if (current.empty()) return {};
  }
  std::sort(current.begin(), current.end());
  return current;
}

size_t KokoIndex::Trie::MemoryUsage() const {
  size_t bytes = nodes.capacity() * sizeof(TrieNode);
  for (const auto& n : nodes) {
    bytes += n.children.capacity() * sizeof(std::pair<Symbol, uint32_t>);
    bytes += n.rows.capacity() * sizeof(uint32_t);
    bytes += n.sids.MemoryUsage();
  }
  bytes += labels.MemoryUsage();
  return bytes;
}

// ---- Build -------------------------------------------------------------------

std::unique_ptr<KokoIndex> KokoIndex::Build(const AnnotatedCorpus& corpus) {
  return Build(corpus, 0, static_cast<uint32_t>(corpus.NumSentences()));
}

std::unique_ptr<KokoIndex> KokoIndex::Build(const AnnotatedCorpus& corpus,
                                            uint32_t sid_begin,
                                            uint32_t sid_end) {
  WallTimer timer;
  auto index = std::unique_ptr<KokoIndex>(new KokoIndex());

  index->w_ = index->catalog_.CreateTable(
      "W", {{"word", ColumnType::kString},
            {"x", ColumnType::kInt64},
            {"y", ColumnType::kInt64},
            {"u", ColumnType::kInt64},
            {"v", ColumnType::kInt64},
            {"d", ColumnType::kInt64},
            {"plid", ColumnType::kInt64},
            {"posid", ColumnType::kInt64}});
  index->e_ = index->catalog_.CreateTable(
      "E", {{"entity", ColumnType::kString},
            {"x", ColumnType::kInt64},
            {"u", ColumnType::kInt64},
            {"v", ColumnType::kInt64},
            {"etype", ColumnType::kInt64}});

  Trie& pl = index->pl_trie_;
  Trie& pos = index->pos_trie_;

  for (uint32_t sid = sid_begin; sid < sid_end; ++sid) {
    const Sentence& s = corpus.sentence(sid);
    const int n = s.size();
    if (n == 0) continue;
    ++index->stats_.num_sentences;

    // Trie node per token: walk top-down so parents resolve first.
    std::vector<uint32_t> pl_node(n, 0);
    std::vector<uint32_t> pos_node(n, 0);
    // BFS order from root guarantees head processed before child.
    std::vector<int> order;
    order.reserve(n);
    order.push_back(s.root);
    for (size_t k = 0; k < order.size(); ++k) {
      for (int child : s.children[order[k]]) order.push_back(child);
    }
    for (int t : order) {
      uint32_t pl_parent = s.tokens[t].head < 0 ? 0 : pl_node[s.tokens[t].head];
      uint32_t pos_parent = s.tokens[t].head < 0 ? 0 : pos_node[s.tokens[t].head];
      pl_node[t] = pl.GetOrAddChild(pl_parent,
                                    pl.labels.Intern(DepLabelName(s.tokens[t].label)));
      pos_node[t] = pos.GetOrAddChild(
          pos_parent, pos.labels.Intern(PosTagName(s.tokens[t].pos)));
    }

    for (int t = 0; t < n; ++t) {
      uint32_t row = static_cast<uint32_t>(index->w_->NumRows());
      KOKO_CHECK_OK(index->w_->AppendRow(
          {s.tokens[t].text, static_cast<int64_t>(sid), static_cast<int64_t>(t),
           static_cast<int64_t>(s.subtree_left[t]),
           static_cast<int64_t>(s.subtree_right[t]),
           static_cast<int64_t>(s.depth[t]), static_cast<int64_t>(pl_node[t]),
           static_cast<int64_t>(pos_node[t])}));
      pl.nodes[pl_node[t]].rows.push_back(row);
      pos.nodes[pos_node[t]].rows.push_back(row);
      ++index->stats_.num_tokens;
    }

    for (const Entity& ent : s.entities) {
      KOKO_CHECK_OK(index->e_->AppendRow(
          {s.SpanText(ent.begin, ent.end), static_cast<int64_t>(sid),
           static_cast<int64_t>(ent.begin), static_cast<int64_t>(ent.end),
           static_cast<int64_t>(ent.type)}));
      ++index->stats_.num_entities;
    }
  }

  KOKO_CHECK_OK(index->w_->CreateIndex("w_word", {"word"}));
  KOKO_CHECK_OK(index->e_->CreateIndex("e_entity", {"entity"}));

  index->ExportClosureTable(pl, "PL");
  index->ExportClosureTable(pos, "POS");
  KOKO_CHECK_OK(index->RebuildEntityCache());
  index->RebuildSidCaches();

  index->stats_.pl_trie_nodes = pl.nodes.size() - 1;
  index->stats_.pos_trie_nodes = pos.nodes.size() - 1;
  index->stats_.build_seconds = timer.ElapsedSeconds();
  return index;
}

void KokoIndex::ExportClosureTable(const Trie& trie, const std::string& table_name) {
  Table* t = catalog_.CreateTable(
      table_name, {{"id", ColumnType::kInt64},
                   {"label", ColumnType::kString},
                   {"depth", ColumnType::kInt64},
                   {"aid", ColumnType::kInt64},
                   {"alabel", ColumnType::kString},
                   {"adepth", ColumnType::kInt64}});
  // Closure rows: every (node, ancestor-or-self) pair, excluding the dummy.
  for (uint32_t id = 1; id < trie.nodes.size(); ++id) {
    const std::string& label = trie.labels.Lookup(trie.nodes[id].label);
    int32_t anc = static_cast<int32_t>(id);
    while (anc > 0) {
      const TrieNode& a = trie.nodes[static_cast<uint32_t>(anc)];
      KOKO_CHECK_OK(t->AppendRow({static_cast<int64_t>(id), label,
                                  static_cast<int64_t>(trie.nodes[id].depth),
                                  static_cast<int64_t>(anc),
                                  trie.labels.Lookup(a.label),
                                  static_cast<int64_t>(a.depth)}));
      anc = a.parent;
    }
  }
  KOKO_CHECK_OK(t->CreateIndex(table_name + "_label", {"label"}));
}

Status KokoIndex::RebuildEntityCache() {
  all_entities_.clear();
  all_entities_.reserve(e_->NumRows());
  for (uint32_t row = 0; row < e_->NumRows(); ++row) {
    EntityPosting p;
    p.sid = static_cast<uint32_t>(e_->GetInt(row, kESid));
    p.left = static_cast<uint32_t>(e_->GetInt(row, kELeft));
    p.right = static_cast<uint32_t>(e_->GetInt(row, kERight));
    const int64_t type = e_->GetInt(row, kEType);
    // Catalog values may come from a corrupt image; an out-of-range type
    // would index past the per-type bucket arrays.
    if (type < 0 || type >= kNumEntityTypes) {
      return Status::ParseError("E table entity type out of range");
    }
    p.type = static_cast<EntityType>(type);
    all_entities_.push_back(p);
  }
  return Status::OK();
}

void KokoIndex::RebuildSidCaches() {
  // Per-word sid lists. W rows are appended sentence by sentence, so the
  // sid stream seen by each word is non-decreasing and Append() suffices.
  word_sids_.clear();
  for (uint32_t row = 0; row < w_->NumRows(); ++row) {
    word_sids_[w_->GetString(row, kWWord)].Append(
        static_cast<uint32_t>(w_->GetInt(row, kWSid)));
  }

  for (auto& [word, sids] : word_sids_) sids.ShrinkToFit();

  // Per-trie-node sid lists: project each node's W-row list (row ids are
  // ascending, hence sid-sorted) onto the sid column once.
  for (Trie* trie : {&pl_trie_, &pos_trie_}) {
    for (TrieNode& node : trie->nodes) {
      node.sids = BlockList();
      for (uint32_t row : node.rows) {
        node.sids.Append(static_cast<uint32_t>(w_->GetInt(row, kWSid)));
      }
      node.sids.ShrinkToFit();
    }
  }

  RebuildEntitySidCaches();
}

void KokoIndex::RebuildEntitySidCaches() {
  // Per-type entity buckets + sid lists. all_entities_ is in E-row order,
  // which is sid-sorted.
  for (auto& bucket : entities_by_type_) bucket.clear();
  for (auto& sids : entity_sids_by_type_) sids = BlockList();
  all_entity_sids_ = BlockList();
  for (const EntityPosting& p : all_entities_) {
    entities_by_type_[static_cast<size_t>(p.type)].push_back(p);
    entity_sids_by_type_[static_cast<size_t>(p.type)].Append(p.sid);
    all_entity_sids_.Append(p.sid);
  }
  for (auto& sids : entity_sids_by_type_) sids.ShrinkToFit();
  all_entity_sids_.ShrinkToFit();
}

// ---- Lookups ------------------------------------------------------------------

Quintuple KokoIndex::RowToQuintuple(uint32_t row) const {
  Quintuple q;
  q.sid = static_cast<uint32_t>(w_->GetInt(row, kWSid));
  q.tid = static_cast<uint32_t>(w_->GetInt(row, kWTid));
  q.left = static_cast<uint32_t>(w_->GetInt(row, kWLeft));
  q.right = static_cast<uint32_t>(w_->GetInt(row, kWRight));
  q.depth = static_cast<uint32_t>(w_->GetInt(row, kWDepth));
  return q;
}

PostingList KokoIndex::LookupWord(std::string_view token,
                                  const SidList* sid_filter) const {
  auto rows = w_->IndexLookup("w_word", {std::string(token)});
  KOKO_CHECK(rows.ok());
  PostingList out;
  out.reserve(rows->size());
  for (uint32_t row : *rows) {
    if (sid_filter != nullptr &&
        !sid_filter->Contains(static_cast<uint32_t>(w_->GetInt(row, kWSid)))) {
      continue;
    }
    out.push_back(RowToQuintuple(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<EntityPosting> KokoIndex::LookupEntityText(std::string_view text) const {
  auto rows = e_->IndexLookup("e_entity", {std::string(text)});
  KOKO_CHECK(rows.ok());
  std::vector<EntityPosting> out;
  out.reserve(rows->size());
  for (uint32_t row : *rows) out.push_back(all_entities_[row]);
  return out;
}

const BlockList* KokoIndex::WordSids(std::string_view token) const {
  auto it = word_sids_.find(std::string(token));
  return it == word_sids_.end() ? nullptr : &it->second;
}

size_t KokoIndex::CountWordSids(std::string_view token) const {
  const BlockList* sids = WordSids(token);
  return sids == nullptr ? 0 : sids->CountSids();
}

// A node's rows are ascending (hence sid-sorted), so the semi-join filter
// advances with one galloping cursor per node rather than a binary search
// per row; rows outside the filter never materialise a quintuple.
void KokoIndex::AppendTrieRows(const Trie& trie,
                               const std::vector<uint32_t>& nodes,
                               const SidList* sid_filter,
                               PostingList* out) const {
  for (uint32_t node : nodes) {
    size_t cursor = 0;
    for (uint32_t row : trie.nodes[node].rows) {
      if (sid_filter != nullptr) {
        uint32_t sid = static_cast<uint32_t>(w_->GetInt(row, kWSid));
        cursor = GallopTo(sid_filter->data(), sid_filter->size(), cursor, sid);
        if (cursor == sid_filter->size()) break;  // rows are sid-sorted
        if ((*sid_filter)[cursor] != sid) continue;
      }
      out->push_back(RowToQuintuple(row));
    }
  }
}

PostingList KokoIndex::LookupParseLabelPath(const PathQuery& path,
                                            const SidList* sid_filter) const {
  PostingList out;
  AppendTrieRows(pl_trie_, pl_trie_.Match(path, /*use_pos=*/false), sid_filter,
                 &out);
  std::sort(out.begin(), out.end());
  return out;
}

PostingList KokoIndex::LookupPosPath(const PathQuery& path,
                                     const SidList* sid_filter) const {
  PostingList out;
  AppendTrieRows(pos_trie_, pos_trie_.Match(path, /*use_pos=*/true), sid_filter,
                 &out);
  std::sort(out.begin(), out.end());
  return out;
}

SidList KokoIndex::PlPathSids(const PathQuery& path) const {
  std::vector<uint32_t> nodes = pl_trie_.Match(path, /*use_pos=*/false);
  std::vector<const BlockList*> lists;
  lists.reserve(nodes.size());
  for (uint32_t node : nodes) lists.push_back(&pl_trie_.nodes[node].sids);
  return UnionAllBlocks(lists);
}

SidList KokoIndex::PosPathSids(const PathQuery& path) const {
  std::vector<uint32_t> nodes = pos_trie_.Match(path, /*use_pos=*/true);
  std::vector<const BlockList*> lists;
  lists.reserve(nodes.size());
  for (uint32_t node : nodes) lists.push_back(&pos_trie_.nodes[node].sids);
  return UnionAllBlocks(lists);
}

size_t KokoIndex::EstimatePlPathSids(const PathQuery& path) const {
  size_t total = 0;
  for (uint32_t node : pl_trie_.Match(path, /*use_pos=*/false)) {
    total += pl_trie_.nodes[node].sids.size();
  }
  return total;
}

size_t KokoIndex::EstimatePosPathSids(const PathQuery& path) const {
  size_t total = 0;
  for (uint32_t node : pos_trie_.Match(path, /*use_pos=*/true)) {
    total += pos_trie_.nodes[node].sids.size();
  }
  return total;
}

size_t KokoIndex::CountPlPathNodes(const PathQuery& path) const {
  return pl_trie_.Match(path, /*use_pos=*/false).size();
}

size_t KokoIndex::CountPosPathNodes(const PathQuery& path) const {
  return pos_trie_.Match(path, /*use_pos=*/true).size();
}

size_t KokoIndex::MemoryUsage() const {
  size_t bytes = catalog_.MemoryUsage() + pl_trie_.MemoryUsage() +
                 pos_trie_.MemoryUsage() +
                 all_entities_.capacity() * sizeof(EntityPosting);
  for (const auto& [word, sids] : word_sids_) {
    bytes += word.capacity() + sids.MemoryUsage() + sizeof(BlockList);
  }
  for (const auto& bucket : entities_by_type_) {
    bytes += bucket.capacity() * sizeof(EntityPosting);
  }
  for (const auto& sids : entity_sids_by_type_) bytes += sids.MemoryUsage();
  bytes += all_entity_sids_.MemoryUsage();
  return bytes;
}

size_t KokoIndex::SidCacheMemoryUsage() const {
  size_t bytes = all_entity_sids_.MemoryUsage();
  for (const auto& [word, sids] : word_sids_) bytes += sids.MemoryUsage();
  for (const Trie* trie : {&pl_trie_, &pos_trie_}) {
    for (const TrieNode& node : trie->nodes) bytes += node.sids.MemoryUsage();
  }
  for (const auto& sids : entity_sids_by_type_) bytes += sids.MemoryUsage();
  return bytes;
}

size_t KokoIndex::SidCacheDecodedEquivalentBytes() const {
  size_t sids = all_entity_sids_.CountSids();
  for (const auto& [word, list] : word_sids_) sids += list.CountSids();
  for (const Trie* trie : {&pl_trie_, &pos_trie_}) {
    for (const TrieNode& node : trie->nodes) sids += node.sids.CountSids();
  }
  for (const auto& list : entity_sids_by_type_) sids += list.CountSids();
  return sids * sizeof(uint32_t);
}

// ---- Persistence ----------------------------------------------------------------
//
// File layout (version 4, the current write format):
//   u32 magic "KIDX" | u32 version | catalog (tables W, E, PL, POS) |
//   word sid lists   | PL-trie node sid lists | POS-trie node sid lists
// Every sid list is stored in its *packed* block form — u32 count, the
// skip-first / skip-offset / skip-width tables, then the bit-packed block
// payloads behind an explicit alignment pad that puts them at a 4-byte
// file offset (mmap is page-aligned, so file alignment is memory
// alignment for the SIMD decode kernels). Load is bounds-checked vector
// reads plus a structural validation walk, and the layout is mmap-ready.
// Version-3 images (varint-delta blocks), version-2 images (flat
// varint-delta lists), and legacy catalog-only images (no "KIDX" magic)
// still load; v2 pays a re-encode into blocks, legacy a full
// RebuildSidCaches. See docs/INDEX_FORMAT.md.

namespace {
constexpr uint32_t kIndexMagic = 0x4b494458;  // "KIDX"
constexpr uint32_t kIndexVersionPacked = 4;
constexpr uint32_t kIndexVersionBlocks = 3;
constexpr uint32_t kIndexVersionFlatDeltas = 2;

bool SupportedIndexVersion(uint32_t version) {
  return version == kIndexVersionPacked || version == kIndexVersionBlocks ||
         version == kIndexVersionFlatDeltas;
}

void WriteSidListV2(BinaryWriter* writer, const SidList& list) {
  writer->WriteU32(static_cast<uint32_t>(list.size()));
  writer->WriteVector(EncodeDeltas(list));
}

Result<SidList> ReadSidListV2(BinaryReader* reader) {
  KOKO_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  KOKO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, reader->ReadVector<uint8_t>());
  KOKO_ASSIGN_OR_RETURN(SidList list, DecodeDeltas(bytes));
  if (list.size() != count) {
    return Status::ParseError("sid list delta stream decoded to wrong length");
  }
  return list;
}

void WriteU32Array(BinaryWriter* writer, const U32View& v) {
  writer->WriteU32(static_cast<uint32_t>(v.size()));
  writer->WriteBytes(v.raw(), v.raw_size());
}

// u32 length | u8 pad count | pad zeros | payload. The pad puts the
// payload at a 4-byte absolute file offset (Position() is absolute even
// inside a sharded image — all shards stream through one writer), so an
// mmap'ed payload is 4-byte aligned in memory. On a non-seekable sink the
// pad degrades to 0; the image stays valid, just unaligned (readers use
// unaligned-tolerant loads — alignment is a performance property).
void WritePackedPayload(BinaryWriter* writer, const uint8_t* payload,
                        size_t size) {
  writer->WriteU32(static_cast<uint32_t>(size));
  const int64_t pos = writer->Position();
  const uint8_t pad =
      pos < 0 ? 0 : static_cast<uint8_t>((4 - ((pos + 1) % 4)) % 4);
  writer->WriteU8(pad);
  for (uint8_t i = 0; i < pad; ++i) writer->WriteU8(0);
  writer->WriteBytes(payload, size);
}

void WriteBlockList(BinaryWriter* writer, const BlockList& list,
                    uint32_t version) {
  if (version == kIndexVersionFlatDeltas) {
    WriteSidListV2(writer, list.Decode());
    return;
  }
  if (version == kIndexVersionPacked) {
    if (list.packed()) {
      // Already the wire form: write the views verbatim (a v4-mapped
      // index re-saves byte-identically, like v3 lists under v3).
      writer->WriteU32(static_cast<uint32_t>(list.size()));
      WriteU32Array(writer, list.skip_first());
      WriteU32Array(writer, list.skip_offset());
      WriteU32Array(writer, list.skip_width());
      const MemorySpan payload = list.bytes();
      WritePackedPayload(writer, payload.data(), payload.size());
    } else {
      const PackedBlockParts parts = PackBlockList(list);
      writer->WriteU32(static_cast<uint32_t>(list.size()));
      WriteU32Array(writer, U32View(parts.skip_first));
      WriteU32Array(writer, U32View(parts.skip_offset));
      WriteU32Array(writer, U32View(parts.skip_width));
      WritePackedPayload(writer, parts.payload.data(), parts.payload.size());
    }
    return;
  }
  // v3: a packed (v4-loaded) list re-encodes into the varint block form.
  if (list.packed()) {
    WriteBlockList(writer, BlockList::FromSidList(list.Decode()), version);
    return;
  }
  // The parts are written through their borrowed views, so a mapped index
  // (whose arrays alias another file) saves identically to an owning one.
  writer->WriteU32(static_cast<uint32_t>(list.size()));
  WriteU32Array(writer, list.skip_first());
  WriteU32Array(writer, list.skip_offset());
  const MemorySpan payload = list.bytes();
  writer->WriteU32(static_cast<uint32_t>(payload.size()));
  writer->WriteBytes(payload.data(), payload.size());
}

Result<BlockList> ReadBlockList(BinaryReader* reader, uint32_t version) {
  if (version == kIndexVersionFlatDeltas) {
    KOKO_ASSIGN_OR_RETURN(SidList list, ReadSidListV2(reader));
    return BlockList::FromSidList(list);
  }
  KOKO_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  KOKO_ASSIGN_OR_RETURN(std::vector<uint32_t> skip_first,
                        reader->ReadVector<uint32_t>());
  KOKO_ASSIGN_OR_RETURN(std::vector<uint32_t> skip_offset,
                        reader->ReadVector<uint32_t>());
  if (version == kIndexVersionPacked) {
    KOKO_ASSIGN_OR_RETURN(std::vector<uint32_t> skip_width,
                          reader->ReadVector<uint32_t>());
    KOKO_ASSIGN_OR_RETURN(uint32_t payload_len, reader->ReadU32());
    KOKO_ASSIGN_OR_RETURN(uint8_t pad, reader->ReadU8());
    if (pad > 3) {
      return Status::ParseError("packed block list: bad alignment pad length");
    }
    for (uint8_t i = 0; i < pad; ++i) {
      KOKO_ASSIGN_OR_RETURN(uint8_t zero, reader->ReadU8());
      if (zero != 0) {
        return Status::ParseError("packed block list: nonzero alignment pad");
      }
    }
    KOKO_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          reader->ReadRawBytes(payload_len));
    return BlockList::FromPackedParts(count, std::move(skip_first),
                                      std::move(skip_offset),
                                      std::move(skip_width),
                                      std::move(payload));
  }
  KOKO_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, reader->ReadVector<uint8_t>());
  return BlockList::FromParts(count, std::move(skip_first),
                              std::move(skip_offset), std::move(bytes));
}

// The zero-copy counterpart of ReadBlockList for v3/v4 images: the arrays
// come back as views into the mapped span (validated by
// FromMapped/FromMappedPacked, never copied).
Result<BlockList> ReadBlockListMapped(SpanReader* reader, uint32_t version) {
  KOKO_ASSIGN_OR_RETURN(uint32_t count, reader->ReadU32());
  KOKO_ASSIGN_OR_RETURN(U32View skip_first, reader->ReadU32Array());
  KOKO_ASSIGN_OR_RETURN(U32View skip_offset, reader->ReadU32Array());
  if (version == kIndexVersionPacked) {
    KOKO_ASSIGN_OR_RETURN(U32View skip_width, reader->ReadU32Array());
    KOKO_ASSIGN_OR_RETURN(uint32_t payload_len, reader->ReadU32());
    KOKO_ASSIGN_OR_RETURN(uint8_t pad, reader->ReadU8());
    if (pad > 3) {
      return Status::ParseError("packed block list: bad alignment pad length");
    }
    KOKO_ASSIGN_OR_RETURN(MemorySpan pad_bytes, reader->ReadRawSpan(pad));
    for (size_t i = 0; i < pad_bytes.size(); ++i) {
      if (pad_bytes.data()[i] != 0) {
        return Status::ParseError("packed block list: nonzero alignment pad");
      }
    }
    KOKO_ASSIGN_OR_RETURN(MemorySpan payload, reader->ReadRawSpan(payload_len));
    return BlockList::FromMappedPacked(count, skip_first, skip_offset,
                                       skip_width, payload);
  }
  KOKO_ASSIGN_OR_RETURN(MemorySpan bytes, reader->ReadByteArray());
  return BlockList::FromMapped(count, skip_first, skip_offset, bytes);
}
}  // namespace

Status KokoIndex::Save(BinaryWriter* writer) const {
  return Save(writer, kIndexVersionPacked);
}

Status KokoIndex::Save(BinaryWriter* writer, uint32_t version) const {
  if (!SupportedIndexVersion(version)) {
    return Status::InvalidArgument("unsupported index image version " +
                                   std::to_string(version));
  }
  writer->WriteU32(kIndexMagic);
  writer->WriteU32(version);
  KOKO_RETURN_IF_ERROR(catalog_.Save(writer));
  // Word sid lists, in sorted word order for deterministic images.
  std::vector<const std::pair<const std::string, BlockList>*> words;
  words.reserve(word_sids_.size());
  for (const auto& entry : word_sids_) words.push_back(&entry);
  std::sort(words.begin(), words.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  writer->WriteU32(static_cast<uint32_t>(words.size()));
  for (const auto* entry : words) {
    writer->WriteString(entry->first);
    WriteBlockList(writer, entry->second, version);
  }
  for (const Trie* trie : {&pl_trie_, &pos_trie_}) {
    writer->WriteU32(static_cast<uint32_t>(trie->nodes.size()));
    for (const TrieNode& node : trie->nodes) {
      WriteBlockList(writer, node.sids, version);
    }
  }
  if (!writer->ok()) return Status::IoError("index write failure");
  return Status::OK();
}

Status KokoIndex::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  BinaryWriter writer(&out);
  return Save(&writer);
}

Status KokoIndex::RebuildTrieFromClosure(const std::string& table_name, Trie* trie,
                                         int w_node_col) {
  const Table* t = catalog_.GetTable(table_name);
  if (t == nullptr) return Status::NotFound("closure table " + table_name);
  // Catalog values may come from a corrupt image: every id consumed below
  // is validated before it indexes anything (a bad image must fail load
  // cleanly, not read out of bounds).
  // Pass 1: create nodes (max id) and record parent/label/depth. Every
  // node contributes at least its self-pair row, so a valid max id never
  // exceeds the row count.
  int64_t max_id = 0;
  for (uint32_t row = 0; row < t->NumRows(); ++row) {
    int64_t id = t->GetInt(row, 0);
    if (id < 0 || id > static_cast<int64_t>(t->NumRows())) {
      return Status::ParseError("closure table " + table_name +
                                ": node id out of range");
    }
    max_id = std::max(max_id, id);
  }
  trie->nodes.clear();
  trie->nodes.resize(static_cast<size_t>(max_id) + 1);
  trie->nodes[0].parent = -1;
  for (uint32_t row = 0; row < t->NumRows(); ++row) {
    int64_t id = t->GetInt(row, 0);
    int64_t depth = t->GetInt(row, 2);
    int64_t aid = t->GetInt(row, 3);
    int64_t adepth = t->GetInt(row, 5);
    if (aid < 0 || aid > max_id) {
      return Status::ParseError("closure table " + table_name +
                                ": ancestor id out of range");
    }
    TrieNode& node = trie->nodes[static_cast<size_t>(id)];
    node.label = trie->labels.Intern(t->GetString(row, 1));
    node.depth = static_cast<uint32_t>(depth);
    if (adepth == depth) {
      // self-pair; parent derived from the depth-1 ancestor row.
      if (depth == 1) node.parent = 0;
    } else if (adepth == depth - 1) {
      node.parent = static_cast<int32_t>(aid);
    }
  }
  // Pass 2: children links.
  for (uint32_t id = 1; id < trie->nodes.size(); ++id) {
    TrieNode& node = trie->nodes[id];
    if (node.parent < 0) node.parent = 0;
    auto& kids = trie->nodes[static_cast<uint32_t>(node.parent)].children;
    auto it = std::lower_bound(kids.begin(), kids.end(), node.label,
                               [](const std::pair<Symbol, uint32_t>& a, Symbol l) {
                                 return a.first < l;
                               });
    kids.insert(it, {node.label, id});
  }
  // Pass 3: posting rows from W.
  for (uint32_t row = 0; row < w_->NumRows(); ++row) {
    int64_t node = w_->GetInt(row, static_cast<uint32_t>(w_node_col));
    if (node < 0 || node > max_id) {
      return Status::ParseError("W table references " + table_name +
                                " node out of range");
    }
    trie->nodes[static_cast<size_t>(node)].rows.push_back(row);
  }
  return Status::OK();
}

Status KokoIndex::InitFromCatalog() {
  w_ = catalog_.GetTable("W");
  e_ = catalog_.GetTable("E");
  if (w_ == nullptr || e_ == nullptr) {
    return Status::ParseError("catalog missing W/E tables");
  }
  // The lookup paths KOKO_CHECK these indexes; a corrupt image that lost
  // them must fail load, not crash the first query.
  if (!w_->HasIndex("w_word") || !e_->HasIndex("e_entity")) {
    return Status::ParseError("catalog missing w_word/e_entity indexes");
  }
  KOKO_RETURN_IF_ERROR(RebuildTrieFromClosure("PL", &pl_trie_, kWPlid));
  KOKO_RETURN_IF_ERROR(RebuildTrieFromClosure("POS", &pos_trie_, kWPosid));
  KOKO_RETURN_IF_ERROR(RebuildEntityCache());
  stats_.num_tokens = w_->NumRows();
  stats_.num_entities = e_->NumRows();
  stats_.pl_trie_nodes = pl_trie_.nodes.size() - 1;
  stats_.pos_trie_nodes = pos_trie_.nodes.size() - 1;
  return Status::OK();
}

template <typename ReadU32, typename ReadString, typename ReadList>
Status KokoIndex::LoadSidCacheSections(ReadU32&& read_u32,
                                       ReadString&& read_string,
                                       ReadList&& read_list) {
  KOKO_ASSIGN_OR_RETURN(uint32_t num_words, read_u32());
  word_sids_.clear();
  // reserve() is an optimization, so cap it: a corrupt word count must
  // fail at the first (remaining-bytes-bounded) read below, not allocate
  // gigabytes of hash buckets first.
  word_sids_.reserve(std::min<uint32_t>(num_words, 1u << 20));
  for (uint32_t i = 0; i < num_words; ++i) {
    KOKO_ASSIGN_OR_RETURN(std::string word, read_string());
    KOKO_ASSIGN_OR_RETURN(BlockList sids, read_list());
    word_sids_.emplace(std::move(word), std::move(sids));
  }
  for (Trie* trie : {&pl_trie_, &pos_trie_}) {
    KOKO_ASSIGN_OR_RETURN(uint32_t num_nodes, read_u32());
    if (num_nodes != trie->nodes.size()) {
      return Status::ParseError("trie sid-cache section has wrong node count");
    }
    for (TrieNode& node : trie->nodes) {
      KOKO_ASSIGN_OR_RETURN(node.sids, read_list());
    }
  }
  RebuildEntitySidCaches();
  sid_caches_from_disk_ = true;
  return Status::OK();
}

Result<std::unique_ptr<KokoIndex>> KokoIndex::Load(BinaryReader* reader) {
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, reader->ReadU32());
  if (magic != kIndexMagic) return Status::ParseError("bad index magic");
  KOKO_ASSIGN_OR_RETURN(uint32_t version, reader->ReadU32());
  if (!SupportedIndexVersion(version)) {
    return Status::ParseError("unsupported index version " +
                              std::to_string(version));
  }
  auto index = std::unique_ptr<KokoIndex>(new KokoIndex());
  KOKO_RETURN_IF_ERROR(index->catalog_.Load(reader));
  KOKO_RETURN_IF_ERROR(index->InitFromCatalog());
  // Restore the compressed sid caches instead of re-projecting W. A v4/v3
  // image holds the exact in-memory block layout (validated structurally
  // by BlockList::FromPackedParts/FromParts); a v2 image holds flat delta
  // streams that are re-encoded into blocks as they are read.
  KOKO_RETURN_IF_ERROR(index->LoadSidCacheSections(
      [&] { return reader->ReadU32(); },
      [&] { return reader->ReadString(); },
      [&] { return ReadBlockList(reader, version); }));
  return index;
}

Result<std::unique_ptr<KokoIndex>> KokoIndex::LoadMapped(
    std::shared_ptr<MappedFile> file, MemorySpan span) {
  // The catalog (tables, B-tree definitions) is inherently owned data and
  // parses through the stream reader — directly over the mapping, no
  // intermediate buffer. Only the posting sections are aliased.
  SpanStreamBuf stream_buf(span);
  std::istream in(&stream_buf);
  BinaryReader reader(&in);
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  if (magic != kIndexMagic) return Status::ParseError("bad index magic");
  KOKO_ASSIGN_OR_RETURN(uint32_t version, reader.ReadU32());
  if (!SupportedIndexVersion(version)) {
    return Status::ParseError("unsupported index version " +
                              std::to_string(version));
  }
  if (version == kIndexVersionFlatDeltas) {
    // v2 flat-delta lists have no aliasable layout: fall back to the
    // copying stream loader over the same mapped bytes. The mapping is
    // released once the copy completes.
    in.clear();
    in.seekg(0);
    return Load(&reader);
  }
  auto index = std::unique_ptr<KokoIndex>(new KokoIndex());
  KOKO_RETURN_IF_ERROR(index->catalog_.Load(&reader));
  KOKO_RETURN_IF_ERROR(index->InitFromCatalog());
  const std::streampos catalog_end = in.tellg();
  if (catalog_end == std::streampos(-1)) {
    return Status::IoError("cannot locate sid-cache section in mapped image");
  }
  // Posting sections: validate structure, then alias skip tables and
  // delta-block payloads straight into the mapping ("validate before
  // alias" — a corrupt image fails here, never at query time).
  SpanReader mapped(span, static_cast<size_t>(catalog_end));
  KOKO_RETURN_IF_ERROR(index->LoadSidCacheSections(
      [&] { return mapped.ReadU32(); },
      [&] { return mapped.ReadString(); },
      [&] { return ReadBlockListMapped(&mapped, version); }));
  index->mapping_ = std::move(file);
  return index;
}

Result<std::unique_ptr<KokoIndex>> KokoIndex::Load(const std::string& path,
                                                   LoadMode mode) {
  if (mode == LoadMode::kMap) {
    auto opened = MappedFile::Open(path);
    // An Open failure (unsupported platform/filesystem) degrades to the
    // copying loader below, which reports its own error if the file is
    // genuinely unreadable — kMap never fails where kCopy would succeed.
    if (opened.ok()) {
      std::shared_ptr<MappedFile> file = std::move(*opened);
      const MemorySpan span = file->span();
      // A legacy catalog-only image has no "KIDX" magic and nothing to
      // alias; hand it to the copying loader below.
      SpanReader probe(span);
      auto magic = probe.ReadU32();
      if (magic.ok() && *magic == kIndexMagic) {
        return LoadMapped(std::move(file), span);
      }
    }
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  BinaryReader reader(&in);
  KOKO_ASSIGN_OR_RETURN(uint32_t magic, reader.ReadU32());
  in.clear();
  in.seekg(0);
  if (magic == kIndexMagic) return Load(&reader);
  // Legacy catalog-only image: rebuild every sid cache from the tables.
  auto index = std::unique_ptr<KokoIndex>(new KokoIndex());
  KOKO_RETURN_IF_ERROR(index->catalog_.Load(&reader));
  KOKO_RETURN_IF_ERROR(index->InitFromCatalog());
  index->RebuildSidCaches();
  return index;
}

}  // namespace koko

#ifndef KOKO_INDEX_SHARDED_INDEX_H_
#define KOKO_INDEX_SHARDED_INDEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "index/koko_index.h"

namespace koko {

class ThreadPool;

/// \brief K independent KokoIndex shards over contiguous sid ranges.
///
/// The corpus's global sentence numbering is partitioned into K contiguous
/// ranges; shard i is a complete KokoIndex built over [begin_i, end_i) whose
/// stored sids stay *global*. Because the ranges are disjoint and ascending,
/// every aggregated lookup is a plain concatenation of per-shard results —
/// no re-sorting, no id translation — and any per-shard sid computation
/// (DPLI intersections in particular) composes back losslessly:
/// intersection distributes over a partition by sid range, so
/// ∩_atoms L_atom = ⊔_shards ∩_atoms L_atom|shard.
///
/// Shards build in parallel on a ThreadPool and execute queries
/// independently (see Engine's shard-parallel DPLI), which is the paper's
/// Table 2 scale-up story pushed past one core: build time and the
/// per-query DPLI phase scale with min(K, hardware threads).
class ShardedKokoIndex {
 public:
  struct Options {
    /// Number of contiguous sid-range shards (>= 1). Sentences are split
    /// evenly: shard i covers [i*N/K, (i+1)*N/K).
    size_t num_shards = 1;
    /// Workers for the parallel shard build; 0 = one per shard.
    size_t build_threads = 0;
    /// Explicit shard boundaries (ascending global sids, starting at 0 and
    /// ending at NumSentences()). Overrides num_shards when non-empty —
    /// lets callers align shards to document groups or test uneven splits.
    std::vector<uint32_t> boundaries;
    /// Shared thread pool for the parallel shard build (borrowed; must
    /// outlive the call). nullptr — the default — spawns a transient
    /// build-only pool. A server rebuilding shards online passes its
    /// serving pool so the rebuild interleaves with query fork/join
    /// sections instead of spawning a competing thread set.
    ThreadPool* pool = nullptr;
  };

  struct ShardRange {
    uint32_t begin = 0;  // inclusive
    uint32_t end = 0;    // exclusive
  };

  static std::unique_ptr<ShardedKokoIndex> Build(const AnnotatedCorpus& corpus,
                                                 const Options& options);
  static std::unique_ptr<ShardedKokoIndex> Build(const AnnotatedCorpus& corpus,
                                                 size_t num_shards) {
    Options options;
    options.num_shards = num_shards;
    return Build(corpus, options);
  }

  size_t num_shards() const { return shards_.size(); }
  const KokoIndex& shard(size_t i) const { return *shards_[i]; }
  const ShardRange& shard_range(size_t i) const { return ranges_[i]; }

  // ---- Aggregated lookup surface (mirrors KokoIndex) -----------------------
  //
  // Per-shard results are sorted by sid within their range and ranges are
  // ascending, so concatenation in shard order preserves global ordering
  // and equals the monolithic index's answer element for element.

  PostingList LookupWord(std::string_view token) const;
  std::vector<EntityPosting> LookupEntityText(std::string_view text) const;
  std::vector<EntityPosting> AllEntities() const;
  std::vector<EntityPosting> EntitiesOfType(EntityType type) const;

  /// Aggregated sid projections. Per-shard lists are stored block
  /// compressed; aggregation decodes and concatenates them (shard ranges
  /// are disjoint ascending), so these return decoded lists by value.
  SidList WordSids(std::string_view token) const;
  size_t CountWordSids(std::string_view token) const;
  SidList AllEntitySids() const;
  SidList EntityTypeSids(EntityType type) const;
  SidList PlPathSids(const PathQuery& path) const;
  SidList PosPathSids(const PathQuery& path) const;

  PostingList LookupParseLabelPath(const PathQuery& path) const;
  PostingList LookupPosPath(const PathQuery& path) const;
  size_t CountPlPathNodes(const PathQuery& path) const;
  size_t CountPosPathNodes(const PathQuery& path) const;

  // ---- Introspection / persistence ----------------------------------------

  /// Field-wise sum over shards; build_seconds is the wall time of the
  /// whole (parallel) build, not the sum of per-shard times.
  KokoIndex::Stats stats() const;
  size_t MemoryUsage() const;

  /// Heap bytes attributable to the shards' columnar sid projections
  /// (sum of KokoIndex::SidCacheMemoryUsage). After a kMap load this is
  /// ~0: the postings alias the file mapping instead of owned memory.
  size_t SidCacheMemoryUsage() const;

  /// True when every shard's posting payloads alias one shared file
  /// mapping (kMap load of a v2-manifest file with v3 shard images).
  bool mapped() const;

  /// One file: shard manifest (count + sid ranges + per-shard image byte
  /// lengths) followed by each shard's full KokoIndex image (block-
  /// compressed sid caches included). The byte extents let Load hand each
  /// shard's section to an independent reader.
  Status Save(const std::string& path) const;

  struct LoadOptions {
    /// Workers for the parallel shard load; 0 = one per shard, 1 = serial.
    size_t num_threads = 0;
    /// Shared pool to run the load on (borrowed; must outlive the call).
    /// nullptr spawns a transient pool when num_threads/shard count > 1.
    ThreadPool* pool = nullptr;
    /// kMap memory-maps the file once and hands every shard its extent as
    /// a sub-span of the single shared mapping: shards validate structure
    /// in parallel and alias their postings in place (no payload copy;
    /// the mapping outlives the index via shared ownership). v1 manifests
    /// and non-v3 shard images transparently fall back to copying.
    LoadMode mode = LoadMode::kCopy;
  };

  /// Deserializes the shards in parallel (each worker opens its own file
  /// handle and seeks to its shard's extent from the manifest, or — in
  /// kMap mode — parses its sub-span of one shared mapping). Legacy v1
  /// manifests carry no extents and load sequentially.
  static Result<std::unique_ptr<ShardedKokoIndex>> Load(const std::string& path) {
    return Load(path, LoadOptions());
  }
  static Result<std::unique_ptr<ShardedKokoIndex>> Load(
      const std::string& path, const LoadOptions& options);

 private:
  ShardedKokoIndex() = default;

  std::vector<std::unique_ptr<KokoIndex>> shards_;
  std::vector<ShardRange> ranges_;
  double build_seconds_ = 0;
};

}  // namespace koko

#endif  // KOKO_INDEX_SHARDED_INDEX_H_

#ifndef KOKO_INDEX_SID_OPS_H_
#define KOKO_INDEX_SID_OPS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/status.h"

namespace koko {

/// \brief A sorted, deduplicated list of sentence ids.
///
/// The columnar projection of a posting list onto its `sid` column: the unit
/// DPLI (Algorithm 1) actually operates on. Ids are stored ascending and
/// unique, which makes the layout delta-friendly (gaps are small
/// non-negative integers, see EncodeDeltas/DecodeDeltas) and lets set
/// operations run as ordered merges instead of hash probes.
class SidList {
 public:
  SidList() = default;

  /// Takes ownership of an already sorted, already deduplicated vector.
  static SidList FromSorted(std::vector<uint32_t> ids);

  /// Sorts and deduplicates `ids` (any order, duplicates allowed).
  static SidList FromUnsorted(std::vector<uint32_t> ids);

  /// Build-time append of a non-decreasing id stream; duplicates of the
  /// current tail are dropped in O(1). Ids below the tail are rejected via
  /// assert in debug builds (the caller must feed sorted data).
  void Append(uint32_t sid) {
    if (!ids_.empty()) {
      assert(sid >= ids_.back());
      if (ids_.back() == sid) return;
    }
    ids_.push_back(sid);
  }

  /// Number of sids — the `CountSids()` fast path: cardinality without
  /// materialising any posting.
  size_t CountSids() const { return ids_.size(); }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  uint32_t operator[](size_t i) const { return ids_[i]; }
  const uint32_t* data() const { return ids_.data(); }
  std::vector<uint32_t>::const_iterator begin() const { return ids_.begin(); }
  std::vector<uint32_t>::const_iterator end() const { return ids_.end(); }

  const std::vector<uint32_t>& ids() const { return ids_; }
  /// Moves the id vector out (the list becomes empty).
  std::vector<uint32_t> TakeIds() { return std::move(ids_); }

  bool Contains(uint32_t sid) const;

  size_t MemoryUsage() const { return ids_.capacity() * sizeof(uint32_t); }

  friend bool operator==(const SidList& a, const SidList& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<uint32_t> ids_;
};

// ---- Galloping primitives ---------------------------------------------------

/// First index in [lo, n) with xs[idx] >= key, found by exponential probing
/// from `lo` followed by binary search within the bracketed range. O(log d)
/// where d is the distance advanced — the primitive behind skewed-list
/// intersection (Bentley & Yao / SVS "galloping" advance).
size_t GallopTo(const uint32_t* xs, size_t n, size_t lo, uint32_t key);

// ---- Set operations ---------------------------------------------------------

/// Ordered intersection. Adaptive: linear two-pointer merge when the sizes
/// are comparable, galloping advance in the larger list when skewed
/// (|large| / |small| >= kGallopSkewRatio).
SidList Intersect(const SidList& a, const SidList& b);

/// Size ratio above which Intersect switches from linear merge to galloping.
inline constexpr size_t kGallopSkewRatio = 8;

/// Multi-way intersection, smallest list first so every later pass runs
/// against an already-minimal candidate set. Empty input vector -> empty
/// list. Short-circuits to empty as soon as any pass drains.
SidList IntersectAll(std::vector<const SidList*> lists);

/// Ordered union of two lists.
SidList Union(const SidList& a, const SidList& b);

/// Multi-way union (k-way ordered heap merge, O(N log k)).
SidList UnionAll(std::vector<const SidList*> lists);

/// Ordered difference a \ b (elements of `a` not in `b`), galloping through
/// `b` when it is much larger.
SidList Difference(const SidList& a, const SidList& b);

// ---- Delta layout helpers ---------------------------------------------------

/// Varint(delta) encoding of a sorted sid list — the on-disk/compressed
/// layout future posting-block work builds on. First id is stored as-is,
/// subsequent ids as gaps; every value is LEB128 varint encoded.
std::vector<uint8_t> EncodeDeltas(const SidList& list);

/// Decodes an EncodeDeltas stream, validating it: a truncated stream (ends
/// mid-varint), an overlong varint (more than 5 bytes, or high bits beyond
/// 32), a duplicate id (zero gap after the first id), or a sid overflowing
/// uint32 all fail with ParseError instead of yielding garbage sids — a
/// corrupt or truncated index image must fail load cleanly.
Result<SidList> DecodeDeltas(const std::vector<uint8_t>& bytes);

}  // namespace koko

#endif  // KOKO_INDEX_SID_OPS_H_

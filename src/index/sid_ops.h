#ifndef KOKO_INDEX_SID_OPS_H_
#define KOKO_INDEX_SID_OPS_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace koko {

/// \brief A sorted, deduplicated list of sentence ids.
///
/// The columnar projection of a posting list onto its `sid` column: the unit
/// DPLI (Algorithm 1) actually operates on. Ids are stored ascending and
/// unique, which makes the layout delta-friendly (gaps are small
/// non-negative integers, see EncodeDeltas/DecodeDeltas) and lets set
/// operations run as ordered merges instead of hash probes.
class SidList {
 public:
  SidList() = default;

  /// Takes ownership of an already sorted, already deduplicated vector.
  static SidList FromSorted(std::vector<uint32_t> ids);

  /// Sorts and deduplicates `ids` (any order, duplicates allowed).
  static SidList FromUnsorted(std::vector<uint32_t> ids);

  /// Build-time append of a non-decreasing id stream; duplicates of the
  /// current tail are dropped in O(1). Ids below the tail are rejected via
  /// assert in debug builds (the caller must feed sorted data).
  void Append(uint32_t sid) {
    if (!ids_.empty()) {
      assert(sid >= ids_.back());
      if (ids_.back() == sid) return;
    }
    ids_.push_back(sid);
  }

  /// Number of sids — the `CountSids()` fast path: cardinality without
  /// materialising any posting.
  size_t CountSids() const { return ids_.size(); }

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  uint32_t operator[](size_t i) const { return ids_[i]; }
  const uint32_t* data() const { return ids_.data(); }
  std::vector<uint32_t>::const_iterator begin() const { return ids_.begin(); }
  std::vector<uint32_t>::const_iterator end() const { return ids_.end(); }

  const std::vector<uint32_t>& ids() const { return ids_; }
  /// Moves the id vector out (the list becomes empty).
  std::vector<uint32_t> TakeIds() { return std::move(ids_); }

  bool Contains(uint32_t sid) const;

  size_t MemoryUsage() const { return ids_.capacity() * sizeof(uint32_t); }

  friend bool operator==(const SidList& a, const SidList& b) {
    return a.ids_ == b.ids_;
  }

 private:
  std::vector<uint32_t> ids_;
};

// ---- Galloping primitives ---------------------------------------------------

/// First index in [lo, n) with xs[idx] >= key, found by exponential probing
/// from `lo` followed by binary search within the bracketed range. O(log d)
/// where d is the distance advanced — the primitive behind skewed-list
/// intersection (Bentley & Yao / SVS "galloping" advance).
size_t GallopTo(const uint32_t* xs, size_t n, size_t lo, uint32_t key);

/// GallopTo over a (possibly unaligned) U32View — the skip-table variant
/// used when the table aliases a memory-mapped image.
size_t GallopTo(const U32View& xs, size_t lo, uint32_t key);

// ---- Set operations ---------------------------------------------------------

/// Ordered intersection. Adaptive: linear two-pointer merge when the sizes
/// are comparable, galloping advance in the larger list when skewed
/// (|large| / |small| >= kGallopSkewRatio).
SidList Intersect(const SidList& a, const SidList& b);

/// Size ratio above which Intersect switches from linear merge to galloping.
inline constexpr size_t kGallopSkewRatio = 8;

/// Multi-way intersection, smallest list first so every later pass runs
/// against an already-minimal candidate set. Empty input vector -> empty
/// list. Short-circuits to empty as soon as any pass drains.
SidList IntersectAll(std::vector<const SidList*> lists);

/// Ordered union of two lists.
SidList Union(const SidList& a, const SidList& b);

/// Multi-way union (k-way ordered heap merge, O(N log k)).
SidList UnionAll(std::vector<const SidList*> lists);

/// Ordered difference a \ b (elements of `a` not in `b`), galloping through
/// `b` when it is much larger.
SidList Difference(const SidList& a, const SidList& b);

// ---- Block-compressed posting lists -----------------------------------------

/// \brief A sorted sid list stored as fixed-size varint-delta blocks with a
/// per-block skip table — the index's *resident* posting representation.
///
/// Layout (identical in memory and in the v3 on-disk image, so load is a
/// bounds-checked vector read rather than a full decode, and a future mmap
/// path can point straight into the file):
///
///   * `skip_first[b]`  — absolute first sid of block b (the skip table's
///     search key; a contiguous uint32 array, gallop-friendly).
///   * `skip_offset[b]` — byte offset of block b's payload in `bytes`.
///   * `bytes`          — concatenated block payloads. A block's payload is
///     the LEB128 varint gaps of its 2nd..kth sids from the block's first
///     sid; the first sid itself lives only in the skip table, so a
///     single-sid block has an empty payload.
///
/// Every block except the last holds exactly `kBlockSids` sids. Intersection
/// runs directly over this form: gallop the skip table to the candidate
/// block, decode at most that one block into a stack buffer (see
/// `Intersect(SidList, BlockList)` / `Intersect(BlockList, BlockList)`).
/// Versus the decoded `std::vector<uint32_t>` this stores ~1-2 bytes per sid
/// instead of 4 plus geometric vector slack.
///
/// **Payload encodings:** blocks come in two wire forms, decoded behind the
/// same `DecodeBlock` API (which dispatches to the SIMD kernels of
/// src/util/simd.h either way):
///
///   * *varint* — the build-time and v3-image form described above;
///   * *packed* (`packed() == true`) — the v4-image form: each block's gaps
///     are fixed-width bit-packed (per-block minimal width in the
///     `skip_width` table, gaps LSB-first in a little-endian bitstream,
///     each block's payload zero-padded to a multiple of 4 bytes), which
///     vector kernels decode with word-granular loads. Packed lists exist
///     only by loading a v4 image (`FromPackedParts`/`FromMappedPacked`);
///     `Append` on one is a programming error.
///
/// **Ownership:** a list is either *owning* (skip table + payload live in
/// its own vectors — the build path and `FromParts`/`FromPackedParts`) or a
/// *view* (`FromMapped`/`FromMappedPacked`: the arrays alias
/// externally-owned bytes, typically a `MappedFile` of a v3/v4 image). Both
/// forms expose the identical read API (`skip_first()`/`skip_offset()`/
/// `skip_width()`/`bytes()` return borrowed views either way), so every
/// intersection/lookup kernel runs unchanged over mapped memory. A view's
/// `MemoryUsage()` is 0 — the pages belong to the mapping. Whoever creates
/// a view keeps the backing memory alive and immutable for the list's
/// lifetime (KokoIndex holds its mapping in a shared_ptr).
class BlockList {
 public:
  /// Sids per block. 128 gaps fit L1 comfortably as a decode buffer and
  /// amortise the 8-byte skip entry to 0.0625 bytes/sid.
  static constexpr size_t kBlockSids = 128;

  BlockList() = default;

  /// Build-time append of a non-decreasing id stream; duplicates of the
  /// current tail are dropped (mirrors SidList::Append).
  void Append(uint32_t sid);

  /// Compresses an already decoded list.
  static BlockList FromSidList(const SidList& list);

  /// Reassembles a list from its (possibly untrusted) serialized parts,
  /// validating every structural invariant: skip-table monotonicity and
  /// bounds, varint wellformedness, per-block sid counts, strictly
  /// ascending sids across block seams, exact payload consumption. A
  /// corrupt image must fail here, never at query time.
  static Result<BlockList> FromParts(uint32_t count,
                                     std::vector<uint32_t> skip_first,
                                     std::vector<uint32_t> skip_offset,
                                     std::vector<uint8_t> bytes);

  /// The zero-copy counterpart of FromParts: the same structural
  /// validation walk over the same three arrays, but on success the list
  /// *aliases* the given views instead of owning vectors — no posting byte
  /// is copied. The backing memory (an mmap'ed v3 image) must stay alive
  /// and unmodified for the list's lifetime; validation completes before
  /// any alias is retained, so a corrupt image fails here and never at
  /// query time ("validate before alias").
  static Result<BlockList> FromMapped(uint32_t count, U32View skip_first,
                                      U32View skip_offset, MemorySpan bytes);

  /// Reassembles a list from the *packed* (v4) wire form, validating every
  /// structural invariant: per-block minimal bit width (<= 32), nonzero
  /// gaps, no uint32 overflow, 4-byte-aligned offsets, exact payload sizes,
  /// and zero padding/slack bits (the encoding is canonical, so corruption
  /// is detectable). Mirrors FromParts.
  static Result<BlockList> FromPackedParts(uint32_t count,
                                           std::vector<uint32_t> skip_first,
                                           std::vector<uint32_t> skip_offset,
                                           std::vector<uint32_t> skip_width,
                                           std::vector<uint8_t> bytes);

  /// The zero-copy counterpart of FromPackedParts ("validate before
  /// alias"), mirroring FromMapped.
  static Result<BlockList> FromMappedPacked(uint32_t count, U32View skip_first,
                                            U32View skip_offset,
                                            U32View skip_width,
                                            MemorySpan bytes);

  /// True when this list is a non-owning view over mapped memory.
  bool mapped() const { return viewed_; }

  /// True when the payload is the fixed-width bit-packed (v4) form.
  bool packed() const { return packed_; }

  size_t CountSids() const { return size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Largest sid in the list (0 when empty) — with skip_first()[0] this
  /// bounds the list's span without decoding, letting intersection clamp
  /// to the overlapping block window.
  uint32_t last_sid() const { return last_; }
  size_t NumBlocks() const {
    return viewed_ ? vfirst_.size() : skip_first_.size();
  }

  /// Number of sids in block `b` (kBlockSids except possibly the last).
  size_t BlockSize(size_t b) const {
    return b + 1 < NumBlocks() ? kBlockSids : size_ - b * kBlockSids;
  }

  /// Decodes block `b` into `out` (capacity >= kBlockSids); returns the
  /// number of sids written. The payload is trusted (validated at
  /// construction), so this is a tight varint loop with no branching on
  /// malformed input.
  size_t DecodeBlock(size_t b, uint32_t* out) const;

  /// Fully decodes the list (transient use only — unions, aggregation
  /// across shards, tests; the resident form stays compressed).
  SidList Decode() const;

  bool Contains(uint32_t sid) const;

  /// Heap bytes attributable to this list. A mapped view owns nothing —
  /// its pages belong to the file mapping and the OS page cache — so it
  /// reports 0; this is exactly the "resident posting bytes" the load
  /// benches compare between copy and map modes.
  size_t MemoryUsage() const {
    return viewed_ ? 0
                   : bytes_.capacity() + (skip_first_.capacity() +
                                          skip_offset_.capacity() +
                                          skip_width_.capacity()) *
                                             sizeof(uint32_t);
  }

  /// Trims capacity slack after a build-time Append stream.
  void ShrinkToFit();

  // Serialization views (the v3 image writes these verbatim). Borrowed
  // either from the owned vectors or from the mapping; valid while the
  // list (and, for a view, its backing memory) lives.
  U32View skip_first() const {
    return viewed_ ? vfirst_ : U32View(skip_first_);
  }
  U32View skip_offset() const {
    return viewed_ ? voffset_ : U32View(skip_offset_);
  }
  /// Per-block gap bit width (packed lists only; empty for varint lists).
  U32View skip_width() const {
    return viewed_ ? vwidth_ : U32View(skip_width_);
  }
  MemorySpan bytes() const {
    return viewed_ ? vbytes_ : MemorySpan(bytes_.data(), bytes_.size());
  }

  /// Both encoders are canonical (one byte stream per sid set per form), so
  /// structural equality within one form is a byte compare; across forms
  /// (varint vs packed) blocks are decoded and compared as sid sets —
  /// owning, mapped, varint, and packed lists over the same sids are all
  /// equal.
  friend bool operator==(const BlockList& a, const BlockList& b);

 private:
  uint32_t size_ = 0;
  uint32_t last_ = 0;  // tail sid of the append stream
  // Owned storage; empty when viewed_ (the views below alias external
  // memory — never these vectors, so default copy/move stays correct).
  std::vector<uint32_t> skip_first_;
  std::vector<uint32_t> skip_offset_;
  std::vector<uint32_t> skip_width_;  // packed form only
  std::vector<uint8_t> bytes_;
  bool viewed_ = false;
  bool packed_ = false;
  U32View vfirst_;
  U32View voffset_;
  U32View vwidth_;
  MemorySpan vbytes_;
};

/// The packed (v4) wire parts of a BlockList — what `PackBlockList`
/// produces and `KokoIndex::Save` writes for a v4 image. `skip_first` and
/// `skip_offset` have the same meaning as the varint form; `skip_width[b]`
/// is block b's gap bit width and `payload` the concatenated bit-packed
/// block payloads (each 4-byte padded, offsets 4-byte aligned).
struct PackedBlockParts {
  std::vector<uint32_t> skip_first;
  std::vector<uint32_t> skip_offset;
  std::vector<uint32_t> skip_width;
  std::vector<uint8_t> payload;
};

/// Re-encodes any BlockList (varint or packed, owning or mapped) into the
/// canonical packed wire form.
PackedBlockParts PackBlockList(const BlockList& list);

/// \brief A borrowed sorted sid set: either a decoded `SidList` or a
/// compressed `BlockList`.
///
/// DPLI mixes both — computed per-query lists (path projections, literal
/// intersections) are decoded, the index's stored projections are block
/// compressed — and `IntersectAllViews` intersects across the mix without
/// materialising the compressed inputs.
class SidSetView {
 public:
  SidSetView() = default;
  /*implicit*/ SidSetView(const SidList* list) : list_(list) {}
  /*implicit*/ SidSetView(const BlockList* blocks) : blocks_(blocks) {}

  size_t size() const {
    return list_ != nullptr ? list_->size()
                            : (blocks_ != nullptr ? blocks_->size() : 0);
  }
  bool empty() const { return size() == 0; }
  const SidList* list() const { return list_; }
  const BlockList* blocks() const { return blocks_; }

 private:
  const SidList* list_ = nullptr;
  const BlockList* blocks_ = nullptr;
};

/// In-place compressed intersection: walks the smaller side, gallops the
/// skip table to the candidate block and decodes at most that one block
/// into a stack buffer. Results equal Intersect over the decoded lists.
SidList Intersect(const SidList& a, const BlockList& b);
SidList Intersect(const BlockList& a, const SidList& b);
SidList Intersect(const BlockList& a, const BlockList& b);

/// How a decoded-list x compressed-list intersection executes. The two
/// strategies are result-identical (both equal Intersect over the decoded
/// lists); they differ only in cost shape, which crosses over with the size
/// skew between the sides — the planner (koko/planner.h) picks per clause
/// pair from the skew crossover measured by bench_micro's skew sweep.
enum class IntersectRep : uint8_t {
  /// Run Intersect(a, b) directly over the compressed form: blockwise
  /// bulk-decode merge at comparable sizes, per-key skip-gallop cursor at
  /// skew (at most one block decoded per probe; blocks the keys skip over
  /// are never decoded).
  kBlockInPlace,
  /// Decode the compressed side once (sequential bulk SIMD decode), then
  /// intersect the two plain arrays. Wins in the mid-skew band where the
  /// probe keys touch most blocks anyway: one streaming decode beats
  /// per-key block bookkeeping, while at extreme skew the cursor's skipped
  /// blocks win again.
  kDecodeThenGallop,
};

/// Intersect with the representation forced — the planner's execution
/// primitive. Result equals Intersect(a, b) for either rep.
SidList IntersectWithRep(const SidList& a, const BlockList& b,
                         IntersectRep rep);

/// Per-list statistics derivable from a BlockList's skip/width tables with
/// no payload decode — the planner's cost-model inputs (all O(1) reads).
struct BlockListStats {
  uint64_t sids = 0;       ///< list length
  uint64_t blocks = 0;     ///< skip-table entries
  uint32_t min_sid = 0;    ///< first sid (0 when empty)
  uint32_t max_sid = 0;    ///< last sid (0 when empty)
  double avg_gap = 0.0;    ///< (max-min)/(sids-1): mean inter-sid distance
};

/// Reads a list's stats from its skip table (no block decoded).
BlockListStats StatsOf(const BlockList& list);

/// Multi-way intersection over mixed decoded/compressed views,
/// smallest-first with short-circuit on empty — the DPLI kernel.
SidList IntersectAllViews(std::vector<SidSetView> views);

/// Multi-way union of compressed lists (decodes each list once; the union
/// itself is the k-way ordered heap merge of UnionAll).
SidList UnionAllBlocks(const std::vector<const BlockList*>& lists);

// ---- Delta layout helpers ---------------------------------------------------

/// Varint(delta) encoding of a sorted sid list — the flat (blockless)
/// layout of the v2 image. First id is stored as-is, subsequent ids as
/// gaps; every value is LEB128 varint encoded.
std::vector<uint8_t> EncodeDeltas(const SidList& list);

/// Decodes an EncodeDeltas stream, validating it: a truncated stream (ends
/// mid-varint), an overlong varint (more than 5 bytes, or high bits beyond
/// 32), a duplicate id (zero gap after the first id), or a sid overflowing
/// uint32 all fail with ParseError instead of yielding garbage sids — a
/// corrupt or truncated index image must fail load cleanly.
Result<SidList> DecodeDeltas(const std::vector<uint8_t>& bytes);

}  // namespace koko

#endif  // KOKO_INDEX_SID_OPS_H_

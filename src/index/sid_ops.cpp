#include "index/sid_ops.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace koko {

SidList SidList::FromSorted(std::vector<uint32_t> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()));
  SidList out;
  out.ids_ = std::move(ids);
  out.ids_.erase(std::unique(out.ids_.begin(), out.ids_.end()), out.ids_.end());
  return out;
}

SidList SidList::FromUnsorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return FromSorted(std::move(ids));
}

bool SidList::Contains(uint32_t sid) const {
  return std::binary_search(ids_.begin(), ids_.end(), sid);
}

size_t GallopTo(const uint32_t* xs, size_t n, size_t lo, uint32_t key) {
  if (lo >= n || xs[lo] >= key) return lo;
  // Exponential probe: bracket the first element >= key in
  // (lo + step/2, lo + step].
  size_t step = 1;
  size_t prev = lo;
  size_t cur = lo + 1;
  while (cur < n && xs[cur] < key) {
    prev = cur;
    step <<= 1;
    cur = lo + step;
  }
  if (cur > n) cur = n;
  // Binary search in (prev, cur].
  return static_cast<size_t>(
      std::lower_bound(xs + prev + 1, xs + cur, key) - xs);
}

namespace {

// Linear two-pointer intersection for comparable sizes.
void IntersectMerge(const SidList& a, const SidList& b,
                    std::vector<uint32_t>* out) {
  size_t i = 0, j = 0;
  const size_t na = a.size(), nb = b.size();
  while (i < na && j < nb) {
    uint32_t x = a[i], y = b[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out->push_back(x);
      ++i;
      ++j;
    }
  }
}

// Galloping intersection: walk the small list, gallop in the large one.
void IntersectGallop(const SidList& small, const SidList& large,
                     std::vector<uint32_t>* out) {
  size_t j = 0;
  const uint32_t* xs = large.data();
  const size_t n = large.size();
  for (size_t i = 0; i < small.size(); ++i) {
    uint32_t key = small[i];
    j = GallopTo(xs, n, j, key);
    if (j == n) return;
    if (xs[j] == key) {
      out->push_back(key);
      ++j;
    }
  }
}

}  // namespace

SidList Intersect(const SidList& a, const SidList& b) {
  const SidList& small = a.size() <= b.size() ? a : b;
  const SidList& large = a.size() <= b.size() ? b : a;
  std::vector<uint32_t> out;
  if (small.empty()) return SidList();
  out.reserve(small.size());
  if (large.size() / small.size() >= kGallopSkewRatio) {
    IntersectGallop(small, large, &out);
  } else {
    IntersectMerge(small, large, &out);
  }
  return SidList::FromSorted(std::move(out));
}

SidList IntersectAll(std::vector<const SidList*> lists) {
  if (lists.empty()) return SidList();
  std::sort(lists.begin(), lists.end(),
            [](const SidList* x, const SidList* y) {
              return x->size() < y->size();
            });
  SidList current = *lists[0];
  for (size_t i = 1; i < lists.size() && !current.empty(); ++i) {
    current = Intersect(current, *lists[i]);
  }
  return current;
}

SidList Union(const SidList& a, const SidList& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return SidList::FromSorted(std::move(out));
}

SidList UnionAll(std::vector<const SidList*> lists) {
  if (lists.empty()) return SidList();
  if (lists.size() == 1) return *lists[0];
  if (lists.size() == 2) return Union(*lists[0], *lists[1]);
  // K-way ordered merge over a min-heap of list cursors: O(N log k), each
  // element touched once. Append() drops the duplicate heads.
  using Cursor = std::pair<uint32_t, size_t>;  // (current value, list index)
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  std::vector<size_t> pos(lists.size(), 0);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i]->empty()) heap.push({(*lists[i])[0], i});
  }
  SidList out;
  while (!heap.empty()) {
    auto [value, i] = heap.top();
    heap.pop();
    out.Append(value);
    if (++pos[i] < lists[i]->size()) heap.push({(*lists[i])[pos[i]], i});
  }
  return out;
}

SidList Difference(const SidList& a, const SidList& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  if (b.size() / std::max<size_t>(a.size(), 1) >= kGallopSkewRatio) {
    size_t j = 0;
    const uint32_t* xs = b.data();
    for (size_t i = 0; i < a.size(); ++i) {
      uint32_t key = a[i];
      j = GallopTo(xs, b.size(), j, key);
      if (j == b.size() || xs[j] != key) out.push_back(key);
    }
  } else {
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  }
  return SidList::FromSorted(std::move(out));
}

std::vector<uint8_t> EncodeDeltas(const SidList& list) {
  std::vector<uint8_t> out;
  out.reserve(list.size());
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t sid : list) {
    uint32_t value = first ? sid : sid - prev;
    first = false;
    prev = sid;
    while (value >= 0x80) {
      out.push_back(static_cast<uint8_t>(value | 0x80));
      value >>= 7;
    }
    out.push_back(static_cast<uint8_t>(value));
  }
  return out;
}

Result<SidList> DecodeDeltas(const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> ids;
  uint64_t prev = 0;
  bool first = true;
  uint32_t value = 0;
  int shift = 0;
  for (uint8_t byte : bytes) {
    if (shift >= 32 || (shift == 28 && (byte & 0x7f) > 0x0f)) {
      return Status::ParseError("sid delta stream: overlong varint");
    }
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if (byte & 0x80) {
      shift += 7;
      continue;
    }
    if (!first && value == 0) {
      return Status::ParseError("sid delta stream: zero gap (non-monotone ids)");
    }
    const uint64_t sid = first ? value : prev + value;
    if (sid > std::numeric_limits<uint32_t>::max()) {
      return Status::ParseError("sid delta stream: id overflows uint32");
    }
    first = false;
    prev = sid;
    ids.push_back(static_cast<uint32_t>(sid));
    value = 0;
    shift = 0;
  }
  if (shift != 0 || value != 0) {
    return Status::ParseError("sid delta stream: truncated varint");
  }
  return SidList::FromSorted(std::move(ids));
}

}  // namespace koko

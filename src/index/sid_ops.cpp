#include "index/sid_ops.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/simd.h"

namespace koko {

SidList SidList::FromSorted(std::vector<uint32_t> ids) {
  assert(std::is_sorted(ids.begin(), ids.end()));
  SidList out;
  out.ids_ = std::move(ids);
  out.ids_.erase(std::unique(out.ids_.begin(), out.ids_.end()), out.ids_.end());
  return out;
}

SidList SidList::FromUnsorted(std::vector<uint32_t> ids) {
  std::sort(ids.begin(), ids.end());
  return FromSorted(std::move(ids));
}

bool SidList::Contains(uint32_t sid) const {
  return std::binary_search(ids_.begin(), ids_.end(), sid);
}

namespace {

// index-based lower/upper_bound and galloping advance over any indexable
// u32 sequence — a raw pointer or a (possibly unaligned) U32View. One
// implementation, instantiated for both, so the two access paths cannot
// drift apart.
template <typename Xs>
size_t LowerBoundIdx(const Xs& xs, size_t lo, size_t hi, uint32_t key) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (xs[mid] < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename Xs>
size_t UpperBoundIdx(const Xs& xs, size_t lo, size_t hi, uint32_t key) {
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (xs[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

template <typename Xs>
size_t GallopToImpl(const Xs& xs, size_t n, size_t lo, uint32_t key) {
  if (lo >= n || xs[lo] >= key) return lo;
  // Exponential probe: bracket the first element >= key in
  // (lo + step/2, lo + step], then binary search in (prev, cur].
  size_t step = 1;
  size_t prev = lo;
  size_t cur = lo + 1;
  while (cur < n && xs[cur] < key) {
    prev = cur;
    step <<= 1;
    cur = lo + step;
  }
  if (cur > n) cur = n;
  return LowerBoundIdx(xs, prev + 1, cur, key);
}

}  // namespace

size_t GallopTo(const uint32_t* xs, size_t n, size_t lo, uint32_t key) {
  return GallopToImpl(xs, n, lo, key);
}

size_t GallopTo(const U32View& xs, size_t lo, uint32_t key) {
  return GallopToImpl(xs, xs.size(), lo, key);
}

namespace {

// Appends intersect_sorted(xs, ys) to *out via the active SIMD kernel,
// which needs kIntersectOutSlack spare elements past the possible matches
// (it stores whole compacted vector registers at the output cursor).
void IntersectRuns(const uint32_t* xs, size_t nx, const uint32_t* ys,
                   size_t ny, std::vector<uint32_t>* out) {
  const size_t old = out->size();
  out->resize(old + std::min(nx, ny) + simd::kIntersectOutSlack);
  const size_t n =
      simd::ActiveKernels().intersect_sorted(xs, nx, ys, ny, out->data() + old);
  out->resize(old + n);
}

// Vectorized merge intersection for comparable sizes.
void IntersectMerge(const SidList& a, const SidList& b,
                    std::vector<uint32_t>* out) {
  IntersectRuns(a.data(), a.size(), b.data(), b.size(), out);
}

// Galloping intersection: walk the small list, gallop in the large one.
void IntersectGallop(const SidList& small, const SidList& large,
                     std::vector<uint32_t>* out) {
  size_t j = 0;
  const uint32_t* xs = large.data();
  const size_t n = large.size();
  for (size_t i = 0; i < small.size(); ++i) {
    uint32_t key = small[i];
    j = GallopTo(xs, n, j, key);
    if (j == n) return;
    if (xs[j] == key) {
      out->push_back(key);
      ++j;
    }
  }
}

}  // namespace

SidList Intersect(const SidList& a, const SidList& b) {
  const SidList& small = a.size() <= b.size() ? a : b;
  const SidList& large = a.size() <= b.size() ? b : a;
  std::vector<uint32_t> out;
  if (small.empty()) return SidList();
  out.reserve(small.size());
  if (large.size() / small.size() >= kGallopSkewRatio) {
    IntersectGallop(small, large, &out);
  } else {
    IntersectMerge(small, large, &out);
  }
  return SidList::FromSorted(std::move(out));
}

SidList IntersectAll(std::vector<const SidList*> lists) {
  if (lists.empty()) return SidList();
  std::sort(lists.begin(), lists.end(),
            [](const SidList* x, const SidList* y) {
              return x->size() < y->size();
            });
  SidList current = *lists[0];
  for (size_t i = 1; i < lists.size() && !current.empty(); ++i) {
    current = Intersect(current, *lists[i]);
  }
  return current;
}

SidList Union(const SidList& a, const SidList& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  return SidList::FromSorted(std::move(out));
}

SidList UnionAll(std::vector<const SidList*> lists) {
  if (lists.empty()) return SidList();
  if (lists.size() == 1) return *lists[0];
  if (lists.size() == 2) return Union(*lists[0], *lists[1]);
  // K-way ordered merge over a min-heap of list cursors: O(N log k), each
  // element touched once. Append() drops the duplicate heads.
  using Cursor = std::pair<uint32_t, size_t>;  // (current value, list index)
  std::priority_queue<Cursor, std::vector<Cursor>, std::greater<Cursor>> heap;
  std::vector<size_t> pos(lists.size(), 0);
  for (size_t i = 0; i < lists.size(); ++i) {
    if (!lists[i]->empty()) heap.push({(*lists[i])[0], i});
  }
  SidList out;
  while (!heap.empty()) {
    auto [value, i] = heap.top();
    heap.pop();
    out.Append(value);
    if (++pos[i] < lists[i]->size()) heap.push({(*lists[i])[pos[i]], i});
  }
  return out;
}

SidList Difference(const SidList& a, const SidList& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  if (b.size() / std::max<size_t>(a.size(), 1) >= kGallopSkewRatio) {
    size_t j = 0;
    const uint32_t* xs = b.data();
    for (size_t i = 0; i < a.size(); ++i) {
      uint32_t key = a[i];
      j = GallopTo(xs, b.size(), j, key);
      if (j == b.size() || xs[j] != key) out.push_back(key);
    }
  } else {
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  }
  return SidList::FromSorted(std::move(out));
}

// ---- BlockList --------------------------------------------------------------

namespace {

void AppendVarint(std::vector<uint8_t>* out, uint32_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

}  // namespace

void BlockList::Append(uint32_t sid) {
  // Views are immutable: build into an owning list. A hard check in every
  // build — growing size_ while the read API still serves the mapped
  // views would corrupt block accounting (and overflow DecodeBlock's
  // stack buffers), and dropping the sid would silently lose postings.
  // Packed (v4-loaded) lists are equally immutable: their payload is not
  // the varint stream Append extends.
  KOKO_CHECK(!viewed_ && !packed_);
  if (size_ > 0) {
    assert(sid >= last_);
    if (sid == last_) return;
  }
  if (size_ % kBlockSids == 0) {
    // New block: the first sid lives in the skip table, not the payload.
    skip_first_.push_back(sid);
    skip_offset_.push_back(static_cast<uint32_t>(bytes_.size()));
  } else {
    AppendVarint(&bytes_, sid - last_);
  }
  last_ = sid;
  ++size_;
}

BlockList BlockList::FromSidList(const SidList& list) {
  BlockList out;
  for (uint32_t sid : list) out.Append(sid);
  out.ShrinkToFit();
  return out;
}

void BlockList::ShrinkToFit() {
  bytes_.shrink_to_fit();
  skip_first_.shrink_to_fit();
  skip_offset_.shrink_to_fit();
  skip_width_.shrink_to_fit();
}

size_t BlockList::DecodeBlock(size_t b, uint32_t* out) const {
  const size_t count = BlockSize(b);
  // Belt and braces over the construction-time validation: a block can
  // never claim more sids than `out`'s kBlockSids capacity. Catching it
  // here stops a stack-buffer overflow even if a corrupt list somehow
  // bypassed FromParts/FromMapped.
  KOKO_CHECK(count >= 1 && count <= kBlockSids);
  const uint8_t* p = bytes().data() + skip_offset()[b];
  const simd::Kernels& kern = simd::ActiveKernels();
  if (packed_) {
    kern.unpack_block(p, skip_width()[b], skip_first()[b], count, out);
  } else {
    kern.decode_varint_block(p, skip_first()[b], count, out);
  }
  return count;
}

SidList BlockList::Decode() const {
  std::vector<uint32_t> ids;
  ids.reserve(size_);
  uint32_t buf[kBlockSids];
  for (size_t b = 0; b < NumBlocks(); ++b) {
    const size_t n = DecodeBlock(b, buf);
    ids.insert(ids.end(), buf, buf + n);
  }
  return SidList::FromSorted(std::move(ids));
}

bool BlockList::Contains(uint32_t sid) const {
  if (empty()) return false;
  // The candidate block is the one before the first whose first sid
  // exceeds `sid`.
  const U32View firsts = skip_first();
  const size_t at = UpperBoundIdx(firsts, 0, firsts.size(), sid);
  if (at == 0) return false;
  uint32_t buf[kBlockSids];
  const size_t n = DecodeBlock(at - 1, buf);
  return std::binary_search(buf, buf + n, sid);
}

namespace {

// The structural validation walk shared by FromParts (owning) and
// FromMapped (aliasing): every invariant a corrupt image could violate is
// checked here, before any byte is trusted at query time. On success
// `*last_out` holds the final sid of the stream.
Status ValidateBlockParts(uint32_t count, const U32View& skip_first,
                          const U32View& skip_offset, const uint8_t* bytes,
                          size_t num_bytes, uint32_t* last_out) {
  const size_t nb = skip_first.size();
  if (skip_offset.size() != nb) {
    return Status::ParseError("block list: skip table arrays disagree");
  }
  const size_t expected_blocks =
      (static_cast<size_t>(count) + BlockList::kBlockSids - 1) /
      BlockList::kBlockSids;
  if (nb != expected_blocks) {
    return Status::ParseError("block list: wrong block count for sid count");
  }
  *last_out = 0;
  if (count == 0) {
    if (num_bytes != 0) {
      return Status::ParseError("block list: empty list with payload bytes");
    }
    return Status::OK();
  }
  if (skip_offset[0] != 0) {
    return Status::ParseError("block list: first block offset not zero");
  }
  uint32_t prev_last = 0;  // last sid of the previous block
  for (size_t b = 0; b < nb; ++b) {
    if (b > 0 && skip_first[b] <= prev_last) {
      return Status::ParseError("block list: non-monotone sids across blocks");
    }
    const size_t begin = skip_offset[b];
    const size_t end = b + 1 < nb ? skip_offset[b + 1] : num_bytes;
    if (begin > end || end > num_bytes) {
      return Status::ParseError("block list: skip offsets out of bounds");
    }
    // Walk the payload: the block must hold exactly its sid count in
    // wellformed, nonzero, non-overflowing gaps and end on its boundary.
    const size_t in_block = b + 1 < nb ? BlockList::kBlockSids
                                       : static_cast<size_t>(count) -
                                             b * BlockList::kBlockSids;
    // Redundant with the expected_blocks equation above, but stated
    // explicitly: a block claiming more sids than kBlockSids would
    // overflow DecodeBlock's stack buffer, so reject it here no matter
    // how the block arithmetic evolves.
    if (in_block == 0 || in_block > BlockList::kBlockSids) {
      return Status::ParseError("block list: block sid count out of range");
    }
    uint64_t sid = skip_first[b];
    size_t at = begin;
    for (size_t i = 1; i < in_block; ++i) {
      uint32_t gap = 0;
      int shift = 0;
      for (;;) {
        if (at >= end) {
          return Status::ParseError("block list: truncated varint");
        }
        const uint8_t byte = bytes[at++];
        if (shift >= 32 || (shift == 28 && (byte & 0x7f) > 0x0f)) {
          return Status::ParseError("block list: overlong varint");
        }
        gap |= static_cast<uint32_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      if (gap == 0) {
        return Status::ParseError("block list: zero gap (non-monotone ids)");
      }
      sid += gap;
      if (sid > std::numeric_limits<uint32_t>::max()) {
        return Status::ParseError("block list: sid overflows uint32");
      }
    }
    if (at != end) {
      return Status::ParseError("block list: block payload has trailing bytes");
    }
    prev_last = static_cast<uint32_t>(sid);
  }
  *last_out = prev_last;
  return Status::OK();
}

}  // namespace

Result<BlockList> BlockList::FromParts(uint32_t count,
                                       std::vector<uint32_t> skip_first,
                                       std::vector<uint32_t> skip_offset,
                                       std::vector<uint8_t> bytes) {
  uint32_t last = 0;
  KOKO_RETURN_IF_ERROR(ValidateBlockParts(count, U32View(skip_first),
                                          U32View(skip_offset), bytes.data(),
                                          bytes.size(), &last));
  BlockList out;
  out.size_ = count;
  out.last_ = last;
  out.skip_first_ = std::move(skip_first);
  out.skip_offset_ = std::move(skip_offset);
  out.bytes_ = std::move(bytes);
  return out;
}

Result<BlockList> BlockList::FromMapped(uint32_t count, U32View skip_first,
                                        U32View skip_offset,
                                        MemorySpan bytes) {
  uint32_t last = 0;
  KOKO_RETURN_IF_ERROR(ValidateBlockParts(count, skip_first, skip_offset,
                                          bytes.data(), bytes.size(), &last));
  BlockList out;
  out.size_ = count;
  out.last_ = last;
  out.viewed_ = true;
  out.vfirst_ = skip_first;
  out.voffset_ = skip_offset;
  out.vbytes_ = bytes;
  return out;
}

namespace {

// ValidateBlockParts' counterpart for the packed (v4) form. The encoding
// is canonical — minimal per-block width, zero slack bits, zero pad bytes
// — so any corruption of a structurally-plausible image is detectable
// here, and reads during validation stay inside the payload because sizes
// are checked before any gap is extracted.
Status ValidatePackedParts(uint32_t count, const U32View& skip_first,
                           const U32View& skip_offset,
                           const U32View& skip_width, const uint8_t* bytes,
                           size_t num_bytes, uint32_t* last_out) {
  const size_t nb = skip_first.size();
  if (skip_offset.size() != nb || skip_width.size() != nb) {
    return Status::ParseError("packed block list: skip table arrays disagree");
  }
  const size_t expected_blocks =
      (static_cast<size_t>(count) + BlockList::kBlockSids - 1) /
      BlockList::kBlockSids;
  if (nb != expected_blocks) {
    return Status::ParseError(
        "packed block list: wrong block count for sid count");
  }
  *last_out = 0;
  if (count == 0) {
    if (num_bytes != 0) {
      return Status::ParseError(
          "packed block list: empty list with payload bytes");
    }
    return Status::OK();
  }
  if (skip_offset[0] != 0) {
    return Status::ParseError("packed block list: first block offset not zero");
  }
  uint32_t prev_last = 0;
  for (size_t b = 0; b < nb; ++b) {
    if (b > 0 && skip_first[b] <= prev_last) {
      return Status::ParseError(
          "packed block list: non-monotone sids across blocks");
    }
    const size_t in_block = b + 1 < nb ? BlockList::kBlockSids
                                       : static_cast<size_t>(count) -
                                             b * BlockList::kBlockSids;
    if (in_block == 0 || in_block > BlockList::kBlockSids) {
      return Status::ParseError(
          "packed block list: block sid count out of range");
    }
    const size_t begin = skip_offset[b];
    const size_t end = b + 1 < nb ? skip_offset[b + 1] : num_bytes;
    if (begin > end || end > num_bytes) {
      return Status::ParseError("packed block list: skip offsets out of bounds");
    }
    if (begin % 4 != 0) {
      return Status::ParseError(
          "packed block list: block payload offset not 4-byte aligned");
    }
    const uint32_t width = skip_width[b];
    if (width > 32) {
      return Status::ParseError("packed block list: gap width exceeds 32 bits");
    }
    const size_t gaps = in_block - 1;
    if ((gaps == 0) != (width == 0)) {
      return Status::ParseError(
          "packed block list: gap width and sid count disagree");
    }
    // Exact payload size: ceil(gaps * width / 8) rounded up to the 4-byte
    // block padding. Checked before any gap is extracted, which keeps the
    // word-granular ExtractPackedGap loads in bounds.
    const uint64_t bits = static_cast<uint64_t>(gaps) * width;
    const size_t expected_bytes =
        static_cast<size_t>(((bits + 7) / 8 + 3) & ~uint64_t{3});
    if (end - begin != expected_bytes) {
      return Status::ParseError("packed block list: wrong block payload size");
    }
    const uint8_t* p = bytes + begin;
    uint64_t sid = skip_first[b];
    uint32_t max_gap = 0;
    for (size_t i = 0; i < gaps; ++i) {
      const uint32_t gap = simd::ExtractPackedGap(p, width, i);
      if (gap == 0) {
        return Status::ParseError(
            "packed block list: zero gap (non-monotone ids)");
      }
      max_gap = std::max(max_gap, gap);
      sid += gap;
      if (sid > std::numeric_limits<uint32_t>::max()) {
        return Status::ParseError("packed block list: sid overflows uint32");
      }
    }
    if (gaps > 0 && (max_gap >> (width - 1)) == 0) {
      return Status::ParseError(
          "packed block list: gap width not minimal for block");
    }
    // The canonical form zero-fills everything past the last gap: the
    // slack bits of the final partial byte and the alignment pad bytes.
    size_t byte_at = static_cast<size_t>(bits / 8);
    const unsigned rem_bits = static_cast<unsigned>(bits % 8);
    if (rem_bits != 0) {
      if ((p[byte_at] >> rem_bits) != 0) {
        return Status::ParseError("packed block list: nonzero slack bits");
      }
      ++byte_at;
    }
    for (; byte_at < expected_bytes; ++byte_at) {
      if (p[byte_at] != 0) {
        return Status::ParseError("packed block list: nonzero pad bytes");
      }
    }
    prev_last = static_cast<uint32_t>(sid);
  }
  *last_out = prev_last;
  return Status::OK();
}

}  // namespace

Result<BlockList> BlockList::FromPackedParts(uint32_t count,
                                             std::vector<uint32_t> skip_first,
                                             std::vector<uint32_t> skip_offset,
                                             std::vector<uint32_t> skip_width,
                                             std::vector<uint8_t> bytes) {
  uint32_t last = 0;
  KOKO_RETURN_IF_ERROR(ValidatePackedParts(
      count, U32View(skip_first), U32View(skip_offset), U32View(skip_width),
      bytes.data(), bytes.size(), &last));
  BlockList out;
  out.size_ = count;
  out.last_ = last;
  out.packed_ = true;
  out.skip_first_ = std::move(skip_first);
  out.skip_offset_ = std::move(skip_offset);
  out.skip_width_ = std::move(skip_width);
  out.bytes_ = std::move(bytes);
  return out;
}

Result<BlockList> BlockList::FromMappedPacked(uint32_t count,
                                              U32View skip_first,
                                              U32View skip_offset,
                                              U32View skip_width,
                                              MemorySpan bytes) {
  uint32_t last = 0;
  KOKO_RETURN_IF_ERROR(ValidatePackedParts(count, skip_first, skip_offset,
                                           skip_width, bytes.data(),
                                           bytes.size(), &last));
  BlockList out;
  out.size_ = count;
  out.last_ = last;
  out.viewed_ = true;
  out.packed_ = true;
  out.vfirst_ = skip_first;
  out.voffset_ = skip_offset;
  out.vwidth_ = skip_width;
  out.vbytes_ = bytes;
  return out;
}

PackedBlockParts PackBlockList(const BlockList& list) {
  PackedBlockParts parts;
  const size_t nb = list.NumBlocks();
  parts.skip_first.reserve(nb);
  parts.skip_offset.reserve(nb);
  parts.skip_width.reserve(nb);
  uint32_t buf[BlockList::kBlockSids];
  for (size_t b = 0; b < nb; ++b) {
    const size_t n = list.DecodeBlock(b, buf);
    parts.skip_first.push_back(buf[0]);
    parts.skip_offset.push_back(static_cast<uint32_t>(parts.payload.size()));
    uint32_t max_gap = 0;
    for (size_t i = 1; i < n; ++i) max_gap = std::max(max_gap, buf[i] - buf[i - 1]);
    const uint32_t width =
        n > 1 ? static_cast<uint32_t>(std::bit_width(max_gap)) : 0;
    parts.skip_width.push_back(width);
    // Gaps go LSB-first into a little-endian bitstream, zero-padded to the
    // 4-byte block boundary (word-granular decode loads never cross it).
    uint64_t acc = 0;
    unsigned acc_bits = 0;
    for (size_t i = 1; i < n; ++i) {
      acc |= static_cast<uint64_t>(buf[i] - buf[i - 1]) << acc_bits;
      acc_bits += width;
      while (acc_bits >= 8) {
        parts.payload.push_back(static_cast<uint8_t>(acc));
        acc >>= 8;
        acc_bits -= 8;
      }
    }
    if (acc_bits > 0) parts.payload.push_back(static_cast<uint8_t>(acc));
    while (parts.payload.size() % 4 != 0) parts.payload.push_back(0);
  }
  return parts;
}

bool operator==(const BlockList& a, const BlockList& b) {
  if (a.size_ != b.size_) return false;
  if (a.packed_ != b.packed_) {
    // Cross-form (varint vs packed): both encodings are canonical within
    // themselves but their bytes differ, so compare the decoded sids
    // blockwise (block boundaries agree — they are count-derived).
    const size_t nb = a.NumBlocks();
    if (b.NumBlocks() != nb) return false;
    uint32_t abuf[BlockList::kBlockSids], bbuf[BlockList::kBlockSids];
    for (size_t blk = 0; blk < nb; ++blk) {
      const size_t an = a.DecodeBlock(blk, abuf);
      const size_t bn = b.DecodeBlock(blk, bbuf);
      if (an != bn || !std::equal(abuf, abuf + an, bbuf)) return false;
    }
    return true;
  }
  const U32View af = a.skip_first(), bf = b.skip_first();
  const U32View ao = a.skip_offset(), bo = b.skip_offset();
  const U32View aw = a.skip_width(), bw = b.skip_width();
  if (af.size() != bf.size() || ao.size() != bo.size() ||
      aw.size() != bw.size()) {
    return false;
  }
  for (size_t i = 0; i < af.size(); ++i) {
    if (af[i] != bf[i] || ao[i] != bo[i]) return false;
  }
  for (size_t i = 0; i < aw.size(); ++i) {
    if (aw[i] != bw[i]) return false;
  }
  const MemorySpan ab = a.bytes(), bb = b.bytes();
  return ab.size() == bb.size() &&
         (ab.size() == 0 ||
          std::memcmp(ab.data(), bb.data(), ab.size()) == 0);
}

// ---- In-place compressed intersection ---------------------------------------

namespace {

// Monotone cursor over a BlockList, fed ascending keys: gallops the skip
// table to the candidate block, decodes at most that one block into a stack
// buffer, then gallops within it. Each block is decoded at most once per
// pass, and blocks the keys skip over are never decoded at all.
class BlockCursor {
 public:
  explicit BlockCursor(const BlockList& list) : list_(list) {}

  /// True iff `key` is in the list. Keys must be *strictly* increasing
  /// across calls: a match advances the cursor past the matched sid, so
  /// repeating a key would miss it.
  bool AdvanceTo(uint32_t key) {
    const U32View firsts = list_.skip_first();
    const size_t nb = firsts.size();
    if (nb == 0 || key < firsts[0]) return false;
    // Candidate block: the last one whose first sid is <= key, i.e. just
    // before the first block whose first sid exceeds key.
    size_t candidate;
    if (key == std::numeric_limits<uint32_t>::max()) {
      candidate = nb - 1;
    } else {
      candidate = GallopTo(firsts, block_, key + 1) - 1;
    }
    if (candidate != block_ || !decoded_) {
      block_ = candidate;
      count_ = list_.DecodeBlock(block_, buf_);
      pos_ = 0;
      decoded_ = true;
    }
    pos_ = GallopTo(buf_, count_, pos_, key);
    if (pos_ < count_ && buf_[pos_] == key) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// True once the cursor has moved past the final sid: every later key
  /// misses, so drivers may stop early.
  bool AtEnd() const {
    return decoded_ && block_ + 1 == list_.NumBlocks() && pos_ >= count_;
  }

 private:
  const BlockList& list_;
  size_t block_ = 0;
  bool decoded_ = false;
  uint32_t buf_[BlockList::kBlockSids];
  size_t count_ = 0;
  size_t pos_ = 0;
};

// Blockwise merge between a decoded list and a block list: decode one
// block at a time into a stack buffer, bound the decoded side's
// overlapping run by the block's last sid, and hand both runs to the
// vectorized intersection kernel. A block whose entire sid range lies
// below the decoded cursor (its successor's first sid bounds it from
// above) is skipped without decoding.
void IntersectMergeBlocks(const SidList& a, const BlockList& b,
                          std::vector<uint32_t>* out) {
  const uint32_t* xs = a.data();
  const size_t na = a.size();
  // At comparable sizes nearly every block overlaps the decoded side's
  // span, so the per-block pairing (skip test, decode, gallop for the
  // fragment bound) costs more than the decodes it avoids: clamp to the
  // block window overlapping [xs[0], xs[na-1]] via the skip table,
  // bulk-decode it, and run a single vector intersection.
  const U32View firsts = b.skip_first();
  const size_t nb = b.NumBlocks();
  const uint32_t lo = xs[0], hi = xs[na - 1];
  size_t b0 = 0;
  while (b0 + 1 < nb && firsts[b0 + 1] <= lo) ++b0;
  size_t b1 = b0;
  while (b1 < nb && firsts[b1] <= hi) ++b1;
  std::vector<uint32_t> decoded((b1 - b0) * BlockList::kBlockSids);
  size_t at = 0;
  for (size_t blk = b0; blk < b1; ++blk) {
    at += b.DecodeBlock(blk, decoded.data() + at);
  }
  IntersectRuns(xs, na, decoded.data(), at, out);
}

}  // namespace

SidList Intersect(const SidList& a, const BlockList& b) {
  if (a.empty() || b.empty()) return SidList();
  const size_t small = std::min(a.size(), b.size());
  const size_t large = std::max(a.size(), b.size());
  std::vector<uint32_t> out;
  out.reserve(small);
  if (large / small < kGallopSkewRatio) {
    // Comparable sizes: blockwise linear merge (same adaptive policy as
    // the decoded Intersect).
    IntersectMergeBlocks(a, b, &out);
  } else if (a.size() <= b.size()) {
    // Walk the decoded side, gallop blockwise in the compressed one.
    BlockCursor cursor(b);
    for (uint32_t key : a) {
      if (cursor.AdvanceTo(key)) out.push_back(key);
      if (cursor.AtEnd()) break;
    }
  } else {
    // The compressed side is smaller: decode it block by block and gallop
    // each decoded run through the larger decoded list.
    uint32_t buf[BlockList::kBlockSids];
    const uint32_t* xs = a.data();
    const size_t n = a.size();
    size_t j = 0;
    for (size_t blk = 0; blk < b.NumBlocks() && j < n; ++blk) {
      const size_t count = b.DecodeBlock(blk, buf);
      for (size_t i = 0; i < count; ++i) {
        j = GallopTo(xs, n, j, buf[i]);
        if (j == n) break;
        if (xs[j] == buf[i]) {
          out.push_back(buf[i]);
          ++j;
        }
      }
    }
  }
  return SidList::FromSorted(std::move(out));
}

SidList Intersect(const BlockList& a, const SidList& b) { return Intersect(b, a); }

SidList IntersectWithRep(const SidList& a, const BlockList& b,
                         IntersectRep rep) {
  if (rep == IntersectRep::kDecodeThenGallop) {
    if (a.empty() || b.empty()) return SidList();
    return Intersect(a, b.Decode());
  }
  return Intersect(a, b);
}

BlockListStats StatsOf(const BlockList& list) {
  BlockListStats stats;
  stats.sids = list.size();
  stats.blocks = list.NumBlocks();
  if (list.empty()) return stats;
  stats.min_sid = list.skip_first()[0];
  stats.max_sid = list.last_sid();
  stats.avg_gap = stats.sids > 1
                      ? static_cast<double>(stats.max_sid - stats.min_sid) /
                            static_cast<double>(stats.sids - 1)
                      : 0.0;
  return stats;
}

SidList Intersect(const BlockList& a, const BlockList& b) {
  if (a.empty() || b.empty()) return SidList();
  const BlockList& small = a.size() <= b.size() ? a : b;
  const BlockList& large = a.size() <= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(small.size());
  uint32_t buf[BlockList::kBlockSids];
  if (large.size() / small.size() < kGallopSkewRatio) {
    // Comparable sizes: nearly every block of each side overlaps the
    // other's span, so per-block pairing (skip to the candidate block,
    // decode, intersect the fragment) costs more in bookkeeping than the
    // decodes it avoids. Clamp each side to the other's sid span via the
    // skip table, bulk-decode the two block windows, and run a single
    // vector intersection over the decoded runs.
    const uint32_t lo =
        std::max(small.skip_first()[0], large.skip_first()[0]);
    const uint32_t hi = std::min(small.last_sid(), large.last_sid());
    if (lo > hi) return SidList();
    auto decode_window = [](const BlockList& list, uint32_t win_lo,
                            uint32_t win_hi, std::vector<uint32_t>* dst) {
      const U32View firsts = list.skip_first();
      const size_t nb = list.NumBlocks();
      size_t b0 = 0;
      while (b0 + 1 < nb && firsts[b0 + 1] <= win_lo) ++b0;
      size_t b1 = b0;
      while (b1 < nb && firsts[b1] <= win_hi) ++b1;
      dst->resize((b1 - b0) * BlockList::kBlockSids);
      size_t at = 0;
      for (size_t blk = b0; blk < b1; ++blk) {
        at += list.DecodeBlock(blk, dst->data() + at);
      }
      dst->resize(at);
    };
    std::vector<uint32_t> sdec, ldec;
    decode_window(small, lo, hi, &sdec);
    decode_window(large, lo, hi, &ldec);
    IntersectRuns(sdec.data(), sdec.size(), ldec.data(), ldec.size(), &out);
  } else {
    BlockCursor cursor(large);
    for (size_t blk = 0; blk < small.NumBlocks() && !cursor.AtEnd(); ++blk) {
      const size_t count = small.DecodeBlock(blk, buf);
      for (size_t i = 0; i < count; ++i) {
        if (cursor.AdvanceTo(buf[i])) out.push_back(buf[i]);
        if (cursor.AtEnd()) break;
      }
    }
  }
  return SidList::FromSorted(std::move(out));
}

SidList IntersectAllViews(std::vector<SidSetView> views) {
  if (views.empty()) return SidList();
  std::sort(views.begin(), views.end(),
            [](const SidSetView& x, const SidSetView& y) {
              return x.size() < y.size();
            });
  if (views[0].empty()) return SidList();
  // Seed the accumulator from the smallest view(s) without a wholesale
  // decode where possible: two compressed views seed via the in-place
  // block-x-block kernel (bounding the decoded accumulator by their
  // intersection), a single compressed view only decodes when it is the
  // sole input. Every later pass intersects against the views' native
  // forms.
  SidList current;
  size_t next = 1;
  if (views[0].list() != nullptr) {
    current = *views[0].list();
  } else if (views.size() == 1) {
    current = views[0].blocks()->Decode();
  } else if (views[1].list() != nullptr) {
    current = Intersect(*views[1].list(), *views[0].blocks());
    next = 2;
  } else {
    current = Intersect(*views[0].blocks(), *views[1].blocks());
    next = 2;
  }
  for (size_t i = next; i < views.size() && !current.empty(); ++i) {
    current = views[i].list() != nullptr ? Intersect(current, *views[i].list())
                                         : Intersect(current, *views[i].blocks());
  }
  return current;
}

SidList UnionAllBlocks(const std::vector<const BlockList*>& lists) {
  std::vector<SidList> decoded;
  decoded.reserve(lists.size());
  for (const BlockList* list : lists) decoded.push_back(list->Decode());
  std::vector<const SidList*> ptrs;
  ptrs.reserve(decoded.size());
  for (const SidList& list : decoded) ptrs.push_back(&list);
  return UnionAll(std::move(ptrs));
}

std::vector<uint8_t> EncodeDeltas(const SidList& list) {
  std::vector<uint8_t> out;
  out.reserve(list.size());
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t sid : list) {
    AppendVarint(&out, first ? sid : sid - prev);
    first = false;
    prev = sid;
  }
  return out;
}

Result<SidList> DecodeDeltas(const std::vector<uint8_t>& bytes) {
  std::vector<uint32_t> ids;
  uint64_t prev = 0;
  bool first = true;
  uint32_t value = 0;
  int shift = 0;
  for (uint8_t byte : bytes) {
    if (shift >= 32 || (shift == 28 && (byte & 0x7f) > 0x0f)) {
      return Status::ParseError("sid delta stream: overlong varint");
    }
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if (byte & 0x80) {
      shift += 7;
      continue;
    }
    if (!first && value == 0) {
      return Status::ParseError("sid delta stream: zero gap (non-monotone ids)");
    }
    const uint64_t sid = first ? value : prev + value;
    if (sid > std::numeric_limits<uint32_t>::max()) {
      return Status::ParseError("sid delta stream: id overflows uint32");
    }
    first = false;
    prev = sid;
    ids.push_back(static_cast<uint32_t>(sid));
    value = 0;
    shift = 0;
  }
  if (shift != 0 || value != 0) {
    return Status::ParseError("sid delta stream: truncated varint");
  }
  return SidList::FromSorted(std::move(ids));
}

}  // namespace koko

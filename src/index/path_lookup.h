#ifndef KOKO_INDEX_PATH_LOOKUP_H_
#define KOKO_INDEX_PATH_LOOKUP_H_

#include "index/koko_index.h"
#include "index/path.h"
#include "index/posting.h"
#include "index/sid_ops.h"

namespace koko {

/// Result of a decomposed-path lookup against the KOKO multi-index.
///
/// The posting list is *complete* (every true binding of the path's last
/// step appears) but may be unsound (§4.2.2 Discussion) — callers must
/// validate. When no index could constrain the path (all-wildcard), the
/// result is flagged `unconstrained` instead.
struct PathLookupResult {
  bool unconstrained = false;
  /// Candidate quintuples. When `exact_last`, they refer to the path's
  /// last step; otherwise they refer to the last *word* on the path (an
  /// ancestor of the actual target), usable for sentence pruning only.
  PostingList postings;
  bool exact_last = true;
};

/// \brief Decompose-and-join lookup of one root-anchored path (§4.2).
///
/// The path is decomposed into a parse-label path, a POS-tag path, and a
/// word path (Example 4.2). The PL/POS hierarchy indices are consulted
/// (results P1, P2), the word index is consulted for each word with
/// ancestor-descendant joins whose depth deltas are derived from the axes
/// between consecutive words (Example 4.4), and the three results are
/// joined on token identity / ancestorship exactly as §4.2.2 describes.
///
/// `sid_filter`, when non-null, must be a superset of the answer's sids
/// (e.g. the semi-join of the per-index sid projections); every fetched
/// posting list is restricted to it before joining, which shrinks the
/// quintuple joins without changing the final result.
PathLookupResult KokoPathLookup(const KokoIndex& index, const PathQuery& path,
                                const SidList* sid_filter = nullptr);

/// Sid projection of a decomposed-path lookup — what DPLI (Algorithm 1)
/// consumes for sentence pruning.
struct PathSidLookupResult {
  bool unconstrained = false;
  SidList sids;
};

/// \brief Columnar variant of KokoPathLookup for candidate pruning.
///
/// Produces exactly the sorted set `{q.sid : q in KokoPathLookup(path)}`
/// without materialising the quintuples when a single index constrains the
/// path: a PL-only (or POS-only) path resolves to the union of the matched
/// trie nodes' precomputed sid lists. Paths needing cross-index joins fall
/// back to the quintuple-level lookup and project its (sid-sorted) result
/// with one linear dedup scan.
///
/// `use_semi_join` governs the cross-index fallback only (single-index
/// paths never build quintuples either way). When true — the default — the
/// per-index sid projections are intersected first and the result filters
/// every posting fetch (an empty intersection proves the answer empty with
/// no quintuple materialised). When false the quintuple joins run
/// unfiltered — cheaper when the projections barely prune (their
/// intersection is ≈ the shard), because it skips materialising the big
/// projections and their intersection. The planner (koko/planner.h)
/// decides per query from the projection-size estimates; the sid set
/// returned is identical either way.
PathSidLookupResult KokoPathSidLookup(const KokoIndex& index,
                                      const PathQuery& path,
                                      bool use_semi_join = true);

/// Extracts the parse-label / POS-tag projection of `path` (non-matching
/// constraints become wildcards). Returns an empty optional when the
/// projection is all-wildcard (no index lookup possible).
PathQuery ProjectParseLabelPath(const PathQuery& path);
PathQuery ProjectPosPath(const PathQuery& path);
bool IsAllWildcard(const PathQuery& path);

}  // namespace koko

#endif  // KOKO_INDEX_PATH_LOOKUP_H_

#include "serve/query_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "koko/parser.h"

namespace koko {

QueryService::QueryService(const Engine* engine, const Options& options,
                           size_t index_shards)
    : engine_(engine),
      options_(options),
      admission_(options.max_inflight, options.max_queue) {
  if (options_.num_threads == 0) {
    options_.num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  ScoreCache::Options cache_options;
  cache_options.num_shards = options_.cache_shards != 0
                                 ? options_.cache_shards
                                 : std::max<size_t>(16, index_shards);
  score_cache_ = std::make_unique<ScoreCache>(cache_options);
  plan_cache_ = std::make_unique<PlanCache>();
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

Result<QueryResult> QueryService::Run(const Query& query) {
  return Run(query, RowSink());
}

Result<QueryResult> QueryService::Run(const Query& query, const RowSink& sink) {
  return Run(query, RunOverrides(), sink);
}

Result<QueryResult> QueryService::Run(const Query& query,
                                      const RunOverrides& overrides,
                                      const RowSink& sink) {
  if (!admission_.Enter()) {
    return Status::Unavailable("admission queue full (max_queue waiters)");
  }
  EngineOptions options = options_.engine;
  options.pool = pool_.get();
  options.score_cache = score_cache_.get();
  options.plan_cache = plan_cache_.get();
  options.num_threads = pool_->num_workers();
  if (overrides.max_rows.has_value()) options.max_rows = *overrides.max_rows;
  if (overrides.use_planner.has_value()) {
    options.use_planner = *overrides.use_planner;
  }
  if (sink) options.sink = &sink;
  Result<QueryResult> result = engine_->Execute(query, options);
  admission_.Exit();
  completed_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

Result<QueryResult> QueryService::Run(std::string_view query_text) {
  // Parsing is cheap and per-caller; only execution passes admission.
  auto query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Run(*query);
}

Result<QueryResult> QueryService::Run(std::string_view query_text,
                                      const RowSink& sink) {
  auto query = ParseQuery(query_text);
  if (!query.ok()) return query.status();
  return Run(*query, sink);
}

std::future<Result<QueryResult>> QueryService::Submit(std::string query_text) {
  auto task = std::make_shared<std::packaged_task<Result<QueryResult>()>>(
      [this, text = std::move(query_text)] {
        return Run(std::string_view(text));
      });
  std::future<Result<QueryResult>> future = task->get_future();
  pool_->Submit([task] { (*task)(); });
  return future;
}

QueryService::Stats QueryService::stats() const {
  Stats stats;
  // `completed` reads before the admission snapshot so completed <= admitted
  // holds in every observation (a query increments completed_ only after
  // its admission was counted); the admission counters themselves come from
  // one lock acquisition — per-accessor reads could tear (e.g. surface a
  // peak_inflight newer than the admitted count next to it).
  stats.completed = completed_.load(std::memory_order_relaxed);
  const AdmissionQueue::Counters admission = admission_.counters();
  stats.admitted = admission.admitted;
  stats.rejected = admission.rejected;
  stats.peak_inflight = admission.peak_inflight;
  stats.peak_waiting = admission.peak_waiting;
  stats.score_cache = score_cache_->stats();
  stats.plan_cache = plan_cache_->stats();
  return stats;
}

}  // namespace koko

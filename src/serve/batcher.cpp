#include "serve/batcher.h"

#include <algorithm>
#include <utility>

#include "koko/printer.h"
#include "util/hash.h"

namespace koko {

BatchExecutor::Outcome BatchExecutor::Run(uint64_t fingerprint,
                                          const ExecFn& exec) {
  std::shared_ptr<Group> group;
  {
    MutexLock lock(mu_);
    auto it = groups_.find(fingerprint);
    if (it != groups_.end()) {
      // Follower: the leader is mid-execution; join and wait for its
      // published result.
      group = it->second;
      ++group->members;
      ++followers_;
      peak_group_ = std::max(peak_group_, group->members);
      while (!group->done) cv_.Wait(mu_);
      Outcome outcome;
      outcome.result = group->result;
      outcome.follower = true;
      return outcome;
    }
    group = std::make_shared<Group>();
    groups_.emplace(fingerprint, group);
    ++leaders_;
    peak_group_ = std::max(peak_group_, group->members);
  }

  // Leader: execute outside the lock (followers accumulate meanwhile).
  auto result =
      std::make_shared<const Result<QueryResult>>(exec());

  {
    MutexLock lock(mu_);
    group->result = result;
    group->done = true;
    // Dissolve the group: later arrivals of this fingerprint execute
    // fresh rather than receiving a stale result.
    groups_.erase(fingerprint);
  }
  cv_.NotifyAll();
  Outcome outcome;
  outcome.result = std::move(result);
  outcome.follower = false;
  return outcome;
}

BatchExecutor::Stats BatchExecutor::stats() const {
  MutexLock lock(mu_);
  Stats stats;
  stats.leaders = leaders_;
  stats.followers = followers_;
  stats.peak_group = peak_group_;
  return stats;
}

uint64_t RequestFingerprint(const Query& query, uint64_t max_rows,
                            bool use_planner) {
  uint64_t h = Fnv1a64(QueryToString(query));
  h = HashCombine(h, Mix64(max_rows + 1));
  h = HashCombine(h, Mix64(use_planner ? 2 : 1));
  return h;
}

}  // namespace koko
